// Media stream delivery across the paper's three networks.
//
//   $ ./example_media_delivery [tiny|small|large] [A|B|C|D|E]
//
// Compiles the chosen network under the chosen Table-1 level scenario, plans,
// executes, and prints a full deployment report: the plan, the produced
// bandwidth, and per-link/per-node reservations — everything an operator
// would need to audit the deployment.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "net/export.hpp"
#include "sim/executor.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace sekitei;

  const std::string which = argc > 1 ? argv[1] : "small";
  const char scenario = argc > 2 ? argv[2][0] : 'C';

  std::unique_ptr<domains::media::Instance> inst;
  if (which == "tiny") {
    inst = domains::media::tiny();
  } else if (which == "large") {
    inst = domains::media::large();
  } else {
    inst = domains::media::small();
  }
  std::printf("network '%s': %zu nodes, %zu links; scenario %c\n", which.c_str(),
              inst->net.node_count(), inst->net.link_count(), scenario);

  Stopwatch total;
  auto cp = model::compile(inst->problem, domains::media::scenario(scenario));
  std::printf("leveling: %zu ground actions (%llu combos considered, %llu pruned)\n",
              cp.actions.size(), (unsigned long long)cp.combos_considered,
              (unsigned long long)cp.combos_pruned);

  core::PlannerOptions opt;
  if (scenario == 'A') opt.mode = core::PlannerOptions::Mode::Greedy;
  core::Sekitei planner(cp, opt);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  const double ms = total.elapsed_ms();

  std::printf("PLRG: %llu props / %llu actions; SLRG: %llu sets; RG: %llu nodes (%llu in queue)\n",
              (unsigned long long)r.stats.plrg_props, (unsigned long long)r.stats.plrg_actions,
              (unsigned long long)r.stats.slrg_sets, (unsigned long long)r.stats.rg_nodes,
              (unsigned long long)r.stats.rg_open_left);
  std::printf("time: %.1f ms total — %.1f ms graph construction + %.1f ms search\n", ms,
              r.stats.time_graph_ms, r.stats.time_search_ms);

  if (!r.ok()) {
    std::printf("no plan: %s\n", r.failure.c_str());
    return scenario == 'A' ? 0 : 1;  // scenario A is *supposed* to fail
  }

  std::printf("\nplan (%zu actions, cost lower bound %.2f):\n%s", r.plan->size(),
              r.plan->cost_lb, r.plan->str(cp).c_str());

  auto rep = exec.execute(*r.plan);
  if (!rep.feasible) {
    std::printf("execution failed: %s\n", rep.failure.c_str());
    return 1;
  }
  std::printf("\nrealized cost: %.2f\n", rep.actual_cost);
  std::printf("max reserved LAN bandwidth: %.1f\n", rep.max_reserved(net::LinkClass::Lan));
  std::printf("max reserved WAN bandwidth: %.1f\n", rep.max_reserved(net::LinkClass::Wan));
  for (const auto& lu : rep.link_use) {
    const net::Link& l = inst->net.link(lu.link);
    std::printf("  link %s-%s (%s): %.1f reserved\n", inst->net.node(l.a).name.c_str(),
                inst->net.node(l.b).name.c_str(), net::link_class_name(lu.cls), lu.used);
  }
  for (const auto& nu : rep.node_use) {
    std::printf("  node %s: %.1f cpu\n", inst->net.node(nu.node).name.c_str(), nu.used);
  }
  return 0;
}
