// Quickstart: solve the paper's Fig. 3 scenario end to end.
//
//   $ ./example_quickstart
//
// Builds the two-node Tiny network, runs the greedy baseline (which fails,
// Scenario 1) and the leveled planner (which finds the Fig. 4 plan), then
// executes the plan concretely and prints the resulting deployment.
#include <cstdio>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"

int main() {
  using namespace sekitei;

  // 1. The problem: deliver >= 90 units of the M stream across a 70-unit
  //    link, with 30 CPU on the source node (Fig. 3).
  auto inst = domains::media::tiny();
  std::printf("network: %zu nodes, %zu links\n", inst->net.node_count(),
              inst->net.link_count());

  // 2. The greedy baseline (original Sekitei / scenario A) fails: it would
  //    push all 200 available units through the Splitter, needing 40 CPU.
  {
    auto cp = model::compile(inst->problem, domains::media::scenario('A'));
    core::PlannerOptions opt;
    opt.mode = core::PlannerOptions::Mode::Greedy;
    core::Sekitei planner(cp, opt);
    auto r = planner.plan();
    std::printf("\n[greedy / scenario A] %s\n",
                r.ok() ? "found a plan (unexpected!)" : ("no plan: " + r.failure).c_str());
  }

  // 3. The leveled planner (scenario C: cutpoints 90 and 100) understands it
  //    may process less than everything, and finds the 7-action plan.
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  if (!r.ok()) {
    std::printf("unexpected failure: %s\n", r.failure.c_str());
    return 1;
  }
  std::printf("\n[leveled / scenario C] plan with %zu actions:\n%s", r.plan->size(),
              r.plan->str(cp).c_str());

  // 4. Execute it: the deployment processes 100 units (greedy within the
  //    chosen [90,100) level) and reserves 65 units of WAN bandwidth.
  auto rep = exec.execute(*r.plan);
  std::printf("\nexecution: %s\n", rep.feasible ? "feasible" : rep.failure.c_str());
  std::printf("realized cost: %.2f\n", rep.actual_cost);
  std::printf("WAN bandwidth reserved: %.1f units\n", rep.max_reserved(net::LinkClass::Wan));
  for (const auto& nu : rep.node_use) {
    std::printf("cpu used on %s: %.1f\n", inst->net.node(nu.node).name.c_str(), nu.used);
  }
  return 0;
}
