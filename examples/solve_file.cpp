// Command-line planner: load a component domain and a problem description
// from files, plan, execute, and report — the full paper pipeline without
// writing a line of C++.
//
//   $ ./example_solve_file <domain.sk> <problem.sk> [--greedy] [--plan-only]
//                          [--deadline-ms <D>] [--trace <file>] [--stats-json]
//                          [--lint] [--log <level>]
//
// --lint runs the static-analysis battery (analysis/analyzer.hpp) over the
// compiled instance and prints its findings before planning; when the
// analysis proves the instance infeasible the search is skipped entirely
// and the exit code is 1 (the no-plan code).
//
// --deadline-ms bounds the planning time: when the deadline fires the run
// stops cooperatively at the next progress tick.  If the stopped search held
// a replay-validated incumbent plan it is reported anyway and the exit code
// is 6 (degraded: feasible but not proven optimal); with no incumbent the
// exit code is 3 (deadline exceeded), after the partial planner stats.
//
// SEKITEI_FAULTS=<point>:<nth>[:throw|:fail][,...] arms deterministic fault
// injection before anything is loaded (support/fault.hpp).
//
// --trace writes a Chrome trace-event JSON file (load in chrome://tracing or
// https://ui.perfetto.dev) covering compile, the planner phases and the
// validating executor.  --stats-json prints the PlannerStats record as one
// JSON line.  --log installs a stderr text sink at the given level
// (trace|debug|info|warn|error).
//
// Sample inputs live in examples/data/ (the paper's Fig. 3 scenario):
//
//   $ ./example_solve_file examples/data/media.sk examples/data/tiny.sk
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "analysis/analyzer.hpp"
#include "core/planner.hpp"
#include "core/stats.hpp"
#include "model/compile.hpp"
#include "model/textio.hpp"
#include "sim/executor.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/stop_token.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace {

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) sekitei::raise(std::string("cannot open ") + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sekitei;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <domain.sk> <problem.sk> [--greedy] [--plan-only]\n"
                 "          [--deadline-ms <D>] [--trace <file>] [--stats-json]\n"
                 "          [--lint] [--log <level>]\n",
                 argv[0]);
    return 2;
  }
  {
    std::string fault_error;
    if (!fault::install_from_env("SEKITEI_FAULTS", &fault_error)) {
      std::fprintf(stderr, "error: SEKITEI_FAULTS: %s\n", fault_error.c_str());
      return 2;
    }
  }
  bool greedy = false, plan_only = false, stats_json = false, lint = false;
  double deadline_ms = 0.0;
  const char* trace_path = nullptr;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--greedy") == 0) {
      greedy = true;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--plan-only") == 0) {
      plan_only = true;
    } else if (std::strcmp(argv[i], "--stats-json") == 0) {
      stats_json = true;
    } else if (std::strcmp(argv[i], "--lint") == 0) {
      lint = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--log") == 0 && i + 1 < argc) {
      const char* name = argv[++i];
#ifndef SEKITEI_LOG_DISABLED
      const log::Level lvl = log::parse_level(name);
      log::set_level(lvl);
      if (lvl != log::Level::Off) {
        log::add_sink(std::make_shared<log::StreamSink>(stderr));
      } else if (std::strcmp(name, "off") != 0) {
        std::fprintf(stderr, "unknown log level '%s'\n", name);
        return 2;
      }
#else
      std::fprintf(stderr, "--log %s ignored: built with SEKITEI_LOG_DISABLED\n", name);
#endif
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    }
  }

  trace::Collector collector;
  if (trace_path) trace::install(&collector);

  try {
    auto lp = model::load_problem(slurp(argv[1]), slurp(argv[2]));
    std::printf("domain: %zu interfaces, %zu components; network: %zu nodes, %zu links\n",
                lp->domain.interface_count(), lp->domain.component_count(),
                lp->net.node_count(), lp->net.link_count());

    Stopwatch watch;
    auto cp = [&] {
      trace::Span span("model.compile", "compile");
      return model::compile(lp->problem, lp->scenario);
    }();
    std::printf("leveling: %zu ground actions (%llu combos, %llu pruned)\n", cp.actions.size(),
                (unsigned long long)cp.combos_considered,
                (unsigned long long)cp.combos_pruned);

    if (lint) {
      const analysis::AnalysisReport report = analysis::analyze(cp);
      std::printf("\nlint:\n%s\n", report.render_text().c_str());
      if (report.provably_infeasible) {
        std::printf("no plan: pre-flight analysis proves the instance "
                    "infeasible; search skipped\n");
        return 1;
      }
    }

    core::PlannerOptions opt;
    if (greedy) opt.mode = core::PlannerOptions::Mode::Greedy;
    StopSource stop;
    if (deadline_ms > 0.0) {
      stop.arm_deadline_ms(deadline_ms);
      opt.stop = stop.token();
      opt.anytime = true;        // keep the best incumbent in case the deadline fires
      opt.progress_every = 128;  // finer polling so the deadline is honoured
    }
    core::Sekitei planner(cp, opt);
    sim::Executor exec(cp);
    auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
    std::printf("planning: %.1f ms — graph %.1f ms + search %.1f ms "
                "(PLRG %llu/%llu, SLRG %llu, RG %llu)\n",
                watch.elapsed_ms(), r.stats.time_graph_ms, r.stats.time_search_ms,
                (unsigned long long)r.stats.plrg_props, (unsigned long long)r.stats.plrg_actions,
                (unsigned long long)r.stats.slrg_sets, (unsigned long long)r.stats.rg_nodes);
    if (stats_json) std::printf("%s\n", core::stats_to_json(r.stats).c_str());
    if (trace_path) {
      trace::uninstall();
      if (!collector.write_json(trace_path)) {
        std::fprintf(stderr, "error: cannot write trace to %s\n", trace_path);
        return 2;
      }
      std::printf("trace: %zu events written to %s\n", collector.event_count(), trace_path);
    }
    if (r.stats.stopped && !r.ok()) {
      std::printf("deadline exceeded after %.1f ms: %s (stats above are partial)\n",
                  watch.elapsed_ms(), r.failure.c_str());
      return 3;
    }
    if (!r.ok()) {
      std::printf("no plan: %s\n", r.failure.c_str());
      return 1;
    }
    int exit_code = 0;
    if (r.stats.suboptimal_on_stop) {
      // The deadline cut the proof short but the search held an incumbent.
      std::printf("degraded: deadline fired mid-search; best incumbent plan follows "
                  "(cost %.3f, open lower bound %.3f — not proven optimal)\n",
                  r.stats.incumbent_cost, r.stats.open_cost_lb);
      exit_code = 6;
    }
    std::printf("\nplan (%zu actions, cost lower bound %.3f):\n%s", r.plan->size(),
                r.plan->cost_lb, r.plan->str(cp).c_str());
    if (plan_only) return exit_code;

    auto rep = exec.execute(*r.plan);
    if (!rep.feasible) {
      std::printf("execution failed: %s\n", rep.failure.c_str());
      return 1;
    }
    std::printf("\nexecution: feasible; realized cost %.3f\n", rep.actual_cost);
    for (const auto& lu : rep.link_use) {
      const net::Link& l = lp->net.link(lu.link);
      std::printf("  %s-%s (%s): %.2f bandwidth reserved\n", lp->net.node(l.a).name.c_str(),
                  lp->net.node(l.b).name.c_str(), net::link_class_name(lu.cls), lu.used);
    }
    for (const auto& nu : rep.node_use) {
      std::printf("  %s: %.2f cpu\n", lp->net.node(nu.node).name.c_str(), nu.used);
    }
    return exit_code;
  } catch (const Error& e) {
    if (trace_path) trace::uninstall();
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
