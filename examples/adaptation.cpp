// Deployment repair after a link failure (the paper's Section 6 future work,
// implemented in src/repair).
//
//   $ ./example_adaptation
//
// Deploys the media application on a network with a backup route, fails the
// WAN link the deployment uses, computes what survives, and plans a repair
// that reuses the surviving components and streams at reconnect/migrate
// discounts — then compares against planning from scratch.
#include <cstdio>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "repair/repair.hpp"
#include "sim/executor.hpp"

int main() {
  using namespace sekitei;

  auto inst = domains::media::diamond();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto original = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  if (!original.ok()) {
    std::printf("unexpected: no original plan (%s)\n", original.failure.c_str());
    return 1;
  }
  auto rep = exec.execute(*original.plan);
  std::printf("original deployment (%zu actions, cost lower bound %.2f):\n%s\n",
              original.plan->size(), original.plan->cost_lb, original.plan->str(cp).c_str());

  // Fail the WAN link the plan actually crosses.
  repair::Damage dmg;
  for (ActionId a : original.plan->steps) {
    const model::GroundAction& act = cp.actions[a.index()];
    if (act.kind == model::ActionKind::Cross &&
        inst->net.link(act.link).cls == net::LinkClass::Wan) {
      dmg.failed_links.push_back(act.link);
      const net::Link& l = inst->net.link(act.link);
      std::printf(">>> link %s-%s fails <<<\n\n", inst->net.node(l.a).name.c_str(),
                  inst->net.node(l.b).name.c_str());
      break;
    }
  }

  auto survivors = repair::compute_survivors(cp, *original.plan, rep.choices, dmg);
  std::printf("survivors: %zu placements, %zu live streams\n", survivors.placements.size(),
              survivors.streams.size());
  for (const auto& [name, node] : survivors.placements) {
    std::printf("  %s stays on %s\n", name.c_str(), inst->net.node(node).name.c_str());
  }

  net::Network damaged = repair::damaged_copy(inst->net, dmg, &survivors.residual);
  model::CppProblem rp = repair::repair_problem(inst->problem, damaged, survivors);
  auto rcp = model::compile(rp, domains::media::scenario('C'));
  repair::apply_adaptation_costs(rcp, survivors, {});

  core::Sekitei rplanner(rcp);
  sim::Executor rexec(rcp);
  auto rr = rplanner.plan([&](const core::Plan& p) { return rexec.execute(p).feasible; });
  if (!rr.ok()) {
    std::printf("no repair possible: %s\n", rr.failure.c_str());
    return 1;
  }
  std::printf("\nrepair plan (%zu actions, cost lower bound %.2f):\n%s\n", rr.plan->size(),
              rr.plan->cost_lb, rr.plan->str(rcp).c_str());

  // Compare against a full redeployment on the bare damaged network.
  net::Network bare = repair::damaged_copy(inst->net, dmg);
  model::CppProblem sp = inst->problem;
  sp.network = &bare;
  auto scp = model::compile(sp, domains::media::scenario('C'));
  core::Sekitei splanner(scp);
  sim::Executor sexec(scp);
  auto sr = splanner.plan([&](const core::Plan& p) { return sexec.execute(p).feasible; });
  if (sr.ok()) {
    std::printf("from-scratch redeployment would need %zu actions at cost >= %.2f;\n"
                "the repair needs %zu actions at cost >= %.2f (%.0f%% saved)\n",
                sr.plan->size(), sr.plan->cost_lb, rr.plan->size(), rr.plan->cost_lb,
                100.0 * (1.0 - rr.plan->cost_lb / sr.plan->cost_lb));
  }
  return 0;
}
