// Cost-function tradeoffs (the paper's Scenario 2 / Fig. 5).
//
//   $ ./example_cost_tradeoff [wLink]
//
// Builds the Fig. 5 situation — a T stream deliverable over three generous
// links or over two thin links plus Zip/Unzip — and shows how the optimal
// plan flips with the relative cost of link bandwidth (wLink) vs node
// processing.  "Note that, in general, the cheapest plan is not necessarily
// the one with the smallest number of steps."
#include <cstdio>
#include <cstdlib>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"

int main(int argc, char** argv) {
  using namespace sekitei;

  const double w = argc > 1 ? std::atof(argv[1]) : 1.0;
  domains::media::Params params;
  params.link_cost_weight = w;

  auto inst = domains::media::fig5(params);
  std::printf("Fig. 5 network (%zu nodes): long route 3 x %g units, short route 2 x %g units\n",
              inst->net.node_count(), params.lan_bw, 0.55 * 0.7 * params.client_demand);
  std::printf("link-cost weight wLink = %.2f (component weight fixed at 1)\n\n", w);

  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  if (!r.ok()) {
    std::printf("no plan: %s\n", r.failure.c_str());
    return 1;
  }
  std::printf("optimal plan (%zu steps, cost lower bound %.3f):\n%s\n", r.plan->size(),
              r.plan->cost_lb, r.plan->str(cp).c_str());

  bool used_zip = false;
  for (ActionId a : r.plan->steps) {
    const model::GroundAction& act = cp.actions[a.index()];
    used_zip = used_zip || (act.kind == model::ActionKind::Place &&
                            cp.domain->component_at(act.spec_index).name == "Zip");
  }
  std::printf("=> with wLink = %.2f the planner %s\n", w,
              used_zip ? "compresses and takes the short route (more steps, cheaper)"
                       : "sends the raw T stream over the long route (fewer steps)");
  std::printf("try: ./example_cost_tradeoff 0.3   and   ./example_cost_tradeoff 1.5\n");
  return 0;
}
