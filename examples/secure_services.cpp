// Secure service composition across a DMZ (the web-services motivation of
// the paper's introduction).
//
//   $ ./example_secure_services [--trusted]
//
// A sensitive response stream must reach the frontend across a WAN link.
// When the link is untrusted, the security cross-condition
// (`link.sec >= R.sens`) makes direct crossing logically impossible, and the
// planner injects an Encryptor/Decryptor pair around it — component
// injection driven by a *qualitative* constraint rather than bandwidth.
#include <cstdio>
#include <cstring>

#include "core/planner.hpp"
#include "domains/services.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"

int main(int argc, char** argv) {
  using namespace sekitei;

  domains::services::Params params;
  params.trusted_wan = argc > 1 && std::strcmp(argv[1], "--trusted") == 0;

  auto inst = domains::services::dmz(params);
  std::printf("DMZ network: db -LAN(sec 1)- gw1 -WAN(sec %d)- gw2 -LAN(sec 1)- fe\n",
              params.trusted_wan ? 1 : 0);
  std::printf("frontend demands >= %.0f units of the sensitive response\n\n",
              params.response_demand);

  auto cp = model::compile(inst->problem, domains::services::scenario(params));
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  if (!r.ok()) {
    std::printf("no deployment: %s\n", r.failure.c_str());
    return 1;
  }
  std::printf("deployment (%zu actions, cost lower bound %.2f):\n%s\n", r.plan->size(),
              r.plan->cost_lb, r.plan->str(cp).c_str());

  auto rep = exec.execute(*r.plan);
  std::printf("execution: %s; realized cost %.2f; WAN bandwidth %.2f\n",
              rep.feasible ? "feasible" : rep.failure.c_str(), rep.actual_cost,
              rep.max_reserved(net::LinkClass::Wan));
  std::printf("\ntry the other mode: %s %s\n", argv[0],
              params.trusted_wan ? "(default = untrusted)" : "--trusted");
  return 0;
}
