// Grid workflow deployment — the paper's Section 1 motivating scenario.
//
//   $ ./example_grid_workflow [deadline]
//
// A two-task scientific pipeline (Preprocess -> Analyze) must deliver
// results to a portal before a deadline.  The input data exists as two
// replicas: near-but-slow and far-but-fast.  The planner maps tasks to
// cluster nodes, picks the replica, routes the transfers, and sizes the data
// volume — "deploying the task graph scenario in a way that minimizes
// resource consumption while meeting specified deadline goals".
#include <cstdio>
#include <cstdlib>

#include "core/planner.hpp"
#include "domains/grid.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"

int main(int argc, char** argv) {
  using namespace sekitei;

  domains::grid::Params params;
  if (argc > 1) params.deadline = std::atof(argv[1]);

  auto inst = domains::grid::two_cluster(params);
  std::printf("grid: %zu nodes; deadline %.0f, required quality %.0f\n",
              inst->net.node_count(), params.deadline, params.quality);

  auto cp = model::compile(inst->problem, domains::grid::scenario(params));
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  if (!r.ok()) {
    std::printf("no deployment meets the deadline: %s\n", r.failure.c_str());
    std::printf("(try a looser one: ./example_grid_workflow 60)\n");
    return 1;
  }

  std::printf("\ndeployment plan (%zu actions, cost lower bound %.2f):\n%s", r.plan->size(),
              r.plan->cost_lb, r.plan->str(cp).c_str());

  auto rep = exec.execute(*r.plan);
  std::printf("\nexecution: %s\n", rep.feasible ? "feasible" : rep.failure.c_str());
  for (const auto& [var, val] : rep.final_vars) {
    const model::VarKey& k = cp.vars.key(var);
    if (k.kind != model::VarKind::IfaceProp) continue;
    if (cp.iface_names[k.a] != "Out" || NodeId(k.b) != inst->portal) continue;
    std::printf("  Out.%s at the portal: %.2f\n", cp.names.str(NameId(k.c)).c_str(), val);
  }
  bool far = false, near = false;
  for (ActionId a : r.plan->steps) {
    const model::GroundAction& act = cp.actions[a.index()];
    if (act.kind == model::ActionKind::Cross && cp.iface_names[act.spec_index] == "Raw") {
      far = far || act.node == inst->storage_far;
      near = near || act.node == inst->storage_near;
    }
  }
  std::printf("  replica used: %s\n", far ? "far (fast links)" : near ? "near (slow link)"
                                                                      : "none");
  return 0;
}
