#include "repair/repair.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace sekitei::repair {

bool Damage::link_failed(LinkId l) const {
  return std::find(failed_links.begin(), failed_links.end(), l) != failed_links.end();
}

bool Damage::node_failed(NodeId n) const {
  return std::find(failed_nodes.begin(), failed_nodes.end(), n) != failed_nodes.end();
}

net::Network damaged_copy(const net::Network& net, const Damage& damage,
                          const sim::ExecutionReport* residual) {
  net::Network out;
  for (NodeId n : net.node_ids()) {
    const net::Node& node = net.node(n);
    std::map<std::string, double> res =
        damage.node_failed(n) ? std::map<std::string, double>{} : node.resources;
    for (const DegradedNode& dn : damage.degraded_nodes) {
      if (dn.node == n && res.count(dn.resource)) {
        res[dn.resource] = std::max(0.0, std::min(res[dn.resource], dn.capacity));
      }
    }
    if (residual != nullptr) {
      for (const sim::NodeUse& nu : residual->node_use) {
        if (nu.node == n && res.count("cpu")) res["cpu"] = std::max(0.0, res["cpu"] - nu.used);
      }
    }
    out.add_node(node.name, std::move(res));
  }
  for (LinkId l : net.link_ids()) {
    if (damage.link_failed(l)) continue;
    const net::Link& link = net.link(l);
    if (damage.node_failed(link.a) || damage.node_failed(link.b)) continue;
    std::map<std::string, double> res = link.resources;
    for (const DegradedLink& dl : damage.degraded_links) {
      if (dl.link == l && res.count(dl.resource)) {
        res[dl.resource] = std::max(0.0, std::min(res[dl.resource], dl.capacity));
      }
    }
    if (residual != nullptr) {
      for (const sim::LinkUse& lu : residual->link_use) {
        if (lu.link == l && res.count("lbw")) res["lbw"] = std::max(0.0, res["lbw"] - lu.used);
      }
    }
    out.add_link(link.a, link.b, link.cls, std::move(res));
  }
  return out;
}

namespace {

/// One provenance walk + re-execution against a fixed effective-failed set.
Survivors walk_survivors(const model::CompiledProblem& cp, const core::Plan& plan,
                         std::span<const double> choices, const Damage& damage,
                         bool drop_goal_component) {
  Survivors out;
  // Live streams: (interface index, node index), seeded by the problem's own
  // initial streams on surviving nodes.
  std::set<std::pair<std::uint32_t, std::uint32_t>> live;
  auto iface_index = [&](const std::string& name) -> std::uint32_t {
    for (std::uint32_t i = 0; i < cp.iface_names.size(); ++i) {
      if (cp.iface_names[i] == name) return i;
    }
    raise("repair: unknown interface " + name);
  };
  for (const model::InitialStream& is : cp.problem->initial_streams) {
    if (!damage.node_failed(is.node)) live.emplace(iface_index(is.iface), is.node.index());
  }

  for (ActionId aid : plan.steps) {
    const model::GroundAction& act = cp.actions[aid.index()];
    if (act.kind == model::ActionKind::Place) {
      if (damage.node_failed(act.node)) continue;
      bool inputs_ok = true;
      for (PropId p : act.pre) {
        const model::PropKey& k = cp.props.key(p);
        if (k.kind == model::PropKind::Avail && !live.count({k.entity, k.node})) {
          inputs_ok = false;
        }
      }
      if (!inputs_ok) continue;
      const std::string& comp = cp.domain->component_at(act.spec_index).name;
      if (drop_goal_component && comp == cp.problem->goal_component) continue;
      out.subplan.steps.push_back(aid);
      out.placements.emplace_back(comp, act.node);
      for (PropId e : act.eff) {
        const model::PropKey& k = cp.props.key(e);
        if (k.kind == model::PropKind::Avail) live.emplace(k.entity, k.node);
      }
    } else {
      if (damage.link_failed(act.link) || damage.node_failed(act.node) ||
          damage.node_failed(act.node2) || !live.count({act.spec_index, act.node.index()})) {
        continue;
      }
      out.subplan.steps.push_back(aid);
      live.emplace(act.spec_index, act.node2.index());
    }
  }

  // Re-execute the surviving sub-plan: exact stream values and residual
  // resource consumption.  The sub-plan is prefix-closed by construction, so
  // this always succeeds when the original plan executed.
  sim::Executor exec(cp);
  out.residual = exec.attempt(out.subplan, choices);
  if (!out.residual.feasible) {
    raise("repair: surviving sub-plan failed to re-execute: " + out.residual.failure);
  }

  // Materialize live streams with their executed values; the leveled
  // property (or the interface's first property) carries the value.
  for (const auto& [iface, node] : live) {
    const model::IfaceLevelInfo& info = cp.iface_levels[iface];
    const spec::InterfaceSpec& ispec = cp.domain->interface_at(iface);
    if (ispec.properties.empty()) continue;
    const std::string prop =
        info.prop.valid() ? cp.names.str(info.prop) : ispec.properties.front().name;
    const NameId prop_id = cp.names.find(prop);
    for (const auto& [var, val] : out.residual.final_vars) {
      const model::VarKey& k = cp.vars.key(var);
      if (k.kind == model::VarKind::IfaceProp && k.a == iface && k.b == node &&
          NameId(k.c) == prop_id) {
        out.streams.push_back({ispec.name, prop, NodeId(node), Interval::point(val)});
        break;
      }
    }
  }
  return out;
}

}  // namespace

Survivors compute_survivors(const model::CompiledProblem& cp, const core::Plan& plan,
                            std::span<const double> choices, const Damage& damage,
                            bool drop_goal_component) {
  // Contract-violation fixpoint: a survivor set is only valid once no
  // degraded entity is overdrawn by the survivors' own residual consumption.
  // A violated entity joins the effective-failed set (survivor selection
  // only — damaged_copy still keeps its degraded capacity) and the walk
  // repeats; the set grows monotonically, so this terminates.
  Damage effective = damage;
  for (;;) {
    Survivors out = walk_survivors(cp, plan, choices, effective, drop_goal_component);
    bool evicted = false;
    for (const DegradedLink& dl : damage.degraded_links) {
      if (dl.resource != "lbw" || effective.link_failed(dl.link)) continue;
      double used = 0.0;
      for (const sim::LinkUse& lu : out.residual.link_use) {
        if (lu.link == dl.link) used += lu.used;
      }
      if (used > dl.capacity + 1e-9) {
        effective.failed_links.push_back(dl.link);
        evicted = true;
      }
    }
    for (const DegradedNode& dn : damage.degraded_nodes) {
      if (dn.resource != "cpu" || effective.node_failed(dn.node)) continue;
      double used = 0.0;
      for (const sim::NodeUse& nu : out.residual.node_use) {
        if (nu.node == dn.node) used += nu.used;
      }
      if (used > dn.capacity + 1e-9) {
        effective.failed_nodes.push_back(dn.node);
        evicted = true;
      }
    }
    if (!evicted) return out;
  }
}

void apply_adaptation_costs(model::CompiledProblem& cp, const Survivors& survivors,
                            const AdaptationCosts& costs) {
  for (model::GroundAction& act : cp.actions) {
    if (act.kind != model::ActionKind::Place) continue;
    const std::string& comp = cp.domain->component_at(act.spec_index).name;
    double factor = 1.0;
    for (const auto& [name, node] : survivors.placements) {
      if (name != comp) continue;
      factor = std::min(factor,
                        node == act.node ? costs.reconnect_factor : costs.migrate_factor);
    }
    if (factor < 1.0) {
      act.cost_lb = std::max(act.cost_lb * factor, 1e-6);
      act.cost_ub = std::max(act.cost_ub * factor, act.cost_lb);
    }
  }
}

model::CppProblem repair_problem(const model::CppProblem& base, const net::Network& damaged_net,
                                 const Survivors& survivors) {
  model::CppProblem out;
  out.network = &damaged_net;
  out.domain = base.domain;
  // Original source streams keep their full production choice; surviving
  // mid-deployment streams come in at their executed concrete values.
  out.initial_streams = base.initial_streams;
  for (const model::InitialStream& s : survivors.streams) {
    bool is_source = false;
    for (const model::InitialStream& b : base.initial_streams) {
      if (b.iface == s.iface && b.node == s.node) is_source = true;
    }
    if (!is_source) out.initial_streams.push_back(s);
  }
  out.preplaced = base.preplaced;  // e.g. the Server
  for (const auto& pl : survivors.placements) {
    if (std::find(out.preplaced.begin(), out.preplaced.end(), pl) == out.preplaced.end()) {
      out.preplaced.push_back(pl);
    }
  }
  out.placement_rule = base.placement_rule;
  out.goal_component = base.goal_component;
  out.goal_node = base.goal_node;
  return out;
}

Damage seeded_drift(const model::CompiledProblem& cp, const core::Plan& plan,
                    std::uint64_t seed) {
  Damage out;
  SplitMix64 rng(seed ^ 0xD21F7D21F7ULL);

  // Candidate links: distinct links the plan crossed, in first-use order.
  std::vector<LinkId> used_links;
  std::vector<NodeId> placed_nodes;
  for (ActionId aid : plan.steps) {
    const model::GroundAction& act = cp.actions[aid.index()];
    if (act.kind == model::ActionKind::Place) {
      if (std::find(placed_nodes.begin(), placed_nodes.end(), act.node) == placed_nodes.end()) {
        placed_nodes.push_back(act.node);
      }
    } else if (std::find(used_links.begin(), used_links.end(), act.link) == used_links.end()) {
      used_links.push_back(act.link);
    }
  }
  // Never fail the goal node, a source (initial-stream) node, or a node
  // carrying a preplaced component — that would ask repair to re-deliver to
  // a destination that no longer exists.
  std::vector<NodeId> protected_nodes{cp.problem->goal_node};
  for (const model::InitialStream& is : cp.problem->initial_streams) {
    protected_nodes.push_back(is.node);
  }
  for (const auto& [comp, node] : cp.problem->preplaced) protected_nodes.push_back(node);
  std::vector<NodeId> migratable;
  for (NodeId n : placed_nodes) {
    if (std::find(protected_nodes.begin(), protected_nodes.end(), n) ==
        protected_nodes.end()) {
      migratable.push_back(n);
    }
  }

  const auto fail_link = [&]() -> bool {
    if (used_links.empty()) return false;
    out.failed_links.push_back(used_links[rng.next_below(used_links.size())]);
    return true;
  };
  const auto degrade_link = [&]() -> bool {
    for (std::size_t probe = 0; probe < used_links.size(); ++probe) {
      const LinkId l = used_links[rng.next_below(used_links.size())];
      const auto it = cp.net->link(l).resources.find("lbw");
      if (it == cp.net->link(l).resources.end()) continue;
      out.degraded_links.push_back({l, "lbw", it->second * rng.uniform(0.25, 0.75)});
      return true;
    }
    return false;
  };
  const auto fail_node = [&]() -> bool {
    if (migratable.empty()) return false;
    out.failed_nodes.push_back(migratable[rng.next_below(migratable.size())]);
    return true;
  };
  const auto degrade_node = [&]() -> bool {
    for (std::size_t probe = 0; probe < migratable.size(); ++probe) {
      const NodeId n = migratable[rng.next_below(migratable.size())];
      const auto it = cp.net->node(n).resources.find("cpu");
      if (it == cp.net->node(n).resources.end()) continue;
      // Low enough that a tenant of any size violates the new contract.
      out.degraded_nodes.push_back({n, "cpu", it->second * rng.uniform(0.0, 0.05)});
      return true;
    }
    return false;
  };

  switch (seed % 4) {
    case 0: (void)(fail_link() || degrade_node()); break;
    case 1: (void)(degrade_link() || fail_link() || degrade_node()); break;
    case 2: (void)(fail_node() || fail_link() || degrade_link()); break;
    default: (void)(degrade_node() || degrade_link() || fail_link()); break;
  }
  return out;
}

}  // namespace sekitei::repair
