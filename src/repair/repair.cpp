#include "repair/repair.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"

namespace sekitei::repair {

bool Damage::link_failed(LinkId l) const {
  return std::find(failed_links.begin(), failed_links.end(), l) != failed_links.end();
}

bool Damage::node_failed(NodeId n) const {
  return std::find(failed_nodes.begin(), failed_nodes.end(), n) != failed_nodes.end();
}

net::Network damaged_copy(const net::Network& net, const Damage& damage,
                          const sim::ExecutionReport* residual) {
  net::Network out;
  for (NodeId n : net.node_ids()) {
    const net::Node& node = net.node(n);
    std::map<std::string, double> res =
        damage.node_failed(n) ? std::map<std::string, double>{} : node.resources;
    if (residual != nullptr) {
      for (const sim::NodeUse& nu : residual->node_use) {
        if (nu.node == n && res.count("cpu")) res["cpu"] = std::max(0.0, res["cpu"] - nu.used);
      }
    }
    out.add_node(node.name, std::move(res));
  }
  for (LinkId l : net.link_ids()) {
    if (damage.link_failed(l)) continue;
    const net::Link& link = net.link(l);
    if (damage.node_failed(link.a) || damage.node_failed(link.b)) continue;
    std::map<std::string, double> res = link.resources;
    if (residual != nullptr) {
      for (const sim::LinkUse& lu : residual->link_use) {
        if (lu.link == l && res.count("lbw")) res["lbw"] = std::max(0.0, res["lbw"] - lu.used);
      }
    }
    out.add_link(link.a, link.b, link.cls, std::move(res));
  }
  return out;
}

Survivors compute_survivors(const model::CompiledProblem& cp, const core::Plan& plan,
                            std::span<const double> choices, const Damage& damage,
                            bool drop_goal_component) {
  Survivors out;
  // Live streams: (interface index, node index), seeded by the problem's own
  // initial streams on surviving nodes.
  std::set<std::pair<std::uint32_t, std::uint32_t>> live;
  auto iface_index = [&](const std::string& name) -> std::uint32_t {
    for (std::uint32_t i = 0; i < cp.iface_names.size(); ++i) {
      if (cp.iface_names[i] == name) return i;
    }
    raise("repair: unknown interface " + name);
  };
  for (const model::InitialStream& is : cp.problem->initial_streams) {
    if (!damage.node_failed(is.node)) live.emplace(iface_index(is.iface), is.node.index());
  }

  for (ActionId aid : plan.steps) {
    const model::GroundAction& act = cp.actions[aid.index()];
    if (act.kind == model::ActionKind::Place) {
      if (damage.node_failed(act.node)) continue;
      bool inputs_ok = true;
      for (PropId p : act.pre) {
        const model::PropKey& k = cp.props.key(p);
        if (k.kind == model::PropKind::Avail && !live.count({k.entity, k.node})) {
          inputs_ok = false;
        }
      }
      if (!inputs_ok) continue;
      const std::string& comp = cp.domain->component_at(act.spec_index).name;
      if (drop_goal_component && comp == cp.problem->goal_component) continue;
      out.subplan.steps.push_back(aid);
      out.placements.emplace_back(comp, act.node);
      for (PropId e : act.eff) {
        const model::PropKey& k = cp.props.key(e);
        if (k.kind == model::PropKind::Avail) live.emplace(k.entity, k.node);
      }
    } else {
      if (damage.link_failed(act.link) || damage.node_failed(act.node) ||
          damage.node_failed(act.node2) || !live.count({act.spec_index, act.node.index()})) {
        continue;
      }
      out.subplan.steps.push_back(aid);
      live.emplace(act.spec_index, act.node2.index());
    }
  }

  // Re-execute the surviving sub-plan: exact stream values and residual
  // resource consumption.  The sub-plan is prefix-closed by construction, so
  // this always succeeds when the original plan executed.
  sim::Executor exec(cp);
  out.residual = exec.attempt(out.subplan, choices);
  if (!out.residual.feasible) {
    raise("repair: surviving sub-plan failed to re-execute: " + out.residual.failure);
  }

  // Materialize live streams with their executed values; the leveled
  // property (or the interface's first property) carries the value.
  for (const auto& [iface, node] : live) {
    const model::IfaceLevelInfo& info = cp.iface_levels[iface];
    const spec::InterfaceSpec& ispec = cp.domain->interface_at(iface);
    if (ispec.properties.empty()) continue;
    const std::string prop =
        info.prop.valid() ? cp.names.str(info.prop) : ispec.properties.front().name;
    const NameId prop_id = cp.names.find(prop);
    for (const auto& [var, val] : out.residual.final_vars) {
      const model::VarKey& k = cp.vars.key(var);
      if (k.kind == model::VarKind::IfaceProp && k.a == iface && k.b == node &&
          NameId(k.c) == prop_id) {
        out.streams.push_back({ispec.name, prop, NodeId(node), Interval::point(val)});
        break;
      }
    }
  }
  return out;
}

void apply_adaptation_costs(model::CompiledProblem& cp, const Survivors& survivors,
                            const AdaptationCosts& costs) {
  for (model::GroundAction& act : cp.actions) {
    if (act.kind != model::ActionKind::Place) continue;
    const std::string& comp = cp.domain->component_at(act.spec_index).name;
    double factor = 1.0;
    for (const auto& [name, node] : survivors.placements) {
      if (name != comp) continue;
      factor = std::min(factor,
                        node == act.node ? costs.reconnect_factor : costs.migrate_factor);
    }
    if (factor < 1.0) {
      act.cost_lb = std::max(act.cost_lb * factor, 1e-6);
      act.cost_ub = std::max(act.cost_ub * factor, act.cost_lb);
    }
  }
}

model::CppProblem repair_problem(const model::CppProblem& base, const net::Network& damaged_net,
                                 const Survivors& survivors) {
  model::CppProblem out;
  out.network = &damaged_net;
  out.domain = base.domain;
  // Original source streams keep their full production choice; surviving
  // mid-deployment streams come in at their executed concrete values.
  out.initial_streams = base.initial_streams;
  for (const model::InitialStream& s : survivors.streams) {
    bool is_source = false;
    for (const model::InitialStream& b : base.initial_streams) {
      if (b.iface == s.iface && b.node == s.node) is_source = true;
    }
    if (!is_source) out.initial_streams.push_back(s);
  }
  out.preplaced = base.preplaced;  // e.g. the Server
  for (const auto& pl : survivors.placements) {
    if (std::find(out.preplaced.begin(), out.preplaced.end(), pl) == out.preplaced.end()) {
      out.preplaced.push_back(pl);
    }
  }
  out.placement_rule = base.placement_rule;
  out.goal_component = base.goal_component;
  out.goal_node = base.goal_node;
  return out;
}

}  // namespace sekitei::repair
