// Deployment repair and adaptation — the paper's stated future work
// (Section 6): "we also intend to use our planner for repairing and adapting
// existing deployments by introducing operators for migrating and
// reconnecting components.  Separate operators are necessary, because the
// cost of migration differs from that of the initial deployment."
//
// Model: after a network change (failed links/nodes), the surviving part of
// the old deployment becomes the *initial state* of a new CPP:
//   1. a provenance walk over the executed plan keeps exactly the actions
//      whose node/link survived and whose consumed streams survived — an
//      executable sub-plan;
//   2. the sub-plan is re-executed to obtain the survivors' concrete stream
//      values and their residual resource consumption (components that died
//      are torn down and release their resources);
//   3. the repair problem = damaged network minus residual consumption,
//      surviving components pre-placed, surviving streams initial; placement
//      actions re-costed:
//        * RECONNECT — re-place on the node where the component already
//          runs (cheapest, only the linkage is re-established),
//        * MIGRATE — place on a different node while it exists elsewhere,
//        * fresh deployment at full cost otherwise.
// Running the standard planner on this problem yields a repair plan that
// naturally reuses what survived.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "model/compile.hpp"
#include "model/problem.hpp"
#include "sim/executor.hpp"

namespace sekitei::repair {

/// Capacity degradation (the common drift case — bandwidth drops, CPU
/// contention — as opposed to binary failure).  `capacity` is the resource's
/// new absolute value; it is applied as min(old, capacity), so drift never
/// *raises* a capacity through this channel.
struct DegradedNode {
  NodeId node;
  std::string resource;  // e.g. "cpu"
  double capacity = 0.0;
};

struct DegradedLink {
  LinkId link;
  std::string resource;  // e.g. "lbw"
  double capacity = 0.0;
};

struct Damage {
  std::vector<LinkId> failed_links;
  std::vector<NodeId> failed_nodes;
  std::vector<DegradedLink> degraded_links;
  std::vector<DegradedNode> degraded_nodes;

  [[nodiscard]] bool link_failed(LinkId l) const;
  [[nodiscard]] bool node_failed(NodeId n) const;
  [[nodiscard]] bool empty() const {
    return failed_links.empty() && failed_nodes.empty() && degraded_links.empty() &&
           degraded_nodes.empty();
  }
};

/// What remains of a running deployment.
struct Survivors {
  core::Plan subplan;  // surviving actions, original order (executable)
  std::vector<std::pair<std::string, NodeId>> placements;
  std::vector<model::InitialStream> streams;  // live streams at concrete values
  sim::ExecutionReport residual;  // sub-plan execution: what survivors consume
};

/// Provenance walk + sub-plan re-execution (see file comment).
/// `choices` are the original execution's production choices
/// (ExecutionReport::choices).  `drop_goal_component` excludes the goal
/// component from survivors so the repair plan re-validates delivery.
///
/// Degraded capacities follow the resource-contract model (Le Sommer):
/// a degradation is a renegotiated contract, and a survivor whose residual
/// consumption exceeds the new capacity has its contract violated — the
/// entity is treated as failed *for survivor selection only* (the network
/// keeps the degraded capacity) and the walk repeats until no survivor
/// overdraws a degraded link's "lbw" or node's "cpu".  The effective-failed
/// set grows monotonically, so the fixpoint terminates.
[[nodiscard]] Survivors compute_survivors(const model::CompiledProblem& cp,
                                          const core::Plan& plan,
                                          std::span<const double> choices,
                                          const Damage& damage,
                                          bool drop_goal_component = true);

/// A copy of `net` with failed links removed, failed nodes stripped of links
/// and resources, degraded capacities clamped to their new values, and
/// (optionally) the survivors' residual consumption deducted from link
/// bandwidth / node cpu.  Node ids are preserved.
[[nodiscard]] net::Network damaged_copy(const net::Network& net, const Damage& damage,
                                        const sim::ExecutionReport* residual = nullptr);

struct AdaptationCosts {
  double reconnect_factor = 0.2;  // re-place on the same node
  double migrate_factor = 0.6;    // re-place on a different node
};

/// Re-costs the compiled problem's placement actions according to the old
/// deployment (see file comment).  Call after model::compile() on the repair
/// problem, before planning.
void apply_adaptation_costs(model::CompiledProblem& cp, const Survivors& survivors,
                            const AdaptationCosts& costs);

/// Assembles the repair CPP: `base` with the damaged network substituted,
/// surviving placements pre-placed, and surviving streams initial.
/// The returned problem points at `damaged_net` and base.domain.
[[nodiscard]] model::CppProblem repair_problem(const model::CppProblem& base,
                                               const net::Network& damaged_net,
                                               const Survivors& survivors);

/// Deterministically derives a plausible drift event from a solved instance
/// (shared by the drift oracle, the load generator's --drift stream, and
/// bench_drift).  By seed % 4: fail a link the plan crossed / degrade a
/// crossed link's "lbw" / fail a node hosting a placed component (never the
/// goal node, a source node, or a preplaced node) / degrade such a node's
/// "cpu" hard enough to evict its tenant.  Falls back down that list when a
/// variant has no candidate; the result may be empty only for plans that
/// place nothing and cross nothing.
[[nodiscard]] Damage seeded_drift(const model::CompiledProblem& cp, const core::Plan& plan,
                                  std::uint64_t seed);

}  // namespace sekitei::repair
