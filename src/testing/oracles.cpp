#include "testing/oracles.hpp"

#include <cmath>
#include <memory>
#include <utility>

#include "analysis/analyzer.hpp"
#include "analysis/symmetry.hpp"
#include "core/planner.hpp"
#include "model/compile.hpp"
#include "model/textio.hpp"
#include "repair/repair.hpp"
#include "service/engine.hpp"
#include "sim/executor.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "testing/validator.hpp"

namespace sekitei::testing {

namespace {

constexpr double kEps = 1e-6;

bool close(double a, double b) {
  return std::abs(a - b) <= kEps * std::max({1.0, std::abs(a), std::abs(b)});
}

std::string fmt(double v) { return format_number(v); }

/// A solved run kept alive: the compiled problem pins into the loaded
/// instance, and the plan indexes into the compiled problem.
struct RunContext {
  std::unique_ptr<model::LoadedProblem> lp;
  model::CompiledProblem cp;
  core::PlanResult result;
  SolveOutcome outcome;
};

/// Loads, compiles and plans one pair of .sk texts.  `strip_levels`
/// reproduces scenario A (the greedy baseline's trivial [0,inf) levels).
RunContext run_planner(const std::string& domain_text, const std::string& problem_text,
                       core::PlannerOptions::Mode mode, bool strip_levels,
                       const OracleConfig& cfg) {
  RunContext ctx;
  ctx.lp = model::load_problem(domain_text, problem_text);
  if (strip_levels) {
    ctx.lp->scenario.iface_levels.clear();
    ctx.lp->scenario.link_levels.clear();
    ctx.lp->scenario.node_levels.clear();
  }
  ctx.cp = model::compile(ctx.lp->problem, ctx.lp->scenario);

  core::PlannerOptions opt;
  opt.mode = mode;
  opt.max_rg_expansions = cfg.max_rg_expansions;
  opt.max_slrg_sets = cfg.max_slrg_sets;
  core::Sekitei planner(ctx.cp, opt);
  sim::Executor exec(ctx.cp);
  ctx.result = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });

  ctx.outcome.rg_expansions = ctx.result.stats.rg_expansions;
  ctx.outcome.failure = ctx.result.failure;
  if (ctx.result.ok()) {
    ctx.outcome.verdict = Verdict::Solved;
    ctx.outcome.cost_lb = ctx.result.plan->cost_lb;
    ctx.outcome.plan_text = ctx.result.plan->str(ctx.cp);
    ctx.outcome.actual_cost = exec.execute(*ctx.result.plan).actual_cost;
  } else if (ctx.result.stats.hit_search_limit || ctx.result.stats.stopped) {
    ctx.outcome.verdict = Verdict::Unknown;
  } else {
    ctx.outcome.verdict = Verdict::Infeasible;
  }
  return ctx;
}

std::string describe(const SolveOutcome& o) {
  std::string s = verdict_name(o.verdict);
  if (o.verdict == Verdict::Solved) {
    s += " (cost_lb " + fmt(o.cost_lb) + ", actual " + fmt(o.actual_cost) + ")";
  }
  return s;
}

}  // namespace

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Solved: return "solved";
    case Verdict::Infeasible: return "infeasible";
    case Verdict::Unknown: break;
  }
  return "unknown";
}

bool parse_oracle_set(const std::string& csv, OracleConfig& cfg, std::string* error) {
  cfg.greedy = cfg.preflight = cfg.validator = false;
  cfg.permutation = cfg.widening = cfg.refinement = cfg.service = false;
  cfg.drift = cfg.symmetry = cfg.cp = false;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string name = csv.substr(pos, comma - pos);
    pos = comma + 1;
    if (name.empty()) continue;
    if (name == "all") {
      cfg.greedy = cfg.preflight = cfg.validator = true;
      cfg.permutation = cfg.widening = cfg.refinement = cfg.service = true;
      cfg.drift = cfg.symmetry = cfg.cp = true;
    } else if (name == "greedy") {
      cfg.greedy = true;
    } else if (name == "preflight") {
      cfg.preflight = true;
    } else if (name == "validator") {
      cfg.validator = true;
    } else if (name == "permutation") {
      cfg.permutation = true;
    } else if (name == "widening") {
      cfg.widening = true;
    } else if (name == "refinement") {
      cfg.refinement = true;
    } else if (name == "service") {
      cfg.service = true;
    } else if (name == "drift") {
      cfg.drift = true;
    } else if (name == "symmetry") {
      cfg.symmetry = true;
    } else if (name == "cp") {
      cfg.cp = true;
    } else {
      if (error != nullptr) *error = "unknown oracle '" + name + "'";
      return false;
    }
  }
  return true;
}

namespace {

/// The differential half of the battery (validator, preflight, greedy,
/// service) — everything that only needs the rendered texts and the base
/// run.  Shared between run_oracles and replay_text.
void check_differential(const std::string& domain, const std::string& problem,
                        const OracleConfig& cfg, RunContext& base, OracleReport& report) {
  auto disagree = [&report](const char* oracle, std::string detail) {
    report.disagreements.push_back({oracle, std::move(detail)});
  };

  {
    if (cfg.validator && report.optimal.verdict == Verdict::Solved) {
      ++report.oracles_run;
      const Validation v = validate_plan(base.cp, *base.result.plan);
      if (!v.ok) {
        disagree("validator", v.failure);
      } else if (!close(v.actual_cost, report.optimal.actual_cost)) {
        disagree("validator", "re-execution cost " + fmt(v.actual_cost) +
                                  " differs from first execution " +
                                  fmt(report.optimal.actual_cost));
      } else if (v.actual_cost + kEps < report.optimal.cost_lb) {
        disagree("validator", "validator cost " + fmt(v.actual_cost) +
                                  " undercuts reported cost_lb " + fmt(report.optimal.cost_lb));
      }
    }

    if (cfg.preflight) {
      ++report.oracles_run;
      const analysis::PreflightVerdict pv = analysis::preflight(base.cp);
      report.preflight_infeasible = pv.infeasible;
      if (pv.infeasible && report.optimal.verdict == Verdict::Solved) {
        disagree("preflight", std::string("analyzer proved infeasibility (") + pv.code + ": " +
                                  pv.reason + ") but the search found a plan");
      }
    }

    if (cfg.greedy) {
      ++report.oracles_run;
      report.greedy =
          run_planner(domain, problem, core::PlannerOptions::Mode::Greedy, true, cfg).outcome;
      if (report.greedy.verdict == Verdict::Solved &&
          report.optimal.verdict == Verdict::Infeasible) {
        // A value landing exactly on a cutpoint cannot claim the level above
        // it (spec/levels.hpp strict_floor, the Fig. 7 pruning), so the
        // leveled abstraction may legitimately lose a concretely feasible
        // plan at exact boundary coincidences.  Disambiguate by re-running
        // the leveled search under trivial levels: if that also fails, the
        // search itself lost a plan the greedy baseline found — a real bug.
        const SolveOutcome trivial =
            run_planner(domain, problem, core::PlannerOptions::Mode::Leveled, true, cfg)
                .outcome;
        if (trivial.verdict == Verdict::Infeasible) {
          disagree("greedy", "greedy baseline solved but the leveled search claims "
                             "infeasible even under trivial levels");
        }
      }
      if (report.greedy.verdict == Verdict::Solved &&
          report.optimal.verdict == Verdict::Solved &&
          report.optimal.cost_lb > report.greedy.actual_cost + kEps) {
        disagree("greedy", "optimal cost_lb " + fmt(report.optimal.cost_lb) +
                               " exceeds the greedy plan's realized cost " +
                               fmt(report.greedy.actual_cost));
      }
    }

    if (cfg.symmetry && report.optimal.verdict != Verdict::Unknown &&
        report.optimal.rg_expansions <= cfg.service_expansion_cap) {
      // Symmetry oracle: attaching the verified node partition (twin pruning
      // on in both RG and SLRG) must change neither the verdict nor the
      // optimal cost, and the pruned plan must re-prove independently.  The
      // base run compiled without attach_symmetry, so it is the unpruned
      // side of the differential.
      ++report.oracles_run;
      const auto lp = model::load_problem(domain, problem);
      model::CompiledProblem scp = model::compile(lp->problem, lp->scenario);
      analysis::attach_symmetry(scp);
      core::PlannerOptions opt;
      opt.max_rg_expansions = cfg.max_rg_expansions;
      opt.max_slrg_sets = cfg.max_slrg_sets;
      core::Sekitei planner(scp, opt);
      sim::Executor exec(scp);
      const core::PlanResult pruned =
          planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
      const Verdict pv = pruned.ok() ? Verdict::Solved
                         : (pruned.stats.hit_search_limit || pruned.stats.stopped)
                             ? Verdict::Unknown
                             : Verdict::Infeasible;
      if (pv != Verdict::Unknown) {
        if (pv != report.optimal.verdict) {
          disagree("symmetry", std::string("verdict changed under symmetry pruning: ") +
                                   verdict_name(report.optimal.verdict) + " vs " +
                                   verdict_name(pv));
        } else if (pv == Verdict::Solved) {
          if (!close(pruned.plan->cost_lb, report.optimal.cost_lb)) {
            disagree("symmetry", "optimal cost changed under symmetry pruning: " +
                                     fmt(report.optimal.cost_lb) + " vs " +
                                     fmt(pruned.plan->cost_lb));
          } else if (const Validation v = validate_plan(scp, *pruned.plan); !v.ok) {
            disagree("symmetry", "pruned plan failed independent re-validation: " + v.failure);
          }
        }
      }
    }

    if (cfg.cp && report.optimal.verdict != Verdict::Unknown &&
        report.optimal.rg_expansions <= cfg.service_expansion_cap) {
      // CP optimality oracle: the branch-and-bound backend (src/cp) shares
      // no search code with the RG, so agreement on the verdict — and, on
      // solved instances, on the exact optimal cost — is an independent
      // proof that the reported cost is actually optimal, the paper's
      // central claim no consistency oracle can check.  Both directions of
      // infeasible-agreement fall out of the verdict comparison; a
      // budget-exhausted CP run is Unknown and skipped like any other.
      ++report.oracles_run;
      const SolveOutcome bnb =
          run_planner(domain, problem, core::PlannerOptions::Mode::Cp, false, cfg).outcome;
      if (bnb.verdict != Verdict::Unknown) {
        if (bnb.verdict != report.optimal.verdict) {
          disagree("cp", std::string("verdicts differ: rg ") +
                             verdict_name(report.optimal.verdict) + " vs cp " +
                             verdict_name(bnb.verdict));
        } else if (bnb.verdict == Verdict::Solved &&
                   !close(bnb.cost_lb, report.optimal.cost_lb)) {
          disagree("cp", "optimal costs differ: rg " + fmt(report.optimal.cost_lb) + " vs cp " +
                             fmt(bnb.cost_lb));
        }
      }
    }

    if (cfg.service && report.optimal.verdict != Verdict::Unknown &&
        report.optimal.rg_expansions <= cfg.service_expansion_cap) {
      ++report.oracles_run;
      auto make_request = [&](const std::shared_ptr<const model::LoadedProblem>& lp,
                              const char* id) {
        service::PlanRequest req;
        req.id = id;
        req.problem = lp;
        return req;
      };
      std::shared_ptr<const model::LoadedProblem> lp1 = model::load_problem(domain, problem);
      service::PlanResponse first;
      {
        service::PlanningEngine one({.workers = 1});
        first = one.plan(make_request(lp1, "jobs1"));
      }
      service::PlanningEngine many({.workers = cfg.service_jobs});
      std::vector<service::PlanningEngine::Ticket> tickets;
      tickets.reserve(cfg.service_jobs);
      for (std::size_t i = 0; i < cfg.service_jobs; ++i) {
        tickets.push_back(many.submit(make_request(lp1, "jobsN")));
      }
      for (auto& t : tickets) {
        const service::PlanResponse r = t.response.get();
        if (r.outcome != first.outcome || r.plan_text != first.plan_text) {
          disagree("service",
                   std::string("jobs=1 vs jobs=N responses differ: ") +
                       service::outcome_name(first.outcome) + " vs " +
                       service::outcome_name(r.outcome) +
                       (r.plan_text != first.plan_text ? " (plan text differs)" : ""));
          break;
        }
      }
    }

    if (cfg.drift && report.optimal.verdict == Verdict::Solved &&
        report.optimal.rg_expansions <= cfg.service_expansion_cap) {
      // Drift oracle: mutate the solved instance with a seeded damage delta,
      // serve the mutation back as a repair request, and hold the answer to
      // two theorems: (a) the repair plan re-proves through the independent
      // validator on an independently reconstructed repair problem, and
      // (b) its migration-penalty-aware cost never exceeds a full replan
      // that pays the penalty for every prior placement (the replan's
      // worst-case disruption).
      const core::Plan& prior = *base.result.plan;
      const std::vector<double> choices = sim::Executor(base.cp).execute(prior).choices;
      // Per-instance deterministic seed: FNV-1a over the problem text, mixed
      // with the configured drift seed.
      std::uint64_t seed = 1469598103934665603ULL;
      for (const char c : problem) {
        seed = (seed ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
      }
      seed ^= cfg.drift_seed;
      const repair::Damage damage = repair::seeded_drift(base.cp, prior, seed);
      if (!damage.empty()) {
        ++report.oracles_run;
        const repair::AdaptationCosts costs;
        service::RepairSpec spec;
        spec.prior_plan = prior;
        spec.choices = choices;
        spec.damage = damage;
        spec.migration_penalty = cfg.drift_penalty;
        spec.costs = costs;
        service::PlanRequest req;
        req.id = "drift";
        req.problem = model::load_problem(domain, problem);
        req.repair = std::move(spec);
        service::PlanningEngine one({.workers = 1});
        const service::PlanResponse rrep = one.plan(std::move(req));

        // The independent replan yardstick: a fresh leveled search on the
        // bare damaged network under the base run's budgets.
        const net::Network bare = repair::damaged_copy(*base.cp.net, damage, nullptr);
        model::CppProblem fresh = *base.cp.problem;
        fresh.network = &bare;
        const model::CompiledProblem fcp = model::compile(fresh, base.cp.scenario);
        core::PlannerOptions opt;
        opt.max_rg_expansions = cfg.max_rg_expansions;
        opt.max_slrg_sets = cfg.max_slrg_sets;
        core::Sekitei replanner(fcp, opt);
        sim::Executor fexec(fcp);
        const core::PlanResult replan =
            replanner.plan([&](const core::Plan& p) { return fexec.execute(p).feasible; });

        if (rrep.ok() && rrep.plan) {
          Validation v;
          if (rrep.repaired) {
            // Reconstruct the repair problem independently (the walk,
            // residual deduction and compile are deterministic, so action
            // ids line up with the engine's).
            const repair::Survivors survivors =
                repair::compute_survivors(base.cp, prior, choices, damage);
            const net::Network damaged =
                repair::damaged_copy(*base.cp.net, damage, &survivors.residual);
            const model::CppProblem rp =
                repair::repair_problem(*base.cp.problem, damaged, survivors);
            model::CompiledProblem rcp = model::compile(rp, base.cp.scenario);
            repair::apply_adaptation_costs(rcp, survivors, costs);
            v = validate_plan(rcp, *rrep.plan);
          } else {
            v = validate_plan(fcp, *rrep.plan);
          }
          if (!v.ok) {
            disagree("drift", "repair plan failed independent re-validation: " + v.failure);
          }
          if (replan.ok()) {
            std::size_t prior_places = 0;
            for (const ActionId a : prior.steps) {
              if (base.cp.actions[a.index()].kind == model::ActionKind::Place) ++prior_places;
            }
            const double budget = replan.plan->cost_lb +
                                  cfg.drift_penalty * static_cast<double>(prior_places);
            if (rrep.repair_cost > budget + kEps) {
              disagree("drift",
                       "repair cost " + fmt(rrep.repair_cost) + " exceeds full replan " +
                           fmt(replan.plan->cost_lb) + " plus the worst-case migration " +
                           "penalty " + fmt(budget - replan.plan->cost_lb));
            }
          }
        } else if (replan.ok() && !rrep.stats.hit_search_limit && !rrep.stats.stopped) {
          disagree("drift", std::string("repair request answered ") +
                                service::outcome_name(rrep.outcome) +
                                " but a full replan on the damaged network solves");
        }
      }
    }
  }
}

}  // namespace

OracleReport run_oracles(const GenInstance& inst, const OracleConfig& cfg) {
  OracleReport report;
  auto disagree = [&report](const char* oracle, std::string detail) {
    report.disagreements.push_back({oracle, std::move(detail)});
  };

  try {
    const std::string domain = inst.domain_text();
    const std::string problem = inst.problem_text();

    // Base leveled run — every oracle compares against this one.
    RunContext base =
        run_planner(domain, problem, core::PlannerOptions::Mode::Leveled, false, cfg);
    report.optimal = base.outcome;

    // Fault-injection point for harness self-tests and CI: a planted
    // misreport must be caught by the battery and survive minimization.
    if (report.optimal.verdict == Verdict::Solved && SEKITEI_FAULT_POINT("fuzz.misreport")) {
      report.optimal.cost_lb = report.optimal.actual_cost + 1000.0;
    }

    check_differential(domain, problem, cfg, base, report);

    if (cfg.permutation) {
      ++report.oracles_run;
      const GenInstance renamed = inst.permuted(cfg.perm_seed);
      const SolveOutcome perm = run_planner(renamed.domain_text(), renamed.problem_text(),
                                            core::PlannerOptions::Mode::Leveled, false, cfg)
                                    .outcome;
      if (perm.verdict != Verdict::Unknown && report.optimal.verdict != Verdict::Unknown) {
        if (perm.verdict != report.optimal.verdict) {
          disagree("permutation", "verdict changed under renaming: " +
                                      describe(report.optimal) + " vs " + describe(perm));
        } else if (perm.verdict == Verdict::Solved &&
                   !close(perm.cost_lb, report.optimal.cost_lb)) {
          disagree("permutation", "optimal cost changed under renaming: " +
                                      fmt(report.optimal.cost_lb) + " vs " + fmt(perm.cost_lb));
        }
      }
    }

    if (cfg.widening) {
      ++report.oracles_run;
      const GenInstance widened = inst.widened(cfg.widen_factor);
      const SolveOutcome wide = run_planner(widened.domain_text(), widened.problem_text(),
                                            core::PlannerOptions::Mode::Leveled, false, cfg)
                                    .outcome;
      if (report.optimal.verdict == Verdict::Solved) {
        if (wide.verdict == Verdict::Infeasible) {
          disagree("widening", "instance became infeasible after widening capacities by " +
                                   fmt(cfg.widen_factor) + "x");
        } else if (wide.verdict == Verdict::Solved &&
                   wide.cost_lb > report.optimal.cost_lb + kEps &&
                   !close(wide.cost_lb, report.optimal.cost_lb)) {
          disagree("widening", "optimal cost rose from " + fmt(report.optimal.cost_lb) +
                                   " to " + fmt(wide.cost_lb) + " after widening capacities");
        }
      }
    }

    if (cfg.refinement) {
      if (const std::optional<GenInstance> fine = inst.refined()) {
        ++report.oracles_run;
        const SolveOutcome ref =
            run_planner(fine->domain_text(), fine->problem_text(),
                        core::PlannerOptions::Mode::Leveled, false, cfg)
                .outcome;
        if (ref.verdict != Verdict::Unknown && report.optimal.verdict != Verdict::Unknown) {
          if (ref.verdict != report.optimal.verdict) {
            disagree("refinement", "verdict changed under level refinement: " +
                                       describe(report.optimal) + " vs " + describe(ref));
          } else if (ref.verdict == Verdict::Solved &&
                     ref.cost_lb + kEps < report.optimal.cost_lb &&
                     !close(ref.cost_lb, report.optimal.cost_lb)) {
            disagree("refinement", "refining levels loosened the cost bound: " +
                                       fmt(report.optimal.cost_lb) + " -> " + fmt(ref.cost_lb));
          }
        }
      }
    }

  } catch (const std::exception& e) {
    disagree("crash", e.what());
  }
  return report;
}

OracleReport replay_text(const std::string& domain_text, const std::string& problem_text,
                         const OracleConfig& cfg) {
  OracleReport report;
  try {
    RunContext base =
        run_planner(domain_text, problem_text, core::PlannerOptions::Mode::Leveled, false, cfg);
    report.optimal = base.outcome;
    if (report.optimal.verdict == Verdict::Solved && SEKITEI_FAULT_POINT("fuzz.misreport")) {
      report.optimal.cost_lb = report.optimal.actual_cost + 1000.0;
    }
    check_differential(domain_text, problem_text, cfg, base, report);
  } catch (const std::exception& e) {
    report.disagreements.push_back({"crash", e.what()});
  }
  return report;
}

}  // namespace sekitei::testing
