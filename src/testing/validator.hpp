// Independent plan validation for the differential harness.
//
// The planner already validates candidates through the simulator hook, but a
// bug there would self-certify: the same executor both accepts the candidate
// and later "re-proves" it.  The harness therefore re-executes every returned
// plan through a *fresh* sim::Executor and re-derives the things the planner
// reported, without calling any planner code:
//
//   * the plan executes concretely (every condition re-checked with real
//     numbers);
//   * the realized cost never undercuts the plan's reported lower bound;
//   * per-link reservations stay within the link's capacity.
//
// A failed validation is an oracle disagreement like any other: the fuzzer
// records it and the minimizer shrinks the instance.
#pragma once

#include <string>

#include "core/plan.hpp"
#include "model/compile.hpp"

namespace sekitei::testing {

struct Validation {
  bool ok = false;
  std::string failure;     // first violated check, human-readable
  double actual_cost = 0.0;
};

[[nodiscard]] Validation validate_plan(const model::CompiledProblem& cp,
                                       const core::Plan& plan);

}  // namespace sekitei::testing
