#include "testing/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "net/generator.hpp"
#include "net/network.hpp"
#include "support/rng.hpp"

namespace sekitei::testing {

namespace {

// Values are quantized to one decimal so rendered texts are short, stable
// and parse back to exactly the generated number.
double quantize(double v) { return std::round(v * 10.0) / 10.0; }

void append_indexed(std::string& out, const char* prefix, std::uint64_t i) {
  out += prefix;
  out += std::to_string(i);
}

std::string indexed(const char* prefix, std::uint64_t i) {
  std::string s;
  append_indexed(s, prefix, i);
  return s;
}

char class_of(net::LinkClass cls) {
  switch (cls) {
    case net::LinkClass::Lan: return 'l';
    case net::LinkClass::Wan: return 'w';
    case net::LinkClass::Other: break;
  }
  return 'o';
}

/// Imports the node/link structure of a net::Network (names are re-issued as
/// n0..nk in declaration order; resources are overridden by the caller).
void import_topology(const net::Network& net, GenInstance& inst) {
  inst.nodes.clear();
  inst.links.clear();
  for (NodeId n : net.node_ids()) {
    inst.nodes.push_back({net.node(n).name, 30.0});
  }
  for (LinkId l : net.link_ids()) {
    const net::Link& link = net.link(l);
    inst.links.push_back({static_cast<std::uint32_t>(link.a.index()),
                          static_cast<std::uint32_t>(link.b.index()), class_of(link.cls),
                          100.0});
  }
}

/// Sorted, deduplicated, strictly positive cutpoints (LevelSet's contract).
std::vector<double> tidy_cuts(std::vector<double> cuts) {
  for (double& c : cuts) c = quantize(c);
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  cuts.erase(std::remove_if(cuts.begin(), cuts.end(), [](double c) { return c <= 0.0; }),
             cuts.end());
  return cuts;
}

void append_cut_list(std::string& out, const std::vector<double>& cuts) {
  out += "{ ";
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    if (i != 0) out += ", ";
    out += format_number(cuts[i]);
  }
  out += " }";
}

}  // namespace

std::string format_number(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  std::string s(buf);
  // Trim trailing zeros (and a bare trailing dot) for compact, stable text.
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

std::string GenInstance::domain_text() const {
  std::string out;
  out += "# generated workload (seed ";
  out += std::to_string(seed);
  out += ")\n";
  for (const GenInterface& f : ifaces) {
    out += "interface " + f.name + " {\n";
    out += "  property bw degradable;\n";
    if (!f.omit_cross) {
      out += "  cross {\n";
      out += "    " + f.name + ".bw' := min(" + f.name + ".bw, link.lbw);\n";
      out += "    link.lbw -= min(" + f.name + ".bw, link.lbw);\n";
      out += "  }\n";
    }
    out += "  cost " + format_number(f.cross_cost_base);
    if (f.cross_cost_per_unit > 0.0) {
      out += " + " + f.name + ".bw * " + format_number(f.cross_cost_per_unit);
    }
    out += ";\n}\n";
  }
  for (const GenComponent& c : comps) {
    out += "component " + c.name + " {\n";
    if (!c.ins.empty()) {
      out += "  requires ";
      for (std::size_t i = 0; i < c.ins.size(); ++i) {
        if (i != 0) out += ", ";
        out += c.ins[i];
      }
      out += ";\n";
    }
    if (!c.out.empty()) out += "  implements " + c.out + ";\n";

    // The sum of the inputs' bw values, e.g. "I0.bw" or "(I0.bw + I1.bw)".
    std::string in_sum;
    if (c.ins.size() == 1) {
      in_sum = c.ins[0] + ".bw";
    } else if (c.ins.size() > 1) {
      in_sum = "(";
      for (std::size_t i = 0; i < c.ins.size(); ++i) {
        if (i != 0) in_sum += " + ";
        in_sum += c.ins[i] + ".bw";
      }
      in_sum += ")";
    }

    std::vector<std::string> conditions;
    if (c.is_sink() && c.demand > 0.0) {
      conditions.push_back(c.ins[0] + ".bw >= " + format_number(c.demand));
    }
    if (c.cpu_div > 0.0 && !c.ins.empty()) {
      conditions.push_back("node.cpu >= " + in_sum + " / " + format_number(c.cpu_div));
    }
    if (!conditions.empty()) {
      out += "  conditions {\n";
      for (const std::string& cond : conditions) out += "    " + cond + ";\n";
      out += "  }\n";
    }

    std::vector<std::string> effects;
    if (c.is_source()) {
      effects.push_back(c.out + ".bw := " + format_number(c.produce));
    } else if (!c.out.empty()) {
      effects.push_back(c.out + ".bw := " + in_sum + " * " + format_number(c.scale));
    }
    if (c.cpu_div > 0.0 && !c.ins.empty()) {
      effects.push_back("node.cpu -= " + in_sum + " / " + format_number(c.cpu_div));
    }
    if (!effects.empty()) {
      out += "  effects {\n";
      for (const std::string& eff : effects) out += "    " + eff + ";\n";
      out += "  }\n";
    }

    out += "  cost " + format_number(c.cost_base);
    if (c.cost_per_unit > 0.0 && !in_sum.empty()) {
      out += " + " + in_sum + " * " + format_number(c.cost_per_unit);
    }
    out += ";\n}\n";
  }
  return out;
}

std::string GenInstance::problem_text() const {
  std::string out;
  out += "network {\n";
  for (const GenNode& n : nodes) {
    out += "  node " + n.name + " { cpu " + format_number(n.cpu) + "; }\n";
  }
  for (const GenLink& l : links) {
    out += "  link " + nodes[l.a].name + " " + nodes[l.b].name + " ";
    out += l.cls == 'l' ? "lan" : (l.cls == 'w' ? "wan" : "other");
    out += " { lbw " + format_number(l.lbw) + "; }\n";
  }
  out += "}\n";

  out += "problem {\n";
  out += "  stream " + source_iface + ".bw at " + nodes[source_node].name + " = [0, " +
         format_number(stream_hi) + "];\n";
  if (preplace_source) {
    out += "  preplaced " + source_comp + " at " + nodes[source_node].name + ";\n";
  }
  if (forbid_source) out += "  forbid " + source_comp + ";\n";
  if (restrict_sink) {
    out += "  restrict " + sink_comp + " to " + nodes[goal_node].name + ";\n";
  }
  out += "  goal " + sink_comp + " at " + nodes[goal_node].name + ";\n";
  out += "}\n";

  std::string scenario;
  for (const GenInterface& f : ifaces) {
    if (f.cuts.empty()) continue;
    scenario += "  levels " + f.name + ".bw ";
    append_cut_list(scenario, f.cuts);
    scenario += "\n";
  }
  if (!link_cuts.empty()) {
    scenario += "  levels link lbw ";
    append_cut_list(scenario, link_cuts);
    scenario += "\n";
  }
  if (!node_cuts.empty()) {
    scenario += "  levels node cpu ";
    append_cut_list(scenario, node_cuts);
    scenario += "\n";
  }
  if (!scenario.empty()) out += "scenario {\n" + scenario + "}\n";
  return out;
}

std::size_t GenInstance::line_count() const {
  const std::string all = domain_text() + problem_text();
  return static_cast<std::size_t>(std::count(all.begin(), all.end(), '\n'));
}

GenInstance GenInstance::permuted(std::uint64_t perm_seed) const {
  SplitMix64 rng(perm_seed);
  GenInstance out = *this;

  // Renamed nodes in shuffled declaration order (Fisher–Yates).
  std::vector<std::uint32_t> order(nodes.size());
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  std::vector<std::uint32_t> new_index(nodes.size());
  out.nodes.clear();
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::uint32_t old = order[pos];
    new_index[old] = static_cast<std::uint32_t>(pos);
    out.nodes.push_back({indexed("p", pos), nodes[old].cpu});
  }
  for (std::size_t i = 0; i < links.size(); ++i) {
    out.links[i].a = new_index[links[i].a];
    out.links[i].b = new_index[links[i].b];
  }
  out.source_node = new_index[source_node];
  out.goal_node = new_index[goal_node];

  // Shuffled component and interface declaration order (names unchanged:
  // formulae reference them).
  for (std::size_t i = out.comps.size(); i > 1; --i) {
    std::swap(out.comps[i - 1], out.comps[rng.next_below(i)]);
  }
  for (std::size_t i = out.ifaces.size(); i > 1; --i) {
    std::swap(out.ifaces[i - 1], out.ifaces[rng.next_below(i)]);
  }
  return out;
}

GenInstance GenInstance::widened(double factor) const {
  GenInstance out = *this;
  for (GenNode& n : out.nodes) n.cpu = quantize(n.cpu * factor);
  for (GenLink& l : out.links) l.lbw = quantize(l.lbw * factor);
  return out;
}

std::optional<GenInstance> GenInstance::refined() const {
  GenInstance out = *this;
  for (GenInterface& f : out.ifaces) {
    if (f.cuts.empty()) continue;
    // Split the lowest level in half: [0, c0) -> [0, c0/2) [c0/2, c0).
    const double mid = quantize(f.cuts.front() / 2.0);
    if (mid <= 0.0 || mid >= f.cuts.front()) continue;
    f.cuts.insert(f.cuts.begin(), mid);
    return out;
  }
  return std::nullopt;
}

GenInstance generate(std::uint64_t seed, const WorkloadParams& params) {
  SplitMix64 rng(seed);
  GenInstance inst;
  inst.seed = seed;

  // ---- pipeline shape -------------------------------------------------------
  const std::uint32_t stages =
      static_cast<std::uint32_t>(rng.next_below(static_cast<std::uint64_t>(params.max_stages) + 1));
  for (std::uint32_t k = 0; k <= stages; ++k) {
    GenInterface f;
    f.name = indexed("I", k);
    f.cross_cost_base = 1.0;
    f.cross_cost_per_unit = quantize(0.1 * static_cast<double>(rng.next_below(3)));  // 0/.1/.2
    inst.ifaces.push_back(std::move(f));
  }

  const double cap = quantize(rng.uniform(80.0, 240.0));
  inst.stream_hi = cap;
  inst.source_iface = "I0";
  inst.source_comp = "Src";
  inst.sink_comp = "Snk";

  {
    GenComponent src;
    src.name = "Src";
    src.out = "I0";
    src.produce = cap;
    src.cost_base = 1.0;
    inst.comps.push_back(std::move(src));
  }

  // Transformer stages I{k-1} -> I{k}; scales multiply along the chain.
  std::vector<double> scale_after(stages + 1, 1.0);  // product of scales after iface k
  std::vector<double> stage_scale(stages + 1, 1.0);
  for (std::uint32_t k = 1; k <= stages; ++k) {
    GenComponent t;
    t.name = indexed("T", k);
    t.ins = {indexed("I", k - 1)};
    t.out = indexed("I", k);
    t.scale = quantize(0.5 + 0.1 * static_cast<double>(rng.next_below(11)));  // 0.5..1.5
    t.cpu_div = rng.chance(0.75) ? quantize(2.0 + static_cast<double>(rng.next_below(9))) : 0.0;
    t.cost_base = 1.0 + static_cast<double>(rng.next_below(2));
    t.cost_per_unit = quantize(0.1 * static_cast<double>(rng.next_below(3)));
    stage_scale[k] = t.scale;
    inst.comps.push_back(std::move(t));

    // Alternative implementation of the same stage: cheaper per unit but
    // heavier on cpu (or vice versa) — gives the optimal search real choices.
    if (rng.chance(params.alt_prob)) {
      GenComponent alt = inst.comps.back();
      alt.name = indexed("U", k);
      alt.cpu_div = alt.cpu_div > 0.0 ? 0.0 : 4.0;
      alt.cost_base += 1.0;
      inst.comps.push_back(std::move(alt));
    }
  }
  for (std::uint32_t k = stages; k > 0; --k) {
    scale_after[k - 1] = scale_after[k] * stage_scale[k];
  }

  // Compressor detours: Zip halves an interface's bw into a C stream, Unzip
  // doubles it back — lets plans cross thin WAN links (the paper's Scenario 1
  // mechanism), and gives the planner strictly more plans to rank.
  for (std::uint32_t k = 0; k <= stages; ++k) {
    if (!rng.chance(params.aux_prob)) continue;
    GenInterface cf;
    cf.name = indexed("C", k);
    cf.cross_cost_base = 1.0;
    cf.cross_cost_per_unit = 0.1;
    inst.ifaces.push_back(std::move(cf));

    GenComponent zip;
    zip.name = indexed("Zip", k);
    zip.ins = {indexed("I", k)};
    zip.out = indexed("C", k);
    zip.scale = 0.5;
    zip.cpu_div = 10.0;
    zip.cost_base = 1.0;
    zip.cost_per_unit = 0.1;
    inst.comps.push_back(std::move(zip));

    GenComponent unzip;
    unzip.name = indexed("Unzip", k);
    unzip.ins = {indexed("C", k)};
    unzip.out = indexed("I", k);
    unzip.scale = 2.0;
    unzip.cpu_div = 5.0;
    unzip.cost_base = 1.0;
    unzip.cost_per_unit = 0.1;
    inst.comps.push_back(std::move(unzip));
  }

  // Sink demand: sized against the maximum deliverable value, biased to the
  // feasible side with probability feasible_bias.
  const double deliverable = cap * scale_after[0];
  const double bias = rng.chance(params.feasible_bias) ? rng.uniform(0.30, 0.80)
                                                       : rng.uniform(0.95, 1.60);
  {
    GenComponent snk;
    snk.name = "Snk";
    snk.ins = {indexed("I", stages)};
    snk.demand = std::max(1.0, quantize(deliverable * bias));
    snk.cost_base = 1.0;
    inst.comps.push_back(std::move(snk));
  }
  const double demand = inst.comps.back().demand;

  // ---- topology (net/generator families) -----------------------------------
  const std::uint32_t node_count = static_cast<std::uint32_t>(
      2 + rng.next_below(std::max<std::uint32_t>(params.max_nodes, 2) - 1));
  const std::uint64_t topo_seed = rng.next_u64();
  const std::uint64_t family = rng.next_below(3);
  auto random_links = [&rng](std::uint32_t count) {
    std::vector<net::ChainLinkSpec> specs;
    for (std::uint32_t i = 0; i < count; ++i) {
      const bool lan = rng.chance(0.55);
      specs.push_back({lan ? net::LinkClass::Lan : net::LinkClass::Wan, lan ? 150.0 : 70.0, 1.0});
    }
    return specs;
  };
  net::Network topo;
  if (family == 0 || node_count < 4) {
    topo = net::chain(random_links(node_count - 1), 30.0);
  } else if (family == 1) {
    topo = net::star(random_links(node_count - 1), 30.0);
  } else {
    net::WaxmanParams wp;
    wp.nodes = node_count;
    wp.alpha = 0.4;
    wp.beta = 0.6;
    topo = net::waxman(wp, topo_seed);
  }
  import_topology(topo, inst);

  // Randomized capacities.  Feasible-biased sizing keeps WAN links near the
  // demand and cpu near the pipeline's worst aggregate draw; the tight side
  // shrinks both so the planner has to route around (or fail honestly).
  const double lan_base = quantize(rng.uniform(1.1, 2.0) * std::max(demand, cap));
  const double wan_base = quantize(rng.uniform(0.5, 1.3) * demand);
  for (GenLink& l : inst.links) {
    const double base = l.cls == 'l' ? lan_base : wan_base;
    l.lbw = std::max(1.0, quantize(base * rng.uniform(0.8, 1.2)));
  }
  const double cpu_base = rng.chance(params.feasible_bias) ? rng.uniform(25.0, 80.0)
                                                          : rng.uniform(5.0, 30.0);
  for (GenNode& n : inst.nodes) {
    n.cpu = std::max(1.0, quantize(cpu_base * rng.uniform(0.8, 1.2)));
  }

  inst.source_node = static_cast<std::uint32_t>(rng.next_below(inst.nodes.size()));
  inst.goal_node = static_cast<std::uint32_t>(rng.next_below(inst.nodes.size()));
  if (inst.goal_node == inst.source_node) {
    inst.goal_node = (inst.goal_node + 1) % static_cast<std::uint32_t>(inst.nodes.size());
  }
  inst.restrict_sink = rng.chance(params.restrict_prob);

  // ---- levels ---------------------------------------------------------------
  // Required value at interface k is demand / (product of scales after k);
  // cutpoints bracket it the way Table 1 brackets the media demand.
  for (GenInterface& f : inst.ifaces) {
    if (!rng.chance(params.level_prob)) continue;
    double required = demand;
    if (f.name[0] == 'I') {
      const std::uint32_t k = static_cast<std::uint32_t>(std::stoul(f.name.substr(1)));
      required = demand / scale_after[std::min<std::uint32_t>(k, stages)];
    } else {
      // C streams carry half the corresponding I stream.
      const std::uint32_t k = static_cast<std::uint32_t>(std::stoul(f.name.substr(1)));
      required = 0.5 * demand / scale_after[std::min<std::uint32_t>(k, stages)];
    }
    std::vector<double> cuts{required};
    if (rng.chance(0.7)) cuts.push_back(required * rng.uniform(1.05, 1.5));
    if (rng.chance(0.4)) cuts.push_back(required * rng.uniform(0.4, 0.9));
    f.cuts = tidy_cuts(std::move(cuts));
  }
  if (rng.chance(params.link_level_prob)) {
    inst.link_cuts = tidy_cuts({wan_base, quantize(wan_base * 2.0)});
  }
  if (rng.chance(params.node_level_prob)) {
    inst.node_cuts = tidy_cuts({quantize(cpu_base / 2.0), quantize(cpu_base)});
  }

  return inst;
}

}  // namespace sekitei::testing
