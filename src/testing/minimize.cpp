#include "testing/minimize.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>

#include "support/error.hpp"

namespace sekitei::testing {

namespace {

/// Drops interface declarations nothing references any more (a removed
/// component may orphan its private C stream).
void drop_orphan_ifaces(GenInstance& inst) {
  std::set<std::string> used{inst.source_iface};
  for (const GenComponent& c : inst.comps) {
    for (const std::string& in : c.ins) used.insert(in);
    if (!c.out.empty()) used.insert(c.out);
  }
  inst.ifaces.erase(std::remove_if(inst.ifaces.begin(), inst.ifaces.end(),
                                   [&used](const GenInterface& f) {
                                     return used.find(f.name) == used.end();
                                   }),
                    inst.ifaces.end());
}

/// One probe: keep `candidate` as the new best iff it still fails.
struct Prober {
  const StillFails& still_fails;
  std::size_t max_probes;
  std::size_t probes = 0;
  std::size_t accepted = 0;

  [[nodiscard]] bool budget_left() const { return probes < max_probes; }

  bool try_accept(GenInstance& best, GenInstance candidate) {
    if (!budget_left()) return false;
    // A mutation that renders identically is a no-op; accepting it would keep
    // the fixpoint loop spinning until the probe budget drains.
    if (candidate.domain_text() == best.domain_text() &&
        candidate.problem_text() == best.problem_text()) {
      return false;
    }
    ++probes;
    if (!still_fails(candidate)) return false;
    best = std::move(candidate);
    ++accepted;
    return true;
  }
};

bool pass_drop_components(GenInstance& best, Prober& p) {
  bool any = false;
  for (std::size_t i = 0; i < best.comps.size() && p.budget_left();) {
    const GenComponent& c = best.comps[i];
    if (c.name == best.source_comp || c.name == best.sink_comp) {
      ++i;
      continue;
    }
    GenInstance cand = best;
    cand.comps.erase(cand.comps.begin() + static_cast<std::ptrdiff_t>(i));
    drop_orphan_ifaces(cand);
    if (p.try_accept(best, std::move(cand))) {
      any = true;  // the element at i was removed; i now names the next one
    } else {
      ++i;
    }
  }
  return any;
}

/// Splices out 1-in/1-out transformers that are the sole producer of their
/// output: consumers of the output are rewired to the input, shortening the
/// pipeline by one stage.
bool pass_splice_stages(GenInstance& best, Prober& p) {
  bool any = false;
  for (std::size_t i = 0; i < best.comps.size() && p.budget_left();) {
    const GenComponent& c = best.comps[i];
    const bool spliceable = c.ins.size() == 1 && !c.out.empty() &&
                            c.out != best.source_iface && c.ins[0] != c.out;
    std::size_t producers = 0;
    if (spliceable) {
      for (const GenComponent& o : best.comps) producers += (o.out == c.out) ? 1 : 0;
    }
    if (!spliceable || producers != 1) {
      ++i;
      continue;
    }
    GenInstance cand = best;
    const std::string from = c.out, to = c.ins[0];
    cand.comps.erase(cand.comps.begin() + static_cast<std::ptrdiff_t>(i));
    for (GenComponent& o : cand.comps) {
      for (std::string& in : o.ins) {
        if (in == from) in = to;
      }
    }
    drop_orphan_ifaces(cand);
    if (p.try_accept(best, std::move(cand))) {
      any = true;
    } else {
      ++i;
    }
  }
  return any;
}

bool pass_drop_nodes(GenInstance& best, Prober& p) {
  bool any = false;
  // Collapsing the goal onto the source node first frees the goal node (and
  // every link) for removal — the smallest repros are single-node.
  if (best.goal_node != best.source_node && p.budget_left()) {
    GenInstance cand = best;
    cand.goal_node = cand.source_node;
    if (p.try_accept(best, std::move(cand))) any = true;
  }
  for (std::uint32_t i = 0; i < best.nodes.size() && p.budget_left();) {
    if (i == best.source_node || i == best.goal_node) {
      ++i;
      continue;
    }
    GenInstance cand = best;
    cand.nodes.erase(cand.nodes.begin() + i);
    cand.links.erase(std::remove_if(cand.links.begin(), cand.links.end(),
                                    [i](const GenLink& l) { return l.a == i || l.b == i; }),
                     cand.links.end());
    for (GenLink& l : cand.links) {
      if (l.a > i) --l.a;
      if (l.b > i) --l.b;
    }
    if (cand.source_node > i) --cand.source_node;
    if (cand.goal_node > i) --cand.goal_node;
    if (p.try_accept(best, std::move(cand))) {
      any = true;
    } else {
      ++i;
    }
  }
  return any;
}

bool pass_drop_links(GenInstance& best, Prober& p) {
  bool any = false;
  for (std::size_t i = 0; i < best.links.size() && p.budget_left();) {
    GenInstance cand = best;
    cand.links.erase(cand.links.begin() + static_cast<std::ptrdiff_t>(i));
    if (p.try_accept(best, std::move(cand))) {
      any = true;
    } else {
      ++i;
    }
  }
  return any;
}

bool pass_drop_levels(GenInstance& best, Prober& p) {
  bool any = false;
  auto try_mutation = [&](auto&& mutate) {
    if (!p.budget_left()) return;
    GenInstance cand = best;
    mutate(cand);
    if (p.try_accept(best, std::move(cand))) any = true;
  };
  for (std::size_t f = 0; f < best.ifaces.size(); ++f) {
    if (best.ifaces[f].cuts.empty()) continue;
    try_mutation([f](GenInstance& c) { c.ifaces[f].cuts.clear(); });
    for (std::size_t k = 0; k < best.ifaces[f].cuts.size(); ++k) {
      if (k >= best.ifaces[f].cuts.size()) break;
      try_mutation([f, k](GenInstance& c) {
        if (k < c.ifaces[f].cuts.size()) {
          c.ifaces[f].cuts.erase(c.ifaces[f].cuts.begin() + static_cast<std::ptrdiff_t>(k));
        }
      });
    }
  }
  if (!best.link_cuts.empty()) try_mutation([](GenInstance& c) { c.link_cuts.clear(); });
  if (!best.node_cuts.empty()) try_mutation([](GenInstance& c) { c.node_cuts.clear(); });
  return any;
}

bool pass_simplify_numbers(GenInstance& best, Prober& p) {
  bool any = false;
  auto try_mutation = [&](auto&& mutate) {
    if (!p.budget_left()) return;
    GenInstance cand = best;
    mutate(cand);
    if (p.try_accept(best, std::move(cand))) any = true;
  };
  if (best.restrict_sink) try_mutation([](GenInstance& c) { c.restrict_sink = false; });
  if (best.forbid_source) try_mutation([](GenInstance& c) { c.forbid_source = false; });
  if (best.preplace_source) try_mutation([](GenInstance& c) { c.preplace_source = false; });
  for (std::size_t i = 0; i < best.comps.size(); ++i) {
    if (best.comps[i].is_sink() && best.comps[i].demand > 0.0) {
      try_mutation([i](GenInstance& c) { c.comps[i].demand = 0.0; });
    }
    if (best.comps[i].cost_per_unit > 0.0) {
      try_mutation([i](GenInstance& c) { c.comps[i].cost_per_unit = 0.0; });
    }
    if (best.comps[i].cpu_div > 0.0) {
      try_mutation([i](GenInstance& c) { c.comps[i].cpu_div = 0.0; });
    }
    if (best.comps[i].scale != 1.0 && !best.comps[i].is_source() &&
        !best.comps[i].is_sink()) {
      try_mutation([i](GenInstance& c) { c.comps[i].scale = 1.0; });
    }
  }
  for (std::size_t f = 0; f < best.ifaces.size(); ++f) {
    if (best.ifaces[f].cross_cost_per_unit > 0.0) {
      try_mutation([f](GenInstance& c) { c.ifaces[f].cross_cost_per_unit = 0.0; });
    }
    if (!best.ifaces[f].omit_cross) {
      try_mutation([f](GenInstance& c) { c.ifaces[f].omit_cross = true; });
    }
  }
  auto rounded = [](double v) { return std::max(1.0, std::round(v)); };
  try_mutation([&rounded](GenInstance& c) {
    for (GenNode& n : c.nodes) n.cpu = rounded(n.cpu);
    for (GenLink& l : c.links) l.lbw = rounded(l.lbw);
    c.stream_hi = rounded(c.stream_hi);
    for (GenComponent& comp : c.comps) {
      if (comp.demand > 0.0) comp.demand = rounded(comp.demand);
      if (comp.produce > 0.0) comp.produce = rounded(comp.produce);
    }
  });
  return any;
}

}  // namespace

MinimizeResult minimize(GenInstance inst, const StillFails& still_fails,
                        std::size_t max_probes) {
  Prober prober{still_fails, max_probes};
  bool changed = true;
  while (changed && prober.budget_left()) {
    changed = false;
    changed |= pass_drop_components(inst, prober);
    changed |= pass_splice_stages(inst, prober);
    changed |= pass_drop_nodes(inst, prober);
    changed |= pass_drop_links(inst, prober);
    changed |= pass_drop_levels(inst, prober);
    changed |= pass_simplify_numbers(inst, prober);
  }
  return {std::move(inst), prober.probes, prober.accepted};
}

std::string write_repro(const GenInstance& inst, const std::string& dir,
                        const std::string& stem) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);  // ok if it already exists
  const fs::path domain_path = fs::path(dir) / (stem + ".domain.sk");
  const fs::path problem_path = fs::path(dir) / (stem + ".problem.sk");
  std::ofstream d(domain_path), q(problem_path);
  if (!d || !q) raise("testing: cannot write repro files under " + dir);
  d << inst.domain_text();
  q << inst.problem_text();
  d.close();
  q.close();
  if (!d || !q) raise("testing: short write while saving repro under " + dir);
  return domain_path.string();
}

}  // namespace sekitei::testing
