// Differential fuzzing session driver.
//
// fuzz() runs `runs` seeded instances (per-run seed = base seed + run index)
// through the oracle battery, emits one NDJSON record per run plus a final
// summary record, and on any disagreement shrinks the instance with the
// delta-debugging minimizer and writes a `<out_dir>/seed<N>.domain.sk` /
// `.problem.sk` repro pair.
//
// Determinism: the search itself never races a clock — every run uses the
// fixed expansion budgets in OracleConfig, so a given (seed, params) pair
// always produces the same verdicts.  The optional `time_budget_ms` is a
// session-level bound checked before *starting* each run; exhausting it
// stops cleanly after a whole run and is reported in the summary, so a
// budget-truncated sweep is a prefix of the untruncated one.
//
// Fault interplay: any faults armed when fuzz() starts (e.g. CI's
// SEKITEI_FAULTS=fuzz.misreport:1:fail) are snapshotted and re-armed before
// every battery evaluation — including each minimizer probe — so a planted
// single-shot fault persists through minimization instead of firing once
// and vanishing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "testing/oracles.hpp"
#include "testing/workload.hpp"

namespace sekitei::testing {

struct FuzzParams {
  std::uint64_t seed = 1;            // run i fuzzes generate(seed + i)
  std::size_t runs = 100;
  std::uint64_t time_budget_ms = 0;  // 0 = unbounded; see header comment
  WorkloadParams workload;
  OracleConfig oracles;
  std::string out_dir = "fuzz-repros";  // where repro pairs are written
  bool minimize_repros = true;
  std::size_t max_minimize_probes = 400;
};

struct FuzzStats {
  std::size_t runs = 0;  // runs actually executed
  std::size_t solved = 0;
  std::size_t infeasible = 0;
  std::size_t unknown = 0;
  std::size_t oracle_checks = 0;   // individual oracle evaluations
  std::size_t failing_runs = 0;    // runs with >= 1 disagreement
  std::size_t disagreements = 0;   // total disagreements across runs
  bool budget_exhausted = false;   // stopped early on time_budget_ms
  std::vector<std::string> repro_paths;  // domain-file path per written repro

  [[nodiscard]] bool clean() const { return failing_runs == 0; }
};

/// Receives each NDJSON record (no trailing newline).  May be empty.
using EmitLine = std::function<void(const std::string&)>;

/// Runs the session.  Never throws on oracle disagreements (they are data);
/// raises sekitei::Error only for environmental failures such as an
/// unwritable out_dir.
FuzzStats fuzz(const FuzzParams& params, const EmitLine& emit = {});

}  // namespace sekitei::testing
