// Delta-debugging repro minimizer.
//
// Given an instance on which some oracle disagrees (or crashes), shrink it
// while the disagreement persists.  Because instances are structured
// (testing/workload.hpp), reductions are semantic rather than textual:
//
//   * drop a non-source/sink component (with its orphaned interfaces);
//   * splice out a 1-in/1-out transformer, rewiring consumers of its output
//     to its input (chain shortening);
//   * drop a node (plus incident links) or a single link;
//   * drop level cutpoints, the restrict rule, per-unit cost terms and cpu
//     draws; round capacities to integers.
//
// Each candidate is re-rendered to .sk text and re-tested through the same
// oracle battery; a reduction is kept only if the instance still fails.
// Passes repeat to a fixpoint under a probe budget, ddmin-style [Zeller].
// The result is written as a <stem>.domain.sk / <stem>.problem.sk pair that
// example_solve_file and sekitei_fuzz --replay can load directly.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "testing/workload.hpp"

namespace sekitei::testing {

/// Returns true when the candidate instance still exhibits the failure.
/// The minimizer calls this once per probe; the callback must be
/// deterministic for the minimization itself to be reproducible.
using StillFails = std::function<bool(const GenInstance&)>;

struct MinimizeResult {
  GenInstance instance;     // smallest failing instance found
  std::size_t probes = 0;   // candidate evaluations spent
  std::size_t accepted = 0; // reductions that kept the failure
};

[[nodiscard]] MinimizeResult minimize(GenInstance inst, const StillFails& still_fails,
                                      std::size_t max_probes = 400);

/// Writes `<dir>/<stem>.domain.sk` and `<dir>/<stem>.problem.sk` (creating
/// `dir` if needed) and returns the path of the domain file.  Raises
/// sekitei::Error when the files cannot be written.
std::string write_repro(const GenInstance& inst, const std::string& dir,
                        const std::string& stem);

}  // namespace sekitei::testing
