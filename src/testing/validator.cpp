#include "testing/validator.hpp"

#include <string>

#include "sim/executor.hpp"

namespace sekitei::testing {

namespace {
constexpr double kEps = 1e-6;
}

Validation validate_plan(const model::CompiledProblem& cp, const core::Plan& plan) {
  Validation v;
  sim::Executor exec(cp);
  const sim::ExecutionReport rep = exec.execute(plan);
  if (!rep.feasible) {
    v.failure = "plan does not execute: " + rep.failure;
    return v;
  }
  v.actual_cost = rep.actual_cost;

  if (rep.actual_cost + kEps < plan.cost_lb) {
    v.failure = "realized cost " + std::to_string(rep.actual_cost) +
                " undercuts the reported lower bound " + std::to_string(plan.cost_lb);
    return v;
  }
  for (const sim::LinkUse& lu : rep.link_use) {
    const double cap = cp.net->link(lu.link).resource("lbw");
    if (lu.used > cap + kEps) {
      v.failure = "link reservation " + std::to_string(lu.used) + " exceeds capacity " +
                  std::to_string(cap);
      return v;
    }
  }
  v.ok = true;
  return v;
}

}  // namespace sekitei::testing
