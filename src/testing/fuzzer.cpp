#include "testing/fuzzer.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "support/fault.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "testing/minimize.hpp"

namespace sekitei::testing {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Re-arms the faults that were armed when the session started.  Single-shot
/// points fire once per arming, so without this a planted fault would fire
/// on run 0 and be invisible to every later run and minimizer probe.
struct FaultRearmer {
  std::vector<fault::PointStatus> snapshot = fault::status();

  void rearm() const {
    if (snapshot.empty()) return;
    fault::disarm_all();
    for (const fault::PointStatus& p : snapshot) fault::arm(p.point, p.fire_on_nth, p.mode);
  }
};

/// Config with exactly one oracle enabled — minimizer probes re-check only
/// the disagreeing oracle, which keeps probes cheap and the failure
/// predicate sharp.  "crash" keeps the full battery (any stage may throw).
OracleConfig solo(OracleConfig cfg, const std::string& oracle) {
  if (oracle == "crash") return cfg;
  cfg.greedy = oracle == "greedy";
  cfg.preflight = oracle == "preflight";
  cfg.validator = oracle == "validator";
  cfg.permutation = oracle == "permutation";
  cfg.widening = oracle == "widening";
  cfg.refinement = oracle == "refinement";
  cfg.service = oracle == "service";
  cfg.drift = oracle == "drift";
  cfg.symmetry = oracle == "symmetry";
  cfg.cp = oracle == "cp";
  return cfg;
}

/// The distinct oracle names of a failing report — the *backend set* that
/// produced the disagreement.  Minimizer probes must re-run exactly this set
/// (snapshotted once, like the armed faults): probing with only the first
/// disagreeing oracle made repros found by the others vanish whenever
/// shrinking shifted the failure between oracles of one report.
std::vector<std::string> disagreeing_oracles(const OracleReport& report) {
  std::vector<std::string> names;
  for (const Disagreement& d : report.disagreements) {
    if (std::find(names.begin(), names.end(), d.oracle) == names.end()) {
      names.push_back(d.oracle);
    }
  }
  return names;
}

OracleConfig solo_set(const OracleConfig& base, const std::vector<std::string>& oracles) {
  OracleConfig cfg = solo(base, oracles.empty() ? "crash" : oracles.front());
  for (std::size_t i = 1; i < oracles.size(); ++i) {
    const OracleConfig one = solo(base, oracles[i]);
    cfg.greedy |= one.greedy;
    cfg.preflight |= one.preflight;
    cfg.validator |= one.validator;
    cfg.permutation |= one.permutation;
    cfg.widening |= one.widening;
    cfg.refinement |= one.refinement;
    cfg.service |= one.service;
    cfg.drift |= one.drift;
    cfg.symmetry |= one.symmetry;
    cfg.cp |= one.cp;
  }
  return cfg;
}

bool has_disagreement(const OracleReport& report, const std::string& oracle) {
  for (const Disagreement& d : report.disagreements) {
    if (d.oracle == oracle) return true;
  }
  return false;
}

void kv_str(std::string& out, const char* key, const std::string& value) {
  out += '"';
  out += key;
  out += "\":";
  json::append_escaped(out, value);
}

void kv_u64(std::string& out, const char* key, std::uint64_t value) {
  out += '"';
  out += key;
  out += "\":";
  json::append_number(out, value);
}

void kv_f(std::string& out, const char* key, double value) {
  out += '"';
  out += key;
  out += "\":";
  json::append_number(out, value);
}

}  // namespace

FuzzStats fuzz(const FuzzParams& params, const EmitLine& emit) {
  FuzzStats stats;
  const FaultRearmer faults;
  const Clock::time_point session_start = Clock::now();

  for (std::size_t run = 0; run < params.runs; ++run) {
    if (params.time_budget_ms != 0 &&
        ms_since(session_start) >= static_cast<double>(params.time_budget_ms)) {
      stats.budget_exhausted = true;
      break;
    }
    const std::uint64_t seed = params.seed + run;
    const Clock::time_point run_start = Clock::now();
    const GenInstance inst = generate(seed, params.workload);
    faults.rearm();
    const OracleReport report = run_oracles(inst, params.oracles);

    ++stats.runs;
    stats.oracle_checks += report.oracles_run;
    switch (report.optimal.verdict) {
      case Verdict::Solved: ++stats.solved; break;
      case Verdict::Infeasible: ++stats.infeasible; break;
      case Verdict::Unknown: ++stats.unknown; break;
    }
    SEKITEI_METRIC(metrics::registry()
                       .counter("fuzz.runs", {{"verdict", verdict_name(report.optimal.verdict)}})
                       .add(1));

    std::string repro_path;
    std::string repro_error;
    std::size_t repro_lines = 0;
    std::size_t min_probes = 0;
    if (report.failed()) {
      ++stats.failing_runs;
      stats.disagreements += report.disagreements.size();
      SEKITEI_METRIC(metrics::registry()
                         .counter("fuzz.disagreements")
                         .add(report.disagreements.size()));

      GenInstance small = inst;
      if (params.minimize_repros) {
        // Snapshot the full disagreeing-oracle set; a probe still fails when
        // *any* of them disagrees again on the candidate.
        const std::vector<std::string> targets = disagreeing_oracles(report);
        const OracleConfig probe_cfg = solo_set(params.oracles, targets);
        const StillFails still_fails = [&](const GenInstance& cand) {
          faults.rearm();
          const OracleReport probe = run_oracles(cand, probe_cfg);
          for (const std::string& t : targets) {
            if (has_disagreement(probe, t)) return true;
          }
          return false;
        };
        MinimizeResult mr = minimize(inst, still_fails, params.max_minimize_probes);
        small = std::move(mr.instance);
        min_probes = mr.probes;
      }
      repro_lines = small.line_count();
      try {
        repro_path = write_repro(small, params.out_dir, "seed" + std::to_string(seed));
        stats.repro_paths.push_back(repro_path);
      } catch (const std::exception& e) {
        repro_error = e.what();
      }
    }

    if (emit) {
      std::string line = "{\"fuzz\":\"run\",";
      kv_u64(line, "run", run);
      line += ',';
      kv_u64(line, "seed", seed);
      line += ',';
      kv_str(line, "verdict", verdict_name(report.optimal.verdict));
      if (report.optimal.verdict == Verdict::Solved) {
        line += ',';
        kv_f(line, "cost_lb", report.optimal.cost_lb);
        line += ',';
        kv_f(line, "actual_cost", report.optimal.actual_cost);
      }
      line += ',';
      kv_str(line, "greedy", verdict_name(report.greedy.verdict));
      line += ",\"preflight_infeasible\":";
      line += report.preflight_infeasible ? "true" : "false";
      line += ',';
      kv_u64(line, "oracles", report.oracles_run);
      line += ',';
      kv_u64(line, "rg_expansions", report.optimal.rg_expansions);
      line += ',';
      kv_u64(line, "lines", inst.line_count());
      if (report.failed()) {
        line += ",\"disagreements\":[";
        for (std::size_t i = 0; i < report.disagreements.size(); ++i) {
          if (i != 0) line += ',';
          line += "{\"oracle\":";
          json::append_escaped(line, report.disagreements[i].oracle);
          line += ",\"detail\":";
          json::append_escaped(line, report.disagreements[i].detail);
          line += '}';
        }
        line += ']';
        if (!repro_path.empty()) {
          line += ',';
          kv_str(line, "repro", repro_path);
          line += ',';
          kv_u64(line, "repro_lines", repro_lines);
          line += ',';
          kv_u64(line, "min_probes", min_probes);
        }
        if (!repro_error.empty()) {
          line += ',';
          kv_str(line, "repro_error", repro_error);
        }
      }
      line += ',';
      kv_f(line, "ms", ms_since(run_start));
      line += '}';
      emit(line);
    }
  }

  if (emit) {
    std::string line = "{\"fuzz\":\"summary\",";
    kv_u64(line, "seed", params.seed);
    line += ',';
    kv_u64(line, "runs", stats.runs);
    line += ',';
    kv_u64(line, "solved", stats.solved);
    line += ',';
    kv_u64(line, "infeasible", stats.infeasible);
    line += ',';
    kv_u64(line, "unknown", stats.unknown);
    line += ',';
    kv_u64(line, "oracle_checks", stats.oracle_checks);
    line += ',';
    kv_u64(line, "failing_runs", stats.failing_runs);
    line += ',';
    kv_u64(line, "disagreements", stats.disagreements);
    line += ",\"budget_exhausted\":";
    line += stats.budget_exhausted ? "true" : "false";
    line += ",\"repros\":[";
    for (std::size_t i = 0; i < stats.repro_paths.size(); ++i) {
      if (i != 0) line += ',';
      json::append_escaped(line, stats.repro_paths[i]);
    }
    line += "],";
    kv_f(line, "ms", ms_since(session_start));
    line += '}';
    emit(line);
  }
  return stats;
}

}  // namespace sekitei::testing
