// Seeded random workload synthesis for differential testing.
//
// A GenInstance is a *structured* description of a full CPP instance — a
// randomly shaped processing pipeline (source, transformer stages with
// optional alternative implementations and Zip/Unzip-style compressor
// detours, sink with a bandwidth demand) over a topology drawn from the
// net/generator families (chain, star, Waxman), plus level cutpoints, cost
// formulae and placement rules.  It renders to the same two .sk texts the
// CLI tools consume (`domain_text()` + `problem_text()`), so every fuzzed
// instance exercises the real parser path and every minimized repro is a
// file a human can replay with example_solve_file or sekitei_serve.
//
// Keeping the structure (rather than raw text) is what makes the
// delta-debugging minimizer (testing/minimize.hpp) effective: reductions
// operate on components, nodes, links and cutpoints instead of brace-blind
// text lines, and metamorphic transforms (node renaming, capacity widening,
// level refinement) are well-defined instance -> instance functions.
//
// Generated formulae deliberately stay inside the fragment where the
// metamorphic oracles are theorems: conditions are monotone in node/link
// resources and no cost formula references a node or link resource, so
// widening capacities can never raise the cost of an existing plan.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sekitei::testing {

/// One stream interface of the generated domain.  Every interface carries a
/// single degradable property `bw` with the canonical media-style crossing
/// semantics (bw' := min(bw, link.lbw); link.lbw -= ...).
struct GenInterface {
  std::string name;
  double cross_cost_base = 1.0;
  double cross_cost_per_unit = 0.1;  // cross cost = base + bw * per_unit
  std::vector<double> cuts;          // scenario level cutpoints (may be empty)
  bool omit_cross = false;  // minimizer: drop the cross block entirely
};

/// One component.  Semantics by shape:
///   * source: no ins, one out, `out.bw := produce`
///   * transformer: ins -> out, `out.bw := scale * sum(ins)`, optional cpu use
///   * sink: ins, no out, demand condition `in.bw >= demand`
struct GenComponent {
  std::string name;
  std::vector<std::string> ins;  // required interface names
  std::string out;               // implemented interface name ("" = sink)
  double scale = 1.0;
  double cpu_div = 0.0;  // > 0: condition node.cpu >= sum(ins)/cpu_div + effect
  double cost_base = 1.0;
  double cost_per_unit = 0.0;  // cost = base + sum(ins).bw * per_unit
  double demand = 0.0;         // sink only
  double produce = 0.0;        // source only

  [[nodiscard]] bool is_source() const { return ins.empty(); }
  [[nodiscard]] bool is_sink() const { return out.empty(); }
};

struct GenNode {
  std::string name;
  double cpu = 30.0;
};

struct GenLink {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  char cls = 'l';  // 'l' lan, 'w' wan, 'o' other
  double lbw = 100.0;
};

/// A full generated instance; renders to the textio .sk surface.
struct GenInstance {
  std::uint64_t seed = 0;  // the seed that produced it (0 for hand-built)

  std::vector<GenInterface> ifaces;
  std::vector<GenComponent> comps;
  std::vector<GenNode> nodes;
  std::vector<GenLink> links;

  std::string source_comp;   // preplaced + forbidden
  std::string sink_comp;     // the goal component
  std::string source_iface;  // the initial stream's interface
  std::uint32_t source_node = 0;
  std::uint32_t goal_node = 0;
  double stream_hi = 100.0;        // stream <iface>.bw at source = [0, stream_hi]
  bool restrict_sink = false;      // restrict <sink> to the goal node
  bool preplace_source = true;     // minimizer may drop the preplaced rule
  bool forbid_source = true;       // minimizer may drop the forbid rule
  std::vector<double> link_cuts;   // scenario `levels link lbw { ... }`
  std::vector<double> node_cuts;   // scenario `levels node cpu { ... }`

  [[nodiscard]] std::string domain_text() const;
  [[nodiscard]] std::string problem_text() const;

  /// Total .sk line count of both rendered texts (repro-size metric).
  [[nodiscard]] std::size_t line_count() const;

  // -- metamorphic transforms (testing/oracles.hpp relies on these) ---------

  /// Renames every node and shuffles node, component and interface
  /// declaration order; the instance is semantically identical, so the
  /// optimal verdict and cost must not change.
  [[nodiscard]] GenInstance permuted(std::uint64_t perm_seed) const;

  /// Multiplies every node cpu and link lbw capacity by `factor` (>= 1):
  /// solvable must stay solvable and the optimal cost must not increase.
  [[nodiscard]] GenInstance widened(double factor) const;

  /// Inserts a midpoint cutpoint into the first leveled interface (nullopt
  /// when nothing is leveled): solvability is unchanged and the optimal
  /// cost lower bound can only tighten (never decrease).
  [[nodiscard]] std::optional<GenInstance> refined() const;
};

/// Size/feasibility-bias knobs of the generator.
struct WorkloadParams {
  std::uint32_t max_stages = 3;   // transformer chain length, drawn 0..max
  std::uint32_t max_nodes = 8;    // topology size, drawn 2..max
  double feasible_bias = 0.65;    // probability of generously sized capacities
  double aux_prob = 0.35;         // per-interface compressor-pair probability
  double alt_prob = 0.30;         // per-stage alternative-implementation prob.
  double level_prob = 0.80;       // per-interface leveled probability
  double link_level_prob = 0.25;  // scenario link-lbw levels probability
  double node_level_prob = 0.20;  // scenario node-cpu levels probability
  double restrict_prob = 0.50;    // restrict-sink-to-goal probability
};

/// Deterministically generates one instance from a seed: the same (seed,
/// params) pair always yields byte-identical .sk texts.
[[nodiscard]] GenInstance generate(std::uint64_t seed, const WorkloadParams& params = {});

/// Renders a double the way the generator does (short, parser-roundtrippable).
[[nodiscard]] std::string format_number(double v);

}  // namespace sekitei::testing
