// Differential + metamorphic oracle battery.
//
// The planner stack has three independently implemented verdict sources —
// the optimal leveled search, the greedy (worst-case reservation) baseline
// and the pre-flight relaxed-reachability analyzer — plus the simulator as
// an execution ground truth.  Each oracle below is a *theorem* of the
// system restricted to the generated formula fragment (monotone conditions,
// resource-free cost formulae; see testing/workload.hpp), so any
// disagreement is a bug by construction:
//
//   greedy       greedy solvable => leveled solvable (levels only add
//                plans, Section 3's central claim), and when both solve the
//                optimal leveled cost never exceeds the greedy plan's
//                realized cost.  One carve-out: a value sitting exactly on
//                a cutpoint cannot claim the level above it (strict-floor
//                pruning, Fig. 7), so "greedy solved / leveled infeasible"
//                is only a disagreement if the leveled search also fails
//                under trivial levels (tests/corpus/repros/greedy_gap and
//                boundary_feasible pin both sides of this line).
//   preflight    "provably infeasible" from the static analyzer => the
//                exhaustive search must not find a plan.
//   validator    a fresh executor re-proves the returned plan: it executes,
//                its realized cost matches the first execution and never
//                undercuts the reported lower bound (testing/validator.hpp).
//   permutation  renaming nodes and shuffling declaration order changes
//                neither the verdict nor the optimal cost.
//   widening     scaling every capacity up keeps solvable instances
//                solvable and never raises the optimal cost.
//   refinement   adding a level cutpoint preserves the verdict and can only
//                tighten (raise) the optimal cost lower bound.
//   service      the same instance through the planning service with 1
//                worker and with N workers yields byte-identical plans.
//   symmetry     planning with the verified node partition attached (twin
//                pruning on, analysis/symmetry.hpp) yields the same verdict
//                and the same optimal cost as the unpruned base run, and
//                the pruned plan re-proves through the independent
//                validator.
//   drift        a seeded damage delta (repair::seeded_drift) applied to a
//                solved instance and served back as a repair request yields
//                a plan that re-proves through the independent validator on
//                an independently reconstructed repair problem, and whose
//                migration-penalty-aware cost never exceeds a full replan
//                paying the penalty for every prior placement.
//   cp           the in-house CP branch-and-bound backend (src/cp, shares
//                no search code with the RG) proves the same verdict, and on
//                solved instances the same optimal cost, as the A* search —
//                the only oracle that checks *optimality* rather than
//                consistency.
//
// Search-limit exhaustion yields Verdict::Unknown; comparisons involving an
// Unknown side are skipped, never reported (an oracle only speaks when both
// of its runs are decisive).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "testing/workload.hpp"

namespace sekitei::testing {

enum class Verdict : unsigned char { Solved, Infeasible, Unknown };

[[nodiscard]] const char* verdict_name(Verdict v);

/// What one planner run over one instance produced.
struct SolveOutcome {
  Verdict verdict = Verdict::Unknown;
  double cost_lb = 0.0;      // reported plan cost lower bound (Solved only)
  double actual_cost = 0.0;  // realized cost after concrete execution
  std::string plan_text;     // Fig.-4-style rendering (Solved only)
  std::uint64_t rg_expansions = 0;
  std::string failure;  // planner failure text when not Solved
};

struct OracleConfig {
  bool greedy = true;
  bool preflight = true;
  bool validator = true;
  bool permutation = true;
  bool widening = true;
  bool refinement = true;
  bool service = true;
  bool drift = true;
  bool symmetry = true;
  bool cp = true;

  // Deterministic search budgets; exhaustion classifies as Unknown.
  std::uint64_t max_rg_expansions = 60000;
  std::uint64_t max_slrg_sets = 120000;
  /// The service oracle spins real worker threads; skip it for base runs
  /// that already needed more expansions than this (it would re-search
  /// without a budget).
  std::uint64_t service_expansion_cap = 20000;
  std::size_t service_jobs = 4;
  double widen_factor = 1.5;
  std::uint64_t perm_seed = 0xC0FFEEULL;
  /// Mixed into the per-instance drift seed (a hash of the problem text) and
  /// the migration penalty the drift oracle prices repairs with.
  std::uint64_t drift_seed = 0xD21F7ULL;
  double drift_penalty = 5.0;
};

/// Enables exactly the named oracles ("greedy,validator,...", or "all").
/// Returns false and fills *error on an unknown name.
[[nodiscard]] bool parse_oracle_set(const std::string& csv, OracleConfig& cfg,
                                    std::string* error = nullptr);

struct Disagreement {
  std::string oracle;  // "greedy" | "preflight" | ... | "crash"
  std::string detail;
};

struct OracleReport {
  SolveOutcome optimal;  // leveled, generated scenario
  SolveOutcome greedy;   // Mode::Greedy under trivial levels (scenario A)
  bool preflight_infeasible = false;
  std::uint32_t oracles_run = 0;  // individual checks actually evaluated
  std::vector<Disagreement> disagreements;

  [[nodiscard]] bool failed() const { return !disagreements.empty(); }
};

/// Runs the configured battery over one instance.  Never throws: an
/// exception escaping any stage is converted into a "crash" disagreement.
[[nodiscard]] OracleReport run_oracles(const GenInstance& inst, const OracleConfig& cfg = {});

/// Replays a saved repro pair (raw .sk texts) through the differential
/// subset of the battery — greedy, preflight, validator, symmetry, cp,
/// service and drift.  The
/// metamorphic oracles need the structured instance and are skipped here.
/// Never throws (same "crash" conversion as run_oracles).
[[nodiscard]] OracleReport replay_text(const std::string& domain_text,
                                       const std::string& problem_text,
                                       const OracleConfig& cfg = {});

}  // namespace sekitei::testing
