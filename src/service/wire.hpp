// The planning service's wire codec, shared by the batch driver
// (tools/sekitei_serve), the network daemon (src/server), and the load
// generator (tools/sekitei_load).  Three layers, none of which touch a
// socket:
//
//   1. Framing.  A frame is a length-prefixed NDJSON object:
//
//        <decimal byte count>\n<body>\n
//
//      where the count covers the body only (not either newline) and the
//      body is exactly one JSON object.  Stripping the length lines from a
//      frame stream therefore yields plain NDJSON — the same records the
//      batch driver writes to stdout — while the prefix lets a reader slice
//      frames without scanning JSON (and lets bodies legally contain raw
//      newlines, which our writer never emits but a client's might).
//
//   2. Request parsing.  One frame body holds one request object:
//
//        {"op":"plan","id":"q1","problem":"<.sk problem text>",
//         "deadline_ms":250,"mode":"leveled","validate":true,
//         "preflight":false,"degrade":true}
//
//      `op` defaults to "plan"; "healthz" and "stats" are introspection
//      requests with no further fields.  Unknown keys are ignored (forward
//      compatibility), wrong types are errors.
//
//   3. Response rendering.  Responses reuse the exact NDJSON record the
//      batch driver has always emitted (response_to_json): the `request`
//      key carries the request id, so pipelined responses may arrive out
//      of order and still be matched up.  wire_test.cpp pins the rendering
//      byte-for-byte so daemon and batch output never drift apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/planner.hpp"
#include "service/request.hpp"

namespace sekitei::service::wire {

/// Encodes one frame: "<len>\n<body>\n".
[[nodiscard]] std::string encode_frame(const std::string& body);

/// Incremental frame slicer over a byte stream.  feed() appends received
/// bytes; next() yields complete frame bodies until NeedMore.  A malformed
/// length line or an oversized frame is a hard protocol error: the decoder
/// latches Error and the connection must be closed (resynchronization
/// inside a corrupt length-prefixed stream is guesswork).
class FrameDecoder {
 public:
  enum class Status : unsigned char { NeedMore, Frame, Error };

  explicit FrameDecoder(std::size_t max_frame_bytes = 1u << 20)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(const char* data, std::size_t n);
  void feed(const std::string& data) { feed(data.data(), data.size()); }

  /// Extracts the next complete frame body into `body`.
  [[nodiscard]] Status next(std::string& body);

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  [[nodiscard]] Status fail(std::string why);

  std::size_t max_frame_bytes_;
  std::string buf_;
  std::size_t pos_ = 0;   // consumed prefix of buf_
  long long want_ = -1;   // body length once the header line parsed; -1 = header
  std::string error_;
  bool failed_ = false;
};

/// Name-keyed damage delta of a repair request.  Numeric entity ids are
/// meaningless across the wire, so nodes travel by name and links by their
/// endpoint names; the daemon resolves them against the loaded problem's
/// network (resolve_repair) before planning.
struct WireDamage {
  struct DegradedNode {
    std::string node;
    std::string resource;
    double capacity = 0.0;
  };
  struct DegradedLink {
    std::string a, b;
    std::string resource;
    double capacity = 0.0;
  };

  std::vector<std::string> failed_nodes;
  std::vector<std::pair<std::string, std::string>> failed_links;  // endpoint names
  std::vector<DegradedNode> degraded_nodes;
  std::vector<DegradedLink> degraded_links;
};

/// A parsed request frame.
struct WireRequest {
  enum class Op : unsigned char { Plan, Healthz, Stats };

  Op op = Op::Plan;
  std::string id;            // echoed back; sessions assign one when empty
  std::string problem_text;  // .sk problem/scenario text (plan only)
  double deadline_ms = 0.0;  // <= 0 = daemon default
  core::PlannerOptions::Mode mode = core::PlannerOptions::Mode::Leveled;
  bool validate = true;
  bool preflight = false;
  bool degrade = true;
  /// Echo the winning plan's action indices + execution choices in the
  /// response (the raw material of a later repair request).
  bool echo_plan = false;

  /// Repair payload (op == "repair"; a plan request plus the fields below).
  bool repair = false;
  std::vector<std::uint32_t> prior_plan;  // action indices of the prior plan
  std::vector<double> choices;            // prior execution's choices
  WireDamage damage;
  double migration_penalty = 0.0;
  double reconnect_factor = 0.2;  // mirror repair::AdaptationCosts defaults
  double migrate_factor = 0.6;
};

/// Parses one frame body into `out`.  Returns false with a human-readable
/// `error` on malformed JSON, wrong types, or a plan request without a
/// problem.
[[nodiscard]] bool parse_request(const std::string& body, WireRequest& out,
                                 std::string& error);

/// Resolves a wire repair payload against a loaded problem: node/link names
/// become ids, the prior plan's action indices become a core::Plan, the cost
/// knobs land in RepairSpec.  Returns false with a human-readable `error`
/// when a named entity does not exist in the problem's network (the action-
/// index range check stays in the engine, which owns the compile).
[[nodiscard]] bool resolve_repair(const WireRequest& w, const model::LoadedProblem& lp,
                                  RepairSpec& out, std::string& error);

/// The canonical request-body rendering (what FrameClient and the load
/// generator send).  parse_request(render_request(r)) round-trips exactly;
/// wire_test.cpp pins it.
[[nodiscard]] std::string render_request(const WireRequest& r);

/// The one-line NDJSON rendering of a response — response_to_json plus the
/// trailing newline, exactly what the batch driver writes per request.
[[nodiscard]] std::string render_response_line(const PlanResponse& r);

/// The same record as a frame (for the daemon's response stream).
[[nodiscard]] std::string render_response_frame(const PlanResponse& r);

/// Builds the Rejected response the daemon answers protocol-level refusals
/// with (quota exceeded, draining, parse failure); rendering it through the
/// normal response path keeps the client-visible schema uniform.
[[nodiscard]] PlanResponse make_rejected(std::string id, std::string failure);

}  // namespace sekitei::service::wire
