#include "service/request.hpp"

#include <cinttypes>
#include <cstdio>

#include "support/json.hpp"

namespace sekitei::service {

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Solved: return "solved";
    case Outcome::Infeasible: return "infeasible";
    case Outcome::DeadlineExceeded: return "deadline_exceeded";
    case Outcome::Cancelled: return "cancelled";
    case Outcome::Rejected: return "rejected";
    case Outcome::Degraded: return "degraded";
  }
  return "rejected";
}

int outcome_exit_code(Outcome o) {
  switch (o) {
    case Outcome::Solved: return 0;
    case Outcome::Infeasible: return 1;
    case Outcome::DeadlineExceeded: return 3;
    case Outcome::Cancelled: return 4;
    case Outcome::Rejected: return 5;
    case Outcome::Degraded: return 6;
  }
  return 5;
}

const char* ladder_step_name(LadderStep s) {
  switch (s) {
    case LadderStep::Primary: return "primary";
    case LadderStep::AnytimeIncumbent: return "anytime_incumbent";
    case LadderStep::GreedyFallback: return "greedy_fallback";
  }
  return "primary";
}

std::string response_to_json(const PlanResponse& r) {
  std::string out = "{\"request\":";
  json::append_escaped(out, r.id);
  out += ",\"outcome\":";
  json::append_escaped(out, outcome_name(r.outcome));
  out += ",\"ladder\":";
  json::append_escaped(out, ladder_step_name(r.ladder));
  out += ",\"cache_hit\":";
  out += r.cache_hit ? "true" : "false";
  char hexbuf[24];
  std::snprintf(hexbuf, sizeof hexbuf, "%016" PRIx64, r.fingerprint);
  out += ",\"fingerprint\":\"";
  out += hexbuf;
  out += "\"";
  if (r.plan) {
    out += ",\"plan_actions\":";
    json::append_number(out, static_cast<std::uint64_t>(r.plan->size()));
    out += ",\"cost_lb\":";
    json::append_number(out, r.plan->cost_lb);
  }
  out += ",\"wait_ms\":";
  json::append_number(out, r.wait_ms);
  out += ",\"compile_ms\":";
  json::append_number(out, r.compile_ms);
  if (r.preflight_ran) {
    out += ",\"preflight_ms\":";
    json::append_number(out, r.preflight_ms);
    out += ",\"preflight_rejected\":";
    out += r.preflight_rejected ? "true" : "false";
    out += ",\"preflight_sweeps\":";
    json::append_number(out, static_cast<std::uint64_t>(r.preflight_sweeps));
  }
  out += ",\"solve_ms\":";
  json::append_number(out, r.solve_ms);
  if (r.fallback_ms > 0.0) {
    out += ",\"fallback_ms\":";
    json::append_number(out, r.fallback_ms);
  }
  if (r.attempts > 1) {
    out += ",\"attempts\":";
    json::append_number(out, static_cast<std::uint64_t>(r.attempts));
  }
  if (!r.failure.empty()) {
    out += ",\"failure\":";
    json::append_escaped(out, r.failure);
  }
  out += ",\"stats\":";
  out += core::stats_to_json(r.stats);
  out.push_back('}');
  return out;
}

std::shared_ptr<model::LoadedProblem> make_loaded(spec::DomainSpec domain, net::Network net,
                                                  model::CppProblem problem,
                                                  spec::LevelScenario scenario) {
  auto lp = std::make_shared<model::LoadedProblem>();
  lp->domain = std::move(domain);
  lp->net = std::move(net);
  lp->problem = std::move(problem);
  lp->scenario = std::move(scenario);
  // The CppProblem pointed into the moved-from owners; re-pin it.
  lp->problem.network = &lp->net;
  lp->problem.domain = &lp->domain;
  return lp;
}

}  // namespace sekitei::service
