#include "service/request.hpp"

namespace sekitei::service {

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Solved: return "solved";
    case Outcome::Infeasible: return "infeasible";
    case Outcome::DeadlineExceeded: return "deadline_exceeded";
    case Outcome::Cancelled: return "cancelled";
    case Outcome::Rejected: return "rejected";
    case Outcome::Degraded: return "degraded";
  }
  return "rejected";
}

int outcome_exit_code(Outcome o) {
  switch (o) {
    case Outcome::Solved: return 0;
    case Outcome::Infeasible: return 1;
    case Outcome::DeadlineExceeded: return 3;
    case Outcome::Cancelled: return 4;
    case Outcome::Rejected: return 5;
    case Outcome::Degraded: return 6;
  }
  return 5;
}

const char* ladder_step_name(LadderStep s) {
  switch (s) {
    case LadderStep::Primary: return "primary";
    case LadderStep::AnytimeIncumbent: return "anytime_incumbent";
    case LadderStep::GreedyFallback: return "greedy_fallback";
    case LadderStep::FullReplan: return "full_replan";
  }
  return "primary";
}

std::shared_ptr<model::LoadedProblem> make_loaded(spec::DomainSpec domain, net::Network net,
                                                  model::CppProblem problem,
                                                  spec::LevelScenario scenario) {
  auto lp = std::make_shared<model::LoadedProblem>();
  lp->domain = std::move(domain);
  lp->net = std::move(net);
  lp->problem = std::move(problem);
  lp->scenario = std::move(scenario);
  // The CppProblem pointed into the moved-from owners; re-pin it.
  lp->problem.network = &lp->net;
  lp->problem.domain = &lp->domain;
  return lp;
}

}  // namespace sekitei::service
