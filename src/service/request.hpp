// Request/response types of the concurrent planning service.
//
// A PlanRequest bundles a loaded CPP instance with planning options, an
// optional deadline, and a cancellation handle; the engine (service/engine.hpp)
// answers with a PlanResponse whose `outcome` classifies what happened:
//
//   solved             a validated plan was found
//   infeasible         the planner proved no plan exists (or exhausted its
//                      own search limits)
//   degraded           the deadline (or a cancel) cut the search short but a
//                      feasible plan is still returned: either the anytime
//                      incumbent of the stopped optimal search or the result
//                      of a greedy retry on the remaining budget.  `ladder`
//                      records which rung answered.
//   deadline_exceeded  the request's deadline fired before any plan was found
//   cancelled          StopSource::request_stop() ended the request early
//   rejected           the engine refused the request (queue full, no problem)
//
// The degradation ladder (per-request policy, PlanRequest::degrade):
//
//   optimal search ──found──▶ solved
//        │ stop, incumbent in hand ──▶ degraded (anytime_incumbent)
//        │ stop, no incumbent
//        ▼
//   greedy retry on the remaining budget ──found──▶ degraded (greedy_fallback)
//        │ nothing
//        ▼
//   infeasible / deadline_exceeded
//
// On deadline_exceeded/cancelled the response still carries the partial
// PlannerStats accumulated up to the stop — a served client can see how far
// planning got.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include <vector>

#include "core/plan.hpp"
#include "core/planner.hpp"
#include "core/stats.hpp"
#include "model/textio.hpp"
#include "repair/repair.hpp"
#include "support/stop_token.hpp"

namespace sekitei::service {

enum class Outcome : unsigned char {
  Solved,
  Infeasible,
  DeadlineExceeded,
  Cancelled,
  Rejected,
  Degraded,
};

[[nodiscard]] const char* outcome_name(Outcome o);

/// Process exit code convention shared by the CLI drivers: solved = 0,
/// infeasible = 1 (2 stays reserved for usage/input errors), deadline = 3,
/// cancelled = 4, rejected = 5, degraded = 6.
[[nodiscard]] int outcome_exit_code(Outcome o);

/// Which rung of the degradation ladder produced the response.
enum class LadderStep : unsigned char {
  Primary,           // the requested (usually optimal) search answered
  AnytimeIncumbent,  // the stopped search's best incumbent plan
  GreedyFallback,    // greedy retry on the remaining budget
  FullReplan,        // repair could not beat the budget: replanned from
                     // scratch on the damaged network (repair requests only)
};

[[nodiscard]] const char* ladder_step_name(LadderStep s);

/// Per-request graceful-degradation policy.
struct DegradePolicy {
  /// Master switch: when false the request behaves exactly like the pre-
  /// ladder engine (a fired deadline answers deadline_exceeded, full stop).
  bool enabled = true;
  /// Share of the remaining deadline budget granted to the primary (optimal)
  /// attempt when a greedy fallback is available; the rest is held in
  /// reserve for the retry.  Values outside (0, 1) give the primary attempt
  /// everything (no reserve).
  double primary_fraction = 0.6;
  /// Allow the greedy retry rung (only taken for Leveled-mode requests).
  bool greedy_fallback = true;
  /// Share of the budget remaining *after* the primary attempt stopped that
  /// the greedy retry may spend.  Values outside (0, 1] mean all of it.
  double greedy_fraction = 1.0;
};

/// Repair payload: turns a PlanRequest into a drift-resilient replanning
/// request.  The engine computes the survivors of `prior_plan` under
/// `damage` (repair/repair.hpp), plans a minimally-disruptive patch on the
/// damaged network with RECONNECT/MIGRATE-discounted placement costs, and
/// reports `repair_cost = plan cost + migration_penalty * migrations`.  When
/// the repair search cannot answer inside its budget slice, the ladder falls
/// to a full replan from scratch on the damaged network (LadderStep::
/// FullReplan) instead of silently shipping nothing.
struct RepairSpec {
  /// The previously shipped plan; action ids index the deterministic compile
  /// of this request's problem.
  core::Plan prior_plan;
  /// The prior execution's production choices (ExecutionReport::choices,
  /// init_map order).  Empty means "no survivors": the repair degenerates to
  /// a from-scratch replan on the damaged network.
  std::vector<double> choices;
  repair::Damage damage;
  /// Added to the reported repair cost once per migrated component — the
  /// client's knob for how much deployment stability is worth.
  double migration_penalty = 0.0;
  repair::AdaptationCosts costs;
};

struct PlanRequest {
  /// Caller-chosen label echoed in the response (e.g. "small.sk#3").
  std::string id;

  /// The instance to plan.  Shared ownership: the engine pins it for as long
  /// as the compiled-problem cache references it.
  std::shared_ptr<const model::LoadedProblem> problem;

  core::PlannerOptions::Mode mode = core::PlannerOptions::Mode::Leveled;

  /// Per-request deadline in milliseconds; <= 0 falls back to the engine's
  /// default (whose own <= 0 means "no deadline").
  double deadline_ms = 0.0;

  /// Concretely validate candidate plans through the simulator before
  /// accepting them (the full solve_file pipeline).
  bool validate = true;

  /// Run the pre-flight infeasibility analyzer (analysis/analyzer.hpp) after
  /// compile and before any search: a provably-infeasible instance answers
  /// Infeasible immediately, without consuming the search budget.  Also
  /// enabled engine-wide by PlanningEngine::Options::preflight.  Off by
  /// default: with it off the engine's behaviour is unchanged.
  bool preflight = false;

  /// Cancellation handle: request_stop() cancels this request whether it is
  /// still queued or already planning.  The engine arms the deadline on this
  /// same source at submit time, so one token answers both questions.
  StopSource stop;

  /// Stop-poll cadence of the search loops (PlannerOptions::progress_every).
  /// The service default is finer than the planner's 8192 so deadlines are
  /// honoured promptly on small problems.
  std::uint64_t progress_every = 1024;

  /// Graceful-degradation ladder policy for this request.
  DegradePolicy degrade;

  /// Present on repair requests (see RepairSpec).
  std::optional<RepairSpec> repair;

  /// Echo the winning plan's action indices and execution choices in the
  /// response (PlanResponse::plan_steps/choices) so a wire client can later
  /// resubmit them as a RepairSpec.  Off by default: the echo costs one
  /// extra plan execution when validation is off.
  bool echo_plan = false;

  /// Optional progress observer forwarded to PlannerOptions::progress (the
  /// worker invokes it from the search loop; it may call request_stop() on
  /// the request's own StopSource).
  std::function<void(const core::PlannerStats&)> progress;
};

struct PlanResponse {
  std::string id;
  Outcome outcome = Outcome::Rejected;
  std::optional<core::Plan> plan;
  /// Fig.-4-style rendering of the plan (empty when there is none); rendered
  /// by the worker while it still holds the compiled problem.
  std::string plan_text;
  core::PlannerStats stats;
  std::string failure;  // human-readable reason when outcome != solved

  /// Which ladder rung answered (meaningful whenever a plan is present; for
  /// plan-less outcomes it stays Primary).
  LadderStep ladder = LadderStep::Primary;

  std::uint64_t fingerprint = 0;  // compiled-problem cache key
  bool cache_hit = false;
  double compile_ms = 0.0;   // grounding+leveling time (0.0 on cache hits)
  double solve_ms = 0.0;     // planner time across every ladder attempt
  double fallback_ms = 0.0;  // share of solve_ms spent in the greedy retry
  double wait_ms = 0.0;      // time spent queued before a worker picked it up
  /// Pre-flight infeasibility analysis (only meaningful when it ran).
  bool preflight_ran = false;
  bool preflight_rejected = false;  // answered Infeasible without any search
  double preflight_ms = 0.0;
  std::uint32_t preflight_sweeps = 0;  // fixpoint sweeps the analysis took
  /// Submission attempts the client made (> 1 after admission-control
  /// retries, e.g. sekitei_serve's jittered backoff).
  std::uint32_t attempts = 1;

  /// Symmetric node classes (>= 2 interchangeable members) the analysis layer
  /// attached to the compiled problem this answer planned against; 0 when the
  /// instance has none.  Rendered on the wire only when non-zero.
  std::uint32_t symmetry_classes = 0;

  /// Repair pre-flight cut: before any repair search, the goal's relaxed
  /// reachability is checked on the *bare* damaged network (no survivors
  /// pinned).  Unreachable there means unreachable for the repair and the
  /// full replan alike, so the request answers Infeasible with a sound
  /// certificate instead of burning its whole budget.  Only meaningful on
  /// repair requests with pre-flight enabled.
  bool repair_preflight_ran = false;
  bool repair_preflight_rejected = false;
  double repair_preflight_ms = 0.0;

  /// Repair accounting (only meaningful when `repair_requested`; the wire
  /// rendering emits the block exactly then, keeping plain records stable).
  bool repair_requested = false;
  /// True when the shipped plan reuses the survivors (any rung above
  /// FullReplan); false once the ladder fell to a from-scratch replan.
  bool repaired = false;
  std::uint32_t migrations = 0;  // surviving components re-placed elsewhere
  std::uint32_t reconnects = 0;  // surviving components re-placed in situ
  /// Deployment churn: migrations plus prior placements that neither
  /// survived nor were re-established at their original node.
  std::uint32_t disruption = 0;
  /// plan->cost_lb + migration_penalty * migrations (the ladder's yardstick).
  double repair_cost = 0.0;

  /// Echo of the winning plan for later repair submission (echo_plan only):
  /// action indices into the compile the plan was found against, plus the
  /// validated execution's production choices.
  std::vector<std::uint32_t> plan_steps;
  std::vector<double> choices;

  /// True when the response carries a usable plan (optimal or degraded).
  [[nodiscard]] bool ok() const {
    return outcome == Outcome::Solved || outcome == Outcome::Degraded;
  }
};

/// One NDJSON record for a response:
///   {"request":"...","outcome":"solved","cache_hit":true,...,"stats":{...}}
/// The fingerprint is rendered as a hex string (64-bit values do not survive
/// JSON number parsers).  Used by the sekitei_serve driver, the network
/// daemon's response frames, and the tests; the definition lives with the
/// rest of the wire codec (service/wire.cpp) and is pinned byte-for-byte by
/// wire_test.cpp.
[[nodiscard]] std::string response_to_json(const PlanResponse& r);

/// Builds a heap-pinned LoadedProblem from parts: moves them in and re-points
/// the CppProblem at the moved-to network/domain.  This is how programmatic
/// instances (e.g. domains::media) enter the service, which otherwise feeds
/// on parsed .sk files.
[[nodiscard]] std::shared_ptr<model::LoadedProblem> make_loaded(spec::DomainSpec domain,
                                                                net::Network net,
                                                                model::CppProblem problem,
                                                                spec::LevelScenario scenario);

}  // namespace sekitei::service
