// Request/response types of the concurrent planning service.
//
// A PlanRequest bundles a loaded CPP instance with planning options, an
// optional deadline, and a cancellation handle; the engine (service/engine.hpp)
// answers with a PlanResponse whose `outcome` classifies what happened:
//
//   solved             a validated plan was found
//   infeasible         the planner proved no plan exists (or exhausted its
//                      own search limits)
//   deadline_exceeded  the request's deadline fired before a plan was found
//   cancelled          StopSource::request_stop() ended the request early
//   rejected           the engine refused the request (queue full, no problem)
//
// On deadline_exceeded/cancelled the response still carries the partial
// PlannerStats accumulated up to the stop — a served client can see how far
// planning got.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/plan.hpp"
#include "core/planner.hpp"
#include "core/stats.hpp"
#include "model/textio.hpp"
#include "support/stop_token.hpp"

namespace sekitei::service {

enum class Outcome : unsigned char {
  Solved,
  Infeasible,
  DeadlineExceeded,
  Cancelled,
  Rejected,
};

[[nodiscard]] const char* outcome_name(Outcome o);

/// Process exit code convention shared by the CLI drivers: solved = 0,
/// infeasible = 1 (2 stays reserved for usage/input errors), deadline = 3,
/// cancelled = 4, rejected = 5.
[[nodiscard]] int outcome_exit_code(Outcome o);

struct PlanRequest {
  /// Caller-chosen label echoed in the response (e.g. "small.sk#3").
  std::string id;

  /// The instance to plan.  Shared ownership: the engine pins it for as long
  /// as the compiled-problem cache references it.
  std::shared_ptr<const model::LoadedProblem> problem;

  core::PlannerOptions::Mode mode = core::PlannerOptions::Mode::Leveled;

  /// Per-request deadline in milliseconds; <= 0 falls back to the engine's
  /// default (whose own <= 0 means "no deadline").
  double deadline_ms = 0.0;

  /// Concretely validate candidate plans through the simulator before
  /// accepting them (the full solve_file pipeline).
  bool validate = true;

  /// Cancellation handle: request_stop() cancels this request whether it is
  /// still queued or already planning.  The engine arms the deadline on this
  /// same source at submit time, so one token answers both questions.
  StopSource stop;

  /// Stop-poll cadence of the search loops (PlannerOptions::progress_every).
  /// The service default is finer than the planner's 8192 so deadlines are
  /// honoured promptly on small problems.
  std::uint64_t progress_every = 1024;
};

struct PlanResponse {
  std::string id;
  Outcome outcome = Outcome::Rejected;
  std::optional<core::Plan> plan;
  /// Fig.-4-style rendering of the plan (empty when there is none); rendered
  /// by the worker while it still holds the compiled problem.
  std::string plan_text;
  core::PlannerStats stats;
  std::string failure;  // human-readable reason when outcome != solved

  std::uint64_t fingerprint = 0;  // compiled-problem cache key
  bool cache_hit = false;
  double compile_ms = 0.0;  // grounding+leveling time (0.0 on cache hits)
  double solve_ms = 0.0;    // planner time (graph + search + validation)
  double wait_ms = 0.0;     // time spent queued before a worker picked it up

  [[nodiscard]] bool ok() const { return outcome == Outcome::Solved; }
};

/// One NDJSON record for a response:
///   {"request":"...","outcome":"solved","cache_hit":true,...,"stats":{...}}
/// The fingerprint is rendered as a hex string (64-bit values do not survive
/// JSON number parsers).  Used by the sekitei_serve driver and the tests.
[[nodiscard]] std::string response_to_json(const PlanResponse& r);

/// Builds a heap-pinned LoadedProblem from parts: moves them in and re-points
/// the CppProblem at the moved-to network/domain.  This is how programmatic
/// instances (e.g. domains::media) enter the service, which otherwise feeds
/// on parsed .sk files.
[[nodiscard]] std::shared_ptr<model::LoadedProblem> make_loaded(spec::DomainSpec domain,
                                                                net::Network net,
                                                                model::CppProblem problem,
                                                                spec::LevelScenario scenario);

}  // namespace sekitei::service
