#include "service/engine.hpp"

#include <exception>
#include <thread>
#include <utility>

#include "model/fingerprint.hpp"
#include "sim/executor.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace sekitei::service {

namespace {

std::size_t default_workers(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

PlanningEngine::PlanningEngine(Options options)
    : options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      pool_(default_workers(options.workers)) {}

PlanningEngine::Ticket PlanningEngine::submit(PlanRequest request) {
  const double deadline_ms =
      request.deadline_ms > 0.0 ? request.deadline_ms : options_.default_deadline_ms;
  if (deadline_ms > 0.0) request.stop.arm_deadline_ms(deadline_ms);

  Ticket ticket;
  ticket.stop = request.stop;
  auto promise = std::make_shared<std::promise<PlanResponse>>();
  ticket.response = promise->get_future();

  // Reserve the pending slot before checking the bound: check-then-increment
  // would let N concurrent submitters all pass the check and overshoot
  // max_pending.
  const std::size_t prior = pending_.fetch_add(1, std::memory_order_relaxed);
  if (options_.max_pending != 0 && prior >= options_.max_pending) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    PlanResponse r;
    r.id = request.id;
    r.outcome = Outcome::Rejected;
    r.failure = "queue full (max_pending = " + std::to_string(options_.max_pending) + ")";
    SEKITEI_LOG_WARN("service.engine", "request rejected", log::kv("id", r.id.c_str()),
                     log::kv("pending", prior));
    promise->set_value(std::move(r));
    return ticket;
  }

  const Stopwatch queued;  // measures time until a worker picks the job up
  auto req = std::make_shared<PlanRequest>(std::move(request));
  pool_.submit([this, req, promise, queued] {
    const double wait_ms = queued.elapsed_ms();
    PlanResponse r;
    try {
      r = process(*req, req->stop.token(), wait_ms);
    } catch (const std::exception& e) {
      // compile() raises sekitei::Error on semantically invalid input (the
      // loader only parses, so e.g. "preplaced: unknown component" first
      // surfaces here).  Answer Rejected instead of letting the exception
      // tear down the worker and leave the future unfulfilled.
      r = PlanResponse{};
      r.id = req->id;
      r.wait_ms = wait_ms;
      r.outcome = Outcome::Rejected;
      r.failure = e.what();
      SEKITEI_LOG_WARN("service.engine", "request failed", log::kv("id", r.id.c_str()),
                       log::kv("error", e.what()));
    }
    pending_.fetch_sub(1, std::memory_order_relaxed);
    promise->set_value(std::move(r));
  });
  return ticket;
}

PlanResponse PlanningEngine::plan(PlanRequest request) {
  return submit(std::move(request)).response.get();
}

PlanResponse PlanningEngine::process(const PlanRequest& request, const StopToken& token,
                                     double wait_ms) {
  trace::Span span("service.request", "service");
  PlanResponse r;
  r.id = request.id;
  r.wait_ms = wait_ms;

  if (!request.problem) {
    r.outcome = Outcome::Rejected;
    r.failure = "request carries no problem";
    return r;
  }
  // Died in the queue (cancelled, or the deadline fired before any worker
  // freed up): answer without touching the planner.
  if (token.stop_requested()) {
    r.outcome = token.reason() == StopReason::Cancelled ? Outcome::Cancelled
                                                        : Outcome::DeadlineExceeded;
    r.failure = "stopped before planning started";
    return r;
  }

  r.fingerprint = model::fingerprint(request.problem->problem, request.problem->scenario);
  auto [entry, hit] = cache_.get_or_compile(r.fingerprint, [&] {
    auto made = std::make_shared<CompiledEntry>();
    trace::Span compile_span("service.compile", "service");
    Stopwatch watch;
    made->source = request.problem;
    made->cp = model::compile(request.problem->problem, request.problem->scenario);
    made->compile_ms = watch.elapsed_ms();
    return made;
  });
  r.cache_hit = hit;
  if (!hit) r.compile_ms = entry->compile_ms;
  const model::CompiledProblem& cp = entry->cp;

  core::PlannerOptions opt;
  opt.mode = request.mode;
  opt.stop = token;
  opt.progress_every = request.progress_every;
  core::Sekitei planner(cp, opt);

  Stopwatch watch;
  core::PlanResult result;
  if (request.validate) {
    sim::Executor exec(cp);
    result = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  } else {
    result = planner.plan();
  }
  r.solve_ms = watch.elapsed_ms();
  r.stats = result.stats;
  r.failure = result.failure;

  if (result.plan) {
    // A plan that arrived in the same tick as a stop is still a plan.
    r.plan_text = result.plan->str(cp);
    r.plan = std::move(result.plan);
    r.outcome = Outcome::Solved;
    r.failure.clear();
  } else if (result.stats.stopped) {
    r.outcome = token.reason() == StopReason::Cancelled ? Outcome::Cancelled
                                                        : Outcome::DeadlineExceeded;
  } else {
    r.outcome = Outcome::Infeasible;
  }
  SEKITEI_LOG_INFO("service.engine", "request served", log::kv("id", r.id.c_str()),
                   log::kv("outcome", outcome_name(r.outcome)),
                   log::kv("cache_hit", r.cache_hit), log::kv("wait_ms", r.wait_ms),
                   log::kv("solve_ms", r.solve_ms));
  return r;
}

}  // namespace sekitei::service
