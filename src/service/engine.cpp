#include "service/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <fstream>
#include <thread>
#include <utility>

#include "analysis/analyzer.hpp"
#include "analysis/symmetry.hpp"
#include "model/fingerprint.hpp"
#include "service/flight_recorder.hpp"
#include "sim/executor.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace sekitei::service {

namespace {

std::size_t default_workers(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Request ids become file names for --flight-dir dumps; anything outside
/// [A-Za-z0-9._-] is replaced so "tiny.sk#3" cannot escape the directory.
std::string sanitize_for_filename(const std::string& id) {
  std::string out = id.empty() ? std::string("request") : id;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

/// Owned by the job closure.  Exactly one of two things happens to a
/// submitted job: it runs to completion (complete() answers the sink —
/// a promise for submit(), the caller's callback for submit_async() — and
/// releases the pending slot), or its std::function is destroyed without
/// running — worker fault, non-draining shutdown — and the guard's
/// destructor answers with Rejected instead.  Either way the sink always
/// fires exactly once and the pending slot is always released: no hang,
/// no leak.
struct JobGuard {
  std::function<void(PlanResponse&&)> sink;
  metrics::Gauge* pending;
  std::string id;
  bool done = false;

  JobGuard(std::function<void(PlanResponse&&)> s, metrics::Gauge* slots,
           std::string request_id)
      : sink(std::move(s)), pending(slots), id(std::move(request_id)) {}

  void complete(PlanResponse&& r) {
    if (done) return;
    done = true;
    pending->add(-1);
    sink(std::move(r));
  }

  ~JobGuard() {
    if (done) return;
    PlanResponse r;
    r.id = id;
    r.outcome = Outcome::Rejected;
    r.failure = "job dropped before completion (worker fault or shutdown)";
    SEKITEI_LOG_WARN("service.engine", "job dropped", log::kv("id", id.c_str()));
    complete(std::move(r));
  }
};

/// Engines in one process share the registry, but tests construct fresh
/// engines and expect their counters to start at zero — so each instance
/// reports under its own "engine" label, numbered in construction order.
std::string next_engine_label() {
  static std::atomic<std::uint64_t> constructed{0};
  return std::to_string(constructed.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

PlanningEngine::PlanningEngine(Options options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_shards),
      engine_label_(next_engine_label()),
      pool_(default_workers(options_.workers)) {
  // Register this engine's series once; the pointers stay valid for the
  // registry's (process) lifetime.  These are direct calls — not macros — so
  // the accessors and admission control behave identically in
  // SEKITEI_METRICS_DISABLED builds.
  metrics::Registry& reg = metrics::registry();
  const metrics::Labels eng{{"engine", engine_label_}};
  pending_ = &reg.gauge("service.pending", eng);
  queue_depth_ = &reg.gauge("service.queue_depth", eng);
  preflight_rejections_ = &reg.counter("service.preflight.rejections", eng);
  repair_preflight_rejected_ = &reg.counter(
      "service.repair_preflight", {{"engine", engine_label_}, {"outcome", "rejected"}});
  repair_preflight_passed_ = &reg.counter(
      "service.repair_preflight", {{"engine", engine_label_}, {"outcome", "passed"}});
  for (std::size_t i = 0; i < outcome_counters_.size(); ++i) {
    outcome_counters_[i] = &reg.counter(
        "service.requests",
        {{"engine", engine_label_}, {"outcome", outcome_name(static_cast<Outcome>(i))}});
  }
  for (std::size_t i = 0; i < ladder_counters_.size(); ++i) {
    ladder_counters_[i] = &reg.counter(
        "service.ladder",
        {{"engine", engine_label_}, {"step", ladder_step_name(static_cast<LadderStep>(i))}});
  }
  for (std::size_t i = 0; i < repair_counters_.size(); ++i) {
    repair_counters_[i] = &reg.counter(
        "service.repairs",
        {{"engine", engine_label_}, {"outcome", outcome_name(static_cast<Outcome>(i))}});
  }
  latency_hist_ = &reg.histogram("service.latency_ms", eng);
  queue_wait_hist_ = &reg.histogram("service.queue_wait_ms", eng);
  repair_migrations_hist_ = &reg.histogram("repair.migrations", eng);
}

PlanningEngine::Ticket PlanningEngine::submit(PlanRequest request) {
  Ticket ticket;
  ticket.stop = request.stop;
  auto promise = std::make_shared<std::promise<PlanResponse>>();
  ticket.response = promise->get_future();
  submit_async(std::move(request),
               [promise](PlanResponse&& r) { promise->set_value(std::move(r)); });
  return ticket;
}

void PlanningEngine::submit_async(PlanRequest request,
                                  std::function<void(PlanResponse&&)> done) {
  const double deadline_ms =
      request.deadline_ms > 0.0 ? request.deadline_ms : options_.default_deadline_ms;
  if (deadline_ms > 0.0) request.stop.arm_deadline_ms(deadline_ms);

  // Reserve the pending slot before checking the bound: check-then-increment
  // would let N concurrent submitters all pass the check and overshoot
  // max_pending.  Gauge::add returns the post-add value, so `prior` keeps
  // the exact fetch_add semantics the pre-registry atomic had.
  const std::size_t prior = static_cast<std::size_t>(pending_->add(1)) - 1;
  if (options_.max_pending != 0 && prior >= options_.max_pending) {
    pending_->add(-1);
    PlanResponse r;
    r.id = request.id;
    r.outcome = Outcome::Rejected;
    r.failure = "queue full (max_pending = " + std::to_string(options_.max_pending) + ")";
    SEKITEI_LOG_WARN("service.engine", "request rejected", log::kv("id", r.id.c_str()),
                     log::kv("pending", prior));
    SEKITEI_METRIC(outcome_counters_[static_cast<std::size_t>(Outcome::Rejected)]->add(1));
    done(std::move(r));
    return;
  }

  const Stopwatch queued;  // measures time until a worker picks the job up
  SEKITEI_METRIC(queue_depth_->add(1));
  auto req = std::make_shared<PlanRequest>(std::move(request));
  auto guard = std::make_shared<JobGuard>(std::move(done), pending_, req->id);
  pool_.submit([this, req, guard, queued] {
    const double wait_ms = queued.elapsed_ms();
    SEKITEI_METRIC(queue_depth_->add(-1));
    SEKITEI_METRIC(queue_wait_hist_->observe(wait_ms));
    PlanResponse r;
    try {
      // Worker-job-start fault point: a throw here (or anywhere below) is
      // classified as Rejected; the guard still releases the pending slot.
      if (SEKITEI_FAULT_POINT("engine.job")) {
        raise("injected fault at engine.job");
      }
      r = process(*req, wait_ms);
    } catch (const std::exception& e) {
      // compile() raises sekitei::Error on semantically invalid input (the
      // loader only parses, so e.g. "preplaced: unknown component" first
      // surfaces here).  Answer Rejected instead of letting the exception
      // tear down the worker and leave the future unfulfilled.
      r = PlanResponse{};
      r.id = req->id;
      r.wait_ms = wait_ms;
      r.outcome = Outcome::Rejected;
      r.failure = e.what();
      SEKITEI_LOG_WARN("service.engine", "request failed", log::kv("id", r.id.c_str()),
                       log::kv("error", e.what()));
    }
    // End-to-end latency (queue wait + processing) and the per-outcome
    // tally, recorded on every path through the worker including the
    // exception handler above.
    SEKITEI_METRIC(latency_hist_->observe(queued.elapsed_ms()));
    SEKITEI_METRIC(outcome_counters_[static_cast<std::size_t>(r.outcome)]->add(1));
    guard->complete(std::move(r));
  });
}

PlanResponse PlanningEngine::plan(PlanRequest request) {
  return submit(std::move(request)).response.get();
}

PlanResponse PlanningEngine::process(PlanRequest& request, double wait_ms) {
  // Per-request observability wrapper around the planning logic.  The flight
  // recorder piggybacks on the request's progress callback (one Sample per
  // RG progress tick), so an idle configuration — no sink, no dir — costs
  // nothing beyond this branch.
  const bool record_flight = options_.flight_sink || !options_.flight_dir.empty();
  FlightRecorder recorder(options_.flight_capacity == 0 ? 1 : options_.flight_capacity);
  const std::function<void(const core::PlannerStats&)> inner_progress = request.progress;
  if (record_flight) {
    request.progress = [&recorder, inner_progress](const core::PlannerStats& stats) {
      recorder.record(stats);
      if (inner_progress) inner_progress(stats);
    };
  }

  PlanResponse r = process_inner(request, wait_ms);
  request.progress = inner_progress;  // drop the dangling recorder capture

  if (r.ok()) {
    SEKITEI_METRIC(ladder_counters_[static_cast<std::size_t>(r.ladder)]->add(1));
  }
  if (r.repair_requested) {
    SEKITEI_METRIC(repair_counters_[static_cast<std::size_t>(r.outcome)]->add(1));
    if (r.ok()) SEKITEI_METRIC(repair_migrations_hist_->observe(r.migrations));
  }
  // Dump the recording for every answer the caller will want to autopsy:
  // deadline/cancel/degraded cut the search short, infeasible-after-search
  // shows where the frontier died.  Solved requests (and Rejected ones,
  // which never searched) stay quiet.
  if (record_flight && r.outcome != Outcome::Solved && r.outcome != Outcome::Rejected) {
    const std::string dump = recorder.to_ndjson(r.id, outcome_name(r.outcome));
    if (options_.flight_sink) {
      options_.flight_sink(dump);
    } else {
      const std::string path =
          options_.flight_dir + "/" + sanitize_for_filename(r.id) + ".flight.ndjson";
      std::ofstream out(path, std::ios::trunc);
      if (out) {
        out << dump;
        SEKITEI_LOG_INFO("service.engine", "flight recording dumped",
                         log::kv("id", r.id.c_str()), log::kv("path", path.c_str()),
                         log::kv("samples", recorder.size()));
      } else {
        SEKITEI_LOG_WARN("service.engine", "flight dump failed",
                         log::kv("id", r.id.c_str()), log::kv("path", path.c_str()));
      }
    }
  }
  return r;
}

PlanResponse PlanningEngine::process_inner(PlanRequest& request, double wait_ms) {
  trace::Span span("service.request", "service");
  PlanResponse r;
  r.id = request.id;
  r.wait_ms = wait_ms;

  if (!request.problem) {
    r.outcome = Outcome::Rejected;
    r.failure = "request carries no problem";
    return r;
  }
  const StopToken token = request.stop.token();
  // Died in the queue (cancelled, or the deadline fired before any worker
  // freed up): answer without touching the planner.
  if (token.stop_requested()) {
    r.outcome = token.reason() == StopReason::Cancelled ? Outcome::Cancelled
                                                        : Outcome::DeadlineExceeded;
    r.failure = "stopped before planning started";
    return r;
  }

  r.fingerprint = model::fingerprint(request.problem->problem, request.problem->scenario);
  auto [entry, hit] = cache_.get_or_compile(r.fingerprint, [&] {
    auto made = std::make_shared<CompiledEntry>();
    trace::Span compile_span("service.compile", "service");
    Stopwatch watch;
    made->source = request.problem;
    made->cp = model::compile(request.problem->problem, request.problem->scenario);
    // Attach the node symmetry partition before the entry is published to
    // the cache (it is immutable — and shared across workers — afterwards);
    // the searches prune interchangeable twins against it.
    analysis::attach_symmetry(made->cp);
    made->compile_ms = watch.elapsed_ms();
    return made;
  });
  r.cache_hit = hit;
  if (!hit) r.compile_ms = entry->compile_ms;
  const model::CompiledProblem& cp = entry->cp;
  r.symmetry_classes = cp.symmetric_class_count;

  if (request.repair) {
    process_repair(request, r, cp);
    SEKITEI_LOG_INFO("service.engine", "repair served", log::kv("id", r.id.c_str()),
                     log::kv("outcome", outcome_name(r.outcome)),
                     log::kv("ladder", ladder_step_name(r.ladder)),
                     log::kv("repaired", r.repaired), log::kv("migrations", r.migrations),
                     log::kv("solve_ms", r.solve_ms));
    return r;
  }

  // Pre-flight: a provably-infeasible instance is answered here, before a
  // search budget (or the degradation ladder) is committed to it.  The
  // analysis is one-sided — it only ever rejects instances no plan can
  // exist for — so an inconclusive verdict simply falls through.
  if (request.preflight || options_.preflight) {
    if (SEKITEI_FAULT_POINT("preflight")) {
      raise("injected fault at preflight");
    }
    const Stopwatch preflight_watch;
    const analysis::PreflightVerdict verdict = analysis::preflight(cp);
    r.preflight_ran = true;
    r.preflight_ms = preflight_watch.elapsed_ms();
    r.preflight_sweeps = verdict.sweeps;
    if (verdict.infeasible) {
      r.preflight_rejected = true;
      preflight_rejections_->add(1);
      r.outcome = Outcome::Infeasible;
      r.failure = std::string(verdict.code) + " " + verdict.reason;
      SEKITEI_LOG_INFO("service.engine", "preflight rejected request",
                       log::kv("id", r.id.c_str()), log::kv("code", verdict.code));
      return r;
    }
  }

  // Degradation ladder setup.  When a greedy retry is available, the primary
  // (optimal) attempt only gets primary_fraction of the remaining budget —
  // the reserve funds the retry.  t_end is the request's true deadline; the
  // fractional deadline is re-armed on the same StopSource, and cancellation
  // still wins at any point (a separate flag on the shared state).
  const std::int64_t t_end = request.stop.deadline_epoch_ns();
  const bool can_fallback = request.degrade.enabled && request.degrade.greedy_fallback &&
                            request.mode == core::PlannerOptions::Mode::Leveled && t_end != 0;
  if (can_fallback && request.degrade.primary_fraction > 0.0 &&
      request.degrade.primary_fraction < 1.0) {
    const std::int64_t now = StopSource::now_epoch_ns();
    if (t_end > now) {
      const auto slice = static_cast<std::int64_t>(
          static_cast<double>(t_end - now) * request.degrade.primary_fraction);
      request.stop.arm_deadline_at_ns(now + slice);
    }
  }

  auto attempt = [&](core::PlannerOptions::Mode mode) {
    core::PlannerOptions opt;
    opt.mode = mode;
    opt.stop = token;
    opt.progress_every = request.progress_every;
    opt.progress = request.progress;
    opt.anytime = request.degrade.enabled;
    core::Sekitei planner(cp, opt);
    if (request.validate) {
      sim::Executor exec(cp);
      return planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
    }
    return planner.plan();
  };

  auto adopt_plan = [&](core::PlanResult& result) {
    r.plan_text = result.plan->str(cp);
    r.plan = std::move(result.plan);
    if (request.echo_plan) {
      r.plan_steps.clear();
      r.plan_steps.reserve(r.plan->steps.size());
      for (const ActionId aid : r.plan->steps) r.plan_steps.push_back(aid.index());
      sim::Executor echo_exec(cp);
      const sim::ExecutionReport echoed = echo_exec.execute(*r.plan);
      if (echoed.feasible) r.choices = echoed.choices;
    }
  };

  Stopwatch watch;
  core::PlanResult result = attempt(request.mode);
  r.solve_ms = watch.elapsed_ms();
  r.stats = result.stats;
  r.failure = result.failure;

  if (result.plan && !result.stats.stopped) {
    adopt_plan(result);
    r.outcome = Outcome::Solved;
    r.ladder = LadderStep::Primary;
    r.failure.clear();
  } else if (result.plan) {
    // Rung 2: the stopped search held a replay-validated incumbent.
    adopt_plan(result);
    r.outcome = Outcome::Degraded;
    r.ladder = LadderStep::AnytimeIncumbent;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s fired mid-search; returning best incumbent (cost %.3f, open lower "
                  "bound %.3f)",
                  stop_reason_name(token.reason()), r.stats.incumbent_cost,
                  r.stats.open_cost_lb);
    r.failure = buf;
  } else if (result.stats.stopped && token.reason() == StopReason::Cancelled) {
    r.outcome = Outcome::Cancelled;
  } else if (result.stats.stopped) {
    // Rung 3: no incumbent — greedy retry on (a fraction of) the reserve.
    r.outcome = Outcome::DeadlineExceeded;
    if (can_fallback) {
      const std::int64_t now = StopSource::now_epoch_ns();
      if (t_end > now) {
        std::int64_t budget = t_end - now;
        if (request.degrade.greedy_fraction > 0.0 && request.degrade.greedy_fraction < 1.0) {
          budget = static_cast<std::int64_t>(static_cast<double>(budget) *
                                             request.degrade.greedy_fraction);
        }
        request.stop.arm_deadline_at_ns(now + std::max<std::int64_t>(budget, 1));
        trace::Span fallback_span("service.greedy_fallback", "service");
        Stopwatch fb;
        core::PlanResult fallback = attempt(core::PlannerOptions::Mode::Greedy);
        r.fallback_ms = fb.elapsed_ms();
        r.solve_ms = watch.elapsed_ms();
        if (fallback.plan) {
          r.stats = fallback.stats;
          adopt_plan(fallback);
          r.outcome = Outcome::Degraded;
          r.ladder = LadderStep::GreedyFallback;
          char buf[160];
          std::snprintf(buf, sizeof buf,
                        "deadline fired before the optimal search finished; greedy fallback "
                        "plan (cost lb %.3f)",
                        r.plan->cost_lb);
          r.failure = buf;
        } else if (fallback.stats.stopped &&
                   token.reason() == StopReason::Cancelled) {
          r.outcome = Outcome::Cancelled;
          r.stats = fallback.stats;
        }
        // A greedy "infeasible" is NOT proof for the leveled semantics (the
        // worst-case reservation is strictly more conservative), so the
        // outcome stays DeadlineExceeded with the primary attempt's stats.
      }
    }
  } else {
    r.outcome = Outcome::Infeasible;
  }
  SEKITEI_LOG_INFO("service.engine", "request served", log::kv("id", r.id.c_str()),
                   log::kv("outcome", outcome_name(r.outcome)),
                   log::kv("ladder", ladder_step_name(r.ladder)),
                   log::kv("cache_hit", r.cache_hit), log::kv("wait_ms", r.wait_ms),
                   log::kv("solve_ms", r.solve_ms));
  return r;
}

namespace {

/// Deployment-churn accounting for a shipped (repair or replan) plan.
/// `plan_cp` is the compile the plan's action ids index; `base_cp` is the
/// compile the prior plan's ids index.
void count_churn(const model::CompiledProblem& plan_cp, const core::Plan& plan,
                 const model::CompiledProblem& base_cp, const core::Plan& prior,
                 const repair::Survivors& survivors, PlanResponse& r) {
  std::vector<std::pair<std::string, NodeId>> placed;
  for (const ActionId aid : plan.steps) {
    const model::GroundAction& act = plan_cp.actions[aid.index()];
    if (act.kind != model::ActionKind::Place) continue;
    placed.emplace_back(plan_cp.domain->component_at(act.spec_index).name, act.node);
  }
  const auto survived = [&](const std::string& comp, const NodeId* node) {
    for (const auto& [name, at] : survivors.placements) {
      if (name == comp && (node == nullptr || at == *node)) return true;
    }
    return false;
  };
  r.migrations = 0;
  r.reconnects = 0;
  for (const auto& [comp, node] : placed) {
    if (survived(comp, &node)) {
      ++r.reconnects;
    } else if (survived(comp, nullptr)) {
      ++r.migrations;
    }
  }
  // Lost: prior placements that neither survived nor were re-established at
  // their original node by the new plan (e.g. a tenant of a failed node that
  // nothing re-places).  A survivor re-placed elsewhere is a migration, not
  // a loss — counting it under both would double-charge the churn.
  std::uint32_t lost = 0;
  for (const ActionId aid : prior.steps) {
    const model::GroundAction& act = base_cp.actions[aid.index()];
    if (act.kind != model::ActionKind::Place) continue;
    const std::string& comp = base_cp.domain->component_at(act.spec_index).name;
    if (survived(comp, &act.node)) continue;
    bool reestablished = false;
    for (const auto& [name, node] : placed) {
      if (name == comp && node == act.node) reestablished = true;
    }
    if (!reestablished && survived(comp, nullptr)) continue;  // migrated survivor
    if (!reestablished) ++lost;
  }
  r.disruption = r.migrations + lost;
}

}  // namespace

void PlanningEngine::process_repair(PlanRequest& request, PlanResponse& r,
                                    const model::CompiledProblem& cp) {
  trace::Span span("service.repair", "service");
  const RepairSpec& spec = *request.repair;
  r.repair_requested = true;
  const StopToken token = request.stop.token();

  for (const ActionId aid : spec.prior_plan.steps) {
    if (aid.index() >= cp.actions.size()) {
      r.outcome = Outcome::Rejected;
      r.failure = "repair: prior-plan action " + std::to_string(aid.index()) +
                  " out of range (problem compiles to " +
                  std::to_string(cp.actions.size()) + " actions)";
      return;
    }
  }

  // Repair pre-flight cut: before computing survivors or spending any search
  // budget, test the goal's relaxed reachability on the *bare* damaged
  // network — no survivors pinned, every capacity free.  That is the most
  // permissive problem any ladder rung will ever solve, so "unreachable
  // there" is a sound certificate that the drift is unsurvivable: answer
  // Infeasible immediately instead of burning the deadline on the repair
  // search and the full replan.  The bare compile is hoisted to function
  // scope so the FullReplan rung below reuses it verbatim.
  const net::Network bare = repair::damaged_copy(*cp.net, spec.damage, nullptr);
  model::CppProblem fresh = *cp.problem;
  fresh.network = &bare;
  std::optional<model::CompiledProblem> bcp;
  if (request.preflight || options_.preflight) {
    if (SEKITEI_FAULT_POINT("repair.preflight")) {
      raise("injected fault at repair.preflight");
    }
    const Stopwatch preflight_watch;
    bcp.emplace(model::compile(fresh, cp.scenario));
    analysis::attach_symmetry(*bcp);
    const analysis::PreflightVerdict verdict = analysis::preflight(*bcp);
    r.repair_preflight_ran = true;
    r.repair_preflight_ms = preflight_watch.elapsed_ms();
    if (verdict.infeasible) {
      r.repair_preflight_rejected = true;
      SEKITEI_METRIC(repair_preflight_rejected_->add(1));
      r.symmetry_classes = bcp->symmetric_class_count;
      r.outcome = Outcome::Infeasible;
      r.failure = "unsurvivable drift: " + std::string(verdict.code) + " " + verdict.reason;
      SEKITEI_LOG_INFO("service.engine", "repair preflight rejected request",
                       log::kv("id", r.id.c_str()), log::kv("code", verdict.code));
      return;
    }
    SEKITEI_METRIC(repair_preflight_passed_->add(1));
  }

  // Survivors of the prior deployment under the damage delta.  An empty
  // prior plan means "no survivors": the repair degenerates to a replan on
  // the damaged network (the load generator's replan yardstick).
  if (SEKITEI_FAULT_POINT("repair.survivors")) {
    raise("injected fault at repair.survivors");
  }
  repair::Survivors survivors;
  const bool have_prior = !spec.prior_plan.steps.empty();
  if (have_prior) {
    survivors = repair::compute_survivors(cp, spec.prior_plan, spec.choices, spec.damage);
  }

  // The repair CPP: damaged network minus the survivors' residual
  // consumption, survivors pre-placed, their streams initial, placement
  // actions discounted to RECONNECT/MIGRATE rates.  Compiled locally — the
  // damaged network is request-specific, so the compiled-problem cache
  // cannot serve it.
  Stopwatch compile_watch;
  const net::Network damaged =
      repair::damaged_copy(*cp.net, spec.damage, have_prior ? &survivors.residual : nullptr);
  const model::CppProblem rp = repair::repair_problem(*cp.problem, damaged, survivors);
  model::CompiledProblem rcp = model::compile(rp, cp.scenario);
  repair::apply_adaptation_costs(rcp, survivors, spec.costs);
  // Discounted costs only vary at survivor nodes, which repair_problem()
  // pre-places (pinned singletons in the partition), so twin pruning on the
  // repair compile stays cost-exact.
  analysis::attach_symmetry(rcp);
  r.symmetry_classes = rcp.symmetric_class_count;
  r.compile_ms += compile_watch.elapsed_ms();

  bool preflight_skip = false;  // preflight proved the repair CPP infeasible
  if (request.preflight || options_.preflight) {
    if (SEKITEI_FAULT_POINT("preflight")) {
      raise("injected fault at preflight");
    }
    const Stopwatch preflight_watch;
    const analysis::PreflightVerdict verdict = analysis::preflight(rcp);
    r.preflight_ran = true;
    r.preflight_ms = preflight_watch.elapsed_ms();
    r.preflight_sweeps = verdict.sweeps;
    if (verdict.infeasible) {
      // Infeasible *with the survivors pinned* is not infeasible outright —
      // tearing everything down frees their resources — so this falls down
      // the ladder to the full replan instead of answering Infeasible.
      r.preflight_rejected = true;
      preflight_rejections_->add(1);
      preflight_skip = true;
      r.failure = std::string(verdict.code) + " " + verdict.reason;
    }
  }

  // Ladder budget split, as in process_inner: the repair attempt gets
  // primary_fraction of the remaining budget, the reserve funds the full
  // replan on the damaged network.
  const std::int64_t t_end = request.stop.deadline_epoch_ns();
  const bool can_replan = request.degrade.enabled;
  if (can_replan && t_end != 0 && request.degrade.primary_fraction > 0.0 &&
      request.degrade.primary_fraction < 1.0) {
    const std::int64_t now = StopSource::now_epoch_ns();
    if (t_end > now) {
      const auto slice = static_cast<std::int64_t>(
          static_cast<double>(t_end - now) * request.degrade.primary_fraction);
      request.stop.arm_deadline_at_ns(now + slice);
    }
  }

  auto attempt_on = [&](const model::CompiledProblem& target) {
    core::PlannerOptions opt;
    opt.mode = request.mode;
    opt.stop = token;
    opt.progress_every = request.progress_every;
    opt.progress = request.progress;
    opt.anytime = request.degrade.enabled;
    core::Sekitei planner(target, opt);
    if (request.validate) {
      sim::Executor exec(target);
      return planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
    }
    return planner.plan();
  };

  auto adopt_plan = [&](core::PlanResult& result, const model::CompiledProblem& target) {
    r.plan_text = result.plan->str(target);
    r.plan = std::move(result.plan);
    count_churn(target, *r.plan, cp, spec.prior_plan, survivors, r);
    r.repair_cost = r.plan->cost_lb + spec.migration_penalty * r.migrations;
    if (request.echo_plan) {
      r.plan_steps.clear();
      r.plan_steps.reserve(r.plan->steps.size());
      for (const ActionId aid : r.plan->steps) r.plan_steps.push_back(aid.index());
      sim::Executor echo_exec(target);
      const sim::ExecutionReport echoed = echo_exec.execute(*r.plan);
      if (echoed.feasible) r.choices = echoed.choices;
    }
  };

  // Deterministic mid-repair failure for tests and the CI fault matrix: Fail
  // mode behaves exactly like the repair search's budget slice expiring with
  // no incumbent in hand, driving the FullReplan rung below.
  const bool fault_cut = SEKITEI_FAULT_POINT("repair.plan");

  Stopwatch watch;
  core::PlanResult result;
  if (!preflight_skip && !fault_cut) {
    trace::Span repair_span("service.repair_search", "service");
    result = attempt_on(rcp);
    r.failure = result.failure;
  }
  r.solve_ms = watch.elapsed_ms();
  r.stats = result.stats;

  if (result.plan && !result.stats.stopped) {
    adopt_plan(result, rcp);
    r.outcome = Outcome::Solved;
    r.ladder = LadderStep::Primary;
    r.repaired = true;
    r.failure.clear();
    return;
  }
  if (result.plan) {
    // Rung 2: the stopped repair search held a replay-validated incumbent.
    adopt_plan(result, rcp);
    r.outcome = Outcome::Degraded;
    r.ladder = LadderStep::AnytimeIncumbent;
    r.repaired = true;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s fired mid-repair; returning best incumbent (cost %.3f, open lower "
                  "bound %.3f)",
                  stop_reason_name(token.reason()), r.stats.incumbent_cost,
                  r.stats.open_cost_lb);
    r.failure = buf;
    return;
  }
  if (result.stats.stopped && token.reason() == StopReason::Cancelled) {
    r.outcome = Outcome::Cancelled;
    return;
  }

  // Rung 3 (FullReplan): the repair could not answer — infeasible with the
  // survivors pinned, budget slice expired without an incumbent, or cut
  // short by the repair.plan fault — so replan from scratch on the damaged
  // network at full capacities and undiscounted costs.
  r.outcome = (fault_cut || result.stats.stopped) ? Outcome::DeadlineExceeded
                                                  : Outcome::Infeasible;
  if (!can_replan) return;
  if (t_end != 0) {
    const std::int64_t now = StopSource::now_epoch_ns();
    if (t_end <= now) return;  // budget already gone
    std::int64_t budget = t_end - now;
    if (request.degrade.greedy_fraction > 0.0 && request.degrade.greedy_fraction < 1.0) {
      budget = static_cast<std::int64_t>(static_cast<double>(budget) *
                                         request.degrade.greedy_fraction);
    }
    request.stop.arm_deadline_at_ns(now + std::max<std::int64_t>(budget, 1));
  }
  trace::Span replan_span("service.full_replan", "service");
  Stopwatch fb;
  if (!bcp) {
    bcp.emplace(model::compile(fresh, cp.scenario));
    analysis::attach_symmetry(*bcp);
  }
  const model::CompiledProblem& fcp = *bcp;
  core::PlanResult replanned = attempt_on(fcp);
  r.fallback_ms = fb.elapsed_ms();
  r.solve_ms = watch.elapsed_ms();
  if (replanned.plan) {
    r.stats = replanned.stats;
    r.symmetry_classes = fcp.symmetric_class_count;
    adopt_plan(replanned, fcp);
    r.outcome = Outcome::Degraded;
    r.ladder = LadderStep::FullReplan;
    r.repaired = false;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "repair could not answer within its budget; full replan on the damaged "
                  "network (cost lb %.3f)",
                  r.plan->cost_lb);
    r.failure = buf;
  } else if (replanned.stats.stopped && token.reason() == StopReason::Cancelled) {
    r.outcome = Outcome::Cancelled;
    r.stats = replanned.stats;
  } else if (!replanned.stats.stopped) {
    // Both the pinned-survivors repair and the from-scratch replan ran to
    // completion without a plan: the damaged instance is infeasible.
    r.outcome = Outcome::Infeasible;
    r.stats = replanned.stats;
    r.failure = replanned.failure;
  }
}

}  // namespace sekitei::service
