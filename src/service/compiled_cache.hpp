// Sharded LRU cache of compiled problems, keyed by content fingerprint
// (model/fingerprint.hpp).  Repeated queries against the same network /
// domain / scenario skip grounding+leveling entirely and share one immutable
// CompiledProblem across worker threads — every planner phase takes the
// compiled problem by const reference and allocates its own search state, so
// concurrent reads are safe.
//
// Sharding: the key space is split over `shards` independently locked LRU
// lists, so concurrent workers touching different problems never contend on
// one mutex.  Capacity is divided evenly across shards (floor, min 1), which
// makes eviction approximate w.r.t. a single global LRU — the standard
// trade-off.  A capacity of 0 disables caching: every lookup misses and
// nothing is retained (the bench uses this to price the cache itself).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/compile.hpp"
#include "model/textio.hpp"

namespace sekitei::service {

/// An immutable compiled problem pinned together with the loaded instance it
/// points into (CompiledProblem holds raw pointers to the network/domain/
/// problem, so `source` must outlive `cp`).
struct CompiledEntry {
  std::shared_ptr<const model::LoadedProblem> source;
  model::CompiledProblem cp;
  double compile_ms = 0.0;
};

class CompiledProblemCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;

    [[nodiscard]] double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  using Factory = std::function<std::shared_ptr<const CompiledEntry>()>;

  explicit CompiledProblemCache(std::size_t capacity, std::size_t shards = 8);

  /// Returns the cached entry for `key`, or runs `make` and inserts its
  /// result.  The factory runs *outside* the shard lock (compilation can take
  /// tens of milliseconds; holding the lock would serialize unrelated
  /// lookups).  When two threads race on the same missing key both may
  /// compile, but only the first insert survives and both callers receive
  /// the surviving entry.  Second element: true on a cache hit.
  [[nodiscard]] std::pair<std::shared_ptr<const CompiledEntry>, bool> get_or_compile(
      std::uint64_t key, const Factory& make);

  /// Probe without a factory (counts as hit/miss; refreshes LRU position).
  [[nodiscard]] std::shared_ptr<const CompiledEntry> find(std::uint64_t key);

  /// Inserts (or replaces) an entry, evicting the shard's LRU tail if full.
  void insert(std::uint64_t key, std::shared_ptr<const CompiledEntry> entry);

  [[nodiscard]] Stats stats() const;
  void clear();

  [[nodiscard]] std::size_t capacity() const { return shards_.size() * per_shard_cap_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] bool enabled() const { return enabled_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<std::uint64_t, std::shared_ptr<const CompiledEntry>>> lru;
    std::unordered_map<std::uint64_t,
                       std::list<std::pair<std::uint64_t,
                                           std::shared_ptr<const CompiledEntry>>>::iterator>
        index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& shard_of(std::uint64_t key) {
    // Fingerprints are FNV-mixed, so the low bits are already uniform.
    return shards_[key % shards_.size()];
  }

  /// Looks `key` up in `shard` (lock held by caller), refreshing LRU order.
  [[nodiscard]] std::shared_ptr<const CompiledEntry> lookup_locked(Shard& shard,
                                                                   std::uint64_t key);
  void insert_locked(Shard& shard, std::uint64_t key,
                     std::shared_ptr<const CompiledEntry> entry);

  bool enabled_ = true;
  std::size_t per_shard_cap_ = 1;
  std::vector<Shard> shards_;
};

}  // namespace sekitei::service
