// Search flight recorder: a fixed-capacity ring buffer of RG progress
// samples for one request, filled from the planner's existing
// progress-observer tick and dumped as NDJSON when the request ends in a
// deadline/degraded/failed outcome — so the post-mortem of a slow request
// ("where did the search spend its budget, was an incumbent ever close")
// needs no rerun.
//
// One recorder belongs to one request and is only touched from the worker
// thread running that request's search (the progress observer is invoked
// from inside the search loop; the dump happens on the same worker after
// planning), so it needs no locking.
//
// Dump format (tools/sekitei_stats understands it):
//   {"flight":"<request id>","outcome":"deadline_exceeded","samples":17,
//    "recorded":1203,"capacity":256}
//   {"t_ms":1.0,"expansions":8192,"open":512,"nodes":9000,"incumbents":1,
//    "incumbent_cost":42.000,"frontier_f":37.500}
//   ... one line per retained sample, oldest first ...
// When more ticks were recorded than the ring holds, the *latest* samples
// win (the interesting part of a timed-out search is its end).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/stats.hpp"
#include "support/timer.hpp"

namespace sekitei::service {

class FlightRecorder {
 public:
  struct Sample {
    double t_ms = 0.0;  // since the recorder was created (request pickup)
    std::uint64_t expansions = 0;
    std::uint64_t open = 0;
    std::uint64_t nodes = 0;
    std::uint64_t incumbents = 0;
    double incumbent_cost = 0.0;
    /// Best admissible f at the tick — a live lower bound on the optimal
    /// cost (PlannerStats::open_cost_lb, refreshed per tick under anytime
    /// search; 0 before the first refresh).
    double frontier_f = 0.0;
  };

  explicit FlightRecorder(std::size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(capacity_);
  }

  /// Records one progress tick (call from a PlannerOptions::progress hook).
  void record(const core::PlannerStats& stats);

  /// Samples currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  /// Ticks ever recorded (>= size() once the ring has wrapped).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Oldest-first copy of the retained samples.
  [[nodiscard]] std::vector<Sample> samples() const;

  /// Header line + one line per retained sample, oldest first.
  [[nodiscard]] std::string to_ndjson(std::string_view request_id,
                                      std::string_view outcome) const;

 private:
  std::size_t capacity_;
  std::vector<Sample> ring_;
  std::size_t next_ = 0;  // overwrite position once the ring is full
  std::uint64_t recorded_ = 0;
  Stopwatch watch_;
};

}  // namespace sekitei::service
