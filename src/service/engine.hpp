// The concurrent planning engine: accepts PlanRequests, schedules them on a
// fixed thread pool, and returns futures of PlanResponse.
//
//   service::PlanningEngine engine({.workers = 4, .default_deadline_ms = 500});
//   auto ticket = engine.submit({.id = "q1", .problem = lp});
//   ...
//   service::PlanResponse r = ticket.response.get();
//
// Per request the worker: (1) computes the content fingerprint and asks the
// sharded LRU compiled-problem cache, compiling only on a miss; (2) runs the
// three-phase Sekitei planner against the shared immutable CompiledProblem
// with the request's stop token plumbed into every phase; (3) walks the
// graceful-degradation ladder (optimal -> anytime incumbent -> greedy retry
// on the reserved remainder of the budget, see request.hpp) before
// classifying the result into an Outcome.  Deadlines and cancellation are
// cooperative: the token is polled at the planner's progress cadence, so
// responses to a fired deadline arrive within one progress tick, carrying
// the partial stats accumulated so far.
//
// Robustness: every submitted job carries a guard that answers its future
// with Rejected and releases the pending slot from the guard's destructor if
// the job is ever dropped without completing (an injected worker fault, a
// non-draining shutdown) — a submitted request can never hang its client or
// leak a pending slot.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <string>

#include "service/compiled_cache.hpp"
#include "service/request.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace sekitei::service {

class PlanningEngine {
 public:
  struct Options {
    std::size_t workers = 0;           // 0 = std::thread::hardware_concurrency()
    std::size_t cache_capacity = 128;  // compiled problems; 0 disables caching
    std::size_t cache_shards = 8;
    double default_deadline_ms = 0.0;  // <= 0 = no default deadline
    /// Reject new submissions while this many requests are queued or running
    /// (admission control); 0 = unbounded.
    std::size_t max_pending = 0;
    /// Run the pre-flight infeasibility analyzer on every request (the
    /// engine-wide counterpart of PlanRequest::preflight).
    bool preflight = false;
    /// Search flight recorder (service/flight_recorder.hpp): when a dump
    /// destination is set, every request samples RG progress into a ring of
    /// `flight_capacity` entries and non-solved outcomes (deadline_exceeded,
    /// degraded, cancelled, infeasible-after-search) dump it as NDJSON —
    /// `flight_dir` writes <dir>/<sanitized id>.flight.ndjson, `flight_sink`
    /// receives the rendered dump instead (takes precedence; called
    /// concurrently from worker threads, so it must be thread-safe).
    std::size_t flight_capacity = 256;
    std::string flight_dir;
    std::function<void(const std::string& ndjson)> flight_sink;
  };

  /// Handle returned by submit(): the response future plus the cancellation
  /// source (shared with the request; cancel() stops the request whether it
  /// is still queued or already planning).
  struct Ticket {
    std::future<PlanResponse> response;
    StopSource stop;

    void cancel() { stop.request_stop(); }
  };

  // Not a `= {}` default argument: NSDMIs of a nested class are not usable
  // in default arguments of the enclosing class (GCC rejects it).
  PlanningEngine() : PlanningEngine(Options{}) {}
  explicit PlanningEngine(Options options);
  /// Drains queued requests, then joins the workers.
  ~PlanningEngine() = default;

  PlanningEngine(const PlanningEngine&) = delete;
  PlanningEngine& operator=(const PlanningEngine&) = delete;

  [[nodiscard]] Ticket submit(PlanRequest request);

  /// Callback form of submit(), for callers that complete requests out of
  /// order without parking a thread per future (the network daemon's
  /// sessions).  `done` is invoked exactly once — from a worker thread on
  /// the normal path, inline on admission rejection — and must be
  /// thread-safe against other completions.  Cancellation stays available
  /// through the StopSource the caller put into the request.
  void submit_async(PlanRequest request,
                    std::function<void(PlanResponse&&)> done);

  /// Convenience: submit + wait.
  [[nodiscard]] PlanResponse plan(PlanRequest request);

  [[nodiscard]] CompiledProblemCache::Stats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] std::size_t worker_count() const { return pool_.worker_count(); }
  /// Requests accepted but not yet answered (queued + running).  Backed by
  /// the process-wide metrics registry ("service.pending"{engine=...}); the
  /// accessor semantics are unchanged from the pre-registry atomics.
  [[nodiscard]] std::size_t pending() const {
    const std::int64_t v = pending_->value();
    return v > 0 ? static_cast<std::size_t>(v) : 0;
  }
  /// Requests answered Infeasible by the pre-flight analyzer alone (no
  /// search was run for them).
  [[nodiscard]] std::uint64_t preflight_rejections() const {
    return preflight_rejections_->value();
  }
  /// Value of the "engine" label this instance reports its per-engine
  /// metrics under ("0", "1", ... in construction order, process-wide).
  [[nodiscard]] const std::string& metrics_label() const { return engine_label_; }

 private:
  /// Non-const request: the degradation ladder re-arms the deadline on the
  /// request's own StopSource to split one budget across attempts.  The
  /// wrapper owns per-request observability (flight recorder, per-outcome /
  /// ladder counters); process_inner() holds the planning logic.
  [[nodiscard]] PlanResponse process(PlanRequest& request, double wait_ms);
  [[nodiscard]] PlanResponse process_inner(PlanRequest& request, double wait_ms);
  /// The repair path (PlanRequest::repair): survivors-compute, discounted
  /// repair search, and the FullReplan ladder rung.  Fills `r` in place;
  /// `cp` is the cached compile of the request's (base) problem.
  void process_repair(PlanRequest& request, PlanResponse& r,
                      const model::CompiledProblem& cp);

  Options options_;
  CompiledProblemCache cache_;
  std::string engine_label_;
  // Registry-owned instruments (stable addresses for the engine's lifetime).
  // pending_/preflight_rejections_ are load-bearing (accessors above, the
  // admission-control check), so they are plain calls, never compiled out.
  metrics::Gauge* pending_ = nullptr;
  metrics::Gauge* queue_depth_ = nullptr;
  metrics::Counter* preflight_rejections_ = nullptr;
  // Repair pre-flight cut tallies ("service.repair_preflight"{outcome=...}):
  // drift requests proven unsurvivable before any repair search vs passed on.
  metrics::Counter* repair_preflight_rejected_ = nullptr;
  metrics::Counter* repair_preflight_passed_ = nullptr;
  std::array<metrics::Counter*, 6> outcome_counters_{};  // indexed by Outcome
  std::array<metrics::Counter*, 4> ladder_counters_{};   // indexed by LadderStep
  std::array<metrics::Counter*, 6> repair_counters_{};   // repair requests by Outcome
  metrics::Histogram* latency_hist_ = nullptr;
  metrics::Histogram* queue_wait_hist_ = nullptr;
  metrics::Histogram* repair_migrations_hist_ = nullptr;
  ThreadPool pool_;  // last member: destroyed (joined) first, while the cache
                     // and options it reads are still alive
};

}  // namespace sekitei::service
