#include "service/wire.hpp"

#include <cinttypes>
#include <cstdio>

#include "support/json.hpp"
#include "support/json_reader.hpp"

namespace sekitei::service::wire {

std::string encode_frame(const std::string& body) {
  std::string out = std::to_string(body.size());
  out.push_back('\n');
  out += body;
  out.push_back('\n');
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (failed_) return;
  buf_.append(data, n);
}

FrameDecoder::Status FrameDecoder::fail(std::string why) {
  failed_ = true;
  error_ = std::move(why);
  buf_.clear();
  pos_ = 0;
  return Status::Error;
}

FrameDecoder::Status FrameDecoder::next(std::string& body) {
  if (failed_) return Status::Error;
  if (want_ < 0) {
    // Header line: decimal digits up to '\n' (an optional '\r' before it is
    // tolerated for hand-driven clients).
    const std::size_t nl = buf_.find('\n', pos_);
    const std::size_t kMaxHeader = 20;  // 2^63 has 19 digits
    if (nl == std::string::npos) {
      if (buf_.size() - pos_ > kMaxHeader) return fail("frame header is not a length line");
      return Status::NeedMore;
    }
    std::size_t end = nl;
    if (end > pos_ && buf_[end - 1] == '\r') --end;
    if (end == pos_ || end - pos_ > kMaxHeader) {
      return fail("frame header is not a length line");
    }
    long long len = 0;
    for (std::size_t i = pos_; i < end; ++i) {
      const char c = buf_[i];
      if (c < '0' || c > '9') return fail("frame header is not a length line");
      len = len * 10 + (c - '0');
    }
    if (static_cast<std::size_t>(len) > max_frame_bytes_) {
      return fail("frame of " + std::to_string(len) + " bytes exceeds the " +
                  std::to_string(max_frame_bytes_) + "-byte limit");
    }
    want_ = len;
    pos_ = nl + 1;
  }
  // Body plus its trailing newline.
  const auto need = static_cast<std::size_t>(want_) + 1;
  if (buf_.size() - pos_ < need) return Status::NeedMore;
  if (buf_[pos_ + static_cast<std::size_t>(want_)] != '\n') {
    return fail("frame body is not newline-terminated at the declared length");
  }
  body.assign(buf_, pos_, static_cast<std::size_t>(want_));
  pos_ += need;
  want_ = -1;
  // Compact once the consumed prefix dominates, so a long-lived session
  // does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return Status::Frame;
}

namespace {

using sekitei::json::Value;

bool take_string(const Value& v, const char* key, std::string& out, std::string& error) {
  const Value* f = v.find(key);
  if (f == nullptr) return true;
  if (!f->is_string()) {
    error = std::string("\"") + key + "\" must be a string";
    return false;
  }
  out = f->str;
  return true;
}

bool take_number(const Value& v, const char* key, double& out, std::string& error) {
  const Value* f = v.find(key);
  if (f == nullptr) return true;
  if (!f->is_number()) {
    error = std::string("\"") + key + "\" must be a number";
    return false;
  }
  out = f->number;
  return true;
}

bool take_bool(const Value& v, const char* key, bool& out, std::string& error) {
  const Value* f = v.find(key);
  if (f == nullptr) return true;
  if (!f->is_bool()) {
    error = std::string("\"") + key + "\" must be a boolean";
    return false;
  }
  out = f->boolean;
  return true;
}

}  // namespace

bool parse_request(const std::string& body, WireRequest& out, std::string& error) {
  Value v;
  std::string parse_error;
  if (!sekitei::json::parse(body, v, &parse_error)) {
    error = "malformed JSON: " + parse_error;
    return false;
  }
  if (!v.is_object()) {
    error = "request frame must be a JSON object";
    return false;
  }
  out = WireRequest{};

  std::string op = "plan";
  if (!take_string(v, "op", op, error)) return false;
  if (op == "healthz") {
    out.op = WireRequest::Op::Healthz;
    return true;
  }
  if (op == "stats") {
    out.op = WireRequest::Op::Stats;
    return true;
  }
  if (op != "plan") {
    error = "unknown op \"" + op + "\" (expected plan, healthz, or stats)";
    return false;
  }
  out.op = WireRequest::Op::Plan;

  if (!take_string(v, "id", out.id, error)) return false;
  if (!take_string(v, "problem", out.problem_text, error)) return false;
  if (out.problem_text.empty()) {
    error = "plan request carries no \"problem\" text";
    return false;
  }
  if (!take_number(v, "deadline_ms", out.deadline_ms, error)) return false;
  std::string mode = "leveled";
  if (!take_string(v, "mode", mode, error)) return false;
  if (mode == "greedy") {
    out.mode = core::PlannerOptions::Mode::Greedy;
  } else if (mode == "leveled") {
    out.mode = core::PlannerOptions::Mode::Leveled;
  } else {
    error = "unknown mode \"" + mode + "\" (expected leveled or greedy)";
    return false;
  }
  if (!take_bool(v, "validate", out.validate, error)) return false;
  if (!take_bool(v, "preflight", out.preflight, error)) return false;
  if (!take_bool(v, "degrade", out.degrade, error)) return false;
  return true;
}

std::string render_request(const WireRequest& r) {
  std::string out = "{\"op\":";
  switch (r.op) {
    case WireRequest::Op::Healthz: out += "\"healthz\""; break;
    case WireRequest::Op::Stats: out += "\"stats\""; break;
    case WireRequest::Op::Plan: out += "\"plan\""; break;
  }
  if (r.op != WireRequest::Op::Plan) {
    out.push_back('}');
    return out;
  }
  out += ",\"id\":";
  json::append_escaped(out, r.id);
  out += ",\"problem\":";
  json::append_escaped(out, r.problem_text);
  out += ",\"deadline_ms\":";
  json::append_number(out, r.deadline_ms);
  out += ",\"mode\":";
  out += r.mode == core::PlannerOptions::Mode::Greedy ? "\"greedy\"" : "\"leveled\"";
  out += ",\"validate\":";
  out += r.validate ? "true" : "false";
  out += ",\"preflight\":";
  out += r.preflight ? "true" : "false";
  out += ",\"degrade\":";
  out += r.degrade ? "true" : "false";
  out.push_back('}');
  return out;
}

std::string render_response_line(const PlanResponse& r) {
  return response_to_json(r) + "\n";
}

}  // namespace sekitei::service::wire

namespace sekitei::service {

// Declared in request.hpp; lives here with the rest of the wire rendering
// (wire_test.cpp pins this record byte-for-byte).
std::string response_to_json(const PlanResponse& r) {
  std::string out = "{\"request\":";
  json::append_escaped(out, r.id);
  out += ",\"outcome\":";
  json::append_escaped(out, outcome_name(r.outcome));
  out += ",\"ladder\":";
  json::append_escaped(out, ladder_step_name(r.ladder));
  out += ",\"cache_hit\":";
  out += r.cache_hit ? "true" : "false";
  char hexbuf[24];
  std::snprintf(hexbuf, sizeof hexbuf, "%016" PRIx64, r.fingerprint);
  out += ",\"fingerprint\":\"";
  out += hexbuf;
  out += "\"";
  if (r.plan) {
    out += ",\"plan_actions\":";
    json::append_number(out, static_cast<std::uint64_t>(r.plan->size()));
    out += ",\"cost_lb\":";
    json::append_number(out, r.plan->cost_lb);
  }
  out += ",\"wait_ms\":";
  json::append_number(out, r.wait_ms);
  out += ",\"compile_ms\":";
  json::append_number(out, r.compile_ms);
  if (r.preflight_ran) {
    out += ",\"preflight_ms\":";
    json::append_number(out, r.preflight_ms);
    out += ",\"preflight_rejected\":";
    out += r.preflight_rejected ? "true" : "false";
    out += ",\"preflight_sweeps\":";
    json::append_number(out, static_cast<std::uint64_t>(r.preflight_sweeps));
  }
  out += ",\"solve_ms\":";
  json::append_number(out, r.solve_ms);
  if (r.fallback_ms > 0.0) {
    out += ",\"fallback_ms\":";
    json::append_number(out, r.fallback_ms);
  }
  if (r.attempts > 1) {
    out += ",\"attempts\":";
    json::append_number(out, static_cast<std::uint64_t>(r.attempts));
  }
  if (!r.failure.empty()) {
    out += ",\"failure\":";
    json::append_escaped(out, r.failure);
  }
  out += ",\"stats\":";
  out += core::stats_to_json(r.stats);
  out.push_back('}');
  return out;
}

}  // namespace sekitei::service

namespace sekitei::service::wire {

std::string render_response_frame(const PlanResponse& r) {
  return encode_frame(response_to_json(r));
}

PlanResponse make_rejected(std::string id, std::string failure) {
  PlanResponse r;
  r.id = std::move(id);
  r.outcome = Outcome::Rejected;
  r.failure = std::move(failure);
  return r;
}

}  // namespace sekitei::service::wire
