#include "service/wire.hpp"

#include <cinttypes>
#include <cstdio>

#include "support/json.hpp"
#include "support/json_reader.hpp"

namespace sekitei::service::wire {

std::string encode_frame(const std::string& body) {
  std::string out = std::to_string(body.size());
  out.push_back('\n');
  out += body;
  out.push_back('\n');
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (failed_) return;
  buf_.append(data, n);
}

FrameDecoder::Status FrameDecoder::fail(std::string why) {
  failed_ = true;
  error_ = std::move(why);
  buf_.clear();
  pos_ = 0;
  return Status::Error;
}

FrameDecoder::Status FrameDecoder::next(std::string& body) {
  if (failed_) return Status::Error;
  if (want_ < 0) {
    // Header line: decimal digits up to '\n' (an optional '\r' before it is
    // tolerated for hand-driven clients).
    const std::size_t nl = buf_.find('\n', pos_);
    const std::size_t kMaxHeader = 20;  // 2^63 has 19 digits
    if (nl == std::string::npos) {
      if (buf_.size() - pos_ > kMaxHeader) return fail("frame header is not a length line");
      return Status::NeedMore;
    }
    std::size_t end = nl;
    if (end > pos_ && buf_[end - 1] == '\r') --end;
    if (end == pos_ || end - pos_ > kMaxHeader) {
      return fail("frame header is not a length line");
    }
    long long len = 0;
    for (std::size_t i = pos_; i < end; ++i) {
      const char c = buf_[i];
      if (c < '0' || c > '9') return fail("frame header is not a length line");
      len = len * 10 + (c - '0');
    }
    if (static_cast<std::size_t>(len) > max_frame_bytes_) {
      return fail("frame of " + std::to_string(len) + " bytes exceeds the " +
                  std::to_string(max_frame_bytes_) + "-byte limit");
    }
    want_ = len;
    pos_ = nl + 1;
  }
  // Body plus its trailing newline.
  const auto need = static_cast<std::size_t>(want_) + 1;
  if (buf_.size() - pos_ < need) return Status::NeedMore;
  if (buf_[pos_ + static_cast<std::size_t>(want_)] != '\n') {
    return fail("frame body is not newline-terminated at the declared length");
  }
  body.assign(buf_, pos_, static_cast<std::size_t>(want_));
  pos_ += need;
  want_ = -1;
  // Compact once the consumed prefix dominates, so a long-lived session
  // does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return Status::Frame;
}

namespace {

using sekitei::json::Value;

bool take_string(const Value& v, const char* key, std::string& out, std::string& error) {
  const Value* f = v.find(key);
  if (f == nullptr) return true;
  if (!f->is_string()) {
    error = std::string("\"") + key + "\" must be a string";
    return false;
  }
  out = f->str;
  return true;
}

bool take_number(const Value& v, const char* key, double& out, std::string& error) {
  const Value* f = v.find(key);
  if (f == nullptr) return true;
  if (!f->is_number()) {
    error = std::string("\"") + key + "\" must be a number";
    return false;
  }
  out = f->number;
  return true;
}

bool take_bool(const Value& v, const char* key, bool& out, std::string& error) {
  const Value* f = v.find(key);
  if (f == nullptr) return true;
  if (!f->is_bool()) {
    error = std::string("\"") + key + "\" must be a boolean";
    return false;
  }
  out = f->boolean;
  return true;
}

bool take_index_array(const Value& v, const char* key, std::vector<std::uint32_t>& out,
                      std::string& error) {
  const Value* f = v.find(key);
  if (f == nullptr) return true;
  if (!f->is_array()) {
    error = std::string("\"") + key + "\" must be an array of action indices";
    return false;
  }
  for (const Value& e : *f->arr) {
    if (!e.is_number() || e.number < 0) {
      error = std::string("\"") + key + "\" must be an array of action indices";
      return false;
    }
    out.push_back(static_cast<std::uint32_t>(e.number));
  }
  return true;
}

bool take_number_array(const Value& v, const char* key, std::vector<double>& out,
                       std::string& error) {
  const Value* f = v.find(key);
  if (f == nullptr) return true;
  if (!f->is_array()) {
    error = std::string("\"") + key + "\" must be an array of numbers";
    return false;
  }
  for (const Value& e : *f->arr) {
    if (!e.is_number()) {
      error = std::string("\"") + key + "\" must be an array of numbers";
      return false;
    }
    out.push_back(e.number);
  }
  return true;
}

bool parse_damage(const Value& v, WireDamage& out, std::string& error) {
  const Value* d = v.find("damage");
  if (d == nullptr) return true;
  if (!d->is_object()) {
    error = "\"damage\" must be an object";
    return false;
  }
  if (const Value* f = d->find("failed_nodes")) {
    if (!f->is_array()) {
      error = "\"failed_nodes\" must be an array of node names";
      return false;
    }
    for (const Value& e : *f->arr) {
      if (!e.is_string()) {
        error = "\"failed_nodes\" must be an array of node names";
        return false;
      }
      out.failed_nodes.push_back(e.str);
    }
  }
  if (const Value* f = d->find("failed_links")) {
    if (!f->is_array()) {
      error = "\"failed_links\" must be an array of [a, b] endpoint-name pairs";
      return false;
    }
    for (const Value& e : *f->arr) {
      if (!e.is_array() || e.arr->size() != 2 || !(*e.arr)[0].is_string() ||
          !(*e.arr)[1].is_string()) {
        error = "\"failed_links\" must be an array of [a, b] endpoint-name pairs";
        return false;
      }
      out.failed_links.emplace_back((*e.arr)[0].str, (*e.arr)[1].str);
    }
  }
  if (const Value* f = d->find("degraded_nodes")) {
    if (!f->is_array()) {
      error = "\"degraded_nodes\" must be an array of {node, resource, capacity} objects";
      return false;
    }
    for (const Value& e : *f->arr) {
      WireDamage::DegradedNode dn;
      if (!e.is_object() || !take_string(e, "node", dn.node, error) ||
          !take_string(e, "resource", dn.resource, error) ||
          !take_number(e, "capacity", dn.capacity, error) || dn.node.empty() ||
          dn.resource.empty()) {
        error = "\"degraded_nodes\" must be an array of {node, resource, capacity} objects";
        return false;
      }
      out.degraded_nodes.push_back(std::move(dn));
    }
  }
  if (const Value* f = d->find("degraded_links")) {
    if (!f->is_array()) {
      error = "\"degraded_links\" must be an array of {a, b, resource, capacity} objects";
      return false;
    }
    for (const Value& e : *f->arr) {
      WireDamage::DegradedLink dl;
      if (!e.is_object() || !take_string(e, "a", dl.a, error) ||
          !take_string(e, "b", dl.b, error) ||
          !take_string(e, "resource", dl.resource, error) ||
          !take_number(e, "capacity", dl.capacity, error) || dl.a.empty() || dl.b.empty() ||
          dl.resource.empty()) {
        error = "\"degraded_links\" must be an array of {a, b, resource, capacity} objects";
        return false;
      }
      out.degraded_links.push_back(std::move(dl));
    }
  }
  return true;
}

void append_damage(std::string& out, const WireDamage& d) {
  out += "{\"failed_nodes\":[";
  for (std::size_t i = 0; i < d.failed_nodes.size(); ++i) {
    if (i > 0) out.push_back(',');
    json::append_escaped(out, d.failed_nodes[i]);
  }
  out += "],\"failed_links\":[";
  for (std::size_t i = 0; i < d.failed_links.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('[');
    json::append_escaped(out, d.failed_links[i].first);
    out.push_back(',');
    json::append_escaped(out, d.failed_links[i].second);
    out.push_back(']');
  }
  out += "],\"degraded_nodes\":[";
  for (std::size_t i = 0; i < d.degraded_nodes.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "{\"node\":";
    json::append_escaped(out, d.degraded_nodes[i].node);
    out += ",\"resource\":";
    json::append_escaped(out, d.degraded_nodes[i].resource);
    out += ",\"capacity\":";
    json::append_number(out, d.degraded_nodes[i].capacity);
    out.push_back('}');
  }
  out += "],\"degraded_links\":[";
  for (std::size_t i = 0; i < d.degraded_links.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "{\"a\":";
    json::append_escaped(out, d.degraded_links[i].a);
    out += ",\"b\":";
    json::append_escaped(out, d.degraded_links[i].b);
    out += ",\"resource\":";
    json::append_escaped(out, d.degraded_links[i].resource);
    out += ",\"capacity\":";
    json::append_number(out, d.degraded_links[i].capacity);
    out.push_back('}');
  }
  out += "]}";
}

}  // namespace

bool parse_request(const std::string& body, WireRequest& out, std::string& error) {
  Value v;
  std::string parse_error;
  if (!sekitei::json::parse(body, v, &parse_error)) {
    error = "malformed JSON: " + parse_error;
    return false;
  }
  if (!v.is_object()) {
    error = "request frame must be a JSON object";
    return false;
  }
  out = WireRequest{};

  std::string op = "plan";
  if (!take_string(v, "op", op, error)) return false;
  if (op == "healthz") {
    out.op = WireRequest::Op::Healthz;
    return true;
  }
  if (op == "stats") {
    out.op = WireRequest::Op::Stats;
    return true;
  }
  if (op == "repair") {
    out.repair = true;  // a plan request plus the repair payload below
  } else if (op != "plan") {
    error = "unknown op \"" + op + "\" (expected plan, repair, healthz, or stats)";
    return false;
  }
  out.op = WireRequest::Op::Plan;

  if (!take_string(v, "id", out.id, error)) return false;
  if (!take_string(v, "problem", out.problem_text, error)) return false;
  if (out.problem_text.empty()) {
    error = "plan request carries no \"problem\" text";
    return false;
  }
  if (!take_number(v, "deadline_ms", out.deadline_ms, error)) return false;
  std::string mode = "leveled";
  if (!take_string(v, "mode", mode, error)) return false;
  if (mode == "greedy") {
    out.mode = core::PlannerOptions::Mode::Greedy;
  } else if (mode == "cp") {
    out.mode = core::PlannerOptions::Mode::Cp;
  } else if (mode == "leveled") {
    out.mode = core::PlannerOptions::Mode::Leveled;
  } else {
    error = "unknown mode \"" + mode + "\" (expected leveled, greedy or cp)";
    return false;
  }
  if (!take_bool(v, "validate", out.validate, error)) return false;
  if (!take_bool(v, "preflight", out.preflight, error)) return false;
  if (!take_bool(v, "degrade", out.degrade, error)) return false;
  if (!take_bool(v, "echo_plan", out.echo_plan, error)) return false;
  if (!out.repair) return true;
  if (!take_index_array(v, "prior_plan", out.prior_plan, error)) return false;
  if (!take_number_array(v, "choices", out.choices, error)) return false;
  if (!parse_damage(v, out.damage, error)) return false;
  if (!take_number(v, "migration_penalty", out.migration_penalty, error)) return false;
  if (!take_number(v, "reconnect_factor", out.reconnect_factor, error)) return false;
  if (!take_number(v, "migrate_factor", out.migrate_factor, error)) return false;
  return true;
}

std::string render_request(const WireRequest& r) {
  std::string out = "{\"op\":";
  switch (r.op) {
    case WireRequest::Op::Healthz: out += "\"healthz\""; break;
    case WireRequest::Op::Stats: out += "\"stats\""; break;
    case WireRequest::Op::Plan: out += r.repair ? "\"repair\"" : "\"plan\""; break;
  }
  if (r.op != WireRequest::Op::Plan) {
    out.push_back('}');
    return out;
  }
  out += ",\"id\":";
  json::append_escaped(out, r.id);
  out += ",\"problem\":";
  json::append_escaped(out, r.problem_text);
  out += ",\"deadline_ms\":";
  json::append_number(out, r.deadline_ms);
  out += ",\"mode\":";
  switch (r.mode) {
    case core::PlannerOptions::Mode::Greedy: out += "\"greedy\""; break;
    case core::PlannerOptions::Mode::Cp: out += "\"cp\""; break;
    case core::PlannerOptions::Mode::Leveled: out += "\"leveled\""; break;
  }
  out += ",\"validate\":";
  out += r.validate ? "true" : "false";
  out += ",\"preflight\":";
  out += r.preflight ? "true" : "false";
  out += ",\"degrade\":";
  out += r.degrade ? "true" : "false";
  // Plain plan requests stay byte-identical to the pre-repair rendering
  // unless the new knob is actually on (wire_test.cpp pins both shapes).
  if (!r.repair) {
    if (r.echo_plan) out += ",\"echo_plan\":true";
    out.push_back('}');
    return out;
  }
  out += ",\"echo_plan\":";
  out += r.echo_plan ? "true" : "false";
  out += ",\"prior_plan\":[";
  for (std::size_t i = 0; i < r.prior_plan.size(); ++i) {
    if (i > 0) out.push_back(',');
    json::append_number(out, static_cast<std::uint64_t>(r.prior_plan[i]));
  }
  out += "],\"choices\":[";
  for (std::size_t i = 0; i < r.choices.size(); ++i) {
    if (i > 0) out.push_back(',');
    json::append_number(out, r.choices[i]);
  }
  out += "],\"damage\":";
  append_damage(out, r.damage);
  out += ",\"migration_penalty\":";
  json::append_number(out, r.migration_penalty);
  out += ",\"reconnect_factor\":";
  json::append_number(out, r.reconnect_factor);
  out += ",\"migrate_factor\":";
  json::append_number(out, r.migrate_factor);
  out.push_back('}');
  return out;
}

bool resolve_repair(const WireRequest& w, const model::LoadedProblem& lp, RepairSpec& out,
                    std::string& error) {
  out = RepairSpec{};
  out.prior_plan.steps.reserve(w.prior_plan.size());
  for (const std::uint32_t idx : w.prior_plan) out.prior_plan.steps.emplace_back(idx);
  out.choices = w.choices;
  out.migration_penalty = w.migration_penalty;
  out.costs.reconnect_factor = w.reconnect_factor;
  out.costs.migrate_factor = w.migrate_factor;

  const net::Network& net = lp.net;
  auto node_of = [&](const std::string& name, NodeId& id) {
    id = net.find_node(name);
    if (!id.valid()) {
      error = "repair damage names unknown node \"" + name + "\"";
      return false;
    }
    return true;
  };
  auto link_of = [&](const std::string& a, const std::string& b, LinkId& id) {
    NodeId na, nb;
    if (!node_of(a, na) || !node_of(b, nb)) return false;
    id = net.find_link(na, nb);
    if (!id.valid()) {
      error = "repair damage names no link between \"" + a + "\" and \"" + b + "\"";
      return false;
    }
    return true;
  };

  for (const std::string& name : w.damage.failed_nodes) {
    NodeId id;
    if (!node_of(name, id)) return false;
    out.damage.failed_nodes.push_back(id);
  }
  for (const auto& [a, b] : w.damage.failed_links) {
    LinkId id;
    if (!link_of(a, b, id)) return false;
    out.damage.failed_links.push_back(id);
  }
  for (const WireDamage::DegradedNode& dn : w.damage.degraded_nodes) {
    NodeId id;
    if (!node_of(dn.node, id)) return false;
    out.damage.degraded_nodes.push_back({id, dn.resource, dn.capacity});
  }
  for (const WireDamage::DegradedLink& dl : w.damage.degraded_links) {
    LinkId id;
    if (!link_of(dl.a, dl.b, id)) return false;
    out.damage.degraded_links.push_back({id, dl.resource, dl.capacity});
  }
  return true;
}

std::string render_response_line(const PlanResponse& r) {
  return response_to_json(r) + "\n";
}

}  // namespace sekitei::service::wire

namespace sekitei::service {

// Declared in request.hpp; lives here with the rest of the wire rendering
// (wire_test.cpp pins this record byte-for-byte).
std::string response_to_json(const PlanResponse& r) {
  std::string out = "{\"request\":";
  json::append_escaped(out, r.id);
  out += ",\"outcome\":";
  json::append_escaped(out, outcome_name(r.outcome));
  out += ",\"ladder\":";
  json::append_escaped(out, ladder_step_name(r.ladder));
  out += ",\"cache_hit\":";
  out += r.cache_hit ? "true" : "false";
  char hexbuf[24];
  std::snprintf(hexbuf, sizeof hexbuf, "%016" PRIx64, r.fingerprint);
  out += ",\"fingerprint\":\"";
  out += hexbuf;
  out += "\"";
  if (r.plan) {
    out += ",\"plan_actions\":";
    json::append_number(out, static_cast<std::uint64_t>(r.plan->size()));
    out += ",\"cost_lb\":";
    json::append_number(out, r.plan->cost_lb);
  }
  // Rendered only when non-zero / when the stage ran: existing plain-record
  // consumers (and the byte-pinned wire goldens) see unchanged lines.
  if (r.symmetry_classes > 0) {
    out += ",\"symmetry_classes\":";
    json::append_number(out, static_cast<std::uint64_t>(r.symmetry_classes));
  }
  if (r.repair_preflight_ran) {
    out += ",\"repair_preflight_rejected\":";
    out += r.repair_preflight_rejected ? "true" : "false";
    out += ",\"repair_preflight_ms\":";
    json::append_number(out, r.repair_preflight_ms);
  }
  if (r.repair_requested) {
    out += ",\"repaired\":";
    out += r.repaired ? "true" : "false";
    out += ",\"migrations\":";
    json::append_number(out, static_cast<std::uint64_t>(r.migrations));
    out += ",\"reconnects\":";
    json::append_number(out, static_cast<std::uint64_t>(r.reconnects));
    out += ",\"disruption\":";
    json::append_number(out, static_cast<std::uint64_t>(r.disruption));
    out += ",\"repair_cost\":";
    json::append_number(out, r.repair_cost);
  }
  if (!r.plan_steps.empty() || !r.choices.empty()) {
    out += ",\"plan_steps\":[";
    for (std::size_t i = 0; i < r.plan_steps.size(); ++i) {
      if (i > 0) out.push_back(',');
      json::append_number(out, static_cast<std::uint64_t>(r.plan_steps[i]));
    }
    out += "],\"choices\":[";
    for (std::size_t i = 0; i < r.choices.size(); ++i) {
      if (i > 0) out.push_back(',');
      json::append_number(out, r.choices[i]);
    }
    out += "]";
  }
  out += ",\"wait_ms\":";
  json::append_number(out, r.wait_ms);
  out += ",\"compile_ms\":";
  json::append_number(out, r.compile_ms);
  if (r.preflight_ran) {
    out += ",\"preflight_ms\":";
    json::append_number(out, r.preflight_ms);
    out += ",\"preflight_rejected\":";
    out += r.preflight_rejected ? "true" : "false";
    out += ",\"preflight_sweeps\":";
    json::append_number(out, static_cast<std::uint64_t>(r.preflight_sweeps));
  }
  out += ",\"solve_ms\":";
  json::append_number(out, r.solve_ms);
  if (r.fallback_ms > 0.0) {
    out += ",\"fallback_ms\":";
    json::append_number(out, r.fallback_ms);
  }
  if (r.attempts > 1) {
    out += ",\"attempts\":";
    json::append_number(out, static_cast<std::uint64_t>(r.attempts));
  }
  if (!r.failure.empty()) {
    out += ",\"failure\":";
    json::append_escaped(out, r.failure);
  }
  out += ",\"stats\":";
  out += core::stats_to_json(r.stats);
  out.push_back('}');
  return out;
}

}  // namespace sekitei::service

namespace sekitei::service::wire {

std::string render_response_frame(const PlanResponse& r) {
  return encode_frame(response_to_json(r));
}

PlanResponse make_rejected(std::string id, std::string failure) {
  PlanResponse r;
  r.id = std::move(id);
  r.outcome = Outcome::Rejected;
  r.failure = std::move(failure);
  return r;
}

}  // namespace sekitei::service::wire
