#include "service/compiled_cache.hpp"

#include "support/fault.hpp"
#include "support/metrics.hpp"

namespace sekitei::service {

CompiledProblemCache::CompiledProblemCache(std::size_t capacity, std::size_t shards) {
  if (shards == 0) shards = 1;
  if (capacity == 0) {
    // Disabled: keep one shard purely for the hit/miss counters.
    enabled_ = false;
    per_shard_cap_ = 0;
    shards_ = std::vector<Shard>(1);
    return;
  }
  if (shards > capacity) shards = capacity;  // at least one slot per shard
  per_shard_cap_ = capacity / shards;
  if (per_shard_cap_ == 0) per_shard_cap_ = 1;
  shards_ = std::vector<Shard>(shards);
}

std::shared_ptr<const CompiledEntry> CompiledProblemCache::lookup_locked(Shard& shard,
                                                                         std::uint64_t key) {
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // refresh MRU
  return it->second->second;
}

void CompiledProblemCache::insert_locked(Shard& shard, std::uint64_t key,
                                         std::shared_ptr<const CompiledEntry> entry) {
  if (auto it = shard.index.find(key); it != shard.index.end()) {
    it->second->second = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  while (shard.lru.size() >= per_shard_cap_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
    SEKITEI_METRIC_INC("service.cache.eviction");
  }
  shard.lru.emplace_front(key, std::move(entry));
  shard.index.emplace(key, shard.lru.begin());
}

std::pair<std::shared_ptr<const CompiledEntry>, bool> CompiledProblemCache::get_or_compile(
    std::uint64_t key, const Factory& make) {
  Shard& shard = shard_of(key);
  if (enabled_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (auto found = lookup_locked(shard, key)) {
      ++shard.hits;
      SEKITEI_METRIC_INC("service.cache.hit");
      return {std::move(found), true};
    }
    ++shard.misses;
    SEKITEI_METRIC_INC("service.cache.miss");
  } else {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.misses;
    SEKITEI_METRIC_INC("service.cache.miss");
  }

  // Compile outside the lock; a concurrent compiler of the same key may beat
  // us to the insert, in which case its entry wins and ours is dropped.
  std::shared_ptr<const CompiledEntry> made = make();
  if (enabled_) {
    // Fail mode skips the insert (the caller keeps its freshly compiled
    // entry, the cache just "loses" it); Throw mode propagates to the
    // caller's error path.  Evaluated outside the shard lock.
    if (SEKITEI_FAULT_POINT("cache.insert")) return {std::move(made), false};
    std::lock_guard<std::mutex> lock(shard.mu);
    if (auto raced = lookup_locked(shard, key)) return {std::move(raced), false};
    insert_locked(shard, key, made);
  }
  return {std::move(made), false};
}

std::shared_ptr<const CompiledEntry> CompiledProblemCache::find(std::uint64_t key) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto found = enabled_ ? lookup_locked(shard, key) : nullptr;
  if (found) {
    ++shard.hits;
    SEKITEI_METRIC_INC("service.cache.hit");
  } else {
    ++shard.misses;
    SEKITEI_METRIC_INC("service.cache.miss");
  }
  return found;
}

void CompiledProblemCache::insert(std::uint64_t key, std::shared_ptr<const CompiledEntry> entry) {
  if (!enabled_) return;
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  insert_locked(shard, key, std::move(entry));
}

CompiledProblemCache::Stats CompiledProblemCache::stats() const {
  Stats out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.entries += shard.lru.size();
  }
  return out;
}

void CompiledProblemCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

}  // namespace sekitei::service
