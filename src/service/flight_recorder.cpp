#include "service/flight_recorder.hpp"

#include "support/json.hpp"

namespace sekitei::service {

void FlightRecorder::record(const core::PlannerStats& stats) {
  Sample s;
  s.t_ms = watch_.elapsed_ms();
  s.expansions = stats.rg_expansions;
  s.open = stats.rg_open_left;
  s.nodes = stats.rg_nodes;
  s.incumbents = stats.rg_incumbents;
  s.incumbent_cost = stats.incumbent_cost;
  s.frontier_f = stats.open_cost_lb;
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(s);
    return;
  }
  ring_[next_] = s;
  next_ = (next_ + 1) % capacity_;
}

std::vector<FlightRecorder::Sample> FlightRecorder::samples() const {
  std::vector<Sample> out;
  out.reserve(ring_.size());
  // Once wrapped, `next_` points at the oldest retained sample.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::string FlightRecorder::to_ndjson(std::string_view request_id,
                                      std::string_view outcome) const {
  std::string out = "{\"flight\":";
  json::append_escaped(out, request_id);
  out += ",\"outcome\":";
  json::append_escaped(out, outcome);
  out += ",\"samples\":";
  json::append_number(out, static_cast<std::uint64_t>(ring_.size()));
  out += ",\"recorded\":";
  json::append_number(out, recorded_);
  out += ",\"capacity\":";
  json::append_number(out, static_cast<std::uint64_t>(capacity_));
  out += "}\n";
  for (const Sample& s : samples()) {
    out += "{\"t_ms\":";
    json::append_number(out, s.t_ms);
    out += ",\"expansions\":";
    json::append_number(out, s.expansions);
    out += ",\"open\":";
    json::append_number(out, s.open);
    out += ",\"nodes\":";
    json::append_number(out, s.nodes);
    out += ",\"incumbents\":";
    json::append_number(out, s.incumbents);
    out += ",\"incumbent_cost\":";
    json::append_number(out, s.incumbent_cost);
    out += ",\"frontier_f\":";
    json::append_number(out, s.frontier_f);
    out += "}\n";
  }
  return out;
}

}  // namespace sekitei::service
