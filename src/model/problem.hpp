// A Component Placement Problem instance (Section 2.1): network + component
// specifications + initial deployment + goal.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "spec/spec.hpp"
#include "support/interval.hpp"

namespace sekitei::model {

/// A stream available in the initial state (e.g. the Server's M stream:
/// "the server is capable of producing up to 200 units" => value [0, 200] —
/// the planner *chooses* how much of it to use; that choice is the essence of
/// Scenario 1).
struct InitialStream {
  std::string iface;   // interface name
  std::string prop;    // which property `value` constrains (e.g. "ibw")
  NodeId node;
  Interval value;      // production choice interval; a point for fixed streams
};

struct CppProblem {
  const net::Network* network = nullptr;
  const spec::DomainSpec* domain = nullptr;

  std::vector<InitialStream> initial_streams;

  /// Components already deployed (their placed() props hold initially).
  std::vector<std::pair<std::string, NodeId>> preplaced;

  /// Placement restrictions: component name -> allowed nodes.  A present but
  /// empty list means the component can never be (re)placed — e.g. the
  /// Server, which only exists pre-placed.  Absent = placeable anywhere.
  std::map<std::string, std::vector<NodeId>> placement_rule;

  /// Goal: placed(goal_component, goal_node) — e.g. the Client on its fixed
  /// node ("locations of both the server and the clients are given").
  std::string goal_component;
  NodeId goal_node;

  /// Additional goals beyond the primary one: the paper's plural "clients".
  /// Every pair must end up placed; the planner naturally shares upstream
  /// components and streams between them (multicast deployment).
  std::vector<std::pair<std::string, NodeId>> extra_goals;

  [[nodiscard]] bool placeable_at(const std::string& comp, NodeId n) const {
    auto it = placement_rule.find(comp);
    if (it == placement_rule.end()) return true;
    for (NodeId allowed : it->second) {
      if (allowed == n) return true;
    }
    return false;
  }
};

}  // namespace sekitei::model
