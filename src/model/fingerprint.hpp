// Content fingerprints for CPP instances: a 64-bit FNV-1a hash over a
// canonical serialization of (network, domain spec, problem layout, level
// scenario).  Two independently parsed instances with identical content hash
// identically, which is what lets the planning service (src/service) key its
// compiled-problem cache by fingerprint and share one immutable
// CompiledProblem across requests that describe the same deployment world.
//
// The hash covers everything compile() reads — formulae are folded in via
// their canonical AST rendering (expr::Node::str()), level sets via their
// cutpoint lists — so equal fingerprints imply equal compiled problems.
// Collisions are possible in principle (64-bit hash); the cache trades that
// astronomically small risk for not retaining full problem copies as keys.
#pragma once

#include <cstdint>
#include <string_view>

#include "model/problem.hpp"

namespace sekitei::model {

/// Incremental FNV-1a (64-bit).  Values are framed with tag bytes by the
/// callers so adjacent fields of different types cannot alias.
class Fingerprint {
 public:
  void mix(std::string_view s) {
    for (unsigned char c : s) step(c);
    step(0xff);  // terminator: "ab"+"c" != "a"+"bc"
  }
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) step(static_cast<unsigned char>(v >> (8 * i)));
  }
  void mix(double v);
  void mix(bool v) { step(v ? 1 : 2); }
  /// A one-byte structural tag separating record kinds.
  void tag(unsigned char t) { step(t); }

  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  void step(unsigned char c) {
    h_ ^= c;
    h_ *= 1099511628211ull;
  }
  std::uint64_t h_ = 14695981039346656037ull;
};

[[nodiscard]] std::uint64_t fingerprint(const net::Network& net);
[[nodiscard]] std::uint64_t fingerprint(const spec::DomainSpec& domain);
[[nodiscard]] std::uint64_t fingerprint(const spec::LevelScenario& scenario);

/// The full compiled-problem cache key: network + domain + problem layout
/// (streams, preplacements, placement rules, goals) + scenario.
[[nodiscard]] std::uint64_t fingerprint(const CppProblem& problem,
                                        const spec::LevelScenario& scenario);

}  // namespace sekitei::model
