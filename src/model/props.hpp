// Logical propositions.
//
// Two kinds (Section 2.2): `placed(Component, node)` and, folded together
// with its level parameter, `avail(Interface, node, level)` — "the interface
// is available at the node with its leveled property in level interval k".
// Both kinds are *important* propositions in the paper's sense: they can be
// achieved by actions and drive branching.  Levels of node/link resources
// are never materialized as propositions; they appear only as parameters of
// leveled actions and entries in optimistic resource maps (the paper's
// "unimportant" level propositions, which are "only checked").
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "support/ids.hpp"

namespace sekitei::model {

enum class PropKind : unsigned char { Placed, Avail };

struct PropKey {
  PropKind kind = PropKind::Placed;
  std::uint32_t entity = 0;  // component index | interface index
  std::uint32_t node = 0;
  std::uint32_t level = 0;   // always 0 for Placed

  friend bool operator==(const PropKey& x, const PropKey& y) {
    return x.kind == y.kind && x.entity == y.entity && x.node == y.node && x.level == y.level;
  }
};

struct PropKeyHash {
  std::size_t operator()(const PropKey& k) const noexcept {
    std::size_t h = static_cast<std::size_t>(k.kind);
    h = h * 1099511628211ULL ^ k.entity;
    h = h * 1099511628211ULL ^ k.node;
    h = h * 1099511628211ULL ^ k.level;
    return h;
  }
};

class PropRegistry {
 public:
  PropId placed(ComponentId comp, NodeId node) {
    return intern({PropKind::Placed, comp.index(), node.index(), 0});
  }
  PropId avail(InterfaceId iface, NodeId node, std::uint32_t level) {
    return intern({PropKind::Avail, iface.index(), node.index(), level});
  }

  /// Lookup without creation; invalid id when the proposition was never made.
  [[nodiscard]] PropId find_avail(InterfaceId iface, NodeId node, std::uint32_t level) const {
    auto it = index_.find({PropKind::Avail, iface.index(), node.index(), level});
    return it == index_.end() ? PropId{} : it->second;
  }
  [[nodiscard]] PropId find_placed(ComponentId comp, NodeId node) const {
    auto it = index_.find({PropKind::Placed, comp.index(), node.index(), 0});
    return it == index_.end() ? PropId{} : it->second;
  }

  [[nodiscard]] const PropKey& key(PropId id) const { return keys_[id.index()]; }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }

 private:
  PropId intern(const PropKey& k) {
    auto it = index_.find(k);
    if (it != index_.end()) return it->second;
    PropId id(static_cast<std::uint32_t>(keys_.size()));
    keys_.push_back(k);
    index_.emplace(k, id);
    return id;
  }

  std::vector<PropKey> keys_;
  std::unordered_map<PropKey, PropId, PropKeyHash> index_;
};

}  // namespace sekitei::model
