#include "model/vars.hpp"

#include <sstream>

namespace sekitei::model {

std::string VarRegistry::describe(VarId id, const net::Network& net, const Interner& names,
                                  const std::vector<std::string>& iface_names) const {
  const VarKey& k = key(id);
  std::ostringstream os;
  switch (k.kind) {
    case VarKind::NodeRes:
      os << names.str(NameId(k.b)) << '(' << net.node(NodeId(k.a)).name << ')';
      break;
    case VarKind::LinkRes: {
      const net::Link& l = net.link(LinkId(k.a));
      os << names.str(NameId(k.b)) << '(' << net.node(l.a).name << '-' << net.node(l.b).name
         << ')';
      break;
    }
    case VarKind::IfaceProp:
      os << names.str(NameId(k.c)) << '(' << iface_names[k.a] << '@'
         << net.node(NodeId(k.b)).name << ')';
      break;
  }
  return os.str();
}

}  // namespace sekitei::model
