#include "model/textio.hpp"

#include <cmath>
#include <sstream>

#include "expr/lexer.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace sekitei::model {

namespace {

using expr::Lexer;
using expr::Tok;

double parse_number(Lexer& lex) {
  const double sign = lex.accept(Tok::Minus) ? -1.0 : 1.0;
  const double v = sign * lex.expect(Tok::Number).number;
  // Overflowed literals (1e999 -> inf) would silently poison every interval
  // computation downstream; reject them at the door.
  if (!std::isfinite(v)) {
    raise("textio: non-finite number literal (line " + std::to_string(lex.line()) + ")");
  }
  return v;
}

std::map<std::string, double> parse_resource_block(Lexer& lex) {
  std::map<std::string, double> res;
  lex.expect(Tok::LBrace);
  while (!lex.accept(Tok::RBrace)) {
    const std::string name = lex.expect(Tok::Ident).text;
    res[name] = parse_number(lex);
    lex.expect(Tok::Semi);
  }
  return res;
}

void parse_network(Lexer& lex, net::Network& net) {
  lex.expect(Tok::LBrace);
  while (!lex.accept(Tok::RBrace)) {
    if (lex.accept_keyword("node")) {
      const std::string name = lex.expect(Tok::Ident).text;
      if (net.find_node(name).valid()) raise("textio: duplicate node '" + name + "'");
      net.add_node(name, lex.peek().kind == Tok::LBrace ? parse_resource_block(lex)
                                                        : std::map<std::string, double>{});
      lex.accept(Tok::Semi);
    } else if (lex.accept_keyword("link")) {
      const std::string an = lex.expect(Tok::Ident).text;
      const std::string bn = lex.expect(Tok::Ident).text;
      const NodeId a = net.find_node(an);
      const NodeId b = net.find_node(bn);
      if (!a.valid()) raise("textio: link references unknown node '" + an + "'");
      if (!b.valid()) raise("textio: link references unknown node '" + bn + "'");
      net::LinkClass cls = net::LinkClass::Other;
      if (lex.accept_keyword("lan")) {
        cls = net::LinkClass::Lan;
      } else if (lex.accept_keyword("wan")) {
        cls = net::LinkClass::Wan;
      } else {
        lex.accept_keyword("other");
      }
      net.add_link(a, b, cls, lex.peek().kind == Tok::LBrace ? parse_resource_block(lex)
                                                             : std::map<std::string, double>{});
      lex.accept(Tok::Semi);
    } else {
      raise("textio: expected 'node' or 'link' in network block (line " +
            std::to_string(lex.line()) + ")");
    }
  }
}

NodeId expect_node(Lexer& lex, const net::Network& net) {
  const std::string name = lex.expect(Tok::Ident).text;
  const NodeId n = net.find_node(name);
  if (!n.valid()) raise("textio: unknown node '" + name + "'");
  return n;
}

void parse_problem(Lexer& lex, LoadedProblem& lp) {
  if (lp.net.node_count() == 0) {
    raise("textio: the problem block requires a network block first");
  }
  lex.expect(Tok::LBrace);
  while (!lex.accept(Tok::RBrace)) {
    if (lex.accept_keyword("stream")) {
      InitialStream is;
      is.iface = lex.expect(Tok::Ident).text;
      lex.expect(Tok::Dot);
      is.prop = lex.expect(Tok::Ident).text;
      lex.expect_keyword("at");
      is.node = expect_node(lex, lp.net);
      lex.expect(Tok::Eq);
      if (lex.accept(Tok::LBracket)) {
        const double lo = parse_number(lex);
        lex.expect(Tok::Comma);
        const double hi = parse_number(lex);
        lex.expect(Tok::RBracket);
        is.value = Interval{lo, hi};
      } else {
        is.value = Interval::point(parse_number(lex));
      }
      lex.expect(Tok::Semi);
      if (lp.domain.find_interface(is.iface) == nullptr) {
        raise("textio: stream references unknown interface '" + is.iface + "'");
      }
      lp.problem.initial_streams.push_back(std::move(is));
    } else if (lex.accept_keyword("preplaced")) {
      const std::string comp = lex.expect(Tok::Ident).text;
      lex.expect_keyword("at");
      const NodeId n = expect_node(lex, lp.net);
      lex.expect(Tok::Semi);
      if (lp.domain.find_component(comp) == nullptr) {
        raise("textio: preplaced references unknown component '" + comp + "'");
      }
      lp.problem.preplaced.emplace_back(comp, n);
    } else if (lex.accept_keyword("restrict")) {
      const std::string comp = lex.expect(Tok::Ident).text;
      lex.expect_keyword("to");
      std::vector<NodeId>& nodes = lp.problem.placement_rule[comp];
      do {
        nodes.push_back(expect_node(lex, lp.net));
      } while (lex.accept(Tok::Comma));
      lex.expect(Tok::Semi);
    } else if (lex.accept_keyword("forbid")) {
      const std::string comp = lex.expect(Tok::Ident).text;
      lex.expect(Tok::Semi);
      lp.problem.placement_rule[comp] = {};
    } else if (lex.accept_keyword("goal")) {
      lp.problem.goal_component = lex.expect(Tok::Ident).text;
      lex.expect_keyword("at");
      lp.problem.goal_node = expect_node(lex, lp.net);
      lex.expect(Tok::Semi);
      if (lp.domain.find_component(lp.problem.goal_component) == nullptr) {
        raise("textio: goal references unknown component '" + lp.problem.goal_component + "'");
      }
    } else {
      raise("textio: expected stream/preplaced/restrict/forbid/goal (line " +
            std::to_string(lex.line()) + ")");
    }
  }
}

void parse_scenario(Lexer& lex, LoadedProblem& lp) {
  lex.expect(Tok::LBrace);
  while (!lex.accept(Tok::RBrace)) {
    lex.expect_keyword("levels");
    if (lex.accept_keyword("link")) {
      const std::string res = lex.expect(Tok::Ident).text;
      lex.expect(Tok::LBrace);
      std::vector<double> cuts;
      do {
        cuts.push_back(parse_number(lex));
      } while (lex.accept(Tok::Comma));
      lex.expect(Tok::RBrace);
      lp.scenario.link_levels[res] = spec::LevelSet(std::move(cuts));
    } else if (lex.accept_keyword("node")) {
      const std::string res = lex.expect(Tok::Ident).text;
      lex.expect(Tok::LBrace);
      std::vector<double> cuts;
      do {
        cuts.push_back(parse_number(lex));
      } while (lex.accept(Tok::Comma));
      lex.expect(Tok::RBrace);
      lp.scenario.node_levels[res] = spec::LevelSet(std::move(cuts));
    } else {
      const std::string iface = lex.expect(Tok::Ident).text;
      lex.expect(Tok::Dot);
      const std::string prop = lex.expect(Tok::Ident).text;
      lex.expect(Tok::LBrace);
      std::vector<double> cuts;
      do {
        cuts.push_back(parse_number(lex));
      } while (lex.accept(Tok::Comma));
      lex.expect(Tok::RBrace);
      if (lp.domain.find_interface(iface) == nullptr) {
        raise("textio: levels reference unknown interface '" + iface + "'");
      }
      lp.scenario.iface_levels[{iface, prop}] = spec::LevelSet(std::move(cuts));
    }
  }
}

}  // namespace

std::unique_ptr<LoadedProblem> load_problem(const std::string& domain_text,
                                            const std::string& problem_text,
                                            const expr::ParamTable& params) {
  // A loader can only fail by raising, so Fail mode raises too (a torn read
  // and a malformed file are indistinguishable to callers).
  if (SEKITEI_FAULT_POINT("loader.read")) {
    raise("textio: injected fault at loader.read");
  }
  auto lp = std::make_unique<LoadedProblem>();
  lp->domain = spec::parse_domain(domain_text, params);
  lp->scenario.name = "file";

  Lexer lex(problem_text);
  while (!lex.at_end()) {
    if (lex.accept_keyword("network")) {
      parse_network(lex, lp->net);
    } else if (lex.accept_keyword("problem")) {
      parse_problem(lex, *lp);
    } else if (lex.accept_keyword("scenario")) {
      parse_scenario(lex, *lp);
    } else {
      raise("textio: expected 'network', 'problem' or 'scenario' (line " +
            std::to_string(lex.line()) + ")");
    }
  }
  if (lp->problem.goal_component.empty()) raise("textio: the problem block must set a goal");
  lp->problem.network = &lp->net;
  lp->problem.domain = &lp->domain;
  return lp;
}

std::string network_to_text(const net::Network& net) {
  std::ostringstream os;
  os << "network {\n";
  for (NodeId n : net.node_ids()) {
    const net::Node& node = net.node(n);
    os << "  node " << node.name << " {";
    for (const auto& [k, v] : node.resources) os << ' ' << k << ' ' << v << ';';
    os << " }\n";
  }
  for (LinkId l : net.link_ids()) {
    const net::Link& link = net.link(l);
    os << "  link " << net.node(link.a).name << ' ' << net.node(link.b).name << ' ';
    switch (link.cls) {
      case net::LinkClass::Lan: os << "lan"; break;
      case net::LinkClass::Wan: os << "wan"; break;
      case net::LinkClass::Other: os << "other"; break;
    }
    os << " {";
    for (const auto& [k, v] : link.resources) os << ' ' << k << ' ' << v << ';';
    os << " }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace sekitei::model
