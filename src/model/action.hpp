// Ground, leveled planning actions (Section 3.1, "Leveled actions").
//
// The CPP compiles into two families of actions:
//   placeX(?node)                -> one ground action per (component, node,
//                                   input-level combo, output-level combo,
//                                   node-resource-level combo)
//   cross(?iface ?from ?to)      -> one per (interface, directed link,
//                                   in-level, out-level, link-level combo)
//
// Each ground action carries
//   * logical preconditions / effects (PropIds),
//   * its slice of the *optimistic resource map*: one interval per slot of
//     the compiled formulae, already intersected with the chosen levels and
//     static capacities, and
//   * a cost interval evaluated over that map; the lower bound drives the
//     A* phases ("our algorithm optimizes the minimum cost of the plan",
//     Section 4).
#pragma once

#include <string>
#include <vector>

#include "expr/program.hpp"
#include "spec/levels.hpp"
#include "support/ids.hpp"
#include "support/interval.hpp"

namespace sekitei::model {

enum class ActionKind : unsigned char { Place, Cross };

/// What a formula slot refers to; determines how the replay merges the
/// slot's optimistic interval into the running resource map.
enum class SlotRole : unsigned char {
  Input,     // a consumed stream property (degradable/upgradable rules apply)
  Output,    // a produced stream property (level asserted by the eff prop)
  Resource,  // a node or link resource (plain intersection)
};

/// Compiled, shareable semantics of an action template: the formulae of one
/// component or one interface-cross, with role variables lowered to slots.
struct CompiledSemantics {
  std::vector<expr::CompiledCondition> conditions;
  std::vector<expr::CompiledEffect> effects;
  expr::Program cost;      // empty instruction list => unit cost
  bool has_cost = false;
  std::uint32_t slot_count = 0;
  std::vector<SlotRole> roles;             // per slot
  std::vector<spec::LevelTag> tags;        // per slot (None for resources)
};

struct GroundAction {
  ActionKind kind = ActionKind::Place;
  std::uint32_t spec_index = 0;  // component index (Place) / interface index (Cross)
  NodeId node;                   // placement node / cross source
  NodeId node2;                  // cross destination
  LinkId link;                   // cross link

  std::vector<PropId> pre;  // sorted unique
  std::vector<PropId> eff;  // sorted unique

  const CompiledSemantics* sem = nullptr;
  std::vector<VarId> slot_vars;       // slot -> located variable
  std::vector<Interval> slot_opt;     // slot -> optimistic interval

  double cost_lb = 1.0;
  double cost_ub = 1.0;

  std::vector<std::uint32_t> in_levels;   // chosen input levels (reporting)
  std::vector<std::uint32_t> out_levels;  // chosen output levels (reporting)
};

}  // namespace sekitei::model
