// Located real-valued variables.
//
// A specification formula talks about *roles* (`T.ibw`, `node.cpu`,
// `link.lbw`); a ground action talks about *located variables*: the ibw of
// the T stream at node 4, the cpu of node 0, the lbw of link 2.  VarRegistry
// interns (kind, entity, resource-name) triples into dense VarIds so that
// optimistic resource maps are flat arrays indexed by VarId.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "support/ids.hpp"
#include "support/interner.hpp"

namespace sekitei::model {

enum class VarKind : unsigned char { NodeRes, LinkRes, IfaceProp };

struct VarKey {
  VarKind kind = VarKind::NodeRes;
  std::uint32_t a = 0;  // node index | link index | interface index
  std::uint32_t b = 0;  // resource NameId | resource NameId | node index
  std::uint32_t c = 0;  // unused      | unused           | property NameId

  friend bool operator==(const VarKey& x, const VarKey& y) {
    return x.kind == y.kind && x.a == y.a && x.b == y.b && x.c == y.c;
  }
};

struct VarKeyHash {
  std::size_t operator()(const VarKey& k) const noexcept {
    std::size_t h = static_cast<std::size_t>(k.kind);
    h = h * 1099511628211ULL ^ k.a;
    h = h * 1099511628211ULL ^ k.b;
    h = h * 1099511628211ULL ^ k.c;
    return h;
  }
};

class VarRegistry {
 public:
  VarId node_res(NodeId node, NameId res) {
    return intern({VarKind::NodeRes, node.index(), res.index(), 0});
  }
  VarId link_res(LinkId link, NameId res) {
    return intern({VarKind::LinkRes, link.index(), res.index(), 0});
  }
  VarId iface_prop(InterfaceId iface, NodeId node, NameId prop) {
    return intern({VarKind::IfaceProp, iface.index(), node.index(), prop.index()});
  }

  [[nodiscard]] const VarKey& key(VarId id) const {
    SEKITEI_ASSERT(id.index() < keys_.size());
    return keys_[id.index()];
  }

  [[nodiscard]] std::size_t size() const { return keys_.size(); }

  /// Human-readable description, e.g. "ibw(M@n3)" or "cpu(n0)" or "lbw(n0-n1)".
  [[nodiscard]] std::string describe(VarId id, const net::Network& net,
                                     const Interner& names,
                                     const std::vector<std::string>& iface_names) const;

 private:
  VarId intern(const VarKey& k) {
    auto it = index_.find(k);
    if (it != index_.end()) return it->second;
    VarId id(static_cast<std::uint32_t>(keys_.size()));
    keys_.push_back(k);
    index_.emplace(k, id);
    return id;
  }

  std::vector<VarKey> keys_;
  std::unordered_map<VarKey, VarId, VarKeyHash> index_;
};

}  // namespace sekitei::model
