#include "model/fingerprint.hpp"

#include <bit>

#include "net/network.hpp"
#include "spec/spec.hpp"

namespace sekitei::model {

namespace {

// Structural tags framing the serialization (values are arbitrary but fixed).
enum : unsigned char {
  kTagNode = 0x01,
  kTagLink = 0x02,
  kTagResource = 0x03,
  kTagInterface = 0x10,
  kTagProperty = 0x11,
  kTagCondition = 0x12,
  kTagEffect = 0x13,
  kTagCost = 0x14,
  kTagLevels = 0x15,
  kTagComponent = 0x16,
  kTagStream = 0x20,
  kTagPreplaced = 0x21,
  kTagRule = 0x22,
  kTagGoal = 0x23,
  kTagScenario = 0x30,
};

void mix_resources(Fingerprint& fp, const std::map<std::string, double>& resources) {
  // std::map iterates in key order, so the rendering is already canonical.
  for (const auto& [name, value] : resources) {
    fp.tag(kTagResource);
    fp.mix(name);
    fp.mix(value);
  }
}

void mix_levels(Fingerprint& fp, const spec::LevelSet& levels) {
  fp.mix(static_cast<std::uint64_t>(levels.cutpoints().size()));
  for (double c : levels.cutpoints()) fp.mix(c);
}

void mix_interval(Fingerprint& fp, const Interval& v) {
  fp.mix(v.lo);
  fp.mix(v.hi);
  fp.mix(v.hi_open);
}

void mix_network(Fingerprint& fp, const net::Network& net) {
  fp.mix(static_cast<std::uint64_t>(net.node_count()));
  for (NodeId n : net.node_ids()) {
    fp.tag(kTagNode);
    fp.mix(net.node(n).name);
    mix_resources(fp, net.node(n).resources);
  }
  fp.mix(static_cast<std::uint64_t>(net.link_count()));
  for (LinkId l : net.link_ids()) {
    const net::Link& link = net.link(l);
    fp.tag(kTagLink);
    fp.mix(static_cast<std::uint64_t>(link.a.index()));
    fp.mix(static_cast<std::uint64_t>(link.b.index()));
    fp.tag(static_cast<unsigned char>(link.cls));
    mix_resources(fp, link.resources);
  }
}

void mix_domain(Fingerprint& fp, const spec::DomainSpec& domain) {
  fp.mix(static_cast<std::uint64_t>(domain.interface_count()));
  for (std::size_t i = 0; i < domain.interface_count(); ++i) {
    const spec::InterfaceSpec& iface = domain.interface_at(i);
    fp.tag(kTagInterface);
    fp.mix(iface.name);
    for (const spec::PropertySpec& p : iface.properties) {
      fp.tag(kTagProperty);
      fp.mix(p.name);
      fp.tag(static_cast<unsigned char>(p.tag));
      fp.mix(p.initial);
    }
    for (const expr::ConditionAst& c : iface.cross_conditions) {
      fp.tag(kTagCondition);
      fp.mix(c.str());
    }
    for (const expr::EffectAst& e : iface.cross_effects) {
      fp.tag(kTagEffect);
      fp.mix(e.str());
    }
    fp.tag(kTagCost);
    fp.mix(iface.cross_cost ? iface.cross_cost->str() : "1");
    for (const auto& [prop, levels] : iface.levels) {
      fp.tag(kTagLevels);
      fp.mix(prop);
      mix_levels(fp, levels);
    }
  }
  fp.mix(static_cast<std::uint64_t>(domain.component_count()));
  for (std::size_t i = 0; i < domain.component_count(); ++i) {
    const spec::ComponentSpec& comp = domain.component_at(i);
    fp.tag(kTagComponent);
    fp.mix(comp.name);
    for (const std::string& in : comp.inputs) fp.mix(in);
    fp.tag(kTagComponent);
    for (const std::string& out : comp.outputs) fp.mix(out);
    for (const expr::ConditionAst& c : comp.conditions) {
      fp.tag(kTagCondition);
      fp.mix(c.str());
    }
    for (const expr::EffectAst& e : comp.effects) {
      fp.tag(kTagEffect);
      fp.mix(e.str());
    }
    fp.tag(kTagCost);
    fp.mix(comp.cost ? comp.cost->str() : "1");
  }
}

void mix_scenario(Fingerprint& fp, const spec::LevelScenario& scenario) {
  fp.tag(kTagScenario);
  fp.mix(scenario.name);
  fp.mix(static_cast<std::uint64_t>(scenario.iface_levels.size()));
  for (const auto& [key, levels] : scenario.iface_levels) {
    fp.mix(key.first);
    fp.mix(key.second);
    mix_levels(fp, levels);
  }
  fp.mix(static_cast<std::uint64_t>(scenario.link_levels.size()));
  for (const auto& [res, levels] : scenario.link_levels) {
    fp.mix(res);
    mix_levels(fp, levels);
  }
  fp.mix(static_cast<std::uint64_t>(scenario.node_levels.size()));
  for (const auto& [res, levels] : scenario.node_levels) {
    fp.mix(res);
    mix_levels(fp, levels);
  }
}

void mix_problem(Fingerprint& fp, const CppProblem& problem) {
  fp.mix(static_cast<std::uint64_t>(problem.initial_streams.size()));
  for (const InitialStream& s : problem.initial_streams) {
    fp.tag(kTagStream);
    fp.mix(s.iface);
    fp.mix(s.prop);
    fp.mix(static_cast<std::uint64_t>(s.node.index()));
    mix_interval(fp, s.value);
  }
  fp.mix(static_cast<std::uint64_t>(problem.preplaced.size()));
  for (const auto& [comp, node] : problem.preplaced) {
    fp.tag(kTagPreplaced);
    fp.mix(comp);
    fp.mix(static_cast<std::uint64_t>(node.index()));
  }
  fp.mix(static_cast<std::uint64_t>(problem.placement_rule.size()));
  for (const auto& [comp, nodes] : problem.placement_rule) {
    fp.tag(kTagRule);
    fp.mix(comp);
    fp.mix(static_cast<std::uint64_t>(nodes.size()));
    for (NodeId n : nodes) fp.mix(static_cast<std::uint64_t>(n.index()));
  }
  fp.tag(kTagGoal);
  fp.mix(problem.goal_component);
  fp.mix(static_cast<std::uint64_t>(problem.goal_node.index()));
  fp.mix(static_cast<std::uint64_t>(problem.extra_goals.size()));
  for (const auto& [comp, node] : problem.extra_goals) {
    fp.tag(kTagGoal);
    fp.mix(comp);
    fp.mix(static_cast<std::uint64_t>(node.index()));
  }
}

}  // namespace

void Fingerprint::mix(double v) {
  // Canonicalize -0.0 so it hashes like 0.0 (they compare equal everywhere
  // the planner looks at them).
  if (v == 0.0) v = 0.0;
  mix(std::bit_cast<std::uint64_t>(v));
}

std::uint64_t fingerprint(const net::Network& net) {
  Fingerprint fp;
  mix_network(fp, net);
  return fp.value();
}

std::uint64_t fingerprint(const spec::DomainSpec& domain) {
  Fingerprint fp;
  mix_domain(fp, domain);
  return fp.value();
}

std::uint64_t fingerprint(const spec::LevelScenario& scenario) {
  Fingerprint fp;
  mix_scenario(fp, scenario);
  return fp.value();
}

std::uint64_t fingerprint(const CppProblem& problem, const spec::LevelScenario& scenario) {
  Fingerprint fp;
  if (problem.network != nullptr) mix_network(fp, *problem.network);
  if (problem.domain != nullptr) mix_domain(fp, *problem.domain);
  mix_problem(fp, problem);
  mix_scenario(fp, scenario);
  return fp.value();
}

}  // namespace sekitei::model
