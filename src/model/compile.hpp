// Compilation of a CPP instance into a leveled AI-planning problem
// (Sections 2.2 and 3.1).
//
// compile() grounds every component over every allowed node and every
// interface over every directed link, instantiates the ground actions per
// level combination, prunes combinations whose conditions cannot hold over
// the optimistic intervals (the paper's leveling-time pruning: "Actions for
// crossing the link with the M stream with levels above 1 are pruned during
// the leveling because of limited link bandwidth", Fig. 7), and assembles
// the initial state, goal and achiever indices used by the planner phases.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/action.hpp"
#include "model/problem.hpp"
#include "model/props.hpp"
#include "model/vars.hpp"
#include "spec/levels.hpp"
#include "support/interner.hpp"

namespace sekitei::model {

/// Per-interface leveling info for one compiled problem: which property is
/// leveled (at most one per interface), its level set and tag.
struct IfaceLevelInfo {
  NameId prop;              // invalid when the interface is unleveled
  spec::LevelSet levels;    // trivial when unleveled
  spec::LevelTag tag = spec::LevelTag::None;
};

struct InitMapEntry {
  VarId var;
  Interval value;
};

class CompiledProblem {
 public:
  const CppProblem* problem = nullptr;
  const net::Network* net = nullptr;
  const spec::DomainSpec* domain = nullptr;
  spec::LevelScenario scenario;

  Interner names;                        // property/resource name interner
  std::vector<std::string> iface_names;  // aligned with domain interface order
  std::vector<IfaceLevelInfo> iface_levels;

  VarRegistry vars;
  PropRegistry props;

  std::vector<std::unique_ptr<CompiledSemantics>> semantics;
  std::vector<GroundAction> actions;

  /// achievers[p] = actions whose effects support proposition p, including
  /// cross-level support through degradable/upgradable closure.
  std::vector<std::vector<ActionId>> achievers;

  std::vector<PropId> init_props;  // sorted, closure applied
  std::vector<InitMapEntry> init_map;
  /// Sorted goal set: the primary goal plus every extra goal.
  std::vector<PropId> goal_props;
  /// The primary goal (first of goal_props), kept for single-goal callers.
  PropId goal_prop;

  /// Leveling statistics (Table 2, column 5 reports `actions.size()`).
  std::uint64_t combos_considered = 0;
  std::uint64_t combos_pruned = 0;

  /// Node symmetry partition, filled by analysis::attach_symmetry() (the
  /// compiler itself never computes it — layering keeps core below analysis).
  /// Empty `node_class` means "not attached": search treats every node as a
  /// singleton and behaves exactly as before the partition existed.
  /// When attached: node_class[n] is n's class index, node_class_members[c]
  /// lists the class's node indices in ascending order, and
  /// symmetric_class_count counts classes with >= 2 members.  Membership is
  /// verified (every member is an automorphism image of its representative),
  /// so pruning on it is sound, not just color-refinement-plausible.
  std::vector<std::uint32_t> node_class;
  std::vector<std::vector<std::uint32_t>> node_class_members;
  std::uint32_t symmetric_class_count = 0;

  [[nodiscard]] const std::vector<ActionId>& achievers_of(PropId p) const;
  [[nodiscard]] bool init_holds(PropId p) const;

  /// Human-readable action rendering, e.g.
  /// "place Splitter on n0 [M:L1 -> T:L1,I:L1]" or "cross Z n0->n1 [L1->L1]".
  [[nodiscard]] std::string describe(ActionId a) const;
  [[nodiscard]] std::string describe(PropId p) const;

 private:
  static const std::vector<ActionId> kNoAchievers;
};

/// Grounds and levels `problem` under `scenario`.  Raises on malformed input
/// (unknown names, several leveled properties on one interface).
[[nodiscard]] CompiledProblem compile(const CppProblem& problem,
                                      const spec::LevelScenario& scenario);

}  // namespace sekitei::model
