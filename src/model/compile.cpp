#include "model/compile.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

#include "support/error.hpp"
#include "support/sorted_vec.hpp"

namespace sekitei::model {

const std::vector<ActionId> CompiledProblem::kNoAchievers{};

const std::vector<ActionId>& CompiledProblem::achievers_of(PropId p) const {
  if (!p.valid() || p.index() >= achievers.size()) return kNoAchievers;
  return achievers[p.index()];
}

bool CompiledProblem::init_holds(PropId p) const { return sorted_contains(init_props, p); }

std::string CompiledProblem::describe(PropId p) const {
  const PropKey& k = props.key(p);
  std::ostringstream os;
  if (k.kind == PropKind::Placed) {
    os << "placed(" << domain->component_at(k.entity).name << ", "
       << net->node(NodeId(k.node)).name << ")";
  } else {
    os << "avail(" << iface_names[k.entity] << " @ " << net->node(NodeId(k.node)).name << ", L"
       << k.level << ")";
  }
  return os.str();
}

std::string CompiledProblem::describe(ActionId a) const {
  const GroundAction& act = actions[a.index()];
  std::ostringstream os;
  if (act.kind == ActionKind::Place) {
    os << "place " << domain->component_at(act.spec_index).name << " on "
       << net->node(act.node).name;
    if (!act.in_levels.empty() || !act.out_levels.empty()) {
      os << " [";
      for (std::size_t i = 0; i < act.in_levels.size(); ++i) {
        os << (i ? "," : "") << "L" << act.in_levels[i];
      }
      os << "->";
      for (std::size_t i = 0; i < act.out_levels.size(); ++i) {
        os << (i ? "," : "") << "L" << act.out_levels[i];
      }
      os << "]";
    }
  } else {
    os << "cross " << iface_names[act.spec_index] << " " << net->node(act.node).name << "->"
       << net->node(act.node2).name;
    os << " [L" << (act.in_levels.empty() ? 0 : act.in_levels[0]) << "->L"
       << (act.out_levels.empty() ? 0 : act.out_levels[0]) << "]";
  }
  return os.str();
}

namespace {

using spec::LevelSet;
using spec::LevelTag;

/// Where a formula slot points, before grounding onto a concrete node/link.
struct SlotDesc {
  enum class Kind : unsigned char { InputProp, OutputProp, CrossPre, CrossPost, NodeRes, LinkRes };
  Kind kind = Kind::NodeRes;
  std::uint32_t iface = 0;  // domain interface index, for the prop kinds
  NameId prop;              // property / resource name

  friend bool operator==(const SlotDesc& a, const SlotDesc& b) {
    return a.kind == b.kind && a.iface == b.iface && a.prop == b.prop;
  }
};

struct SemanticsBundle {
  CompiledSemantics* sem = nullptr;
  std::vector<SlotDesc> descs;
};

/// Odometer over mixed-radix digits; visits every combination.
class Odometer {
 public:
  explicit Odometer(std::vector<std::uint32_t> radices) : radices_(std::move(radices)) {
    digits_.assign(radices_.size(), 0);
    done_ = std::any_of(radices_.begin(), radices_.end(),
                        [](std::uint32_t r) { return r == 0; });
  }
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] const std::vector<std::uint32_t>& digits() const { return digits_; }
  void advance() {
    for (std::size_t i = 0; i < digits_.size(); ++i) {
      if (++digits_[i] < radices_[i]) return;
      digits_[i] = 0;
    }
    done_ = true;
  }
  [[nodiscard]] std::uint64_t combinations() const {
    std::uint64_t n = 1;
    for (std::uint32_t r : radices_) n *= r;
    return n;
  }

 private:
  std::vector<std::uint32_t> radices_;
  std::vector<std::uint32_t> digits_;
  bool done_ = false;
};

class Compiler {
 public:
  Compiler(const CppProblem& problem, const spec::LevelScenario& scenario)
      : prob_(problem), scen_(scenario) {
    SEKITEI_ASSERT(problem.network != nullptr && problem.domain != nullptr);
    cp_.problem = &problem;
    cp_.net = problem.network;
    cp_.domain = problem.domain;
    cp_.scenario = scenario;
  }

  CompiledProblem run() {
    index_interfaces();
    build_component_semantics();
    build_cross_semantics();
    ground_placements();
    ground_crossings();
    build_initial_state();
    build_goal();
    build_achievers();
    return std::move(cp_);
  }

 private:
  const CppProblem& prob_;
  const spec::LevelScenario& scen_;
  CompiledProblem cp_;

  std::vector<SemanticsBundle> comp_sem_;   // by component index
  std::vector<SemanticsBundle> cross_sem_;  // by interface index

  // ----- interface indexing and level resolution ---------------------------

  [[nodiscard]] std::uint32_t iface_index(const std::string& name) const {
    for (std::uint32_t i = 0; i < cp_.iface_names.size(); ++i) {
      if (cp_.iface_names[i] == name) return i;
    }
    raise("compile: unknown interface " + name);
  }

  void index_interfaces() {
    const spec::DomainSpec& dom = *prob_.domain;
    for (std::size_t i = 0; i < dom.interface_count(); ++i) {
      const spec::InterfaceSpec& ispec = dom.interface_at(i);
      cp_.iface_names.push_back(ispec.name);
      IfaceLevelInfo info;
      for (const spec::PropertySpec& p : ispec.properties) {
        const LevelSet* ls = scen_.find_iface_levels(ispec.name, p.name);
        if (ls == nullptr) {
          auto it = ispec.levels.find(p.name);
          if (it != ispec.levels.end() && !it->second.trivial()) ls = &it->second;
        }
        if (ls != nullptr && !ls->trivial()) {
          if (info.prop.valid()) {
            raise("compile: interface " + ispec.name +
                  " has more than one leveled property; at most one is supported");
          }
          info.prop = cp_.names.intern(p.name);
          info.levels = *ls;
          info.tag = p.tag;
        }
      }
      if (!info.prop.valid()) {
        // Unleveled interface: trivial single level; remember the tag of the
        // first property so closure stays consistent.
        info.levels = LevelSet{};
        info.tag = ispec.properties.empty() ? LevelTag::None : ispec.properties.front().tag;
      }
      cp_.iface_levels.push_back(std::move(info));
    }
  }

  [[nodiscard]] const IfaceLevelInfo& level_info(std::uint32_t iface) const {
    return cp_.iface_levels[iface];
  }

  // ----- semantics (slot) construction --------------------------------------

  std::uint32_t slot_for(SemanticsBundle& b, const SlotDesc& desc, SlotRole role,
                         LevelTag tag) {
    for (std::uint32_t i = 0; i < b.descs.size(); ++i) {
      if (b.descs[i] == desc) return i;
    }
    b.descs.push_back(desc);
    b.sem->roles.push_back(role);
    b.sem->tags.push_back(tag);
    b.sem->slot_count = static_cast<std::uint32_t>(b.descs.size());
    return static_cast<std::uint32_t>(b.descs.size() - 1);
  }

  [[nodiscard]] LevelTag prop_tag(std::uint32_t iface, const std::string& prop) const {
    return prob_.domain->interface_at(iface).tag_of(prop);
  }

  void build_component_semantics() {
    const spec::DomainSpec& dom = *prob_.domain;
    for (std::size_t c = 0; c < dom.component_count(); ++c) {
      const spec::ComponentSpec& cspec = dom.component_at(c);
      cp_.semantics.push_back(std::make_unique<CompiledSemantics>());
      SemanticsBundle bundle;
      bundle.sem = cp_.semantics.back().get();

      auto resolve = [&](const expr::RoleRef& ref) -> std::uint32_t {
        if (ref.primed) {
          raise("component " + cspec.name + ": primed variables (" + ref.str() +
                ") are only meaningful in cross blocks");
        }
        if (ref.scope == "node") {
          return slot_for(bundle, {SlotDesc::Kind::NodeRes, 0, cp_.names.intern(ref.prop)},
                          SlotRole::Resource, LevelTag::None);
        }
        const std::uint32_t idx = iface_index(ref.scope);
        const bool is_input = std::find(cspec.inputs.begin(), cspec.inputs.end(), ref.scope) !=
                              cspec.inputs.end();
        const SlotDesc::Kind kind =
            is_input ? SlotDesc::Kind::InputProp : SlotDesc::Kind::OutputProp;
        return slot_for(bundle, {kind, idx, cp_.names.intern(ref.prop)},
                        is_input ? SlotRole::Input : SlotRole::Output,
                        prop_tag(idx, ref.prop));
      };

      // Pre-create the leveled-property slots so level choices always have a
      // slot to constrain, even if no formula mentions them.
      for (const std::string& in : cspec.inputs) {
        const std::uint32_t idx = iface_index(in);
        const IfaceLevelInfo& info = level_info(idx);
        if (info.prop.valid()) {
          slot_for(bundle, {SlotDesc::Kind::InputProp, idx, info.prop}, SlotRole::Input,
                   info.tag);
        }
      }
      for (const std::string& out : cspec.outputs) {
        const std::uint32_t idx = iface_index(out);
        const IfaceLevelInfo& info = level_info(idx);
        if (info.prop.valid()) {
          slot_for(bundle, {SlotDesc::Kind::OutputProp, idx, info.prop}, SlotRole::Output,
                   info.tag);
        }
      }

      for (const expr::ConditionAst& cond : cspec.conditions) {
        expr::CompiledCondition cc;
        cc.lhs = expr::Program::compile(*cond.lhs, resolve);
        cc.op = cond.op;
        cc.rhs = expr::Program::compile(*cond.rhs, resolve);
        cc.source = cond.str();
        bundle.sem->conditions.push_back(std::move(cc));
      }
      for (const expr::EffectAst& eff : cspec.effects) {
        expr::CompiledEffect ce;
        ce.target = resolve(eff.target);
        ce.op = eff.op;
        ce.value = expr::Program::compile(*eff.value, resolve);
        ce.source = eff.str();
        bundle.sem->effects.push_back(std::move(ce));
      }
      if (cspec.cost) {
        bundle.sem->cost = expr::Program::compile(*cspec.cost, resolve);
        bundle.sem->has_cost = true;
      }
      comp_sem_.push_back(std::move(bundle));
    }
  }

  void build_cross_semantics() {
    const spec::DomainSpec& dom = *prob_.domain;
    for (std::size_t i = 0; i < dom.interface_count(); ++i) {
      const spec::InterfaceSpec& ispec = dom.interface_at(i);
      cp_.semantics.push_back(std::make_unique<CompiledSemantics>());
      SemanticsBundle bundle;
      bundle.sem = cp_.semantics.back().get();
      const std::uint32_t idx = static_cast<std::uint32_t>(i);

      auto resolve = [&](const expr::RoleRef& ref) -> std::uint32_t {
        if (ref.scope == "link") {
          // `link.lbw` and `link.lbw'` denote the same pool; effects update
          // it in place (Fig. 6's tick notation).
          return slot_for(bundle, {SlotDesc::Kind::LinkRes, 0, cp_.names.intern(ref.prop)},
                          SlotRole::Resource, LevelTag::None);
        }
        if (ref.scope == "node") {
          raise("interface " + ispec.name + ": node resources are not visible to cross actions");
        }
        if (ref.scope != ispec.name) {
          raise("interface " + ispec.name + ": cross formulae may only reference " + ispec.name +
                ".* and link.*, got " + ref.str());
        }
        const SlotDesc::Kind kind =
            ref.primed ? SlotDesc::Kind::CrossPost : SlotDesc::Kind::CrossPre;
        return slot_for(bundle, {kind, idx, cp_.names.intern(ref.prop)},
                        ref.primed ? SlotRole::Output : SlotRole::Input,
                        prop_tag(idx, ref.prop));
      };

      // Pre-create pre/post slots for every property so transported values
      // always have somewhere to live.
      for (const spec::PropertySpec& p : ispec.properties) {
        slot_for(bundle, {SlotDesc::Kind::CrossPre, idx, cp_.names.intern(p.name)},
                 SlotRole::Input, p.tag);
        slot_for(bundle, {SlotDesc::Kind::CrossPost, idx, cp_.names.intern(p.name)},
                 SlotRole::Output, p.tag);
      }

      for (const expr::ConditionAst& cond : ispec.cross_conditions) {
        expr::CompiledCondition cc;
        cc.lhs = expr::Program::compile(*cond.lhs, resolve);
        cc.op = cond.op;
        cc.rhs = expr::Program::compile(*cond.rhs, resolve);
        cc.source = cond.str();
        bundle.sem->conditions.push_back(std::move(cc));
      }
      std::vector<bool> has_post_effect(ispec.properties.size(), false);
      for (const expr::EffectAst& eff : ispec.cross_effects) {
        expr::CompiledEffect ce;
        ce.target = resolve(eff.target);
        ce.op = eff.op;
        ce.value = expr::Program::compile(*eff.value, resolve);
        ce.source = eff.str();
        if (eff.target.primed && eff.target.scope == ispec.name) {
          for (std::size_t pi = 0; pi < ispec.properties.size(); ++pi) {
            if (ispec.properties[pi].name == eff.target.prop) has_post_effect[pi] = true;
          }
        }
        bundle.sem->effects.push_back(std::move(ce));
      }
      // Properties without an explicit transport rule cross unchanged
      // (identity effect P.x' := P.x).
      for (std::size_t pi = 0; pi < ispec.properties.size(); ++pi) {
        if (has_post_effect[pi]) continue;
        const std::string& pname = ispec.properties[pi].name;
        expr::RoleRef pre{ispec.name, pname, false};
        expr::RoleRef post{ispec.name, pname, true};
        expr::CompiledEffect ce;
        ce.target = resolve(post);
        ce.op = expr::AssignOp::Set;
        ce.value = expr::Program::compile(*expr::make_var(pre), resolve);
        ce.source = post.str() + " := " + pre.str() + " (implicit)";
        bundle.sem->effects.push_back(std::move(ce));
      }
      if (ispec.cross_cost) {
        bundle.sem->cost = expr::Program::compile(*ispec.cross_cost, resolve);
        bundle.sem->has_cost = true;
      }
      cross_sem_.push_back(std::move(bundle));
    }
  }

  // ----- grounding -----------------------------------------------------------

  /// Level set of a node/link resource under the scenario (nullptr = none).
  [[nodiscard]] const LevelSet* node_res_levels(const std::string& res) const {
    auto it = scen_.node_levels.find(res);
    return it == scen_.node_levels.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const LevelSet* link_res_levels(const std::string& res) const {
    auto it = scen_.link_levels.find(res);
    return it == scen_.link_levels.end() ? nullptr : &it->second;
  }

  /// Evaluates cost over post-effect slot intervals; clamps the lower bound
  /// to a positive epsilon so A* search cannot loop on free actions.
  static void eval_cost(const CompiledSemantics& sem, std::span<const Interval> slots,
                        GroundAction& act) {
    if (!sem.has_cost) {
      act.cost_lb = act.cost_ub = 1.0;
      return;
    }
    const Interval c = sem.cost.eval_interval(slots);
    act.cost_lb = std::max(c.lo, 1e-6);
    act.cost_ub = std::max(c.hi, act.cost_lb);
  }

  void ground_placements() {
    const spec::DomainSpec& dom = *prob_.domain;
    for (std::size_t c = 0; c < dom.component_count(); ++c) {
      const spec::ComponentSpec& cspec = dom.component_at(c);
      SemanticsBundle& bundle = comp_sem_[c];
      const CompiledSemantics& sem = *bundle.sem;

      for (NodeId n : prob_.network->node_ids()) {
        if (!prob_.placeable_at(cspec.name, n)) continue;
        ground_placement_at(static_cast<std::uint32_t>(c), cspec, bundle, sem, n);
      }
    }
  }

  void ground_placement_at(std::uint32_t comp_idx, const spec::ComponentSpec& cspec,
                           SemanticsBundle& bundle, const CompiledSemantics& sem, NodeId n) {
    // Digits: one per input interface (its level), one per output interface,
    // one per node-resource slot that the scenario levels.
    std::vector<std::uint32_t> radices;
    std::vector<std::uint32_t> input_iface_idx;
    for (const std::string& in : cspec.inputs) {
      const std::uint32_t idx = iface_index(in);
      input_iface_idx.push_back(idx);
      radices.push_back(level_info(idx).levels.count());
    }
    std::vector<std::uint32_t> output_iface_idx;
    for (const std::string& out : cspec.outputs) {
      const std::uint32_t idx = iface_index(out);
      output_iface_idx.push_back(idx);
      radices.push_back(level_info(idx).levels.count());
    }
    std::vector<std::pair<std::uint32_t, const LevelSet*>> leveled_res_slots;
    for (std::uint32_t s = 0; s < bundle.descs.size(); ++s) {
      if (bundle.descs[s].kind == SlotDesc::Kind::NodeRes) {
        if (const LevelSet* ls = node_res_levels(cp_.names.str(bundle.descs[s].prop))) {
          leveled_res_slots.emplace_back(s, ls);
          radices.push_back(ls->count());
        }
      }
    }

    for (Odometer od(radices); !od.done(); od.advance()) {
      ++cp_.combos_considered;
      const auto& d = od.digits();
      std::size_t di = 0;

      std::vector<Interval> slots(sem.slot_count, Interval::nonneg());
      // Node resources: optimistic availability [0, capacity].
      for (std::uint32_t s = 0; s < bundle.descs.size(); ++s) {
        if (bundle.descs[s].kind == SlotDesc::Kind::NodeRes) {
          const double cap = prob_.network->node(n).resource(cp_.names.str(bundle.descs[s].prop));
          slots[s] = {0.0, cap};
        }
      }

      std::vector<std::uint32_t> in_levels, out_levels;
      bool viable = true;

      // Input stream levels.
      for (std::size_t i = 0; i < input_iface_idx.size(); ++i, ++di) {
        const std::uint32_t lvl = d[di];
        in_levels.push_back(lvl);
        const IfaceLevelInfo& info = level_info(input_iface_idx[i]);
        if (!info.prop.valid()) continue;
        const std::uint32_t s =
            find_slot(bundle, {SlotDesc::Kind::InputProp, input_iface_idx[i], info.prop});
        slots[s] = info.levels.interval(lvl);
      }
      // Output levels noted; validated post-effects.
      std::vector<std::uint32_t> out_digit;
      for (std::size_t i = 0; i < output_iface_idx.size(); ++i, ++di) {
        out_digit.push_back(d[di]);
      }
      // Leveled node resources.
      for (auto& [s, ls] : leveled_res_slots) {
        slots[s] = intersect(slots[s], ls->interval(d[di++]));
        if (slots[s].is_empty()) viable = false;
      }
      if (!viable) {
        ++cp_.combos_pruned;
        continue;
      }

      // Leveling-time pruning: conditions must be satisfiable over the
      // optimistic intervals.
      for (const expr::CompiledCondition& cond : sem.conditions) {
        if (!cond.satisfiable(slots)) {
          viable = false;
          break;
        }
      }
      if (!viable) {
        ++cp_.combos_pruned;
        continue;
      }

      std::vector<Interval> post = slots;
      for (const expr::CompiledEffect& eff : sem.effects) eff.apply_interval(post);

      // Output levels must be reachable by the computed effects.
      for (std::size_t i = 0; i < output_iface_idx.size(); ++i) {
        const IfaceLevelInfo& info = level_info(output_iface_idx[i]);
        out_levels.push_back(out_digit[i]);
        if (!info.prop.valid()) {
          if (out_digit[i] != 0) viable = false;  // single trivial level
          continue;
        }
        const std::uint32_t s =
            find_slot(bundle, {SlotDesc::Kind::OutputProp, output_iface_idx[i], info.prop});
        if (!spec::level_matches(info.levels.interval(out_digit[i]), post[s],
                                 /*strict_floor=*/true)) {
          viable = false;
        }
      }
      if (!viable) {
        ++cp_.combos_pruned;
        continue;
      }

      GroundAction act;
      act.kind = ActionKind::Place;
      act.spec_index = comp_idx;
      act.node = n;
      act.sem = &sem;
      act.in_levels = std::move(in_levels);
      act.out_levels = std::move(out_levels);

      // Bind slots to located variables and record optimistic intervals.
      act.slot_vars.resize(bundle.descs.size());
      act.slot_opt.resize(bundle.descs.size());
      for (std::uint32_t s = 0; s < bundle.descs.size(); ++s) {
        const SlotDesc& desc = bundle.descs[s];
        switch (desc.kind) {
          case SlotDesc::Kind::InputProp:
          case SlotDesc::Kind::OutputProp:
            act.slot_vars[s] = cp_.vars.iface_prop(InterfaceId(desc.iface), n, desc.prop);
            break;
          case SlotDesc::Kind::NodeRes:
            act.slot_vars[s] = cp_.vars.node_res(n, desc.prop);
            break;
          default:
            SEKITEI_ASSERT(false);
        }
        act.slot_opt[s] = slots[s];
      }
      // Output slots assert their chosen level interval.
      for (std::size_t i = 0; i < output_iface_idx.size(); ++i) {
        const IfaceLevelInfo& info = level_info(output_iface_idx[i]);
        if (!info.prop.valid()) continue;
        const std::uint32_t s =
            find_slot(bundle, {SlotDesc::Kind::OutputProp, output_iface_idx[i], info.prop});
        act.slot_opt[s] = info.levels.interval(act.out_levels[i]);
      }

      // Logical preconditions and effects.
      for (std::size_t i = 0; i < input_iface_idx.size(); ++i) {
        sorted_insert(act.pre, cp_.props.avail(InterfaceId(input_iface_idx[i]), n,
                                               act.in_levels[i]));
      }
      sorted_insert(act.eff, cp_.props.placed(ComponentId(comp_idx), n));
      for (std::size_t i = 0; i < output_iface_idx.size(); ++i) {
        sorted_insert(act.eff, cp_.props.avail(InterfaceId(output_iface_idx[i]), n,
                                               act.out_levels[i]));
      }

      eval_cost(sem, post, act);
      cp_.actions.push_back(std::move(act));
    }
  }

  void ground_crossings() {
    const spec::DomainSpec& dom = *prob_.domain;
    for (std::size_t i = 0; i < dom.interface_count(); ++i) {
      SemanticsBundle& bundle = cross_sem_[i];
      for (LinkId l : prob_.network->link_ids()) {
        const net::Link& link = prob_.network->link(l);
        ground_cross_over(static_cast<std::uint32_t>(i), bundle, l, link.a, link.b);
        ground_cross_over(static_cast<std::uint32_t>(i), bundle, l, link.b, link.a);
      }
    }
  }

  void ground_cross_over(std::uint32_t iface_idx, SemanticsBundle& bundle, LinkId l, NodeId u,
                         NodeId v) {
    const CompiledSemantics& sem = *bundle.sem;
    const IfaceLevelInfo& info = level_info(iface_idx);
    const net::Link& link = prob_.network->link(l);

    std::vector<std::uint32_t> radices{info.levels.count(), info.levels.count()};
    std::vector<std::pair<std::uint32_t, const LevelSet*>> leveled_res_slots;
    for (std::uint32_t s = 0; s < bundle.descs.size(); ++s) {
      if (bundle.descs[s].kind == SlotDesc::Kind::LinkRes) {
        if (const LevelSet* ls = link_res_levels(cp_.names.str(bundle.descs[s].prop))) {
          leveled_res_slots.emplace_back(s, ls);
          radices.push_back(ls->count());
        }
      }
    }

    for (Odometer od(radices); !od.done(); od.advance()) {
      ++cp_.combos_considered;
      const auto& d = od.digits();
      const std::uint32_t in_lvl = d[0];
      const std::uint32_t out_lvl = d[1];

      std::vector<Interval> slots(sem.slot_count, Interval::nonneg());
      for (std::uint32_t s = 0; s < bundle.descs.size(); ++s) {
        if (bundle.descs[s].kind == SlotDesc::Kind::LinkRes) {
          const double cap = link.resource(cp_.names.str(bundle.descs[s].prop));
          slots[s] = {0.0, cap};
        }
      }
      bool viable = true;
      std::size_t di = 2;
      for (auto& [s, ls] : leveled_res_slots) {
        slots[s] = intersect(slots[s], ls->interval(d[di++]));
        if (slots[s].is_empty()) viable = false;
      }
      if (viable && info.prop.valid()) {
        const std::uint32_t s =
            find_slot(bundle, {SlotDesc::Kind::CrossPre, iface_idx, info.prop});
        slots[s] = info.levels.interval(in_lvl);
      }
      if (viable) {
        for (const expr::CompiledCondition& cond : sem.conditions) {
          if (!cond.satisfiable(slots)) {
            viable = false;
            break;
          }
        }
      }
      std::vector<Interval> post;
      if (viable) {
        post = slots;
        for (const expr::CompiledEffect& eff : sem.effects) eff.apply_interval(post);
        if (info.prop.valid()) {
          const std::uint32_t s =
              find_slot(bundle, {SlotDesc::Kind::CrossPost, iface_idx, info.prop});
          if (!spec::level_matches(info.levels.interval(out_lvl), post[s],
                                   /*strict_floor=*/true)) {
            viable = false;
          }
        } else if (out_lvl != 0) {
          viable = false;
        }
      }
      if (!viable) {
        ++cp_.combos_pruned;
        continue;
      }

      GroundAction act;
      act.kind = ActionKind::Cross;
      act.spec_index = iface_idx;
      act.node = u;
      act.node2 = v;
      act.link = l;
      act.sem = &sem;
      act.in_levels = {in_lvl};
      act.out_levels = {out_lvl};

      act.slot_vars.resize(bundle.descs.size());
      act.slot_opt.resize(bundle.descs.size());
      for (std::uint32_t s = 0; s < bundle.descs.size(); ++s) {
        const SlotDesc& desc = bundle.descs[s];
        switch (desc.kind) {
          case SlotDesc::Kind::CrossPre:
            act.slot_vars[s] = cp_.vars.iface_prop(InterfaceId(desc.iface), u, desc.prop);
            break;
          case SlotDesc::Kind::CrossPost:
            act.slot_vars[s] = cp_.vars.iface_prop(InterfaceId(desc.iface), v, desc.prop);
            break;
          case SlotDesc::Kind::LinkRes:
            act.slot_vars[s] = cp_.vars.link_res(l, desc.prop);
            break;
          default:
            SEKITEI_ASSERT(false);
        }
        act.slot_opt[s] = slots[s];
      }
      if (info.prop.valid()) {
        const std::uint32_t s =
            find_slot(bundle, {SlotDesc::Kind::CrossPost, iface_idx, info.prop});
        act.slot_opt[s] = info.levels.interval(out_lvl);
      }

      sorted_insert(act.pre, cp_.props.avail(InterfaceId(iface_idx), u, in_lvl));
      sorted_insert(act.eff, cp_.props.avail(InterfaceId(iface_idx), v, out_lvl));

      eval_cost(sem, post, act);
      cp_.actions.push_back(std::move(act));
    }
  }

  [[nodiscard]] static std::uint32_t find_slot(const SemanticsBundle& b, const SlotDesc& d) {
    for (std::uint32_t i = 0; i < b.descs.size(); ++i) {
      if (b.descs[i] == d) return i;
    }
    raise("compile: internal slot lookup failure");
  }

  // ----- initial state, goal, achievers --------------------------------------

  void build_initial_state() {
    // All node and link resource capacities enter the initial map as points.
    for (NodeId n : prob_.network->node_ids()) {
      for (const auto& [res, cap] : prob_.network->node(n).resources) {
        cp_.init_map.push_back({cp_.vars.node_res(n, cp_.names.intern(res)),
                                Interval::point(cap)});
      }
    }
    for (LinkId l : prob_.network->link_ids()) {
      for (const auto& [res, cap] : prob_.network->link(l).resources) {
        cp_.init_map.push_back({cp_.vars.link_res(l, cp_.names.intern(res)),
                                Interval::point(cap)});
      }
    }

    for (const InitialStream& is : prob_.initial_streams) {
      const std::uint32_t idx = iface_index(is.iface);
      const spec::InterfaceSpec& ispec = prob_.domain->interface_at(idx);
      if (!ispec.find_property(is.prop)) {
        raise("initial stream " + is.iface + ": unknown property " + is.prop);
      }
      // Every property of the stream exists at the node; the designated one
      // carries the given choice interval, the rest their declared initial.
      for (const spec::PropertySpec& p : ispec.properties) {
        const Interval v = p.name == is.prop ? is.value : Interval::point(p.initial);
        cp_.init_map.push_back(
            {cp_.vars.iface_prop(InterfaceId(idx), is.node, cp_.names.intern(p.name)), v});
      }
      // avail props: every level the leveled property's value can land in
      // (the production amount is the planner's choice, so a [0,200] server
      // stream is available at *every* level up to 200).
      const IfaceLevelInfo& info = level_info(idx);
      Interval leveled_value = Interval::point(0.0);
      if (info.prop.valid()) {
        const std::string& lname = cp_.names.str(info.prop);
        leveled_value = lname == is.prop
                            ? is.value
                            : Interval::point(ispec.find_property(lname)->initial);
      }
      for (std::uint32_t k = 0; k < info.levels.count(); ++k) {
        if (!info.prop.valid() || spec::level_matches(info.levels.interval(k), leveled_value)) {
          sorted_insert(cp_.init_props, cp_.props.avail(InterfaceId(idx), is.node, k));
        }
      }
    }

    for (const auto& [comp, node] : prob_.preplaced) {
      const spec::ComponentSpec* cspec = prob_.domain->find_component(comp);
      if (cspec == nullptr) raise("preplaced: unknown component " + comp);
      std::uint32_t comp_idx = 0;
      for (std::size_t c = 0; c < prob_.domain->component_count(); ++c) {
        if (prob_.domain->component_at(c).name == comp) {
          comp_idx = static_cast<std::uint32_t>(c);
        }
      }
      sorted_insert(cp_.init_props, cp_.props.placed(ComponentId(comp_idx), node));
    }
  }

  void build_goal() {
    auto placed_prop = [&](const std::string& comp, NodeId node) {
      std::uint32_t comp_idx = UINT32_MAX;
      for (std::size_t c = 0; c < prob_.domain->component_count(); ++c) {
        if (prob_.domain->component_at(c).name == comp) {
          comp_idx = static_cast<std::uint32_t>(c);
        }
      }
      if (comp_idx == UINT32_MAX) raise("goal: unknown component " + comp);
      return cp_.props.placed(ComponentId(comp_idx), node);
    };
    cp_.goal_prop = placed_prop(prob_.goal_component, prob_.goal_node);
    sorted_insert(cp_.goal_props, cp_.goal_prop);
    for (const auto& [comp, node] : prob_.extra_goals) {
      sorted_insert(cp_.goal_props, placed_prop(comp, node));
    }
  }

  void build_achievers() {
    // Register each action under every proposition it supports, applying
    // degradable/upgradable closure across levels: a degradable stream
    // produced at level k also supports demands at any level j < k.
    cp_.achievers.resize(cp_.props.size());
    auto register_achiever = [&](PropId p, ActionId a) {
      if (p.index() >= cp_.achievers.size()) cp_.achievers.resize(cp_.props.size());
      cp_.achievers[p.index()].push_back(a);
    };
    for (std::uint32_t ai = 0; ai < cp_.actions.size(); ++ai) {
      const ActionId aid(ai);
      // Copy effects: registering closure props may grow the registry.
      const std::vector<PropId> effs = cp_.actions[ai].eff;
      for (PropId e : effs) {
        const PropKey key = cp_.props.key(e);
        register_achiever(e, aid);
        if (key.kind != PropKind::Avail) continue;
        const IfaceLevelInfo& info = level_info(key.entity);
        if (info.tag == LevelTag::Degradable) {
          for (std::uint32_t j = 0; j < key.level; ++j) {
            register_achiever(cp_.props.avail(InterfaceId(key.entity), NodeId(key.node), j),
                              aid);
          }
        } else if (info.tag == LevelTag::Upgradable) {
          for (std::uint32_t j = key.level + 1; j < info.levels.count(); ++j) {
            register_achiever(cp_.props.avail(InterfaceId(key.entity), NodeId(key.node), j),
                              aid);
          }
        }
      }
    }
    // Closure on the initial state as well.
    std::vector<PropId> extra;
    for (PropId p : cp_.init_props) {
      const PropKey key = cp_.props.key(p);
      if (key.kind != PropKind::Avail) continue;
      const IfaceLevelInfo& info = level_info(key.entity);
      if (info.tag == LevelTag::Degradable) {
        for (std::uint32_t j = 0; j < key.level; ++j) {
          extra.push_back(cp_.props.avail(InterfaceId(key.entity), NodeId(key.node), j));
        }
      } else if (info.tag == LevelTag::Upgradable) {
        for (std::uint32_t j = key.level + 1; j < info.levels.count(); ++j) {
          extra.push_back(cp_.props.avail(InterfaceId(key.entity), NodeId(key.node), j));
        }
      }
    }
    for (PropId p : extra) sorted_insert(cp_.init_props, p);
    cp_.achievers.resize(cp_.props.size());
    // Sorted achiever lists admit O(log n) "does a support p" queries in the
    // planner's regression loops.
    for (auto& lst : cp_.achievers) std::sort(lst.begin(), lst.end());
  }
};

}  // namespace

CompiledProblem compile(const CppProblem& problem, const spec::LevelScenario& scenario) {
  Compiler c(problem, scenario);
  return c.run();
}

}  // namespace sekitei::model
