// File-driven problem loading: a text format for networks and CPP instances,
// so the planner is usable without writing C++.  Together with the domain
// DSL (spec/spec.hpp) this covers the whole input surface of the paper:
// "The CPP is specified by a network topology and resources, specifications
// of components, and a characterization of the interactions between
// components and the network environment."
//
// Syntax (comments with # or //):
//
//   network {
//     node n0 { cpu 30; }
//     node n1 { cpu 30; }
//     link n0 n1 wan { lbw 70; delay 10; }   # class: lan | wan | other
//   }
//   problem {
//     stream M.ibw at n0 = [0, 200];     # production choice interval
//     stream M.ibw at n2 = 50;           # fixed replica
//     preplaced Server at n0;
//     restrict Client to n1;             # placement rule (repeatable)
//     forbid Server;                     # never placeable
//     goal Client at n1;
//   }
//   scenario {
//     levels M.ibw { 90, 100 }
//     levels T.ibw { 63, 70 }
//     levels link lbw { 31, 62 }
//     levels node cpu { 10, 20 }
//   }
//
// All three sections are optional and may appear in any order; `problem`
// requires `network` to have been parsed first.
#pragma once

#include <string>

#include "model/problem.hpp"
#include "net/network.hpp"
#include "spec/spec.hpp"

namespace sekitei::model {

/// A fully self-contained, heap-pinned problem instance loaded from text.
/// Non-copyable/movable: `problem` points into `net` and `domain`.
struct LoadedProblem {
  spec::DomainSpec domain;
  net::Network net;
  CppProblem problem;
  spec::LevelScenario scenario;

  LoadedProblem() = default;
  LoadedProblem(const LoadedProblem&) = delete;
  LoadedProblem& operator=(const LoadedProblem&) = delete;
};

/// Parses `domain_text` (the component DSL) and `problem_text` (the format
/// above) into a ready-to-compile instance.  Raises sekitei::Error with a
/// line-accurate message on malformed input.
[[nodiscard]] std::unique_ptr<LoadedProblem> load_problem(
    const std::string& domain_text, const std::string& problem_text,
    const expr::ParamTable& params = {});

/// Serializes a network back to the text format (round-trip support).
[[nodiscard]] std::string network_to_text(const net::Network& net);

}  // namespace sekitei::model
