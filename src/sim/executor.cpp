#include "sim/executor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"
#include "support/log.hpp"
#include "support/trace.hpp"

namespace sekitei::sim {

using model::GroundAction;
using model::SlotRole;
using spec::LevelTag;

double ExecutionReport::max_reserved(net::LinkClass cls) const {
  double m = 0.0;
  for (const LinkUse& u : link_use) {
    if (u.cls == cls) m = std::max(m, u.used);
  }
  return m;
}

double ExecutionReport::total_reserved(net::LinkClass cls) const {
  double t = 0.0;
  for (const LinkUse& u : link_use) {
    if (u.cls == cls) t += u.used;
  }
  return t;
}

double ExecutionReport::final_value(VarId v) const {
  for (const auto& [var, val] : final_vars) {
    if (var == v) return val;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

std::size_t Executor::choice_count() const {
  std::size_t n = 0;
  for (const model::InitMapEntry& e : cp_.init_map) {
    if (!e.value.is_point()) ++n;
  }
  return n;
}

namespace {

/// Dense concrete-value map mirroring core::ResourceMap.
class ValueMap {
 public:
  void reset(std::size_t n) {
    if (vals_.size() < n) {
      vals_.resize(n);
      epoch_.resize(n, 0);
    }
    ++cur_;
  }
  [[nodiscard]] bool has(VarId v) const { return epoch_[v.index()] == cur_; }
  [[nodiscard]] double get(VarId v) const { return vals_[v.index()]; }
  void set(VarId v, double x) {
    vals_[v.index()] = x;
    epoch_[v.index()] = cur_;
  }

 private:
  std::vector<double> vals_;
  std::vector<std::uint32_t> epoch_;
  std::uint32_t cur_ = 0;
};

constexpr double kEps = 1e-9;

}  // namespace

ExecutionReport Executor::attempt(const core::Plan& plan, std::span<const double> choices) {
  ++attempts_;
  ExecutionReport rep;
  ValueMap values;
  values.reset(cp_.vars.size());

  // Load the initial state; choice intervals take the supplied values.
  std::size_t ci = 0;
  for (const model::InitMapEntry& e : cp_.init_map) {
    if (e.value.is_point()) {
      values.set(e.var, e.value.lo);
    } else {
      SEKITEI_ASSERT(ci < choices.size());
      const double x = choices[ci++];
      const bool above = e.value.hi != kInf &&
                         (e.value.hi_open ? x >= e.value.hi : x > e.value.hi + kEps);
      if (x < e.value.lo - kEps || above) {
        rep.failure = "choice value outside its initial interval";
        return rep;
      }
      values.set(e.var, x);
    }
  }
  rep.choices.assign(choices.begin(), choices.end());

  std::vector<double> scratch;
  for (ActionId aid : plan.steps) {
    const GroundAction& act = cp_.actions[aid.index()];
    const model::CompiledSemantics& sem = *act.sem;
    const std::size_t n = act.slot_vars.size();
    if (scratch.size() < n) scratch.resize(n);

    for (std::size_t s = 0; s < n; ++s) {
      const VarId var = act.slot_vars[s];
      if (!values.has(var)) {
        if (sem.roles[s] == SlotRole::Input) {
          rep.failure = "action consumes a stream that was never produced: " +
                        cp_.describe(aid);
          return rep;
        }
        values.set(var, 0.0);
      }
      double v = values.get(var);
      const Interval lvl = act.slot_opt[s];
      // A value sits above the interval if it exceeds a closed bound by more
      // than the tolerance, or reaches an open bound at all.
      const auto above = [&](double x) {
        if (lvl.hi == kInf) return false;
        return lvl.hi_open ? x >= lvl.hi : x > lvl.hi + kEps;
      };
      if (sem.roles[s] == SlotRole::Input) {
        if (sem.tags[s] == LevelTag::Degradable) {
          // Consume at most the level's supremum of what is available.
          if (v < lvl.lo - kEps) {
            rep.failure = "input below required level in " + cp_.describe(aid);
            return rep;
          }
          v = std::min(v, lvl.sup_value());
        } else if (sem.tags[s] == LevelTag::Upgradable) {
          if (above(v)) {
            rep.failure = "input above required level in " + cp_.describe(aid);
            return rep;
          }
        } else if (v < lvl.lo - kEps || above(v)) {
          rep.failure = "input outside required level in " + cp_.describe(aid);
          return rep;
        }
      }
      scratch[s] = v;
    }

    const std::span<const double> slots(scratch.data(), n);
    for (const expr::CompiledCondition& cond : sem.conditions) {
      if (!cond.holds(slots)) {
        rep.failure = "condition failed in " + cp_.describe(aid) + ": " + cond.source;
        return rep;
      }
    }
    const std::span<double> mslots(scratch.data(), n);
    for (const expr::CompiledEffect& eff : sem.effects) {
      eff.apply(mslots);
      double v = mslots[eff.target];
      if (sem.roles[eff.target] == SlotRole::Output) {
        const Interval lvl = act.slot_opt[eff.target];
        const bool above = lvl.hi != kInf && (lvl.hi_open ? v >= lvl.hi : v > lvl.hi + kEps);
        if (v < lvl.lo - kEps || above) {
          rep.failure = "produced value misses asserted level in " + cp_.describe(aid) + ": " +
                        eff.source;
          return rep;
        }
      }
      values.set(act.slot_vars[eff.target], v);
    }
    if (sem.has_cost) {
      rep.actual_cost += sem.cost.eval(slots);
    } else {
      rep.actual_cost += 1.0;
    }
  }

  // Resource accounting: init - final for every touched node/link resource.
  const NameId lbw = cp_.names.find("lbw");
  const NameId cpu = cp_.names.find("cpu");
  for (const model::InitMapEntry& e : cp_.init_map) {
    if (!values.has(e.var)) continue;
    const model::VarKey& key = cp_.vars.key(e.var);
    const double used = e.value.hi == kInf ? 0.0 : e.value.lo - values.get(e.var);
    if (key.kind == model::VarKind::LinkRes && lbw.valid() && key.b == lbw.index()) {
      if (used > kEps) {
        rep.link_use.push_back(
            {LinkId(key.a), cp_.net->link(LinkId(key.a)).cls, used});
      }
    } else if (key.kind == model::VarKind::NodeRes && cpu.valid() && key.b == cpu.index()) {
      if (used > kEps) rep.node_use.push_back({NodeId(key.a), used});
    }
  }
  // Record every touched variable for inspection.
  for (std::size_t v = 0; v < cp_.vars.size(); ++v) {
    const VarId var(static_cast<std::uint32_t>(v));
    if (values.has(var)) rep.final_vars.emplace_back(var, values.get(var));
  }

  rep.feasible = true;
  return rep;
}

ExecutionReport Executor::execute(const core::Plan& plan) {
  trace::Span span("sim.execute", "sim");
  // Counts the grid/bisection probes this call made, whichever return path
  // ends it.
  struct AttemptGuard {
    const std::uint64_t& attempts;
    std::uint64_t before;
    ~AttemptGuard() {
      trace::counter("sim.attempts", static_cast<double>(attempts - before));
    }
  } guard{attempts_, attempts_};
  // Collect choice ranges from the initial map.
  std::vector<Interval> ranges;
  for (const model::InitMapEntry& e : cp_.init_map) {
    if (!e.value.is_point()) {
      Interval r = e.value;
      r.hi = r.hi == kInf ? 1e12 : r.sup_value();  // largest usable value
      r.hi_open = false;
      ranges.push_back(r);
    }
  }
  if (ranges.empty()) return attempt(plan, {});

  std::vector<double> x;
  x.reserve(ranges.size());
  for (const Interval& r : ranges) x.push_back(r.hi);

  ExecutionReport best = attempt(plan, x);
  if (best.feasible) return best;

  // Greedy-within-level fallback: coordinate-wise maximisation.  For each
  // choice variable, scan a coarse grid downward for a feasible point, then
  // bisect upward against the lowest known-infeasible value.  Monotone
  // failure structure (more production -> more resource use) makes this find
  // the maximum feasible amount.
  const int kGrid = 64;
  const int kBisect = 60;
  for (int round = 0; round < 3; ++round) {
    bool improved = false;
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      const double lo = ranges[i].lo, hi = ranges[i].hi;
      double feas = std::numeric_limits<double>::quiet_NaN();
      double infeas = std::numeric_limits<double>::quiet_NaN();
      for (int g = kGrid; g >= 0; --g) {
        x[i] = lo + (hi - lo) * g / kGrid;
        ExecutionReport r = attempt(plan, x);
        if (r.feasible) {
          feas = x[i];
          best = std::move(r);
          break;
        }
        infeas = x[i];
      }
      if (std::isnan(feas)) continue;  // nothing feasible along this axis
      if (!std::isnan(infeas)) {
        double flo = feas, fhi = infeas;
        for (int b = 0; b < kBisect; ++b) {
          const double mid = 0.5 * (flo + fhi);
          x[i] = mid;
          ExecutionReport r = attempt(plan, x);
          if (r.feasible) {
            flo = mid;
            best = std::move(r);
          } else {
            fhi = mid;
          }
        }
        x[i] = flo;
      } else {
        x[i] = feas;
      }
      improved = true;
    }
    if (best.feasible || !improved) break;
  }
  if (!best.feasible && best.failure.empty()) {
    best.failure = "no feasible choice of production amounts";
  }
  if (!best.feasible) {
    SEKITEI_LOG_DEBUG("sim.executor", "plan infeasible", log::kv("steps", plan.steps.size()),
                      log::kv("reason", best.failure));
  }
  return best;
}

}  // namespace sekitei::sim
