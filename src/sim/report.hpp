// Deployment rendering: turn an executed plan into operator-facing artifacts
// — a Graphviz diagram of the deployment (components on nodes, streams on
// links, reservations as labels) and a plain-text summary table.
#pragma once

#include <string>

#include "core/plan.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"

namespace sekitei::sim {

/// Graphviz digraph: network nodes annotated with the components the plan
/// places on them, link edges labelled with the streams crossing and the
/// bandwidth reserved.
[[nodiscard]] std::string deployment_to_dot(const model::CompiledProblem& cp,
                                            const core::Plan& plan,
                                            const ExecutionReport& report);

/// Multi-line text summary: placements, crossings, reservations, cost.
[[nodiscard]] std::string deployment_summary(const model::CompiledProblem& cp,
                                             const core::Plan& plan,
                                             const ExecutionReport& report);

}  // namespace sekitei::sim
