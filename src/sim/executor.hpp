// Concrete deployment execution.
//
// The planner reasons over intervals; the executor turns an accepted plan
// into an actual deployment with concrete numbers:
//   * initial-state *choice* intervals (e.g. the server's [0,200] production)
//     are resolved greedily within the plan's levels — maximise the amount,
//     exactly the paper's greedy-within-level reservation that makes
//     scenario B process 100 units and scenario C reserve 65 LAN units;
//   * when the maximum violates a condition, monotone bisection finds the
//     highest feasible amount (the soundness premise of Section 2.2 makes
//     feasibility monotone below the failure point);
//   * every action's conditions are re-checked with concrete values, so an
//     execution report is an independent proof that the plan is real.
//
// The executor doubles as the planner's validation hook: Sekitei rejects
// plan candidates the executor cannot realize.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "model/compile.hpp"

namespace sekitei::sim {

struct LinkUse {
  LinkId link;
  net::LinkClass cls = net::LinkClass::Other;
  double used = 0.0;  // bandwidth reserved on this link by the plan
};

struct NodeUse {
  NodeId node;
  double used = 0.0;  // cpu consumed on this node by the plan
};

struct ExecutionReport {
  bool feasible = false;
  std::string failure;

  /// Chosen values for the initial-state choice intervals, in init_map order.
  std::vector<double> choices;

  /// Realized plan cost (sum of per-action cost formulae at concrete values).
  double actual_cost = 0.0;

  std::vector<LinkUse> link_use;   // only links actually touched
  std::vector<NodeUse> node_use;   // only nodes actually touched

  /// Maximum bandwidth reserved on any link of the class — Table 2's
  /// "reserved LAN bw" column.  0 when no such link is used.
  [[nodiscard]] double max_reserved(net::LinkClass cls) const;
  /// Total bandwidth reserved across links of the class.
  [[nodiscard]] double total_reserved(net::LinkClass cls) const;

  /// Value of a located variable after execution (NaN if untouched).
  [[nodiscard]] double final_value(VarId v) const;

  std::vector<std::pair<VarId, double>> final_vars;
};

class Executor {
 public:
  explicit Executor(const model::CompiledProblem& cp) : cp_(cp) {}

  /// Executes the plan, resolving choices greedily (see file comment).
  [[nodiscard]] ExecutionReport execute(const core::Plan& plan);

  /// Executes with fixed choice values (init_map order of non-point
  /// entries); used by execute() and directly by tests.
  [[nodiscard]] ExecutionReport attempt(const core::Plan& plan,
                                        std::span<const double> choices);

  /// Number of choice variables in the problem's initial state.
  [[nodiscard]] std::size_t choice_count() const;

  /// Total attempt() invocations (the grid/bisection probes behind
  /// execute()) over this executor's lifetime.
  [[nodiscard]] std::uint64_t attempts() const { return attempts_; }

 private:
  const model::CompiledProblem& cp_;
  std::uint64_t attempts_ = 0;
};

}  // namespace sekitei::sim
