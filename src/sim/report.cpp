#include "sim/report.hpp"

#include <map>
#include <set>
#include <sstream>

namespace sekitei::sim {

namespace {

/// Components placed per node and stream names crossing per link.
struct DeploymentView {
  std::map<std::uint32_t, std::vector<std::string>> node_components;
  std::map<std::uint32_t, std::set<std::string>> link_streams;
};

DeploymentView view_of(const model::CompiledProblem& cp, const core::Plan& plan) {
  DeploymentView v;
  for (ActionId a : plan.steps) {
    const model::GroundAction& act = cp.actions[a.index()];
    if (act.kind == model::ActionKind::Place) {
      v.node_components[act.node.index()].push_back(
          cp.domain->component_at(act.spec_index).name);
    } else {
      v.link_streams[act.link.index()].insert(cp.iface_names[act.spec_index]);
    }
  }
  return v;
}

double link_reserved(const ExecutionReport& rep, LinkId l) {
  for (const LinkUse& u : rep.link_use) {
    if (u.link == l) return u.used;
  }
  return 0.0;
}

}  // namespace

std::string deployment_to_dot(const model::CompiledProblem& cp, const core::Plan& plan,
                              const ExecutionReport& report) {
  const DeploymentView v = view_of(cp, plan);
  std::ostringstream os;
  os << "graph deployment {\n  node [shape=box fontsize=9];\n";
  for (NodeId n : cp.net->node_ids()) {
    auto it = v.node_components.find(n.index());
    os << "  \"" << cp.net->node(n).name << "\" [label=\"" << cp.net->node(n).name;
    if (it != v.node_components.end()) {
      for (const std::string& c : it->second) os << "\\n" << c;
    }
    os << "\"";
    if (it != v.node_components.end()) os << " style=filled fillcolor=lightblue";
    os << "];\n";
  }
  for (LinkId l : cp.net->link_ids()) {
    const net::Link& link = cp.net->link(l);
    os << "  \"" << cp.net->node(link.a).name << "\" -- \"" << cp.net->node(link.b).name
       << "\"";
    auto it = v.link_streams.find(l.index());
    if (it != v.link_streams.end()) {
      os << " [label=\"";
      bool first = true;
      for (const std::string& s : it->second) {
        os << (first ? "" : "+") << s;
        first = false;
      }
      os << " (" << link_reserved(report, l) << ")\" penwidth=2 color=blue]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string deployment_summary(const model::CompiledProblem& cp, const core::Plan& plan,
                               const ExecutionReport& report) {
  const DeploymentView v = view_of(cp, plan);
  std::ostringstream os;
  os << "deployment of " << plan.size() << " actions, realized cost " << report.actual_cost
     << "\n";
  for (const auto& [node, comps] : v.node_components) {
    os << "  " << cp.net->node(NodeId(node)).name << ":";
    for (const std::string& c : comps) os << ' ' << c;
    os << "\n";
  }
  for (const auto& [link, streams] : v.link_streams) {
    const net::Link& l = cp.net->link(LinkId(link));
    os << "  " << cp.net->node(l.a).name << "-" << cp.net->node(l.b).name << ":";
    for (const std::string& s : streams) os << ' ' << s;
    os << "  (" << link_reserved(report, LinkId(link)) << " reserved)\n";
  }
  return os.str();
}

}  // namespace sekitei::sim
