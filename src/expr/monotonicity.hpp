// Syntactic monotonicity analysis of specification formulae.
//
// Sekitei's soundness premise (Section 2.2) is that resource functions are
// monotone: pushing more data through a component never yields less output.
// The paper also notes that degradability/upgradability tags "can be obtained
// automatically by syntactic analysis of the problem specification".  This
// module implements that analysis: it derives, for each role variable, the
// direction in which an expression moves when the variable grows.
#pragma once

#include <map>
#include <string>

#include "expr/ast.hpp"

namespace sekitei::expr {

/// Direction of an expression as a function of one variable.
enum class Direction : unsigned char {
  Constant,       // does not depend on the variable
  NonDecreasing,  // grows (weakly) with the variable
  NonIncreasing,  // shrinks (weakly) with the variable
  Unknown,        // cannot be established syntactically
};

[[nodiscard]] const char* direction_name(Direction d);

/// Combines directions of two sub-expressions under addition.
[[nodiscard]] Direction combine_add(Direction a, Direction b);
/// Flips a direction (negation / subtraction RHS / division denominator).
[[nodiscard]] Direction flip(Direction d);

/// Map from role-variable spelling ("T.ibw") to derived direction.
using DirectionMap = std::map<std::string, Direction>;

/// Analyzes `ast` and returns the direction of the whole expression with
/// respect to every role variable it mentions.
[[nodiscard]] DirectionMap analyze(const Node& ast);

/// True when the expression is (weakly) monotone — in *some* direction — in
/// every variable it mentions.  This is the check a spec loader runs to
/// enforce the paper's "only restriction on such functions is monotonicity".
[[nodiscard]] bool is_monotone(const Node& ast);

}  // namespace sekitei::expr
