#include "expr/ast.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace sekitei::expr {

double TableData::eval(double x) const {
  SEKITEI_ASSERT(!xs.empty() && xs.size() == ys.size());
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t i = static_cast<std::size_t>(it - xs.begin());
  const double x0 = xs[i - 1], x1 = xs[i];
  const double y0 = ys[i - 1], y1 = ys[i];
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

bool TableData::is_monotone_nondecreasing() const {
  for (std::size_t i = 1; i < ys.size(); ++i) {
    if (ys[i] < ys[i - 1]) return false;
  }
  return true;
}

bool TableData::is_monotone_nonincreasing() const {
  for (std::size_t i = 1; i < ys.size(); ++i) {
    if (ys[i] > ys[i - 1]) return false;
  }
  return true;
}

NodePtr make_const(double v) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::Const;
  n->value = v;
  return n;
}

NodePtr make_var(RoleRef ref) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::Var;
  n->ref = std::move(ref);
  return n;
}

NodePtr make_unary(NodeKind k, NodePtr a) {
  auto n = std::make_unique<Node>();
  n->kind = k;
  n->a = std::move(a);
  return n;
}

NodePtr make_binary(NodeKind k, NodePtr a, NodePtr b) {
  auto n = std::make_unique<Node>();
  n->kind = k;
  n->a = std::move(a);
  n->b = std::move(b);
  return n;
}

NodePtr clone(const Node& n) {
  auto out = std::make_unique<Node>();
  out->kind = n.kind;
  out->value = n.value;
  out->ref = n.ref;
  out->table = n.table;
  if (n.a) out->a = clone(*n.a);
  if (n.b) out->b = clone(*n.b);
  return out;
}

std::string Node::str() const {
  std::ostringstream os;
  switch (kind) {
    case NodeKind::Const: os << value; break;
    case NodeKind::Var: os << ref.str(); break;
    case NodeKind::Neg: os << "-(" << a->str() << ")"; break;
    case NodeKind::Add: os << "(" << a->str() << " + " << b->str() << ")"; break;
    case NodeKind::Sub: os << "(" << a->str() << " - " << b->str() << ")"; break;
    case NodeKind::Mul: os << "(" << a->str() << " * " << b->str() << ")"; break;
    case NodeKind::Div: os << "(" << a->str() << " / " << b->str() << ")"; break;
    case NodeKind::Min: os << "min(" << a->str() << ", " << b->str() << ")"; break;
    case NodeKind::Max: os << "max(" << a->str() << ", " << b->str() << ")"; break;
    case NodeKind::Table: {
      os << "table(" << a->str() << ";";
      for (std::size_t i = 0; i < table.xs.size(); ++i) {
        os << (i ? ", " : " ") << table.xs[i] << ":" << table.ys[i];
      }
      os << ")";
      break;
    }
  }
  return os.str();
}

const char* cmp_name(CmpOp op) {
  switch (op) {
    case CmpOp::Ge: return ">=";
    case CmpOp::Le: return "<=";
    case CmpOp::Gt: return ">";
    case CmpOp::Lt: return "<";
    case CmpOp::Eq: return "==";
    case CmpOp::Ne: return "!=";
  }
  return "?";
}

std::string ConditionAst::str() const {
  return lhs->str() + " " + cmp_name(op) + " " + rhs->str();
}

std::string EffectAst::str() const {
  const char* op_s = op == AssignOp::Set ? ":=" : (op == AssignOp::Add ? "+=" : "-=");
  return target.str() + " " + op_s + " " + value->str();
}

}  // namespace sekitei::expr
