// Tokens shared by the expression parser and the specification DSL parser.
#pragma once

#include <cstdint>
#include <string>

namespace sekitei::expr {

enum class Tok : std::uint8_t {
  End,
  Ident,      // bare identifier: Merger, ibw, node, ...
  Number,     // numeric literal (double)
  Dot,        // .
  Comma,      // ,
  Semi,       // ;
  Colon,      // :
  LParen,     // (
  RParen,     // )
  LBrace,     // {
  RBrace,     // }
  LBracket,   // [
  RBracket,   // ]
  Prime,      // '
  Plus,       // +
  Minus,      // -
  Star,       // *
  Slash,      // /
  Assign,     // :=
  PlusEq,     // +=
  MinusEq,    // -=
  Ge,         // >=
  Le,         // <=
  Gt,         // >
  Lt,         // <
  EqEq,       // ==
  Ne,         // !=
  Eq,         // =   (only used by `param name = value;`)
};

struct Token {
  Tok kind = Tok::End;
  std::string text;    // identifier spelling
  double number = 0.0; // numeric value for Tok::Number
  int line = 1;        // 1-based source line, for diagnostics
};

[[nodiscard]] const char* tok_name(Tok t);

}  // namespace sekitei::expr
