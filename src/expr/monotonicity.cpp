#include "expr/monotonicity.hpp"

#include "support/error.hpp"

namespace sekitei::expr {

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::Constant: return "constant";
    case Direction::NonDecreasing: return "non-decreasing";
    case Direction::NonIncreasing: return "non-increasing";
    case Direction::Unknown: return "unknown";
  }
  return "?";
}

Direction combine_add(Direction a, Direction b) {
  if (a == Direction::Constant) return b;
  if (b == Direction::Constant) return a;
  if (a == b) return a;
  return Direction::Unknown;
}

Direction flip(Direction d) {
  switch (d) {
    case Direction::NonDecreasing: return Direction::NonIncreasing;
    case Direction::NonIncreasing: return Direction::NonDecreasing;
    default: return d;
  }
}

namespace {

/// Sign of an expression's possible values, derived syntactically; needed to
/// reason about multiplication.
enum class Sign : unsigned char { NonNeg, NonPos, Zero, Any };

Sign sign_of(const Node& n) {
  switch (n.kind) {
    case NodeKind::Const:
      if (n.value > 0) return Sign::NonNeg;
      if (n.value < 0) return Sign::NonPos;
      return Sign::Zero;
    case NodeKind::Var:
      // Resources and stream properties are non-negative quantities.
      return Sign::NonNeg;
    case NodeKind::Neg: {
      const Sign s = sign_of(*n.a);
      if (s == Sign::NonNeg) return Sign::NonPos;
      if (s == Sign::NonPos) return Sign::NonNeg;
      return s;
    }
    case NodeKind::Add: {
      const Sign a = sign_of(*n.a), b = sign_of(*n.b);
      if (a == Sign::Zero) return b;
      if (b == Sign::Zero) return a;
      return a == b ? a : Sign::Any;
    }
    case NodeKind::Sub: {
      const Sign a = sign_of(*n.a), b = sign_of(*n.b);
      if (b == Sign::Zero) return a;
      if (a == Sign::NonNeg && b == Sign::NonPos) return Sign::NonNeg;
      if (a == Sign::NonPos && b == Sign::NonNeg) return Sign::NonPos;
      return Sign::Any;
    }
    case NodeKind::Mul:
    case NodeKind::Div: {
      const Sign a = sign_of(*n.a), b = sign_of(*n.b);
      if (a == Sign::Zero) return Sign::Zero;
      if (n.kind == NodeKind::Mul && b == Sign::Zero) return Sign::Zero;
      if (a == Sign::Any || b == Sign::Any) return Sign::Any;
      const bool aneg = a == Sign::NonPos, bneg = b == Sign::NonPos;
      return (aneg != bneg) ? Sign::NonPos : Sign::NonNeg;
    }
    case NodeKind::Min:
    case NodeKind::Max: {
      const Sign a = sign_of(*n.a), b = sign_of(*n.b);
      if (a == b) return a;
      if (a == Sign::Zero) return b;
      if (b == Sign::Zero) return a;
      return Sign::Any;
    }
    case NodeKind::Table: {
      bool nonneg = true, nonpos = true;
      for (double y : n.table.ys) {
        nonneg = nonneg && y >= 0;
        nonpos = nonpos && y <= 0;
      }
      if (nonneg && nonpos) return Sign::Zero;
      if (nonneg) return Sign::NonNeg;
      if (nonpos) return Sign::NonPos;
      return Sign::Any;
    }
  }
  return Sign::Any;
}

Direction direction_wrt(const Node& n, const std::string& var) {
  switch (n.kind) {
    case NodeKind::Const:
      return Direction::Constant;
    case NodeKind::Var:
      return n.ref.str() == var ? Direction::NonDecreasing : Direction::Constant;
    case NodeKind::Neg:
      return flip(direction_wrt(*n.a, var));
    case NodeKind::Add:
      return combine_add(direction_wrt(*n.a, var), direction_wrt(*n.b, var));
    case NodeKind::Sub:
      return combine_add(direction_wrt(*n.a, var), flip(direction_wrt(*n.b, var)));
    case NodeKind::Mul: {
      const Direction da = direction_wrt(*n.a, var);
      const Direction db = direction_wrt(*n.b, var);
      const Sign sa = sign_of(*n.a), sb = sign_of(*n.b);
      auto scaled = [](Direction d, Sign s) {
        if (d == Direction::Constant) return Direction::Constant;
        if (s == Sign::NonNeg || s == Sign::Zero) return d;
        if (s == Sign::NonPos) return flip(d);
        return Direction::Unknown;
      };
      return combine_add(scaled(da, sb), scaled(db, sa));
    }
    case NodeKind::Div: {
      const Direction da = direction_wrt(*n.a, var);
      const Direction db = direction_wrt(*n.b, var);
      const Sign sa = sign_of(*n.a), sb = sign_of(*n.b);
      auto scaled = [](Direction d, Sign s) {
        if (d == Direction::Constant) return Direction::Constant;
        if (s == Sign::NonNeg || s == Sign::Zero) return d;
        if (s == Sign::NonPos) return flip(d);
        return Direction::Unknown;
      };
      // a/b grows with a (for b>=0) and shrinks as b grows (for a>=0).
      return combine_add(scaled(da, sb), scaled(flip(db), sa));
    }
    case NodeKind::Min:
    case NodeKind::Max:
      return combine_add(direction_wrt(*n.a, var), direction_wrt(*n.b, var));
    case NodeKind::Table: {
      const Direction inner = direction_wrt(*n.a, var);
      if (inner == Direction::Constant) return Direction::Constant;
      if (n.table.is_monotone_nondecreasing()) return inner;
      if (n.table.is_monotone_nonincreasing()) return flip(inner);
      return Direction::Unknown;
    }
  }
  return Direction::Unknown;
}

void collect_vars(const Node& n, DirectionMap& out) {
  switch (n.kind) {
    case NodeKind::Var:
      out.emplace(n.ref.str(), Direction::Constant);
      break;
    case NodeKind::Const:
      break;
    default:
      if (n.a) collect_vars(*n.a, out);
      if (n.b) collect_vars(*n.b, out);
  }
}

}  // namespace

DirectionMap analyze(const Node& ast) {
  DirectionMap vars;
  collect_vars(ast, vars);
  for (auto& [name, dir] : vars) dir = direction_wrt(ast, name);
  return vars;
}

bool is_monotone(const Node& ast) {
  for (const auto& [name, dir] : analyze(ast)) {
    if (dir == Direction::Unknown) return false;
  }
  return true;
}

}  // namespace sekitei::expr
