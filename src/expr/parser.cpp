#include "expr/parser.hpp"

#include <sstream>

#include "support/error.hpp"

namespace sekitei::expr {

namespace {

NodePtr parse_factor(Lexer& lex, const ParamTable& params);

NodePtr parse_term(Lexer& lex, const ParamTable& params) {
  NodePtr n = parse_factor(lex, params);
  for (;;) {
    if (lex.accept(Tok::Star)) {
      n = make_binary(NodeKind::Mul, std::move(n), parse_factor(lex, params));
    } else if (lex.accept(Tok::Slash)) {
      n = make_binary(NodeKind::Div, std::move(n), parse_factor(lex, params));
    } else {
      return n;
    }
  }
}

NodePtr parse_sum(Lexer& lex, const ParamTable& params) {
  NodePtr n = parse_term(lex, params);
  for (;;) {
    if (lex.accept(Tok::Plus)) {
      n = make_binary(NodeKind::Add, std::move(n), parse_term(lex, params));
    } else if (lex.accept(Tok::Minus)) {
      n = make_binary(NodeKind::Sub, std::move(n), parse_term(lex, params));
    } else {
      return n;
    }
  }
}

RoleRef parse_role_tail(Lexer& lex, std::string scope) {
  lex.expect(Tok::Dot);
  RoleRef ref;
  ref.scope = std::move(scope);
  ref.prop = lex.expect(Tok::Ident).text;
  ref.primed = lex.accept(Tok::Prime);
  return ref;
}

NodePtr parse_factor(Lexer& lex, const ParamTable& params) {
  const Token& t = lex.peek();
  switch (t.kind) {
    case Tok::Number: {
      const double v = lex.next().number;
      return make_const(v);
    }
    case Tok::Minus: {
      lex.next();
      return make_unary(NodeKind::Neg, parse_factor(lex, params));
    }
    case Tok::LParen: {
      lex.next();
      NodePtr n = parse_sum(lex, params);
      lex.expect(Tok::RParen);
      return n;
    }
    case Tok::Ident: {
      const std::string name = lex.next().text;
      if (name == "min" || name == "max") {
        lex.expect(Tok::LParen);
        NodePtr a = parse_sum(lex, params);
        lex.expect(Tok::Comma);
        NodePtr b = parse_sum(lex, params);
        lex.expect(Tok::RParen);
        return make_binary(name == "min" ? NodeKind::Min : NodeKind::Max, std::move(a),
                           std::move(b));
      }
      if (name == "table") {
        lex.expect(Tok::LParen);
        NodePtr inner = parse_sum(lex, params);
        lex.expect(Tok::Semi);
        TableData tab;
        do {
          const double x = lex.expect(Tok::Number).number;
          lex.expect(Tok::Colon);
          double sign = lex.accept(Tok::Minus) ? -1.0 : 1.0;
          const double y = sign * lex.expect(Tok::Number).number;
          if (!tab.xs.empty() && x <= tab.xs.back()) {
            raise("table breakpoints must be strictly increasing (line " +
                  std::to_string(lex.line()) + ")");
          }
          tab.xs.push_back(x);
          tab.ys.push_back(y);
        } while (lex.accept(Tok::Comma));
        lex.expect(Tok::RParen);
        auto n = make_unary(NodeKind::Table, std::move(inner));
        n->table = std::move(tab);
        return n;
      }
      if (lex.peek().kind == Tok::Dot) {
        return make_var(parse_role_tail(lex, name));
      }
      // Bare identifier: a named parameter, folded to a constant.
      auto it = params.find(name);
      if (it == params.end()) {
        raise("unknown parameter '" + name + "' at line " + std::to_string(t.line));
      }
      return make_const(it->second);
    }
    default: {
      std::ostringstream os;
      os << "parse error at line " << t.line << ": expected an expression, found "
         << tok_name(t.kind);
      raise(os.str());
    }
  }
}

}  // namespace

NodePtr parse_expr(Lexer& lex, const ParamTable& params) { return parse_sum(lex, params); }

ConditionAst parse_condition(Lexer& lex, const ParamTable& params) {
  ConditionAst c;
  c.lhs = parse_sum(lex, params);
  switch (lex.peek().kind) {
    case Tok::Ge: c.op = CmpOp::Ge; break;
    case Tok::Le: c.op = CmpOp::Le; break;
    case Tok::Gt: c.op = CmpOp::Gt; break;
    case Tok::Lt: c.op = CmpOp::Lt; break;
    case Tok::EqEq: c.op = CmpOp::Eq; break;
    case Tok::Ne: c.op = CmpOp::Ne; break;
    default:
      raise("parse error at line " + std::to_string(lex.line()) +
            ": expected a comparison operator");
  }
  lex.next();
  c.rhs = parse_sum(lex, params);
  return c;
}

EffectAst parse_effect(Lexer& lex, const ParamTable& params) {
  EffectAst e;
  const std::string scope = lex.expect(Tok::Ident).text;
  e.target = parse_role_tail(lex, scope);
  switch (lex.peek().kind) {
    case Tok::Assign: e.op = AssignOp::Set; break;
    case Tok::PlusEq: e.op = AssignOp::Add; break;
    case Tok::MinusEq: e.op = AssignOp::Sub; break;
    default:
      raise("parse error at line " + std::to_string(lex.line()) +
            ": expected ':=', '+=' or '-='");
  }
  lex.next();
  e.value = parse_sum(lex, params);
  return e;
}

NodePtr parse_expr_string(const std::string& src, const ParamTable& params) {
  Lexer lex(src);
  NodePtr n = parse_expr(lex, params);
  if (!lex.at_end()) raise("trailing tokens after expression: " + src);
  return n;
}

ConditionAst parse_condition_string(const std::string& src, const ParamTable& params) {
  Lexer lex(src);
  ConditionAst c = parse_condition(lex, params);
  if (!lex.at_end()) raise("trailing tokens after condition: " + src);
  return c;
}

}  // namespace sekitei::expr
