// Hand-written lexer for the specification DSL and its embedded expressions.
//
// Comment syntax: `#` and `//` to end of line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "expr/token.hpp"

namespace sekitei::expr {

class Lexer {
 public:
  explicit Lexer(std::string_view src);

  /// Current token (never past End).
  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
  /// Lookahead by `n` tokens.
  [[nodiscard]] const Token& peek(std::size_t n) const;
  /// Consumes and returns the current token.
  const Token& next();
  /// Consumes the current token iff it has kind `k`.
  bool accept(Tok k);
  /// Consumes the current token, raising a descriptive Error unless kind `k`.
  const Token& expect(Tok k);
  /// Consumes an Ident with exactly this spelling, or raises.
  void expect_keyword(std::string_view kw);
  /// True when the current token is an Ident spelled `kw`.
  [[nodiscard]] bool at_keyword(std::string_view kw) const;
  /// Consumes the keyword iff present.
  bool accept_keyword(std::string_view kw);

  [[nodiscard]] bool at_end() const { return peek().kind == Tok::End; }
  [[nodiscard]] int line() const { return peek().line; }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace sekitei::expr
