// Compiled expression programs.
//
// Specification ASTs are compiled once per spec into flat postfix programs
// whose variable references are *slots* (small dense indices).  A ground
// action then carries only a slot->VarId binding vector; the hot planner
// paths (optimistic-map replay, concrete simulation) evaluate these programs
// with no allocation, no string handling, and no pointer chasing.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "expr/ast.hpp"
#include "support/interval.hpp"

namespace sekitei::expr {

enum class Op : std::uint8_t {
  PushConst,  // arg = index into consts
  PushVar,    // arg = slot index
  Neg,
  Add, Sub, Mul, Div,
  Min, Max,
  Table,      // arg = index into tables
};

struct Instr {
  Op op;
  std::uint32_t arg = 0;
};

/// Resolver mapping a role reference to a slot index.  Raises on unknown
/// roles.  Called at compile time only.
using SlotResolver = std::function<std::uint32_t(const RoleRef&)>;

class Program {
 public:
  Program() = default;

  /// Compiles `ast`, resolving role references through `resolve`.
  static Program compile(const Node& ast, const SlotResolver& resolve);

  /// Evaluates with concrete slot values.
  [[nodiscard]] double eval(std::span<const double> slots) const;

  /// Evaluates over intervals (exact for monotone expressions, conservative
  /// otherwise).  This is the engine behind optimistic resource maps.
  [[nodiscard]] Interval eval_interval(std::span<const Interval> slots) const;

  /// True when the program reads no variables (a constant).
  [[nodiscard]] bool is_constant() const;

  /// Highest slot index used + 1 (0 when constant).
  [[nodiscard]] std::uint32_t slot_count() const { return slot_count_; }

  /// Slots this program reads.
  [[nodiscard]] std::vector<std::uint32_t> used_slots() const;

  /// If the program is exactly `PushVar s`, returns s, else UINT32_MAX.
  [[nodiscard]] std::uint32_t single_var_slot() const;

  [[nodiscard]] const std::vector<Instr>& instrs() const { return instrs_; }

 private:
  std::vector<Instr> instrs_;
  std::vector<double> consts_;
  std::vector<TableData> tables_;
  std::uint32_t slot_count_ = 0;
};

/// Compiled condition: lhs <cmp> rhs over a shared slot space.
struct CompiledCondition {
  Program lhs;
  CmpOp op = CmpOp::Ge;
  Program rhs;
  std::string source;  // original text for diagnostics

  /// Does the condition hold for concrete values?
  [[nodiscard]] bool holds(std::span<const double> slots) const;

  /// Can the condition hold for *some* choice within the intervals?  Used by
  /// the optimistic replay: a condition that cannot hold prunes the branch.
  [[nodiscard]] bool satisfiable(std::span<const Interval> slots) const;

  /// Does the condition hold for *every* choice within the intervals?  Used
  /// by the greedy (original-Sekitei) mode, which must be robust against the
  /// worst case.
  [[nodiscard]] bool certain(std::span<const Interval> slots) const;
};

/// Compiled effect: slot `target` <op>= value.
struct CompiledEffect {
  std::uint32_t target = 0;
  AssignOp op = AssignOp::Set;
  Program value;
  std::string source;

  void apply(std::span<double> slots) const;
  void apply_interval(std::span<Interval> slots) const;
};

}  // namespace sekitei::expr
