#include "expr/program.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace sekitei::expr {

Program Program::compile(const Node& ast, const SlotResolver& resolve) {
  Program p;
  std::uint32_t max_slot = 0;
  // Explicit-stack-free recursive compile; spec expressions are tiny.
  struct Rec {
    const SlotResolver& resolve;
    Program& p;
    std::uint32_t& max_slot;
    void go(const Node& n) {
      switch (n.kind) {
        case NodeKind::Const:
          p.instrs_.push_back({Op::PushConst, static_cast<std::uint32_t>(p.consts_.size())});
          p.consts_.push_back(n.value);
          break;
        case NodeKind::Var: {
          const std::uint32_t slot = resolve(n.ref);
          p.instrs_.push_back({Op::PushVar, slot});
          max_slot = std::max(max_slot, slot + 1);
          break;
        }
        case NodeKind::Neg:
          go(*n.a);
          p.instrs_.push_back({Op::Neg, 0});
          break;
        case NodeKind::Add:
        case NodeKind::Sub:
        case NodeKind::Mul:
        case NodeKind::Div:
        case NodeKind::Min:
        case NodeKind::Max: {
          go(*n.a);
          go(*n.b);
          Op op = Op::Add;
          switch (n.kind) {
            case NodeKind::Add: op = Op::Add; break;
            case NodeKind::Sub: op = Op::Sub; break;
            case NodeKind::Mul: op = Op::Mul; break;
            case NodeKind::Div: op = Op::Div; break;
            case NodeKind::Min: op = Op::Min; break;
            case NodeKind::Max: op = Op::Max; break;
            default: break;
          }
          p.instrs_.push_back({op, 0});
          break;
        }
        case NodeKind::Table:
          go(*n.a);
          p.instrs_.push_back({Op::Table, static_cast<std::uint32_t>(p.tables_.size())});
          p.tables_.push_back(n.table);
          break;
      }
    }
  } rec{resolve, p, max_slot};
  rec.go(ast);
  p.slot_count_ = max_slot;
  return p;
}

double Program::eval(std::span<const double> slots) const {
  // Fixed-size evaluation stack; spec formulae never nest deeper than this.
  double stack[64];
  std::size_t sp = 0;
  for (const Instr& ins : instrs_) {
    switch (ins.op) {
      case Op::PushConst: stack[sp++] = consts_[ins.arg]; break;
      case Op::PushVar: stack[sp++] = slots[ins.arg]; break;
      case Op::Neg: stack[sp - 1] = -stack[sp - 1]; break;
      case Op::Add: stack[sp - 2] += stack[sp - 1]; --sp; break;
      case Op::Sub: stack[sp - 2] -= stack[sp - 1]; --sp; break;
      case Op::Mul: stack[sp - 2] *= stack[sp - 1]; --sp; break;
      case Op::Div: stack[sp - 2] /= stack[sp - 1]; --sp; break;
      case Op::Min: stack[sp - 2] = std::min(stack[sp - 2], stack[sp - 1]); --sp; break;
      case Op::Max: stack[sp - 2] = std::max(stack[sp - 2], stack[sp - 1]); --sp; break;
      case Op::Table: stack[sp - 1] = tables_[ins.arg].eval(stack[sp - 1]); break;
    }
    SEKITEI_ASSERT(sp <= 64);
  }
  SEKITEI_ASSERT(sp == 1);
  return stack[0];
}

Interval Program::eval_interval(std::span<const Interval> slots) const {
  Interval stack[64];
  std::size_t sp = 0;
  for (const Instr& ins : instrs_) {
    switch (ins.op) {
      case Op::PushConst: stack[sp++] = Interval::point(consts_[ins.arg]); break;
      case Op::PushVar: stack[sp++] = slots[ins.arg]; break;
      case Op::Neg: stack[sp - 1] = -stack[sp - 1]; break;
      case Op::Add: stack[sp - 2] = stack[sp - 2] + stack[sp - 1]; --sp; break;
      case Op::Sub: stack[sp - 2] = stack[sp - 2] - stack[sp - 1]; --sp; break;
      case Op::Mul: stack[sp - 2] = stack[sp - 2] * stack[sp - 1]; --sp; break;
      case Op::Div: stack[sp - 2] = stack[sp - 2] / stack[sp - 1]; --sp; break;
      case Op::Min: stack[sp - 2] = imin(stack[sp - 2], stack[sp - 1]); --sp; break;
      case Op::Max: stack[sp - 2] = imax(stack[sp - 2], stack[sp - 1]); --sp; break;
      case Op::Table: {
        // Exact range of a piecewise-linear function over an interval: the
        // extrema lie at clamped endpoints or interior breakpoints.
        const TableData& t = tables_[ins.arg];
        const Interval in = stack[sp - 1];
        if (in.is_empty()) break;  // propagate empty unchanged
        double lo = std::min(t.eval(in.lo), t.eval(in.hi == kInf ? t.xs.back() : in.hi));
        double hi = std::max(t.eval(in.lo), t.eval(in.hi == kInf ? t.xs.back() : in.hi));
        for (std::size_t i = 0; i < t.xs.size(); ++i) {
          if (t.xs[i] > in.lo && t.xs[i] < in.hi) {
            lo = std::min(lo, t.ys[i]);
            hi = std::max(hi, t.ys[i]);
          }
        }
        stack[sp - 1] = {lo, hi};
        break;
      }
    }
    SEKITEI_ASSERT(sp <= 64);
  }
  SEKITEI_ASSERT(sp == 1);
  return stack[0];
}

bool Program::is_constant() const {
  return std::none_of(instrs_.begin(), instrs_.end(),
                      [](const Instr& i) { return i.op == Op::PushVar; });
}

std::vector<std::uint32_t> Program::used_slots() const {
  std::vector<std::uint32_t> out;
  for (const Instr& i : instrs_) {
    if (i.op == Op::PushVar) {
      if (std::find(out.begin(), out.end(), i.arg) == out.end()) out.push_back(i.arg);
    }
  }
  return out;
}

std::uint32_t Program::single_var_slot() const {
  if (instrs_.size() == 1 && instrs_[0].op == Op::PushVar) return instrs_[0].arg;
  return UINT32_MAX;
}

bool CompiledCondition::holds(std::span<const double> slots) const {
  const double l = lhs.eval(slots);
  const double r = rhs.eval(slots);
  // A small tolerance keeps profiled equality constraints (T*3 == I*7) from
  // failing on floating-point dust.
  constexpr double kEps = 1e-9;
  switch (op) {
    case CmpOp::Ge: return l >= r - kEps;
    case CmpOp::Le: return l <= r + kEps;
    case CmpOp::Gt: return l > r - kEps;
    case CmpOp::Lt: return l < r + kEps;
    case CmpOp::Eq: return std::abs(l - r) <= kEps * std::max({1.0, std::abs(l), std::abs(r)});
    case CmpOp::Ne: return std::abs(l - r) > kEps;
  }
  return false;
}

bool CompiledCondition::satisfiable(std::span<const Interval> slots) const {
  const Interval l = lhs.eval_interval(slots);
  const Interval r = rhs.eval_interval(slots);
  if (l.is_empty() || r.is_empty()) return false;
  switch (op) {
    case CmpOp::Ge:
      // sup(l) must reach inf(r) attainably: a level [0,90) can never meet a
      // ">= 90" demand (the load-bearing half-open semantics).
      return l.hi > r.lo || (l.hi == r.lo && !l.hi_open);
    case CmpOp::Gt:
      return l.hi > r.lo;
    case CmpOp::Le:
      return l.lo < r.hi || (l.lo == r.hi && !r.hi_open);
    case CmpOp::Lt:
      return l.lo < r.hi;
    case CmpOp::Eq:
      return !intersect(l, r).is_empty();
    case CmpOp::Ne:
      return !(l.is_point() && r.is_point() && l.lo == r.lo);
  }
  return false;
}

bool CompiledCondition::certain(std::span<const Interval> slots) const {
  const Interval l = lhs.eval_interval(slots);
  const Interval r = rhs.eval_interval(slots);
  if (l.is_empty() || r.is_empty()) return false;
  switch (op) {
    case CmpOp::Ge:
      return l.lo >= r.hi;
    case CmpOp::Gt:
      return l.lo > r.hi || (l.lo == r.hi && r.hi_open);
    case CmpOp::Le:
      return l.hi <= r.lo;
    case CmpOp::Lt:
      return l.hi < r.lo || (l.hi == r.lo && l.hi_open);
    case CmpOp::Eq:
      return l.is_point() && r.is_point() && l.lo == r.lo;
    case CmpOp::Ne:
      return intersect(l, r).is_empty();
  }
  return false;
}

void CompiledEffect::apply(std::span<double> slots) const {
  const double v = value.eval(slots);
  switch (op) {
    case AssignOp::Set: slots[target] = v; break;
    case AssignOp::Add: slots[target] += v; break;
    case AssignOp::Sub: slots[target] -= v; break;
  }
}

void CompiledEffect::apply_interval(std::span<Interval> slots) const {
  const Interval v = value.eval_interval(slots);
  switch (op) {
    case AssignOp::Set: slots[target] = v; break;
    case AssignOp::Add: slots[target] = slots[target] + v; break;
    case AssignOp::Sub: slots[target] = slots[target] - v; break;
  }
}

}  // namespace sekitei::expr
