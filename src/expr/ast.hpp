// Expression AST for specification formulae.
//
// Formulae reference *role variables*: `<scope>.<property>` optionally primed
// (`link.lbw'` = value after the operation, Fig. 6).  Scopes are interface
// names from the enclosing component/interface spec plus the builtins `node`
// and `link`.  Role variables are resolved to concrete located variables at
// grounding time; the AST itself is network-independent.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace sekitei::expr {

/// A role-variable reference, e.g. {scope:"T", prop:"ibw", primed:false}.
struct RoleRef {
  std::string scope;
  std::string prop;
  bool primed = false;

  friend bool operator==(const RoleRef& a, const RoleRef& b) {
    return a.scope == b.scope && a.prop == b.prop && a.primed == b.primed;
  }

  [[nodiscard]] std::string str() const {
    return scope + "." + prop + (primed ? "'" : "");
  }
};

/// A profiled lookup table: piecewise-linear interpolation through sorted
/// (x, y) breakpoints, clamped outside the range.  This is how real component
/// behaviour ("a table of profiled values", Section 3) enters a formula.
struct TableData {
  std::vector<double> xs;  // strictly increasing
  std::vector<double> ys;

  [[nodiscard]] double eval(double x) const;
  /// True when ys is non-decreasing in x (the paper's monotonicity premise).
  [[nodiscard]] bool is_monotone_nondecreasing() const;
  [[nodiscard]] bool is_monotone_nonincreasing() const;
};

enum class NodeKind : unsigned char {
  Const,   // numeric literal or named parameter (resolved at parse time)
  Var,     // role variable
  Neg,     // unary minus
  Add, Sub, Mul, Div,
  Min, Max,  // binary builtins
  Table,     // table(child; x:y, ...)
};

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  NodeKind kind = NodeKind::Const;
  double value = 0.0;    // Const
  RoleRef ref;           // Var
  TableData table;       // Table
  NodePtr a, b;          // operands

  [[nodiscard]] std::string str() const;
};

[[nodiscard]] NodePtr make_const(double v);
[[nodiscard]] NodePtr make_var(RoleRef ref);
[[nodiscard]] NodePtr make_unary(NodeKind k, NodePtr a);
[[nodiscard]] NodePtr make_binary(NodeKind k, NodePtr a, NodePtr b);
[[nodiscard]] NodePtr clone(const Node& n);

/// Comparison operators allowed in `conditions` blocks.
enum class CmpOp : unsigned char { Ge, Le, Gt, Lt, Eq, Ne };

[[nodiscard]] const char* cmp_name(CmpOp op);

/// A condition `lhs <cmp> rhs`.
struct ConditionAst {
  NodePtr lhs;
  CmpOp op = CmpOp::Ge;
  NodePtr rhs;

  [[nodiscard]] std::string str() const;
};

/// Effect assignment operators.
enum class AssignOp : unsigned char { Set, Add, Sub };  // :=  +=  -=

/// An effect `target <op> expr`.
struct EffectAst {
  RoleRef target;
  AssignOp op = AssignOp::Set;
  NodePtr value;

  [[nodiscard]] std::string str() const;
};

}  // namespace sekitei::expr
