// Recursive-descent parser for expressions, conditions and effects.
//
// Grammar (precedence climbing):
//   expr    := term (('+'|'-') term)*
//   term    := factor (('*'|'/') factor)*
//   factor  := NUMBER | '-' factor | '(' expr ')'
//            | 'min' '(' expr ',' expr ')' | 'max' '(' expr ',' expr ')'
//            | 'table' '(' expr ';' NUMBER ':' NUMBER (',' NUMBER ':' NUMBER)* ')'
//            | IDENT '.' IDENT ['\'']              // role variable
//            | IDENT                               // named parameter
//   cond    := expr ('>='|'<='|'>'|'<'|'=='|'!=') expr
//   effect  := IDENT '.' IDENT ['\''] (':='|'+='|'-=') expr
//
// Named parameters (e.g. a tunable cost weight `lambda`) are resolved at
// parse time against a caller-supplied table and folded into constants.
#pragma once

#include <map>
#include <string>

#include "expr/ast.hpp"
#include "expr/lexer.hpp"

namespace sekitei::expr {

/// Values for named parameters referenced by bare identifier.
using ParamTable = std::map<std::string, double, std::less<>>;

[[nodiscard]] NodePtr parse_expr(Lexer& lex, const ParamTable& params);
[[nodiscard]] ConditionAst parse_condition(Lexer& lex, const ParamTable& params);
[[nodiscard]] EffectAst parse_effect(Lexer& lex, const ParamTable& params);

/// Convenience: parse a complete expression / condition from a string.
[[nodiscard]] NodePtr parse_expr_string(const std::string& src, const ParamTable& params = {});
[[nodiscard]] ConditionAst parse_condition_string(const std::string& src,
                                                  const ParamTable& params = {});

}  // namespace sekitei::expr
