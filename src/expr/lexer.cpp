#include "expr/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "support/error.hpp"

namespace sekitei::expr {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::End: return "end of input";
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::Dot: return "'.'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Colon: return "':'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Prime: return "'''";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Assign: return "':='";
    case Tok::PlusEq: return "'+='";
    case Tok::MinusEq: return "'-='";
    case Tok::Ge: return "'>='";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Lt: return "'<'";
    case Tok::EqEq: return "'=='";
    case Tok::Ne: return "'!='";
    case Tok::Eq: return "'='";
  }
  return "?";
}

Lexer::Lexer(std::string_view src) {
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = src.size();
  auto push = [&](Tok k, std::string text = {}, double num = 0.0) {
    tokens_.push_back(Token{k, std::move(text), num, line});
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < n && src[i + 1] == '/')) {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) || src[j] == '_')) ++j;
      push(Tok::Ident, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      char* endp = nullptr;
      // strtod stops at the first non-numeric char; src is NUL-terminated via
      // std::string storage only when constructed from one, so copy the tail.
      std::string tail(src.substr(i, std::min<std::size_t>(64, n - i)));
      const double v = std::strtod(tail.c_str(), &endp);
      const std::size_t len = static_cast<std::size_t>(endp - tail.c_str());
      if (len == 0) raise("lexer: malformed number at line " + std::to_string(line));
      push(Tok::Number, tail.substr(0, len), v);
      i += len;
      continue;
    }
    auto two = [&](char a, char b) { return c == a && i + 1 < n && src[i + 1] == b; };
    if (two(':', '=')) { push(Tok::Assign); i += 2; continue; }
    if (two('+', '=')) { push(Tok::PlusEq); i += 2; continue; }
    if (two('-', '=')) { push(Tok::MinusEq); i += 2; continue; }
    if (two('>', '=')) { push(Tok::Ge); i += 2; continue; }
    if (two('<', '=')) { push(Tok::Le); i += 2; continue; }
    if (two('=', '=')) { push(Tok::EqEq); i += 2; continue; }
    if (two('!', '=')) { push(Tok::Ne); i += 2; continue; }
    switch (c) {
      case '.': push(Tok::Dot); break;
      case ',': push(Tok::Comma); break;
      case ';': push(Tok::Semi); break;
      case ':': push(Tok::Colon); break;
      case '(': push(Tok::LParen); break;
      case ')': push(Tok::RParen); break;
      case '{': push(Tok::LBrace); break;
      case '}': push(Tok::RBrace); break;
      case '[': push(Tok::LBracket); break;
      case ']': push(Tok::RBracket); break;
      case '\'': push(Tok::Prime); break;
      case '+': push(Tok::Plus); break;
      case '-': push(Tok::Minus); break;
      case '*': push(Tok::Star); break;
      case '/': push(Tok::Slash); break;
      case '>': push(Tok::Gt); break;
      case '<': push(Tok::Lt); break;
      case '=': push(Tok::Eq); break;
      default: {
        std::ostringstream os;
        os << "lexer: unexpected character '" << c << "' at line " << line;
        raise(os.str());
      }
    }
    ++i;
  }
  push(Tok::End);
}

const Token& Lexer::peek(std::size_t n) const {
  const std::size_t idx = std::min(pos_ + n, tokens_.size() - 1);
  return tokens_[idx];
}

const Token& Lexer::next() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Lexer::accept(Tok k) {
  if (peek().kind != k) return false;
  next();
  return true;
}

const Token& Lexer::expect(Tok k) {
  if (peek().kind != k) {
    std::ostringstream os;
    os << "parse error at line " << peek().line << ": expected " << tok_name(k) << ", found "
       << tok_name(peek().kind);
    if (peek().kind == Tok::Ident) os << " '" << peek().text << "'";
    raise(os.str());
  }
  return next();
}

void Lexer::expect_keyword(std::string_view kw) {
  if (!at_keyword(kw)) {
    std::ostringstream os;
    os << "parse error at line " << peek().line << ": expected keyword '" << kw << "'";
    raise(os.str());
  }
  next();
}

bool Lexer::at_keyword(std::string_view kw) const {
  return peek().kind == Tok::Ident && peek().text == kw;
}

bool Lexer::accept_keyword(std::string_view kw) {
  if (!at_keyword(kw)) return false;
  next();
  return true;
}

}  // namespace sekitei::expr
