#include "server/client.hpp"

#include "support/stop_token.hpp"

namespace sekitei::server {

namespace wire = service::wire;

FrameClient::FrameClient(std::uint16_t port) : sock_(sock::connect_tcp(port)) {}

bool FrameClient::send(const std::string& body) {
  return send_raw(wire::encode_frame(body));
}

bool FrameClient::send_raw(const std::string& bytes) {
  if (!sock_.valid()) return false;
  return sock::send_all(sock_, bytes);
}

FrameClient::Recv FrameClient::recv_frame(std::string& body, double timeout_ms) {
  const std::int64_t give_up =
      StopSource::now_epoch_ns() + static_cast<std::int64_t>(timeout_ms * 1e6);
  for (;;) {
    switch (decoder_.next(body)) {
      case wire::FrameDecoder::Status::Frame: return Recv::Frame;
      case wire::FrameDecoder::Status::Error: return Recv::Error;
      case wire::FrameDecoder::Status::NeedMore: break;
    }
    const double left =
        static_cast<double>(give_up - StopSource::now_epoch_ns()) / 1e6;
    if (left <= 0.0) return Recv::Timeout;
    std::string chunk;
    switch (sock::recv_some(sock_, chunk, left)) {
      case sock::RecvStatus::Data: decoder_.feed(chunk); break;
      case sock::RecvStatus::Timeout: return Recv::Timeout;
      case sock::RecvStatus::Eof: return Recv::Closed;
      case sock::RecvStatus::Error: return Recv::Error;
    }
  }
}

}  // namespace sekitei::server
