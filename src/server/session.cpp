#include "server/session.hpp"

#include <exception>
#include <utility>

#include "model/textio.hpp"
#include "support/json.hpp"

namespace sekitei::server {

namespace wire = service::wire;

Session::Session(std::uint64_t id, sock::Socket socket, SessionHost& host,
                 Options opt)
    : id_(id), sock_(std::move(socket)), host_(host), opt_(opt) {}

Session::~Session() { join(); }

void Session::start() {
  thread_ = std::thread([this] { run(); });
}

void Session::join() {
  if (joined_.exchange(true, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
}

void Session::run() {
  host_.quota().session_opened();
  wire::FrameDecoder decoder(opt_.max_frame_bytes);
  std::string chunk;
  double idle_ms = 0.0;

  while (true) {
    if (host_.stopping()) {
      cancel_inflight();
      break;
    }
    chunk.clear();
    const sock::RecvStatus st = sock::recv_some(sock_, chunk, opt_.poll_tick_ms);
    if (st == sock::RecvStatus::Eof || st == sock::RecvStatus::Error) break;
    if (st == sock::RecvStatus::Timeout) {
      // A draining session keeps reading (pipelined requests behind in-flight
      // ones still deserve their "draining" rejection) and closes once its
      // in-flight work has been answered.
      if (host_.draining() && inflight() == 0) break;
      idle_ms += opt_.poll_tick_ms;
      if (opt_.idle_timeout_ms > 0 && idle_ms >= opt_.idle_timeout_ms &&
          inflight() == 0 && !host_.draining()) {
        break;
      }
      continue;
    }
    idle_ms = 0.0;
    bytes_in_.fetch_add(chunk.size(), std::memory_order_relaxed);
    decoder.feed(chunk);

    std::string body;
    bool close_now = false;
    for (;;) {
      const auto fs = decoder.next(body);
      if (fs == wire::FrameDecoder::Status::NeedMore) break;
      if (fs == wire::FrameDecoder::Status::Error) {
        // Framing is broken (oversized frame, garbage length line): answer
        // once with the reason, then drop the connection — there is no way
        // to find the next frame boundary in a corrupt prefix stream.
        (void)write_frame(wire::render_response_frame(
            wire::make_rejected("", "protocol error: " + decoder.error())));
        close_now = true;
        break;
      }
      if (!handle_frame(body)) {
        close_now = true;
        break;
      }
    }
    if (close_now) break;
  }

  // Every accepted request is answered before the fd closes; inflight_ drops
  // to zero only after the completion callback's write, so no worker thread
  // can still be inside send(2) when close() runs.
  wait_inflight_drained();
  sock_.close();
  host_.quota().session_closed();
  finished_.store(true, std::memory_order_release);
}

bool Session::handle_frame(const std::string& body) {
  wire::WireRequest req;
  std::string err;
  if (!wire::parse_request(body, req, err)) {
    // The framing survived, only this body was bad — answer and keep going.
    return write_frame(wire::render_response_frame(
        wire::make_rejected(req.id, "bad request: " + err)));
  }

  switch (req.op) {
    case wire::WireRequest::Op::Healthz:
      return write_frame(wire::encode_frame(host_.healthz_body()));
    case wire::WireRequest::Op::Stats:
      return write_frame(wire::encode_frame(host_.stats_body()));
    case wire::WireRequest::Op::Plan:
      break;
  }

  if (req.id.empty()) {
    req.id = "s" + std::to_string(id_) + "-" + std::to_string(next_request_++);
  }

  if (host_.draining() || host_.stopping()) {
    respond(wire::make_rejected(req.id, "draining: daemon is shutting down"));
    return true;
  }

  const QuotaGate::Verdict verdict = host_.quota().try_acquire(inflight());
  if (verdict != QuotaGate::Verdict::Admitted) {
    respond(wire::make_rejected(
        req.id, std::string("quota exceeded (") + quota_verdict_name(verdict) +
                    "): retry with backoff"));
    return true;
  }

  handle_plan(std::move(req));
  return true;
}

void Session::handle_plan(wire::WireRequest&& req) {
  std::shared_ptr<const model::LoadedProblem> problem;
  try {
    problem = host_.load_problem_text(req.problem_text);
  } catch (const std::exception& e) {
    host_.quota().release();
    respond(wire::make_rejected(req.id, std::string("bad problem: ") + e.what()));
    return;
  }

  StopSource stop;
  const std::string rid = req.id;
  bool duplicate;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    // A duplicate in-flight id would make the stop map (and the client's
    // response matching) ambiguous — refuse the second one.
    duplicate = !inflight_stops_.emplace(rid, stop).second;
  }
  if (duplicate) {
    host_.quota().release();
    respond(wire::make_rejected(rid, "duplicate in-flight request id"));
    return;
  }
  inflight_.fetch_add(1, std::memory_order_acq_rel);

  host_.submit(
      std::move(req), std::move(problem), stop,
      [this, rid](service::PlanResponse&& r) {
        respond(r);
        host_.quota().release();
        host_.request_served();
        // The decrement must be the callback's LAST touch of the session:
        // once inflight_ hits zero the reader thread exits and the daemon
        // may destroy `this`.  Erase + decrement + notify under the lock so
        // wait_inflight_drained() cannot observe zero until the unlock —
        // the final access — has completed.
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_stops_.erase(rid);
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
        inflight_cv_.notify_all();
      });
}

bool Session::write_frame(const std::string& frame) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (!sock_.valid()) return false;
  if (!sock::send_all(sock_, frame)) return false;
  bytes_out_.fetch_add(frame.size(), std::memory_order_relaxed);
  return true;
}

void Session::respond(const service::PlanResponse& r) {
  const std::string frame = wire::render_response_frame(r);
  (void)write_frame(frame);  // a vanished peer is detected by the read loop

  std::string line = "{\"access\":1,\"session\":";
  json::append_number(line, static_cast<std::uint64_t>(id_));
  line += ",\"request\":";
  json::append_escaped(line, r.id);
  line += ",\"outcome\":";
  json::append_escaped(line, service::outcome_name(r.outcome));
  line += ",\"solve_ms\":";
  json::append_number(line, r.solve_ms);
  line += ",\"wait_ms\":";
  json::append_number(line, r.wait_ms);
  line += ",\"bytes\":";
  json::append_number(line, static_cast<std::uint64_t>(frame.size()));
  line += "}\n";
  host_.access_log(line);
}

void Session::arm_inflight_deadline(double ms) {
  const std::int64_t target =
      StopSource::now_epoch_ns() + static_cast<std::int64_t>(ms * 1e6);
  std::lock_guard<std::mutex> lock(inflight_mu_);
  for (auto& [id, src] : inflight_stops_) {
    const std::int64_t current = src.deadline_epoch_ns();
    // Tighten only: a request whose own deadline already fires sooner keeps
    // it — drain must never *extend* a client's budget.
    if (current == 0 || current > target) src.arm_deadline_at_ns(target);
  }
}

void Session::cancel_inflight() {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  for (auto& [id, src] : inflight_stops_) src.request_stop();
}

void Session::wait_inflight_drained() {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace sekitei::server
