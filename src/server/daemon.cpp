#include "server/daemon.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "model/textio.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"

namespace sekitei::server {

namespace wire = service::wire;

namespace {

void sleep_for_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

Daemon::Daemon(Options opt)
    : opt_(std::move(opt)), engine_(opt_.engine), quota_(opt_.quota) {}

Daemon::~Daemon() {
  if (started_.load(std::memory_order_acquire)) stop();
}

void Daemon::start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) return;
  listener_ = sock::listen_tcp(opt_.port, port_);
  accepting_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Daemon::accept_loop() {
  while (accepting_.load(std::memory_order_acquire)) {
    sock::Socket conn = sock::accept_tcp(listener_, opt_.accept_tick_ms);
    reap_finished_sessions();
    if (!accepting_.load(std::memory_order_acquire)) break;
    if (!conn.valid()) continue;  // tick (or listener closed; loop re-checks)
    if (draining() || stopping()) continue;  // refuse late connections
    accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto session = std::make_unique<Session>(next_session_id_++,
                                             std::move(conn), *this,
                                             opt_.session);
    session->start();
    sessions_.push_back(std::move(session));
  }
}

void Daemon::reap_finished_sessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.begin();
  while (it != sessions_.end()) {
    if ((*it)->finished()) {
      (*it)->join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Daemon::stop_accepting() {
  accepting_.store(false, std::memory_order_release);
  listener_.shutdown_both();  // wakes a parked accept immediately
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
}

bool Daemon::all_sessions_finished() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& s : sessions_) {
    if (!s->finished()) return false;
  }
  return true;
}

bool Daemon::drain() {
  if (!started_.load(std::memory_order_acquire)) return true;
  draining_.store(true, std::memory_order_release);
  drain_deadline_epoch_ns_.store(
      StopSource::now_epoch_ns() +
          static_cast<std::int64_t>(opt_.drain_deadline_ms * 1e6),
      std::memory_order_release);
  stop_accepting();

  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& s : sessions_) s->arm_inflight_deadline(opt_.drain_deadline_ms);
  }

  // Sessions answer their in-flight work (finished or degraded by the
  // tightened deadline) and close themselves; poll for that, then escalate.
  const double budget_ms = opt_.drain_deadline_ms + opt_.drain_grace_ms;
  const std::int64_t give_up =
      StopSource::now_epoch_ns() + static_cast<std::int64_t>(budget_ms * 1e6);
  bool clean = true;
  while (!all_sessions_finished()) {
    if (StopSource::now_epoch_ns() >= give_up) {
      clean = false;
      break;
    }
    sleep_for_ms(10.0);
  }
  if (!clean) {
    // Escalate: cancellation still answers every request (Cancelled), it
    // just stops burning the budget.
    stopping_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& s : sessions_) s->cancel_inflight();
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& s : sessions_) s->join();  // blocks until each reader exits
    sessions_.clear();
  }
  stopping_.store(true, std::memory_order_release);
  return clean;
}

void Daemon::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  draining_.store(true, std::memory_order_release);
  stop_accepting();
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto& s : sessions_) s->cancel_inflight();
  for (auto& s : sessions_) s->join();
  sessions_.clear();
}

std::size_t Daemon::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

std::shared_ptr<const model::LoadedProblem> Daemon::load_problem_text(
    const std::string& text) {
  if (opt_.problem_cache_capacity != 0) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(text);
    if (it != cache_.end()) return it->second;
  }
  // Parse outside the cache lock: parsing is the expensive part and the
  // cache exists precisely because concurrent sessions resend instances.
  std::shared_ptr<const model::LoadedProblem> loaded =
      model::load_problem(opt_.domain_text, text);
  if (opt_.problem_cache_capacity != 0) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    // Keyed by the full text, not a hash: a hash collision here would
    // silently answer with the wrong instance's plan.
    if (cache_.emplace(text, loaded).second) {
      cache_order_.push_back(text);
      while (cache_.size() > opt_.problem_cache_capacity) {
        cache_.erase(cache_order_.front());
        cache_order_.pop_front();
      }
    }
  }
  return loaded;
}

void Daemon::submit(wire::WireRequest&& w,
                    std::shared_ptr<const model::LoadedProblem> problem,
                    StopSource stop,
                    std::function<void(service::PlanResponse&&)> done) {
  // A request that slipped past the session's draining check (drain() flipped
  // the flag mid-frame) still gets the tightened drain budget.
  const std::int64_t drain_ns =
      drain_deadline_epoch_ns_.load(std::memory_order_acquire);
  if (drain_ns != 0) {
    const std::int64_t current = stop.deadline_epoch_ns();
    if (current == 0 || current > drain_ns) stop.arm_deadline_at_ns(drain_ns);
  }

  service::PlanRequest req;
  req.id = std::move(w.id);
  req.mode = w.mode;
  req.deadline_ms = w.deadline_ms;
  req.validate = w.validate;
  req.preflight = w.preflight;
  req.degrade.enabled = w.degrade;
  req.echo_plan = w.echo_plan;
  if (w.repair) {
    // Resolve the name-keyed wire damage against the loaded instance before
    // the request leaves this thread; a bad name is a protocol-level refusal,
    // not a planning outcome.
    service::RepairSpec spec;
    std::string error;
    if (!wire::resolve_repair(w, *problem, spec, error)) {
      done(wire::make_rejected(std::move(req.id), "bad repair: " + error));
      return;
    }
    req.repair = std::move(spec);
  }
  req.problem = std::move(problem);
  req.stop = std::move(stop);
  engine_.submit_async(std::move(req), std::move(done));
}

std::string Daemon::healthz_body() {
  std::string body = "{\"healthz\":";
  json::append_escaped(body, draining() ? "draining" : "ok");
  body += ",\"sessions\":";
  json::append_number(body, static_cast<std::uint64_t>(session_count()));
  body += ",\"inflight\":";
  json::append_number(body, static_cast<std::uint64_t>(quota_.global_inflight()));
  body += ",\"pending\":";
  json::append_number(body, static_cast<std::uint64_t>(engine_.pending()));
  body += ",\"accepted\":";
  json::append_number(body, accepted_.load(std::memory_order_relaxed));
  body += ",\"served\":";
  json::append_number(body, served_.load(std::memory_order_relaxed));
  body += "}";
  return body;
}

std::string Daemon::stats_body() {
  // One frame = one JSON object, so the registry's NDJSON lines (one object
  // per series) become elements of a "metrics" array.
  const std::string ndjson = metrics::registry().to_ndjson(metrics::wall_ms());
  std::string body = "{\"stats\":1,\"metrics\":[";
  bool first = true;
  std::size_t start = 0;
  while (start < ndjson.size()) {
    std::size_t end = ndjson.find('\n', start);
    if (end == std::string::npos) end = ndjson.size();
    if (end > start) {
      if (!first) body.push_back(',');
      first = false;
      body.append(ndjson, start, end - start);
    }
    start = end + 1;
  }
  body += "]}";
  return body;
}

void Daemon::access_log(const std::string& line) {
  if (opt_.access_log == nullptr) return;
  std::lock_guard<std::mutex> lock(log_mu_);
  std::fwrite(line.data(), 1, line.size(), opt_.access_log);
  std::fflush(opt_.access_log);
}

}  // namespace sekitei::server
