// One TCP connection to the planning daemon.
//
// Concurrency model — thread-per-connection, deliberately: the planner is
// CPU-bound and all CPU parallelism already lives in the engine's worker
// pool, so session threads only block on poll/recv and shuffle frames.  At
// the daemon's design point (tens to a few hundred middleware clients, not
// millions of browser sockets) a poll/epoll reactor would buy nothing
// measurable while forcing a partial-frame state machine across fds and a
// much hairier TSan story.  Reads are buffered (wire::FrameDecoder) and
// timeout-guarded (poll ticks), so a stalled client costs one parked
// thread, never a spun core.
//
// Pipelining: the reader thread parses and submits frames as they arrive;
// responses are written by the engine's worker threads from the
// submit_async completion callback, serialized by a per-session write
// mutex.  Responses therefore complete OUT OF ORDER — the `request` id in
// each response frame is the correlation key.
//
// Lifecycle: the session closes on client EOF, on a protocol error
// (malformed length prefix, oversized frame), after `idle_timeout_ms` with
// nothing in flight, when the daemon drains (in-flight answered first), or
// on hard stop (in-flight cancelled, still answered).  In every case each
// accepted request is answered exactly once before the socket closes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "server/quota.hpp"
#include "service/wire.hpp"
#include "support/socket.hpp"
#include "support/stop_token.hpp"

namespace sekitei::model {
struct LoadedProblem;
}

namespace sekitei::server {

/// What a session needs from the daemon; split out so sessions are testable
/// without a listener and so session.hpp does not depend on daemon.hpp.
class SessionHost {
 public:
  virtual ~SessionHost() = default;

  /// Parses problem text against the daemon's domain (cached by text).
  /// Raises sekitei::Error on malformed input.
  virtual std::shared_ptr<const model::LoadedProblem> load_problem_text(
      const std::string& text) = 0;

  /// Submits to the planning engine; `done` fires exactly once.
  virtual void submit(service::wire::WireRequest&& wire,
                      std::shared_ptr<const model::LoadedProblem> problem,
                      StopSource stop,
                      std::function<void(service::PlanResponse&&)> done) = 0;

  virtual QuotaGate& quota() = 0;
  [[nodiscard]] virtual bool draining() const = 0;
  [[nodiscard]] virtual bool stopping() const = 0;
  virtual std::string healthz_body() = 0;
  virtual std::string stats_body() = 0;
  /// One completed-request NDJSON access-log line (already '\n'-terminated).
  virtual void access_log(const std::string& line) = 0;
  /// Tallies a served plan request (healthz "served" counter).
  virtual void request_served() = 0;
};

class Session {
 public:
  struct Options {
    double idle_timeout_ms = 30000.0;  ///< <= 0 disables the idle close
    std::size_t max_frame_bytes = 1u << 20;
    double poll_tick_ms = 50.0;  ///< drain/stop reaction granularity
  };

  Session(std::uint64_t id, sock::Socket socket, SessionHost& host, Options opt);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Spawns the reader thread.
  void start();
  /// True once the reader thread has finished (socket closed, nothing in
  /// flight); the thread still needs join().
  [[nodiscard]] bool finished() const { return finished_.load(std::memory_order_acquire); }
  /// Joins the reader thread (idempotent).
  void join();

  /// Arms (or tightens) every in-flight request's deadline to `ms` from
  /// now — the drain path: in-flight work finishes or walks the
  /// degradation ladder within the drain budget.
  void arm_inflight_deadline(double ms);
  /// Cancels every in-flight request (hard stop; responses still arrive).
  void cancel_inflight();

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] std::size_t inflight() const {
    return inflight_.load(std::memory_order_acquire);
  }

 private:
  void run();
  /// Handles one frame body; returns false when the session must close.
  bool handle_frame(const std::string& body);
  void handle_plan(service::wire::WireRequest&& wire);
  /// Serialized frame write; returns false when the peer is gone.
  bool write_frame(const std::string& frame);
  void respond(const service::PlanResponse& r);
  void wait_inflight_drained();

  std::uint64_t id_;
  sock::Socket sock_;
  SessionHost& host_;
  Options opt_;

  std::thread thread_;
  std::atomic<bool> finished_{false};
  std::atomic<bool> joined_{false};

  std::mutex write_mu_;  // serializes socket writes from worker callbacks

  // In-flight bookkeeping: the reader thread inserts before submit, the
  // completion callback erases; the cv wakes the reader waiting for drain.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  std::unordered_map<std::string, StopSource> inflight_stops_;
  std::atomic<std::size_t> inflight_{0};

  std::atomic<std::uint64_t> bytes_in_{0}, bytes_out_{0};
  std::uint64_t next_request_ = 0;  // reader-thread-only: synthesized ids
};

}  // namespace sekitei::server
