#include "server/quota.hpp"

namespace sekitei::server {

void QuotaGate::session_opened() {
  std::lock_guard<std::mutex> lock(mu_);
  ++sessions_;
}

void QuotaGate::session_closed() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_ > 0) --sessions_;
}

std::size_t QuotaGate::effective_conn_limit_locked() const {
  std::size_t limit = opt_.per_conn_inflight;  // 0 = unbounded
  if (opt_.global_inflight != 0 && sessions_ != 0) {
    std::size_t fair = opt_.global_inflight / sessions_;
    if (fair == 0) fair = 1;
    if (limit == 0 || fair < limit) limit = fair;
  }
  return limit;
}

QuotaGate::Verdict QuotaGate::try_acquire(std::size_t conn_inflight) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t limit = effective_conn_limit_locked();
  if (limit != 0 && conn_inflight >= limit) return Verdict::ConnQuota;
  if (opt_.global_inflight != 0 && inflight_ >= opt_.global_inflight) {
    return Verdict::GlobalQuota;
  }
  ++inflight_;
  return Verdict::Admitted;
}

void QuotaGate::release() {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ > 0) --inflight_;
}

std::size_t QuotaGate::effective_conn_limit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return effective_conn_limit_locked();
}

std::size_t QuotaGate::global_inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

std::size_t QuotaGate::sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_;
}

const char* quota_verdict_name(QuotaGate::Verdict v) {
  switch (v) {
    case QuotaGate::Verdict::Admitted: return "admitted";
    case QuotaGate::Verdict::ConnQuota: return "conn_quota";
    case QuotaGate::Verdict::GlobalQuota: return "global_quota";
  }
  return "admitted";
}

}  // namespace sekitei::server
