// Blocking loopback client for the planning daemon — the wire-level building
// block of the load generator (tools/sekitei_load), the daemon's --probe
// mode, and the loopback integration tests.  One connection, synchronous
// sends, timeout-guarded frame receives; pipelining is just several send()s
// before the recv_frame() loop (responses correlate by the "request" id).
#pragma once

#include <cstdint>
#include <string>

#include "service/wire.hpp"
#include "support/socket.hpp"

namespace sekitei::server {

class FrameClient {
 public:
  enum class Recv : unsigned char { Frame, Timeout, Closed, Error };

  /// Connects to 127.0.0.1:`port`; raises sekitei::Error when refused.
  explicit FrameClient(std::uint16_t port);

  FrameClient(FrameClient&&) = default;
  FrameClient& operator=(FrameClient&&) = default;

  /// Frames and sends one request body; false when the peer is gone.
  [[nodiscard]] bool send(const std::string& body);
  [[nodiscard]] bool send(const service::wire::WireRequest& r) {
    return send(service::wire::render_request(r));
  }
  /// Sends pre-framed bytes verbatim (tests: oversized/garbage frames).
  [[nodiscard]] bool send_raw(const std::string& bytes);

  /// Receives the next complete frame body, waiting up to `timeout_ms`.
  [[nodiscard]] Recv recv_frame(std::string& body, double timeout_ms);

  /// Half-close: no more requests, responses keep flowing.
  void shutdown_write() { sock_.shutdown_write(); }
  void close() { sock_.close(); }
  [[nodiscard]] bool connected() const { return sock_.valid(); }

  /// The decoder's protocol error after Recv::Error (empty otherwise).
  [[nodiscard]] const std::string& wire_error() const { return decoder_.error(); }

 private:
  sock::Socket sock_;
  service::wire::FrameDecoder decoder_;
};

}  // namespace sekitei::server
