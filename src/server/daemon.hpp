// The network-facing planning daemon: a TCP listener (loopback-only, by
// design — this is a backend service meant to sit behind the middleware
// tier, not on the open internet) that speaks the length-prefixed NDJSON
// wire protocol of service/wire.hpp and plans over one fixed component
// domain.
//
// Shape: one accept thread hands each connection to a Session (one reader
// thread per connection — the rationale lives in server/session.hpp),
// sessions feed the shared PlanningEngine through submit_async, and the
// engine's worker callbacks write response frames back.  Admission is
// two-layered: the QuotaGate arbitrates *between* clients (per-connection +
// fair-share global in-flight caps), the engine's own max_pending protects
// the process as a whole.
//
// Shutdown:
//   drain()  graceful (the SIGTERM path): stop accepting, answer every new
//            plan frame with a "draining" rejection, tighten every in-flight
//            request's deadline to the drain budget (so the degradation
//            ladder finishes or degrades it — never extend a client's own
//            tighter deadline), wait for sessions to answer and close.  A
//            session that still hasn't finished after budget + grace gets
//            escalated to cancellation.  Every accepted request is answered
//            before its socket closes.
//   stop()   hard: cancel everything in flight (responses still delivered),
//            then tear down.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/quota.hpp"
#include "server/session.hpp"
#include "service/engine.hpp"
#include "support/socket.hpp"

namespace sekitei::server {

class Daemon final : public SessionHost {
 public:
  struct Options {
    std::uint16_t port = 0;   ///< 0 = kernel-assigned ephemeral port
    std::string domain_text;  ///< component DSL all requests plan against
    service::PlanningEngine::Options engine;
    QuotaGate::Options quota;
    Session::Options session;
    /// Budget granted to in-flight requests when drain() starts.
    double drain_deadline_ms = 5000.0;
    /// Extra wait past the drain budget before escalating to cancellation.
    double drain_grace_ms = 2000.0;
    /// Accept-loop tick: drain/stop reaction latency of the listener.
    double accept_tick_ms = 100.0;
    /// Parsed problems cached by request text (0 disables): pipelined load
    /// phases resend the same instances, parsing them once is the difference
    /// between measuring the planner and measuring the parser.
    std::size_t problem_cache_capacity = 64;
    /// Per-request NDJSON access-log sink (nullptr disables).  Lines are
    /// written whole under a lock, so the stream stays valid NDJSON.
    std::FILE* access_log = nullptr;
  };

  explicit Daemon(Options opt);
  ~Daemon() override;

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds, listens, spawns the accept thread.  Raises sekitei::Error when
  /// the port is taken.
  void start();
  /// The bound port (valid after start(); the reason ephemeral ports work).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Graceful shutdown (see file comment).  Blocks until every session has
  /// closed; idempotent.  Returns true when everything drained within the
  /// budget, false when cancellation escalation was needed.
  bool drain();
  /// Hard shutdown: cancel in-flight work, then join everything.
  void stop();

  [[nodiscard]] std::size_t session_count() const;
  [[nodiscard]] std::uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] service::PlanningEngine& engine() { return engine_; }

  // SessionHost
  std::shared_ptr<const model::LoadedProblem> load_problem_text(
      const std::string& text) override;
  void submit(service::wire::WireRequest&& wire,
              std::shared_ptr<const model::LoadedProblem> problem,
              StopSource stop,
              std::function<void(service::PlanResponse&&)> done) override;
  QuotaGate& quota() override { return quota_; }
  [[nodiscard]] bool draining() const override {
    return draining_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool stopping() const override {
    return stopping_.load(std::memory_order_acquire);
  }
  std::string healthz_body() override;
  std::string stats_body() override;
  void access_log(const std::string& line) override;
  void request_served() override {
    served_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  /// Joins and discards sessions whose reader thread has finished.
  void reap_finished_sessions();
  void stop_accepting();
  [[nodiscard]] bool all_sessions_finished() const;

  Options opt_;
  service::PlanningEngine engine_;  // declared before sessions_: destroyed
                                    // after them (reverse member order), so
                                    // no callback outlives its session
  QuotaGate quota_;

  sock::Socket listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> accepting_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  /// Absolute drain deadline (StopSource epoch ns; 0 = drain not started):
  /// requests submitted *while* draining still get the tightened budget.
  std::atomic<std::int64_t> drain_deadline_epoch_ns_{0};

  mutable std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 1;

  std::mutex cache_mu_;
  std::unordered_map<std::string, std::shared_ptr<const model::LoadedProblem>> cache_;
  std::deque<std::string> cache_order_;  // FIFO eviction

  std::mutex log_mu_;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace sekitei::server
