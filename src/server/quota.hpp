// Per-client quotas and fair-share admission for the planning daemon,
// layered *above* the engine's own max_pending admission control: the
// engine bound protects the process, the quota gate arbitrates between
// clients so one pipelining client cannot monopolize the worker pool
// (Le Sommer's resource-contract framing — each connection holds a
// contract for a bounded share of the planner).
//
// Two limits, both optional:
//   per_conn_inflight   hard cap on one connection's unanswered requests
//   global_inflight     cap on unanswered requests across all connections;
//                       when set, each connection's *effective* cap is also
//                       shrunk to its fair share  max(1, global / sessions)
//                       so capacity redistributes as clients come and go.
//
// A rejected admission is answered on the wire (outcome "rejected",
// failure "quota exceeded ..."), never silently dropped — clients can
// back off and retry (support/retry.hpp).
#pragma once

#include <cstddef>
#include <mutex>

namespace sekitei::server {

class QuotaGate {
 public:
  struct Options {
    std::size_t per_conn_inflight = 16;  ///< 0 = unbounded
    std::size_t global_inflight = 0;     ///< 0 = unbounded (no fair-share either)
  };

  enum class Verdict : unsigned char { Admitted, ConnQuota, GlobalQuota };

  explicit QuotaGate(Options opt) : opt_(opt) {}

  void session_opened();
  void session_closed();

  /// Admission check for one more request on a connection that already has
  /// `conn_inflight` unanswered ones.  Admitted acquires a global slot that
  /// release() must return.
  [[nodiscard]] Verdict try_acquire(std::size_t conn_inflight);
  void release();

  /// The per-connection cap currently in force (fair share included);
  /// 0 = unbounded.
  [[nodiscard]] std::size_t effective_conn_limit() const;

  [[nodiscard]] std::size_t global_inflight() const;
  [[nodiscard]] std::size_t sessions() const;
  [[nodiscard]] const Options& options() const { return opt_; }

 private:
  [[nodiscard]] std::size_t effective_conn_limit_locked() const;

  Options opt_;
  mutable std::mutex mu_;
  std::size_t sessions_ = 0;
  std::size_t inflight_ = 0;
};

[[nodiscard]] const char* quota_verdict_name(QuotaGate::Verdict v);

}  // namespace sekitei::server
