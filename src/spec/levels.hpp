// Resource levels (Section 3.1).
//
// A LevelSet partitions [0, inf) into disjoint intervals by strictly
// increasing cutpoints: cutpoints {30,70,90,100} yield the paper's five
// intervals [0,30) [30,70) [70,90) [90,100) [100,inf).  The empty cutpoint
// list is the trivial single level [0,inf) — scenario A / unleveled
// resources.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/interval.hpp"

namespace sekitei::spec {

class LevelSet {
 public:
  LevelSet() = default;
  explicit LevelSet(std::vector<double> cutpoints);

  /// Number of level intervals (cutpoints + 1).
  [[nodiscard]] std::uint32_t count() const {
    return static_cast<std::uint32_t>(cutpoints_.size()) + 1;
  }

  [[nodiscard]] bool trivial() const { return cutpoints_.empty(); }

  /// The k-th interval, 0-based from [0, c0).
  [[nodiscard]] Interval interval(std::uint32_t k) const;

  /// Index of the level containing `v` (v >= 0).
  [[nodiscard]] std::uint32_t level_of(double v) const;

  [[nodiscard]] const std::vector<double>& cutpoints() const { return cutpoints_; }

  /// A level set with every cutpoint multiplied by `factor` — the paper's
  /// "bandwidth levels of interfaces T, I, and Z are proportional to those of
  /// the M stream" (Table 1 caption).
  [[nodiscard]] LevelSet scaled(double factor) const;

  [[nodiscard]] std::string str() const;

  friend bool operator==(const LevelSet& a, const LevelSet& b) {
    return a.cutpoints_ == b.cutpoints_;
  }

 private:
  std::vector<double> cutpoints_;  // strictly increasing, all > 0
};

/// Half-open matching of a computed value range against a level interval.
/// Levels are conceptually [lo, hi): a computed range C can land in level L
/// iff C reaches at least L.lo and starts strictly below L.hi.  Using this
/// (instead of closed intersection) when assigning output levels avoids
/// spurious boundary actions: a splitter output computed as [63, 70] belongs
/// to level [63, 70) but not to [49, 63).
/// Can a computed value range land inside a level interval [lo, hi)?
///
/// `strict_floor` is used when assigning *output* levels during leveling:
/// the computed range must reach strictly past the level's floor, so a
/// capacity sitting exactly at a cutpoint (e.g. min(M.ibw, 70) against level
/// [70, 90)) cannot claim the level — this reproduces Fig. 7's pruning of
/// "levels above 1" over the 70-unit link.
[[nodiscard]] inline bool level_matches(Interval level, Interval computed,
                                        bool strict_floor = false) {
  if (computed.is_empty() || level.is_empty()) return false;
  // Reach the floor: sup(computed) must be >= level.lo, attainably.
  const bool reaches = computed.hi > level.lo || (computed.hi == level.lo && !computed.hi_open);
  if (!reaches) return false;
  if (strict_floor && level.lo > 0.0 && computed.hi <= level.lo) return false;
  // Start below the ceiling (level upper bounds are open unless infinite).
  if (level.hi == kInf) return true;
  return level.hi_open ? computed.lo < level.hi : computed.lo <= level.hi;
}

/// Degradability tags (Section 3.1).  A *degradable* resource available at a
/// higher value is also usable at any lower value (link bandwidth, stream
/// bandwidth).  An *upgradable* resource available at a lower value also
/// satisfies demands for higher values (e.g. accumulated latency: a stream
/// that arrived early satisfies any looser deadline level).
enum class LevelTag : unsigned char { None, Degradable, Upgradable };

[[nodiscard]] const char* level_tag_name(LevelTag t);

}  // namespace sekitei::spec
