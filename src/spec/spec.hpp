// Component and interface specifications (the paper's Fig. 2 and Fig. 6).
//
// A DomainSpec is the network-independent half of a CPP instance: the
// component library of an application (Server, Client, Splitter, Merger,
// Zip, Unzip, ...), the stream interfaces they exchange, the non-reversible
// formulae describing conditions/effects/costs, and optional level sets.
//
// Text syntax (see spec/parser.hpp for the grammar; this replaces the
// paper's XML with an equivalent, more readable DSL):
//
//   interface M {
//     property ibw degradable;
//     cross {
//       M.ibw' := min(M.ibw, link.lbw);
//       link.lbw -= min(M.ibw, link.lbw);
//     }
//     cost 1 + M.ibw / 10;
//   }
//   component Merger {
//     requires T, I;
//     implements M;
//     conditions {
//       node.cpu >= (T.ibw + I.ibw) / 5;
//       T.ibw * 3 == I.ibw * 7;
//     }
//     effects {
//       M.ibw := T.ibw + I.ibw;
//       node.cpu -= (T.ibw + I.ibw) / 5;
//     }
//     cost 1 + (T.ibw + I.ibw) / 10;
//   }
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/ast.hpp"
#include "expr/parser.hpp"
#include "spec/levels.hpp"

namespace sekitei::spec {

struct PropertySpec {
  std::string name;              // "ibw", "lat", ...
  LevelTag tag = LevelTag::None;
  double initial = 0.0;          // value a freshly produced stream starts with
};

struct InterfaceSpec {
  std::string name;  // "M"
  std::vector<PropertySpec> properties;
  /// Conditions checked when the stream crosses a link (e.g. link security).
  std::vector<expr::ConditionAst> cross_conditions;
  /// Effects of a link crossing (Fig. 6): primed refs are post-crossing
  /// values of the stream's own properties; `link.*` effects consume link
  /// resources.
  std::vector<expr::EffectAst> cross_effects;
  /// Cost formula of the cross action (may reference the stream's pre-cross
  /// properties and link resources); nullptr = unit cost.
  expr::NodePtr cross_cost;
  /// Level sets baked into the spec text (can be overridden per scenario).
  std::map<std::string, LevelSet> levels;

  [[nodiscard]] const PropertySpec* find_property(const std::string& prop) const;
  [[nodiscard]] LevelTag tag_of(const std::string& prop) const;
};

struct ComponentSpec {
  std::string name;  // "Merger"
  std::vector<std::string> inputs;   // `requires` clause: consumed interfaces
  std::vector<std::string> outputs;  // `implements` clause: produced interfaces
  std::vector<expr::ConditionAst> conditions;
  std::vector<expr::EffectAst> effects;
  expr::NodePtr cost;  // nullptr = unit cost

  [[nodiscard]] bool is_source() const { return inputs.empty() && !outputs.empty(); }
  [[nodiscard]] bool is_sink() const { return outputs.empty() && !inputs.empty(); }
};

class DomainSpec {
 public:
  /// Adds specs programmatically (the domains/ builders use this).
  InterfaceSpec& add_interface(InterfaceSpec spec);
  ComponentSpec& add_component(ComponentSpec spec);

  [[nodiscard]] const InterfaceSpec* find_interface(const std::string& name) const;
  [[nodiscard]] const ComponentSpec* find_component(const std::string& name) const;
  [[nodiscard]] const InterfaceSpec& interface_at(std::size_t i) const { return interfaces_[i]; }
  [[nodiscard]] const ComponentSpec& component_at(std::size_t i) const { return components_[i]; }
  [[nodiscard]] std::size_t interface_count() const { return interfaces_.size(); }
  [[nodiscard]] std::size_t component_count() const { return components_.size(); }

  /// Replaces the level set of an interface property (scenario overrides).
  void set_levels(const std::string& iface, const std::string& prop, LevelSet levels);
  /// Drops all interface level sets (scenario A).
  void clear_levels();

  /// Raises unless every formula is syntactically monotone and every
  /// referenced interface/property exists — the spec-sanity pass Sekitei
  /// assumes ("assuming that the specifications provided to it are correct").
  void validate() const;

  /// Derives missing degradable/upgradable tags by syntactic analysis of the
  /// formulae (Section 3.1: "can be obtained automatically by syntactic
  /// analysis of the problem specification").  A property whose produced
  /// value only ever feeds non-decreasing consumption/output formulae is
  /// degradable; one feeding only non-increasing ones is upgradable.
  void auto_tag_properties();

 private:
  std::vector<InterfaceSpec> interfaces_;
  std::vector<ComponentSpec> components_;
};

/// Level assignment for one planning run (Table 1 rows).  Interface property
/// levels default to the ones in the DomainSpec; network resource levels
/// (link bandwidth in scenario E) are per-scenario only.
struct LevelScenario {
  std::string name;  // "A" ... "E"
  /// (interface, property) -> cutpoints; overrides the spec's level sets.
  std::map<std::pair<std::string, std::string>, LevelSet> iface_levels;
  /// link resource -> cutpoints (e.g. {"lbw": {31, 62}}).
  std::map<std::string, LevelSet> link_levels;
  /// node resource -> cutpoints.
  std::map<std::string, LevelSet> node_levels;

  [[nodiscard]] const LevelSet* find_iface_levels(const std::string& iface,
                                                  const std::string& prop) const;
};

/// Parses a textual domain spec.  `params` supplies values for named
/// parameters referenced in formulae (e.g. a cost weight swept by an
/// experiment).
[[nodiscard]] DomainSpec parse_domain(const std::string& text,
                                      const expr::ParamTable& params = {});

}  // namespace sekitei::spec
