#include "spec/spec.hpp"

#include <set>
#include <sstream>

#include "expr/lexer.hpp"
#include "expr/monotonicity.hpp"
#include "support/error.hpp"

namespace sekitei::spec {

const PropertySpec* InterfaceSpec::find_property(const std::string& prop) const {
  for (const PropertySpec& p : properties) {
    if (p.name == prop) return &p;
  }
  return nullptr;
}

LevelTag InterfaceSpec::tag_of(const std::string& prop) const {
  const PropertySpec* p = find_property(prop);
  return p ? p->tag : LevelTag::None;
}

InterfaceSpec& DomainSpec::add_interface(InterfaceSpec spec) {
  if (find_interface(spec.name)) raise("duplicate interface spec: " + spec.name);
  interfaces_.push_back(std::move(spec));
  return interfaces_.back();
}

ComponentSpec& DomainSpec::add_component(ComponentSpec spec) {
  if (find_component(spec.name)) raise("duplicate component spec: " + spec.name);
  components_.push_back(std::move(spec));
  return components_.back();
}

const InterfaceSpec* DomainSpec::find_interface(const std::string& name) const {
  for (const InterfaceSpec& s : interfaces_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const ComponentSpec* DomainSpec::find_component(const std::string& name) const {
  for (const ComponentSpec& s : components_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void DomainSpec::set_levels(const std::string& iface, const std::string& prop,
                            LevelSet levels) {
  for (InterfaceSpec& s : interfaces_) {
    if (s.name == iface) {
      if (!s.find_property(prop)) raise("set_levels: unknown property " + iface + "." + prop);
      s.levels[prop] = std::move(levels);
      return;
    }
  }
  raise("set_levels: unknown interface " + iface);
}

void DomainSpec::clear_levels() {
  for (InterfaceSpec& s : interfaces_) s.levels.clear();
}

namespace {

/// Checks that every role reference in `ast` resolves against the spec.
void check_roles(const expr::Node& ast, const DomainSpec& dom,
                 const std::vector<std::string>& iface_scopes, bool allow_link,
                 const std::string& where) {
  if (ast.kind == expr::NodeKind::Var) {
    const expr::RoleRef& r = ast.ref;
    if (r.scope == "node") return;  // any node resource name is allowed
    if (r.scope == "link") {
      if (!allow_link) raise(where + ": 'link' resources are only available in cross blocks");
      return;
    }
    for (const std::string& s : iface_scopes) {
      if (s == r.scope) {
        const InterfaceSpec* ispec = dom.find_interface(r.scope);
        SEKITEI_ASSERT(ispec != nullptr);
        if (!ispec->find_property(r.prop)) {
          raise(where + ": interface " + r.scope + " has no property '" + r.prop + "'");
        }
        return;
      }
    }
    raise(where + ": unknown scope '" + r.scope + "' in " + r.str());
  }
  if (ast.a) check_roles(*ast.a, dom, iface_scopes, allow_link, where);
  if (ast.b) check_roles(*ast.b, dom, iface_scopes, allow_link, where);
}

void check_monotone(const expr::Node& ast, const std::string& where) {
  if (!expr::is_monotone(ast)) {
    raise(where + ": formula is not syntactically monotone: " + ast.str() +
          " (Sekitei's soundness premise, Section 2.2)");
  }
}

}  // namespace

void DomainSpec::validate() const {
  std::set<std::string> produced;
  for (const ComponentSpec& c : components_) {
    std::vector<std::string> scopes;
    for (const std::string& i : c.inputs) {
      if (!find_interface(i)) raise("component " + c.name + " requires unknown interface " + i);
      scopes.push_back(i);
    }
    for (const std::string& i : c.outputs) {
      if (!find_interface(i)) raise("component " + c.name + " implements unknown interface " + i);
      scopes.push_back(i);
      produced.insert(i);
    }
    const std::string where = "component " + c.name;
    for (const auto& cond : c.conditions) {
      check_roles(*cond.lhs, *this, scopes, false, where);
      check_roles(*cond.rhs, *this, scopes, false, where);
      check_monotone(*cond.lhs, where);
      check_monotone(*cond.rhs, where);
    }
    for (const auto& eff : c.effects) {
      check_roles(*eff.value, *this, scopes, false, where);
      check_monotone(*eff.value, where);
      // Effect targets must be an output property or a node resource.
      if (eff.target.scope != "node") {
        bool is_output = false;
        for (const std::string& o : c.outputs) is_output = is_output || o == eff.target.scope;
        if (!is_output) {
          raise(where + ": effect target " + eff.target.str() +
                " is not an implemented interface or node resource");
        }
      }
    }
    if (c.cost) {
      check_roles(*c.cost, *this, scopes, false, where + " cost");
      check_monotone(*c.cost, where + " cost");
    }
  }
  for (const InterfaceSpec& s : interfaces_) {
    const std::string where = "interface " + s.name;
    const std::vector<std::string> scopes{s.name};
    for (const auto& cond : s.cross_conditions) {
      check_roles(*cond.lhs, *this, scopes, true, where);
      check_roles(*cond.rhs, *this, scopes, true, where);
    }
    for (const auto& eff : s.cross_effects) {
      check_roles(*eff.value, *this, scopes, true, where);
      check_monotone(*eff.value, where);
      if (eff.target.scope != "link" && eff.target.scope != s.name) {
        raise(where + ": cross effect target " + eff.target.str() +
              " must be the interface itself or a link resource");
      }
    }
    if (s.cross_cost) {
      check_roles(*s.cross_cost, *this, scopes, true, where + " cost");
      check_monotone(*s.cross_cost, where + " cost");
    }
    for (const auto& [prop, lv] : s.levels) {
      if (!s.find_property(prop)) {
        raise(where + ": levels given for unknown property '" + prop + "'");
      }
      (void)lv;
    }
  }
}

void DomainSpec::auto_tag_properties() {
  // Conservative syntactic rule: look at every consumer condition that
  // mentions interface property P.  If increasing P only ever makes the
  // conditions (weakly) easier to satisfy, P behaves like bandwidth =>
  // Degradable; if it only makes them harder, it behaves like latency =>
  // Upgradable.  Conflicting or equality usage leaves the tag unset.
  for (InterfaceSpec& iface : interfaces_) {
    for (PropertySpec& prop : iface.properties) {
      if (prop.tag != LevelTag::None) continue;  // explicit tags win
      const std::string var = iface.name + "." + prop.name;
      bool easier = false, harder = false, mixed = false;
      auto classify = [&](const expr::ConditionAst& cond) {
        // Direction of (lhs - rhs) with respect to var.
        auto dl = expr::analyze(*cond.lhs);
        auto dr = expr::analyze(*cond.rhs);
        const auto itl = dl.find(var);
        const auto itr = dr.find(var);
        if (itl == dl.end() && itr == dr.end()) return;
        using expr::Direction;
        Direction d = expr::combine_add(
            itl == dl.end() ? Direction::Constant : itl->second,
            expr::flip(itr == dr.end() ? Direction::Constant : itr->second));
        if (cond.op == expr::CmpOp::Eq || cond.op == expr::CmpOp::Ne ||
            d == Direction::Unknown) {
          mixed = true;
          return;
        }
        const bool ge_like = cond.op == expr::CmpOp::Ge || cond.op == expr::CmpOp::Gt;
        // ge-like condition gets easier when (lhs - rhs) grows.
        if (d == Direction::Constant) return;
        const bool grows = d == Direction::NonDecreasing;
        if (ge_like == grows) {
          easier = true;
        } else {
          harder = true;
        }
      };
      for (const ComponentSpec& c : components_) {
        bool consumes = false;
        for (const std::string& in : c.inputs) consumes = consumes || in == iface.name;
        if (!consumes) continue;
        for (const auto& cond : c.conditions) classify(cond);
      }
      for (const auto& cond : iface.cross_conditions) classify(cond);
      if (mixed || (easier && harder)) continue;
      if (easier) prop.tag = LevelTag::Degradable;
      if (harder) prop.tag = LevelTag::Upgradable;
    }
  }
}

const LevelSet* LevelScenario::find_iface_levels(const std::string& iface,
                                                 const std::string& prop) const {
  auto it = iface_levels.find({iface, prop});
  return it == iface_levels.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// DSL parser
// ---------------------------------------------------------------------------

namespace {

using expr::Lexer;
using expr::Tok;

/// True when the upcoming tokens look like an effect statement
/// (IDENT '.' IDENT ['] (:=|+=|-=)).
bool at_effect(const Lexer& lex) {
  if (lex.peek(0).kind != Tok::Ident || lex.peek(1).kind != Tok::Dot ||
      lex.peek(2).kind != Tok::Ident) {
    return false;
  }
  std::size_t i = 3;
  if (lex.peek(i).kind == Tok::Prime) ++i;
  const Tok k = lex.peek(i).kind;
  return k == Tok::Assign || k == Tok::PlusEq || k == Tok::MinusEq;
}

LevelSet parse_level_block(Lexer& lex) {
  lex.expect(Tok::LBrace);
  std::vector<double> cuts;
  if (lex.peek().kind != Tok::RBrace) {
    do {
      cuts.push_back(lex.expect(Tok::Number).number);
    } while (lex.accept(Tok::Comma));
  }
  lex.expect(Tok::RBrace);
  return LevelSet(std::move(cuts));
}

InterfaceSpec parse_interface(Lexer& lex, const expr::ParamTable& params) {
  InterfaceSpec spec;
  spec.name = lex.expect(Tok::Ident).text;
  lex.expect(Tok::LBrace);
  while (!lex.accept(Tok::RBrace)) {
    if (lex.accept_keyword("property")) {
      PropertySpec p;
      p.name = lex.expect(Tok::Ident).text;
      for (;;) {
        if (lex.accept_keyword("degradable")) {
          p.tag = LevelTag::Degradable;
        } else if (lex.accept_keyword("upgradable")) {
          p.tag = LevelTag::Upgradable;
        } else if (lex.accept_keyword("init")) {
          p.initial = lex.expect(Tok::Number).number;
        } else {
          break;
        }
      }
      lex.expect(Tok::Semi);
      spec.properties.push_back(std::move(p));
    } else if (lex.accept_keyword("cross")) {
      lex.expect(Tok::LBrace);
      while (!lex.accept(Tok::RBrace)) {
        if (at_effect(lex)) {
          spec.cross_effects.push_back(expr::parse_effect(lex, params));
        } else {
          spec.cross_conditions.push_back(expr::parse_condition(lex, params));
        }
        lex.expect(Tok::Semi);
      }
    } else if (lex.accept_keyword("cost")) {
      spec.cross_cost = expr::parse_expr(lex, params);
      lex.expect(Tok::Semi);
    } else if (lex.accept_keyword("levels")) {
      const std::string prop = lex.expect(Tok::Ident).text;
      spec.levels[prop] = parse_level_block(lex);
    } else {
      raise("parse error at line " + std::to_string(lex.line()) +
            ": expected property/cross/cost/levels in interface " + spec.name);
    }
  }
  return spec;
}

ComponentSpec parse_component(Lexer& lex, const expr::ParamTable& params) {
  ComponentSpec spec;
  spec.name = lex.expect(Tok::Ident).text;
  lex.expect(Tok::LBrace);
  while (!lex.accept(Tok::RBrace)) {
    if (lex.accept_keyword("requires")) {
      do {
        spec.inputs.push_back(lex.expect(Tok::Ident).text);
      } while (lex.accept(Tok::Comma));
      lex.expect(Tok::Semi);
    } else if (lex.accept_keyword("implements")) {
      do {
        spec.outputs.push_back(lex.expect(Tok::Ident).text);
      } while (lex.accept(Tok::Comma));
      lex.expect(Tok::Semi);
    } else if (lex.accept_keyword("conditions")) {
      lex.expect(Tok::LBrace);
      while (!lex.accept(Tok::RBrace)) {
        spec.conditions.push_back(expr::parse_condition(lex, params));
        lex.expect(Tok::Semi);
      }
    } else if (lex.accept_keyword("effects")) {
      lex.expect(Tok::LBrace);
      while (!lex.accept(Tok::RBrace)) {
        if (!at_effect(lex)) {
          raise("parse error at line " + std::to_string(lex.line()) +
                ": expected an effect assignment in component " + spec.name);
        }
        spec.effects.push_back(expr::parse_effect(lex, params));
        lex.expect(Tok::Semi);
      }
    } else if (lex.accept_keyword("cost")) {
      spec.cost = expr::parse_expr(lex, params);
      lex.expect(Tok::Semi);
    } else {
      raise("parse error at line " + std::to_string(lex.line()) +
            ": expected requires/implements/conditions/effects/cost in component " + spec.name);
    }
  }
  return spec;
}

}  // namespace

DomainSpec parse_domain(const std::string& text, const expr::ParamTable& params) {
  Lexer lex(text);
  DomainSpec dom;
  expr::ParamTable table = params;  // `param` defaults may extend this
  while (!lex.at_end()) {
    if (lex.accept_keyword("param")) {
      const std::string name = lex.expect(Tok::Ident).text;
      if (!lex.accept(Tok::Eq)) lex.accept(Tok::Assign);
      double sign = lex.accept(Tok::Minus) ? -1.0 : 1.0;
      const double v = sign * lex.expect(Tok::Number).number;
      lex.expect(Tok::Semi);
      // Caller-supplied values override spec defaults.
      table.emplace(name, v);
    } else if (lex.accept_keyword("interface")) {
      dom.add_interface(parse_interface(lex, table));
    } else if (lex.accept_keyword("component")) {
      dom.add_component(parse_component(lex, table));
    } else {
      raise("parse error at line " + std::to_string(lex.line()) +
            ": expected 'interface', 'component' or 'param'");
    }
  }
  dom.validate();
  return dom;
}

}  // namespace sekitei::spec
