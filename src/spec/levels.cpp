#include "spec/levels.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace sekitei::spec {

LevelSet::LevelSet(std::vector<double> cutpoints) : cutpoints_(std::move(cutpoints)) {
  for (std::size_t i = 0; i < cutpoints_.size(); ++i) {
    if (cutpoints_[i] <= 0) raise("level cutpoints must be positive");
    if (i > 0 && cutpoints_[i] <= cutpoints_[i - 1]) {
      raise("level cutpoints must be strictly increasing");
    }
  }
}

Interval LevelSet::interval(std::uint32_t k) const {
  SEKITEI_ASSERT(k < count());
  const double lo = k == 0 ? 0.0 : cutpoints_[k - 1];
  if (k == cutpoints_.size()) return {lo, kInf};
  return {lo, cutpoints_[k], /*hi_open=*/true};
}

std::uint32_t LevelSet::level_of(double v) const {
  SEKITEI_ASSERT(v >= 0.0);
  const auto it = std::upper_bound(cutpoints_.begin(), cutpoints_.end(), v);
  return static_cast<std::uint32_t>(it - cutpoints_.begin());
}

LevelSet LevelSet::scaled(double factor) const {
  SEKITEI_ASSERT(factor > 0.0);
  std::vector<double> cuts = cutpoints_;
  for (double& c : cuts) {
    // Snap to a 1e-9 grid: proportional level sets must line up *exactly*
    // with the formulae that relate the streams (e.g. T = 0.7 * M), or
    // floating-point crumbs open hairline satisfiability windows between
    // levels that are disjoint over the reals.
    c = std::round(c * factor * 1e9) / 1e9;
  }
  return LevelSet(std::move(cuts));
}

std::string LevelSet::str() const {
  std::ostringstream os;
  for (std::uint32_t k = 0; k < count(); ++k) {
    if (k) os << ' ';
    os << interval(k).str();
  }
  return os.str();
}

const char* level_tag_name(LevelTag t) {
  switch (t) {
    case LevelTag::None: return "none";
    case LevelTag::Degradable: return "degradable";
    case LevelTag::Upgradable: return "upgradable";
  }
  return "?";
}

}  // namespace sekitei::spec
