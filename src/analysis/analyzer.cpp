#include "analysis/analyzer.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "analysis/hygiene.hpp"
#include "analysis/reachability.hpp"
#include "analysis/symmetry.hpp"
#include "model/problem.hpp"
#include "net/network.hpp"

namespace sekitei::analysis {

namespace {

using model::ActionKind;
using model::CompiledProblem;
using model::GroundAction;

/// Applies suppression, --Werror promotion and the per-code cap around the
/// raw check emissions.
class Emitter {
 public:
  Emitter(AnalysisReport& report, const AnalysisOptions& options)
      : report_(report), options_(options) {
    emitted_.fill(0);
    overflow_.fill(0);
  }

  void operator()(Code code, std::string subject, std::string message,
                  std::string source) {
    if (std::find(options_.suppress.begin(), options_.suppress.end(), code) !=
        options_.suppress.end()) {
      ++report_.suppressed;
      return;
    }
    const auto idx = static_cast<std::size_t>(code);
    if (options_.max_per_code != 0 && emitted_[idx] >= options_.max_per_code) {
      ++overflow_[idx];
      return;
    }
    ++emitted_[idx];
    Diagnostic d;
    d.code = code;
    d.severity = default_severity(code);
    if (options_.werror && d.severity == Severity::Warning) d.severity = Severity::Error;
    d.subject = std::move(subject);
    d.message = std::move(message);
    d.source = std::move(source);
    report_.diagnostics.push_back(std::move(d));
  }

  /// Appends one trailing note per overflowed code.
  void flush_overflow() {
    for (std::size_t i = 0; i < kCodeCount; ++i) {
      if (overflow_[i] == 0) continue;
      Diagnostic d;
      d.code = static_cast<Code>(i);
      d.severity = Severity::Note;
      d.subject = "analysis";
      d.message = std::to_string(overflow_[i]) + " further " +
                  code_name(static_cast<Code>(i)) + " finding(s) omitted (cap " +
                  std::to_string(options_.max_per_code) + " per code)";
      report_.diagnostics.push_back(std::move(d));
    }
  }

 private:
  AnalysisReport& report_;
  const AnalysisOptions& options_;
  std::array<std::size_t, kCodeCount> emitted_{};
  std::array<std::size_t, kCodeCount> overflow_{};
};

bool component_preplaced(const CompiledProblem& cp, const std::string& name) {
  for (const auto& [comp, node] : cp.problem->preplaced) {
    if (comp == name) return true;
  }
  return false;
}

bool interface_used(const CompiledProblem& cp, std::uint32_t iface) {
  const std::string& name = cp.iface_names[iface];
  for (std::size_t c = 0; c < cp.domain->component_count(); ++c) {
    const spec::ComponentSpec& cs = cp.domain->component_at(c);
    if (std::find(cs.inputs.begin(), cs.inputs.end(), name) != cs.inputs.end()) return true;
    if (std::find(cs.outputs.begin(), cs.outputs.end(), name) != cs.outputs.end()) return true;
  }
  return false;
}

bool interface_available_anywhere(const CompiledProblem& cp, const ReachabilityResult& reach,
                                  std::uint32_t iface) {
  const std::uint32_t levels = cp.iface_levels[iface].levels.count();
  for (NodeId n : cp.net->node_ids()) {
    for (std::uint32_t k = 0; k < levels; ++k) {
      if (reach.reached(cp.props.find_avail(InterfaceId(iface), n, k))) return true;
    }
  }
  return false;
}

/// Stage 1's verdict on one goal proposition; emits nothing when the goal is
/// reached (or already holds initially).
template <class Fn>
void goal_verdict(const CompiledProblem& cp, const ReachabilityResult& reach, PropId gp,
                  Fn&& emit) {
  if (cp.init_holds(gp) || reach.reached(gp)) return;
  const model::PropKey& key = cp.props.key(gp);
  const std::string comp = cp.domain->component_at(key.entity).name;
  const NodeId node(key.node);
  if (cp.achievers_of(gp).empty()) {
    std::string why =
        cp.problem->placeable_at(comp, node)
            ? "every leveled placement of it was pruned during grounding — no level "
              "combination satisfies its conditions against the node's capacities"
            : "the problem's placement rules forbid placing it there and it is not "
              "preplaced";
    emit(Code::GoalUnplaceable, "goal " + cp.describe(gp),
         "no ground action can ever achieve this goal: " + why +
             "; the instance is provably infeasible");
  } else {
    emit(Code::GoalUnreachable, "goal " + cp.describe(gp),
         "unreachable under interval-relaxed reachability: no sequence of ground "
         "actions composes producible values that satisfy every precondition on "
         "the way to this goal; the instance is provably infeasible");
  }
}

void stage1_reachability(const CompiledProblem& cp, const ReachabilityResult& reach,
                         const AnalysisOptions& options, AnalysisReport& report,
                         Emitter& emit) {
  if (!reach.converged) {
    emit(Code::AnalysisInconclusive, "reachability fixpoint",
         "interval widening did not converge within " + std::to_string(options.max_sweeps) +
             " sweeps (a self-amplifying production cycle?); no unreachability "
             "claims are made",
         "");
    return;
  }
  for (PropId gp : cp.goal_props) {
    goal_verdict(cp, reach, gp,
                 [&](Code code, std::string subject, std::string message) {
                   if (!report.provably_infeasible) {
                     report.provably_infeasible = true;
                     report.infeasible_reason = subject + ": " + message;
                   }
                   emit(code, std::move(subject), std::move(message), "");
                 });
  }
}

void stage2_intervals(const CompiledProblem& cp, const ReachabilityResult& reach,
                      Emitter& emit) {
  // Components no node admits.
  std::vector<char> has_place(cp.domain->component_count(), 0);
  std::vector<char> has_cross(cp.iface_names.size(), 0);
  for (const GroundAction& act : cp.actions) {
    if (act.kind == ActionKind::Place) {
      has_place[act.spec_index] = 1;
    } else {
      has_cross[act.spec_index] = 1;
    }
  }
  for (std::size_t c = 0; c < cp.domain->component_count(); ++c) {
    const std::string& name = cp.domain->component_at(c).name;
    if (has_place[c] || component_preplaced(cp, name)) continue;
    auto it = cp.problem->placement_rule.find(name);
    const bool forbidden = it != cp.problem->placement_rule.end() && it->second.empty();
    emit(Code::NeverPlaceableComponent, "component " + name,
         forbidden
             ? "placement is forbidden and it is preplaced nowhere — it can never exist"
             : "no node admits any leveled placement of it: every (node, level) "
               "combination was pruned against the network's capacities",
         "");
  }

  // Interfaces no link can carry.
  if (cp.net->link_count() > 0) {
    for (std::uint32_t i = 0; i < cp.iface_names.size(); ++i) {
      if (has_cross[i] || !interface_used(cp, i)) continue;
      emit(Code::InterfaceCannotCross, "interface " + cp.iface_names[i],
           "no level of it can cross any link (every crossing combination was "
           "pruned against link capacities); producers and consumers must be "
           "co-located",
           "");
    }
  }

  // Level cutpoints no producible value ever inhabits.
  if (!reach.converged) return;
  for (std::uint32_t i = 0; i < cp.iface_names.size(); ++i) {
    const model::IfaceLevelInfo& info = cp.iface_levels[i];
    if (!info.prop.valid() || !interface_used(cp, i)) continue;
    if (!interface_available_anywhere(cp, reach, i)) continue;  // SK202 reports it whole
    for (std::uint32_t k = 0; k < info.levels.count(); ++k) {
      bool inhabited = false;
      for (NodeId n : cp.net->node_ids()) {
        if (reach.reached(cp.props.find_avail(InterfaceId(i), n, k))) {
          inhabited = true;
          break;
        }
      }
      if (!inhabited) {
        emit(Code::UninhabitedLevel,
             "level L" + std::to_string(k) + " of " + cp.iface_names[i] + "." +
                 cp.names.str(info.prop),
             "interval " + info.levels.interval(k).str() +
                 " is never inhabited at any node; the cutpoints partition no "
                 "producible value there",
             "");
      }
    }
  }
}

void stage4_dead_code(const CompiledProblem& cp, const ReachabilityResult& reach,
                      Emitter& emit) {
  if (!reach.converged) return;
  for (std::uint32_t i = 0; i < cp.iface_names.size(); ++i) {
    if (!interface_used(cp, i)) continue;
    if (!interface_available_anywhere(cp, reach, i)) {
      emit(Code::UnreachableInterface, "interface " + cp.iface_names[i],
           "never becomes available at any node: nothing produces it from the "
           "initial state",
           "");
    }
  }
  for (std::uint32_t ai = 0; ai < cp.actions.size(); ++ai) {
    if (reach.fired(ActionId(ai))) continue;
    const GroundAction& act = cp.actions[ai];
    std::string why = "no producible input values satisfy its conditions and "
                      "asserted output levels";
    for (PropId p : act.pre) {
      if (!reach.reached(p)) {
        why = "precondition " + cp.describe(p) + " is never reached";
        break;
      }
    }
    emit(Code::DeadAction, "action " + cp.describe(ActionId(ai)), why + "; the action is dead",
         "");
  }
}

}  // namespace

std::size_t AnalysisReport::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) n += d.severity == s;
  return n;
}

int AnalysisReport::exit_code() const { return count(Severity::Error) > 0 ? 1 : 0; }

std::string AnalysisReport::render_text() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.text();
    out.push_back('\n');
  }
  const std::size_t errors = count(Severity::Error);
  const std::size_t warnings = count(Severity::Warning);
  const std::size_t notes = count(Severity::Note);
  if (diagnostics.empty()) {
    out += "clean: no findings";
  } else {
    out += std::to_string(errors) + " error(s), " + std::to_string(warnings) +
           " warning(s), " + std::to_string(notes) + " note(s)";
  }
  if (suppressed > 0) out += ", " + std::to_string(suppressed) + " suppressed";
  out.push_back('\n');
  return out;
}

std::string AnalysisReport::render_ndjson() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.json();
    out.push_back('\n');
  }
  return out;
}

AnalysisReport analyze(const model::CompiledProblem& cp, const AnalysisOptions& options) {
  AnalysisReport report;
  Emitter emit(report, options);

  ReachabilityResult reach;
  if (options.reachability || options.intervals) {
    reach = relaxed_reach(cp, options.max_sweeps);
    report.converged = reach.converged;
    report.sweeps = reach.sweeps;
    report.props_reached = reach.props_reached_count();
    report.actions_fireable = reach.actions_fired_count();
  }

  if (options.reachability) stage1_reachability(cp, reach, options, report, emit);
  if (options.intervals) stage2_intervals(cp, reach, emit);
  if (options.symmetry) {
    run_symmetry_checks(cp, [&](Code code, std::string subject, std::string message,
                                std::string source) {
      emit(code, std::move(subject), std::move(message), std::move(source));
    });
  }
  if (options.hygiene) {
    run_hygiene_checks(cp, [&](Code code, std::string subject, std::string message,
                               std::string source) {
      emit(code, std::move(subject), std::move(message), std::move(source));
    });
  }
  if (options.reachability) stage4_dead_code(cp, reach, emit);
  emit.flush_overflow();
  return report;
}

PreflightVerdict preflight(const model::CompiledProblem& cp, std::uint32_t max_sweeps) {
  PreflightVerdict verdict;
  const ReachabilityResult reach = relaxed_reach(cp, max_sweeps);
  verdict.sweeps = reach.sweeps;
  if (!reach.converged) return verdict;  // inconclusive: let the planner decide
  for (PropId gp : cp.goal_props) {
    goal_verdict(cp, reach, gp, [&](Code code, std::string subject, std::string message) {
      if (!verdict.infeasible) {
        verdict.infeasible = true;
        verdict.code = code_id(code);
        verdict.reason = subject + ": " + message;
      }
    });
    if (verdict.infeasible) break;
  }
  return verdict;
}

}  // namespace sekitei::analysis
