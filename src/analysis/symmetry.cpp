#include "analysis/symmetry.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace sekitei::analysis {

namespace {

using model::CompiledProblem;

std::string number_sig(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Canonical rendering of a link's (class, resource map): equal signatures
/// iff the links are interchangeable for every compiled condition.
std::string link_sig(const net::Link& l) {
  std::string out(net::link_class_name(l.cls));
  for (const auto& [k, v] : l.resources) {  // std::map: sorted keys
    out += '|';
    out += k;
    out += '=';
    out += number_sig(v);
  }
  return out;
}

std::vector<char> pinned_nodes(const CompiledProblem& cp) {
  std::vector<char> pinned(cp.net->node_count(), 0);
  auto pin = [&](NodeId n) {
    if (n.valid() && n.index() < pinned.size()) pinned[n.index()] = 1;
  };
  for (const auto& s : cp.problem->initial_streams) pin(s.node);
  for (const auto& [comp, n] : cp.problem->preplaced) pin(n);
  pin(cp.problem->goal_node);
  for (const auto& [comp, n] : cp.problem->extra_goals) pin(n);
  return pinned;
}

/// Seed color: resource vector + per-component placement-rule admissibility;
/// pinned nodes get a unique color (they can never be swapped for a twin —
/// the initial state and the goal name them).
std::vector<std::string> seed_signatures(const CompiledProblem& cp,
                                         const std::vector<char>& pinned) {
  const std::size_t n_nodes = cp.net->node_count();
  std::vector<std::string> sigs(n_nodes);
  for (std::size_t n = 0; n < n_nodes; ++n) {
    if (pinned[n] != 0) {
      sigs[n] = "pin#" + std::to_string(n);
      continue;
    }
    const NodeId id(static_cast<std::uint32_t>(n));
    std::string s = "res";
    for (const auto& [k, v] : cp.net->node(id).resources) {
      s += '|';
      s += k;
      s += '=';
      s += number_sig(v);
    }
    s += "!place";
    for (std::size_t c = 0; c < cp.domain->component_count(); ++c) {
      s += cp.problem->placeable_at(cp.domain->component_at(c).name, id) ? '1' : '0';
    }
    sigs[n] = std::move(s);
  }
  return sigs;
}

/// Per-node, per-neighbor multiset of incident-link signatures.
using NeighborSigs = std::map<std::uint32_t, std::vector<std::string>>;

std::vector<NeighborSigs> neighbor_signatures(const CompiledProblem& cp) {
  std::vector<NeighborSigs> out(cp.net->node_count());
  for (std::size_t n = 0; n < cp.net->node_count(); ++n) {
    const NodeId id(static_cast<std::uint32_t>(n));
    for (const LinkId lid : cp.net->links_at(id)) {
      const net::Link& l = cp.net->link(lid);
      out[n][l.other(id).index()].push_back(link_sig(l));
    }
    for (auto& [w, sigs] : out[n]) std::sort(sigs.begin(), sigs.end());
  }
  return out;
}

/// True when the transposition (r m) — swap r and m, fix every other node —
/// is an automorphism of the network.  Callers guarantee equal seed colors
/// (resources, placement rules, pinnedness), so only link structure is left:
/// for every third node w, the link multiset r–w must equal m–w, and any
/// self-loops must swap onto each other.  Links r–m map to themselves.
bool transposition_ok(std::uint32_t r, std::uint32_t m,
                      const std::vector<NeighborSigs>& nbr) {
  NeighborSigs a = nbr[r];
  NeighborSigs b = nbr[m];
  a.erase(m);  // r–m links map onto m–r links: the same undirected links
  b.erase(r);
  const auto ita = a.find(r);  // self loops r–r <-> m–m
  const auto itb = b.find(m);
  const bool sa = ita != a.end(), sb = itb != b.end();
  if (sa != sb) return false;
  if (sa) {
    if (ita->second != itb->second) return false;
    a.erase(r);
    b.erase(m);
  }
  return a == b;
}

std::vector<std::vector<std::uint32_t>> compute_classes(const CompiledProblem& cp) {
  const std::size_t n_nodes = cp.net->node_count();
  const std::vector<char> pinned = pinned_nodes(cp);
  std::vector<std::string> sigs = seed_signatures(cp, pinned);
  const std::vector<NeighborSigs> nbr = neighbor_signatures(cp);

  // Color refinement to a fixpoint: refine each node's color by the multiset
  // of (neighbor color, link signature) pairs.  Colors only ever split, so a
  // round that does not grow the color count is the fixpoint.
  std::vector<std::uint32_t> color(n_nodes, 0);
  std::size_t color_count = 0;
  {
    std::map<std::string, std::uint32_t> dense;
    for (std::size_t n = 0; n < n_nodes; ++n) {
      color[n] = dense.emplace(sigs[n], static_cast<std::uint32_t>(dense.size()))
                     .first->second;
    }
    color_count = dense.size();
  }
  for (std::size_t round = 0; round < n_nodes; ++round) {
    std::map<std::string, std::uint32_t> dense;
    std::vector<std::uint32_t> next(n_nodes, 0);
    for (std::size_t n = 0; n < n_nodes; ++n) {
      std::string s = "c" + std::to_string(color[n]);
      std::vector<std::string> parts;
      for (const auto& [w, lsigs] : nbr[n]) {
        for (const std::string& ls : lsigs) {
          parts.push_back(std::to_string(color[w]) + '~' + ls);
        }
      }
      std::sort(parts.begin(), parts.end());
      for (const std::string& p : parts) {
        s += '/';
        s += p;
      }
      next[n] = dense.emplace(std::move(s), static_cast<std::uint32_t>(dense.size()))
                    .first->second;
    }
    color = std::move(next);
    if (dense.size() == color_count) break;
    color_count = dense.size();
  }

  // Refinement over-approximates the orbit partition: verify each candidate
  // class member by an explicit transposition-automorphism check against a
  // representative.  Failed members regroup among themselves (conjugation
  // keeps verified classes transitive: (n m)(m k)(n m) = (n k)).
  std::map<std::uint32_t, std::vector<std::uint32_t>> by_color;
  for (std::size_t n = 0; n < n_nodes; ++n) {
    by_color[color[n]].push_back(static_cast<std::uint32_t>(n));
  }
  std::vector<std::vector<std::uint32_t>> classes;
  for (auto& [c, members] : by_color) {
    std::vector<std::uint32_t> todo = members;  // ascending by construction
    while (!todo.empty()) {
      std::vector<std::uint32_t> cls{todo.front()};
      std::vector<std::uint32_t> rest;
      for (std::size_t i = 1; i < todo.size(); ++i) {
        if (transposition_ok(cls.front(), todo[i], nbr)) {
          cls.push_back(todo[i]);
        } else {
          rest.push_back(todo[i]);
        }
      }
      classes.push_back(std::move(cls));
      todo = std::move(rest);
    }
  }
  std::sort(classes.begin(), classes.end(),
            [](const auto& x, const auto& y) { return x.front() < y.front(); });
  return classes;
}

void compute_dominance(const CompiledProblem& cp, SymmetryAnalysis& out) {
  const std::size_t n_nodes = cp.net->node_count();
  const std::vector<NeighborSigs> nbr_sigs = neighbor_signatures(cp);

  // Per-node single-link-per-neighbor resource view; multi-edges make hull
  // comparison ambiguous, so dominance claims nothing across them.
  std::vector<std::map<std::uint32_t, std::vector<LinkId>>> nbr(n_nodes);
  for (std::size_t n = 0; n < n_nodes; ++n) {
    const NodeId id(static_cast<std::uint32_t>(n));
    for (const LinkId lid : cp.net->links_at(id)) {
      nbr[n][cp.net->link(lid).other(id).index()].push_back(lid);
    }
  }

  auto dominates = [&](std::uint32_t a, std::uint32_t b) {
    if (a == b || out.pinned[b] != 0 || out.pinned[a] != 0) return false;
    const NodeId na(a), nb(b);
    // Placement rules: everything allowed on B must be allowed on A.
    for (std::size_t c = 0; c < cp.domain->component_count(); ++c) {
      const std::string& comp = cp.domain->component_at(c).name;
      if (cp.problem->placeable_at(comp, nb) && !cp.problem->placeable_at(comp, na)) {
        return false;
      }
    }
    // Node capacities: pointwise >= over B's declared resources.
    for (const auto& [k, v] : cp.net->node(nb).resources) {
      if (cp.net->node(na).resource(k) < v) return false;
    }
    // Neighborhood: A reaches every neighbor of B over a link whose resource
    // hull is pointwise >= B's link.  Self loops and parallel links bail.
    for (const auto& [w, blinks] : nbr[b]) {
      if (w == a) continue;  // the B–A link itself needs no counterpart
      if (w == b || blinks.size() != 1) return false;
      const auto it = nbr[a].find(w);
      if (it == nbr[a].end() || it->second.size() != 1) return false;
      const net::Link& bl = cp.net->link(blinks.front());
      const net::Link& al = cp.net->link(it->second.front());
      for (const auto& [k, v] : bl.resources) {
        if (al.resource(k) < v) return false;
      }
    }
    return true;
  };

  for (std::uint32_t b = 0; b < n_nodes; ++b) {
    if (out.pinned[b] != 0) continue;
    for (std::uint32_t a = 0; a < n_nodes; ++a) {
      if (dominates(a, b) && !dominates(b, a)) {
        out.dominated.push_back({b, a});
        break;  // report the smallest-index strict dominator only
      }
    }
  }
}

void compute_unusable(const CompiledProblem& cp, SymmetryAnalysis& out) {
  const std::size_t n_nodes = cp.net->node_count();
  const std::size_t n_comps = cp.domain->component_count();
  std::vector<char> place_at(n_nodes, 0);
  std::vector<char> comp_placeable(n_comps, 0);
  for (const model::GroundAction& act : cp.actions) {
    if (act.kind != model::ActionKind::Place) continue;
    if (act.node.index() < n_nodes) place_at[act.node.index()] = 1;
    if (act.spec_index < n_comps) comp_placeable[act.spec_index] = 1;
  }
  for (std::uint32_t n = 0; n < n_nodes; ++n) {
    if (out.pinned[n] != 0 || place_at[n] != 0) continue;
    // Only flag nodes some *ground-placeable* component's rules admit:
    // a node every rule forbids is intentional (forbid/restrict), and a
    // component with no placement anywhere is SK101's finding, not SK111's.
    bool admitted = false;
    for (std::size_t c = 0; c < n_comps && !admitted; ++c) {
      admitted = comp_placeable[c] != 0 &&
                 cp.problem->placeable_at(cp.domain->component_at(c).name,
                                          NodeId(n));
    }
    if (admitted) out.unusable.push_back(n);
  }
}

}  // namespace

SymmetryAnalysis analyze_symmetry(const CompiledProblem& cp) {
  SymmetryAnalysis out;
  out.pinned = pinned_nodes(cp);
  out.class_members = compute_classes(cp);
  out.node_class.assign(cp.net->node_count(), 0);
  for (std::size_t c = 0; c < out.class_members.size(); ++c) {
    for (const std::uint32_t n : out.class_members[c]) {
      out.node_class[n] = static_cast<std::uint32_t>(c);
    }
    if (out.class_members[c].size() >= 2) ++out.symmetric_classes;
  }
  compute_dominance(cp, out);
  compute_unusable(cp, out);
  return out;
}

void attach_symmetry(model::CompiledProblem& cp) {
  const std::vector<std::vector<std::uint32_t>> classes = compute_classes(cp);
  cp.node_class.assign(cp.net->node_count(), 0);
  cp.node_class_members = classes;
  cp.symmetric_class_count = 0;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    for (const std::uint32_t n : classes[c]) {
      cp.node_class[n] = static_cast<std::uint32_t>(c);
    }
    if (classes[c].size() >= 2) ++cp.symmetric_class_count;
  }
}

void run_symmetry_checks(const model::CompiledProblem& cp, const Emit& emit) {
  const SymmetryAnalysis s = analyze_symmetry(cp);
  auto node_name = [&](std::uint32_t n) { return cp.net->node(NodeId(n)).name; };

  for (const SymmetryAnalysis::Dominated& d : s.dominated) {
    emit(Code::DominatedNode, "node " + node_name(d.node),
         "strictly dominated by node '" + node_name(d.by) +
             "' (capacities, links, and allowed components all covered); no "
             "optimal plan needs it",
         "");
  }
  for (const std::uint32_t n : s.unusable) {
    emit(Code::UnusableNode, "node " + node_name(n),
         "placement rules admit components here, but leveling pruned every "
         "ground placement (capacities below every level combination)",
         "");
  }
  for (const auto& members : s.class_members) {
    if (members.size() < 2) continue;
    std::string list;
    for (const std::uint32_t n : members) {
      if (!list.empty()) list += ", ";
      list += node_name(n);
    }
    emit(Code::SymmetricNodeClass, "nodes {" + list + "}",
         "symmetric class of " + std::to_string(members.size()) +
             " interchangeable nodes; search needs only one representative",
         "");
  }
}

}  // namespace sekitei::analysis
