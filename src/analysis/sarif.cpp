#include "analysis/sarif.hpp"

#include <cstddef>

#include "support/json.hpp"

namespace sekitei::analysis {

namespace {

const char* sarif_level(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "note";
}

}  // namespace

std::string render_sarif(
    const std::vector<std::pair<std::string, AnalysisReport>>& files) {
  std::string out;
  out.reserve(4096);
  out +=
      "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"sekitei_lint\",\"rules\":[";
  for (std::size_t i = 0; i < kCodeCount; ++i) {
    const Code c = static_cast<Code>(i);
    if (i > 0) out.push_back(',');
    out += "{\"id\":";
    json::append_escaped(out, code_id(c));
    out += ",\"name\":";
    json::append_escaped(out, code_name(c));
    out += ",\"shortDescription\":{\"text\":";
    json::append_escaped(out, code_description(c));
    out += "},\"defaultConfiguration\":{\"level\":";
    json::append_escaped(out, sarif_level(default_severity(c)));
    out += "}}";
  }
  out += "]}},\"results\":[";
  bool first = true;
  for (const auto& [uri, report] : files) {
    for (const Diagnostic& d : report.diagnostics) {
      if (!first) out.push_back(',');
      first = false;
      out += "{\"ruleId\":";
      json::append_escaped(out, code_id(d.code));
      out += ",\"ruleIndex\":";
      json::append_number(out, static_cast<std::uint64_t>(d.code));
      out += ",\"level\":";
      json::append_escaped(out, sarif_level(d.severity));
      out += ",\"message\":{\"text\":";
      std::string text = d.subject + ": " + d.message;
      if (!d.source.empty()) text += " (at: " + d.source + ")";
      json::append_escaped(out, text);
      out += "},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":";
      json::append_escaped(out, uri);
      out += "}}}]}";
    }
  }
  out += "]}]}\n";
  return out;
}

}  // namespace sekitei::analysis
