// Interval-annotated relaxed reachability over a compiled problem.
//
// A delete-free ("relaxed") fixpoint over the ground leveled actions, with
// one extra annotation the purely logical PLRG does not carry: for every
// located stream variable, the hull of all values any sequence of fired
// actions could produce for it.  An action fires only when
//
//   * every logical precondition has been reached,
//   * every input slot still has usable values once the producible hull is
//     shifted by the slot's degradable/upgradable tag and met with the
//     slot's optimistic level interval (mirroring core/replay.cpp's merge),
//   * every condition is satisfiable over those narrowed slots, and
//   * every produced output still intersects its asserted level interval
//     after the effects run over the narrowed inputs.
//
// Because values are hulled (never intersected) across firings and inputs
// are narrowed per action exactly as the optimistic replay narrows them,
// the reached set over-approximates everything any real plan can do: a goal
// proposition this fixpoint cannot reach is *provably* unachievable — even
// in cases where each action looks viable in isolation (so compile-time
// leveling keeps it) and the goal is logically reachable (so the PLRG passes)
// but the composition of value-bounding effects caps a delivered property
// below every consumer's demand.  Those are exactly the "no plan exists"
// instances where the RG search grinds to exhaustion (Section 5's hard
// negatives), and this pass answers them in one linear sweep family.
//
// Interval widening may fail to converge on self-amplifying production
// cycles; the fixpoint then stops at `max_sweeps` with converged = false and
// callers must not claim unreachability (analysis stays sound by reporting
// "inconclusive" instead).
#pragma once

#include <cstdint>
#include <vector>

#include "model/compile.hpp"
#include "support/interval.hpp"

namespace sekitei::analysis {

struct ReachabilityResult {
  /// prop_reached[p] — proposition p is achievable in the relaxation.
  std::vector<char> prop_reached;
  /// action_fired[a] — action a fired at least once (its preconditions,
  /// conditions and output levels are all simultaneously serviceable).
  std::vector<char> action_fired;
  /// value[v] — hull of producible values of located variable v; empty when
  /// nothing (neither the initial state nor a fired action) defines it.
  std::vector<Interval> value;
  /// False when `max_sweeps` was exhausted before a full quiescent sweep;
  /// unreachability claims are only valid when true.
  bool converged = false;
  std::uint32_t sweeps = 0;

  [[nodiscard]] bool reached(PropId p) const {
    return p.valid() && p.index() < prop_reached.size() &&
           prop_reached[p.index()] != 0;
  }
  [[nodiscard]] bool fired(ActionId a) const {
    return a.valid() && a.index() < action_fired.size() &&
           action_fired[a.index()] != 0;
  }

  [[nodiscard]] std::uint64_t props_reached_count() const;
  [[nodiscard]] std::uint64_t actions_fired_count() const;
};

/// Runs the fixpoint to quiescence or `max_sweeps` full sweeps.
[[nodiscard]] ReachabilityResult relaxed_reach(const model::CompiledProblem& cp,
                                               std::uint32_t max_sweeps = 64);

}  // namespace sekitei::analysis
