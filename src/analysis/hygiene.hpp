// Spec hygiene checks (stage 3 of the analyzer battery): findings about the
// *specification* rather than about reachability — non-monotone formulae,
// declared degradable/upgradable tags contradicting the syntactic direction
// analysis, unused interfaces/properties, components with identical
// requires/implements signatures, duplicate names, and goals already
// satisfied by the initial deployment.
#pragma once

#include <functional>
#include <string>

#include "analysis/diagnostic.hpp"
#include "model/compile.hpp"

namespace sekitei::analysis {

/// Emission callback: (code, subject, message, source-span).
using Emit =
    std::function<void(Code, std::string, std::string, std::string)>;

void run_hygiene_checks(const model::CompiledProblem& cp, const Emit& emit);

}  // namespace sekitei::analysis
