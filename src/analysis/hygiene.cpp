#include "analysis/hygiene.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "expr/monotonicity.hpp"

namespace sekitei::analysis {

namespace {

using spec::ComponentSpec;
using spec::DomainSpec;
using spec::InterfaceSpec;
using spec::LevelTag;

void walk_refs(const expr::Node& n,
               const std::function<void(const expr::RoleRef&)>& fn) {
  if (n.kind == expr::NodeKind::Var) fn(n.ref);
  if (n.a) walk_refs(*n.a, fn);
  if (n.b) walk_refs(*n.b, fn);
}

/// Every (scope, property) role mentioned anywhere in the domain's formulae,
/// effect targets included.
std::set<std::pair<std::string, std::string>> collect_mentions(const DomainSpec& dom) {
  std::set<std::pair<std::string, std::string>> mentions;
  auto note = [&](const expr::RoleRef& ref) { mentions.emplace(ref.scope, ref.prop); };
  auto scan = [&](const expr::Node* n) {
    if (n != nullptr) walk_refs(*n, note);
  };
  for (std::size_t c = 0; c < dom.component_count(); ++c) {
    const ComponentSpec& cs = dom.component_at(c);
    for (const expr::ConditionAst& cond : cs.conditions) {
      scan(cond.lhs.get());
      scan(cond.rhs.get());
    }
    for (const expr::EffectAst& eff : cs.effects) {
      note(eff.target);
      scan(eff.value.get());
    }
    scan(cs.cost.get());
  }
  for (std::size_t i = 0; i < dom.interface_count(); ++i) {
    const InterfaceSpec& is = dom.interface_at(i);
    for (const expr::ConditionAst& cond : is.cross_conditions) {
      scan(cond.lhs.get());
      scan(cond.rhs.get());
    }
    for (const expr::EffectAst& eff : is.cross_effects) {
      note(eff.target);
      scan(eff.value.get());
    }
    scan(is.cross_cost.get());
  }
  return mentions;
}

void check_duplicate_names(const DomainSpec& dom, const Emit& emit) {
  for (std::size_t i = 1; i < dom.interface_count(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (dom.interface_at(i).name == dom.interface_at(j).name) {
        emit(Code::DuplicateName, "interface " + dom.interface_at(i).name,
             "declared more than once; lookups by name only ever see the first "
             "declaration",
             "");
        break;
      }
    }
  }
  for (std::size_t i = 1; i < dom.component_count(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (dom.component_at(i).name == dom.component_at(j).name) {
        emit(Code::DuplicateName, "component " + dom.component_at(i).name,
             "declared more than once; lookups by name only ever see the first "
             "declaration",
             "");
        break;
      }
    }
  }
}

void check_shadowed_components(const DomainSpec& dom, const Emit& emit) {
  auto signature = [](const ComponentSpec& cs) {
    std::vector<std::string> in = cs.inputs;
    std::vector<std::string> out = cs.outputs;
    std::sort(in.begin(), in.end());
    std::sort(out.begin(), out.end());
    return std::make_pair(in, out);
  };
  for (std::size_t i = 1; i < dom.component_count(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (dom.component_at(i).name == dom.component_at(j).name) continue;  // SK107 covers it
      if (signature(dom.component_at(i)) == signature(dom.component_at(j))) {
        emit(Code::ShadowedComponent, "component " + dom.component_at(i).name,
             "has the same requires/implements signature as component " +
                 dom.component_at(j).name +
                 "; every deployment using one admits the other, so the costlier "
                 "of the two is shadowed",
             "");
        break;
      }
    }
  }
}

void check_monotonicity(const DomainSpec& dom, const Emit& emit) {
  auto check = [&](const std::string& subject, const expr::Node* ast,
                   const std::string& source) {
    if (ast == nullptr || expr::is_monotone(*ast)) return;
    emit(Code::NonMonotoneFormula, subject,
         "formula is not syntactically monotone in every variable it mentions; "
         "optimistic interval reasoning over it is unsound (Section 2.2's "
         "monotonicity premise)",
         source);
  };
  for (std::size_t c = 0; c < dom.component_count(); ++c) {
    const ComponentSpec& cs = dom.component_at(c);
    const std::string subject = "component " + cs.name;
    for (const expr::ConditionAst& cond : cs.conditions) {
      check(subject, cond.lhs.get(), cond.str());
      check(subject, cond.rhs.get(), cond.str());
    }
    for (const expr::EffectAst& eff : cs.effects) check(subject, eff.value.get(), eff.str());
    check(subject, cs.cost.get(), cs.cost ? "cost " + cs.cost->str() : "");
  }
  for (std::size_t i = 0; i < dom.interface_count(); ++i) {
    const InterfaceSpec& is = dom.interface_at(i);
    const std::string subject = "interface " + is.name;
    for (const expr::ConditionAst& cond : is.cross_conditions) {
      check(subject, cond.lhs.get(), cond.str());
      check(subject, cond.rhs.get(), cond.str());
    }
    for (const expr::EffectAst& eff : is.cross_effects) {
      check(subject, eff.value.get(), eff.str());
    }
    check(subject, is.cross_cost.get(), is.cross_cost ? "cost " + is.cross_cost->str() : "");
  }
}

/// Direction of consumer conditions in (iface.prop): same aggregation as
/// DomainSpec::auto_tag_properties, used here in reverse — to flag declared
/// tags that contradict what the formulae say.
void check_tag_mismatch(const DomainSpec& dom, const Emit& emit) {
  for (std::size_t i = 0; i < dom.interface_count(); ++i) {
    const InterfaceSpec& iface = dom.interface_at(i);
    for (const spec::PropertySpec& prop : iface.properties) {
      if (prop.tag == LevelTag::None) continue;
      const std::string var = iface.name + "." + prop.name;
      bool easier = false, harder = false, mixed = false;
      auto classify = [&](const expr::ConditionAst& cond) {
        auto dl = expr::analyze(*cond.lhs);
        auto dr = expr::analyze(*cond.rhs);
        const auto itl = dl.find(var);
        const auto itr = dr.find(var);
        if (itl == dl.end() && itr == dr.end()) return;
        // Conditions coupling the property to node/link resources express
        // deployment cost, not the consumer's tolerance to level shifts;
        // they say nothing about what the tag declares.
        for (const auto& kv : dl) {
          if (kv.first.starts_with("node.") || kv.first.starts_with("link.")) return;
        }
        for (const auto& kv : dr) {
          if (kv.first.starts_with("node.") || kv.first.starts_with("link.")) return;
        }
        using expr::Direction;
        const Direction d = expr::combine_add(
            itl == dl.end() ? Direction::Constant : itl->second,
            expr::flip(itr == dr.end() ? Direction::Constant : itr->second));
        if (cond.op == expr::CmpOp::Eq || cond.op == expr::CmpOp::Ne ||
            d == Direction::Unknown) {
          mixed = true;
          return;
        }
        if (d == Direction::Constant) return;
        const bool ge_like = cond.op == expr::CmpOp::Ge || cond.op == expr::CmpOp::Gt;
        const bool grows = d == Direction::NonDecreasing;
        if (ge_like == grows) {
          easier = true;
        } else {
          harder = true;
        }
      };
      for (std::size_t c = 0; c < dom.component_count(); ++c) {
        const ComponentSpec& cs = dom.component_at(c);
        const bool consumes = std::find(cs.inputs.begin(), cs.inputs.end(), iface.name) !=
                              cs.inputs.end();
        if (!consumes) continue;
        for (const expr::ConditionAst& cond : cs.conditions) classify(cond);
      }
      for (const expr::ConditionAst& cond : iface.cross_conditions) classify(cond);
      if (mixed || (easier && harder) || (!easier && !harder)) continue;
      const LevelTag derived = easier ? LevelTag::Degradable : LevelTag::Upgradable;
      if (derived != prop.tag) {
        emit(Code::TagMismatch, "property " + var,
             std::string("declared ") + spec::level_tag_name(prop.tag) +
                 " but every consumer condition derives " +
                 spec::level_tag_name(derived) +
                 "; the cross-level closure this tag grants is unsound if the "
                 "declaration is wrong",
             "");
      }
    }
  }
}

void check_unused(const model::CompiledProblem& cp, const Emit& emit) {
  const DomainSpec& dom = *cp.domain;
  const auto mentions = collect_mentions(dom);

  for (std::size_t i = 0; i < dom.interface_count(); ++i) {
    const InterfaceSpec& iface = dom.interface_at(i);
    bool used = false;
    for (std::size_t c = 0; c < dom.component_count() && !used; ++c) {
      const ComponentSpec& cs = dom.component_at(c);
      used = std::find(cs.inputs.begin(), cs.inputs.end(), iface.name) != cs.inputs.end() ||
             std::find(cs.outputs.begin(), cs.outputs.end(), iface.name) != cs.outputs.end();
    }
    if (!used) {
      emit(Code::UnusedInterface, "interface " + iface.name,
           "no component requires or implements it", "");
      continue;  // per-property findings would only repeat the same news
    }
    for (const spec::PropertySpec& prop : iface.properties) {
      bool referenced = mentions.count({iface.name, prop.name}) != 0;
      // The leveled property is load-bearing even when no formula mentions it.
      const model::IfaceLevelInfo& info = cp.iface_levels[i];
      if (info.prop.valid() && cp.names.str(info.prop) == prop.name) referenced = true;
      for (const model::InitialStream& is : cp.problem->initial_streams) {
        if (is.iface == iface.name && is.prop == prop.name) referenced = true;
      }
      if (!referenced) {
        emit(Code::UnusedProperty, "property " + iface.name + "." + prop.name,
             "never referenced by any formula, level set, or initial stream", "");
      }
    }
  }
}

void check_goal_preplaced(const model::CompiledProblem& cp, const Emit& emit) {
  auto preplaced = [&](const std::string& comp, NodeId node) {
    for (const auto& [pc, pn] : cp.problem->preplaced) {
      if (pc == comp && pn == node) return true;
    }
    return false;
  };
  auto check = [&](const std::string& comp, NodeId node) {
    if (preplaced(comp, node)) {
      emit(Code::GoalPreplaced, "goal " + comp + " at " + cp.net->node(node).name,
           "the goal component is already preplaced at its goal node; the goal "
           "holds in the initial state and planning is a no-op for it",
           "");
    }
  };
  check(cp.problem->goal_component, cp.problem->goal_node);
  for (const auto& [comp, node] : cp.problem->extra_goals) check(comp, node);
}

}  // namespace

void run_hygiene_checks(const model::CompiledProblem& cp, const Emit& emit) {
  const DomainSpec& dom = *cp.domain;
  check_monotonicity(dom, emit);
  check_tag_mismatch(dom, emit);
  check_unused(cp, emit);
  check_shadowed_components(dom, emit);
  check_duplicate_names(dom, emit);
  check_goal_preplaced(cp, emit);
}

}  // namespace sekitei::analysis
