#include "analysis/diagnostic.hpp"

#include "support/json.hpp"

namespace sekitei::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "note";
}

namespace {

struct CodeInfo {
  Code code;
  const char* id;
  const char* name;
  Severity severity;
  const char* description;
};

constexpr CodeInfo kCodes[kCodeCount] = {
    {Code::GoalUnreachable, "SK001", "goal-unreachable", Severity::Error,
     "goal unreachable under interval-relaxed reachability — provably infeasible"},
    {Code::GoalUnplaceable, "SK002", "goal-unplaceable", Severity::Error,
     "no ground action can ever achieve the goal"},
    {Code::NeverPlaceableComponent, "SK101", "never-placeable-component", Severity::Warning,
     "no node admits any leveled placement of the component"},
    {Code::NonMonotoneFormula, "SK102", "non-monotone-formula", Severity::Warning,
     "formula violates the monotonicity premise"},
    {Code::TagMismatch, "SK103", "tag-mismatch", Severity::Warning,
     "declared degradable/upgradable tag contradicts the consumer conditions"},
    {Code::UnusedInterface, "SK104", "unused-interface", Severity::Warning,
     "no component requires or implements the interface"},
    {Code::UnusedProperty, "SK105", "unused-property", Severity::Warning,
     "property never referenced by any formula, level set, or stream"},
    {Code::ShadowedComponent, "SK106", "shadowed-component", Severity::Warning,
     "same requires/implements signature as another component"},
    {Code::DuplicateName, "SK107", "duplicate-name", Severity::Warning,
     "interface/component declared more than once"},
    {Code::GoalPreplaced, "SK108", "goal-preplaced", Severity::Warning,
     "the goal already holds in the initial state"},
    {Code::DominatedNode, "SK110", "dominated-node", Severity::Warning,
     "strictly dominated node: a twin with pointwise-greater capacities and links "
     "serves every plan this node could"},
    {Code::UnusableNode, "SK111", "unusable-node", Severity::Warning,
     "no component's contracts admit any placement on the node"},
    {Code::DeadAction, "SK201", "dead-action", Severity::Note,
     "ground action that can never fire"},
    {Code::UnreachableInterface, "SK202", "unreachable-interface", Severity::Note,
     "interface nothing produces from the initial state"},
    {Code::InterfaceCannotCross, "SK203", "interface-cannot-cross", Severity::Note,
     "no level of the interface can cross any link"},
    {Code::UninhabitedLevel, "SK204", "uninhabited-level", Severity::Note,
     "level interval no producible value ever inhabits"},
    {Code::AnalysisInconclusive, "SK205", "analysis-inconclusive", Severity::Note,
     "widening did not converge; no claims made"},
    {Code::SymmetricNodeClass, "SK301", "symmetric-node-class", Severity::Note,
     "interchangeable nodes: search only needs one representative per class"},
};

const CodeInfo& info(Code c) {
  for (const CodeInfo& ci : kCodes) {
    if (ci.code == c) return ci;
  }
  return kCodes[0];
}

}  // namespace

const char* code_id(Code c) { return info(c).id; }
const char* code_name(Code c) { return info(c).name; }
const char* code_description(Code c) { return info(c).description; }
Severity default_severity(Code c) { return info(c).severity; }

bool parse_code(const std::string& text, Code* out) {
  for (const CodeInfo& ci : kCodes) {
    if (text == ci.id || text == ci.name) {
      *out = ci.code;
      return true;
    }
  }
  return false;
}

std::string Diagnostic::text() const {
  std::string out = severity_name(severity);
  out += '[';
  out += code_id(code);
  out += "] ";
  out += code_name(code);
  out += ": ";
  out += subject;
  out += ": ";
  out += message;
  if (!source.empty()) {
    out += "\n    at: ";
    out += source;
  }
  return out;
}

std::string Diagnostic::json() const {
  std::string out = "{\"code\":";
  json::append_escaped(out, code_id(code));
  out += ",\"name\":";
  json::append_escaped(out, code_name(code));
  out += ",\"severity\":";
  json::append_escaped(out, severity_name(severity));
  out += ",\"subject\":";
  json::append_escaped(out, subject);
  out += ",\"message\":";
  json::append_escaped(out, message);
  if (!source.empty()) {
    out += ",\"source\":";
    json::append_escaped(out, source);
  }
  out.push_back('}');
  return out;
}

}  // namespace sekitei::analysis
