#include "analysis/diagnostic.hpp"

#include "support/json.hpp"

namespace sekitei::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "note";
}

namespace {

struct CodeInfo {
  Code code;
  const char* id;
  const char* name;
  Severity severity;
};

constexpr CodeInfo kCodes[kCodeCount] = {
    {Code::GoalUnreachable, "SK001", "goal-unreachable", Severity::Error},
    {Code::GoalUnplaceable, "SK002", "goal-unplaceable", Severity::Error},
    {Code::NeverPlaceableComponent, "SK101", "never-placeable-component", Severity::Warning},
    {Code::NonMonotoneFormula, "SK102", "non-monotone-formula", Severity::Warning},
    {Code::TagMismatch, "SK103", "tag-mismatch", Severity::Warning},
    {Code::UnusedInterface, "SK104", "unused-interface", Severity::Warning},
    {Code::UnusedProperty, "SK105", "unused-property", Severity::Warning},
    {Code::ShadowedComponent, "SK106", "shadowed-component", Severity::Warning},
    {Code::DuplicateName, "SK107", "duplicate-name", Severity::Warning},
    {Code::GoalPreplaced, "SK108", "goal-preplaced", Severity::Warning},
    {Code::DeadAction, "SK201", "dead-action", Severity::Note},
    {Code::UnreachableInterface, "SK202", "unreachable-interface", Severity::Note},
    {Code::InterfaceCannotCross, "SK203", "interface-cannot-cross", Severity::Note},
    {Code::UninhabitedLevel, "SK204", "uninhabited-level", Severity::Note},
    {Code::AnalysisInconclusive, "SK205", "analysis-inconclusive", Severity::Note},
};

const CodeInfo& info(Code c) {
  for (const CodeInfo& ci : kCodes) {
    if (ci.code == c) return ci;
  }
  return kCodes[0];
}

}  // namespace

const char* code_id(Code c) { return info(c).id; }
const char* code_name(Code c) { return info(c).name; }
Severity default_severity(Code c) { return info(c).severity; }

bool parse_code(const std::string& text, Code* out) {
  for (const CodeInfo& ci : kCodes) {
    if (text == ci.id || text == ci.name) {
      *out = ci.code;
      return true;
    }
  }
  return false;
}

std::string Diagnostic::text() const {
  std::string out = severity_name(severity);
  out += '[';
  out += code_id(code);
  out += "] ";
  out += code_name(code);
  out += ": ";
  out += subject;
  out += ": ";
  out += message;
  if (!source.empty()) {
    out += "\n    at: ";
    out += source;
  }
  return out;
}

std::string Diagnostic::json() const {
  std::string out = "{\"code\":";
  json::append_escaped(out, code_id(code));
  out += ",\"name\":";
  json::append_escaped(out, code_name(code));
  out += ",\"severity\":";
  json::append_escaped(out, severity_name(severity));
  out += ",\"subject\":";
  json::append_escaped(out, subject);
  out += ",\"message\":";
  json::append_escaped(out, message);
  if (!source.empty()) {
    out += ",\"source\":";
    json::append_escaped(out, source);
  }
  out.push_back('}');
  return out;
}

}  // namespace sekitei::analysis
