// SARIF 2.1.0 rendering of analyzer reports (sekitei_lint --format sarif).
//
// One document covers a whole lint invocation: the tool.driver block carries
// a reportingDescriptor for every stable SK code (id, kebab-case name, short
// description, default severity), and each finding becomes a result pointing
// at the instance file it was raised for.  The output is deliberately
// minimal-but-valid so CI code-scanning uploads and SARIF viewers accept it
// without post-processing.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.hpp"

namespace sekitei::analysis {

/// Renders `files` — (artifact uri, its report) pairs in lint order — as one
/// SARIF 2.1.0 document with a trailing newline.
[[nodiscard]] std::string render_sarif(
    const std::vector<std::pair<std::string, AnalysisReport>>& files);

}  // namespace sekitei::analysis
