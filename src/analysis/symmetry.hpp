// Node symmetry & dominance analysis over a compiled problem.
//
// The paper's evaluation networks (star hubs, GT-ITM transit-stub) are full
// of interchangeable nodes: identical resource vectors, identical placement
// rules, link-for-link identical neighborhoods.  The planner is provably
// blind to which twin it picks (the fuzzer's node-permutation-invariance
// oracle), yet the RG/SLRG searches expand every twin as a distinct branch.
// This pass computes the facts that let search and tooling exploit that:
//
//   * **Equivalence classes** — partition refinement (color refinement) over
//     (resource vector, per-component placeability, pinnedness) seeded colors,
//     refined by link-class-aware neighborhood signatures to a fixpoint.
//     Color refinement only over-approximates the orbit partition, so every
//     candidate class is then *verified*: each member must be the image of
//     the class representative under a transposition automorphism of the
//     instance (node swap fixing everything else).  Verified classes are
//     sound to prune on; transitivity holds by conjugation of transpositions.
//   * **Dominance order** — node A dominates B when B is unpinned, every
//     component placeable on B is placeable on A, A's capacities are
//     pointwise >= B's, A reaches a superset of B's neighbors, and each
//     shared incident link's resource hull is pointwise >= B's.  Strict
//     dominance (A dominates B but not vice versa) means no optimal plan
//     needs B; it is reported (SK110), never silently pruned.
//   * **Unusable nodes** — a node the placement rules admit components on,
//     but where leveling-time pruning killed every ground Place action
//     (SK111): capacity too low for any level combination.
//
// attach_symmetry() publishes the verified partition onto the
// CompiledProblem (plain data; see model/compile.hpp) so the core searches —
// which sit *below* this library in the layering — can read it without
// linking analysis.  An unattached problem behaves exactly as before.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/hygiene.hpp"  // Emit
#include "model/compile.hpp"

namespace sekitei::analysis {

struct SymmetryAnalysis {
  /// node_class[n] = class id of node index n; ids ascend with the class
  /// representative's node index, members are ascending node indices.
  std::vector<std::uint32_t> node_class;
  std::vector<std::vector<std::uint32_t>> class_members;
  /// Classes with >= 2 members (the ones worth reporting / pruning on).
  std::uint32_t symmetric_classes = 0;

  /// Pinned nodes (initial streams, preplaced components, goals) are always
  /// singletons and never flagged dominated/unusable.
  std::vector<char> pinned;

  struct Dominated {
    std::uint32_t node = 0;  // the strictly dominated node
    std::uint32_t by = 0;    // its smallest-index strict dominator
  };
  std::vector<Dominated> dominated;      // ascending by .node
  std::vector<std::uint32_t> unusable;   // ascending node indices
};

[[nodiscard]] SymmetryAnalysis analyze_symmetry(const model::CompiledProblem& cp);

/// Computes the verified partition and publishes it on `cp` (node_class,
/// node_class_members, symmetric_class_count).  Idempotent; recomputes from
/// scratch each call.
void attach_symmetry(model::CompiledProblem& cp);

/// Analyzer stage: emits SK110 (strictly dominated), SK111 (unusable) and
/// SK301 (symmetric class) findings through the battery's emitter.
void run_symmetry_checks(const model::CompiledProblem& cp, const Emit& emit);

}  // namespace sekitei::analysis
