// The static-analysis battery over a compiled problem, and the pre-flight
// fast path used by the planning service.
//
// analyze() runs an ordered battery of checks:
//
//   1. reachability  interval-annotated relaxed reachability (reachability.hpp):
//                    goals proven unachievable => SK001/SK002 errors and
//                    report.provably_infeasible; non-convergent widening =>
//                    SK205 note (no claims are made).
//   2. intervals     capacity composition: components no node admits (SK101),
//                    level cutpoints no producible value ever inhabits
//                    (SK204), interfaces no link can carry (SK203).
//   3. symmetry      node structure (symmetry.hpp): strictly dominated nodes
//                    (SK110), nodes leveling made unusable (SK111), and
//                    verified symmetric node classes (SK301).
//   4. hygiene       spec smells (hygiene.hpp): SK102..SK108.
//   5. dead code     interfaces that never become available (SK202) and
//                    ground actions that can never fire (SK201) — notes:
//                    leveled grounding *expects* dead combinations.
//
// preflight() is the cheap subset the service runs before spending a search
// budget: stage 1 only, goal verdict only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "model/compile.hpp"

namespace sekitei::analysis {

struct AnalysisOptions {
  bool reachability = true;  // stages 1 and 5
  bool intervals = true;     // stage 2
  bool symmetry = true;      // stage 3
  bool hygiene = true;       // stage 4
  /// Promote warnings to errors (notes are unaffected).
  bool werror = false;
  /// Codes to drop entirely (not rendered, not counted in the exit code).
  std::vector<Code> suppress;
  /// Widening budget of the reachability fixpoint.
  std::uint32_t max_sweeps = 64;
  /// At most this many findings are kept per code; a trailing note counts
  /// the overflow.  0 = unlimited.
  std::size_t max_per_code = 25;
};

struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;

  /// True when stage 1 proved a goal unachievable (always accompanied by an
  /// SK001/SK002 error diagnostic, suppression notwithstanding).
  bool provably_infeasible = false;
  std::string infeasible_reason;

  bool converged = true;
  std::uint32_t sweeps = 0;
  std::uint64_t props_reached = 0;
  std::uint64_t actions_fireable = 0;
  /// Findings dropped by AnalysisOptions::suppress.
  std::size_t suppressed = 0;

  [[nodiscard]] std::size_t count(Severity s) const;
  /// Lint exit-code convention: 1 when any error survived, else 0 (loader
  /// failures exit 2 before a report exists).
  [[nodiscard]] int exit_code() const;

  /// Compiler-style text rendering, one finding per paragraph plus a summary
  /// line; "clean" summary when there are no findings.
  [[nodiscard]] std::string render_text() const;
  /// One JSON object per line, findings in battery order.
  [[nodiscard]] std::string render_ndjson() const;
};

[[nodiscard]] AnalysisReport analyze(const model::CompiledProblem& cp,
                                     const AnalysisOptions& options = {});

/// The service's pre-flight verdict: is the instance provably infeasible?
/// `reason` and `code` are filled from the first goal error when it is.
struct PreflightVerdict {
  bool infeasible = false;
  std::string reason;
  const char* code = "";
  std::uint32_t sweeps = 0;
};

[[nodiscard]] PreflightVerdict preflight(const model::CompiledProblem& cp,
                                         std::uint32_t max_sweeps = 64);

}  // namespace sekitei::analysis
