#include "analysis/reachability.hpp"

#include <span>

namespace sekitei::analysis {

using model::GroundAction;
using model::SlotRole;
using spec::LevelTag;

namespace {

/// Values a consumer can draw from a producible hull `have`, before meeting
/// the slot's level interval: a degradable stream can be consumed at any
/// value up to what is attainably available, an upgradable one at any value
/// from its floor up (the shift rules of core/replay.cpp, hull-side).
Interval usable_values(Interval have, LevelTag tag) {
  switch (tag) {
    case LevelTag::Degradable: return {0.0, have.hi, have.hi_open};
    case LevelTag::Upgradable: return {have.lo, kInf};
    case LevelTag::None: break;
  }
  return have;
}

}  // namespace

std::uint64_t ReachabilityResult::props_reached_count() const {
  std::uint64_t n = 0;
  for (char c : prop_reached) n += c != 0;
  return n;
}

std::uint64_t ReachabilityResult::actions_fired_count() const {
  std::uint64_t n = 0;
  for (char c : action_fired) n += c != 0;
  return n;
}

ReachabilityResult relaxed_reach(const model::CompiledProblem& cp,
                                 std::uint32_t max_sweeps) {
  ReachabilityResult r;
  r.prop_reached.assign(cp.props.size(), 0);
  r.action_fired.assign(cp.actions.size(), 0);
  r.value.assign(cp.vars.size(), Interval::empty());

  for (PropId p : cp.init_props) r.prop_reached[p.index()] = 1;
  for (const model::InitMapEntry& e : cp.init_map) {
    Interval& v = r.value[e.var.index()];
    v = hull(v, e.value);
  }

  // supports[a] = every proposition action a achieves, degradable/upgradable
  // cross-level closure included (the inverse of the achiever lists).
  std::vector<std::vector<PropId>> supports(cp.actions.size());
  for (std::uint32_t p = 0; p < cp.achievers.size(); ++p) {
    for (ActionId a : cp.achievers[p]) supports[a.index()].push_back(PropId(p));
  }

  std::vector<Interval> slots;
  std::vector<Interval> post;
  bool changed = true;
  while (changed && r.sweeps < max_sweeps) {
    changed = false;
    ++r.sweeps;
    for (std::uint32_t ai = 0; ai < cp.actions.size(); ++ai) {
      const GroundAction& act = cp.actions[ai];

      bool ready = true;
      for (PropId p : act.pre) {
        if (!r.prop_reached[p.index()]) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;

      const std::size_t n = act.slot_vars.size();
      slots.assign(act.slot_opt.begin(), act.slot_opt.end());
      for (std::size_t s = 0; s < n && ready; ++s) {
        if (act.sem->roles[s] != SlotRole::Input) continue;
        const Interval have = r.value[act.slot_vars[s].index()];
        // A variable nothing defines is unconstrained to the replay (it
        // falls back to the action's own optimistic interval); mirror that.
        if (have.is_empty()) continue;
        slots[s] = intersect(usable_values(have, act.sem->tags[s]), act.slot_opt[s]);
        if (slots[s].is_empty()) ready = false;
      }
      if (!ready) continue;

      const std::span<const Interval> view(slots.data(), n);
      for (const expr::CompiledCondition& cond : act.sem->conditions) {
        if (!cond.satisfiable(view)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;

      post = slots;
      for (const expr::CompiledEffect& eff : act.sem->effects) {
        eff.apply_interval(post);
      }
      for (std::size_t s = 0; s < n && ready; ++s) {
        if (act.sem->roles[s] != SlotRole::Output) continue;
        post[s] = intersect(post[s], act.slot_opt[s]);
        if (post[s].is_empty()) ready = false;
      }
      if (!ready) continue;

      if (!r.action_fired[ai]) {
        r.action_fired[ai] = 1;
        changed = true;
      }
      for (std::size_t s = 0; s < n; ++s) {
        if (act.sem->roles[s] != SlotRole::Output) continue;
        Interval& v = r.value[act.slot_vars[s].index()];
        const Interval widened = hull(v, post[s]);
        if (!(widened == v)) {
          v = widened;
          changed = true;
        }
      }
      for (PropId p : supports[ai]) {
        if (!r.prop_reached[p.index()]) {
          r.prop_reached[p.index()] = 1;
          changed = true;
        }
      }
    }
  }
  r.converged = !changed;
  return r;
}

}  // namespace sekitei::analysis
