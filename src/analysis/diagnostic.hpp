// Diagnostics emitted by the static analyzer (analysis/analyzer.hpp).
//
// Every finding carries a stable code (SKxxx), a severity, the entity it is
// about (`subject`), a human-readable message and, when the finding points at
// a concrete formula, the formula's source text as a span.  Two renderers are
// provided: a compiler-style text form for terminals and an NDJSON form (one
// object per line, written through support/json.hpp) for tooling.
//
// Severity model:
//   error    provable infeasibility — the instance cannot have a plan
//   warning  suspect specification — likely a mistake, possibly intended
//   note     informational — expected on many valid instances (dead leveled
//            actions, for example, are exactly what leveling-time pruning
//            and unreachable regions produce)
// `--Werror` promotes warnings to errors; notes never affect the exit code.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sekitei::analysis {

enum class Severity : unsigned char { Note, Warning, Error };

[[nodiscard]] const char* severity_name(Severity s);

/// Stable diagnostic codes.  Numbering groups by severity family:
/// SK0xx provable infeasibility (errors), SK1xx spec hygiene (warnings),
/// SK2xx informational findings (notes), SK3xx structural notes from the
/// symmetry/dominance analyzer.
enum class Code : unsigned char {
  GoalUnreachable,          // SK001
  GoalUnplaceable,          // SK002
  NeverPlaceableComponent,  // SK101
  NonMonotoneFormula,       // SK102
  TagMismatch,              // SK103
  UnusedInterface,          // SK104
  UnusedProperty,           // SK105
  ShadowedComponent,        // SK106
  DuplicateName,            // SK107
  GoalPreplaced,            // SK108
  DominatedNode,            // SK110
  UnusableNode,             // SK111
  DeadAction,               // SK201
  UnreachableInterface,     // SK202
  InterfaceCannotCross,     // SK203
  UninhabitedLevel,         // SK204
  AnalysisInconclusive,     // SK205
  SymmetricNodeClass,       // SK301
};

inline constexpr std::size_t kCodeCount = 18;

/// "SK001", "SK101", ...
[[nodiscard]] const char* code_id(Code c);
/// "goal-unreachable", "dead-action", ...
[[nodiscard]] const char* code_name(Code c);
/// One-sentence rule description (SARIF `shortDescription`, renderers).
[[nodiscard]] const char* code_description(Code c);
[[nodiscard]] Severity default_severity(Code c);

/// Parses either form ("SK104" or "unused-interface"); false when unknown.
[[nodiscard]] bool parse_code(const std::string& text, Code* out);

struct Diagnostic {
  Code code = Code::GoalUnreachable;
  Severity severity = Severity::Error;  // effective (post --Werror promotion)
  std::string subject;                  // entity, e.g. "component Merger"
  std::string message;
  std::string source;  // formula/source span when the finding points at one

  /// "error[SK001] goal-unreachable: <subject>: <message>" (+ source line).
  [[nodiscard]] std::string text() const;
  /// One JSON object, no trailing newline.
  [[nodiscard]] std::string json() const;
};

}  // namespace sekitei::analysis
