#include "core/replay.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"

namespace sekitei::core {

using model::GroundAction;
using model::SlotRole;
using spec::LevelTag;

bool Replayer::replay(std::span<const ActionId> steps, bool from_init, ReplayMode mode) {
  ++calls_;
  failure_.clear();
  // Fault point on the acceptance replays only (from_init == true, the
  // validation of a complete candidate plan): Fail mode reports a replay
  // failure — the search prunes the candidate and keeps going — while Throw
  // mode propagates to the caller's error path.
  if (from_init && SEKITEI_FAULT_POINT("replay.validate")) {
    failure_ = "injected fault at replay.validate";
    return false;
  }
  map_.reset(cp_.vars.size());
  if (from_init) {
    for (const model::InitMapEntry& e : cp_.init_map) {
      Interval v = e.value;
      if (mode == ReplayMode::WorstCase && !v.is_point() && v.hi != kInf) {
        // Greedy maximum-utilization assumption (Section 2.2): the planner
        // "considers the maximum possible utilization of a resource".
        v = Interval::point(v.sup_value());
      }
      map_.set(e.var, v);
    }
  }
  for (ActionId a : steps) {
    if (!step(cp_.actions[a.index()], mode)) {
      // Trace-level because this is the RG's *normal* pruning mechanism,
      // not an anomaly; the level gate keeps the hot path at one load.
      SEKITEI_LOG_TRACE("core.replay", "tail pruned", log::kv("action", cp_.describe(a)),
                        log::kv("reason", failure_), log::kv("steps", steps.size()));
      return false;
    }
  }
  return true;
}

bool Replayer::step(const GroundAction& act, ReplayMode mode) {
  const model::CompiledSemantics& sem = *act.sem;
  const std::size_t n = act.slot_vars.size();

  // 1. Merge the action's optimistic intervals into the running map.
  for (std::size_t s = 0; s < n; ++s) {
    const VarId var = act.slot_vars[s];
    const Interval req = act.slot_opt[s];
    if (!map_.has(var)) {
      // Greedy maximum-utilization assumption: a value not yet produced by
      // the tail is taken at its worst (largest) case, so e.g. a Splitter
      // whose input is unbounded certainly violates its CPU condition —
      // precisely why the greedy planner cannot handle Scenario 1.
      const bool collapse = mode == ReplayMode::WorstCase && sem.roles[s] != SlotRole::Output;
      map_.set(var, collapse ? Interval::point(req.sup_value()) : req);
      continue;
    }
    const Interval cur = map_.get(var);
    Interval merged;
    // The degradable/upgradable shift is level reasoning (Section 3.1) and
    // only exists in the leveled planner; the greedy baseline intersects.
    const bool leveled = mode == ReplayMode::Optimistic;
    if (leveled && sem.roles[s] == SlotRole::Input && sem.tags[s] == LevelTag::Degradable) {
      // A degradable stream produced above the required interval can be
      // consumed at the lower level: shift down as long as the producer can
      // attainably reach req.lo.
      if (cur.hi < req.lo || (cur.hi == req.lo && cur.hi_open && req.lo > 0)) {
        failure_ = "degradable input below required level";
        return false;
      }
      merged.lo = req.lo;
      detail::min_upper(cur, req, merged.hi, merged.hi_open);
    } else if (leveled && sem.roles[s] == SlotRole::Input &&
               sem.tags[s] == LevelTag::Upgradable) {
      if (cur.lo > req.hi || (cur.lo == req.hi && req.hi_open)) {
        failure_ = "upgradable input above required level";
        return false;
      }
      merged = {std::max(cur.lo, req.lo), req.hi, req.hi_open};
    } else {
      merged = intersect(cur, req);
    }
    if (merged.is_empty()) {
      failure_ = "optimistic interval intersection empty";
      return false;
    }
    map_.set(var, merged);
  }

  // Gather the slot view of the map.
  if (scratch_.size() < n) scratch_.resize(n);
  for (std::size_t s = 0; s < n; ++s) scratch_[s] = map_.get(act.slot_vars[s]);
  const std::span<Interval> slots(scratch_.data(), n);

  // 2. Conditions: prune unsatisfiable branches; narrow single-variable
  //    sides (a necessary-condition cut, hence sound).
  for (const expr::CompiledCondition& cond : sem.conditions) {
    const bool ok = mode == ReplayMode::WorstCase ? cond.certain(slots) : cond.satisfiable(slots);
    if (!ok) {
      failure_ = "condition failed: " + cond.source;
      return false;
    }
    const std::uint32_t ls = cond.lhs.single_var_slot();
    const std::uint32_t rs = cond.rhs.single_var_slot();
    if (ls == UINT32_MAX && rs == UINT32_MAX) continue;
    const Interval lv = cond.lhs.eval_interval(slots);
    const Interval rv = cond.rhs.eval_interval(slots);
    auto narrow = [&](std::uint32_t slot, Interval bound) -> bool {
      const Interval nv = intersect(slots[slot], bound);
      if (nv.is_empty()) {
        failure_ = "narrowing emptied interval: " + cond.source;
        return false;
      }
      slots[slot] = nv;
      map_.set(act.slot_vars[slot], nv);
      return true;
    };
    switch (cond.op) {
      case expr::CmpOp::Ge:
      case expr::CmpOp::Gt:
        if (ls != UINT32_MAX && !narrow(ls, {rv.lo, kInf})) return false;
        if (rs != UINT32_MAX && !narrow(rs, {-kInf, lv.hi, lv.hi_open})) return false;
        break;
      case expr::CmpOp::Le:
      case expr::CmpOp::Lt:
        if (ls != UINT32_MAX && !narrow(ls, {-kInf, rv.hi, rv.hi_open})) return false;
        if (rs != UINT32_MAX && !narrow(rs, {lv.lo, kInf})) return false;
        break;
      case expr::CmpOp::Eq:
        if (ls != UINT32_MAX && !narrow(ls, rv)) return false;
        if (rs != UINT32_MAX && !narrow(rs, lv)) return false;
        break;
      case expr::CmpOp::Ne:
        break;  // no useful interval cut
    }
  }

  // 3. Effects: sequential interval execution, then write-back.  Produced
  //    outputs must stay inside their asserted level.
  for (const expr::CompiledEffect& eff : sem.effects) {
    eff.apply_interval(slots);
    Interval v = slots[eff.target];
    if (sem.roles[eff.target] == SlotRole::Output) {
      v = intersect(v, act.slot_opt[eff.target]);
      if (v.is_empty()) {
        failure_ = "produced value misses asserted level: " + eff.source;
        return false;
      }
      slots[eff.target] = v;
    }
    map_.set(act.slot_vars[eff.target], v);
  }
  return true;
}

}  // namespace sekitei::core
