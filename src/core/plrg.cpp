#include "core/plrg.hpp"

#include <algorithm>
#include <queue>

#include "support/log.hpp"
#include "support/trace.hpp"

namespace sekitei::core {

Plrg::Plrg(const model::CompiledProblem& cp, CostFn cost, StopToken stop)
    : cp_(cp), cost_fn_(std::move(cost)), stop_(std::move(stop)) {}

void Plrg::build(PropId goal) {
  const PropId goals[] = {goal};
  build(std::span<const PropId>(goals));
}

void Plrg::build(std::span<const PropId> goals) {
  trace::Span span("plrg.build", "graph");
  const std::size_t np = cp_.props.size();
  const std::size_t na = cp_.actions.size();
  prop_cost_.assign(np, kInf);
  prop_seen_.assign(np, false);
  action_seen_.assign(na, false);
  rel_props_.clear();
  rel_actions_.clear();

  // Backward relevance expansion from the goal.
  std::queue<PropId> frontier;
  auto touch_prop = [&](PropId p) {
    if (!prop_seen_[p.index()]) {
      prop_seen_[p.index()] = true;
      rel_props_.push_back(p);
      frontier.push(p);
    }
  };
  for (PropId g : goals) touch_prop(g);
  std::uint64_t pops = 0;
  while (!frontier.empty()) {
    // Cooperative stop, polled at a cadence so the hot loop stays cheap.
    if ((++pops & 0x3ffu) == 0u && stop_.stop_requested()) break;
    const PropId p = frontier.front();
    frontier.pop();
    if (cp_.init_holds(p)) continue;  // already true: no need to regress further
    for (ActionId a : cp_.achievers_of(p)) {
      if (action_seen_[a.index()]) continue;
      action_seen_[a.index()] = true;
      rel_actions_.push_back(a);
      for (PropId q : cp_.actions[a.index()].pre) touch_prop(q);
    }
  }

  // Cost fixpoint over the relevant AND/OR subgraph (Bellman-Ford style;
  // costs only decrease, all action costs are positive, so it terminates).
  for (PropId p : rel_props_) {
    if (cp_.init_holds(p)) prop_cost_[p.index()] = 0.0;
  }
  std::uint64_t sweeps = 0;
  bool changed = true;
  while (changed && !stop_.stop_requested()) {
    changed = false;
    ++sweeps;
    for (ActionId a : rel_actions_) {
      const model::GroundAction& act = cp_.actions[a.index()];
      double pre_max = 0.0;
      for (PropId q : act.pre) {
        pre_max = std::max(pre_max, prop_cost_[q.index()]);
        if (pre_max == kInf) break;
      }
      if (pre_max == kInf) continue;
      const double through = cost_fn_(a) + pre_max;
      // Update every proposition this action supports: its direct effects
      // plus the degradable/upgradable level closure.
      for (PropId e : act.eff) {
        if (through < prop_cost_[e.index()]) {
          prop_cost_[e.index()] = through;
          changed = true;
        }
        const model::PropKey key = cp_.props.key(e);
        if (key.kind != model::PropKind::Avail) continue;
        const model::IfaceLevelInfo& info = cp_.iface_levels[key.entity];
        if (info.tag == spec::LevelTag::Degradable) {
          for (std::uint32_t j = 0; j < key.level; ++j) {
            const PropId q = cp_.props.find_avail(InterfaceId(key.entity), NodeId(key.node), j);
            if (q.valid() && prop_seen_[q.index()] && through < prop_cost_[q.index()]) {
              prop_cost_[q.index()] = through;
              changed = true;
            }
          }
        } else if (info.tag == spec::LevelTag::Upgradable) {
          for (std::uint32_t j = key.level + 1; j < info.levels.count(); ++j) {
            const PropId q = cp_.props.find_avail(InterfaceId(key.entity), NodeId(key.node), j);
            if (q.valid() && prop_seen_[q.index()] && through < prop_cost_[q.index()]) {
              prop_cost_[q.index()] = through;
              changed = true;
            }
          }
        }
      }
    }
  }
  trace::counter("plrg.props", static_cast<double>(rel_props_.size()));
  trace::counter("plrg.actions", static_cast<double>(rel_actions_.size()));
  SEKITEI_LOG_DEBUG("core.plrg", "built", log::kv("props", rel_props_.size()),
                    log::kv("actions", rel_actions_.size()), log::kv("sweeps", sweeps));
}

double Plrg::cost(PropId p) const {
  if (!p.valid() || p.index() >= prop_cost_.size()) return kInf;
  return prop_cost_[p.index()];
}

double Plrg::set_cost(std::span<const PropId> props) const {
  double m = 0.0;
  for (PropId p : props) m = std::max(m, cost(p));
  return m;
}

}  // namespace sekitei::core
