#include "core/slrg.hpp"

#include <algorithm>
#include <queue>

#include "support/sorted_vec.hpp"
#include "support/trace.hpp"

namespace sekitei::core {

std::size_t Slrg::SetHash::operator()(const std::vector<PropId>& v) const noexcept {
  return hash_sorted(v);
}

bool action_supports_any(const model::CompiledProblem& cp, const std::vector<PropId>& set,
                         ActionId a) {
  for (PropId p : set) {
    const auto& ach = cp.achievers_of(p);
    if (std::binary_search(ach.begin(), ach.end(), a)) return true;
  }
  return false;
}

std::vector<PropId> regress_set(const model::CompiledProblem& cp,
                                const std::vector<PropId>& set, ActionId a) {
  std::vector<PropId> out;
  out.reserve(set.size() + cp.actions[a.index()].pre.size());
  for (PropId p : set) {
    const auto& ach = cp.achievers_of(p);
    if (!std::binary_search(ach.begin(), ach.end(), a)) out.push_back(p);
  }
  for (PropId q : cp.actions[a.index()].pre) sorted_insert(out, q);
  return out;
}

Slrg::Slrg(const model::CompiledProblem& cp, const Plrg& plrg, CostFn cost, Limits limits,
           StopToken stop)
    : cp_(cp), plrg_(plrg), cost_fn_(std::move(cost)), limits_(limits), stop_(std::move(stop)) {}

void Slrg::harvest(std::unordered_map<std::vector<PropId>, double, SetHash>& best_g,
                   double query_result) {
  for (auto& [props, g] : best_g) {
    const double bound = query_result - g;
    if (bound <= 0 || exact_.count(props)) continue;
    auto [it, inserted] = weak_.emplace(props, bound);
    if (!inserted && bound > it->second) it->second = bound;
  }
}

double Slrg::estimate(const std::vector<PropId>& set) {
  if (sorted_subset(set, cp_.init_props)) {
    ++memo_hits_;
    return 0.0;
  }
  if (auto it = exact_.find(set); it != exact_.end()) {
    ++memo_hits_;
    return it->second;
  }
  const double base = plrg_.set_cost(set);
  if (base == kInf) {
    ++memo_misses_;
    exact_.emplace(set, kInf);
    return kInf;
  }
  if (auto it = weak_.find(set); it != weak_.end()) {
    ++memo_hits_;
    return std::max(base, it->second);
  }
  ++memo_misses_;
  if (generated_ >= limits_.max_sets) {
    hit_limit_ = true;
    return base;  // admissible fallback, not memoized as exact
  }
  // Budget policy: the first (goal) query gets a deep search — it seeds the
  // caches everything else leans on.  If even that query cannot finish, the
  // problem's logical shell is too wide for exact set costs to pay off
  // (e.g. uniform-cost scenario B); later queries then run on a shoestring
  // and the RG leans on the PLRG bounds plus the harvested weak bounds.
  const std::uint64_t per_query =
      first_query_ ? limits_.max_sets_first_query : limits_.max_sets_per_query;
  first_query_ = false;
  const std::uint64_t query_budget = std::min(limits_.max_sets - generated_, per_query);
  std::uint64_t query_generated = 0;

  // A* graph search from `set` toward the initial state in the resource-free
  // relaxation.  Nodes live in a pool so the optimal path can be walked for
  // memoization afterwards.
  struct Node {
    std::vector<PropId> props;
    double g = 0.0;
    std::uint32_t parent = UINT32_MAX;
  };
  struct Open {
    double f;
    double g;
    std::uint32_t node;
    bool operator<(const Open& o) const {
      if (f != o.f) return f > o.f;
      return g < o.g;  // tie-break: prefer deeper
    }
  };
  std::vector<Node> pool;
  std::priority_queue<Open> open;
  std::unordered_map<std::vector<PropId>, double, SetHash> best_g;

  pool.push_back(Node{set, 0.0, UINT32_MAX});
  best_g.emplace(set, 0.0);
  ++generated_;
  ++query_generated;
  open.push({base, 0.0, 0});

  while (!open.empty()) {
    const Open cur = open.top();
    open.pop();
    const std::vector<PropId> cur_props = pool[cur.node].props;  // copy: pool may grow
    {
      auto it = best_g.find(cur_props);
      if (it != best_g.end() && cur.g > it->second) continue;  // stale
    }

    // Termination: reaching the initial state, or any set whose exact
    // logical cost is already memoized (a node with a perfect heuristic —
    // popping it makes its f-value the optimal answer).  Either way the
    // queried set and the whole optimal path become exact.
    double terminal = kInf;
    if (sorted_subset(cur_props, cp_.init_props)) {
      terminal = 0.0;
    } else if (auto it = exact_.find(cur_props); it != exact_.end() && it->second != kInf) {
      terminal = it->second;
    }
    if (terminal != kInf) {
      const double total = cur.g + terminal;
      exact_[set] = total;
      for (std::uint32_t w = cur.node; w != UINT32_MAX; w = pool[w].parent) {
        const double rest = total - pool[w].g;
        auto [it, inserted] = exact_.emplace(pool[w].props, rest);
        if (!inserted && rest < it->second) it->second = rest;
      }
      // Harvest admissible lower bounds for every set this query touched:
      // any completion of U costs at least total - g(U) (A* invariant), so
      // later queries start from a much better heuristic.  This is what
      // makes the oracle amortize across the RG's many estimate() calls.
      harvest(best_g, total);
      return total;
    }

    // Symmetry pruning: with the canonical twin still unused by cur_props,
    // the transposition swapping the two fixes cur_props and the initial
    // state (pinned nodes are singletons), so the canonical branch achieves
    // the same minimal logical cost — estimates stay exact.
    const bool sym = limits_.symmetry_pruning && cp_.symmetric_class_count > 0;
    std::vector<char> used;
    if (sym) {
      used.assign(cp_.net->node_count(), 0);
      for (PropId p : cur_props) used[cp_.props.key(p).node] = 1;
    }
    auto sym_blocked = [&](NodeId n, NodeId other) {
      if (!n.valid() || used[n.index()] != 0) return false;
      for (const std::uint32_t m : cp_.node_class_members[cp_.node_class[n.index()]]) {
        if (m >= n.index()) break;
        if (used[m] == 0 && (!other.valid() || m != other.index())) return true;
      }
      return false;
    };

    std::vector<ActionId> cands;
    for (PropId p : cur_props) {
      if (cp_.init_holds(p)) continue;
      for (ActionId a : cp_.achievers_of(p)) {
        if (!plrg_.relevant(a)) continue;
        sorted_insert(cands, a);
      }
    }
    for (ActionId a : cands) {
      if (sym) {
        const model::GroundAction& act = cp_.actions[a.index()];
        if (sym_blocked(act.node, act.node2) || sym_blocked(act.node2, act.node)) {
          ++symmetry_pruned_;
          continue;
        }
      }
      std::vector<PropId> nxt = regress_set(cp_, cur_props, a);
      if (nxt == cur_props) continue;
      const double g = cur.g + cost_fn_(a);
      double h;
      if (auto it = exact_.find(nxt); it != exact_.end()) {
        h = it->second;  // reuse earlier oracle results
      } else {
        h = plrg_.set_cost(nxt);
        if (auto wt = weak_.find(nxt); wt != weak_.end()) h = std::max(h, wt->second);
      }
      if (h == kInf) continue;
      auto it = best_g.find(nxt);
      if (it != best_g.end() && it->second <= g) continue;
      // Budget exhaustion and cooperative stop share one exit: both return
      // the admissible frontier bound.  The stop poll rides the same cadence
      // as the trace counter sampling so the hot loop pays nothing extra.
      const bool budget_out = query_generated >= query_budget;
      if (budget_out ||
          ((query_generated & 0x3ffu) == 0u && stop_.stop_requested())) {
        // The smallest f left in the open list is still an admissible bound
        // on the true logical cost (standard A* invariant).
        if (budget_out) hit_limit_ = true;
        // Any solution either extends the node being expanded (cost >= its
        // f) or passes through the open list (cost >= min open f).
        const double frontier = open.empty() ? cur.f : std::min(cur.f, open.top().f);
        const double bound = std::max(base, frontier);
        auto [it2, ins2] = weak_.emplace(set, bound);
        if (!ins2 && bound > it2->second) it2->second = bound;
        harvest(best_g, bound);
        return bound;
      }
      best_g[nxt] = g;
      const std::uint32_t idx = static_cast<std::uint32_t>(pool.size());
      pool.push_back(Node{std::move(nxt), g, cur.node});
      ++generated_;
      ++query_generated;
      // Sampled, not per-node: counter events are for trend lines, and the
      // sampling keeps the trace file (and the no-collector cost) small.
      if ((generated_ & 0x3ffu) == 0) trace::counter("slrg.sets", static_cast<double>(generated_));
      open.push({g + h, g, idx});
    }
  }
  // Exhausted without reaching the initial state: logically impossible.
  exact_[set] = kInf;
  return kInf;
}

}  // namespace sekitei::core
