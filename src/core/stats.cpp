#include "core/stats.hpp"

#include "support/json.hpp"

namespace sekitei::core {

std::string stats_to_json(const PlannerStats& stats) {
  std::string out;
  out.reserve(512);
  out.push_back('{');
  auto num = [&out](const char* key, std::uint64_t v, bool last = false) {
    out.push_back('"');
    out += key;
    out += "\":";
    json::append_number(out, v);
    if (!last) out.push_back(',');
  };
  auto dbl = [&out](const char* key, double v) {
    out.push_back('"');
    out += key;
    out += "\":";
    json::append_number(out, v);
    out.push_back(',');
  };
  auto boolean = [&out](const char* key, bool v, bool last = false) {
    out.push_back('"');
    out += key;
    out += "\":";
    out += v ? "true" : "false";
    if (!last) out.push_back(',');
  };
  num("total_actions", stats.total_actions);
  num("plrg_props", stats.plrg_props);
  num("plrg_actions", stats.plrg_actions);
  num("slrg_sets", stats.slrg_sets);
  num("rg_nodes", stats.rg_nodes);
  num("rg_open_left", stats.rg_open_left);
  dbl("time_graph_ms", stats.time_graph_ms);
  dbl("time_search_ms", stats.time_search_ms);
  dbl("time_total_ms", stats.time_total_ms());
  num("rg_expansions", stats.rg_expansions);
  num("rg_pruned_by_replay", stats.rg_pruned_by_replay);
  num("pruned_placements", stats.pruned_placements);
  num("rg_peak_open", stats.rg_peak_open);
  num("slrg_memo_hits", stats.slrg_memo_hits);
  num("slrg_memo_misses", stats.slrg_memo_misses);
  num("replay_calls", stats.replay_calls);
  num("sim_rejections", stats.sim_rejections);
  num("rg_incumbents", stats.rg_incumbents);
  dbl("incumbent_cost", stats.incumbent_cost);
  dbl("open_cost_lb", stats.open_cost_lb);
  boolean("logically_unreachable", stats.logically_unreachable);
  boolean("hit_search_limit", stats.hit_search_limit);
  boolean("stopped", stats.stopped);
  boolean("suboptimal_on_stop", stats.suboptimal_on_stop, /*last=*/true);
  out.push_back('}');
  return out;
}

}  // namespace sekitei::core
