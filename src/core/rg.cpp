#include "core/rg.hpp"

#include <algorithm>
#include <queue>

#include "support/log.hpp"
#include "support/sorted_vec.hpp"
#include "support/trace.hpp"

namespace sekitei::core {

Rg::Rg(const model::CompiledProblem& cp, Slrg& slrg, const Plrg& plrg, CostFn cost)
    : cp_(cp), slrg_(slrg), plrg_(plrg), cost_fn_(std::move(cost)) {}

bool Rg::independent(ActionId a, ActionId b) {
  if (sorted_vars_.empty()) sorted_vars_.resize(cp_.actions.size());
  auto vars_of = [&](ActionId id) -> const std::vector<VarId>& {
    std::vector<VarId>& v = sorted_vars_[id.index()];
    if (v.empty() && !cp_.actions[id.index()].slot_vars.empty()) {
      v = cp_.actions[id.index()].slot_vars;
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    }
    return v;
  };
  if (sorted_intersects(vars_of(a), vars_of(b))) return false;
  // Logical support in either direction (through the level closure) makes
  // the pair order-dependent.
  for (PropId p : cp_.actions[b.index()].pre) {
    const auto& ach = cp_.achievers_of(p);
    if (std::binary_search(ach.begin(), ach.end(), a)) return false;
  }
  for (PropId p : cp_.actions[a.index()].pre) {
    const auto& ach = cp_.achievers_of(p);
    if (std::binary_search(ach.begin(), ach.end(), b)) return false;
  }
  return true;
}

std::vector<ActionId> Rg::tail_of(std::uint32_t idx) const {
  std::vector<ActionId> steps;
  std::uint32_t cur = idx;
  while (pool_[cur].action.valid()) {
    steps.push_back(pool_[cur].action);
    cur = pool_[cur].parent;
  }
  return steps;  // deepest node's action first == execution order
}

std::optional<Plan> Rg::search(const std::vector<PropId>& goal_set, const Options& options,
                               const Validator& validate, PlannerStats& stats) {
  struct Open {
    double f;
    double g;
    std::uint32_t node;
    bool operator<(const Open& o) const {
      if (f != o.f) return f > o.f;  // min-heap on f
      return g < o.g;                // tie-break: prefer deeper (larger g)
    }
  };
  std::priority_queue<Open> open;
  Replayer replayer(cp_);
  pool_.clear();

  pool_.push_back(Node{ActionId{}, 0, goal_set, 0.0});
  open.push({slrg_.estimate(goal_set), 0.0, 0});
  stats.rg_nodes = 1;
  stats.rg_peak_open = 1;

  // Anytime incumbent: the cheapest goal-satisfying child seen so far that
  // replays from the initial state and passes validation.  Only tracked when
  // a stop can actually fire, so deadline-free searches stay byte-identical.
  const bool anytime = options.anytime && options.stop.stop_possible();
  struct Incumbent {
    bool have = false;
    std::uint32_t node = 0;
    double g = 0.0;
  } incumbent;
  // Best admissible f still open when the search is cut short (a lower bound
  // on the optimal cost, reported next to the incumbent's cost).
  double frontier_lb = kInf;

  // One combined cadence for the progress observer and the trace counters;
  // checked with a single comparison per expansion so an idle observer adds
  // nothing measurable to the search.
  const std::uint64_t tick_every = std::max<std::uint64_t>(1, options.progress_every);

  while (!open.empty()) {
    const Open cur = open.top();
    open.pop();
    const Node& nd = pool_[cur.node];
    ++stats.rg_expansions;
    if (stats.rg_expansions > options.max_expansions) {
      stats.hit_search_limit = true;
      frontier_lb = open.empty() ? cur.f : std::min(cur.f, open.top().f);
      break;
    }
    if (stats.rg_expansions % tick_every == 0) {
      stats.rg_open_left = open.size();
      stats.replay_calls = replayer.calls();
      // Live frontier bound for observers (the flight recorder's "best f"):
      // cur.f is the smallest admissible f at this expansion, i.e. the same
      // lower bound a stop would report.  Refreshed only under anytime
      // tracking, so stop-free runs report byte-identical stats.
      if (anytime) stats.open_cost_lb = cur.f;
      if (trace::collector()) {
        trace::counter("rg.expansions", static_cast<double>(stats.rg_expansions));
        trace::counter("rg.nodes", static_cast<double>(stats.rg_nodes));
        trace::counter("rg.open", static_cast<double>(open.size()));
        trace::counter("rg.pruned_by_replay", static_cast<double>(stats.rg_pruned_by_replay));
      }
      SEKITEI_LOG_TRACE("core.rg", "progress", log::kv("expansions", stats.rg_expansions),
                        log::kv("nodes", stats.rg_nodes), log::kv("open", stats.rg_open_left),
                        log::kv("f", cur.f));
      if (options.progress) options.progress(stats);
      // Checked *after* the observer so a stop it requests takes effect this
      // very iteration — before the goal test below can pop the proven
      // optimum and moot the stop (observers stop-on-first-incumbent).
      if (options.stop.stop_requested()) {
        stats.stopped = true;
        frontier_lb = open.empty() ? cur.f : std::min(cur.f, open.top().f);
        break;
      }
    }

    // Goal test: all propositions hold initially and the tail executes in
    // the initial-state resource map.
    if (sorted_subset(nd.state, cp_.init_props)) {
      std::vector<ActionId> steps = tail_of(cur.node);
      if (replayer.replay(steps, /*from_init=*/true, options.replay_mode)) {
        Plan plan;
        plan.steps = std::move(steps);
        plan.cost_lb = cur.g;
        bool accepted = true;
        if (validate) {
          trace::Span vspan("rg.validate", "search");
          accepted = validate(plan);
        }
        if (accepted) {
          stats.rg_open_left = open.size();
          stats.replay_calls = replayer.calls();
          return plan;
        }
        ++stats.sim_rejections;
        SEKITEI_LOG_DEBUG("core.rg", "validator rejected candidate",
                          log::kv("steps", plan.steps.size()), log::kv("cost_lb", plan.cost_lb),
                          log::kv("rejections", stats.sim_rejections));
      } else {
        ++stats.rg_pruned_by_replay;
      }
      // A rejected candidate node may still have regressions worth trying
      // (e.g. produce more of a stream elsewhere), so fall through.
    }

    // Symmetry pruning state: which nodes the tail-so-far already commits to
    // (nodes of open propositions plus nodes touched by tail actions).  Any
    // transposition of two *unused* interchangeable twins fixes this whole
    // search node, so only the smallest unused twin needs to be introduced.
    const bool sym = options.symmetry_pruning && cp_.symmetric_class_count > 0;
    std::vector<char> used;
    if (sym) {
      used.assign(cp_.net->node_count(), 0);
      for (PropId p : nd.state) used[cp_.props.key(p).node] = 1;
      for (std::uint32_t w = cur.node; pool_[w].action.valid(); w = pool_[w].parent) {
        const model::GroundAction& act = cp_.actions[pool_[w].action.index()];
        if (act.node.valid()) used[act.node.index()] = 1;
        if (act.node2.valid()) used[act.node2.index()] = 1;
      }
    }
    // True when introducing fresh node `n` is non-canonical: some strictly
    // smaller twin is also unused (and is not the action's other node — the
    // swap must yield a distinct well-formed action).
    auto sym_blocked = [&](NodeId n, NodeId other) {
      if (!n.valid() || used[n.index()] != 0) return false;
      for (const std::uint32_t m : cp_.node_class_members[cp_.node_class[n.index()]]) {
        if (m >= n.index()) break;
        if (used[m] == 0 && (!other.valid() || m != other.index())) return true;
      }
      return false;
    };

    // Candidate actions: achievers of any unsatisfied proposition.
    std::vector<ActionId> cands;
    for (PropId p : nd.state) {
      if (cp_.init_holds(p)) continue;
      for (ActionId a : cp_.achievers_of(p)) {
        if (!plrg_.relevant(a)) continue;
        sorted_insert(cands, a);
      }
    }

    for (ActionId a : cands) {
      // Canonical ordering of adjacent independent actions: `a` executes
      // right before this node's action; if they commute, only explore the
      // ascending-id order.
      if (options.commutativity_pruning && pool_[cur.node].action.valid()) {
        const ActionId b = pool_[cur.node].action;
        if (a > b && independent(a, b)) continue;
      }
      if (sym) {
        const model::GroundAction& act = cp_.actions[a.index()];
        if (sym_blocked(act.node, act.node2) || sym_blocked(act.node2, act.node)) {
          ++stats.pruned_placements;
          continue;
        }
      }
      if (options.forbid_repeated_actions) {
        bool seen = false;
        for (std::uint32_t w = cur.node; pool_[w].action.valid(); w = pool_[w].parent) {
          if (pool_[w].action == a) {
            seen = true;
            break;
          }
        }
        if (seen) continue;
      }
      std::vector<PropId> nxt = regress_set(cp_, pool_[cur.node].state, a);
      if (nxt == pool_[cur.node].state) continue;
      const double h = slrg_.estimate(nxt);
      if (h == kInf) continue;

      // Replay the extended tail in the optimistic maps (Fig. 8); prune on
      // resource failure.
      const std::uint32_t child = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back(Node{a, cur.node, std::move(nxt), cur.g + cost_fn_(a)});
      const std::vector<ActionId> tail = tail_of(child);
      if (!replayer.replay(tail, /*from_init=*/false, options.replay_mode)) {
        ++stats.rg_pruned_by_replay;
        pool_.pop_back();
        continue;
      }
      ++stats.rg_nodes;
      open.push({pool_[child].g + h, pool_[child].g, child});
      if (open.size() > stats.rg_peak_open) stats.rg_peak_open = open.size();

      // Anytime incumbent: a goal-satisfying child is a complete feasible
      // plan even though A* has not proven it optimal yet (it stays in the
      // open list until its f value surfaces).  Record the cheapest one that
      // survives the initial-state replay and validation so a stop mid-proof
      // can still answer with a plan.
      if (anytime && (!incumbent.have || pool_[child].g < incumbent.g) &&
          sorted_subset(pool_[child].state, cp_.init_props) &&
          replayer.replay(tail, /*from_init=*/true, options.replay_mode)) {
        bool accepted = true;
        if (validate) {
          Plan candidate;
          candidate.steps = tail;
          candidate.cost_lb = pool_[child].g;
          trace::Span vspan("rg.validate_incumbent", "search");
          accepted = validate(candidate);
        }
        if (accepted) {
          incumbent = {true, child, pool_[child].g};
          ++stats.rg_incumbents;
          stats.incumbent_cost = incumbent.g;
          SEKITEI_LOG_DEBUG("core.rg", "incumbent recorded",
                            log::kv("cost", incumbent.g), log::kv("steps", tail.size()),
                            log::kv("expansions", stats.rg_expansions));
        }
      }
    }
  }
  stats.rg_open_left = open.size();
  stats.replay_calls = replayer.calls();

  // Search cut short with an incumbent in hand: return it (guard-replayed
  // once more from the initial state) instead of discarding a feasible plan.
  if (incumbent.have && (stats.stopped || stats.hit_search_limit)) {
    std::vector<ActionId> steps = tail_of(incumbent.node);
    if (replayer.replay(steps, /*from_init=*/true, options.replay_mode)) {
      stats.replay_calls = replayer.calls();
      stats.suboptimal_on_stop = true;
      stats.incumbent_cost = incumbent.g;
      stats.open_cost_lb = frontier_lb == kInf ? incumbent.g : frontier_lb;
      SEKITEI_LOG_INFO("core.rg", "returning anytime incumbent",
                       log::kv("cost", incumbent.g), log::kv("open_lb", stats.open_cost_lb),
                       log::kv("expansions", stats.rg_expansions));
      Plan plan;
      plan.steps = std::move(steps);
      plan.cost_lb = incumbent.g;
      return plan;
    }
  }
  return std::nullopt;
}

}  // namespace sekitei::core
