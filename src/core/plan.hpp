// Deployment plans: a totally ordered sequence of ground actions, first
// action executed first (Fig. 4 of the paper is exactly such a listing).
#pragma once

#include <string>
#include <vector>

#include "model/compile.hpp"
#include "support/ids.hpp"

namespace sekitei::core {

struct Plan {
  std::vector<ActionId> steps;  // execution order
  /// Sum of the steps' leveled cost lower bounds — the paper's "lower bound
  /// on cost" (Table 2, column 2).
  double cost_lb = 0.0;

  [[nodiscard]] std::size_t size() const { return steps.size(); }

  /// Multi-line rendering in the style of Fig. 4.
  [[nodiscard]] std::string str(const model::CompiledProblem& cp) const;
};

}  // namespace sekitei::core
