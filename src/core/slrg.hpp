// Set Logical Regression Graph (Section 3.2.2).
//
// "Given the minimum proposition cost, the second phase computes the minimum
//  logical cost of achieving a *set* of propositions.  This phase takes into
//  account logical interactions between actions, but ignores resource
//  restrictions. [...] The construction of the SLRG employs A* search and
//  uses the logical cost of achieving propositions obtained from the PLRG as
//  an estimate of the remaining cost."
//
// The SLRG is a *graph* over proposition sets (duplicate sets are merged —
// "The RG is a tree, while the PLRG and SLRG are general graphs").  We use
// it as a memoized oracle: estimate(S) runs an A* regression from S to the
// initial state in the resource-free relaxation and returns the exact
// minimal logical cost (the paper's "logical cost of achieving a set of
// propositions"), caching S and every set on the optimal path.  The RG uses
// these values as its admissible remaining-cost estimate; because the oracle
// is exact for the relaxation, the RG only ever expands plan tails whose
// f-value is a true lower bound — this is what keeps the RG small despite
// being a tree.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/plrg.hpp"
#include "model/compile.hpp"
#include "support/stop_token.hpp"

namespace sekitei::core {

struct SlrgLimits {
  /// Global budget on set nodes across all oracle queries.
  std::uint64_t max_sets = 8u << 20;
  /// Budget for a single query.  A query that exhausts it still returns an
  /// admissible bound (the smallest f left in its open list) and the result
  /// is negatively cached, so no set is ever searched expensively twice.
  std::uint64_t max_sets_per_query = 20000;
  /// Budget for the very first query (the goal set): it seeds the exact and
  /// weak caches that all later queries and the whole RG lean on, so it is
  /// worth a much deeper search.
  std::uint64_t max_sets_first_query = 256u << 10;
  /// Canonical-representative pruning over the compiled problem's attached
  /// node partition (see Rg::Options::symmetry_pruning).  Estimates stay
  /// exact: a twin transposition fixes the queried set and the initial
  /// state, so the canonical branch costs exactly the same.
  bool symmetry_pruning = true;
};

class Slrg {
 public:
  using Limits = SlrgLimits;

  /// `stop` (optional) is polled every 1024 generated set nodes; a stopped
  /// query ends like a budget-exhausted one — it returns the admissible
  /// frontier bound so the caller's search stays sound while it winds down.
  Slrg(const model::CompiledProblem& cp, const Plrg& plrg, CostFn cost,
       Limits limits = Limits{}, StopToken stop = {});

  /// Exact minimal logical cost of achieving `set` from the initial state;
  /// +inf when logically impossible.  Falls back to the (admissible but
  /// weaker) PLRG max estimate if the node budget is exhausted.
  [[nodiscard]] double estimate(const std::vector<PropId>& set);

  /// Convenience: the logical plan cost for the goal set.
  [[nodiscard]] double c_logical(const std::vector<PropId>& goal_set) {
    return estimate(goal_set);
  }

  [[nodiscard]] bool hit_limit() const { return hit_limit_; }

  /// Number of distinct set nodes ever generated (Table 2, column 7).
  [[nodiscard]] std::size_t set_count() const { return generated_; }

  /// Oracle memoization effectiveness: queries answered from the exact/weak
  /// caches (or trivially) vs queries that ran an A* regression search.
  [[nodiscard]] std::uint64_t memo_hits() const { return memo_hits_; }
  [[nodiscard]] std::uint64_t memo_misses() const { return memo_misses_; }

  /// Candidate regressions skipped by symmetry pruning across all queries.
  [[nodiscard]] std::uint64_t symmetry_pruned() const { return symmetry_pruned_; }

 private:
  struct SetHash {
    std::size_t operator()(const std::vector<PropId>& v) const noexcept;
  };

  /// Folds the bound `query_result - g(U)` into weak_ for every set the
  /// finished query generated.
  void harvest(std::unordered_map<std::vector<PropId>, double, SetHash>& best_g,
               double query_result);

  const model::CompiledProblem& cp_;
  const Plrg& plrg_;
  CostFn cost_fn_;
  Limits limits_;
  StopToken stop_;
  std::unordered_map<std::vector<PropId>, double, SetHash> exact_;
  /// Admissible lower bounds for sets whose search hit the per-query budget.
  std::unordered_map<std::vector<PropId>, double, SetHash> weak_;
  std::uint64_t generated_ = 0;
  std::uint64_t memo_hits_ = 0;
  std::uint64_t memo_misses_ = 0;
  std::uint64_t symmetry_pruned_ = 0;
  bool first_query_ = true;
  bool hit_limit_ = false;
};

/// Regression of a proposition set over an action: (set \ supported) + pre.
/// `supported` uses the achiever index (so level closure participates).
[[nodiscard]] std::vector<PropId> regress_set(const model::CompiledProblem& cp,
                                              const std::vector<PropId>& set, ActionId a);

/// True when the action supports at least one member of the set.
[[nodiscard]] bool action_supports_any(const model::CompiledProblem& cp,
                                       const std::vector<PropId>& set, ActionId a);

}  // namespace sekitei::core
