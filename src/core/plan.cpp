#include "core/plan.hpp"

#include <sstream>

namespace sekitei::core {

std::string Plan::str(const model::CompiledProblem& cp) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    os << (i + 1) << ". " << cp.describe(steps[i]) << "  (cost >= "
       << cp.actions[steps[i].index()].cost_lb << ")\n";
  }
  os << "total cost lower bound: " << cost_lb << "\n";
  return os.str();
}

}  // namespace sekitei::core
