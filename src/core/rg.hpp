// Main Regression Graph (Section 3.2.3).
//
// "The final phase of the algorithm is construction of the main regression
//  graph (RG).  The RG contains totally ordered plan tails and is expanded
//  using A* search.  The logical cost of achieving a set of propositions is
//  used as an estimate of the remaining cost. [...] Since resource failures
//  depend on the plan tail, it is not possible to reuse nodes in the RG.
//  The RG is a tree, while the PLRG and SLRG are general graphs."
//
// Every expansion replays the tail through the optimistic resource maps
// (core/replay.hpp) and prunes on failure — the early detection of
// quality-of-service violations the paper highlights.  The search ends when
// a node's proposition set holds in the initial state AND the tail replays
// in the initial-state resource map (plus an optional external concrete
// validation, e.g. the simulator).
#pragma once

#include <functional>
#include <optional>

#include "core/plan.hpp"
#include "core/replay.hpp"
#include "core/slrg.hpp"
#include "core/stats.hpp"
#include "support/stop_token.hpp"

namespace sekitei::core {

class Rg {
 public:
  struct Options {
    std::uint64_t max_expansions = 1u << 20;
    /// Forbid the exact same ground action twice in one tail.  Keeps the
    /// tree finite even in pathological cost structures; no stream-delivery
    /// plan benefits from repeating an identical leveled action.
    bool forbid_repeated_actions = true;
    /// Commutativity pruning: when two adjacent actions in a tail touch
    /// disjoint resources and neither supports the other's preconditions,
    /// only the ActionId-ascending order is explored.  Any plan has an
    /// equivalent canonical reordering (adjacent independent swaps preserve
    /// the replay outcome exactly), so completeness is kept while the
    /// factorial interleavings of parallel stream chains collapse.
    bool commutativity_pruning = true;
    /// Symmetry (canonical-representative) pruning: when the compiled
    /// problem carries a verified node partition (analysis::attach_symmetry),
    /// a candidate that introduces a node unused by the tail-so-far is
    /// skipped whenever a smaller-index interchangeable twin is also still
    /// unused — the twin's branch is an automorphism image of this one at
    /// identical cost.  No-op on problems without an attached partition.
    bool symmetry_pruning = true;
    /// Replay semantics for both search-time tail replays and the final
    /// initial-state check.  WorstCase reproduces the greedy baseline.
    ReplayMode replay_mode = ReplayMode::Optimistic;
    /// Observer invoked every `progress_every` expansions with the live
    /// stats snapshot (see PlannerOptions::progress).
    std::function<void(const PlannerStats&)> progress;
    std::uint64_t progress_every = 8192;
    /// Cooperative stop (deadline/cancellation), polled at the same
    /// `progress_every` cadence — the hot expansion loop pays no extra cost.
    /// On stop the search returns no plan and sets stats.stopped.
    StopToken stop;
    /// Anytime mode: record the best feasible plan (replayed from the
    /// initial state and validated) as goal-satisfying children are
    /// generated; when the stop token fires — or the expansion budget runs
    /// out — before optimality is proven, return that incumbent flagged
    /// stats.suboptimal_on_stop instead of nothing.  Only active while a
    /// stop can actually fire (stop.stop_possible()), so unstoppable runs
    /// do byte-identical work to a non-anytime search.
    bool anytime = true;
  };

  /// `validate` (optional) gets the candidate plan after it replays from the
  /// initial state; returning false rejects it and resumes the search.
  using Validator = std::function<bool(const Plan&)>;

  Rg(const model::CompiledProblem& cp, Slrg& slrg, const Plrg& plrg, CostFn cost);

  [[nodiscard]] std::optional<Plan> search(const std::vector<PropId>& goal_set,
                                           const Options& options, const Validator& validate,
                                           PlannerStats& stats);

 private:
  struct Node {
    ActionId action;            // invalid for the root
    std::uint32_t parent = 0;   // index into pool; root points to itself
    std::vector<PropId> state;  // propositions still to achieve
    double g = 0.0;
  };

  /// Tail of node `idx` in execution order (deepest action first).
  [[nodiscard]] std::vector<ActionId> tail_of(std::uint32_t idx) const;

  /// True when `a` (executing immediately before `b`) commutes with `b`:
  /// disjoint located variables and no logical support either way.
  [[nodiscard]] bool independent(ActionId a, ActionId b);

  const model::CompiledProblem& cp_;
  Slrg& slrg_;
  const Plrg& plrg_;
  CostFn cost_fn_;
  std::vector<Node> pool_;
  std::vector<std::vector<VarId>> sorted_vars_;  // per action, lazily filled
};

}  // namespace sekitei::core
