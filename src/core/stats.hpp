// Planner work statistics — exactly the quantities Table 2 reports.
#pragma once

#include <cstdint>

namespace sekitei::core {

struct PlannerStats {
  // Column 5: "total # of actions evaluated after leveling and pruning".
  std::uint64_t total_actions = 0;

  // Column 6: PLRG proposition / action node counts.
  std::uint64_t plrg_props = 0;
  std::uint64_t plrg_actions = 0;

  // Column 7: SLRG set-node count.
  std::uint64_t slrg_sets = 0;

  // Column 8: RG nodes created / left in the A* queue at solution time.
  std::uint64_t rg_nodes = 0;
  std::uint64_t rg_open_left = 0;

  // Column 9 (second number): search + graph construction time.
  double time_search_ms = 0.0;

  // Extra diagnostics (not in the paper's table).
  std::uint64_t rg_expansions = 0;
  std::uint64_t rg_pruned_by_replay = 0;
  std::uint64_t sim_rejections = 0;
  bool logically_unreachable = false;
  bool hit_search_limit = false;
};

}  // namespace sekitei::core
