// Planner work statistics — the quantities Table 2 reports, plus the
// per-phase diagnostics the observability layer exposes.
#pragma once

#include <cstdint>
#include <string>

namespace sekitei::core {

struct PlannerStats {
  // Column 5: "total # of actions evaluated after leveling and pruning".
  std::uint64_t total_actions = 0;

  // Column 6: PLRG proposition / action node counts.
  std::uint64_t plrg_props = 0;
  std::uint64_t plrg_actions = 0;

  // Column 7: SLRG set-node count.
  std::uint64_t slrg_sets = 0;

  // Column 8: RG nodes created / left in the A* queue at solution time.
  std::uint64_t rg_nodes = 0;
  std::uint64_t rg_open_left = 0;

  // Column 9: the paper reports the planning time as *two* numbers —
  // regression-graph construction (PLRG build + seeding the SLRG oracle)
  // and the RG search proper.
  double time_graph_ms = 0.0;
  double time_search_ms = 0.0;
  [[nodiscard]] double time_total_ms() const { return time_graph_ms + time_search_ms; }

  // Extra diagnostics (not in the paper's table).
  std::uint64_t rg_expansions = 0;
  std::uint64_t rg_pruned_by_replay = 0;
  /// Candidate actions skipped by symmetry pruning (RG + SLRG): introducing
  /// a fresh node when a smaller-index interchangeable twin was still unused.
  std::uint64_t pruned_placements = 0;
  std::uint64_t rg_peak_open = 0;
  std::uint64_t slrg_memo_hits = 0;    // estimate() served from exact/weak caches
  std::uint64_t slrg_memo_misses = 0;  // estimate() that ran an A* query
  std::uint64_t replay_calls = 0;
  std::uint64_t sim_rejections = 0;

  // Anytime search (graceful degradation): when a stop token is armed the RG
  // search records the best feasible plan seen so far ("the incumbent") as
  // goal-satisfying children are generated, and returns it if the stop fires
  // before optimality is proven.
  /// Incumbent improvements recorded during the search (0 = none seen).
  std::uint64_t rg_incumbents = 0;
  /// Cost (g) of the best incumbent; meaningful when rg_incumbents > 0.
  double incumbent_cost = 0.0;
  /// Best admissible f value still open when the search was cut short — a
  /// lower bound on the optimal cost, so the optimality gap of a returned
  /// incumbent is at most incumbent_cost - open_cost_lb.  Under anytime
  /// tracking it is additionally refreshed at every progress tick, so
  /// observers (the service's flight recorder) see a live frontier bound.
  double open_cost_lb = 0.0;

  bool logically_unreachable = false;
  bool hit_search_limit = false;
  /// A cooperative stop (deadline or cancellation, PlannerOptions::stop)
  /// ended a phase early; the remaining counters are a partial snapshot of
  /// the work done up to that point.
  bool stopped = false;
  /// The returned plan is the stop-time incumbent, not a proven optimum.
  bool suboptimal_on_stop = false;
};

/// Serializes the stats as one compact JSON object with a fixed key order
/// (machine-readable run records; every bench emits one per planner run).
/// Times are rendered with fixed three-decimal precision so the output is
/// byte-stable for a given stats value.
[[nodiscard]] std::string stats_to_json(const PlannerStats& stats);

}  // namespace sekitei::core
