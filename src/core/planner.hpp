// Planner facade: the modified Sekitei algorithm (Section 3.2) and the
// greedy original-Sekitei baseline (Section 2.2) behind one interface.
//
// Typical use:
//   auto cp = model::compile(problem, scenario);
//   core::Sekitei planner(cp);
//   core::PlanResult r = planner.plan();
//   if (r.plan) std::cout << r.plan->str(cp);
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "core/plan.hpp"
#include "core/stats.hpp"
#include "model/compile.hpp"
#include "support/stop_token.hpp"

namespace sekitei::core {

struct PlannerOptions {
  enum class Mode {
    Leveled,  // the paper's contribution: cost-optimal leveled planning
    Greedy,   // original Sekitei: plan-length costs + worst-case reservation
    Cp,       // in-house CP branch-and-bound backend (src/cp): same leveled
              // model and cost metric, independent search — proves the same
              // optimum as Leveled, with lex-leader symmetry breaking
  };
  Mode mode = Mode::Leveled;

  /// Phase-3 work budget: A* expansions under Leveled/Greedy, visited
  /// branch-and-bound nodes under Cp.
  std::uint64_t max_rg_expansions = 1u << 21;
  std::uint64_t max_slrg_sets = 2u << 20;
  bool forbid_repeated_actions = true;
  /// Canonical-representative pruning over the node symmetry partition the
  /// analysis layer attaches to the compiled problem (RG and SLRG; see
  /// Rg::Options::symmetry_pruning).  Plans and costs are unchanged — only
  /// which of several interchangeable twins appears in them.  Ignored (a
  /// no-op) when no partition is attached.
  bool symmetry_pruning = true;

  /// Progress observer: invoked from inside the RG search every
  /// `progress_every` expansions with a live snapshot of the statistics so
  /// far (rg_open_left reflects the current open list).  The reference is
  /// only valid during the call.  Observation only — to end the search early
  /// use `stop` (the observer may call StopSource::request_stop()).
  std::function<void(const PlannerStats&)> progress;
  std::uint64_t progress_every = 8192;

  /// Cooperative stop: polled between phases and inside each phase's loop at
  /// the progress cadence.  On stop the planner returns without a plan,
  /// stats.stopped is set, and the stats carry whatever counters the
  /// completed work produced (a partial snapshot).  Deadlines and explicit
  /// cancellation both arrive through this token (support/stop_token.hpp).
  StopToken stop;

  /// Anytime planning: when a stop token is armed and the stop fires (or the
  /// RG expansion budget runs out) after the search has already seen a
  /// feasible plan, return that incumbent — replay-validated, flagged
  /// stats.suboptimal_on_stop with its cost and the best open lower bound —
  /// instead of discarding it.  Runs without a stop token are unaffected.
  bool anytime = true;
};

struct PlanResult {
  std::optional<Plan> plan;
  PlannerStats stats;
  std::string failure;  // human-readable reason when !plan

  [[nodiscard]] bool ok() const { return plan.has_value(); }
};

class Sekitei {
 public:
  explicit Sekitei(const model::CompiledProblem& cp, PlannerOptions options = {});

  /// Runs the three phases (PLRG -> SLRG -> RG).  `validate`, when given,
  /// concretely checks candidate plans (the simulator hook); rejected
  /// candidates resume the search, so a returned plan is always executable.
  [[nodiscard]] PlanResult plan(const std::function<bool(const Plan&)>& validate = {});

 private:
  const model::CompiledProblem& cp_;
  PlannerOptions options_;
};

}  // namespace sekitei::core
