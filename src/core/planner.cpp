#include "core/planner.hpp"

#include "core/plrg.hpp"
#include "core/rg.hpp"
#include "core/slrg.hpp"
#include "cp/search.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace sekitei::core {

namespace {

/// Folds CP branch-and-bound statistics into the planner stats snapshot.
/// Field mapping keeps the existing keys (and hence stats_to_json, the
/// flight recorder and every bench record) unchanged: expansions = visited
/// nodes, replay = propagation, peak open = peak DFS depth.
void fold_cp_stats(const cp::Stats& st, PlannerStats& out) {
  out.rg_expansions = st.branches;
  out.rg_nodes = st.nodes;
  out.rg_peak_open = st.peak_depth;
  out.rg_pruned_by_replay = st.pruned_by_propagation;
  out.pruned_placements = st.pruned_symmetry;
  out.replay_calls = st.propagations;
  out.sim_rejections = st.sim_rejections;
  out.rg_incumbents = st.incumbents;
  out.incumbent_cost = st.incumbent_cost;
  out.logically_unreachable = st.logically_unreachable;
  out.hit_search_limit = st.hit_node_limit;
  out.stopped = st.stopped;
  if (st.stopped || st.hit_node_limit) out.open_cost_lb = st.lower_bound;
  out.time_graph_ms = st.bound_ms;
  out.time_search_ms = st.search_ms;
}

PlanResult plan_cp(const model::CompiledProblem& cp, const PlannerOptions& options,
                   const std::function<bool(const Plan&)>& validate) {
  PlanResult result;
  result.stats.total_actions = cp.actions.size();

  cp::Options co;
  co.symmetry_breaking = options.symmetry_pruning;
  co.forbid_repeated_actions = options.forbid_repeated_actions;
  co.max_nodes = options.max_rg_expansions;
  co.progress_every = options.progress_every;
  co.stop = options.stop;
  co.anytime = options.anytime;
  if (validate) {
    co.validate = [&](std::span<const ActionId> steps, double cost) {
      Plan candidate;
      candidate.steps.assign(steps.begin(), steps.end());
      candidate.cost_lb = cost;
      return validate(candidate);
    };
  }
  if (options.progress) {
    co.progress = [&](const cp::Stats& st) {
      PlannerStats snap = result.stats;
      fold_cp_stats(st, snap);
      options.progress(snap);
    };
  }

  cp::Result r = cp::solve(cp, co);
  fold_cp_stats(r.stats, result.stats);
  if (r.ok()) {
    Plan plan;
    plan.steps = std::move(*r.steps);
    plan.cost_lb = r.cost;
    result.plan = std::move(plan);
    result.stats.suboptimal_on_stop = !r.stats.proven;
  }
  result.failure = std::move(r.failure);

  SEKITEI_METRIC(metrics::registry()
                     .histogram("planner.graph_ms", {{"mode", "cp"}})
                     .observe(result.stats.time_graph_ms));
  if (!result.stats.logically_unreachable) {
    SEKITEI_METRIC(metrics::registry()
                       .histogram("planner.search_ms", {{"mode", "cp"}})
                       .observe(result.stats.time_search_ms));
  }
  SEKITEI_LOG_INFO("core.planner", result.ok() ? "plan found" : "no plan", log::kv("mode", "cp"),
                   log::kv("plan_actions", result.ok() ? result.plan->size() : 0),
                   log::kv("rg_expansions", result.stats.rg_expansions),
                   log::kv("graph_ms", result.stats.time_graph_ms),
                   log::kv("search_ms", result.stats.time_search_ms));
  return result;
}

}  // namespace

Sekitei::Sekitei(const model::CompiledProblem& cp, PlannerOptions options)
    : cp_(cp), options_(options) {}

PlanResult Sekitei::plan(const std::function<bool(const Plan&)>& validate) {
  if (options_.mode == PlannerOptions::Mode::Cp) {
    trace::Span plan_span("planner.plan");
    return plan_cp(cp_, options_, validate);
  }
  PlanResult result;
  result.stats.total_actions = cp_.actions.size();
  trace::Span plan_span("planner.plan");
  Stopwatch watch;

  const CostFn cost = options_.mode == PlannerOptions::Mode::Greedy
                          ? CostFn([](ActionId) { return 1.0; })
                          : CostFn([this](ActionId a) { return cp_.actions[a.index()].cost_lb; });

  // Phase 1: per-proposition logical regression graph (all goals at once).
  Plrg plrg(cp_, cost, options_.stop);
  plrg.build(std::span<const PropId>(cp_.goal_props));

  // Phase 2 oracle; constructed up front so that every exit path below can
  // report the same stats snapshot through `finish`.
  SlrgLimits slrg_limits;
  slrg_limits.max_sets = options_.max_slrg_sets;
  slrg_limits.symmetry_pruning = options_.symmetry_pruning;
  Slrg slrg(cp_, plrg, cost, slrg_limits, options_.stop);

  // Single exit point: whatever path ends the plan() call, the stats carry
  // the same complete snapshot (graph sizes, memo counters, limit flags).
  [[maybe_unused]] const char* mode_name =
      options_.mode == PlannerOptions::Mode::Greedy ? "greedy" : "leveled";
  [[maybe_unused]] bool searched = false;  // phase 3 ran (its time histogram
                                           // only sees real runs)
  auto finish = [&](std::string failure) -> PlanResult {
    result.stats.plrg_props = plrg.prop_nodes();
    result.stats.plrg_actions = plrg.action_nodes();
    result.stats.slrg_sets = slrg.set_count();
    result.stats.slrg_memo_hits = slrg.memo_hits();
    result.stats.slrg_memo_misses = slrg.memo_misses();
    result.stats.pruned_placements += slrg.symmetry_pruned();
    result.stats.hit_search_limit = result.stats.hit_search_limit || slrg.hit_limit();
    result.failure = std::move(failure);
    SEKITEI_METRIC(metrics::registry()
                       .histogram("planner.graph_ms", {{"mode", mode_name}})
                       .observe(result.stats.time_graph_ms));
    if (searched) {
      SEKITEI_METRIC(metrics::registry()
                         .histogram("planner.search_ms", {{"mode", mode_name}})
                         .observe(result.stats.time_search_ms));
    }
    SEKITEI_LOG_INFO("core.planner", result.ok() ? "plan found" : "no plan",
                     log::kv("mode", mode_name),
                     log::kv("plan_actions", result.ok() ? result.plan->size() : 0),
                     log::kv("rg_expansions", result.stats.rg_expansions),
                     log::kv("graph_ms", result.stats.time_graph_ms),
                     log::kv("search_ms", result.stats.time_search_ms));
    return std::move(result);
  };

  // A stop during the PLRG build leaves a truncated graph whose costs must
  // not be interpreted (a goal can look unreachable merely because expansion
  // was cut short), so bail out before the reachability checks.
  if (options_.stop.stop_requested()) {
    result.stats.stopped = true;
    result.stats.time_graph_ms = watch.elapsed_ms();
    return finish("stopped during graph construction");
  }

  for (PropId g : cp_.goal_props) {
    if (!plrg.reachable(g)) {
      result.stats.logically_unreachable = true;
      result.stats.time_graph_ms = watch.elapsed_ms();
      return finish("goal " + cp_.describe(g) + " is logically unreachable");
    }
  }

  // Phase 2: set costs (the memoized SLRG oracle), seeded by the goal query.
  const std::vector<PropId>& goal_set = cp_.goal_props;
  double logical_cost;
  {
    trace::Span span("slrg.seed_goal_query", "graph");
    logical_cost = slrg.c_logical(goal_set);
  }
  result.stats.time_graph_ms = watch.elapsed_ms();
  SEKITEI_LOG_DEBUG("core.planner", "graph construction complete",
                    log::kv("plrg_props", plrg.prop_nodes()),
                    log::kv("plrg_actions", plrg.action_nodes()),
                    log::kv("slrg_sets", slrg.set_count()),
                    log::kv("c_logical", logical_cost),
                    log::kv("ms", result.stats.time_graph_ms));
  if (options_.stop.stop_requested()) {
    result.stats.stopped = true;
    return finish("stopped during graph construction");
  }
  if (logical_cost == kInf) {
    result.stats.logically_unreachable = true;
    return finish("no logically consistent action sequence reaches the goal");
  }

  // Phase 3: the main regression graph with optimistic-map replay.
  watch.restart();
  Rg rg(cp_, slrg, plrg, cost);
  Rg::Options rg_opts;
  rg_opts.max_expansions = options_.max_rg_expansions;
  rg_opts.forbid_repeated_actions = options_.forbid_repeated_actions;
  rg_opts.symmetry_pruning = options_.symmetry_pruning;
  rg_opts.replay_mode = options_.mode == PlannerOptions::Mode::Greedy ? ReplayMode::WorstCase
                                                                      : ReplayMode::Optimistic;
  rg_opts.progress = options_.progress;
  rg_opts.progress_every = options_.progress_every;
  rg_opts.stop = options_.stop;
  rg_opts.anytime = options_.anytime;
  searched = true;
  std::optional<Plan> plan;
  {
    trace::Span span("rg.search", "search");
    plan = rg.search(goal_set, rg_opts, validate, result.stats);
  }
  result.stats.time_search_ms = watch.elapsed_ms();

  if (plan) {
    result.plan = std::move(plan);
    return finish({});
  }
  if (result.stats.stopped) return finish("stopped before the search completed");
  return finish(result.stats.hit_search_limit || slrg.hit_limit()
                    ? "search limit exhausted before finding a plan"
                    : "no resource-feasible plan exists under the given levels");
}

}  // namespace sekitei::core
