#include "core/planner.hpp"

#include "core/plrg.hpp"
#include "core/rg.hpp"
#include "core/slrg.hpp"
#include "support/timer.hpp"

namespace sekitei::core {

Sekitei::Sekitei(const model::CompiledProblem& cp, PlannerOptions options)
    : cp_(cp), options_(options) {}

PlanResult Sekitei::plan(const std::function<bool(const Plan&)>& validate) {
  PlanResult result;
  result.stats.total_actions = cp_.actions.size();
  Stopwatch watch;

  const CostFn cost = options_.mode == PlannerOptions::Mode::Greedy
                          ? CostFn([](ActionId) { return 1.0; })
                          : CostFn([this](ActionId a) { return cp_.actions[a.index()].cost_lb; });

  // Phase 1: per-proposition logical regression graph (all goals at once).
  Plrg plrg(cp_, cost);
  plrg.build(std::span<const PropId>(cp_.goal_props));
  result.stats.plrg_props = plrg.prop_nodes();
  result.stats.plrg_actions = plrg.action_nodes();
  for (PropId g : cp_.goal_props) {
    if (!plrg.reachable(g)) {
      result.stats.logically_unreachable = true;
      result.stats.time_search_ms = watch.elapsed_ms();
      result.failure = "goal " + cp_.describe(g) + " is logically unreachable";
      return result;
    }
  }

  // Phase 2: set costs (the memoized SLRG oracle).
  const std::vector<PropId>& goal_set = cp_.goal_props;
  Slrg slrg(cp_, plrg, cost, {options_.max_slrg_sets});
  const double logical_cost = slrg.c_logical(goal_set);
  if (logical_cost == kInf) {
    result.stats.slrg_sets = slrg.set_count();
    result.stats.logically_unreachable = true;
    result.stats.time_search_ms = watch.elapsed_ms();
    result.failure = "no logically consistent action sequence reaches the goal";
    return result;
  }

  // Phase 3: the main regression graph with optimistic-map replay.
  Rg rg(cp_, slrg, plrg, cost);
  Rg::Options rg_opts;
  rg_opts.max_expansions = options_.max_rg_expansions;
  rg_opts.forbid_repeated_actions = options_.forbid_repeated_actions;
  rg_opts.replay_mode = options_.mode == PlannerOptions::Mode::Greedy ? ReplayMode::WorstCase
                                                                      : ReplayMode::Optimistic;
  std::optional<Plan> plan = rg.search(goal_set, rg_opts, validate, result.stats);
  result.stats.slrg_sets = slrg.set_count();
  result.stats.hit_search_limit = result.stats.hit_search_limit || slrg.hit_limit();
  result.stats.time_search_ms = watch.elapsed_ms();

  if (plan) {
    result.plan = std::move(plan);
  } else {
    result.failure = result.stats.hit_search_limit
                         ? "search limit exhausted before finding a plan"
                         : "no resource-feasible plan exists under the given levels";
  }
  return result;
}

}  // namespace sekitei::core
