// Per-proposition Logical Regression Graph (Section 3.2.1).
//
// "The algorithm first constructs a per-proposition logical regression graph
//  (PLRG), which estimates the minimum logical cost of achieving a
//  proposition from the initial state and identifies the set of relevant
//  actions.  Since the PLRG only considers logical preconditions and
//  effects, its cost estimates are a lower bound on the actual cost [...]
//  and therefore can be used as an admissible heuristic."
//
// Structure: an AND/OR graph.  Proposition cost = min over supporting
// actions; action cost = its own (leveled) cost + max over precondition
// costs.  Built by backward relevance expansion from the goal, then solved
// to a fixpoint.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "model/compile.hpp"
#include "support/stop_token.hpp"

namespace sekitei::core {

/// Per-action cost accessor; lets the greedy baseline run the same machinery
/// with uniform (plan-length) costs.
using CostFn = std::function<double(ActionId)>;

class Plrg {
 public:
  /// `stop` (optional) is polled between fixpoint sweeps and every 1024
  /// relevance expansions; on stop, build() returns with whatever subgraph
  /// and cost bounds exist so far (the caller is expected to abort planning).
  Plrg(const model::CompiledProblem& cp, CostFn cost, StopToken stop = {});

  /// Expands backwards from `goal` and computes the cost fixpoint.
  void build(PropId goal);

  /// Multi-goal variant: expands from every goal proposition.
  void build(std::span<const PropId> goals);

  /// Minimum logical cost of achieving p from the initial state; +inf when
  /// logically unreachable.
  [[nodiscard]] double cost(PropId p) const;

  [[nodiscard]] bool reachable(PropId p) const { return cost(p) < kInf; }

  /// Admissible estimate for a set: the most expensive member (costs of set
  /// members can overlap, so max — not sum — is the sound choice).
  [[nodiscard]] double set_cost(std::span<const PropId> props) const;

  /// Actions reachable in the backward expansion — the planner only ever
  /// branches over these.
  [[nodiscard]] const std::vector<ActionId>& relevant_actions() const { return rel_actions_; }
  [[nodiscard]] bool relevant(ActionId a) const { return action_seen_[a.index()]; }

  [[nodiscard]] std::size_t prop_nodes() const { return rel_props_.size(); }
  [[nodiscard]] std::size_t action_nodes() const { return rel_actions_.size(); }

 private:
  const model::CompiledProblem& cp_;
  CostFn cost_fn_;
  StopToken stop_;
  std::vector<double> prop_cost_;    // by PropId; +inf = unreachable
  std::vector<bool> prop_seen_;      // relevance marks
  std::vector<bool> action_seen_;
  std::vector<PropId> rel_props_;
  std::vector<ActionId> rel_actions_;
};

}  // namespace sekitei::core
