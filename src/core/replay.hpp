// Optimistic resource-map replay (Section 3.2.3, Fig. 8).
//
// "Whenever a new node is created by regressing the current cheapest node
//  over an action, the plan tail including this action is replayed in the
//  optimistic map of this action. [...] Before execution of each subsequent
//  action in the plan tail, the interval produced by execution of the
//  previous action is intersected with the optimistic interval of the
//  current action, and new optimistic intervals are added if necessary."
//
// The replayer executes a plan tail over a map VarId -> Interval:
//   1. merge each action slot's optimistic interval into the map
//      (degradable/upgradable inputs may shift the interval downward/upward
//      instead of strictly intersecting),
//   2. check that every condition is satisfiable (Optimistic mode) or holds
//      for every value (WorstCase mode — the original greedy Sekitei), and
//      narrow single-variable sides,
//   3. apply the effects by interval arithmetic and assert produced output
//      levels.
// Any empty interval / failed condition prunes the branch.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "model/compile.hpp"
#include "support/interval.hpp"

namespace sekitei::core {

enum class ReplayMode : unsigned char {
  Optimistic,  // leveled planner: conditions must be satisfiable
  WorstCase,   // greedy baseline: initial choices collapse to their maximum
               // and conditions must hold with certainty
};

/// Dense VarId -> Interval map with O(1) epoch-based clearing, so replays do
/// not allocate.
class ResourceMap {
 public:
  void reset(std::size_t var_count) {
    if (vals_.size() < var_count) {
      vals_.resize(var_count);
      epoch_.resize(var_count, 0);
    }
    ++cur_;
  }
  [[nodiscard]] bool has(VarId v) const { return epoch_[v.index()] == cur_; }
  [[nodiscard]] Interval get(VarId v) const { return vals_[v.index()]; }
  void set(VarId v, Interval iv) {
    vals_[v.index()] = iv;
    epoch_[v.index()] = cur_;
  }

 private:
  std::vector<Interval> vals_;
  std::vector<std::uint32_t> epoch_;
  std::uint32_t cur_ = 0;
};

class Replayer {
 public:
  explicit Replayer(const model::CompiledProblem& cp) : cp_(cp) {}

  /// Replays `steps` (execution order).  `from_init` preloads the initial
  /// resource map — the final acceptance check ("the plan tail successfully
  /// executes in the resource map of the initial state").  Returns false as
  /// soon as an interval empties or a condition fails.
  [[nodiscard]] bool replay(std::span<const ActionId> steps, bool from_init, ReplayMode mode);

  /// The map after the last successful replay (for inspection/tests).
  [[nodiscard]] const ResourceMap& map() const { return map_; }

  /// Why the last replay failed (empty when it succeeded).
  [[nodiscard]] const std::string& failure() const { return failure_; }

  /// Total replay() invocations over this replayer's lifetime — the RG's
  /// dominant inner-loop work item, folded into PlannerStats::replay_calls.
  [[nodiscard]] std::uint64_t calls() const { return calls_; }

 private:
  [[nodiscard]] bool step(const model::GroundAction& act, ReplayMode mode);

  const model::CompiledProblem& cp_;
  ResourceMap map_;
  std::vector<Interval> scratch_;
  std::string failure_;
  std::uint64_t calls_ = 0;
};

}  // namespace sekitei::core
