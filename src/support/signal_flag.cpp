#include "support/signal_flag.hpp"

#include <csignal>
#include <cstring>

#include "support/error.hpp"

namespace sekitei::signal_flag {

namespace {

volatile std::sig_atomic_t g_fired = 0;

extern "C" void on_signal(int signo) { g_fired = signo; }

}  // namespace

void install(std::initializer_list<int> signals) {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: a parked accept/poll returns EINTR, so the caller's next
  // tick observes the flag promptly instead of after a full blocking call.
  for (int signo : signals) {
    if (sigaction(signo, &sa, nullptr) != 0) {
      raise("sigaction(" + std::to_string(signo) + ") failed");
    }
  }
}

int fired() { return static_cast<int>(g_fired); }

void reset() { g_fired = 0; }

}  // namespace sekitei::signal_flag
