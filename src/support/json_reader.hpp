// Minimal recursive-descent JSON *reader*: enough of RFC 8259 to validate
// the planner's own machine-readable output (stats records, NDJSON
// diagnostics, Chrome trace-event files) without pulling in a JSON library.
// The writer half lives in support/json.hpp; the two share the
// sekitei::json namespace.  Numbers parse as double; \uXXXX escapes decode
// to UTF-8 (no surrogate pairs — the planner never emits them).
#pragma once

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sekitei::json {

struct Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  // shared_ptr keeps Value copyable while Array/Object are still incomplete.
  std::shared_ptr<Array> arr;
  std::shared_ptr<Object> obj;

  [[nodiscard]] bool is_null() const { return kind == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    auto it = obj->find(key);
    return it == obj->end() ? nullptr : &it->second;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(Value& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  bool fail(const char* what) {
    if (error_.empty()) {
      error_ = what;
      error_ += " at offset ";
      error_ += std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool consume(char c) {
    if (peek() != c) return fail("unexpected character");
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool value(Value& out) {
    switch (peek()) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.kind = Value::Kind::String;
        return string(out.str);
      case 't':
        out.kind = Value::Kind::Bool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = Value::Kind::Bool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = Value::Kind::Null;
        return literal("null");
      default: return number(out);
    }
  }

  bool object(Value& out) {
    out.kind = Value::Kind::Object;
    out.obj = std::make_shared<Object>();
    if (!consume('{')) return false;
    skip_ws();
    if (peek() == '}') return consume('}');
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      Value member;
      if (!value(member)) return false;
      out.obj->emplace(std::move(key), std::move(member));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  bool array(Value& out) {
    out.kind = Value::Kind::Array;
    out.arr = std::make_shared<Array>();
    if (!consume('[')) return false;
    skip_ws();
    if (peek() == ']') return consume(']');
    while (true) {
      skip_ws();
      Value item;
      if (!value(item)) return false;
      out.arr->push_back(std::move(item));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  bool string(std::string& out) {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u digit");
            }
          }
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(Value& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.kind = Value::Kind::Number;
    out.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// Parses `text` into `out`; on failure returns false and fills `*error`.
inline bool parse(std::string_view text, Value& out, std::string* error = nullptr) {
  Parser p(text);
  const bool ok = p.parse(out);
  if (!ok && error != nullptr) *error = p.error();
  return ok;
}

}  // namespace sekitei::json
