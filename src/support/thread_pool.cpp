#include "support/thread_pool.hpp"

#include "support/fault.hpp"

namespace sekitei {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(/*drain=*/true); }

void ThreadPool::submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!stopping_) {
      queue_.push_back(std::move(job));
      lock.unlock();
      cv_.notify_one();
      return;
    }
  }
  // Pool already shut down: run inline so attached futures still complete.
  job();
}

std::size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already shutting down (or done); nothing to reconfigure.
    } else {
      stopping_ = true;
      drain_ = drain;
      if (!drain) queue_.clear();
    }
  }
  cv_.notify_all();
  // Serialize the join phase: without this, an explicit shutdown() racing the
  // destructor would have two threads calling joinable()/join() on the same
  // std::thread (a data race).  The first caller joins; later callers block
  // here until the workers are gone, then see joinable() == false.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      if (stopping_ && !drain_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      // Worker-job-start fault: fires *before* the job runs, simulating a
      // worker that loses its work item.  Fail mode drops the job silently;
      // Throw mode lands in the backstop below.  Either way the job's
      // std::function is destroyed without running — completion guarantees
      // must come from state the job owns (the service layer's job guard
      // answers the future from its destructor in exactly this case).
      if (!SEKITEI_FAULT_POINT("pool.job")) {
        job();
      }
    } catch (...) {
      // Jobs own their error handling (the service layer converts exceptions
      // into Rejected responses); this backstop keeps a leaked exception from
      // std::terminate'ing the whole process.
    }
  }
}

}  // namespace sekitei
