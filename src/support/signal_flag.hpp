// Async-signal-safe termination flag for the long-lived drivers: install()
// registers a sigaction handler that records the signal number in a
// volatile sig_atomic_t; fired() is polled from ordinary threads (the
// daemon's accept loop already wakes every tick, so no self-pipe is
// needed).  Nothing here allocates or locks inside the handler.
#pragma once

#include <initializer_list>

namespace sekitei::signal_flag {

/// Installs the flag handler for each signal (typically {SIGTERM, SIGINT}).
/// Re-installing is harmless.  Raises sekitei::Error if sigaction fails.
void install(std::initializer_list<int> signals);

/// The last signal caught, or 0 when none fired yet.
[[nodiscard]] int fired();

/// Clears the flag (tests re-use the process).
void reset();

}  // namespace sekitei::signal_flag
