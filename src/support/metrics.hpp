// Process-wide metrics registry: lock-free counters, gauges, and
// fixed-boundary log-scale histograms behind stable dotted names with
// optional labels, exported as Prometheus text exposition or NDJSON
// snapshot lines (one-shot or via a periodic flusher thread).
//
// Design goals, mirroring the logger (support/log.hpp):
//   1. Cheap when hot.  Counter::add / Gauge::add are one relaxed atomic
//      RMW; Histogram::observe is one log2, two relaxed RMWs and a CAS
//      loop on the sum.  Registration (the only locked path) happens once
//      per call site and is cached behind a function-local static by the
//      SEKITEI_METRIC_* macros.
//   2. Removable.  Building a TU with -DSEKITEI_METRICS_DISABLED (implied
//      by -DSEKITEI_LOG_DISABLED, like the trace layer) folds every
//      SEKITEI_METRIC_* statement to nothing — arguments are not even
//      evaluated (tests/metrics_disabled.cpp guards this).  The classes
//      themselves stay fully functional in every build so that load-bearing
//      uses (the engine's pending/preflight accessors) and the exporters
//      never change behavior.
//   3. No planning decision ever depends on a metric (determinism): the
//      registry only observes, and nothing in it reads the clock except
//      the exporters' optional timestamps.
//
// Usage:
//   auto& c = metrics::registry().counter("service.cache.hit");
//   c.add();
//   metrics::registry().histogram("planner.search_ms").observe(12.7);
//   std::fputs(metrics::registry().to_ndjson(metrics::wall_ms()).c_str(), out);
// or, compile-out friendly:
//   SEKITEI_METRIC_INC("service.cache.hit");
//   SEKITEI_METRIC_OBSERVE("planner.search_ms", watch.elapsed_ms());
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <condition_variable>
#include <unordered_map>
#include <utility>
#include <vector>

#if defined(SEKITEI_LOG_DISABLED) && !defined(SEKITEI_METRICS_DISABLED)
#define SEKITEI_METRICS_DISABLED
#endif

namespace sekitei::metrics {

/// One metric label.  Labels distinguish series under one dotted name
/// ("service.requests" x outcome); they are part of the series identity and
/// are sorted by key at registration, so {a=1,b=2} and {b=2,a=1} are the
/// same series.
struct Label {
  std::string key;
  std::string value;
};
using Labels = std::vector<Label>;

/// Monotonic event count.  add() is a single relaxed fetch_add — safe and
/// lock-free from any number of threads.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, in-flight requests).  add()
/// returns the post-add value so callers can reserve-then-check (the
/// engine's admission control does exactly this).
class Gauge {
 public:
  std::int64_t add(std::int64_t delta) {
    return value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  }
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-boundary log-scale histogram.  Bucket upper bounds grow
/// geometrically: bucket 0 holds values <= min, bucket i holds
/// (min*2^((i-1)/bpo), min*2^(i/bpo)], and one overflow bucket holds
/// values > max.  With the default 4 buckets per octave a quantile
/// estimate is within a factor of 2^(1/4) ~ 1.19 of the true value
/// (tests/metrics_test.cpp pins this bound).  observe() is lock-free:
/// one relaxed fetch_add per bucket/count plus a CAS loop on the sum.
class Histogram {
 public:
  struct Options {
    double min = 1e-3;    ///< upper bound of the first bucket (1 microsecond in ms)
    double max = 65536.0; ///< values above land in the overflow bucket (~65 s in ms)
    std::uint32_t buckets_per_octave = 4;
  };

  // Not `Options opt = {}`: NSDMIs of a nested class are not usable in
  // default arguments of the enclosing class (GCC rejects it).
  Histogram() : Histogram(Options{}) {}
  explicit Histogram(Options opt);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Quantile estimate from the bucket counts (q in [0,1]); 0 when empty.
  /// Returns the geometric midpoint of the bucket holding the q-th sample.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] const Options& options() const { return opt_; }
  /// Finite buckets + 1 overflow.
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t bucket_value(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i; +inf for the overflow bucket.
  [[nodiscard]] double bucket_upper(std::size_t i) const;

 private:
  [[nodiscard]] std::size_t index_of(double v) const;

  Options opt_;
  std::size_t finite_ = 0;  // buckets 0..finite_-1; index finite_ = overflow
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class Kind : unsigned char { Counter, Gauge, Histogram };

[[nodiscard]] const char* kind_name(Kind k);

/// Point-in-time copy of one series, produced by Registry::snapshot().
struct MetricSnapshot {
  std::string name;
  Labels labels;
  Kind kind = Kind::Counter;
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  // Histogram only:
  std::uint64_t hist_count = 0;
  double hist_sum = 0.0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;
  /// (upper bound, count) for the *non-empty* buckets, in bound order; the
  /// overflow bucket's bound renders as +inf.
  std::vector<std::pair<double, std::uint64_t>> buckets;
};

/// Thread-safe find-or-create registry.  Returned references stay valid for
/// the registry's lifetime (series are never removed).  Re-requesting a
/// name+labels with a different kind raises sekitei::Error.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Histogram& histogram(std::string_view name, Labels labels = {},
                       Histogram::Options opt = {});

  [[nodiscard]] std::size_t size() const;

  /// Snapshot of every series, sorted by (name, labels) so exposition is
  /// deterministic for a given registry content.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// Prometheus text exposition (one # TYPE line per family, dots in names
  /// become underscores, histograms expand to _bucket/_sum/_count).
  [[nodiscard]] std::string to_prometheus() const;

  /// NDJSON: one `{"metric":...}` object per line per series.  `ts_ms` (wall
  /// epoch milliseconds) is stamped on every line; 0 omits the field so
  /// golden tests stay byte-stable.
  [[nodiscard]] std::string to_ndjson(std::uint64_t ts_ms = 0) const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(std::string_view name, Labels&& labels, Kind kind,
                        const Histogram::Options* opt);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;       // stable addresses
  std::unordered_map<std::string, std::size_t> index_; // rendered key -> entries_ idx
};

/// The process-wide registry every SEKITEI_METRIC_* macro and subsystem
/// reports into.  Constructed on first use; never destroyed before exit.
[[nodiscard]] Registry& registry();

/// Wall-clock epoch milliseconds — exporter timestamps only, never planning.
[[nodiscard]] std::uint64_t wall_ms();

/// Periodic NDJSON snapshot writer: every `period_ms` the flusher thread
/// appends registry().to_ndjson(wall_ms()) to `out` (each line one fwrite,
/// then fflush).  stop() — also run by the destructor — writes one final
/// snapshot so short-lived processes always leave a complete last record.
class Flusher {
 public:
  Flusher(Registry& reg, std::FILE* out, double period_ms);
  ~Flusher();

  Flusher(const Flusher&) = delete;
  Flusher& operator=(const Flusher&) = delete;

  /// Idempotent: joins the thread after one final flush.
  void stop();

 private:
  void run();
  void flush_once();

  Registry& reg_;
  std::FILE* out_;
  double period_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace sekitei::metrics

// The macro layer.  SEKITEI_METRICS_DISABLED removes every call site at
// compile time — arguments are not evaluated — mirroring SEKITEI_LOG.  The
// statement form SEKITEI_METRIC(expr) is for sites whose labels vary at
// runtime; the named forms cache the registry lookup in a function-local
// static, so the steady-state cost is the atomic op alone.
#ifdef SEKITEI_METRICS_DISABLED
#define SEKITEI_METRIC(...) \
  do {                      \
  } while (false)
#define SEKITEI_METRIC_INC(name) \
  do {                           \
  } while (false)
#define SEKITEI_METRIC_ADD(name, delta) \
  do {                                  \
  } while (false)
#define SEKITEI_METRIC_GAUGE_SET(name, v) \
  do {                                    \
  } while (false)
#define SEKITEI_METRIC_OBSERVE(name, v) \
  do {                                  \
  } while (false)
#else
#define SEKITEI_METRIC(...) \
  do {                      \
    __VA_ARGS__;            \
  } while (false)
#define SEKITEI_METRIC_INC(name)                                      \
  do {                                                                \
    static ::sekitei::metrics::Counter& sekitei_metric_counter =      \
        ::sekitei::metrics::registry().counter(name);                 \
    sekitei_metric_counter.add(1);                                    \
  } while (false)
#define SEKITEI_METRIC_ADD(name, delta)                               \
  do {                                                                \
    static ::sekitei::metrics::Counter& sekitei_metric_counter =      \
        ::sekitei::metrics::registry().counter(name);                 \
    sekitei_metric_counter.add(delta);                                \
  } while (false)
#define SEKITEI_METRIC_GAUGE_SET(name, v)                             \
  do {                                                                \
    static ::sekitei::metrics::Gauge& sekitei_metric_gauge =          \
        ::sekitei::metrics::registry().gauge(name);                   \
    sekitei_metric_gauge.set(v);                                      \
  } while (false)
#define SEKITEI_METRIC_OBSERVE(name, v)                               \
  do {                                                                \
    static ::sekitei::metrics::Histogram& sekitei_metric_histogram =  \
        ::sekitei::metrics::registry().histogram(name);               \
    sekitei_metric_histogram.observe(v);                              \
  } while (false)
#endif
