#include "support/interval.hpp"

#include <sstream>

namespace sekitei {

std::string Interval::str() const {
  if (is_empty()) return "(empty)";
  std::ostringstream os;
  os << '[' << lo << ", ";
  if (hi == kInf) {
    os << "inf)";
  } else {
    os << hi << (hi_open ? ')' : ']');
  }
  return os.str();
}

}  // namespace sekitei
