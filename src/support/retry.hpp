// Deterministic jittered exponential backoff, shared by every driver that
// re-submits transiently-rejected work (sekitei_serve's admission-control
// retries, sekitei_load's reconnects).  One SplitMix64 stream per Backoff
// instance: two identical invocations draw identical jitter, so retry
// schedules are part of the reproducible behavior under test.
//
//   Backoff backoff({.base_ms = 5.0});          // default deterministic seed
//   for (uint32_t attempt = 0; transient_failure(); ++attempt)
//     sleep_ms(backoff.next_delay_ms(attempt));
//
// Attempt k draws base_ms * 2^k * uniform(1, 1 + jitter) — the exact
// schedule the serve driver has emitted since the ladder PR, now in one
// place (tests/support_test.cpp pins the bounds and the sequence).
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#include "support/rng.hpp"

namespace sekitei {

class Backoff {
 public:
  /// The historical serve-driver seed; kept as the shared default so the
  /// batch driver's retry schedule stays byte-identical across the refactor.
  static constexpr std::uint64_t kDefaultSeed = 0x5ec17e15ULL;

  struct Options {
    double base_ms = 5.0;  ///< attempt-0 delay before jitter
    double jitter = 0.5;   ///< delay is multiplied by uniform(1, 1 + jitter)
  };

  explicit Backoff(Options opt, std::uint64_t seed = kDefaultSeed)
      : opt_(opt), rng_(seed) {}
  Backoff() : Backoff(Options{}) {}

  /// Delay for retry `attempt` (counted from 0); consumes one RNG draw, so
  /// call it exactly once per retry to keep schedules reproducible.
  /// Guaranteed within [base * 2^attempt, base * 2^attempt * (1 + jitter)).
  [[nodiscard]] double next_delay_ms(std::uint32_t attempt) {
    const double scale = static_cast<double>(1ULL << (attempt < 63 ? attempt : 63));
    return opt_.base_ms * scale * rng_.uniform(1.0, 1.0 + opt_.jitter);
  }

  [[nodiscard]] const Options& options() const { return opt_; }

 private:
  Options opt_;
  SplitMix64 rng_;
};

/// The drivers' sleep: plain thread sleep with sub-millisecond resolution.
inline void sleep_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace sekitei
