#include "support/fault.hpp"

#include <cstdlib>
#include <mutex>

#include "support/error.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"

namespace sekitei::fault {

namespace detail {
std::atomic<std::uint32_t> armed_total{0};
}  // namespace detail

namespace {

struct Registry {
  std::mutex mu;
  std::vector<PointStatus> entries;
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

void arm(std::string point, std::uint64_t fire_on_nth, Mode mode) {
  if (fire_on_nth == 0) fire_on_nth = 1;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (PointStatus& e : reg.entries) {
    if (e.point == point) {
      if (!e.fired) detail::armed_total.fetch_sub(1, std::memory_order_relaxed);
      e = PointStatus{std::move(point), fire_on_nth, 0, mode, false};
      detail::armed_total.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  reg.entries.push_back(PointStatus{std::move(point), fire_on_nth, 0, mode, false});
  detail::armed_total.fetch_add(1, std::memory_order_relaxed);
}

void disarm_all() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const PointStatus& e : reg.entries) {
    if (!e.fired) detail::armed_total.fetch_sub(1, std::memory_order_relaxed);
  }
  reg.entries.clear();
}

std::size_t armed_count() { return detail::armed_total.load(std::memory_order_relaxed); }

bool configure(const std::string& spec, std::string* error) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;

    const std::size_t c1 = item.find(':');
    if (c1 == std::string::npos || c1 == 0) {
      if (error) *error = "fault spec '" + item + "': expected <point>:<nth>[:throw|:fail]";
      return false;
    }
    const std::string point = item.substr(0, c1);
    const std::size_t c2 = item.find(':', c1 + 1);
    const std::string nth_str =
        item.substr(c1 + 1, (c2 == std::string::npos ? item.size() : c2) - c1 - 1);
    char* nth_end = nullptr;
    const unsigned long long nth = std::strtoull(nth_str.c_str(), &nth_end, 10);
    if (nth_str.empty() || nth_end == nth_str.c_str() || *nth_end != '\0' || nth == 0) {
      if (error) *error = "fault spec '" + item + "': fire-on-nth must be a positive integer";
      return false;
    }
    Mode mode = Mode::Throw;
    if (c2 != std::string::npos) {
      const std::string mode_str = item.substr(c2 + 1);
      if (mode_str == "throw") {
        mode = Mode::Throw;
      } else if (mode_str == "fail") {
        mode = Mode::Fail;
      } else {
        if (error) *error = "fault spec '" + item + "': mode must be 'throw' or 'fail'";
        return false;
      }
    }
    arm(point, nth, mode);
    SEKITEI_LOG_INFO("support.fault", "fault armed", log::kv("point", point.c_str()),
                     log::kv("nth", static_cast<std::uint64_t>(nth)),
                     log::kv("mode", mode == Mode::Throw ? "throw" : "fail"));
  }
  return true;
}

bool install_from_env(const char* env_var, std::string* error) {
  const char* value = std::getenv(env_var);
  if (value == nullptr || *value == '\0') return true;
  return configure(value, error);
}

std::vector<PointStatus> status() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.entries;
}

std::uint64_t hits(const std::string& point) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const PointStatus& e : reg.entries) {
    if (e.point == point) return e.hits;
  }
  return 0;
}

namespace detail {

bool hit_slow(const char* point) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (PointStatus& e : reg.entries) {
    if (e.point != point) continue;
    ++e.hits;
    if (e.fired || e.hits != e.fire_on_nth) return false;
    e.fired = true;
    armed_total.fetch_sub(1, std::memory_order_relaxed);
    SEKITEI_METRIC(metrics::registry().counter("fault.fired", {{"point", point}}).add(1));
    SEKITEI_LOG_WARN("support.fault", "fault fired", log::kv("point", point),
                     log::kv("hit", e.hits),
                     log::kv("mode", e.mode == Mode::Throw ? "throw" : "fail"));
    if (e.mode == Mode::Throw) {
      raise(std::string("injected fault at ") + point);
    }
    return true;
  }
  return false;
}

}  // namespace detail

}  // namespace sekitei::fault
