// Deterministic fault injection for robustness testing.
//
// Code under test declares named fault points:
//
//   if (SEKITEI_FAULT_POINT("cache.insert")) return;   // Fail mode: skip
//   // Throw mode never reaches the `if` body — hit() raises sekitei::Error.
//
// Faults are armed programmatically (fault::arm) or from the environment:
//
//   SEKITEI_FAULTS=<point>:<fire-on-nth>[:throw|:fail][,<more>...]
//   SEKITEI_FAULTS=cache.insert:1:throw,replay.validate:3:fail
//
// Firing is deterministic: an armed fault counts evaluations of its point
// (process-wide, mutex-serialized so concurrent workers agree on the order
// of their own hits) and fires exactly once, on the nth evaluation after
// arming — the same arming always fires on the same hit, so ASan/TSan runs
// reproduce.  Two modes:
//
//   throw  hit() raises sekitei::Error("injected fault at <point>") — the
//          caller's normal error path must classify it.
//   fail   hit() returns true — the caller takes its designed failure
//          branch (skip the insert, report replay failure, ...).
//
// When nothing is armed a fault point costs one relaxed atomic load and a
// predictable branch; compiling with -DSEKITEI_FAULTS_DISABLED removes the
// points entirely (the macro folds to the constant false).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sekitei::fault {

enum class Mode : unsigned char { Throw, Fail };

struct PointStatus {
  std::string point;
  std::uint64_t fire_on_nth = 1;
  std::uint64_t hits = 0;  // evaluations of the point since arming
  Mode mode = Mode::Throw;
  bool fired = false;
};

/// Arms `point` to fire on its nth evaluation from now (nth >= 1; 0 is
/// clamped to 1).  Re-arming an existing point resets its hit counter.
void arm(std::string point, std::uint64_t fire_on_nth = 1, Mode mode = Mode::Throw);

/// Removes every armed fault (fired or not).  Tests call this in teardown.
void disarm_all();

/// Armed-and-not-yet-fired fault count.
[[nodiscard]] std::size_t armed_count();

/// Parses the SEKITEI_FAULTS syntax ("<point>:<nth>[:throw|:fail]", comma
/// separated) and arms each entry.  Returns false and fills `*error` (when
/// given) on malformed input; earlier well-formed entries stay armed.
bool configure(const std::string& spec, std::string* error = nullptr);

/// Reads `env_var` (default SEKITEI_FAULTS) and configures from it.  Unset
/// or empty is a no-op returning true.
bool install_from_env(const char* env_var = "SEKITEI_FAULTS", std::string* error = nullptr);

/// Snapshot of every armed fault (for diagnostics and tests).
[[nodiscard]] std::vector<PointStatus> status();

/// Evaluations of `point` since it was armed (0 when not armed).
[[nodiscard]] std::uint64_t hits(const std::string& point);

namespace detail {
extern std::atomic<std::uint32_t> armed_total;
bool hit_slow(const char* point);
}  // namespace detail

/// Evaluates the fault point: returns true when a Fail-mode fault fires this
/// call, throws sekitei::Error when a Throw-mode fault fires, and returns
/// false otherwise.  Free when nothing is armed.
inline bool hit(const char* point) {
  if (detail::armed_total.load(std::memory_order_relaxed) == 0) return false;
  return detail::hit_slow(point);
}

}  // namespace sekitei::fault

#ifdef SEKITEI_FAULTS_DISABLED
#define SEKITEI_FAULT_POINT(point) false
#else
#define SEKITEI_FAULT_POINT(point) (::sekitei::fault::hit(point))
#endif
