// Deterministic pseudo-random numbers (SplitMix64).
//
// All stochastic pieces of the library (topology generation, property-test
// inputs, workload synthesis) draw from this generator so every experiment is
// reproducible from a seed.  No global RNG state exists anywhere.
#pragma once

#include <cstdint>

namespace sekitei {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Bernoulli draw with probability p.
  constexpr bool chance(double p) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace sekitei
