// String interning: maps names to dense NameId values so that the hot planner
// paths compare 32-bit integers instead of strings.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"
#include "support/ids.hpp"

namespace sekitei {

class Interner {
 public:
  /// Returns the id for `name`, creating it on first use.
  NameId intern(std::string_view name) {
    auto it = index_.find(std::string(name));
    if (it != index_.end()) return it->second;
    NameId id(static_cast<std::uint32_t>(names_.size()));
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name` or an invalid id when unknown.
  [[nodiscard]] NameId find(std::string_view name) const {
    auto it = index_.find(std::string(name));
    return it == index_.end() ? NameId{} : it->second;
  }

  [[nodiscard]] const std::string& str(NameId id) const {
    SEKITEI_ASSERT(id.valid() && id.index() < names_.size());
    return names_[id.index()];
  }

  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NameId> index_;
};

}  // namespace sekitei
