// Minimal JSON writing helpers shared by the observability modules (the
// structured log sink, the trace exporter, and the stats serializer).  Only
// *writing* lives here; the library never parses JSON.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace sekitei::json {

/// Appends `s` to `out` as a JSON string literal (quotes included).
inline void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Appends a double with a fixed, locale-independent rendering (three
/// decimals — milliseconds resolve to microseconds, counter values to
/// thousandths), so serialized output is byte-stable across runs.
inline void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

inline void append_number(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

}  // namespace sekitei::json
