#include "support/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "support/error.hpp"
#include "support/json.hpp"

namespace sekitei::metrics {

namespace {

/// Series identity: name plus rendered sorted labels ("name{k=v,k2=v2}").
std::string render_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  if (!labels.empty()) {
    key.push_back('{');
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i != 0) key.push_back(',');
      key += labels[i].key;
      key.push_back('=');
      key += labels[i].value;
    }
    key.push_back('}');
  }
  return key;
}

/// Prometheus metric names allow [a-zA-Z0-9_:] only; dotted names map onto
/// underscores ("service.cache.hit" -> "service_cache_hit").
std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_prom_labels(std::string& out, const Labels& labels, const char* extra_key = nullptr,
                        const char* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return;
  out.push_back('{');
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += l.key;
    out += "=\"";
    for (char c : l.value) {  // escape per exposition format
      if (c == '\\' || c == '"') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    out.push_back('"');
  }
  if (extra_key != nullptr) {
    if (!first) out.push_back(',');
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out.push_back('"');
  }
  out.push_back('}');
}

void append_u64(std::string& out, std::uint64_t v) { json::append_number(out, v); }

void append_i64(std::string& out, std::int64_t v) {
  if (v < 0) {
    out.push_back('-');
    json::append_number(out, static_cast<std::uint64_t>(-v));
  } else {
    json::append_number(out, static_cast<std::uint64_t>(v));
  }
}

}  // namespace

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::Counter: return "counter";
    case Kind::Gauge: return "gauge";
    case Kind::Histogram: return "histogram";
  }
  return "counter";
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(Options opt) : opt_(opt) {
  if (!(opt_.min > 0.0)) opt_.min = 1e-3;
  if (!(opt_.max > opt_.min)) opt_.max = opt_.min * 2.0;
  if (opt_.buckets_per_octave == 0) opt_.buckets_per_octave = 1;
  const double octaves = std::log2(opt_.max / opt_.min);
  finite_ = 1 + static_cast<std::size_t>(
                    std::ceil(octaves * static_cast<double>(opt_.buckets_per_octave)));
  buckets_ = std::vector<std::atomic<std::uint64_t>>(finite_ + 1);  // + overflow
}

std::size_t Histogram::index_of(double v) const {
  if (!(v > opt_.min)) return 0;  // also catches NaN (comparison is false)
  const double pos = std::log2(v / opt_.min) * static_cast<double>(opt_.buckets_per_octave);
  // Bucket i (i >= 1) covers pos in (i-1, i], so the index is ceil(pos); the
  // epsilon keeps a value exactly on a bucket's upper bound in that bucket
  // when log2 lands a hair above the integer.
  const auto idx = static_cast<std::size_t>(std::ceil(pos - 1.0e-9));
  if (idx < 1) return 1;
  return idx >= finite_ ? finite_ : idx;
}

void Histogram::observe(double v) {
  buckets_[index_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20 but spotty in older libstdc++; a
  // CAS loop is portable and contention here is per-request, not per-node.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

double Histogram::bucket_upper(std::size_t i) const {
  if (i >= finite_) return std::numeric_limits<double>::infinity();
  if (i == 0) return opt_.min;
  return opt_.min * std::exp2(static_cast<double>(i) /
                              static_cast<double>(opt_.buckets_per_octave));
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += bucket_value(i);
    if (cum >= target) {
      if (i == 0) return opt_.min;
      if (i >= finite_) return opt_.max;  // overflow: best available bound
      const double hi = bucket_upper(i);
      const double lo = bucket_upper(i - 1);
      return std::sqrt(lo * hi);  // geometric midpoint of a log-scale bucket
    }
  }
  return opt_.max;  // unreachable unless counters raced; still a sane answer
}

// ---------------------------------------------------------------------------
// Registry

Registry::Entry& Registry::find_or_create(std::string_view name, Labels&& labels, Kind kind,
                                          const Histogram::Options* opt) {
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string key = render_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = index_.find(key); it != index_.end()) {
    Entry& e = *entries_[it->second];
    if (e.kind != kind) {
      raise("metric '" + key + "' re-registered as " + kind_name(kind) + " (was " +
            kind_name(e.kind) + ")");
    }
    return e;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->labels = std::move(labels);
  entry->kind = kind;
  switch (kind) {
    case Kind::Counter: entry->counter = std::make_unique<Counter>(); break;
    case Kind::Gauge: entry->gauge = std::make_unique<Gauge>(); break;
    case Kind::Histogram:
      entry->histogram = std::make_unique<Histogram>(opt != nullptr ? *opt
                                                                    : Histogram::Options{});
      break;
  }
  entries_.push_back(std::move(entry));
  index_.emplace(std::move(key), entries_.size() - 1);
  return *entries_.back();
}

Counter& Registry::counter(std::string_view name, Labels labels) {
  return *find_or_create(name, std::move(labels), Kind::Counter, nullptr).counter;
}

Gauge& Registry::gauge(std::string_view name, Labels labels) {
  return *find_or_create(name, std::move(labels), Kind::Gauge, nullptr).gauge;
}

Histogram& Registry::histogram(std::string_view name, Labels labels, Histogram::Options opt) {
  return *find_or_create(name, std::move(labels), Kind::Histogram, &opt).histogram;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::vector<MetricSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& entry : entries_) {
      MetricSnapshot s;
      s.name = entry->name;
      s.labels = entry->labels;
      s.kind = entry->kind;
      switch (entry->kind) {
        case Kind::Counter: s.counter = entry->counter->value(); break;
        case Kind::Gauge: s.gauge = entry->gauge->value(); break;
        case Kind::Histogram: {
          const Histogram& h = *entry->histogram;
          s.hist_count = h.count();
          s.hist_sum = h.sum();
          s.p50 = h.quantile(0.50);
          s.p90 = h.quantile(0.90);
          s.p99 = h.quantile(0.99);
          for (std::size_t i = 0; i < h.bucket_count(); ++i) {
            const std::uint64_t c = h.bucket_value(i);
            if (c != 0) s.buckets.emplace_back(h.bucket_upper(i), c);
          }
          break;
        }
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(), [](const MetricSnapshot& a, const MetricSnapshot& b) {
    if (a.name != b.name) return a.name < b.name;
    return render_key("", a.labels) < render_key("", b.labels);
  });
  return out;
}

std::string Registry::to_prometheus() const {
  const std::vector<MetricSnapshot> snap = snapshot();
  std::string out;
  out.reserve(snap.size() * 64);
  std::string last_family;
  for (const MetricSnapshot& s : snap) {
    const std::string family = prom_name(s.name);
    if (family != last_family) {
      out += "# TYPE ";
      out += family;
      out.push_back(' ');
      out += kind_name(s.kind);
      out.push_back('\n');
      last_family = family;
    }
    switch (s.kind) {
      case Kind::Counter:
        out += family;
        append_prom_labels(out, s.labels);
        out.push_back(' ');
        append_u64(out, s.counter);
        out.push_back('\n');
        break;
      case Kind::Gauge:
        out += family;
        append_prom_labels(out, s.labels);
        out.push_back(' ');
        append_i64(out, s.gauge);
        out.push_back('\n');
        break;
      case Kind::Histogram: {
        std::uint64_t cum = 0;
        for (const auto& [bound, count] : s.buckets) {
          cum += count;
          char le[48];
          if (std::isinf(bound)) {
            std::snprintf(le, sizeof le, "+Inf");
          } else {
            std::snprintf(le, sizeof le, "%.6g", bound);
          }
          out += family;
          out += "_bucket";
          append_prom_labels(out, s.labels, "le", le);
          out.push_back(' ');
          append_u64(out, cum);
          out.push_back('\n');
        }
        // The exposition format requires the +Inf bucket == _count even when
        // the overflow bucket itself is empty.
        if (s.buckets.empty() || !std::isinf(s.buckets.back().first)) {
          out += family;
          out += "_bucket";
          append_prom_labels(out, s.labels, "le", "+Inf");
          out.push_back(' ');
          append_u64(out, s.hist_count);
          out.push_back('\n');
        }
        out += family;
        out += "_sum";
        append_prom_labels(out, s.labels);
        out.push_back(' ');
        json::append_number(out, s.hist_sum);
        out.push_back('\n');
        out += family;
        out += "_count";
        append_prom_labels(out, s.labels);
        out.push_back(' ');
        append_u64(out, s.hist_count);
        out.push_back('\n');
        break;
      }
    }
  }
  return out;
}

std::string Registry::to_ndjson(std::uint64_t ts_ms) const {
  const std::vector<MetricSnapshot> snap = snapshot();
  std::string out;
  out.reserve(snap.size() * 96);
  for (const MetricSnapshot& s : snap) {
    out += "{\"metric\":";
    json::append_escaped(out, s.name);
    out += ",\"type\":\"";
    out += kind_name(s.kind);
    out.push_back('"');
    if (!s.labels.empty()) {
      out += ",\"labels\":{";
      for (std::size_t i = 0; i < s.labels.size(); ++i) {
        if (i != 0) out.push_back(',');
        json::append_escaped(out, s.labels[i].key);
        out.push_back(':');
        json::append_escaped(out, s.labels[i].value);
      }
      out.push_back('}');
    }
    switch (s.kind) {
      case Kind::Counter:
        out += ",\"value\":";
        append_u64(out, s.counter);
        break;
      case Kind::Gauge:
        out += ",\"value\":";
        append_i64(out, s.gauge);
        break;
      case Kind::Histogram:
        out += ",\"count\":";
        append_u64(out, s.hist_count);
        out += ",\"sum\":";
        json::append_number(out, s.hist_sum);
        out += ",\"p50\":";
        json::append_number(out, s.p50);
        out += ",\"p90\":";
        json::append_number(out, s.p90);
        out += ",\"p99\":";
        json::append_number(out, s.p99);
        out += ",\"buckets\":[";
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          if (i != 0) out.push_back(',');
          out.push_back('[');
          if (std::isinf(s.buckets[i].first)) {
            out += "\"inf\"";  // JSON has no Infinity literal
          } else {
            json::append_number(out, s.buckets[i].first);
          }
          out.push_back(',');
          append_u64(out, s.buckets[i].second);
          out.push_back(']');
        }
        out.push_back(']');
        break;
    }
    if (ts_ms != 0) {
      out += ",\"ts_ms\":";
      append_u64(out, ts_ms);
    }
    out += "}\n";
  }
  return out;
}

Registry& registry() {
  // Leaked on purpose: metrics outlive every static destructor that might
  // still want to report (the logger does the same with its sink list).
  static Registry* global = new Registry();
  return *global;
}

std::uint64_t wall_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Flusher

Flusher::Flusher(Registry& reg, std::FILE* out, double period_ms)
    : reg_(reg), out_(out), period_ms_(period_ms > 0.0 ? period_ms : 1000.0) {
  thread_ = std::thread([this] { run(); });
}

Flusher::~Flusher() { stop(); }

void Flusher::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::duration<double, std::milli>(period_ms_),
                 [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    flush_once();
    lock.lock();
  }
}

void Flusher::flush_once() {
  const std::string snap = reg_.to_ndjson(wall_ms());
  if (!snap.empty()) {
    std::fwrite(snap.data(), 1, snap.size(), out_);
    std::fflush(out_);
  }
}

void Flusher::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopping_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  flush_once();  // final snapshot: short-lived runs always leave one record
}

}  // namespace sekitei::metrics
