// Strong integer identifiers.
//
// Every entity in the system (node, link, interface, component, variable,
// proposition, action, ...) is referred to by a dense 32-bit index.  Using a
// distinct C++ type per entity kind makes it impossible to pass a NodeId
// where a LinkId is expected (C++ Core Guidelines: prefer compile-time
// checking to run-time checking).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace sekitei {

/// A strongly typed dense index.  `Tag` is an empty struct that only serves
/// to distinguish id spaces at compile time.
template <class Tag>
struct Id {
  static constexpr std::uint32_t kInvalid = std::numeric_limits<std::uint32_t>::max();

  std::uint32_t value = kInvalid;

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  [[nodiscard]] constexpr std::uint32_t index() const { return value; }

  friend constexpr bool operator==(Id a, Id b) { return a.value == b.value; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value != b.value; }
  friend constexpr bool operator<(Id a, Id b) { return a.value < b.value; }
  friend constexpr bool operator>(Id a, Id b) { return a.value > b.value; }
  friend constexpr bool operator<=(Id a, Id b) { return a.value <= b.value; }
  friend constexpr bool operator>=(Id a, Id b) { return a.value >= b.value; }
};

struct NodeTag {};
struct LinkTag {};
struct InterfaceTag {};
struct ComponentTag {};
struct PropertyTag {};   // a named property/resource (e.g. "ibw", "cpu", "lbw")
struct VarTag {};        // a located real-valued variable
struct PropTag {};       // a logical proposition
struct ActionTag {};     // a ground, leveled planning action
struct NameTag {};       // interned string

using NodeId = Id<NodeTag>;
using LinkId = Id<LinkTag>;
using InterfaceId = Id<InterfaceTag>;
using ComponentId = Id<ComponentTag>;
using PropertyId = Id<PropertyTag>;
using VarId = Id<VarTag>;
using PropId = Id<PropTag>;
using ActionId = Id<ActionTag>;
using NameId = Id<NameTag>;

}  // namespace sekitei

namespace std {
template <class Tag>
struct hash<sekitei::Id<Tag>> {
  size_t operator()(sekitei::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
}  // namespace std
