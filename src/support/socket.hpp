// Thin RAII wrappers over POSIX TCP sockets — just enough for the planning
// daemon (src/server) and its loopback clients: bind/listen on an ephemeral
// port, accept, connect, poll-guarded reads and short-write-safe sends.
//
// Deliberately blocking-I/O + poll(2): the daemon runs one session thread
// per connection (see server/daemon.hpp for why), so every call here
// operates on a single fd and a timeout.  Nothing in this header knows
// about frames or JSON — that is service/wire.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace sekitei::sock {

/// Owning socket fd.  Move-only; close() is idempotent and run by the
/// destructor.  shutdown_both() unblocks a thread parked in poll/recv on
/// the same fd from another thread without racing the close (the fd number
/// stays reserved until close()).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  void close();
  /// shutdown(SHUT_RDWR): wakes blocked peers/poll without invalidating fd.
  void shutdown_both();
  /// shutdown(SHUT_WR): half-close, the read side keeps draining responses.
  void shutdown_write();

 private:
  int fd_ = -1;
};

/// Result of a poll-guarded read.
enum class RecvStatus : unsigned char {
  Data,     ///< >= 1 byte appended to the buffer
  Timeout,  ///< nothing arrived within the timeout
  Eof,      ///< orderly shutdown by the peer
  Error,    ///< socket error (connection reset, bad fd)
};

/// Binds + listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral port).
/// On success returns the listening socket and stores the actual port in
/// `bound_port`.  Raises sekitei::Error on failure.
[[nodiscard]] Socket listen_tcp(std::uint16_t port, std::uint16_t& bound_port,
                                int backlog = 64);

/// Accepts one connection, waiting at most `timeout_ms` (< 0 = forever).
/// Returns an invalid Socket on timeout or on a closed/failed listener.
[[nodiscard]] Socket accept_tcp(const Socket& listener, double timeout_ms);

/// Connects to 127.0.0.1:`port` (the daemon is loopback-only by design; see
/// README "Network daemon").  Raises sekitei::Error on failure.
[[nodiscard]] Socket connect_tcp(std::uint16_t port);

/// Waits up to `timeout_ms` for readability, then appends whatever recv(2)
/// returns (at most `max_bytes`) to `buf`.
[[nodiscard]] RecvStatus recv_some(const Socket& s, std::string& buf,
                                   double timeout_ms, std::size_t max_bytes = 65536);

/// Sends the whole buffer, looping over short writes.  MSG_NOSIGNAL: a peer
/// that vanished yields `false`, never SIGPIPE.
[[nodiscard]] bool send_all(const Socket& s, const std::string& data);

}  // namespace sekitei::sock
