// Leveled, structured logging with pluggable sinks.
//
// Design goals, in priority order:
//   1. Zero cost when quiet.  `SEKITEI_LOG(...)` compiles to a single atomic
//      load + branch when no sink is interested, and to *nothing at all*
//      when the translation unit is built with -DSEKITEI_LOG_DISABLED.
//   2. Structured.  A record is (level, component, message, fields); fields
//      are typed key/value pairs, so sinks can render text for humans or
//      NDJSON for machines without re-parsing printf strings.
//   3. No planning decision ever depends on logging (determinism): the
//      logger only observes.
//
// Usage:
//   SEKITEI_LOG_INFO("core.planner", "phase complete",
//                    sekitei::log::kv("props", plrg.prop_nodes()),
//                    sekitei::log::kv("ms", watch.elapsed_ms()));
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>

namespace sekitei::log {

enum class Level : unsigned char { Trace = 0, Debug, Info, Warn, Error, Off };

[[nodiscard]] const char* level_name(Level level);

/// One typed key/value pair.  Values are kept unformatted; the sink decides
/// how to render them.  String values are *views*: sinks format records
/// synchronously inside emit(), so the referenced storage only has to live
/// for the duration of the SEKITEI_LOG statement.
struct Field {
  enum class Kind : unsigned char { F64, I64, U64, Bool, Str };

  std::string_view key;
  Kind kind = Kind::I64;
  double f64 = 0.0;
  std::int64_t i64 = 0;
  std::uint64_t u64 = 0;
  bool boolean = false;
  std::string_view str;
};

[[nodiscard]] inline Field kv(std::string_view key, double v) {
  Field f;
  f.key = key;
  f.kind = Field::Kind::F64;
  f.f64 = v;
  return f;
}
[[nodiscard]] inline Field kv(std::string_view key, std::int64_t v) {
  Field f;
  f.key = key;
  f.kind = Field::Kind::I64;
  f.i64 = v;
  return f;
}
[[nodiscard]] inline Field kv(std::string_view key, std::uint64_t v) {
  Field f;
  f.key = key;
  f.kind = Field::Kind::U64;
  f.u64 = v;
  return f;
}
[[nodiscard]] inline Field kv(std::string_view key, int v) {
  return kv(key, static_cast<std::int64_t>(v));
}
[[nodiscard]] inline Field kv(std::string_view key, unsigned v) {
  return kv(key, static_cast<std::uint64_t>(v));
}
[[nodiscard]] inline Field kv(std::string_view key, bool v) {
  Field f;
  f.key = key;
  f.kind = Field::Kind::Bool;
  f.boolean = v;
  return f;
}
[[nodiscard]] inline Field kv(std::string_view key, std::string_view v) {
  Field f;
  f.key = key;
  f.kind = Field::Kind::Str;
  f.str = v;
  return f;
}
[[nodiscard]] inline Field kv(std::string_view key, const char* v) {
  return kv(key, std::string_view(v));
}

/// A fully assembled record handed to every registered sink.
struct Record {
  Level level = Level::Info;
  std::string_view component;  // dotted module path, e.g. "core.rg"
  std::string_view message;
  const Field* fields = nullptr;
  std::size_t field_count = 0;
};

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(const Record& record) = 0;
};

/// Human-readable single-line text sink:
///   `INFO  [core.planner] phase complete props=120 ms=3.141`
/// Does not own the FILE*; pass stderr (default) or any open stream.
class StreamSink : public Sink {
 public:
  explicit StreamSink(std::FILE* out = stderr) : out_(out) {}
  void write(const Record& record) override;

 private:
  std::FILE* out_;
};

/// Newline-delimited JSON sink: one object per record with "level",
/// "component", "message" and one member per field.
class JsonLinesSink : public Sink {
 public:
  explicit JsonLinesSink(std::FILE* out) : out_(out) {}
  void write(const Record& record) override;

  /// Renders one record to a JSON line (no trailing newline); exposed so
  /// callers can route records into their own transport.
  [[nodiscard]] static std::string render(const Record& record);

 private:
  std::FILE* out_;
};

/// Global verbosity threshold (default Info).  Records below it are dropped
/// before any formatting happens.
void set_level(Level level);
[[nodiscard]] Level level();

/// Registers a sink.  Sinks are shared_ptrs so tests and tools can install
/// short-lived capture sinks safely.  Without any sink the logger is
/// completely inert regardless of the level.
void add_sink(std::shared_ptr<Sink> sink);
void clear_sinks();

/// The fast gate used by the macros: true iff at least one sink is
/// registered AND `level` passes the threshold.  One relaxed atomic load.
[[nodiscard]] bool enabled(Level level);

/// Slow path: assembles a Record and hands it to every sink.
void emit(Level level, std::string_view component, std::string_view message,
          std::initializer_list<Field> fields = {});

/// Parses "trace" / "debug" / ... (case-sensitive); returns Off for unknown
/// names so a bad CLI flag silences rather than spams.
[[nodiscard]] Level parse_level(std::string_view name);

}  // namespace sekitei::log

// The macro layer.  SEKITEI_LOG_DISABLED removes every call site at compile
// time — the arguments are not even evaluated — which is what the
// determinism guard in tests/stats_test.cpp relies on.
#ifdef SEKITEI_LOG_DISABLED
#define SEKITEI_LOG(lvl, component, msg, ...) \
  do {                                        \
  } while (false)
#else
#define SEKITEI_LOG(lvl, component, msg, ...)                   \
  do {                                                          \
    if (::sekitei::log::enabled(lvl)) {                         \
      ::sekitei::log::emit(lvl, component, msg, {__VA_ARGS__}); \
    }                                                           \
  } while (false)
#endif

#define SEKITEI_LOG_TRACE(component, msg, ...) \
  SEKITEI_LOG(::sekitei::log::Level::Trace, component, msg, ##__VA_ARGS__)
#define SEKITEI_LOG_DEBUG(component, msg, ...) \
  SEKITEI_LOG(::sekitei::log::Level::Debug, component, msg, ##__VA_ARGS__)
#define SEKITEI_LOG_INFO(component, msg, ...) \
  SEKITEI_LOG(::sekitei::log::Level::Info, component, msg, ##__VA_ARGS__)
#define SEKITEI_LOG_WARN(component, msg, ...) \
  SEKITEI_LOG(::sekitei::log::Level::Warn, component, msg, ##__VA_ARGS__)
#define SEKITEI_LOG_ERROR(component, msg, ...) \
  SEKITEI_LOG(::sekitei::log::Level::Error, component, msg, ##__VA_ARGS__)
