#include "support/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"

namespace sekitei::sock {

namespace {

/// poll(2) for `events` with a millisecond timeout; retries EINTR with the
/// original timeout (close enough: callers treat timeouts as ticks).
int poll_one(int fd, short events, double timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  const int ms = timeout_ms < 0.0 ? -1 : static_cast<int>(timeout_ms);
  for (;;) {
    const int rc = ::poll(&p, 1, ms);
    if (rc >= 0) return rc;
    if (errno != EINTR) return -1;
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Socket listen_tcp(std::uint16_t port, std::uint16_t& bound_port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) raise(std::string("socket(): ") + std::strerror(errno));
  const int one = 1;
  (void)::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(s.fd(), reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
    raise(std::string("bind(127.0.0.1:") + std::to_string(port) + "): " +
          std::strerror(errno));
  }
  if (::listen(s.fd(), backlog) != 0) {
    raise(std::string("listen(): ") + std::strerror(errno));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(s.fd(), reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    raise(std::string("getsockname(): ") + std::strerror(errno));
  }
  bound_port = ntohs(addr.sin_port);
  return s;
}

Socket accept_tcp(const Socket& listener, double timeout_ms) {
  if (!listener.valid()) return Socket();
  const int rc = poll_one(listener.fd(), POLLIN, timeout_ms);
  if (rc <= 0) return Socket();
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) return Socket();
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

Socket connect_tcp(std::uint16_t port) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) raise(std::string("socket(): ") + std::strerror(errno));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(s.fd(), reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
    raise(std::string("connect(127.0.0.1:") + std::to_string(port) + "): " +
          std::strerror(errno));
  }
  const int one = 1;
  (void)::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return s;
}

RecvStatus recv_some(const Socket& s, std::string& buf, double timeout_ms,
                     std::size_t max_bytes) {
  if (!s.valid()) return RecvStatus::Error;
  const int rc = poll_one(s.fd(), POLLIN, timeout_ms);
  if (rc < 0) return RecvStatus::Error;
  if (rc == 0) return RecvStatus::Timeout;
  char chunk[4096];
  const std::size_t want = max_bytes < sizeof chunk ? max_bytes : sizeof chunk;
  for (;;) {
    const ssize_t n = ::recv(s.fd(), chunk, want, 0);
    if (n > 0) {
      buf.append(chunk, static_cast<std::size_t>(n));
      return RecvStatus::Data;
    }
    if (n == 0) return RecvStatus::Eof;
    if (errno == EINTR) continue;
    return RecvStatus::Error;
  }
}

bool send_all(const Socket& s, const std::string& data) {
  if (!s.valid()) return false;
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(s.fd(), data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Blocking socket with a full send buffer: wait for writability.
      if (poll_one(s.fd(), POLLOUT, 1000.0) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace sekitei::sock
