// Real intervals with optionally *open* upper bounds, and monotone-safe
// interval arithmetic.
//
// Resource levels in the paper are half-open intervals [m, M).  The upper
// bound being unattainable is semantically load-bearing: a level [0, 90) can
// never satisfy a ">= 90" demand, while the greedy-within-level reservation
// of a [90, 100) level approaches (and reports as) 100.  We therefore track
// a `hi_open` flag through the arithmetic.  Lower bounds stay closed: level
// intervals are closed below, and the few operations that would create an
// open lower bound (subtracting an open-topped interval) conservatively
// treat it as closed — that only ever makes optimistic maps marginally more
// optimistic at a measure-zero boundary, and the concrete executor re-checks
// every candidate plan anyway.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace sekitei {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Interval {
  double lo = 0.0;
  double hi = kInf;
  bool hi_open = false;  // true => [lo, hi), false => [lo, hi]

  constexpr Interval() = default;
  constexpr Interval(double l, double h) : lo(l), hi(h) {}
  constexpr Interval(double l, double h, bool open) : lo(l), hi(h), hi_open(open) {}

  /// Degenerate single-point interval.
  [[nodiscard]] static constexpr Interval point(double v) { return {v, v}; }
  /// The whole non-negative ray [0, inf) used for unleveled resources.
  [[nodiscard]] static constexpr Interval nonneg() { return {0.0, kInf}; }
  /// The empty interval.
  [[nodiscard]] static constexpr Interval empty() { return {1.0, 0.0}; }

  [[nodiscard]] constexpr bool is_empty() const {
    return lo > hi || (lo == hi && hi_open);
  }
  [[nodiscard]] constexpr bool is_point() const { return lo == hi && !hi_open; }
  [[nodiscard]] constexpr bool contains(double v) const {
    return lo <= v && (hi_open ? v < hi : v <= hi);
  }
  [[nodiscard]] constexpr bool contains(Interval o) const {
    if (o.is_empty()) return true;
    if (o.lo < lo) return false;
    if (o.hi < hi) return true;
    if (o.hi > hi) return false;
    return !hi_open || o.hi_open;
  }

  /// The largest concretely usable value: the bound itself when attained,
  /// else a hair below it (relative margin, robust under propagation through
  /// scalings and comparisons downstream).
  [[nodiscard]] double sup_value() const {
    if (!hi_open || hi == kInf) return hi;
    const double margin = std::max(1e-9, std::abs(hi) * 1e-9);
    return hi - margin;
  }

  friend constexpr bool operator==(Interval a, Interval b) {
    return (a.is_empty() && b.is_empty()) ||
           (a.lo == b.lo && a.hi == b.hi && a.hi_open == b.hi_open);
  }

  [[nodiscard]] std::string str() const;
};

namespace detail {
/// Upper bound of the meet: the smaller bound wins; on ties openness is
/// contagious (the bound is attainable only if attainable in both).
constexpr void min_upper(Interval a, Interval b, double& hi, bool& open) {
  if (a.hi < b.hi) {
    hi = a.hi;
    open = a.hi_open;
  } else if (b.hi < a.hi) {
    hi = b.hi;
    open = b.hi_open;
  } else {
    hi = a.hi;
    open = a.hi_open || b.hi_open;
  }
}

/// Upper bound of the join: the larger bound wins; on ties the bound is
/// attainable if attainable in either.
constexpr void max_upper(Interval a, Interval b, double& hi, bool& open) {
  if (a.hi > b.hi) {
    hi = a.hi;
    open = a.hi_open;
  } else if (b.hi > a.hi) {
    hi = b.hi;
    open = b.hi_open;
  } else {
    hi = a.hi;
    open = a.hi_open && b.hi_open;
  }
}

// 0 * inf arises when an unleveled [0, inf) variable is scaled; the planner's
// intent is always "range of products over finite samples", so map nan to 0.
constexpr double mul_safe(double a, double b) {
  double r = a * b;
  return (r != r) ? 0.0 : r;
}
}  // namespace detail

[[nodiscard]] constexpr Interval intersect(Interval a, Interval b) {
  Interval r;
  r.lo = std::max(a.lo, b.lo);
  detail::min_upper(a, b, r.hi, r.hi_open);
  return r;
}

/// Smallest interval containing both (used when merging execution results
/// with prior optimistic values, Fig. 8).
[[nodiscard]] constexpr Interval hull(Interval a, Interval b) {
  if (a.is_empty()) return b;
  if (b.is_empty()) return a;
  Interval r;
  r.lo = std::min(a.lo, b.lo);
  detail::max_upper(a, b, r.hi, r.hi_open);
  return r;
}

// ---- arithmetic (exact range semantics for monotone use) -------------------

[[nodiscard]] constexpr Interval operator+(Interval a, Interval b) {
  return {a.lo + b.lo, a.hi + b.hi, a.hi_open || b.hi_open};
}

[[nodiscard]] constexpr Interval operator-(Interval a, Interval b) {
  // The open upper bound of `b` would make the *lower* bound of the result
  // open; lower bounds are conservatively closed (see file comment).
  return {a.lo - b.hi, a.hi - b.lo, a.hi_open};
}

[[nodiscard]] constexpr Interval operator-(Interval a) {
  return {-a.hi, -a.lo, false};
}

[[nodiscard]] constexpr Interval operator*(Interval a, Interval b) {
  const double p1 = detail::mul_safe(a.lo, b.lo);
  const double p2 = detail::mul_safe(a.lo, b.hi);
  const double p3 = detail::mul_safe(a.hi, b.lo);
  const double p4 = detail::mul_safe(a.hi, b.hi);
  Interval r{std::min(std::min(p1, p2), std::min(p3, p4)),
             std::max(std::max(p1, p2), std::max(p3, p4))};
  // Openness propagates exactly in the common non-negative case: the upper
  // product bound comes from hi*hi, unattained iff either factor bound is.
  if (a.lo >= 0 && b.lo >= 0) {
    r.hi_open = (a.hi_open || b.hi_open) && r.hi > 0;
  }
  return r;
}

/// Interval division.  If the divisor straddles zero the result is the whole
/// real line (conservative); division by the exact point 0 yields empty.
[[nodiscard]] constexpr Interval operator/(Interval a, Interval b) {
  if (b.lo <= 0.0 && b.hi >= 0.0) {
    if (b.lo == 0.0 && b.hi == 0.0) return Interval::empty();
    return {-kInf, kInf};
  }
  const double p1 = a.lo / b.lo, p2 = a.lo / b.hi, p3 = a.hi / b.lo, p4 = a.hi / b.hi;
  Interval r{std::min(std::min(p1, p2), std::min(p3, p4)),
             std::max(std::max(p1, p2), std::max(p3, p4))};
  if (a.lo >= 0 && b.lo > 0) {
    // Upper bound is a.hi / b.lo; it is unattained iff a.hi is.
    r.hi_open = a.hi_open && r.hi > 0;
  }
  return r;
}

[[nodiscard]] constexpr Interval imin(Interval a, Interval b) {
  Interval r;
  r.lo = std::min(a.lo, b.lo);
  detail::min_upper(a, b, r.hi, r.hi_open);
  return r;
}

[[nodiscard]] constexpr Interval imax(Interval a, Interval b) {
  Interval r;
  r.lo = std::max(a.lo, b.lo);
  detail::max_upper(a, b, r.hi, r.hi_open);
  return r;
}

}  // namespace sekitei
