// Cooperative cancellation and deadlines for long-running planner phases.
//
// A StopSource owns shared stop state; StopTokens are cheap copies handed to
// the planner phases, which poll stop_requested() at their existing progress
// cadence — the hot loops pay no per-iteration cost beyond that poll.  Two
// stop causes are distinguished: an explicit request_stop() (the request was
// cancelled) and an armed deadline (steady clock, evaluated lazily at poll
// time).  An explicit cancellation wins when both apply.
//
// This is deliberately not std::stop_token: deadlines must live in the same
// shared state so that one poll answers both questions, and the deadline must
// be armable *after* tokens were handed out (the serving engine arms it at
// submit time on a source the client already holds).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace sekitei {

enum class StopReason : unsigned char { None, Cancelled, DeadlineExceeded };

[[nodiscard]] inline const char* stop_reason_name(StopReason r) {
  switch (r) {
    case StopReason::None: return "none";
    case StopReason::Cancelled: return "cancelled";
    case StopReason::DeadlineExceeded: return "deadline_exceeded";
  }
  return "none";
}

namespace detail {

struct StopState {
  using Clock = std::chrono::steady_clock;

  std::atomic<bool> cancelled{false};
  /// Deadline as nanoseconds of the steady clock's epoch offset; 0 = unarmed.
  /// Atomic so the deadline can be armed after tokens were distributed.
  std::atomic<std::int64_t> deadline_ns{0};

  [[nodiscard]] bool deadline_passed() const {
    const std::int64_t d = deadline_ns.load(std::memory_order_relaxed);
    if (d == 0) return false;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
               .count() >= d;
  }
};

}  // namespace detail

/// Read side: polled by the planner phases.  Default-constructed tokens are
/// detached and never request a stop (stop_possible() == false), so plumbing
/// a token through an API costs nothing for callers that don't use it.
class StopToken {
 public:
  StopToken() = default;

  [[nodiscard]] bool stop_possible() const { return state_ != nullptr; }

  [[nodiscard]] bool stop_requested() const {
    if (!state_) return false;
    return state_->cancelled.load(std::memory_order_acquire) || state_->deadline_passed();
  }

  /// Why the stop fired; None while stop_requested() is false.
  [[nodiscard]] StopReason reason() const {
    if (!state_) return StopReason::None;
    if (state_->cancelled.load(std::memory_order_acquire)) return StopReason::Cancelled;
    if (state_->deadline_passed()) return StopReason::DeadlineExceeded;
    return StopReason::None;
  }

 private:
  friend class StopSource;
  explicit StopToken(std::shared_ptr<const detail::StopState> s) : state_(std::move(s)) {}

  std::shared_ptr<const detail::StopState> state_;
};

/// Write side: cancel and/or arm a deadline.  Copies share one state.
class StopSource {
 public:
  StopSource() : state_(std::make_shared<detail::StopState>()) {}

  /// A source whose deadline is `ms` from now (ms <= 0 expires immediately).
  [[nodiscard]] static StopSource with_deadline_ms(double ms) {
    StopSource s;
    s.arm_deadline_ms(ms);
    return s;
  }

  /// Arms (or re-arms) the deadline `ms` from now.  Thread-safe.
  void arm_deadline_ms(double ms) {
    const auto delta = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double, std::milli>(ms));
    arm_deadline_at_ns(now_epoch_ns() + delta.count());
  }

  /// Steady-clock "now" in the epoch-offset nanoseconds the deadline uses —
  /// the currency for splitting one budget across ladder attempts.
  [[nodiscard]] static std::int64_t now_epoch_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               detail::StopState::Clock::now().time_since_epoch())
        .count();
  }

  /// The armed absolute deadline (0 = unarmed).  With now_epoch_ns() this
  /// lets a holder compute the remaining budget.
  [[nodiscard]] std::int64_t deadline_epoch_ns() const {
    return state_->deadline_ns.load(std::memory_order_relaxed);
  }

  /// Re-arms the deadline at an absolute steady-clock instant.  Re-arming a
  /// *passed* deadline into the future un-fires it — the degradation ladder
  /// uses this to hand the unused remainder of a request's budget to the
  /// next fallback attempt.  Thread-safe.
  void arm_deadline_at_ns(std::int64_t ns) {
    if (ns == 0) ns = 1;  // 0 is reserved for "unarmed"
    state_->deadline_ns.store(ns, std::memory_order_relaxed);
  }

  void request_stop() { state_->cancelled.store(true, std::memory_order_release); }

  [[nodiscard]] StopToken token() const { return StopToken(state_); }

 private:
  std::shared_ptr<detail::StopState> state_;
};

}  // namespace sekitei
