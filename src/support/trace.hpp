// Scoped tracing: RAII spans and named counters, exported in the Chrome
// trace-event JSON format (load the file in chrome://tracing or
// https://ui.perfetto.dev).
//
// The collector is *opt-in*: nothing is recorded — and a Span costs exactly
// one relaxed atomic load — until someone calls trace::install().  Building
// with -DSEKITEI_LOG_DISABLED (or -DSEKITEI_TRACE_DISABLED alone) removes
// the instrumentation from the translation unit entirely.
//
//   trace::Collector collector;
//   trace::install(&collector);
//   ... run the planner ...
//   trace::uninstall();
//   collector.write_json("out.json");
//
// Timestamps come from a steady clock relative to the collector's creation;
// they are reporting-only and never feed back into planning (determinism).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#if defined(SEKITEI_LOG_DISABLED) && !defined(SEKITEI_TRACE_DISABLED)
#define SEKITEI_TRACE_DISABLED
#endif

namespace sekitei::trace {

/// One recorded trace event.  `ph` follows the Chrome trace-event phase
/// codes: 'X' = complete span (ts + dur), 'C' = counter sample, 'i' =
/// instant event.
struct Event {
  char ph = 'X';
  std::string name;
  const char* cat = "planner";
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;  // 'X' only
  double value = 0.0;        // 'C' only
  std::uint32_t tid = 0;     // recording thread (dense id, see current_thread_id)
};

/// Dense id of the calling thread (1, 2, 3, ... in first-use order).  Stable
/// for the thread's lifetime; used as the `tid` of recorded events so that
/// multi-threaded runs (the planning service) interleave correctly in the
/// Chrome trace viewer's per-thread tracks.
[[nodiscard]] std::uint32_t current_thread_id();

class Collector {
 public:
  Collector();
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Microseconds since this collector was created (steady clock).
  [[nodiscard]] std::uint64_t now_us() const;

  void complete(std::string_view name, const char* cat, std::uint64_t ts_us,
                std::uint64_t dur_us);
  void counter(std::string_view name, double value);
  void instant(std::string_view name, const char* cat);

  [[nodiscard]] std::size_t event_count() const;
  /// Snapshot of the recorded events (copy; the collector keeps recording).
  [[nodiscard]] std::vector<Event> events() const;
  /// All samples recorded for counter `name`, in recording order.
  [[nodiscard]] std::vector<double> counter_values(std::string_view name) const;
  /// The most recent sample of counter `name` (0.0 when never sampled).
  [[nodiscard]] double counter_last(std::string_view name) const;

  /// The full trace as `{"traceEvents":[...]}` — the Chrome trace-event
  /// "JSON object format", loadable by chrome://tracing and Perfetto.
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  struct Impl;
  Impl* impl_;
};

/// Installs `c` as the process-global collector (nullptr uninstalls).  The
/// caller keeps ownership and must keep `c` alive until uninstall().
void install(Collector* c);
void uninstall();
/// The installed collector, or nullptr.  One relaxed atomic load — this is
/// the only cost instrumentation pays when tracing is idle.
[[nodiscard]] Collector* collector();

#ifndef SEKITEI_TRACE_DISABLED

/// RAII span: records a complete ('X') event covering its lifetime.  Costs
/// one atomic load when no collector is installed.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "planner")
      : c_(collector()), name_(name), cat_(cat) {
    if (c_) start_ = c_->now_us();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  /// Ends the span early (idempotent).
  void finish() {
    if (c_) {
      c_->complete(name_, cat_, start_, c_->now_us() - start_);
      c_ = nullptr;
    }
  }

 private:
  Collector* c_;
  const char* name_;
  const char* cat_;
  std::uint64_t start_ = 0;
};

/// Records one sample of the named counter (no-op without a collector).
inline void counter(const char* name, double value) {
  if (Collector* c = collector()) c->counter(name, value);
}

/// Records an instant marker (no-op without a collector).
inline void instant(const char* name, const char* cat = "planner") {
  if (Collector* c = collector()) c->instant(name, cat);
}

#else  // SEKITEI_TRACE_DISABLED: the instrumentation vanishes entirely.

class Span {
 public:
  explicit Span(const char*, const char* = "planner") {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void finish() {}
};

inline void counter(const char*, double) {}
inline void instant(const char*, const char* = "planner") {}

#endif  // SEKITEI_TRACE_DISABLED

}  // namespace sekitei::trace
