// Fixed-size worker pool over one FIFO queue — the execution substrate of the
// planning service (src/service).  submit() never blocks; jobs are picked up
// in submission order by whichever worker frees first.  The destructor drains
// the queue before joining so accepted work is never silently dropped
// (futures attached to queued jobs always complete); shutdown(false) discards
// jobs that have not started yet.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sekitei {

class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is clamped to 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `job`.  After shutdown the job runs inline on the calling
  /// thread instead, so completion guarantees survive late submissions.
  void submit(std::function<void()> job);

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Jobs accepted but not yet started.
  [[nodiscard]] std::size_t queued() const;

  /// Stops the pool and joins all workers.  `drain` = finish the queue first;
  /// otherwise pending (unstarted) jobs are discarded.  Idempotent.
  void shutdown(bool drain = true);

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::mutex join_mu_;  // serializes the join phase of concurrent shutdowns
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  bool drain_ = true;
  std::vector<std::thread> workers_;
};

}  // namespace sekitei
