// Error handling primitives.
//
// The library throws `sekitei::Error` (a std::runtime_error) for user-input
// problems (bad specs, malformed networks) and uses SEKITEI_ASSERT for
// internal invariants.  Planner "failure to find a plan" is NOT an error; it
// is reported through result types.
#pragma once

#include <stdexcept>
#include <string>

namespace sekitei {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void raise(const std::string& what) { throw Error(what); }

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace sekitei

/// Internal invariant check; active in all build types (the planner is cheap
/// relative to the cost of silently wrong plans).
#define SEKITEI_ASSERT(expr)                                         \
  do {                                                               \
    if (!(expr)) ::sekitei::detail::assert_fail(#expr, __FILE__, __LINE__); \
  } while (false)
