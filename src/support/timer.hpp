// Wall-clock stopwatch used only for *reporting* planning times; no planning
// decision ever depends on the clock (determinism).
#pragma once

#include <chrono>

namespace sekitei {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sekitei
