#include "support/error.hpp"

#include <sstream>

namespace sekitei::detail {

void assert_fail(const char* expr, const char* file, int line) {
  std::ostringstream os;
  os << "internal invariant violated: " << expr << " at " << file << ":" << line;
  throw Error(os.str());
}

}  // namespace sekitei::detail
