// Sorted-unique vector utilities.
//
// Proposition sets in the planner (regression states, precondition sets) are
// small sorted vectors of 32-bit ids: faster to hash, compare, and regress
// over than tree- or hash-based sets, and cache friendly (HPC idiom: flat
// contiguous data).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace sekitei {

/// Inserts `v` keeping `xs` sorted and unique.  Returns true if inserted.
template <class T>
bool sorted_insert(std::vector<T>& xs, const T& v) {
  auto it = std::lower_bound(xs.begin(), xs.end(), v);
  if (it != xs.end() && *it == v) return false;
  xs.insert(it, v);
  return true;
}

template <class T>
[[nodiscard]] bool sorted_contains(const std::vector<T>& xs, const T& v) {
  return std::binary_search(xs.begin(), xs.end(), v);
}

/// True when every element of `sub` occurs in `sup` (both sorted unique).
template <class T>
[[nodiscard]] bool sorted_subset(const std::vector<T>& sub, const std::vector<T>& sup) {
  return std::includes(sup.begin(), sup.end(), sub.begin(), sub.end());
}

/// sorted-unique set difference: xs \ ys.
template <class T>
[[nodiscard]] std::vector<T> sorted_difference(const std::vector<T>& xs,
                                               const std::vector<T>& ys) {
  std::vector<T> out;
  out.reserve(xs.size());
  std::set_difference(xs.begin(), xs.end(), ys.begin(), ys.end(), std::back_inserter(out));
  return out;
}

/// sorted-unique set union.
template <class T>
[[nodiscard]] std::vector<T> sorted_union(const std::vector<T>& xs, const std::vector<T>& ys) {
  std::vector<T> out;
  out.reserve(xs.size() + ys.size());
  std::set_union(xs.begin(), xs.end(), ys.begin(), ys.end(), std::back_inserter(out));
  return out;
}

/// True when the two sorted ranges share at least one element.
template <class T>
[[nodiscard]] bool sorted_intersects(const std::vector<T>& xs, const std::vector<T>& ys) {
  auto i = xs.begin();
  auto j = ys.begin();
  while (i != xs.end() && j != ys.end()) {
    if (*i == *j) return true;
    if (*i < *j) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

/// FNV-1a style hash of a sorted id vector (for set memo tables).
template <class T>
[[nodiscard]] std::size_t hash_sorted(const std::vector<T>& xs) {
  std::size_t h = 1469598103934665603ULL;
  for (const auto& x : xs) {
    h ^= static_cast<std::size_t>(x.value);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace sekitei
