#include "support/log.hpp"

#include <mutex>
#include <vector>

#include "support/json.hpp"

namespace sekitei::log {

namespace {

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<Sink>> sinks;
  std::atomic<unsigned char> threshold{static_cast<unsigned char>(Level::Info)};
  // `gate` is what enabled() reads: the threshold when sinks exist, Off
  // otherwise.  Kept denormalized so the hot path is one load.
  std::atomic<unsigned char> gate{static_cast<unsigned char>(Level::Off)};

  void refresh_gate() {
    gate.store(sinks.empty() ? static_cast<unsigned char>(Level::Off) : threshold.load(),
               std::memory_order_relaxed);
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

void append_field_value(std::string& out, const Field& f, bool quote_strings) {
  switch (f.kind) {
    case Field::Kind::F64: json::append_number(out, f.f64); break;
    case Field::Kind::I64: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(f.i64));
      out += buf;
      break;
    }
    case Field::Kind::U64: json::append_number(out, f.u64); break;
    case Field::Kind::Bool: out += f.boolean ? "true" : "false"; break;
    case Field::Kind::Str:
      if (quote_strings) {
        json::append_escaped(out, f.str);
      } else {
        out += f.str;
      }
      break;
  }
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::Trace: return "trace";
    case Level::Debug: return "debug";
    case Level::Info: return "info";
    case Level::Warn: return "warn";
    case Level::Error: return "error";
    case Level::Off: return "off";
  }
  return "?";
}

Level parse_level(std::string_view name) {
  for (Level l : {Level::Trace, Level::Debug, Level::Info, Level::Warn, Level::Error}) {
    if (name == level_name(l)) return l;
  }
  return Level::Off;
}

void StreamSink::write(const Record& record) {
  std::string line;
  line.reserve(64);
  char head[8];
  std::snprintf(head, sizeof head, "%-5s", level_name(record.level));
  line += head;
  line += " [";
  line += record.component;
  line += "] ";
  line += record.message;
  for (std::size_t i = 0; i < record.field_count; ++i) {
    const Field& f = record.fields[i];
    line.push_back(' ');
    line += f.key;
    line.push_back('=');
    append_field_value(line, f, /*quote_strings=*/false);
  }
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), out_);
}

std::string JsonLinesSink::render(const Record& record) {
  std::string line = "{\"level\":";
  json::append_escaped(line, level_name(record.level));
  line += ",\"component\":";
  json::append_escaped(line, record.component);
  line += ",\"message\":";
  json::append_escaped(line, record.message);
  for (std::size_t i = 0; i < record.field_count; ++i) {
    const Field& f = record.fields[i];
    line.push_back(',');
    json::append_escaped(line, f.key);
    line.push_back(':');
    append_field_value(line, f, /*quote_strings=*/true);
  }
  line.push_back('}');
  return line;
}

void JsonLinesSink::write(const Record& record) {
  const std::string line = render(record);
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fputc('\n', out_);
}

void set_level(Level level) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.threshold.store(static_cast<unsigned char>(level), std::memory_order_relaxed);
  r.refresh_gate();
}

Level level() {
  return static_cast<Level>(registry().threshold.load(std::memory_order_relaxed));
}

void add_sink(std::shared_ptr<Sink> sink) {
  if (!sink) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sinks.push_back(std::move(sink));
  r.refresh_gate();
}

void clear_sinks() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sinks.clear();
  r.refresh_gate();
}

bool enabled(Level level) {
  return static_cast<unsigned char>(level) >=
         registry().gate.load(std::memory_order_relaxed);
}

void emit(Level level, std::string_view component, std::string_view message,
          std::initializer_list<Field> fields) {
  Record record;
  record.level = level;
  record.component = component;
  record.message = message;
  record.fields = fields.begin();
  record.field_count = fields.size();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const std::shared_ptr<Sink>& sink : r.sinks) sink->write(record);
}

}  // namespace sekitei::log
