#include "support/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "support/json.hpp"

namespace sekitei::trace {

namespace {

std::atomic<Collector*> g_collector{nullptr};

}  // namespace

std::uint32_t current_thread_id() {
  static std::atomic<std::uint32_t> g_next{0};
  thread_local std::uint32_t id = 0;
  if (id == 0) id = g_next.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

struct Collector::Impl {
  using Clock = std::chrono::steady_clock;

  mutable std::mutex mu;
  Clock::time_point epoch = Clock::now();
  std::vector<Event> events;
};

Collector::Collector() : impl_(new Impl) {}

Collector::~Collector() {
  // Defensive: never leave a dangling global pointer behind.
  Collector* self = this;
  g_collector.compare_exchange_strong(self, nullptr);
  delete impl_;
}

std::uint64_t Collector::now_us() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        Impl::Clock::now() - impl_->epoch)
                                        .count());
}

void Collector::complete(std::string_view name, const char* cat, std::uint64_t ts_us,
                         std::uint64_t dur_us) {
  Event e;
  e.ph = 'X';
  e.name.assign(name);
  e.cat = cat;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = current_thread_id();
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->events.push_back(std::move(e));
}

void Collector::counter(std::string_view name, double value) {
  Event e;
  e.ph = 'C';
  e.name.assign(name);
  e.cat = "counter";
  e.ts_us = now_us();
  e.value = value;
  e.tid = current_thread_id();
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->events.push_back(std::move(e));
}

void Collector::instant(std::string_view name, const char* cat) {
  Event e;
  e.ph = 'i';
  e.name.assign(name);
  e.cat = cat;
  e.ts_us = now_us();
  e.tid = current_thread_id();
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->events.push_back(std::move(e));
}

std::size_t Collector::event_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->events.size();
}

std::vector<Event> Collector::events() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->events;
}

std::vector<double> Collector::counter_values(std::string_view name) const {
  std::vector<double> out;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const Event& e : impl_->events) {
    if (e.ph == 'C' && e.name == name) out.push_back(e.value);
  }
  return out;
}

double Collector::counter_last(std::string_view name) const {
  double last = 0.0;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const Event& e : impl_->events) {
    if (e.ph == 'C' && e.name == name) last = e.value;
  }
  return last;
}

std::string Collector::to_json() const {
  // The Chrome trace-event "JSON object format": a top-level object whose
  // traceEvents member holds the event array.  pid/tid are required by the
  // loaders; pid is 1 (single process) and tid is the dense id of the thread
  // that recorded the event, so the planning service's concurrent spans land
  // on separate per-thread tracks in the viewer.
  std::string out = "{\"traceEvents\":[";
  std::lock_guard<std::mutex> lock(impl_->mu);
  bool first = true;
  for (const Event& e : impl_->events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    json::append_escaped(out, e.name);
    out += ",\"cat\":";
    json::append_escaped(out, e.cat);
    out += ",\"ph\":\"";
    out.push_back(e.ph);
    out += "\",\"ts\":";
    json::append_number(out, e.ts_us);
    if (e.ph == 'X') {
      out += ",\"dur\":";
      json::append_number(out, e.dur_us);
    }
    out += ",\"pid\":1,\"tid\":";
    json::append_number(out, static_cast<std::uint64_t>(e.tid == 0 ? 1 : e.tid));
    if (e.ph == 'C') {
      out += ",\"args\":{\"value\":";
      json::append_number(out, e.value);
      out += "}";
    } else if (e.ph == 'i') {
      out += ",\"s\":\"t\"";
    }
    out.push_back('}');
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Collector::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const std::string body = to_json();
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

void install(Collector* c) { g_collector.store(c, std::memory_order_release); }

void uninstall() { g_collector.store(nullptr, std::memory_order_release); }

Collector* collector() { return g_collector.load(std::memory_order_relaxed); }

}  // namespace sekitei::trace
