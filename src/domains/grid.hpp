// Grid workflow domain — the paper's motivating task-graph scenario
// (Section 1): "a grid computing application described in terms of a task
// graph exchanging information using logical files [3] ... a solution to the
// CPP would result in a mapping of tasks to concrete components on specific
// computational hosts, the mapping of logical files to physical replicas,
// and orchestration of any required data transfers", and later: "the
// modified Sekitei planner is capable of deploying the task graph scenario
// ... in a way that minimizes resource consumption while meeting specified
// deadline goals."
//
// Pipeline:  Raw --Preprocess--> Mid --Analyze--> Out --> Portal
//
// * Logical file interfaces carry `size` (data volume) and `lat`
//   (accumulated completion time: transfer + compute).  `lat` is upgradable
//   (a result that arrives early also satisfies any looser deadline level);
//   `size` is degradable (a task may read a subset of the data).
// * Transfers accumulate latency through a *profiled congestion table* — a
//   non-reversible tabled function, the paper's canonical reason why
//   reversible-formula approaches do not apply.
// * The Raw file exists as two replicas (near-but-slow / far-but-fast);
//   the deadline decides which replica and how much data the plan can use.
#pragma once

#include <memory>
#include <string>

#include "model/problem.hpp"
#include "net/network.hpp"
#include "spec/spec.hpp"

namespace sekitei::domains::grid {

struct Params {
  double deadline = 60.0;     // Portal: Out.lat <= deadline
  double quality = 8.0;       // Portal: Out.size >= quality
  double raw_size_max = 100;  // replicas offer up to this much data
  double cluster_cpu = 40.0;
  /// Level cutpoints for Raw.size — the "how much data" operating regimes.
  std::vector<double> size_cuts{40, 80};
};

[[nodiscard]] spec::DomainSpec make_domain(const Params& params = {});
[[nodiscard]] std::string domain_text(const Params& params = {});

struct Instance {
  spec::DomainSpec domain;
  net::Network net;
  model::CppProblem problem;
  NodeId storage_far;   // replica behind two fast links
  NodeId storage_near;  // replica behind one slow link
  NodeId cluster1;
  NodeId cluster2;
  NodeId portal;
  Params params;

  Instance() = default;
  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;
};

/// The two-cluster grid with replicated input data (see file comment).
[[nodiscard]] std::unique_ptr<Instance> two_cluster(const Params& params = {});

/// The level scenario for this domain: Raw.size leveled by params.size_cuts,
/// Out.lat leveled at the deadline.
[[nodiscard]] spec::LevelScenario scenario(const Params& params = {});

}  // namespace sekitei::domains::grid
