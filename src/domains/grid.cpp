#include "domains/grid.hpp"

#include <sstream>

#include "support/error.hpp"

namespace sekitei::domains::grid {

std::string domain_text(const Params& p) {
  std::ostringstream os;
  os << "param deadline = " << p.deadline << ";\n"
     << "param quality = " << p.quality << ";\n";
  os << R"(
# Logical files.  `lat` is the accumulated completion time of the data at a
# site; transfers add link delay plus a profiled congestion term (a tabled,
# non-reversible function of the transfer size).  `size` shrinks down the
# pipeline as tasks reduce the data.
interface Raw {
  property size degradable;
  property lat upgradable;
  cross {
    Raw.lat' := Raw.lat + link.delay + table(Raw.size; 0:0, 40:2, 80:6, 120:14);
    link.lbw -= Raw.size / 10;
  }
  cost 1 + Raw.size / 20;
}
interface Mid {
  property size degradable;
  property lat upgradable;
  cross {
    Mid.lat' := Mid.lat + link.delay + table(Mid.size; 0:0, 20:1, 40:3, 60:7);
    link.lbw -= Mid.size / 10;
  }
  cost 1 + Mid.size / 20;
}
interface Out {
  property size degradable;
  property lat upgradable;
  cross {
    Out.lat' := Out.lat + link.delay + table(Out.size; 0:0, 10:1, 20:2);
    link.lbw -= Out.size / 10;
  }
  cost 1 + Out.size / 20;
}

# The task graph: Preprocess then Analyze, each consuming CPU proportional
# to its input volume and adding compute time to the completion latency.
component Preprocess {
  requires Raw;
  implements Mid;
  conditions { node.cpu >= Raw.size / 5; }
  effects {
    Mid.size := Raw.size / 2;
    Mid.lat := Raw.lat + Raw.size / 10;
    node.cpu -= Raw.size / 5;
  }
  cost 1 + Raw.size / 10;
}
component Analyze {
  requires Mid;
  implements Out;
  conditions { node.cpu >= Mid.size / 2; }
  effects {
    Out.size := Mid.size / 4;
    Out.lat := Mid.lat + Mid.size / 5;
    node.cpu -= Mid.size / 2;
  }
  cost 1 + Mid.size / 5;
}

# The goal sink: results of at least `quality` volume, before the deadline.
component Portal {
  requires Out;
  conditions {
    Out.lat <= deadline;
    Out.size >= quality;
  }
  cost 1;
}
)";
  return os.str();
}

spec::DomainSpec make_domain(const Params& p) { return spec::parse_domain(domain_text(p)); }

std::unique_ptr<Instance> two_cluster(const Params& p) {
  auto inst = std::make_unique<Instance>();
  inst->params = p;
  inst->domain = make_domain(p);

  auto cpu = [](double c) { return std::map<std::string, double>{{"cpu", c}}; };
  auto link = [](double bw, double delay) {
    return std::map<std::string, double>{{"lbw", bw}, {"delay", delay}};
  };

  // Far replica sits behind two fast links; near replica behind one slow
  // link.  Storage and portal nodes have little CPU, so compute lands on the
  // clusters.
  inst->storage_far = inst->net.add_node("storage_far", cpu(5));
  inst->storage_near = inst->net.add_node("storage_near", cpu(5));
  inst->cluster1 = inst->net.add_node("cluster1", cpu(p.cluster_cpu));
  inst->cluster2 = inst->net.add_node("cluster2", cpu(p.cluster_cpu));
  inst->portal = inst->net.add_node("portal", cpu(5));

  inst->net.add_link(inst->storage_far, inst->cluster1, net::LinkClass::Wan, link(200, 3));
  inst->net.add_link(inst->cluster1, inst->cluster2, net::LinkClass::Lan, link(200, 3));
  inst->net.add_link(inst->storage_near, inst->cluster2, net::LinkClass::Wan, link(200, 25));
  inst->net.add_link(inst->cluster2, inst->portal, net::LinkClass::Lan, link(200, 2));

  inst->problem.network = &inst->net;
  inst->problem.domain = &inst->domain;
  // Two physical replicas of the same logical Raw file — replica selection
  // is the planner's choice.
  inst->problem.initial_streams.push_back(
      {"Raw", "size", inst->storage_far, Interval{0.0, p.raw_size_max}});
  inst->problem.initial_streams.push_back(
      {"Raw", "size", inst->storage_near, Interval{0.0, p.raw_size_max}});
  inst->problem.placement_rule["Portal"] = {inst->portal};
  inst->problem.goal_component = "Portal";
  inst->problem.goal_node = inst->portal;
  return inst;
}

spec::LevelScenario scenario(const Params& p) {
  spec::LevelScenario sc;
  sc.name = "grid";
  sc.iface_levels[{"Raw", "size"}] = spec::LevelSet(p.size_cuts);
  // Mid/Out sizes are proportional (1/2 and 1/8 of Raw).
  std::vector<double> mid_cuts = p.size_cuts, out_cuts = p.size_cuts;
  for (double& c : mid_cuts) c *= 0.5;
  for (double& c : out_cuts) c *= 0.125;
  sc.iface_levels[{"Mid", "size"}] = spec::LevelSet(mid_cuts);
  sc.iface_levels[{"Out", "size"}] = spec::LevelSet(out_cuts);
  return sc;
}

}  // namespace sekitei::domains::grid
