#include "domains/media.hpp"

#include <sstream>

#include "net/generator.hpp"
#include "net/paths.hpp"
#include "support/error.hpp"

namespace sekitei::domains::media {

std::string domain_text(const Params& p) {
  std::ostringstream os;
  os << "param demand = " << p.client_demand << ";\n"
     << "param tdemand = " << 0.7 * p.client_demand << ";\n"
     << "param serverCap = " << p.server_cap << ";\n"
     << "param wLink = " << p.link_cost_weight << ";\n"
     << "param wComp = " << p.comp_cost_weight << ";\n";
  // Identical cross behaviour for each stream type (Fig. 6): the delivered
  // bandwidth is capped by the link, and the link pool shrinks by what is
  // carried.
  for (const char* iface : {"M", "T", "I", "Z"}) {
    os << "interface " << iface << " {\n"
       << "  property ibw degradable;\n"
       << "  cross {\n"
       << "    " << iface << ".ibw' := min(" << iface << ".ibw, link.lbw);\n"
       << "    link.lbw -= min(" << iface << ".ibw, link.lbw);\n"
       << "  }\n"
       << "  cost 1 + wLink * " << iface << ".ibw / 10;\n"
       << "}\n";
  }
  os << R"(
component Server {
  implements M;
  effects { M.ibw := serverCap; }
  cost 1;
}
component Client {
  requires M;
  conditions { M.ibw >= demand; }
  cost 1;
}
component TClient {
  # Text-only consumer used by the Fig. 5 cost-tradeoff scenario; inert in
  # the Table 2 instances (its placement rule is empty there).
  requires T;
  conditions { T.ibw >= tdemand; }
  cost 1;
}
component Splitter {
  requires M;
  implements T, I;
  conditions { node.cpu >= M.ibw / 5; }
  effects {
    T.ibw := M.ibw * 0.7;
    I.ibw := M.ibw * 0.3;
    node.cpu -= M.ibw / 5;
  }
  cost 1 + wComp * M.ibw / 10;
}
component Zip {
  requires T;
  implements Z;
  conditions { node.cpu >= T.ibw / 10; }
  effects {
    Z.ibw := T.ibw / 2;
    node.cpu -= T.ibw / 10;
  }
  cost 1 + wComp * T.ibw / 10;
}
component Unzip {
  requires Z;
  implements T;
  conditions { node.cpu >= Z.ibw / 5; }
  effects {
    T.ibw := Z.ibw * 2;
    node.cpu -= Z.ibw / 5;
  }
  cost 1 + wComp * Z.ibw / 10;
}
component Merger {
  requires T, I;
  implements M;
  conditions {
    node.cpu >= (T.ibw + I.ibw) / 5;
    T.ibw * 3 == I.ibw * 7;
  }
  effects {
    M.ibw := T.ibw + I.ibw;
    node.cpu -= (T.ibw + I.ibw) / 5;
  }
  cost 1 + wComp * (T.ibw + I.ibw) / 10;
}
)";
  return os.str();
}

spec::DomainSpec make_domain(const Params& p) { return spec::parse_domain(domain_text(p)); }

namespace {

void wire_problem(Instance& inst) {
  inst.problem.network = &inst.net;
  inst.problem.domain = &inst.domain;
  inst.problem.initial_streams.push_back(
      {"M", "ibw", inst.server, Interval{0.0, inst.params.server_cap}});
  inst.problem.preplaced.emplace_back("Server", inst.server);
  inst.problem.placement_rule["Server"] = {};             // never re-placed
  inst.problem.placement_rule["Client"] = {inst.client};  // location is given
  inst.problem.placement_rule["TClient"] = {};            // Fig. 5 only
  inst.problem.goal_component = "Client";
  inst.problem.goal_node = inst.client;
}

std::map<std::string, double> cpu_res(double cpu) { return {{"cpu", cpu}}; }
std::map<std::string, double> link_res(double bw, double delay) {
  return {{"lbw", bw}, {"delay", delay}};
}

}  // namespace

std::unique_ptr<Instance> tiny(const Params& p) {
  auto inst = std::make_unique<Instance>();
  inst->params = p;
  inst->domain = make_domain(p);
  inst->server = inst->net.add_node("n0", cpu_res(p.node_cpu));
  inst->client = inst->net.add_node("n1", cpu_res(p.node_cpu));
  inst->net.add_link(inst->server, inst->client, net::LinkClass::Wan, link_res(p.wan_bw, 10));
  wire_problem(*inst);
  return inst;
}

std::unique_ptr<Instance> chain_instance(std::uint32_t before, std::uint32_t after,
                                         const Params& p) {
  auto inst = std::make_unique<Instance>();
  inst->params = p;
  inst->domain = make_domain(p);
  std::vector<net::ChainLinkSpec> links;
  for (std::uint32_t i = 0; i < before; ++i) {
    links.push_back({net::LinkClass::Lan, p.lan_bw, 1});
  }
  links.push_back({net::LinkClass::Wan, p.wan_bw, 10});
  for (std::uint32_t i = 0; i < after; ++i) {
    links.push_back({net::LinkClass::Lan, p.lan_bw, 1});
  }
  inst->net = net::chain(links, p.node_cpu);
  inst->server = NodeId(0);
  inst->client = NodeId(static_cast<std::uint32_t>(inst->net.node_count() - 1));
  wire_problem(*inst);
  return inst;
}

std::unique_ptr<Instance> small(const Params& p) {
  // server -LAN- a -LAN- b -WAN- c -LAN- client, plus one off-path node
  // hanging off `a` (6 nodes total, as in the paper's Small network).
  auto inst = chain_instance(2, 1, p);
  const NodeId off = inst->net.add_node("n_off", cpu_res(p.node_cpu));
  inst->net.add_link(NodeId(1), off, net::LinkClass::Lan, link_res(p.lan_bw, 1));
  return inst;
}

std::unique_ptr<Instance> large(const Params& p, std::uint64_t seed) {
  auto inst = std::make_unique<Instance>();
  inst->params = p;
  inst->domain = make_domain(p);

  net::TransitStubParams ts;
  ts.transit_nodes = 3;
  ts.stubs_per_transit = 3;
  ts.nodes_per_stub = 10;
  ts.lan_bandwidth = p.lan_bw;
  ts.wan_bandwidth = p.wan_bw;
  ts.node_cpu = p.node_cpu;
  ts.extra_stub_edge_prob = 0.15;
  inst->net = net::transit_stub(ts, seed);
  SEKITEI_ASSERT(inst->net.node_count() == 93);

  // Stub gateways are the "_0" hosts.  Join the server stub (s0) and client
  // stub (s4) with a direct stub-stub WAN edge — a standard GT-ITM feature —
  // so the cheapest route is LAN-LAN-WAN-LAN, while longer all-WAN transit
  // routes still exist as alternatives.
  const NodeId gw_s = inst->net.find_node("s0_0");
  const NodeId gw_c = inst->net.find_node("s4_0");
  SEKITEI_ASSERT(gw_s.valid() && gw_c.valid());
  inst->net.add_link(gw_s, gw_c, net::LinkClass::Wan, link_res(p.wan_bw, 10));

  // Server: a host two LAN hops from its gateway; client: one hop from its
  // gateway (same path shape as Small).
  const auto dist_s = net::hop_distances(inst->net, gw_s);
  const auto dist_c = net::hop_distances(inst->net, gw_c);
  inst->server = NodeId{};
  inst->client = NodeId{};
  for (std::uint32_t k = 1; k < 10; ++k) {
    const NodeId cand_s = inst->net.find_node("s0_" + std::to_string(k));
    if (!inst->server.valid() && dist_s[cand_s.index()] == 2) inst->server = cand_s;
    const NodeId cand_c = inst->net.find_node("s4_" + std::to_string(k));
    if (!inst->client.valid() && dist_c[cand_c.index()] == 1) inst->client = cand_c;
  }
  if (!inst->server.valid() || !inst->client.valid()) {
    raise("media::large: seed does not yield hosts at the required LAN depths; pick another");
  }
  wire_problem(*inst);
  return inst;
}

std::unique_ptr<Instance> diamond(const Params& p) {
  // server -LAN- a -WAN- b -LAN- client, plus a longer (two-WAN-hop) backup
  // route a - c2 - b2 - client.  Used by the repair/adaptation experiments:
  // the original plan uses the short route; losing its WAN link leaves the
  // backup with full capacity.  WAN links are sized just below the raw T
  // stream's demand-level floor (0.7 * 90 = 63 with the defaults) so the
  // Zip/Unzip transformation is mandatory, while the compressed pair
  // Z + I = 65 still fits one WAN link.
  auto inst = std::make_unique<Instance>();
  inst->params = p;
  inst->domain = make_domain(p);
  const NodeId s = inst->net.add_node("s", cpu_res(p.node_cpu));
  const NodeId a = inst->net.add_node("a", cpu_res(p.node_cpu));
  const NodeId b = inst->net.add_node("b", cpu_res(p.node_cpu));
  const NodeId c2 = inst->net.add_node("c2", cpu_res(p.node_cpu));
  const NodeId b2 = inst->net.add_node("b2", cpu_res(p.node_cpu));
  const NodeId cl = inst->net.add_node("cl", cpu_res(p.node_cpu));
  const double wan = 0.943 * p.wan_bw;  // 66 with the default 70
  inst->net.add_link(s, a, net::LinkClass::Lan, link_res(p.lan_bw, 1));
  inst->net.add_link(a, b, net::LinkClass::Wan, link_res(wan, 10));
  inst->net.add_link(b, cl, net::LinkClass::Lan, link_res(p.lan_bw, 1));
  inst->net.add_link(a, c2, net::LinkClass::Wan, link_res(wan, 10));
  inst->net.add_link(c2, b2, net::LinkClass::Wan, link_res(wan, 10));
  inst->net.add_link(b2, cl, net::LinkClass::Lan, link_res(p.lan_bw, 1));
  inst->server = s;
  inst->client = cl;
  wire_problem(*inst);
  return inst;
}

std::unique_ptr<Instance> multicast(const Params& p) {
  // One server, two clients behind a shared WAN hop:
  //   s -LAN- a -WAN- b -LAN- c1
  //                    \-LAN- c2
  // Both clients must receive >= demand units; the planner shares the
  // transformation pipeline and the WAN crossing between them.
  auto inst = std::make_unique<Instance>();
  inst->params = p;
  inst->domain = make_domain(p);
  const NodeId s = inst->net.add_node("s", cpu_res(p.node_cpu));
  const NodeId a = inst->net.add_node("a", cpu_res(p.node_cpu));
  const NodeId b = inst->net.add_node("b", cpu_res(p.node_cpu));
  const NodeId c1 = inst->net.add_node("c1", cpu_res(p.node_cpu));
  const NodeId c2 = inst->net.add_node("c2", cpu_res(p.node_cpu));
  inst->net.add_link(s, a, net::LinkClass::Lan, link_res(p.lan_bw, 1));
  inst->net.add_link(a, b, net::LinkClass::Wan, link_res(p.wan_bw, 10));
  inst->net.add_link(b, c1, net::LinkClass::Lan, link_res(p.lan_bw, 1));
  inst->net.add_link(b, c2, net::LinkClass::Lan, link_res(p.lan_bw, 1));
  inst->server = s;
  inst->client = c1;
  wire_problem(*inst);
  inst->problem.placement_rule["Client"] = {c1, c2};
  inst->problem.extra_goals.emplace_back("Client", c2);
  return inst;
}

std::unique_ptr<Instance> fig5(const Params& p) {
  // The Fig. 5 tradeoff: a T stream can reach the client either over three
  // generous links, or over two thin links that only fit the compressed Z
  // stream (forcing Zip/Unzip).  Which plan is cheaper depends on the
  // relative cost of link bandwidth vs node processing (wLink / wComp).
  auto inst = std::make_unique<Instance>();
  inst->params = p;
  inst->domain = make_domain(p);

  const double t_demand = 0.7 * p.client_demand;  // 63 with the defaults
  const NodeId s = inst->net.add_node("s", cpu_res(p.node_cpu));
  const NodeId a = inst->net.add_node("a", cpu_res(p.node_cpu));
  const NodeId b = inst->net.add_node("b", cpu_res(p.node_cpu));
  const NodeId c = inst->net.add_node("c", cpu_res(p.node_cpu));
  const NodeId d = inst->net.add_node("d", cpu_res(p.node_cpu));
  // Long route: three links that fit the raw T stream.
  inst->net.add_link(s, a, net::LinkClass::Wan, link_res(p.lan_bw, 5));
  inst->net.add_link(a, b, net::LinkClass::Wan, link_res(p.lan_bw, 5));
  inst->net.add_link(b, c, net::LinkClass::Wan, link_res(p.lan_bw, 5));
  // Short route: two links that only fit the compressed Z stream.
  const double thin = 0.55 * t_demand;  // > Z = T/2, < T
  inst->net.add_link(s, d, net::LinkClass::Wan, link_res(thin, 5));
  inst->net.add_link(d, c, net::LinkClass::Wan, link_res(thin, 5));

  inst->server = s;
  inst->client = c;
  inst->problem.network = &inst->net;
  inst->problem.domain = &inst->domain;
  inst->problem.initial_streams.push_back({"T", "ibw", s, Interval{0.0, 2 * t_demand}});
  inst->problem.placement_rule["Server"] = {};
  inst->problem.placement_rule["Client"] = {};
  inst->problem.placement_rule["TClient"] = {c};
  inst->problem.goal_component = "TClient";
  inst->problem.goal_node = c;
  return inst;
}

spec::LevelScenario scenario(char name) {
  spec::LevelScenario sc;
  switch (name) {
    case 'A': sc = scenario_with_cuts({}); break;
    case 'B': sc = scenario_with_cuts({100}); break;
    case 'C': sc = scenario_with_cuts({90, 100}); break;
    case 'D': sc = scenario_with_cuts({30, 70, 90, 100}); break;
    case 'E': sc = scenario_with_cuts({30, 70, 90, 100}, {31, 62}); break;
    default: raise(std::string("unknown media scenario '") + name + "'");
  }
  sc.name = std::string(1, name);
  return sc;
}

spec::LevelScenario scenario_with_cuts(std::vector<double> m_cuts,
                                       std::vector<double> link_cuts) {
  spec::LevelScenario sc;
  sc.name = "custom";
  if (!m_cuts.empty()) {
    const spec::LevelSet m(std::move(m_cuts));
    sc.iface_levels[{"M", "ibw"}] = m;
    sc.iface_levels[{"T", "ibw"}] = m.scaled(0.7);
    sc.iface_levels[{"I", "ibw"}] = m.scaled(0.3);
    sc.iface_levels[{"Z", "ibw"}] = m.scaled(0.35);
  }
  if (!link_cuts.empty()) {
    sc.link_levels["lbw"] = spec::LevelSet(std::move(link_cuts));
  }
  return sc;
}

}  // namespace sekitei::domains::media
