#include "domains/services.hpp"

#include <sstream>

#include "support/error.hpp"

namespace sekitei::domains::services {

std::string domain_text(const Params& p) {
  std::ostringstream os;
  os << "param demand = " << p.response_demand << ";\n"
     << "param overhead = " << p.cipher_overhead << ";\n";
  os << R"(
# Raw data served by the database — as sensitive as the responses derived
# from it, so it may only traverse trusted links.
interface Data {
  property ibw degradable;
  property sens init 1;
  cross {
    link.sec >= Data.sens;
    Data.ibw' := min(Data.ibw, link.lbw);
    link.lbw -= min(Data.ibw, link.lbw);
  }
  cost 1 + Data.ibw / 10;
}

# The application response: sensitive, so its link crossings demand a
# trusted link (the qualitative constraint of Section 2.1).
interface R {
  property ibw degradable;
  property sens init 1;
  cross {
    link.sec >= R.sens;
    R.ibw' := min(R.ibw, link.lbw);
    link.lbw -= min(R.ibw, link.lbw);
  }
  cost 1 + R.ibw / 10;
}

# The encrypted response: crossable anywhere, at a bandwidth overhead.
interface E {
  property ibw degradable;
  cross {
    E.ibw' := min(E.ibw, link.lbw);
    link.lbw -= min(E.ibw, link.lbw);
  }
  cost 1 + E.ibw / 10;
}

component Database {
  implements Data;
  cost 1;
}
component AppServer {
  requires Data;
  implements R;
  conditions { node.cpu >= Data.ibw / 4; }
  effects {
    R.ibw := Data.ibw / 2;
    R.sens := 1;
    node.cpu -= Data.ibw / 4;
  }
  cost 1 + Data.ibw / 10;
}
component Encryptor {
  requires R;
  implements E;
  conditions { node.cpu >= R.ibw / 8; }
  effects {
    E.ibw := R.ibw * overhead;
    node.cpu -= R.ibw / 8;
  }
  cost 1 + R.ibw / 10;
}
component Decryptor {
  requires E;
  implements R;
  conditions { node.cpu >= E.ibw / 8; }
  effects {
    R.ibw := E.ibw / overhead;
    R.sens := 1;
    node.cpu -= E.ibw / 8;
  }
  cost 1 + E.ibw / 10;
}
component Frontend {
  requires R;
  conditions { R.ibw >= demand; }
  cost 1;
}
)";
  return os.str();
}

spec::DomainSpec make_domain(const Params& p) { return spec::parse_domain(domain_text(p)); }

std::unique_ptr<Instance> dmz(const Params& p) {
  auto inst = std::make_unique<Instance>();
  inst->params = p;
  inst->domain = make_domain(p);

  auto cpu = [&](double c) { return std::map<std::string, double>{{"cpu", c}}; };
  auto link = [](double bw, double sec) {
    return std::map<std::string, double>{{"lbw", bw}, {"sec", sec}, {"delay", 1}};
  };

  inst->database = inst->net.add_node("db", cpu(p.node_cpu));
  inst->gateway1 = inst->net.add_node("gw1", cpu(p.node_cpu));
  inst->gateway2 = inst->net.add_node("gw2", cpu(p.node_cpu));
  inst->frontend = inst->net.add_node("fe", cpu(p.node_cpu));
  inst->net.add_link(inst->database, inst->gateway1, net::LinkClass::Lan, link(200, 1));
  inst->net.add_link(inst->gateway1, inst->gateway2, net::LinkClass::Wan,
                     link(150, p.trusted_wan ? 1 : 0));
  inst->net.add_link(inst->gateway2, inst->frontend, net::LinkClass::Lan, link(200, 1));

  inst->problem.network = &inst->net;
  inst->problem.domain = &inst->domain;
  inst->problem.initial_streams.push_back(
      {"Data", "ibw", inst->database, Interval{0.0, p.data_cap}});
  inst->problem.preplaced.emplace_back("Database", inst->database);
  inst->problem.placement_rule["Database"] = {};
  inst->problem.placement_rule["Frontend"] = {inst->frontend};
  inst->problem.goal_component = "Frontend";
  inst->problem.goal_node = inst->frontend;
  return inst;
}

spec::LevelScenario scenario(const Params& p) {
  spec::LevelScenario sc;
  sc.name = "services";
  const double d = p.response_demand;
  sc.iface_levels[{"R", "ibw"}] = spec::LevelSet({d, 1.5 * d});
  sc.iface_levels[{"Data", "ibw"}] = spec::LevelSet({2 * d, 3 * d});
  sc.iface_levels[{"E", "ibw"}] =
      spec::LevelSet({d * p.cipher_overhead, 1.5 * d * p.cipher_overhead});
  return sc;
}

}  // namespace sekitei::domains::services
