// Secure service composition — the paper's web-services motivation
// (Section 1: "In the web services area, an application is represented by a
// BPEL or OWL-S composite service") with a *qualitative* constraint driving
// auxiliary-component injection: sensitive responses may only traverse
// trusted links ("other properties such as link security", Section 2.1).
//
// Pipeline:  Data --AppServer--> R (response) --> Frontend
//
// The response stream R carries `sens` (sensitivity); its cross action
// requires `link.sec >= R.sens`.  Crossing an untrusted link therefore
// demands the Encryptor/Decryptor pair, which maps R to the encrypted E
// stream (crossable anywhere, at a bandwidth overhead) — auxiliary
// components injected for a purely logical reason, complementing the
// bandwidth-driven injection of the media domain.
#pragma once

#include <memory>
#include <string>

#include "model/problem.hpp"
#include "net/network.hpp"
#include "spec/spec.hpp"

namespace sekitei::domains::services {

struct Params {
  double response_demand = 40.0;  // Frontend: R.ibw >= this
  double data_cap = 120.0;        // database offers up to this much
  double cipher_overhead = 1.25;  // E.ibw = R.ibw * overhead
  double node_cpu = 30.0;
  bool trusted_wan = false;       // when true the WAN link has sec 1
};

[[nodiscard]] spec::DomainSpec make_domain(const Params& params = {});
[[nodiscard]] std::string domain_text(const Params& params = {});

struct Instance {
  spec::DomainSpec domain;
  net::Network net;
  model::CppProblem problem;
  NodeId database;
  NodeId gateway1;
  NodeId gateway2;
  NodeId frontend;
  Params params;

  Instance() = default;
  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;
};

/// db -trusted LAN- gw1 -(un)trusted WAN- gw2 -trusted LAN- frontend.
[[nodiscard]] std::unique_ptr<Instance> dmz(const Params& params = {});

/// Level scenario bracketing the response demand.
[[nodiscard]] spec::LevelScenario scenario(const Params& params = {});

}  // namespace sekitei::domains::services
