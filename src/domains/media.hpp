// The paper's evaluation workload: media stream delivery (Fig. 1).
//
// A Server produces a combined media stream M (images + text) of up to
// `serverCap` units; the Client must receive at least `clientDemand` units.
// Auxiliary components can transform the stream en route:
//
//     Splitter: M -> T + I      (T = 0.7 M, I = 0.3 M; Merger's profiled
//                                ratio condition T*3 == I*7 pins the split)
//     Zip:      T -> Z          (Z = T/2)
//     Unzip:    Z -> T
//     Merger:   T + I -> M
//
// CPU profile (reconstructed from the paper's own numbers, see DESIGN.md §3):
//     Splitter M/5,  Zip T/10,  Unzip Z/5,  Merger (T+I)/5
// so a 30-CPU node can process up to ~111 units of M on either side of the
// transformation — the capacity the paper states.
//
// Costs are "proportional to the processed/transferred bandwidth"
// (Section 4.1): every action costs 1 + bandwidth/10.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "model/problem.hpp"
#include "net/network.hpp"
#include "spec/spec.hpp"

namespace sekitei::domains::media {

struct Params {
  double client_demand = 90.0;  // paper: "at least 90 units"
  double server_cap = 200.0;    // paper: "up to 200 units"
  double lan_bw = 150.0;
  double wan_bw = 70.0;
  double node_cpu = 30.0;
  /// Cost weights (both 1.0 reproduces the paper's cost; Fig. 5 sweeps the
  /// relative cost of link bandwidth vs node processing).
  double link_cost_weight = 1.0;
  double comp_cost_weight = 1.0;
};

/// The component library of Fig. 1 / Fig. 2.
[[nodiscard]] spec::DomainSpec make_domain(const Params& params = {});

/// The raw DSL text of the domain (documentation / parser round-trips).
[[nodiscard]] std::string domain_text(const Params& params = {});

/// A self-contained problem instance (owns its network and domain; the
/// CppProblem points into them, hence no copies or moves).
struct Instance {
  spec::DomainSpec domain;
  net::Network net;
  model::CppProblem problem;
  NodeId server;
  NodeId client;
  Params params;

  Instance() = default;
  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;
};

/// *Tiny* (Fig. 3): two nodes joined by a 70-unit WAN link; 30 CPU each.
[[nodiscard]] std::unique_ptr<Instance> tiny(const Params& params = {});

/// *Small* (Fig. 9): a 6-node network whose server-client path is
/// LAN-LAN-WAN-LAN (plus one off-path node).
[[nodiscard]] std::unique_ptr<Instance> small(const Params& params = {});

/// *Large* (Fig. 10): a 93-node transit-stub network generated in the spirit
/// of GT-ITM; the server and client sit in stub domains joined by a direct
/// stub-stub WAN edge, so the relevant path has the Small network's shape
/// while ~85 nodes are irrelevant but not statically prunable.
[[nodiscard]] std::unique_ptr<Instance> large(const Params& params = {},
                                              std::uint64_t seed = 13);

/// A diamond with two parallel WAN routes (server -LAN- a -WAN- {b|b2} -LAN-
/// client); losing one WAN link leaves a backup — the repair experiments'
/// setting.
[[nodiscard]] std::unique_ptr<Instance> diamond(const Params& params = {});

/// One server, two clients behind a shared WAN hop; both must receive the
/// stream (a multi-goal / multicast deployment).
[[nodiscard]] std::unique_ptr<Instance> multicast(const Params& params = {});

/// The Fig. 5 cost-tradeoff scenario: a T stream deliverable either over
/// three generous links or over two thin links plus Zip/Unzip; the cost
/// weights in `params` decide which plan is optimal.
[[nodiscard]] std::unique_ptr<Instance> fig5(const Params& params = {});

/// A parameterizable chain instance (for scaling sweeps): `lan_hops_before`
/// LAN links, one WAN link, `lan_hops_after` LAN links.
[[nodiscard]] std::unique_ptr<Instance> chain_instance(std::uint32_t lan_hops_before,
                                                       std::uint32_t lan_hops_after,
                                                       const Params& params = {});

/// Table 1's level scenarios 'A'..'E'.  T/I/Z cutpoints are proportional to
/// M's (factors 0.7 / 0.3 / 0.35).
[[nodiscard]] spec::LevelScenario scenario(char name);

/// A scenario with the given M-stream cutpoints (proportional T/I/Z levels),
/// for level-granularity ablations.
[[nodiscard]] spec::LevelScenario scenario_with_cuts(std::vector<double> m_cuts,
                                                     std::vector<double> link_cuts = {});

}  // namespace sekitei::domains::media
