#include "cp/search.hpp"

#include <algorithm>

#include "cp/bound.hpp"
#include "cp/propagate.hpp"
#include "support/log.hpp"
#include "support/sorted_vec.hpp"
#include "support/timer.hpp"

namespace sekitei::cp {

namespace {

/// Regression of a proposition set over one action: drop what the action
/// supports (through the cross-level closure), add its preconditions.
std::vector<PropId> regress(const model::CompiledProblem& cp, const std::vector<PropId>& set,
                            ActionId a) {
  std::vector<PropId> out;
  out.reserve(set.size() + cp.actions[a.index()].pre.size());
  for (PropId p : set) {
    const auto& ach = cp.achievers_of(p);
    if (!std::binary_search(ach.begin(), ach.end(), a)) out.push_back(p);
  }
  for (PropId q : cp.actions[a.index()].pre) sorted_insert(out, q);
  return out;
}

class Search {
 public:
  Search(const model::CompiledProblem& cp, const Options& options, Bound& bound)
      : cp_(cp), opt_(options), bound_(bound), prop_(cp) {}

  Result run();

 private:
  struct Node {
    ActionId action;           // invalid for the root
    std::uint32_t parent = 0;  // pool index
    std::vector<PropId> state;
    double g = 0.0;
  };
  struct Child {
    double f = 0.0;
    ActionId action;
    std::uint32_t node = 0;  // pool index
  };
  struct Frame {
    std::uint32_t pool_base = 0;  // pool size before this frame's children
    std::vector<Child> kids;      // sorted best-bound-first
    std::size_t next = 0;
  };

  [[nodiscard]] bool independent(ActionId a, ActionId b);
  [[nodiscard]] std::vector<ActionId> tail_of(std::uint32_t idx) const;
  void enter(std::uint32_t idx);

  const model::CompiledProblem& cp_;
  const Options& opt_;
  Bound& bound_;
  Propagator prop_;
  Stats st_;

  std::vector<Node> pool_;
  std::vector<Frame> stack_;
  std::vector<std::vector<VarId>> sorted_vars_;

  bool has_best_ = false;
  double best_g_ = 0.0;
  std::vector<ActionId> best_steps_;

  bool abort_ = false;
  double current_f_ = 0.0;  // f of the subtree being entered (frontier part)
  std::uint64_t tick_every_ = 1;

  // Iterative cost bounding: each DFS pass explores only f <= threshold_;
  // min_exceed_ collects the smallest f cut off, becoming the next
  // threshold.  completed_lb_ is the certified bound from exhausted passes.
  double threshold_ = kInf;
  double min_exceed_ = kInf;
  double completed_lb_ = 0.0;
};

bool Search::independent(ActionId a, ActionId b) {
  if (sorted_vars_.empty()) sorted_vars_.resize(cp_.actions.size());
  auto vars_of = [&](ActionId id) -> const std::vector<VarId>& {
    std::vector<VarId>& v = sorted_vars_[id.index()];
    if (v.empty() && !cp_.actions[id.index()].slot_vars.empty()) {
      v = cp_.actions[id.index()].slot_vars;
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    }
    return v;
  };
  if (sorted_intersects(vars_of(a), vars_of(b))) return false;
  for (PropId p : cp_.actions[b.index()].pre) {
    const auto& ach = cp_.achievers_of(p);
    if (std::binary_search(ach.begin(), ach.end(), a)) return false;
  }
  for (PropId p : cp_.actions[a.index()].pre) {
    const auto& ach = cp_.achievers_of(p);
    if (std::binary_search(ach.begin(), ach.end(), b)) return false;
  }
  return true;
}

std::vector<ActionId> Search::tail_of(std::uint32_t idx) const {
  std::vector<ActionId> steps;
  std::uint32_t cur = idx;
  while (pool_[cur].action.valid()) {
    steps.push_back(pool_[cur].action);
    cur = pool_[cur].parent;
  }
  return steps;  // deepest node's action first == execution order
}

void Search::enter(std::uint32_t idx) {
  ++st_.branches;
  if (st_.branches > opt_.max_nodes) {
    st_.hit_node_limit = true;
    abort_ = true;
    return;
  }
  if (st_.branches % tick_every_ == 0) {
    st_.propagations = prop_.calls();
    SEKITEI_LOG_TRACE("cp.search", "progress", log::kv("branches", st_.branches),
                      log::kv("nodes", st_.nodes), log::kv("depth", stack_.size()),
                      log::kv("f", current_f_));
    if (opt_.progress) opt_.progress(st_);
    if (opt_.stop.stop_requested()) {
      st_.stopped = true;
      abort_ = true;
      return;
    }
  }

  // The pool reallocates as children are appended; copy what outlives pushes.
  const std::vector<PropId> state = pool_[idx].state;
  const double g = pool_[idx].g;
  const ActionId via = pool_[idx].action;

  // Complete assignment: every open proposition holds initially and the tail
  // propagates from the initial store.  Bound pruning at the parent already
  // guarantees g < incumbent here, so any accepted assignment improves.
  if (sorted_subset(state, cp_.init_props)) {
    std::vector<ActionId> tail = tail_of(idx);
    if (prop_.propagate(tail, /*from_init=*/true)) {
      bool accepted = true;
      if (opt_.validate) accepted = opt_.validate(tail, g);
      if (accepted) {
        if (!has_best_ || g < best_g_) {
          has_best_ = true;
          best_g_ = g;
          best_steps_ = std::move(tail);
          ++st_.incumbents;
          st_.incumbent_cost = g;
          SEKITEI_LOG_DEBUG("cp.search", "incumbent recorded", log::kv("cost", g),
                            log::kv("steps", best_steps_.size()),
                            log::kv("branches", st_.branches));
        }
      } else {
        ++st_.sim_rejections;
      }
    } else {
      ++st_.pruned_by_propagation;
    }
    // A rejected assignment's regressions may still lead somewhere (e.g.
    // produce more of a stream elsewhere), so fall through and branch.
  }

  // Lex-leader symmetry state: nodes the assignment so far commits to.
  const bool sym = opt_.symmetry_breaking && cp_.symmetric_class_count > 0;
  std::vector<char> used;
  if (sym) {
    used.assign(cp_.net->node_count(), 0);
    for (PropId p : state) used[cp_.props.key(p).node] = 1;
    for (std::uint32_t w = idx; pool_[w].action.valid(); w = pool_[w].parent) {
      const model::GroundAction& act = cp_.actions[pool_[w].action.index()];
      if (act.node.valid()) used[act.node.index()] = 1;
      if (act.node2.valid()) used[act.node2.index()] = 1;
    }
  }
  auto sym_blocked = [&](NodeId n, NodeId other) {
    if (!n.valid() || used[n.index()] != 0) return false;
    for (const std::uint32_t m : cp_.node_class_members[cp_.node_class[n.index()]]) {
      if (m >= n.index()) break;
      if (used[m] == 0 && (!other.valid() || m != other.index())) return true;
    }
    return false;
  };

  // Branching candidates: achievers of any open proposition.
  std::vector<ActionId> cands;
  for (PropId p : state) {
    if (cp_.init_holds(p)) continue;
    for (ActionId a : cp_.achievers_of(p)) sorted_insert(cands, a);
  }

  Frame fr;
  fr.pool_base = static_cast<std::uint32_t>(pool_.size());
  for (ActionId a : cands) {
    // Canonical ordering of adjacent independent actions: explore only the
    // ascending-id order of a commuting pair.
    if (opt_.commutativity_pruning && via.valid() && a > via && independent(a, via)) continue;
    if (sym) {
      const model::GroundAction& act = cp_.actions[a.index()];
      if (sym_blocked(act.node, act.node2) || sym_blocked(act.node2, act.node)) {
        ++st_.pruned_symmetry;
        continue;
      }
    }
    if (opt_.forbid_repeated_actions) {
      bool seen = false;
      for (std::uint32_t w = idx; pool_[w].action.valid(); w = pool_[w].parent) {
        if (pool_[w].action == a) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
    }
    std::vector<PropId> nxt = regress(cp_, state, a);
    if (nxt == state) continue;
    const double h = bound_.estimate(nxt);
    if (h == kInf) continue;
    const double g2 = g + cp_.actions[a.index()].cost_lb;
    const double f = g2 + h;
    if (f > threshold_) {
      min_exceed_ = std::min(min_exceed_, f);
      ++st_.pruned_by_bound;
      continue;
    }
    if (has_best_ && f >= best_g_) {
      ++st_.pruned_by_bound;
      continue;
    }
    const std::uint32_t child = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(Node{a, idx, std::move(nxt), g2});
    if (!prop_.propagate(tail_of(child), /*from_init=*/false)) {
      ++st_.pruned_by_propagation;
      pool_.pop_back();
      continue;
    }
    ++st_.nodes;
    fr.kids.push_back({f, a, child});
  }
  std::sort(fr.kids.begin(), fr.kids.end(), [](const Child& x, const Child& y) {
    if (x.f != y.f) return x.f < y.f;
    return x.action < y.action;
  });
  stack_.push_back(std::move(fr));
  if (stack_.size() > st_.peak_depth) st_.peak_depth = stack_.size();
}

Result Search::run() {
  Result r;
  Stopwatch watch;
  tick_every_ = std::max<std::uint64_t>(1, opt_.progress_every);

  for (PropId gp : cp_.goal_props) {
    if (!bound_.reachable(gp)) {
      st_.logically_unreachable = true;
      st_.proven = true;
      st_.lower_bound = kInf;
      st_.search_ms = watch.elapsed_ms();
      r.stats = st_;
      r.failure = "goal " + cp_.describe(gp) + " is logically unreachable";
      return r;
    }
  }

  // Iterative cost bounding (branch-and-bound with rising f-thresholds,
  // IDA*-flavoured): a depth-first pass bounded by `threshold_` either
  // exhausts the whole f <= threshold_ slice — proving any incumbent it
  // found optimal (cut subtrees have f > threshold_ >= incumbent g, and the
  // bound is admissible: f of a node lower-bounds every goal below it) or,
  // with no incumbent and nothing cut, proving infeasibility — or it raises
  // the threshold to the cheapest cut f and dives again.  This is what
  // keeps plain DFS sound AND complete here: an unbounded first dive can
  // wander a deep junk subtree forever before finding any incumbent to
  // prune with, while each bounded pass keeps tails near the optimum.
  const double root_f = bound_.estimate(cp_.goal_props);
  threshold_ = root_f;
  while (!abort_) {
    min_exceed_ = kInf;
    pool_.clear();
    stack_.clear();
    pool_.push_back(Node{ActionId{}, 0, cp_.goal_props, 0.0});
    ++st_.nodes;
    current_f_ = root_f;
    enter(0);

    while (!abort_ && !stack_.empty()) {
      Frame& fr = stack_.back();
      if (fr.next >= fr.kids.size()) {
        // Subtree exhausted: reclaim its pool slice (strict LIFO discipline
        // keeps memory proportional to the current branch, not the tree).
        pool_.resize(fr.pool_base);
        stack_.pop_back();
        continue;
      }
      const Child kid = fr.kids[fr.next++];
      // Re-check against the incumbent, which may have improved since the
      // child was generated.
      if (has_best_ && kid.f >= best_g_) {
        ++st_.pruned_by_bound;
        continue;
      }
      current_f_ = kid.f;
      enter(kid.node);
    }
    if (abort_) break;
    if (has_best_) break;          // pass completed: the incumbent is optimal
    if (min_exceed_ == kInf) break;  // nothing cut: the whole space is empty
    completed_lb_ = min_exceed_;   // optimum proven > threshold_
    threshold_ = min_exceed_;
    SEKITEI_LOG_TRACE("cp.search", "raising threshold", log::kv("threshold", threshold_),
                      log::kv("branches", st_.branches));
  }

  st_.propagations = prop_.calls();
  st_.search_ms = watch.elapsed_ms();

  if (!abort_) {
    st_.proven = true;
    if (has_best_) {
      st_.lower_bound = best_g_;
      r.cost = best_g_;
      r.steps = std::move(best_steps_);
    } else {
      st_.lower_bound = kInf;
      r.failure = "no resource-feasible plan exists under the given levels";
    }
    SEKITEI_LOG_INFO("cp.search", r.ok() ? "optimum proven" : "infeasibility proven",
                     log::kv("cost", r.cost), log::kv("branches", st_.branches),
                     log::kv("nodes", st_.nodes), log::kv("ms", st_.search_ms));
    r.stats = st_;
    return r;
  }

  // Cut short: the min f over the unexplored frontier bounds the optimum
  // (f of a node lower-bounds every goal below it), and so does the largest
  // exhausted threshold; report the tighter of the two.
  double frontier = std::min(current_f_, min_exceed_);
  for (const Frame& fr : stack_) {
    for (std::size_t j = fr.next; j < fr.kids.size(); ++j) {
      frontier = std::min(frontier, fr.kids[j].f);
    }
  }
  st_.lower_bound = std::max(frontier, completed_lb_);

  const bool anytime = opt_.anytime && opt_.stop.stop_possible();
  if (anytime && has_best_) {
    SEKITEI_LOG_INFO("cp.search", "returning anytime incumbent", log::kv("cost", best_g_),
                     log::kv("open_lb", frontier), log::kv("branches", st_.branches));
    r.cost = best_g_;
    r.steps = std::move(best_steps_);
  } else {
    r.failure = st_.stopped ? "stopped before the search completed"
                            : "search limit exhausted before finding a plan";
  }
  r.stats = st_;
  return r;
}

}  // namespace

Result solve(const model::CompiledProblem& cp, const Options& options) {
  Stopwatch watch;
  Bound bound(cp);
  const double bound_ms = watch.elapsed_ms();
  Search search(cp, options, bound);
  Result r = search.run();
  r.stats.bound_ms = bound_ms;
  return r;
}

}  // namespace sekitei::cp
