// CP branch-and-bound over the leveled regression space (ROADMAP item 1).
//
// The decision variables are exactly the paper's: which component goes on
// which node, and at which levels the streams flow — each decision is the
// commitment to one leveled ground action, so a complete assignment is a
// plan tail.  The search is depth-first branch-and-bound: dive best-bound
// first, record validated incumbents, and prune any partial assignment whose
// g + lower bound reaches the incumbent's cost.  Constraint propagation
// (cp::Propagator) rejects partial assignments whose interval store empties;
// admissible bounds (cp::Bound) come from hmax plus per-component best-level
// relaxations.
//
// Symmetry breaking: the node equivalence classes attached by
// analysis::attach_symmetry become lex-leader constraints — a fresh node of
// a class may only be introduced if every smaller unused twin is, too
// (identical to the RG rule, toggleable for CP-with-vs-without experiments).
//
// The regression move set, propagation semantics, pruning rules and
// acceptance checks mirror the RG search exactly.  That is deliberate: both
// backends then provably agree on feasibility and optimal cost while sharing
// no search code, which is what makes CP an independent optimality oracle
// for the fuzzer (`--oracles cp`) and a comparable competitor in bench_cp.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "model/compile.hpp"
#include "support/stop_token.hpp"

namespace sekitei::cp {

struct Stats {
  std::uint64_t nodes = 0;     // search nodes created (root included)
  std::uint64_t branches = 0;  // nodes visited (the budget unit)
  std::uint64_t propagations = 0;
  std::uint64_t pruned_by_bound = 0;
  std::uint64_t pruned_by_propagation = 0;
  std::uint64_t pruned_symmetry = 0;
  std::uint64_t peak_depth = 0;  // deepest DFS stack
  std::uint64_t incumbents = 0;  // incumbent improvements recorded
  std::uint64_t sim_rejections = 0;
  /// Cost of the best incumbent; meaningful when incumbents > 0.
  double incumbent_cost = 0.0;
  /// Lower bound on the optimal cost: the proven optimum when the search
  /// completes, else the min f over the unexplored frontier at the cut.
  double lower_bound = 0.0;
  double bound_ms = 0.0;   // Bound construction (the "graph" phase)
  double search_ms = 0.0;  // the DFS itself
  bool proven = false;     // search space exhausted: the answer is exact
  bool stopped = false;
  bool hit_node_limit = false;
  bool logically_unreachable = false;
};

struct Options {
  /// Lex-leader constraints over the attached node symmetry partition.
  /// Costs are unchanged — only which of several interchangeable twins
  /// appears in the plan.  No-op when no partition is attached.
  bool symmetry_breaking = true;
  bool forbid_repeated_actions = true;
  bool commutativity_pruning = true;
  std::uint64_t max_nodes = 1u << 21;  // visited-node budget
  std::uint64_t progress_every = 8192;
  StopToken stop;
  /// Return the best incumbent when the search is cut short (only when the
  /// stop token can actually fire — budget-only runs stay byte-identical to
  /// exhaustive ones, like the RG's anytime gate).
  bool anytime = true;
  /// Concrete acceptance check for complete assignments (the simulator
  /// hook); a rejected assignment resumes the search.
  std::function<bool(std::span<const ActionId>, double cost)> validate;
  std::function<void(const Stats&)> progress;
};

struct Result {
  std::optional<std::vector<ActionId>> steps;  // execution order
  double cost = 0.0;
  Stats stats;
  std::string failure;  // human-readable reason when !steps

  [[nodiscard]] bool ok() const { return steps.has_value(); }
};

/// Solves the compiled problem to cost-optimality (leveled cost_lb metric).
[[nodiscard]] Result solve(const model::CompiledProblem& cp, const Options& options = {});

}  // namespace sekitei::cp
