// Admissible cost lower bounds for the CP branch-and-bound search.
//
// Two relaxations, combined by max():
//
//  * hmax over the achiever graph: prop_cost[p] = 0 when p holds initially,
//    else min over achievers a of cost_lb(a) + max over a's preconditions.
//    Computed once per problem by fixpoint sweeps.  Using achievers_of()
//    (which includes degradable/upgradable cross-level closure support)
//    rather than raw effect lists keeps the bound aligned with — and hence
//    admissible for — the regression the search actually performs.
//
//  * per-component best-level relaxation: every open placed(C, n)
//    proposition needs a place action of component C in the remaining tail,
//    and place actions of distinct components are distinct actions, so the
//    sum over open components of min-over-all-(node, level-combo) place cost
//    is admissible.  This is where level choice enters the bound: the min
//    ranges over every leveled grounding of C's place action.
#pragma once

#include <vector>

#include "model/compile.hpp"
#include "support/interval.hpp"

namespace sekitei::cp {

class Bound {
 public:
  explicit Bound(const model::CompiledProblem& cp);

  /// Lower bound on the cost of any tail taking `state` back to the initial
  /// state; kInf when no logical action sequence can.
  [[nodiscard]] double estimate(const std::vector<PropId>& state);

  /// Whether `p` is reachable at all (hmax < inf).
  [[nodiscard]] bool reachable(PropId p) const { return prop_cost_[p.index()] < kInf; }

 private:
  const model::CompiledProblem& cp_;
  std::vector<double> prop_cost_;         // hmax per proposition
  std::vector<double> comp_min_place_;    // per component: cheapest place action
  std::vector<std::uint32_t> comp_mark_;  // epoch marks (distinct-component sum)
  std::uint32_t epoch_ = 0;
};

}  // namespace sekitei::cp
