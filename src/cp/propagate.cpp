#include "cp/propagate.hpp"

#include <algorithm>

namespace sekitei::cp {

using model::GroundAction;
using model::SlotRole;
using spec::LevelTag;

bool Propagator::propagate(std::span<const ActionId> steps, bool from_init) {
  ++calls_;
  failure_.clear();
  store_.reset(cp_.vars.size());
  if (from_init) {
    for (const model::InitMapEntry& e : cp_.init_map) store_.set(e.var, e.value);
  }
  for (ActionId a : steps) {
    if (!step(cp_.actions[a.index()])) return false;
  }
  return true;
}

bool Propagator::step(const GroundAction& act) {
  const model::CompiledSemantics& sem = *act.sem;
  const std::size_t n = act.slot_vars.size();

  // 1. Merge the action's optimistic intervals into the store.  Degradable
  //    inputs may shift down to the required level, upgradable ones up;
  //    everything else intersects (identical to the leveled replay rules —
  //    the two backends must agree on which tails are feasible).
  for (std::size_t s = 0; s < n; ++s) {
    const VarId var = act.slot_vars[s];
    const Interval req = act.slot_opt[s];
    if (!store_.has(var)) {
      store_.set(var, req);
      continue;
    }
    const Interval cur = store_.get(var);
    Interval merged;
    if (sem.roles[s] == SlotRole::Input && sem.tags[s] == LevelTag::Degradable) {
      if (cur.hi < req.lo || (cur.hi == req.lo && cur.hi_open && req.lo > 0)) {
        failure_ = "degradable input below required level";
        return false;
      }
      merged.lo = req.lo;
      detail::min_upper(cur, req, merged.hi, merged.hi_open);
    } else if (sem.roles[s] == SlotRole::Input && sem.tags[s] == LevelTag::Upgradable) {
      if (cur.lo > req.hi || (cur.lo == req.hi && req.hi_open)) {
        failure_ = "upgradable input above required level";
        return false;
      }
      merged = {std::max(cur.lo, req.lo), req.hi, req.hi_open};
    } else {
      merged = intersect(cur, req);
    }
    if (merged.is_empty()) {
      failure_ = "optimistic interval intersection empty";
      return false;
    }
    store_.set(var, merged);
  }

  // Slot view of the store.
  if (scratch_.size() < n) scratch_.resize(n);
  for (std::size_t s = 0; s < n; ++s) scratch_[s] = store_.get(act.slot_vars[s]);
  const std::span<Interval> slots(scratch_.data(), n);

  // 2. Conditions: prune unsatisfiable assignments; narrow single-variable
  //    sides (necessary-condition cuts, hence sound).
  for (const expr::CompiledCondition& cond : sem.conditions) {
    if (!cond.satisfiable(slots)) {
      failure_ = "condition failed: " + cond.source;
      return false;
    }
    const std::uint32_t ls = cond.lhs.single_var_slot();
    const std::uint32_t rs = cond.rhs.single_var_slot();
    if (ls == UINT32_MAX && rs == UINT32_MAX) continue;
    const Interval lv = cond.lhs.eval_interval(slots);
    const Interval rv = cond.rhs.eval_interval(slots);
    auto narrow = [&](std::uint32_t slot, Interval bound) -> bool {
      const Interval nv = intersect(slots[slot], bound);
      if (nv.is_empty()) {
        failure_ = "narrowing emptied interval: " + cond.source;
        return false;
      }
      slots[slot] = nv;
      store_.set(act.slot_vars[slot], nv);
      return true;
    };
    switch (cond.op) {
      case expr::CmpOp::Ge:
      case expr::CmpOp::Gt:
        if (ls != UINT32_MAX && !narrow(ls, {rv.lo, kInf})) return false;
        if (rs != UINT32_MAX && !narrow(rs, {-kInf, lv.hi, lv.hi_open})) return false;
        break;
      case expr::CmpOp::Le:
      case expr::CmpOp::Lt:
        if (ls != UINT32_MAX && !narrow(ls, {-kInf, rv.hi, rv.hi_open})) return false;
        if (rs != UINT32_MAX && !narrow(rs, {lv.lo, kInf})) return false;
        break;
      case expr::CmpOp::Eq:
        if (ls != UINT32_MAX && !narrow(ls, rv)) return false;
        if (rs != UINT32_MAX && !narrow(rs, lv)) return false;
        break;
      case expr::CmpOp::Ne:
        break;  // no useful interval cut
    }
  }

  // 3. Effects: sequential interval execution, then write-back; produced
  //    outputs must stay inside their asserted level.
  for (const expr::CompiledEffect& eff : sem.effects) {
    eff.apply_interval(slots);
    Interval v = slots[eff.target];
    if (sem.roles[eff.target] == SlotRole::Output) {
      v = intersect(v, act.slot_opt[eff.target]);
      if (v.is_empty()) {
        failure_ = "produced value misses asserted level: " + eff.source;
        return false;
      }
      slots[eff.target] = v;
    }
    store_.set(act.slot_vars[eff.target], v);
  }
  return true;
}

}  // namespace sekitei::cp
