// Interval propagation for the CP backend.
//
// The branch-and-bound search commits to a plan tail (a sequence of leveled
// ground actions, execution order) and asks whether the induced constraint
// store is consistent: every slot interval non-empty, every condition
// satisfiable, every produced output inside its asserted level.  The store is
// exactly the paper's *optimistic resource map* (Section 3.2.3, Fig. 8), so
// the propagator mirrors the RG replayer's Optimistic mode step for step —
// degradable inputs may shift down, upgradable inputs may shift up, and
// single-variable condition sides are narrowed (an arc-consistency cut).
// Keeping the semantics identical is what makes CP usable as an *optimality*
// oracle for RG: both backends accept precisely the same tails at the same
// costs, they only search the space differently.
//
// Deliberately independent of src/core (the cp library sits below it);
// propagation reuses src/expr interval evaluation directly.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "model/compile.hpp"
#include "support/interval.hpp"

namespace sekitei::cp {

/// Dense VarId -> Interval store with O(1) epoch-based clearing, so
/// propagations never allocate after warm-up.
class IntervalStore {
 public:
  void reset(std::size_t var_count) {
    if (vals_.size() < var_count) {
      vals_.resize(var_count);
      epoch_.resize(var_count, 0);
    }
    ++cur_;
  }
  [[nodiscard]] bool has(VarId v) const { return epoch_[v.index()] == cur_; }
  [[nodiscard]] Interval get(VarId v) const { return vals_[v.index()]; }
  void set(VarId v, Interval iv) {
    vals_[v.index()] = iv;
    epoch_[v.index()] = cur_;
  }

 private:
  std::vector<Interval> vals_;
  std::vector<std::uint32_t> epoch_;
  std::uint32_t cur_ = 0;
};

class Propagator {
 public:
  explicit Propagator(const model::CompiledProblem& cp) : cp_(cp) {}

  /// Propagates `steps` (execution order) through a fresh store.  With
  /// `from_init` the store is seeded from the initial resource map — the
  /// acceptance check for a complete assignment.  Returns false as soon as an
  /// interval empties or a condition becomes unsatisfiable.
  [[nodiscard]] bool propagate(std::span<const ActionId> steps, bool from_init);

  /// Why the last propagation failed (empty when it succeeded).
  [[nodiscard]] const std::string& failure() const { return failure_; }

  /// Total propagate() invocations — the search's dominant inner-loop work
  /// item, folded into Stats::propagations.
  [[nodiscard]] std::uint64_t calls() const { return calls_; }

 private:
  [[nodiscard]] bool step(const model::GroundAction& act);

  const model::CompiledProblem& cp_;
  IntervalStore store_;
  std::vector<Interval> scratch_;
  std::string failure_;
  std::uint64_t calls_ = 0;
};

}  // namespace sekitei::cp
