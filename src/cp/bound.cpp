#include "cp/bound.hpp"

#include <algorithm>

namespace sekitei::cp {

Bound::Bound(const model::CompiledProblem& cp) : cp_(cp) {
  const std::size_t np = cp_.props.size();
  const std::size_t na = cp_.actions.size();

  prop_cost_.assign(np, kInf);
  for (PropId p : cp_.init_props) prop_cost_[p.index()] = 0.0;

  // Fixpoint sweeps: costs only decrease and every decrease traces back to a
  // shorter support chain, so np + 1 sweeps always suffice.
  std::vector<double> via(na, kInf);
  for (std::size_t sweep = 0; sweep <= np; ++sweep) {
    for (std::size_t a = 0; a < na; ++a) {
      const model::GroundAction& act = cp_.actions[a];
      double pre_max = 0.0;
      for (PropId q : act.pre) {
        const double c = prop_cost_[q.index()];
        if (c == kInf) {
          pre_max = kInf;
          break;
        }
        pre_max = std::max(pre_max, c);
      }
      via[a] = pre_max == kInf ? kInf : pre_max + act.cost_lb;
    }
    bool changed = false;
    for (std::size_t p = 0; p < np; ++p) {
      if (prop_cost_[p] == 0.0) continue;
      double best = prop_cost_[p];
      for (ActionId a : cp_.achievers_of(PropId(static_cast<std::uint32_t>(p)))) {
        best = std::min(best, via[a.index()]);
      }
      if (best < prop_cost_[p]) {
        prop_cost_[p] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }

  std::uint32_t comp_count = 0;
  for (const model::GroundAction& act : cp_.actions) {
    if (act.kind == model::ActionKind::Place) {
      comp_count = std::max(comp_count, act.spec_index + 1);
    }
  }
  comp_min_place_.assign(comp_count, kInf);
  for (const model::GroundAction& act : cp_.actions) {
    if (act.kind != model::ActionKind::Place) continue;
    comp_min_place_[act.spec_index] = std::min(comp_min_place_[act.spec_index], act.cost_lb);
  }
  comp_mark_.assign(comp_count, 0);
}

double Bound::estimate(const std::vector<PropId>& state) {
  ++epoch_;
  double hmax = 0.0;
  double additive = 0.0;
  for (PropId p : state) {
    const double c = prop_cost_[p.index()];
    if (c == kInf) return kInf;
    hmax = std::max(hmax, c);
    if (c == 0.0) continue;  // holds initially: nothing left to pay for it
    const model::PropKey& key = cp_.props.key(p);
    if (key.kind != model::PropKind::Placed) continue;
    if (key.entity < comp_mark_.size() && comp_mark_[key.entity] != epoch_) {
      comp_mark_[key.entity] = epoch_;
      additive += comp_min_place_[key.entity];
    }
  }
  return std::max(hmax, additive);
}

}  // namespace sekitei::cp
