#include "net/generator.hpp"

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace sekitei::net {

namespace {

std::map<std::string, double> cpu_res(double cpu) { return {{"cpu", cpu}}; }

std::map<std::string, double> link_res(double bw, double delay) {
  return {{"lbw", bw}, {"delay", delay}};
}

// Plain append instead of `"lit" + std::to_string(i)`: GCC 12's -Wrestrict
// false-positives on the operator+(const char*, string&&) overload.
std::string indexed(const char* prefix, std::uint64_t i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

}  // namespace

Network transit_stub(const TransitStubParams& p, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Network net;

  // Transit backbone: a ring plus random chords, so the backbone survives a
  // single transit failure and offers alternative routes.
  std::vector<NodeId> transit;
  transit.reserve(p.transit_nodes);
  for (std::uint32_t i = 0; i < p.transit_nodes; ++i) {
    transit.push_back(net.add_node(indexed("t", i), cpu_res(p.node_cpu)));
  }
  for (std::uint32_t i = 0; i + 1 < p.transit_nodes; ++i) {
    net.add_link(transit[i], transit[i + 1], LinkClass::Wan,
                 link_res(p.wan_bandwidth, p.wan_delay));
  }
  if (p.transit_nodes > 2) {
    net.add_link(transit.back(), transit.front(), LinkClass::Wan,
                 link_res(p.wan_bandwidth, p.wan_delay));
  }
  for (std::uint32_t i = 0; i < p.transit_nodes; ++i) {
    for (std::uint32_t j = i + 2; j < p.transit_nodes; ++j) {
      if (rng.chance(p.extra_transit_edge_prob) && !net.find_link(transit[i], transit[j]).valid()) {
        net.add_link(transit[i], transit[j], LinkClass::Wan,
                     link_res(p.wan_bandwidth, p.wan_delay));
      }
    }
  }

  // Stub domains: each hangs off one transit router through a WAN access
  // link; inside the stub, hosts form a LAN tree with random extra edges.
  std::uint32_t stub_index = 0;
  for (std::uint32_t t = 0; t < p.transit_nodes; ++t) {
    for (std::uint32_t s = 0; s < p.stubs_per_transit; ++s, ++stub_index) {
      std::vector<NodeId> stub;
      stub.reserve(p.nodes_per_stub);
      const std::string prefix = indexed("s", stub_index) + "_";
      for (std::uint32_t k = 0; k < p.nodes_per_stub; ++k) {
        stub.push_back(net.add_node(prefix + std::to_string(k), cpu_res(p.node_cpu)));
      }
      // Gateway host connects the stub to its transit router.
      net.add_link(stub[0], transit[t], LinkClass::Wan, link_res(p.wan_bandwidth, p.wan_delay));
      // LAN tree: each host attaches to a random earlier host.
      for (std::uint32_t k = 1; k < p.nodes_per_stub; ++k) {
        const std::uint32_t parent = static_cast<std::uint32_t>(rng.next_below(k));
        net.add_link(stub[k], stub[parent], LinkClass::Lan, link_res(p.lan_bandwidth, p.lan_delay));
      }
      for (std::uint32_t i = 0; i < p.nodes_per_stub; ++i) {
        for (std::uint32_t j = i + 1; j < p.nodes_per_stub; ++j) {
          if (rng.chance(p.extra_stub_edge_prob) && !net.find_link(stub[i], stub[j]).valid()) {
            net.add_link(stub[i], stub[j], LinkClass::Lan,
                         link_res(p.lan_bandwidth, p.lan_delay));
          }
        }
      }
    }
  }

  SEKITEI_ASSERT(net.connected());
  return net;
}

Network waxman(const WaxmanParams& p, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Network net;
  std::vector<double> x(p.nodes), y(p.nodes);
  for (std::uint32_t i = 0; i < p.nodes; ++i) {
    x[i] = rng.next_double();
    y[i] = rng.next_double();
    net.add_node(indexed("w", i), cpu_res(p.node_cpu));
  }
  const double max_dist = std::sqrt(2.0);
  for (std::uint32_t i = 0; i < p.nodes; ++i) {
    for (std::uint32_t j = i + 1; j < p.nodes; ++j) {
      const double d = std::hypot(x[i] - x[j], y[i] - y[j]);
      const double prob = p.alpha * std::exp(-d / (p.beta * max_dist));
      if (rng.chance(prob)) {
        net.add_link(NodeId(i), NodeId(j), LinkClass::Wan,
                     link_res(p.bandwidth, p.delay_scale * d));
      }
    }
  }
  // Guarantee connectivity: attach every node to a random predecessor, as a
  // spanning construction on top of the Waxman draw.
  for (std::uint32_t i = 1; i < p.nodes; ++i) {
    bool attached = false;
    for (LinkId l : net.links_at(NodeId(i))) {
      if (net.link(l).other(NodeId(i)).index() < i) {
        attached = true;
        break;
      }
    }
    if (!attached) {
      const std::uint32_t j = static_cast<std::uint32_t>(rng.next_below(i));
      const double d = std::hypot(x[i] - x[j], y[i] - y[j]);
      net.add_link(NodeId(i), NodeId(j), LinkClass::Wan,
                   link_res(p.bandwidth, p.delay_scale * d));
    }
  }
  SEKITEI_ASSERT(net.connected());
  return net;
}

Network chain(const std::vector<ChainLinkSpec>& links, double node_cpu) {
  Network net;
  NodeId prev = net.add_node("n0", cpu_res(node_cpu));
  for (std::size_t i = 0; i < links.size(); ++i) {
    NodeId cur = net.add_node(indexed("n", i + 1), cpu_res(node_cpu));
    net.add_link(prev, cur, links[i].cls, link_res(links[i].bandwidth, links[i].delay));
    prev = cur;
  }
  return net;
}

Network star(const std::vector<ChainLinkSpec>& spokes, double node_cpu) {
  Network net;
  const NodeId hub = net.add_node("n0", cpu_res(node_cpu));
  for (std::size_t i = 0; i < spokes.size(); ++i) {
    const NodeId tip = net.add_node(indexed("n", i + 1), cpu_res(node_cpu));
    net.add_link(hub, tip, spokes[i].cls, link_res(spokes[i].bandwidth, spokes[i].delay));
  }
  return net;
}

}  // namespace sekitei::net
