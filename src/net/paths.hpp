// Path queries over the network: BFS hop counts and Dijkstra with an
// arbitrary per-link weight.  Used by tests, by topology analysis in the
// benchmarks, and by the repair module to localize damage.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "net/network.hpp"

namespace sekitei::net {

/// Hop distance from `src` to every node (UINT32_MAX when unreachable).
[[nodiscard]] std::vector<std::uint32_t> hop_distances(const Network& net, NodeId src);

struct Path {
  std::vector<NodeId> nodes;  // src ... dst
  std::vector<LinkId> links;  // nodes.size() - 1 entries
  double weight = 0.0;
};

/// Cheapest path under `weight(link)`; nullopt when unreachable.
[[nodiscard]] std::optional<Path> shortest_path(
    const Network& net, NodeId src, NodeId dst,
    const std::function<double(const Link&)>& weight);

/// Path with the fewest hops (weight = 1 per link).
[[nodiscard]] std::optional<Path> fewest_hops(const Network& net, NodeId src, NodeId dst);

/// The maximum bandwidth (min over links of `res`) achievable on any single
/// path from src to dst — the classic widest-path / bottleneck query.  Used
/// to decide whether a direct connection is possible at all.
[[nodiscard]] double widest_path_bandwidth(const Network& net, NodeId src, NodeId dst,
                                           const std::string& res = "lbw");

}  // namespace sekitei::net
