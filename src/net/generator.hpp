// Topology generators.
//
// The paper's Large scenario uses a 93-node network "generated using the
// GeorgiaTech ITM tool" [Zegura et al.].  GT-ITM is an external C program we
// cannot ship, so this module re-implements its transit-stub recipe: a small
// random transit backbone whose routers each anchor several stub (campus)
// domains.  Transit and inter-domain links are WAN class; intra-stub links
// are LAN class.  A Waxman generator (the other classic GT-ITM flavour) and
// simple chain/star builders are provided for sweeps and tests.
#pragma once

#include <cstdint>

#include "net/network.hpp"
#include "support/rng.hpp"

namespace sekitei::net {

struct TransitStubParams {
  std::uint32_t transit_nodes = 3;        // routers in the transit backbone
  std::uint32_t stubs_per_transit = 3;    // stub domains per transit router
  std::uint32_t nodes_per_stub = 10;      // hosts per stub domain
  double extra_transit_edge_prob = 0.4;   // chance of redundant backbone edges
  double extra_stub_edge_prob = 0.25;     // chance of redundant stub edges
  double lan_bandwidth = 150.0;           // paper: LAN links 150 units
  double wan_bandwidth = 70.0;            // paper: WAN links 70 units
  double node_cpu = 30.0;                 // paper: CPU for ~111 media units
  double lan_delay = 1.0;
  double wan_delay = 10.0;
};

/// Generates a connected transit-stub network.  With the defaults this gives
/// 3 transit + 9 stubs x 10 = 93 nodes, matching the paper's Fig. 10 scale.
[[nodiscard]] Network transit_stub(const TransitStubParams& params, std::uint64_t seed);

struct WaxmanParams {
  std::uint32_t nodes = 50;
  double alpha = 0.15;  // edge probability scale
  double beta = 0.6;    // edge probability distance decay
  double bandwidth = 100.0;
  double node_cpu = 30.0;
  double delay_scale = 10.0;
};

/// Classic Waxman random graph on the unit square; extra spanning-tree edges
/// guarantee connectivity.
[[nodiscard]] Network waxman(const WaxmanParams& params, std::uint64_t seed);

/// A chain n0 - n1 - ... - n{k-1} with per-link classes/bandwidths supplied
/// by the caller; used to build the paper's Tiny and Small scenarios.
struct ChainLinkSpec {
  LinkClass cls;
  double bandwidth;
  double delay = 1.0;
};

[[nodiscard]] Network chain(const std::vector<ChainLinkSpec>& links, double node_cpu);

/// A hub-and-spoke star: n0 is the hub, n1..n{k} hang off it over the given
/// per-spoke links (links[i] connects the hub to n{i+1}).  The degenerate
/// deployment topology of an access router fronting edge hosts; the fuzz
/// workload generator (src/testing) draws from it.
[[nodiscard]] Network star(const std::vector<ChainLinkSpec>& spokes, double node_cpu);

}  // namespace sekitei::net
