#include "net/paths.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace sekitei::net {

std::vector<std::uint32_t> hop_distances(const Network& net, NodeId src) {
  std::vector<std::uint32_t> dist(net.node_count(), std::numeric_limits<std::uint32_t>::max());
  std::queue<NodeId> q;
  dist[src.index()] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId n = q.front();
    q.pop();
    for (LinkId l : net.links_at(n)) {
      const NodeId m = net.link(l).other(n);
      if (dist[m.index()] == std::numeric_limits<std::uint32_t>::max()) {
        dist[m.index()] = dist[n.index()] + 1;
        q.push(m);
      }
    }
  }
  return dist;
}

std::optional<Path> shortest_path(const Network& net, NodeId src, NodeId dst,
                                  const std::function<double(const Link&)>& weight) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(net.node_count(), inf);
  std::vector<NodeId> prev_node(net.node_count());
  std::vector<LinkId> prev_link(net.node_count());
  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[src.index()] = 0.0;
  pq.emplace(0.0, src.index());
  while (!pq.empty()) {
    const auto [d, ni] = pq.top();
    pq.pop();
    if (d > dist[ni]) continue;
    if (NodeId(ni) == dst) break;
    for (LinkId l : net.links_at(NodeId(ni))) {
      const Link& link = net.link(l);
      const NodeId m = link.other(NodeId(ni));
      const double nd = d + weight(link);
      if (nd < dist[m.index()]) {
        dist[m.index()] = nd;
        prev_node[m.index()] = NodeId(ni);
        prev_link[m.index()] = l;
        pq.emplace(nd, m.index());
      }
    }
  }
  if (dist[dst.index()] == inf) return std::nullopt;
  Path path;
  path.weight = dist[dst.index()];
  NodeId cur = dst;
  while (cur != src) {
    path.nodes.push_back(cur);
    path.links.push_back(prev_link[cur.index()]);
    cur = prev_node[cur.index()];
  }
  path.nodes.push_back(src);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

std::optional<Path> fewest_hops(const Network& net, NodeId src, NodeId dst) {
  return shortest_path(net, src, dst, [](const Link&) { return 1.0; });
}

double widest_path_bandwidth(const Network& net, NodeId src, NodeId dst,
                             const std::string& res) {
  // Modified Dijkstra maximizing the bottleneck bandwidth.
  std::vector<double> best(net.node_count(), 0.0);
  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry> pq;  // max-heap on bottleneck
  best[src.index()] = std::numeric_limits<double>::infinity();
  pq.emplace(best[src.index()], src.index());
  while (!pq.empty()) {
    const auto [w, ni] = pq.top();
    pq.pop();
    if (w < best[ni]) continue;
    for (LinkId l : net.links_at(NodeId(ni))) {
      const Link& link = net.link(l);
      const NodeId m = link.other(NodeId(ni));
      const double nw = std::min(w, link.resource(res));
      if (nw > best[m.index()]) {
        best[m.index()] = nw;
        pq.emplace(nw, m.index());
      }
    }
  }
  return best[dst.index()];
}

}  // namespace sekitei::net
