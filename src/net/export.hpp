// Network serialization: Graphviz DOT for figures (Fig. 10 analogue) and a
// small JSON form for tooling.
#pragma once

#include <string>

#include "net/network.hpp"

namespace sekitei::net {

/// Graphviz rendering; LAN links solid, WAN links bold/dashed, with
/// bandwidth labels.
[[nodiscard]] std::string to_dot(const Network& net, const std::string& graph_name = "net");

/// Compact JSON: {"nodes":[{name,resources}...], "links":[{a,b,class,resources}...]}.
[[nodiscard]] std::string to_json(const Network& net);

}  // namespace sekitei::net
