// Wide-area network model: nodes and links carrying named resources.
//
// The paper's model (Section 2.1): "The network is assumed built up out of
// nodes and links, each characterized in terms of a number of resources."
// Node resources of interest: cpu; link resources: lbw (bandwidth).  The
// model is open: any named resource (memory, disk bandwidth, delay, ...)
// can be attached and referenced from spec formulae as `node.<res>` /
// `link.<res>`.
//
// Links are undirected and share one resource pool between both directions;
// a stream crossing in either direction consumes from the same pool.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/ids.hpp"

namespace sekitei::net {

/// Link class, used for reporting ("reserved LAN bandwidth", Table 2 col. 4)
/// and by topology generators.
enum class LinkClass : unsigned char { Lan, Wan, Other };

[[nodiscard]] const char* link_class_name(LinkClass c);

struct Node {
  std::string name;
  std::map<std::string, double> resources;  // e.g. {"cpu": 30}

  [[nodiscard]] double resource(const std::string& res) const {
    auto it = resources.find(res);
    return it == resources.end() ? 0.0 : it->second;
  }
};

struct Link {
  NodeId a;
  NodeId b;
  LinkClass cls = LinkClass::Other;
  std::map<std::string, double> resources;  // e.g. {"lbw": 150, "delay": 5}

  [[nodiscard]] double resource(const std::string& res) const {
    auto it = resources.find(res);
    return it == resources.end() ? 0.0 : it->second;
  }

  [[nodiscard]] bool connects(NodeId n) const { return a == n || b == n; }
  [[nodiscard]] NodeId other(NodeId n) const {
    SEKITEI_ASSERT(connects(n));
    return a == n ? b : a;
  }
};

class Network {
 public:
  NodeId add_node(std::string name, std::map<std::string, double> resources = {});
  LinkId add_link(NodeId a, NodeId b, LinkClass cls,
                  std::map<std::string, double> resources = {});

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const {
    SEKITEI_ASSERT(id.index() < nodes_.size());
    return nodes_[id.index()];
  }
  [[nodiscard]] Node& node(NodeId id) {
    SEKITEI_ASSERT(id.index() < nodes_.size());
    return nodes_[id.index()];
  }
  [[nodiscard]] const Link& link(LinkId id) const {
    SEKITEI_ASSERT(id.index() < links_.size());
    return links_[id.index()];
  }
  [[nodiscard]] Link& link(LinkId id) {
    SEKITEI_ASSERT(id.index() < links_.size());
    return links_[id.index()];
  }

  /// Looks a node up by name; invalid id when absent.
  [[nodiscard]] NodeId find_node(const std::string& name) const;

  /// Links incident to `n`.
  [[nodiscard]] const std::vector<LinkId>& links_at(NodeId n) const {
    SEKITEI_ASSERT(n.index() < incidence_.size());
    return incidence_[n.index()];
  }

  /// The link between a and b, if any (first match).
  [[nodiscard]] LinkId find_link(NodeId a, NodeId b) const;

  /// All node / link ids, for iteration.
  [[nodiscard]] std::vector<NodeId> node_ids() const;
  [[nodiscard]] std::vector<LinkId> link_ids() const;

  /// True when every node can reach every other node.
  [[nodiscard]] bool connected() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> incidence_;
};

}  // namespace sekitei::net
