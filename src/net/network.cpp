#include "net/network.hpp"

#include <queue>

namespace sekitei::net {

const char* link_class_name(LinkClass c) {
  switch (c) {
    case LinkClass::Lan: return "LAN";
    case LinkClass::Wan: return "WAN";
    case LinkClass::Other: return "OTHER";
  }
  return "?";
}

NodeId Network::add_node(std::string name, std::map<std::string, double> resources) {
  NodeId id(static_cast<std::uint32_t>(nodes_.size()));
  nodes_.push_back(Node{std::move(name), std::move(resources)});
  incidence_.emplace_back();
  return id;
}

LinkId Network::add_link(NodeId a, NodeId b, LinkClass cls,
                         std::map<std::string, double> resources) {
  SEKITEI_ASSERT(a.index() < nodes_.size() && b.index() < nodes_.size());
  if (a == b) raise("network: self-loop links are not allowed");
  LinkId id(static_cast<std::uint32_t>(links_.size()));
  links_.push_back(Link{a, b, cls, std::move(resources)});
  incidence_[a.index()].push_back(id);
  incidence_[b.index()].push_back(id);
  return id;
}

NodeId Network::find_node(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return NodeId(static_cast<std::uint32_t>(i));
  }
  return NodeId{};
}

LinkId Network::find_link(NodeId a, NodeId b) const {
  for (LinkId l : links_at(a)) {
    if (links_[l.index()].other(a) == b) return l;
  }
  return LinkId{};
}

std::vector<NodeId> Network::node_ids() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) out.emplace_back(static_cast<std::uint32_t>(i));
  return out;
}

std::vector<LinkId> Network::link_ids() const {
  std::vector<LinkId> out;
  out.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) out.emplace_back(static_cast<std::uint32_t>(i));
  return out;
}

bool Network::connected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::queue<NodeId> q;
  q.push(NodeId(0));
  seen[0] = true;
  std::size_t count = 1;
  while (!q.empty()) {
    const NodeId n = q.front();
    q.pop();
    for (LinkId l : links_at(n)) {
      const NodeId m = links_[l.index()].other(n);
      if (!seen[m.index()]) {
        seen[m.index()] = true;
        ++count;
        q.push(m);
      }
    }
  }
  return count == nodes_.size();
}

}  // namespace sekitei::net
