#include "net/export.hpp"

#include <sstream>

namespace sekitei::net {

std::string to_dot(const Network& net, const std::string& graph_name) {
  std::ostringstream os;
  os << "graph " << graph_name << " {\n";
  os << "  node [shape=circle fontsize=9];\n";
  for (NodeId n : net.node_ids()) {
    os << "  \"" << net.node(n).name << "\";\n";
  }
  for (LinkId l : net.link_ids()) {
    const Link& link = net.link(l);
    os << "  \"" << net.node(link.a).name << "\" -- \"" << net.node(link.b).name << "\" [label=\""
       << link.resource("lbw") << "\"";
    if (link.cls == LinkClass::Wan) os << " style=bold color=red";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_json(const Network& net) {
  std::ostringstream os;
  os << "{\"nodes\":[";
  bool first = true;
  for (NodeId n : net.node_ids()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << net.node(n).name << "\",\"resources\":{";
    bool rfirst = true;
    for (const auto& [k, v] : net.node(n).resources) {
      if (!rfirst) os << ",";
      rfirst = false;
      os << "\"" << k << "\":" << v;
    }
    os << "}}";
  }
  os << "],\"links\":[";
  first = true;
  for (LinkId l : net.link_ids()) {
    const Link& link = net.link(l);
    if (!first) os << ",";
    first = false;
    os << "{\"a\":\"" << net.node(link.a).name << "\",\"b\":\"" << net.node(link.b).name
       << "\",\"class\":\"" << link_class_name(link.cls) << "\",\"resources\":{";
    bool rfirst = true;
    for (const auto& [k, v] : link.resources) {
      if (!rfirst) os << ",";
      rfirst = false;
      os << "\"" << k << "\":" << v;
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

}  // namespace sekitei::net
