// Tests for the search phases: PLRG admissibility and relevance, the SLRG
// set-cost oracle, and RG/A* optimality properties.
#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "core/plrg.hpp"
#include "core/slrg.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"

namespace sekitei::core {
namespace {

using domains::media::scenario;

CostFn leveled_cost(const model::CompiledProblem& cp) {
  return [&cp](ActionId a) { return cp.actions[a.index()].cost_lb; };
}

TEST(Plrg, InitialPropsCostZero) {
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, scenario('C'));
  Plrg plrg(cp, leveled_cost(cp));
  plrg.build(cp.goal_prop);
  for (PropId p : cp.init_props) {
    if (plrg.reachable(p)) {
      EXPECT_DOUBLE_EQ(plrg.cost(p), 0.0);
    }
  }
}

TEST(Plrg, GoalReachableWithFiniteCost) {
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, scenario('C'));
  Plrg plrg(cp, leveled_cost(cp));
  plrg.build(cp.goal_prop);
  ASSERT_TRUE(plrg.reachable(cp.goal_prop));
  EXPECT_GT(plrg.cost(cp.goal_prop), 0.0);
}

TEST(Plrg, CostIsAdmissibleAgainstRealPlan) {
  // PLRG cost of the goal is "a lower bound on the actual cost of achieving
  // a proposition" (Section 3.2.1).
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, scenario('C'));
  Plrg plrg(cp, leveled_cost(cp));
  plrg.build(cp.goal_prop);

  Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const Plan& p) { return exec.execute(p).feasible; });
  ASSERT_TRUE(r.ok());
  EXPECT_LE(plrg.cost(cp.goal_prop), r.plan->cost_lb + 1e-9);
}

TEST(Plrg, UnreachableGoalDetected) {
  // No component implements what a lonely goal needs: remove all streams.
  auto inst = domains::media::tiny();
  model::CppProblem prob = inst->problem;
  prob.initial_streams.clear();  // the server offers nothing
  auto cp = model::compile(prob, scenario('C'));
  Plrg plrg(cp, leveled_cost(cp));
  plrg.build(cp.goal_prop);
  EXPECT_FALSE(plrg.reachable(cp.goal_prop));
}

TEST(Plrg, RelevantActionsAreSubsetOfAll) {
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, scenario('C'));
  Plrg plrg(cp, leveled_cost(cp));
  plrg.build(cp.goal_prop);
  EXPECT_GT(plrg.action_nodes(), 0u);
  EXPECT_LE(plrg.action_nodes(), cp.actions.size());
  for (ActionId a : plrg.relevant_actions()) EXPECT_TRUE(plrg.relevant(a));
}

TEST(Slrg, GoalSetCostDominatesPlrg) {
  // "The estimate of the cost of a set of propositions by the SLRG is more
  //  accurate than that obtained directly from the PLRG."
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, scenario('C'));
  Plrg plrg(cp, leveled_cost(cp));
  plrg.build(cp.goal_prop);
  Slrg slrg(cp, plrg, leveled_cost(cp));
  const std::vector<PropId> goal{cp.goal_prop};
  const double c = slrg.estimate(goal);
  EXPECT_GE(c, plrg.set_cost(goal) - 1e-9);
  EXPECT_LT(c, kInf);
}

TEST(Slrg, EstimateIsAdmissible) {
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, scenario('C'));
  Plrg plrg(cp, leveled_cost(cp));
  plrg.build(cp.goal_prop);
  Slrg slrg(cp, plrg, leveled_cost(cp));
  const double c_logical = slrg.estimate({cp.goal_prop});

  Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const Plan& p) { return exec.execute(p).feasible; });
  ASSERT_TRUE(r.ok());
  EXPECT_LE(c_logical, r.plan->cost_lb + 1e-9);
}

TEST(Slrg, MemoizationIsConsistent) {
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, scenario('C'));
  Plrg plrg(cp, leveled_cost(cp));
  plrg.build(cp.goal_prop);
  Slrg slrg(cp, plrg, leveled_cost(cp));
  const std::vector<PropId> goal{cp.goal_prop};
  const double first = slrg.estimate(goal);
  const std::size_t sets_after_first = slrg.set_count();
  const double second = slrg.estimate(goal);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_EQ(slrg.set_count(), sets_after_first) << "second query must be a pure lookup";
}

TEST(Slrg, SubsetOfInitCostsZero) {
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, scenario('C'));
  Plrg plrg(cp, leveled_cost(cp));
  plrg.build(cp.goal_prop);
  Slrg slrg(cp, plrg, leveled_cost(cp));
  ASSERT_FALSE(cp.init_props.empty());
  EXPECT_DOUBLE_EQ(slrg.estimate({cp.init_props.front()}), 0.0);
}

TEST(Rg, PlanCostEqualsSumOfStepCosts) {
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, scenario('C'));
  Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const Plan& p) { return exec.execute(p).feasible; });
  ASSERT_TRUE(r.ok());
  double sum = 0;
  for (ActionId a : r.plan->steps) sum += cp.actions[a.index()].cost_lb;
  EXPECT_NEAR(sum, r.plan->cost_lb, 1e-9);
}

TEST(Rg, OptimalityAcrossScenarios) {
  // C, D and E must all find the same optimal cost (Table 2, column 2).
  auto inst = domains::media::small();
  double costs[3];
  int i = 0;
  for (char sc : {'C', 'D', 'E'}) {
    auto cp = model::compile(inst->problem, scenario(sc));
    Sekitei planner(cp);
    sim::Executor exec(cp);
    auto r = planner.plan([&](const Plan& p) { return exec.execute(p).feasible; });
    ASSERT_TRUE(r.ok()) << sc;
    costs[i++] = r.plan->cost_lb;
  }
  EXPECT_NEAR(costs[0], costs[1], 1e-9);
  EXPECT_NEAR(costs[0], costs[2], 1e-9);
}

TEST(Rg, NoPlanWhenDemandExceedsProduction) {
  domains::media::Params p;
  p.client_demand = 250.0;  // the server only produces 200
  auto inst = domains::media::small(p);
  auto cp = model::compile(inst->problem,
                           domains::media::scenario_with_cuts({250, 260}));
  Sekitei planner(cp);
  auto r = planner.plan();
  EXPECT_FALSE(r.ok());
}

TEST(Rg, SearchLimitReportsGracefully) {
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, scenario('C'));
  PlannerOptions opt;
  opt.max_rg_expansions = 1;  // absurdly small
  Sekitei planner(cp, opt);
  auto r = planner.plan();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.stats.hit_search_limit);
  EXPECT_NE(r.failure.find("limit"), std::string::npos);
}

TEST(Rg, StatsArePopulated) {
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, scenario('C'));
  Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const Plan& p) { return exec.execute(p).feasible; });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.stats.total_actions, cp.actions.size());
  EXPECT_GT(r.stats.plrg_props, 0u);
  EXPECT_GT(r.stats.plrg_actions, 0u);
  EXPECT_GT(r.stats.slrg_sets, 0u);
  EXPECT_GT(r.stats.rg_nodes, 0u);
  EXPECT_GE(r.stats.rg_nodes, r.stats.rg_open_left);
}

TEST(Rg, GreedyModeUsesUniformCosts) {
  // In greedy mode the planner optimizes plan length; the Tiny plan has 7
  // actions but greedy cannot accept it (worst-case reservation) — on a
  // *relaxed* problem where greedy succeeds, its plan must be the shortest.
  domains::media::Params p;
  p.client_demand = 60.0;  // direct crossing (70 units) now suffices
  auto inst = domains::media::tiny(p);
  auto cp = model::compile(inst->problem, domains::media::scenario('A'));
  PlannerOptions opt;
  opt.mode = PlannerOptions::Mode::Greedy;
  Sekitei planner(cp, opt);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const Plan& pl) { return exec.execute(pl).feasible; });
  ASSERT_TRUE(r.ok()) << r.failure;
  EXPECT_EQ(r.plan->size(), 2u);  // cross M + place Client
}

}  // namespace
}  // namespace sekitei::core
