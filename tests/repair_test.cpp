// Tests for deployment repair and adaptation (src/repair): surviving-state
// extraction, damaged-network rebuilding, and reconnect/migrate costing.
#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "repair/repair.hpp"
#include "sim/executor.hpp"

namespace sekitei {
namespace {

struct Pipeline {
  std::unique_ptr<domains::media::Instance> inst;
  model::CompiledProblem cp;
  core::PlanResult result;
  sim::ExecutionReport report;
};

Pipeline solve_diamond() {
  Pipeline p;
  p.inst = domains::media::diamond();
  p.cp = model::compile(p.inst->problem, domains::media::scenario('C'));
  core::Sekitei planner(p.cp);
  sim::Executor exec(p.cp);
  p.result = planner.plan([&](const core::Plan& pl) { return exec.execute(pl).feasible; });
  if (p.result.ok()) p.report = exec.execute(*p.result.plan);
  return p;
}

int count_place(const model::CompiledProblem& cp, const core::Plan& plan,
                const std::string& comp) {
  int n = 0;
  for (ActionId a : plan.steps) {
    const model::GroundAction& act = cp.actions[a.index()];
    if (act.kind == model::ActionKind::Place &&
        cp.domain->component_at(act.spec_index).name == comp) {
      ++n;
    }
  }
  return n;
}

/// The WAN link the original plan crosses (the one we fail).
LinkId used_wan_link(const Pipeline& p) {
  for (ActionId a : p.result.plan->steps) {
    const model::GroundAction& act = p.cp.actions[a.index()];
    if (act.kind == model::ActionKind::Cross &&
        p.inst->net.link(act.link).cls == net::LinkClass::Wan) {
      return act.link;
    }
  }
  return LinkId{};
}

TEST(Repair, DamagedCopyDropsFailedLinksKeepsNodes) {
  auto inst = domains::media::diamond();
  repair::Damage dmg;
  dmg.failed_links.push_back(LinkId(1));  // a-b WAN
  net::Network damaged = repair::damaged_copy(inst->net, dmg);
  EXPECT_EQ(damaged.node_count(), inst->net.node_count());
  EXPECT_EQ(damaged.link_count(), inst->net.link_count() - 1);
  EXPECT_TRUE(damaged.connected());
}

TEST(Repair, FailedNodeLosesLinksAndResources) {
  auto inst = domains::media::diamond();
  repair::Damage dmg;
  const NodeId b = inst->net.find_node("b");
  dmg.failed_nodes.push_back(b);
  net::Network damaged = repair::damaged_copy(inst->net, dmg);
  EXPECT_TRUE(damaged.links_at(b).empty());
  EXPECT_DOUBLE_EQ(damaged.node(b).resource("cpu"), 0.0);
}

TEST(Repair, SurvivorsExcludeDownstreamOfFailedLink) {
  Pipeline p = solve_diamond();
  ASSERT_TRUE(p.result.ok()) << p.result.failure;
  const LinkId wan = used_wan_link(p);
  ASSERT_TRUE(wan.valid());
  repair::Damage dmg;
  dmg.failed_links.push_back(wan);
  repair::Survivors dep =
      repair::compute_survivors(p.cp, *p.result.plan, p.report.choices, dmg);

  // Components on the source side survive; the goal component is dropped.
  bool client_survives = false;
  for (const auto& [name, node] : dep.placements) client_survives |= name == "Client";
  EXPECT_FALSE(client_survives);

  // The split + zipped streams at the server side survive.
  bool z_at_source_side = false;
  for (const model::InitialStream& s : dep.streams) {
    if (s.iface == "Z") z_at_source_side = true;
  }
  EXPECT_TRUE(z_at_source_side);
  // Residual consumption is accounted for the surviving crossings only.
  EXPECT_FALSE(dep.residual.link_use.empty());
}

TEST(Repair, RepairPlanReroutesAndReusesComponents) {
  Pipeline p = solve_diamond();
  ASSERT_TRUE(p.result.ok()) << p.result.failure;
  const LinkId wan = used_wan_link(p);
  repair::Damage dmg;
  dmg.failed_links.push_back(wan);

  repair::Survivors dep =
      repair::compute_survivors(p.cp, *p.result.plan, p.report.choices, dmg);
  net::Network damaged = repair::damaged_copy(p.inst->net, dmg, &dep.residual);
  model::CppProblem rp = repair::repair_problem(p.inst->problem, damaged, dep);
  auto rcp = model::compile(rp, domains::media::scenario('C'));
  repair::apply_adaptation_costs(rcp, dep, {});

  core::Sekitei planner(rcp);
  sim::Executor exec(rcp);
  auto rr = planner.plan([&](const core::Plan& pl) { return exec.execute(pl).feasible; });
  ASSERT_TRUE(rr.ok()) << rr.failure;

  // The repair must not redo the upstream transformation: the split/zipped
  // streams survived at the source side.
  EXPECT_EQ(count_place(rcp, *rr.plan, "Splitter"), 0);
  EXPECT_EQ(count_place(rcp, *rr.plan, "Zip"), 0);
  // It must be much cheaper than the original full deployment.
  EXPECT_LT(rr.plan->cost_lb, p.result.plan->cost_lb);
  // And executable on the damaged network.
  EXPECT_TRUE(exec.execute(*rr.plan).feasible);
}

TEST(Repair, RepairCheaperThanPlanningFromScratch) {
  Pipeline p = solve_diamond();
  ASSERT_TRUE(p.result.ok());
  const LinkId wan = used_wan_link(p);
  repair::Damage dmg;
  dmg.failed_links.push_back(wan);
  // Repair with reuse (residual capacities deducted).
  repair::Survivors dep =
      repair::compute_survivors(p.cp, *p.result.plan, p.report.choices, dmg);
  net::Network damaged = repair::damaged_copy(p.inst->net, dmg, &dep.residual);
  model::CppProblem rp = repair::repair_problem(p.inst->problem, damaged, dep);
  auto rcp = model::compile(rp, domains::media::scenario('C'));
  repair::apply_adaptation_costs(rcp, dep, {});
  core::Sekitei rplanner(rcp);
  sim::Executor rexec(rcp);
  auto rr = rplanner.plan([&](const core::Plan& pl) { return rexec.execute(pl).feasible; });

  // From-scratch on the damaged network (full capacities: the old
  // deployment is torn down entirely).
  net::Network bare = repair::damaged_copy(p.inst->net, dmg);
  model::CppProblem sp = p.inst->problem;
  sp.network = &bare;
  auto scp = model::compile(sp, domains::media::scenario('C'));
  core::Sekitei splanner(scp);
  sim::Executor sexec(scp);
  auto sr = splanner.plan([&](const core::Plan& pl) { return sexec.execute(pl).feasible; });

  ASSERT_TRUE(rr.ok() && sr.ok());
  EXPECT_LT(rr.plan->cost_lb, sr.plan->cost_lb);
  EXPECT_LT(rr.plan->size(), sr.plan->size());
}

TEST(Repair, DamagedCopyClampsDegradedCapacities) {
  auto inst = domains::media::diamond();
  const NodeId b = inst->net.find_node("b");
  const LinkId ab = inst->net.find_link(inst->net.find_node("a"), b);
  ASSERT_TRUE(b.valid() && ab.valid());
  const double old_lbw = inst->net.link(ab).resource("lbw");
  const double old_cpu = inst->net.node(b).resource("cpu");

  repair::Damage dmg;
  dmg.degraded_links.push_back({ab, "lbw", 10.0});
  dmg.degraded_nodes.push_back({b, "cpu", -5.0});  // clamped to zero
  net::Network damaged = repair::damaged_copy(inst->net, dmg);
  EXPECT_DOUBLE_EQ(damaged.link(ab).resource("lbw"), 10.0);
  EXPECT_DOUBLE_EQ(damaged.node(b).resource("cpu"), 0.0);

  // Degradation never *grows* a capacity: a delta above the current value
  // keeps the current value.
  repair::Damage grow;
  grow.degraded_links.push_back({ab, "lbw", old_lbw + 1000.0});
  grow.degraded_nodes.push_back({b, "cpu", old_cpu + 1000.0});
  net::Network same = repair::damaged_copy(inst->net, grow);
  EXPECT_DOUBLE_EQ(same.link(ab).resource("lbw"), old_lbw);
  EXPECT_DOUBLE_EQ(same.node(b).resource("cpu"), old_cpu);
}

TEST(Repair, DegradedLinkBelowResidualEvictsLikeFailure) {
  Pipeline p = solve_diamond();
  ASSERT_TRUE(p.result.ok()) << p.result.failure;
  const LinkId wan = used_wan_link(p);
  ASSERT_TRUE(wan.valid());

  // Shrinking the crossed link below the survivors' residual draw must
  // trigger the contract-violation fixpoint: the overdrawn crossing is
  // evicted exactly as if the link had failed outright.
  repair::Damage degraded;
  degraded.degraded_links.push_back({wan, "lbw", 1.0});
  repair::Survivors via_degrade =
      repair::compute_survivors(p.cp, *p.result.plan, p.report.choices, degraded);

  repair::Damage failed;
  failed.failed_links.push_back(wan);
  repair::Survivors via_failure =
      repair::compute_survivors(p.cp, *p.result.plan, p.report.choices, failed);

  EXPECT_EQ(via_degrade.placements, via_failure.placements);
  EXPECT_EQ(via_degrade.subplan.size(), via_failure.subplan.size());

  // A degradation that still fits the residual draw evicts nothing beyond
  // the goal component.
  repair::Damage roomy;
  roomy.degraded_links.push_back({wan, "lbw", 1e6});
  repair::Survivors untouched =
      repair::compute_survivors(p.cp, *p.result.plan, p.report.choices, roomy);
  EXPECT_GT(untouched.placements.size(), via_degrade.placements.size());
}

TEST(Repair, ReconnectCheaperThanMigrate) {
  Pipeline p = solve_diamond();
  ASSERT_TRUE(p.result.ok());
  repair::Survivors dep;
  dep.placements.emplace_back("Merger", p.inst->client);

  auto cp2 = model::compile(p.inst->problem, domains::media::scenario('C'));
  repair::apply_adaptation_costs(cp2, dep, {});
  double reconnect_cost = -1, migrate_cost = -1, fresh_cost = -1;
  for (const model::GroundAction& act : cp2.actions) {
    if (act.kind != model::ActionKind::Place) continue;
    const std::string& name = cp2.domain->component_at(act.spec_index).name;
    if (name == "Merger" && act.node == p.inst->client) reconnect_cost = act.cost_lb;
    if (name == "Merger" && act.node != p.inst->client) migrate_cost = act.cost_lb;
    if (name == "Splitter") fresh_cost = act.cost_lb;
  }
  ASSERT_GT(reconnect_cost, 0);
  ASSERT_GT(migrate_cost, 0);
  EXPECT_LT(reconnect_cost, migrate_cost);
  EXPECT_LT(migrate_cost, fresh_cost + 1e-9);
}

}  // namespace
}  // namespace sekitei
