// The sharded LRU compiled-problem cache (service/compiled_cache.hpp):
// hit/miss accounting, eviction order, LRU refresh, the disabled mode, and
// the concurrent same-key race.
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/compiled_cache.hpp"

namespace sekitei::service {
namespace {

// The cache never looks inside entries, so empty ones are fine for tests.
std::shared_ptr<const CompiledEntry> dummy_entry() {
  return std::make_shared<CompiledEntry>();
}

TEST(CompiledCacheTest, MissThenHit) {
  CompiledProblemCache cache(4, /*shards=*/1);
  int factory_calls = 0;
  const auto factory = [&] {
    ++factory_calls;
    return dummy_entry();
  };

  auto [first, hit1] = cache.get_or_compile(7, factory);
  EXPECT_FALSE(hit1);
  EXPECT_EQ(factory_calls, 1);

  auto [second, hit2] = cache.get_or_compile(7, factory);
  EXPECT_TRUE(hit2);
  EXPECT_EQ(factory_calls, 1);  // served from cache, no recompilation
  EXPECT_EQ(first.get(), second.get());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(CompiledCacheTest, EvictsLeastRecentlyUsed) {
  CompiledProblemCache cache(2, /*shards=*/1);
  cache.insert(1, dummy_entry());
  cache.insert(2, dummy_entry());
  cache.insert(3, dummy_entry());  // capacity 2: key 1 is the LRU tail

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_NE(cache.find(2), nullptr);
  EXPECT_NE(cache.find(3), nullptr);
}

TEST(CompiledCacheTest, FindRefreshesLruOrder) {
  CompiledProblemCache cache(2, /*shards=*/1);
  cache.insert(1, dummy_entry());
  cache.insert(2, dummy_entry());
  ASSERT_NE(cache.find(1), nullptr);  // 1 becomes most recently used
  cache.insert(3, dummy_entry());     // evicts 2, not 1

  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.find(2), nullptr);
  EXPECT_NE(cache.find(3), nullptr);
}

TEST(CompiledCacheTest, ReinsertSameKeyReplacesWithoutEviction) {
  CompiledProblemCache cache(2, /*shards=*/1);
  auto a = dummy_entry();
  auto b = dummy_entry();
  cache.insert(1, a);
  cache.insert(1, b);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.find(1).get(), b.get());
}

TEST(CompiledCacheTest, ShardCountClampedToCapacity) {
  CompiledProblemCache cache(4, /*shards=*/8);
  EXPECT_LE(cache.shard_count(), 4u);
  EXPECT_GE(cache.capacity(), 4u);
}

TEST(CompiledCacheTest, CapacityZeroDisablesCaching) {
  CompiledProblemCache cache(0);
  EXPECT_FALSE(cache.enabled());

  int factory_calls = 0;
  const auto factory = [&] {
    ++factory_calls;
    return dummy_entry();
  };
  auto [e1, hit1] = cache.get_or_compile(7, factory);
  auto [e2, hit2] = cache.get_or_compile(7, factory);
  EXPECT_FALSE(hit1);
  EXPECT_FALSE(hit2);
  EXPECT_EQ(factory_calls, 2);  // every request recompiles
  EXPECT_NE(e1.get(), e2.get());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 0u);  // nothing retained
}

TEST(CompiledCacheTest, ClearEmptiesAllShards) {
  CompiledProblemCache cache(8, /*shards=*/4);
  for (std::uint64_t k = 0; k < 8; ++k) cache.insert(k, dummy_entry());
  EXPECT_GT(cache.stats().entries, 0u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.find(3), nullptr);
}

TEST(CompiledCacheTest, ConcurrentSameKeyCallersConvergeOnOneEntry) {
  CompiledProblemCache cache(16);
  constexpr int kThreads = 8;
  std::atomic<int> factory_calls{0};
  std::vector<std::shared_ptr<const CompiledEntry>> got(kThreads);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      got[i] = cache
                   .get_or_compile(42,
                                   [&] {
                                     factory_calls.fetch_add(1);
                                     return dummy_entry();
                                   })
                   .first;
    });
  }
  for (auto& t : threads) t.join();

  // Racing threads may each run the factory (it runs outside the lock), but
  // exactly one compiled entry survives and every caller receives it.
  EXPECT_GE(factory_calls.load(), 1);
  EXPECT_EQ(cache.stats().entries, 1u);
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(got[i].get(), got[0].get());
}

}  // namespace
}  // namespace sekitei::service
