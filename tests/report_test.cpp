// Tests for deployment rendering (sim/report).
#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"
#include "sim/report.hpp"

namespace sekitei::sim {
namespace {

struct Solved {
  std::unique_ptr<domains::media::Instance> inst;
  model::CompiledProblem cp;
  core::Plan plan;
  ExecutionReport report;
};

Solved solve_tiny() {
  Solved s;
  s.inst = domains::media::tiny();
  s.cp = model::compile(s.inst->problem, domains::media::scenario('C'));
  core::Sekitei planner(s.cp);
  Executor exec(s.cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  EXPECT_TRUE(r.ok());
  s.plan = *r.plan;
  s.report = exec.execute(s.plan);
  return s;
}

TEST(Report, DotContainsPlacementsAndStreams) {
  Solved s = solve_tiny();
  const std::string dot = deployment_to_dot(s.cp, s.plan, s.report);
  EXPECT_NE(dot.find("graph deployment"), std::string::npos);
  EXPECT_NE(dot.find("Splitter"), std::string::npos);
  EXPECT_NE(dot.find("Merger"), std::string::npos);
  // The WAN link carries both compressed streams with their reservation.
  EXPECT_NE(dot.find("I+Z"), std::string::npos);
  EXPECT_NE(dot.find("(65"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);
}

TEST(Report, SummaryListsEveryParticipant) {
  Solved s = solve_tiny();
  const std::string sum = deployment_summary(s.cp, s.plan, s.report);
  EXPECT_NE(sum.find("n0: Splitter Zip"), std::string::npos);
  for (const char* comp : {"Unzip", "Merger", "Client"}) {
    EXPECT_NE(sum.find(comp), std::string::npos) << comp;
  }
  EXPECT_NE(sum.find("n0-n1:"), std::string::npos);
  EXPECT_NE(sum.find("realized cost"), std::string::npos);
}

TEST(Report, UntouchedNodesRenderPlain) {
  Solved s = solve_tiny();
  // Add an inert node network-wise: solve on Small instead, where n_off
  // never participates.
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  core::Sekitei planner(cp);
  Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  ASSERT_TRUE(r.ok());
  auto rep = exec.execute(*r.plan);
  const std::string dot = deployment_to_dot(cp, *r.plan, rep);
  // n_off appears as a node but with no component annotation.
  EXPECT_NE(dot.find("\"n_off\" [label=\"n_off\"]"), std::string::npos);
}

}  // namespace
}  // namespace sekitei::sim
