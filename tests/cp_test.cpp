// CP branch-and-bound backend (src/cp): the second optimizing backend must
// agree with the RG A* search on every example instance (same optimal cost,
// same infeasibility verdicts), its lex-leader symmetry breaking must prune
// branches without changing the answer, a mid-search deadline must surface
// partial stats with stats.stopped, and mode=cp through the planning service
// must stay byte-identical across worker counts.
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/symmetry.hpp"
#include "core/planner.hpp"
#include "cp/search.hpp"
#include "model/compile.hpp"
#include "model/textio.hpp"
#include "service/engine.hpp"
#include "sim/executor.hpp"
#include "support/stop_token.hpp"

#ifndef SEKITEI_TEST_DATA_DIR
#error "SEKITEI_TEST_DATA_DIR must point at examples/data (set by CMake)"
#endif

namespace sekitei {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string data_file(const char* name) {
  return std::string(SEKITEI_TEST_DATA_DIR) + "/" + name;
}

/// A compiled instance that keeps its LoadedProblem alive (the compiled
/// problem borrows the network/domain/problem it was built from).
struct Inst {
  std::shared_ptr<const model::LoadedProblem> lp;
  model::CompiledProblem cp;
};

Inst compile_text(const std::string& domain, const std::string& problem) {
  auto lp = model::load_problem(domain, problem);
  model::CompiledProblem cp = model::compile(lp->problem, lp->scenario);
  return {std::move(lp), std::move(cp)};
}

core::PlanResult run_mode(const model::CompiledProblem& cp,
                          core::PlannerOptions::Mode mode) {
  core::PlannerOptions opt;
  opt.mode = mode;
  core::Sekitei planner(cp, opt);
  sim::Executor exec(cp);
  return planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
}

/// Hub-and-spoke drop-off: s -LAN- m_i -WAN- cl for K link-for-link
/// identical middles (bench_symmetry's star family).  The WAN legs sit
/// below the raw T demand, so every route needs the Zip/Unzip detour.
std::string star_problem(int middles) {
  std::string text = "network {\n  node s { cpu 30; }\n";
  for (int i = 1; i <= middles; ++i) {
    text += "  node m" + std::to_string(i) + " { cpu 30; }\n";
  }
  text += "  node cl { cpu 30; }\n";
  for (int i = 1; i <= middles; ++i) {
    const std::string m = "m" + std::to_string(i);
    text += "  link s " + m + " lan { lbw 150; delay 1; }\n";
    text += "  link " + m + " cl wan { lbw 66; delay 10; }\n";
  }
  text +=
      "}\n"
      "problem {\n"
      "  stream M.ibw at s = [0, 200];\n"
      "  preplaced Server at s;\n"
      "  forbid Server;\n"
      "  restrict Client to cl;\n"
      "  goal Client at cl;\n"
      "}\n"
      "scenario {\n"
      "  levels M.ibw { 90, 100 }\n"
      "  levels T.ibw { 63, 70 }\n"
      "  levels I.ibw { 27, 30 }\n"
      "  levels Z.ibw { 31.5, 35 }\n"
      "}\n";
  return text;
}

/// Producer/consumer pair whose only route degrades M below the demand:
/// provably infeasible under every level choice.
constexpr const char* kTinyDomain = R"(
interface M {
  property ibw degradable;
  cross {
    M.ibw' := min(M.ibw, link.lbw);
    link.lbw -= min(M.ibw, link.lbw);
  }
  cost 1;
}
component Server {
  implements M;
  effects { M.ibw := 100; }
  cost 1;
}
component Client {
  requires M;
  conditions { M.ibw >= 50; }
  cost 1;
}
)";

constexpr const char* kInfeasibleProblem = R"(
network {
  node a { cpu 30; }
  node b { cpu 30; }
  link a b lan { lbw 10; delay 1; }
}
problem {
  preplaced Server at a;
  forbid Server;
  goal Client at b;
}
scenario {
  levels M.ibw { 50 }
}
)";

/// Two producers sharing one link into a consumer that needs both streams.
/// Each stream fits the link alone (30 <= 40), together they exceed it
/// (60 > 40): every action grounds, only exhaustive search proves
/// infeasibility.
constexpr const char* kContentionDomain = R"(
interface A {
  property ibw degradable;
  cross {
    A.ibw' := min(A.ibw, link.lbw);
    link.lbw -= min(A.ibw, link.lbw);
  }
  cost 1;
}
interface B {
  property ibw degradable;
  cross {
    B.ibw' := min(B.ibw, link.lbw);
    link.lbw -= min(B.ibw, link.lbw);
  }
  cost 1;
}
component SrcA {
  implements A;
  effects { A.ibw := 100; }
  cost 1;
}
component SrcB {
  implements B;
  effects { B.ibw := 100; }
  cost 1;
}
component Sink {
  requires A, B;
  conditions { A.ibw >= 30; B.ibw >= 30; }
  cost 1;
}
)";

constexpr const char* kContentionProblem = R"(
network {
  node a { cpu 30; }
  node b { cpu 30; }
  link a b lan { lbw 40; delay 1; }
}
problem {
  stream A.ibw at a = [0, 200];
  stream B.ibw at a = [0, 200];
  preplaced SrcA at a;
  preplaced SrcB at a;
  forbid SrcA;
  forbid SrcB;
  goal Sink at b;
}
scenario {
  levels A.ibw { 30 }
  levels B.ibw { 30 }
}
)";

TEST(CpBackend, MatchesRgCostOnEveryExampleInstance) {
  const std::string domain = slurp(data_file("media.sk"));
  for (const char* name : {"tiny.sk", "small.sk", "diamond.sk"}) {
    SCOPED_TRACE(name);
    const Inst inst = compile_text(domain, slurp(data_file(name)));
    const core::PlanResult rg = run_mode(inst.cp, core::PlannerOptions::Mode::Leveled);
    const core::PlanResult cp = run_mode(inst.cp, core::PlannerOptions::Mode::Cp);
    ASSERT_TRUE(rg.ok()) << rg.failure;
    ASSERT_TRUE(cp.ok()) << cp.failure;
    EXPECT_NEAR(cp.plan->cost_lb, rg.plan->cost_lb, 1e-9);
    // An exhaustive CP run proves its answer: never flagged suboptimal.
    EXPECT_FALSE(cp.stats.suboptimal_on_stop);
    EXPECT_FALSE(cp.stats.stopped);
    EXPECT_GT(cp.stats.rg_expansions, 0u);
  }
}

TEST(CpBackend, AgreesWithRgOnStaticInfeasibility) {
  // The only route degrades M below the demand, so the degrading cross never
  // grounds: both backends report the goal logically unreachable.
  const Inst inst = compile_text(kTinyDomain, kInfeasibleProblem);
  const core::PlanResult rg = run_mode(inst.cp, core::PlannerOptions::Mode::Leveled);
  const core::PlanResult cp = run_mode(inst.cp, core::PlannerOptions::Mode::Cp);
  EXPECT_FALSE(rg.ok());
  EXPECT_FALSE(cp.ok());
  EXPECT_FALSE(cp.stats.stopped);
  EXPECT_FALSE(cp.stats.hit_search_limit);
  EXPECT_NE(cp.failure.find("unreachable"), std::string::npos) << cp.failure;
}

TEST(CpBackend, AgreesWithRgOnSearchProvenInfeasibility) {
  const Inst inst = compile_text(kContentionDomain, kContentionProblem);

  const core::PlanResult rg = run_mode(inst.cp, core::PlannerOptions::Mode::Leveled);
  EXPECT_FALSE(rg.ok());

  const cp::Result bnb = cp::solve(inst.cp);
  EXPECT_FALSE(bnb.ok());
  // The CP run must *prove* infeasibility by exhausting the space, not
  // merely fail to find a plan.
  EXPECT_TRUE(bnb.stats.proven);
  EXPECT_FALSE(bnb.stats.logically_unreachable);
  EXPECT_FALSE(bnb.stats.stopped);
  EXPECT_NE(bnb.failure.find("no resource-feasible plan"), std::string::npos)
      << bnb.failure;
}

TEST(CpBackend, LexLeaderPruningCutsBranchesOnSymmetricStar) {
  const std::string domain = slurp(data_file("media.sk"));
  Inst inst = compile_text(domain, star_problem(3));
  analysis::attach_symmetry(inst.cp);
  ASSERT_GE(inst.cp.symmetric_class_count, 1u);

  sim::Executor exec(inst.cp);
  cp::Options base;
  base.validate = [&](std::span<const ActionId> steps, double) {
    core::Plan plan;
    plan.steps.assign(steps.begin(), steps.end());
    return exec.execute(plan).feasible;
  };

  cp::Options with = base;
  with.symmetry_breaking = true;
  const cp::Result pruned = cp::solve(inst.cp, with);

  cp::Options without = base;
  without.symmetry_breaking = false;
  const cp::Result unpruned = cp::solve(inst.cp, without);

  ASSERT_TRUE(pruned.ok()) << pruned.failure;
  ASSERT_TRUE(unpruned.ok()) << unpruned.failure;
  // Lex-leader ordering removes twin branches, never plans: strictly fewer
  // branches, identical optimal cost.
  EXPECT_NEAR(pruned.cost, unpruned.cost, 1e-9);
  EXPECT_LT(pruned.stats.branches, unpruned.stats.branches);
  EXPECT_GT(pruned.stats.pruned_symmetry, 0u);
  EXPECT_EQ(unpruned.stats.pruned_symmetry, 0u);
}

TEST(CpBackend, DeadlineMidSearchReturnsPartialStatsWithStopped) {
  const std::string domain = slurp(data_file("media.sk"));
  const Inst inst = compile_text(domain, slurp(data_file("small.sk")));

  StopSource stop;
  cp::Options opt;
  opt.stop = stop.token();
  opt.progress_every = 64;
  std::uint64_t ticks = 0;
  opt.progress = [&](const cp::Stats&) {
    if (++ticks >= 4) stop.request_stop();
  };
  const cp::Result r = cp::solve(inst.cp, opt);

  // small.sk needs ~500k visited nodes exhaustively; four 64-node ticks stop
  // the search far short of that, mid-pass.
  EXPECT_TRUE(r.stats.stopped);
  EXPECT_FALSE(r.stats.proven);
  EXPECT_GT(r.stats.branches, 0u);
  EXPECT_LT(r.stats.branches, 10000u);
  EXPECT_GT(r.stats.propagations, 0u);
  if (!r.ok()) {
    EXPECT_NE(r.failure.find("stopped"), std::string::npos) << r.failure;
  }
}

TEST(CpBackend, StoppedStatsSurfaceThroughThePlannerFacade) {
  const std::string domain = slurp(data_file("media.sk"));
  const Inst inst = compile_text(domain, slurp(data_file("small.sk")));

  StopSource stop;
  core::PlannerOptions opt;
  opt.mode = core::PlannerOptions::Mode::Cp;
  opt.stop = stop.token();
  opt.progress_every = 64;
  std::uint64_t ticks = 0;
  opt.progress = [&](const core::PlannerStats&) {
    if (++ticks >= 4) stop.request_stop();
  };
  core::Sekitei planner(inst.cp, opt);
  const core::PlanResult r = planner.plan();

  EXPECT_TRUE(r.stats.stopped);
  EXPECT_GT(r.stats.rg_expansions, 0u);
  if (r.ok()) {
    EXPECT_TRUE(r.stats.suboptimal_on_stop);
  }
}

TEST(CpBackend, ServiceModeCpIsByteIdenticalAcrossWorkerCounts) {
  const std::shared_ptr<const model::LoadedProblem> shared =
      model::load_problem(slurp(data_file("media.sk")), slurp(data_file("tiny.sk")));
  auto make_request = [&](const char* id) {
    service::PlanRequest req;
    req.id = id;
    req.problem = shared;
    req.mode = core::PlannerOptions::Mode::Cp;
    return req;
  };

  service::PlanResponse first;
  {
    service::PlanningEngine one({.workers = 1});
    first = one.plan(make_request("cp-jobs1"));
  }
  ASSERT_EQ(first.outcome, service::Outcome::Solved);

  constexpr std::size_t kJobs = 4;
  service::PlanningEngine many({.workers = kJobs});
  std::vector<service::PlanningEngine::Ticket> tickets;
  tickets.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    tickets.push_back(many.submit(make_request("cp-jobsN")));
  }
  for (auto& t : tickets) {
    const service::PlanResponse r = t.response.get();
    EXPECT_EQ(r.outcome, first.outcome);
    EXPECT_EQ(r.plan_text, first.plan_text);
    ASSERT_TRUE(r.plan.has_value());
    EXPECT_EQ(r.plan->cost_lb, first.plan->cost_lb);
  }
}

}  // namespace
}  // namespace sekitei
