// Observability suite: the stats_to_json serializer (golden string + JSON
// round-trip), trace spans/counters and the Chrome trace-event export, the
// log gate and NDJSON sink, the progress observer, the single-exit stats
// population on early-return planner paths, and the SEKITEI_LOG_DISABLED
// determinism guard (a quiet TU must produce a byte-identical plan).
//
// When examples/CMakeLists.txt defines SEKITEI_SOLVE_FILE_BIN this suite also
// runs example_solve_file --trace end-to-end and parses the emitted file —
// the acceptance check that the trace really is Chrome-trace-format JSON.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "core/stats.hpp"
#include "domains/media.hpp"
#include "support/json_reader.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"
#include "support/log.hpp"
#include "support/trace.hpp"

namespace sekitei::testing {
// Defined in stats_log_disabled.cpp, compiled with -DSEKITEI_LOG_DISABLED.
std::string plan_small_c_quiet(double* cost_out, int* log_args_evaluated);
}  // namespace sekitei::testing

namespace sekitei {
namespace {

using core::PlannerStats;

// ---- stats_to_json ----------------------------------------------------

TEST(StatsJson, GoldenString) {
  PlannerStats s;
  s.total_actions = 68;
  s.plrg_props = 17;
  s.plrg_actions = 34;
  s.slrg_sets = 301;
  s.rg_nodes = 154;
  s.rg_open_left = 102;
  s.time_graph_ms = 1.5;
  s.time_search_ms = 2.25;
  s.rg_expansions = 52;
  s.rg_pruned_by_replay = 129;
  s.rg_peak_open = 103;
  s.slrg_memo_hits = 261;
  s.slrg_memo_misses = 9;
  s.replay_calls = 283;
  s.sim_rejections = 4;
  s.logically_unreachable = false;
  s.hit_search_limit = true;
  EXPECT_EQ(core::stats_to_json(s),
            "{\"total_actions\":68,\"plrg_props\":17,\"plrg_actions\":34,"
            "\"slrg_sets\":301,\"rg_nodes\":154,\"rg_open_left\":102,"
            "\"time_graph_ms\":1.500,\"time_search_ms\":2.250,"
            "\"time_total_ms\":3.750,\"rg_expansions\":52,"
            "\"rg_pruned_by_replay\":129,\"pruned_placements\":0,"
            "\"rg_peak_open\":103,"
            "\"slrg_memo_hits\":261,\"slrg_memo_misses\":9,"
            "\"replay_calls\":283,\"sim_rejections\":4,"
            "\"rg_incumbents\":0,\"incumbent_cost\":0.000,\"open_cost_lb\":0.000,"
            "\"logically_unreachable\":false,\"hit_search_limit\":true,"
            "\"stopped\":false,\"suboptimal_on_stop\":false}");
}

TEST(StatsJson, RoundTripThroughParser) {
  PlannerStats s;
  s.total_actions = 7;
  s.rg_peak_open = 12345;
  s.time_graph_ms = 0.125;
  s.logically_unreachable = true;
  sekitei::json::Value v;
  std::string err;
  ASSERT_TRUE(sekitei::json::parse(core::stats_to_json(s), v, &err)) << err;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.obj->size(), 24u);
  ASSERT_NE(v.find("total_actions"), nullptr);
  EXPECT_DOUBLE_EQ(v.find("total_actions")->number, 7.0);
  EXPECT_DOUBLE_EQ(v.find("rg_peak_open")->number, 12345.0);
  EXPECT_DOUBLE_EQ(v.find("time_graph_ms")->number, 0.125);
  EXPECT_DOUBLE_EQ(v.find("time_total_ms")->number, 0.125);
  EXPECT_TRUE(v.find("logically_unreachable")->boolean);
  EXPECT_FALSE(v.find("hit_search_limit")->boolean);
}

// ---- trace collector ---------------------------------------------------

TEST(Trace, SpanNestingAndOrdering) {
  trace::Collector c;
  trace::install(&c);
  {
    trace::Span outer("outer", "t");
    {
      trace::Span inner("inner", "t");
    }
    trace::Span sibling("sibling", "t");
  }
  trace::uninstall();

  const auto events = c.events();
  ASSERT_EQ(events.size(), 3u);
  // Spans are recorded when they *end*: inner, then sibling, then outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "sibling");
  EXPECT_EQ(events[2].name, "outer");
  for (const auto& e : events) EXPECT_EQ(e.ph, 'X');
  // The outer span must fully contain both children.
  EXPECT_LE(events[2].ts_us, events[0].ts_us);
  EXPECT_GE(events[2].ts_us + events[2].dur_us, events[1].ts_us + events[1].dur_us);
  // The sibling starts no earlier than the inner span ended.
  EXPECT_GE(events[1].ts_us, events[0].ts_us);
}

TEST(Trace, SpanFinishIsIdempotent) {
  trace::Collector c;
  trace::install(&c);
  {
    trace::Span s("once");
    s.finish();
    s.finish();  // second call must not record again
  }
  trace::uninstall();
  EXPECT_EQ(c.event_count(), 1u);
}

TEST(Trace, CounterAggregation) {
  trace::Collector c;
  trace::install(&c);
  trace::counter("x", 1.0);
  trace::counter("y", 5.0);
  trace::counter("x", 2.0);
  trace::counter("x", 3.0);
  trace::uninstall();

  EXPECT_EQ(c.counter_values("x"), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(c.counter_values("y"), (std::vector<double>{5.0}));
  EXPECT_TRUE(c.counter_values("never").empty());
  EXPECT_DOUBLE_EQ(c.counter_last("x"), 3.0);
  EXPECT_DOUBLE_EQ(c.counter_last("y"), 5.0);
  EXPECT_DOUBLE_EQ(c.counter_last("never"), 0.0);
}

TEST(Trace, NoCollectorIsInert) {
  ASSERT_EQ(trace::collector(), nullptr);
  trace::Span s("unrecorded");
  trace::counter("unrecorded", 1.0);
  trace::instant("unrecorded");
  s.finish();
  EXPECT_EQ(trace::collector(), nullptr);
}

TEST(Trace, ToJsonIsChromeTraceFormat) {
  trace::Collector c;
  trace::install(&c);
  {
    trace::Span s("phase \"one\"", "t");  // quotes must be escaped
    trace::counter("work", 42.0);
    trace::instant("marker", "t");
  }
  trace::uninstall();

  sekitei::json::Value v;
  std::string err;
  ASSERT_TRUE(sekitei::json::parse(c.to_json(), v, &err)) << err;
  const sekitei::json::Value* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->arr->size(), 3u);
  bool saw_span = false, saw_counter = false, saw_instant = false;
  for (const auto& e : *events->arr) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    const std::string& ph = e.find("ph")->str;
    if (ph == "X") {
      saw_span = true;
      EXPECT_EQ(e.find("name")->str, "phase \"one\"");
      EXPECT_NE(e.find("dur"), nullptr);
    } else if (ph == "C") {
      saw_counter = true;
      const sekitei::json::Value* cargs = e.find("args");
      ASSERT_NE(cargs, nullptr);
      ASSERT_NE(cargs->find("value"), nullptr);
      EXPECT_DOUBLE_EQ(cargs->find("value")->number, 42.0);
    } else if (ph == "i") {
      saw_instant = true;
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_instant);
}

// ---- log gate and sinks -------------------------------------------------

class CaptureSink : public log::Sink {
 public:
  void write(const log::Record& record) override {
    lines.push_back(log::JsonLinesSink::render(record));
  }
  std::vector<std::string> lines;
};

TEST(Log, GateNeedsBothSinkAndLevel) {
  log::clear_sinks();
  log::set_level(log::Level::Info);
  EXPECT_FALSE(log::enabled(log::Level::Error)) << "no sink registered";

  auto sink = std::make_shared<CaptureSink>();
  log::add_sink(sink);
  EXPECT_TRUE(log::enabled(log::Level::Info));
  EXPECT_FALSE(log::enabled(log::Level::Debug));
  log::set_level(log::Level::Warn);
  EXPECT_FALSE(log::enabled(log::Level::Info));
  EXPECT_TRUE(log::enabled(log::Level::Warn));

  log::clear_sinks();
  log::set_level(log::Level::Info);
  EXPECT_FALSE(log::enabled(log::Level::Error));
}

TEST(Log, JsonLinesSinkRendersStructuredRecord) {
  log::clear_sinks();
  log::set_level(log::Level::Debug);
  auto sink = std::make_shared<CaptureSink>();
  log::add_sink(sink);
  SEKITEI_LOG_DEBUG("tests.log", "hello \"world\"", log::kv("n", 42),
                    log::kv("ratio", 0.5), log::kv("ok", true), log::kv("who", "a\nb"));
  log::clear_sinks();
  log::set_level(log::Level::Info);

  ASSERT_EQ(sink->lines.size(), 1u);
  sekitei::json::Value v;
  std::string err;
  ASSERT_TRUE(sekitei::json::parse(sink->lines[0], v, &err)) << err << "\n" << sink->lines[0];
  EXPECT_EQ(v.find("level")->str, "debug");
  EXPECT_EQ(v.find("component")->str, "tests.log");
  EXPECT_EQ(v.find("message")->str, "hello \"world\"");
  EXPECT_DOUBLE_EQ(v.find("n")->number, 42.0);
  EXPECT_DOUBLE_EQ(v.find("ratio")->number, 0.5);
  EXPECT_TRUE(v.find("ok")->boolean);
  EXPECT_EQ(v.find("who")->str, "a\nb");
}

TEST(Log, ParseLevelRoundTrip) {
  EXPECT_EQ(log::parse_level("trace"), log::Level::Trace);
  EXPECT_EQ(log::parse_level("debug"), log::Level::Debug);
  EXPECT_EQ(log::parse_level("info"), log::Level::Info);
  EXPECT_EQ(log::parse_level("warn"), log::Level::Warn);
  EXPECT_EQ(log::parse_level("error"), log::Level::Error);
  EXPECT_EQ(log::parse_level("bogus"), log::Level::Off);
}

// ---- planner integration -------------------------------------------------

TEST(PlannerObservability, ProgressObserverFires) {
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  core::PlannerOptions opt;
  std::uint64_t calls = 0, last_expansions = 0;
  bool monotone = true;
  opt.progress_every = 1;
  opt.progress = [&](const PlannerStats& s) {
    ++calls;
    if (s.rg_expansions < last_expansions) monotone = false;
    last_expansions = s.rg_expansions;
  };
  core::Sekitei planner(cp, opt);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  ASSERT_TRUE(r.ok());
  EXPECT_GT(calls, 0u);
  EXPECT_TRUE(monotone);
  EXPECT_LE(last_expansions, r.stats.rg_expansions);
}

TEST(PlannerObservability, PhaseTimesAndDiagnosticsPopulated) {
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.stats.time_graph_ms, 0.0);
  EXPECT_GT(r.stats.time_search_ms, 0.0);
  EXPECT_NEAR(r.stats.time_total_ms(), r.stats.time_graph_ms + r.stats.time_search_ms, 1e-12);
  EXPECT_GE(r.stats.rg_peak_open, r.stats.rg_open_left);
  EXPECT_GT(r.stats.replay_calls, 0u);
  EXPECT_GT(r.stats.slrg_memo_hits + r.stats.slrg_memo_misses, 0u);
}

TEST(PlannerObservability, EarlyReturnStillPopulatesStats) {
  // Unsatisfiable demand: the planner bails before the RG search, but the
  // single-exit path must still fill in the graph-phase stats (the seed bug:
  // early returns used to leave PLRG/SLRG counters at zero).
  domains::media::Params p;
  p.client_demand = 250.0;  // the server only produces 200
  auto inst = domains::media::small(p);
  auto cp = model::compile(inst->problem,
                           domains::media::scenario_with_cuts({250, 260}));
  core::Sekitei planner(cp);
  auto r = planner.plan();
  ASSERT_FALSE(r.ok());
  EXPECT_GT(r.stats.plrg_props, 0u);
  EXPECT_GT(r.stats.plrg_actions, 0u);
  EXPECT_GE(r.stats.time_graph_ms, 0.0);
  sekitei::json::Value v;
  std::string err;
  ASSERT_TRUE(sekitei::json::parse(core::stats_to_json(r.stats), v, &err)) << err;
}

TEST(PlannerObservability, LogDisabledPlanIsByteIdentical) {
  // The quiet TU (compiled with SEKITEI_LOG_DISABLED) and a fully observed
  // run must produce the same plan, byte for byte: instrumentation only
  // watches, it never steers.
  int evaluated = -1;
  double quiet_cost = 0.0;
  const std::string quiet = testing::plan_small_c_quiet(&quiet_cost, &evaluated);
  ASSERT_FALSE(quiet.empty());
  EXPECT_EQ(evaluated, 0) << "disabled log macro evaluated its arguments";

  log::clear_sinks();
  log::set_level(log::Level::Trace);
  auto sink = std::make_shared<CaptureSink>();
  log::add_sink(sink);
  trace::Collector c;
  trace::install(&c);

  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });

  trace::uninstall();
  log::clear_sinks();
  log::set_level(log::Level::Info);

  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.plan->str(cp), quiet);
  EXPECT_DOUBLE_EQ(r.plan->cost_lb, quiet_cost);
  EXPECT_GT(sink->lines.size(), 0u) << "observed run produced no log records";
  EXPECT_GT(c.event_count(), 0u) << "observed run produced no trace events";
}

// ---- solve_file CLI end-to-end -------------------------------------------

#ifdef SEKITEI_SOLVE_FILE_BIN
TEST(SolveFileCli, TraceFileIsValidChromeTrace) {
  const std::string trace_path = ::testing::TempDir() + "sekitei_cli_trace.json";
  const std::string cmd = std::string("\"") + SEKITEI_SOLVE_FILE_BIN + "\" \"" +
                          SEKITEI_EXAMPLES_DATA_DIR + "/media.sk\" \"" +
                          SEKITEI_EXAMPLES_DATA_DIR + "/tiny.sk\" --plan-only --trace \"" +
                          trace_path + "\" > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << "trace file not written: " << trace_path;
  std::ostringstream os;
  os << in.rdbuf();

  sekitei::json::Value v;
  std::string err;
  ASSERT_TRUE(sekitei::json::parse(os.str(), v, &err)) << err;
  const sekitei::json::Value* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_GT(events->arr->size(), 0u);
  bool saw_plrg = false, saw_search = false, saw_plan = false;
  for (const auto& e : *events->arr) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    const std::string& name = e.find("name")->str;
    saw_plrg = saw_plrg || name == "plrg.build";
    saw_search = saw_search || name == "rg.search";
    saw_plan = saw_plan || name == "planner.plan";
  }
  EXPECT_TRUE(saw_plrg);
  EXPECT_TRUE(saw_search);
  EXPECT_TRUE(saw_plan);
  std::remove(trace_path.c_str());
}
#endif  // SEKITEI_SOLVE_FILE_BIN

}  // namespace
}  // namespace sekitei
