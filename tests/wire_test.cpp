// Wire-codec tests (service/wire.hpp): framing, incremental decode, request
// parsing, and — most load-bearing — the byte-for-byte golden rendering of
// response records.  The batch driver (sekitei_serve) and the daemon
// (sekitei_netd) both emit these records through the shared codec; the
// golden strings here are what keeps their output from ever drifting apart.
#include "service/wire.hpp"

#include <gtest/gtest.h>

#include <string>

namespace wire = sekitei::service::wire;
using sekitei::service::Outcome;
using sekitei::service::PlanResponse;

TEST(Frame, EncodeProducesLengthPrefixedBody) {
  EXPECT_EQ(wire::encode_frame("{\"op\":\"plan\"}"), "13\n{\"op\":\"plan\"}\n");
  EXPECT_EQ(wire::encode_frame(""), "0\n\n");
}

TEST(Frame, DecoderRoundTripsWholeFrames) {
  wire::FrameDecoder dec;
  dec.feed(wire::encode_frame("{\"a\":1}") + wire::encode_frame("{\"b\":2}"));
  std::string body;
  ASSERT_EQ(dec.next(body), wire::FrameDecoder::Status::Frame);
  EXPECT_EQ(body, "{\"a\":1}");
  ASSERT_EQ(dec.next(body), wire::FrameDecoder::Status::Frame);
  EXPECT_EQ(body, "{\"b\":2}");
  EXPECT_EQ(dec.next(body), wire::FrameDecoder::Status::NeedMore);
}

TEST(Frame, DecoderHandlesByteAtATimeDelivery) {
  const std::string stream =
      wire::encode_frame("{\"op\":\"healthz\"}") + wire::encode_frame("{}");
  wire::FrameDecoder dec;
  std::string body;
  std::size_t frames = 0;
  for (char c : stream) {
    dec.feed(&c, 1);
    while (dec.next(body) == wire::FrameDecoder::Status::Frame) ++frames;
  }
  EXPECT_EQ(frames, 2u);
}

TEST(Frame, BodyMayContainNewlines) {
  wire::FrameDecoder dec;
  dec.feed(wire::encode_frame("line1\nline2"));
  std::string body;
  ASSERT_EQ(dec.next(body), wire::FrameDecoder::Status::Frame);
  EXPECT_EQ(body, "line1\nline2");
}

TEST(Frame, CarriageReturnBeforeHeaderNewlineTolerated) {
  wire::FrameDecoder dec;
  dec.feed("2\r\nhi\n");
  std::string body;
  ASSERT_EQ(dec.next(body), wire::FrameDecoder::Status::Frame);
  EXPECT_EQ(body, "hi");
}

TEST(Frame, OversizedFrameLatchesError) {
  wire::FrameDecoder dec(16);
  dec.feed("17\n");
  std::string body;
  EXPECT_EQ(dec.next(body), wire::FrameDecoder::Status::Error);
  EXPECT_NE(dec.error().find("exceeds"), std::string::npos);
  // Latched: more input cannot resurrect the stream.
  dec.feed(wire::encode_frame("{}"));
  EXPECT_EQ(dec.next(body), wire::FrameDecoder::Status::Error);
}

TEST(Frame, GarbageHeaderLatchesError) {
  wire::FrameDecoder dec;
  dec.feed("{\"op\":\"plan\"}\n");  // NDJSON without the length prefix
  std::string body;
  EXPECT_EQ(dec.next(body), wire::FrameDecoder::Status::Error);
}

TEST(Frame, BodyNotNewlineTerminatedIsError) {
  wire::FrameDecoder dec;
  dec.feed("2\nabX");
  std::string body;
  EXPECT_EQ(dec.next(body), wire::FrameDecoder::Status::Error);
}

TEST(ParseRequest, DefaultsMatchWireRequestDefaults) {
  wire::WireRequest req;
  std::string err;
  ASSERT_TRUE(wire::parse_request("{\"problem\":\"network {}\"}", req, err)) << err;
  EXPECT_EQ(req.op, wire::WireRequest::Op::Plan);
  EXPECT_EQ(req.problem_text, "network {}");
  EXPECT_TRUE(req.id.empty());
  EXPECT_EQ(req.deadline_ms, 0.0);
  EXPECT_EQ(req.mode, sekitei::core::PlannerOptions::Mode::Leveled);
  EXPECT_TRUE(req.validate);
  EXPECT_FALSE(req.preflight);
  EXPECT_TRUE(req.degrade);
}

TEST(ParseRequest, AllFieldsParsed) {
  wire::WireRequest req;
  std::string err;
  const std::string body =
      "{\"op\":\"plan\",\"id\":\"q7\",\"problem\":\"p\",\"deadline_ms\":250,"
      "\"mode\":\"greedy\",\"validate\":false,\"preflight\":true,"
      "\"degrade\":false}";
  ASSERT_TRUE(wire::parse_request(body, req, err)) << err;
  EXPECT_EQ(req.id, "q7");
  EXPECT_EQ(req.deadline_ms, 250.0);
  EXPECT_EQ(req.mode, sekitei::core::PlannerOptions::Mode::Greedy);
  EXPECT_FALSE(req.validate);
  EXPECT_TRUE(req.preflight);
  EXPECT_FALSE(req.degrade);
}

TEST(ParseRequest, CpModeParsesAndRoundTrips) {
  wire::WireRequest req;
  std::string err;
  ASSERT_TRUE(wire::parse_request("{\"problem\":\"p\",\"mode\":\"cp\"}", req, err))
      << err;
  EXPECT_EQ(req.mode, sekitei::core::PlannerOptions::Mode::Cp);

  wire::WireRequest out;
  out.problem_text = "p";
  out.mode = sekitei::core::PlannerOptions::Mode::Cp;
  wire::WireRequest back;
  ASSERT_TRUE(wire::parse_request(wire::render_request(out), back, err)) << err;
  EXPECT_EQ(back.mode, sekitei::core::PlannerOptions::Mode::Cp);
}

TEST(ParseRequest, IntrospectionOpsNeedNoProblem) {
  wire::WireRequest req;
  std::string err;
  ASSERT_TRUE(wire::parse_request("{\"op\":\"healthz\"}", req, err));
  EXPECT_EQ(req.op, wire::WireRequest::Op::Healthz);
  ASSERT_TRUE(wire::parse_request("{\"op\":\"stats\"}", req, err));
  EXPECT_EQ(req.op, wire::WireRequest::Op::Stats);
}

TEST(ParseRequest, Errors) {
  wire::WireRequest req;
  std::string err;
  EXPECT_FALSE(wire::parse_request("not json", req, err));
  EXPECT_NE(err.find("malformed JSON"), std::string::npos);
  EXPECT_FALSE(wire::parse_request("[1,2]", req, err));
  EXPECT_FALSE(wire::parse_request("{\"op\":\"plan\"}", req, err));
  EXPECT_NE(err.find("problem"), std::string::npos);
  EXPECT_FALSE(wire::parse_request("{\"op\":\"destroy\"}", req, err));
  EXPECT_NE(err.find("unknown op"), std::string::npos);
  EXPECT_FALSE(wire::parse_request("{\"problem\":\"p\",\"mode\":\"x\"}", req, err));
  EXPECT_NE(err.find("unknown mode"), std::string::npos);
  EXPECT_FALSE(wire::parse_request("{\"problem\":42}", req, err));
  EXPECT_NE(err.find("must be a string"), std::string::npos);
  EXPECT_FALSE(wire::parse_request("{\"problem\":\"p\",\"deadline_ms\":\"no\"}", req, err));
  EXPECT_NE(err.find("must be a number"), std::string::npos);
  EXPECT_FALSE(wire::parse_request("{\"problem\":\"p\",\"validate\":1}", req, err));
  EXPECT_NE(err.find("must be a boolean"), std::string::npos);
}

TEST(RenderRequest, RoundTripsThroughParse) {
  wire::WireRequest out;
  out.id = "rt-1";
  out.problem_text = "network {\n  node n0 { cpu 1; }\n}";
  out.deadline_ms = 125.5;
  out.mode = sekitei::core::PlannerOptions::Mode::Greedy;
  out.validate = false;
  out.preflight = true;
  out.degrade = false;

  wire::WireRequest back;
  std::string err;
  ASSERT_TRUE(wire::parse_request(wire::render_request(out), back, err)) << err;
  EXPECT_EQ(back.id, out.id);
  EXPECT_EQ(back.problem_text, out.problem_text);
  EXPECT_EQ(back.deadline_ms, out.deadline_ms);
  EXPECT_EQ(back.mode, out.mode);
  EXPECT_EQ(back.validate, out.validate);
  EXPECT_EQ(back.preflight, out.preflight);
  EXPECT_EQ(back.degrade, out.degrade);

  wire::WireRequest health;
  health.op = wire::WireRequest::Op::Healthz;
  ASSERT_TRUE(wire::parse_request(wire::render_request(health), back, err));
  EXPECT_EQ(back.op, wire::WireRequest::Op::Healthz);
}

// The golden record: sekitei_serve has emitted exactly this rendering since
// the service PR, and the daemon's response frames reuse it.  A change here
// is a wire-format break — bump deliberately, never accidentally.
TEST(RenderResponse, GoldenRejectedRecord) {
  PlanResponse r = wire::make_rejected("q1", "queue full (3 pending)");
  const std::string expect =
      "{\"request\":\"q1\",\"outcome\":\"rejected\",\"ladder\":\"primary\","
      "\"cache_hit\":false,\"fingerprint\":\"0000000000000000\","
      "\"wait_ms\":0.000,\"compile_ms\":0.000,\"solve_ms\":0.000,"
      "\"failure\":\"queue full (3 pending)\",\"stats\":" +
      sekitei::core::stats_to_json(r.stats) + "}";
  EXPECT_EQ(sekitei::service::response_to_json(r), expect);
  EXPECT_EQ(wire::render_response_line(r),
            sekitei::service::response_to_json(r) + "\n");
  EXPECT_EQ(wire::render_response_frame(r),
            wire::encode_frame(sekitei::service::response_to_json(r)));
}

TEST(RenderResponse, GoldenSolvedRecordWithOptionalKeys) {
  PlanResponse r;
  r.id = "batch/tiny.sk#2";
  r.outcome = Outcome::Solved;
  r.plan.emplace();
  r.plan->cost_lb = 12.5;
  r.cache_hit = true;
  r.fingerprint = 0xdeadbeef01020304ULL;
  r.wait_ms = 1.25;
  r.compile_ms = 3.5;
  r.solve_ms = 40.125;
  r.attempts = 2;
  const std::string expect =
      "{\"request\":\"batch/tiny.sk#2\",\"outcome\":\"solved\","
      "\"ladder\":\"primary\",\"cache_hit\":true,"
      "\"fingerprint\":\"deadbeef01020304\",\"plan_actions\":0,"
      "\"cost_lb\":12.500,\"wait_ms\":1.250,\"compile_ms\":3.500,"
      "\"solve_ms\":40.125,\"attempts\":2,\"stats\":" +
      sekitei::core::stats_to_json(r.stats) + "}";
  EXPECT_EQ(sekitei::service::response_to_json(r), expect);
}

TEST(ParseRequest, RepairOpParsesThePayload) {
  wire::WireRequest req;
  std::string err;
  const std::string body =
      "{\"op\":\"repair\",\"id\":\"d1\",\"problem\":\"p\",\"echo_plan\":true,"
      "\"prior_plan\":[3,1,4],\"choices\":[0.5,1],"
      "\"damage\":{\"failed_nodes\":[\"n1\"],\"failed_links\":[[\"a\",\"b\"]],"
      "\"degraded_nodes\":[{\"node\":\"n2\",\"resource\":\"cpu\",\"capacity\":1}],"
      "\"degraded_links\":[{\"a\":\"x\",\"b\":\"y\",\"resource\":\"lbw\",\"capacity\":40}]},"
      "\"migration_penalty\":2.5,\"reconnect_factor\":0.1,\"migrate_factor\":0.4}";
  ASSERT_TRUE(wire::parse_request(body, req, err)) << err;
  EXPECT_EQ(req.op, wire::WireRequest::Op::Plan);
  EXPECT_TRUE(req.repair);
  EXPECT_TRUE(req.echo_plan);
  EXPECT_EQ(req.prior_plan, (std::vector<std::uint32_t>{3, 1, 4}));
  EXPECT_EQ(req.choices, (std::vector<double>{0.5, 1.0}));
  ASSERT_EQ(req.damage.failed_nodes.size(), 1u);
  EXPECT_EQ(req.damage.failed_nodes[0], "n1");
  ASSERT_EQ(req.damage.failed_links.size(), 1u);
  EXPECT_EQ(req.damage.failed_links[0].first, "a");
  EXPECT_EQ(req.damage.failed_links[0].second, "b");
  ASSERT_EQ(req.damage.degraded_nodes.size(), 1u);
  EXPECT_EQ(req.damage.degraded_nodes[0].node, "n2");
  EXPECT_EQ(req.damage.degraded_nodes[0].resource, "cpu");
  EXPECT_DOUBLE_EQ(req.damage.degraded_nodes[0].capacity, 1.0);
  ASSERT_EQ(req.damage.degraded_links.size(), 1u);
  EXPECT_EQ(req.damage.degraded_links[0].a, "x");
  EXPECT_EQ(req.damage.degraded_links[0].b, "y");
  EXPECT_DOUBLE_EQ(req.damage.degraded_links[0].capacity, 40.0);
  EXPECT_DOUBLE_EQ(req.migration_penalty, 2.5);
  EXPECT_DOUBLE_EQ(req.reconnect_factor, 0.1);
  EXPECT_DOUBLE_EQ(req.migrate_factor, 0.4);
}

TEST(ParseRequest, RepairPayloadErrors) {
  wire::WireRequest req;
  std::string err;
  EXPECT_FALSE(wire::parse_request(
      "{\"op\":\"repair\",\"problem\":\"p\",\"prior_plan\":[-1]}", req, err));
  EXPECT_NE(err.find("action indices"), std::string::npos);
  EXPECT_FALSE(wire::parse_request(
      "{\"op\":\"repair\",\"problem\":\"p\",\"choices\":[\"x\"]}", req, err));
  EXPECT_NE(err.find("array of numbers"), std::string::npos);
  EXPECT_FALSE(
      wire::parse_request("{\"op\":\"repair\",\"problem\":\"p\",\"damage\":3}", req, err));
  EXPECT_NE(err.find("\"damage\" must be an object"), std::string::npos);
  EXPECT_FALSE(wire::parse_request(
      "{\"op\":\"repair\",\"problem\":\"p\",\"damage\":{\"failed_links\":[[\"a\"]]}}", req,
      err));
  EXPECT_NE(err.find("endpoint-name pairs"), std::string::npos);
  EXPECT_FALSE(wire::parse_request(
      "{\"op\":\"repair\",\"problem\":\"p\",\"damage\":{\"degraded_nodes\":[{\"node\":\"\","
      "\"resource\":\"cpu\"}]}}",
      req, err));
  EXPECT_NE(err.find("degraded_nodes"), std::string::npos);
  EXPECT_FALSE(wire::parse_request("{\"op\":\"heal\",\"problem\":\"p\"}", req, err));
  EXPECT_NE(err.find("expected plan, repair, healthz, or stats"), std::string::npos);
}

TEST(RenderRequest, RepairRoundTripsThroughParse) {
  wire::WireRequest out;
  out.id = "d2";
  out.problem_text = "network {}";
  out.repair = true;
  out.echo_plan = true;
  out.prior_plan = {0, 5, 2};
  out.choices = {31.5};
  out.damage.failed_nodes = {"n3"};
  out.damage.failed_links = {{"n0", "n1"}};
  out.damage.degraded_nodes.push_back({"n2", "cpu", 1.5});
  out.damage.degraded_links.push_back({"n2", "n3", "lbw", 40.0});
  out.migration_penalty = 3.0;
  out.reconnect_factor = 0.25;
  out.migrate_factor = 0.5;

  wire::WireRequest back;
  std::string err;
  ASSERT_TRUE(wire::parse_request(wire::render_request(out), back, err)) << err;
  EXPECT_TRUE(back.repair);
  EXPECT_TRUE(back.echo_plan);
  EXPECT_EQ(back.prior_plan, out.prior_plan);
  EXPECT_EQ(back.choices, out.choices);
  EXPECT_EQ(back.damage.failed_nodes, out.damage.failed_nodes);
  EXPECT_EQ(back.damage.failed_links, out.damage.failed_links);
  ASSERT_EQ(back.damage.degraded_nodes.size(), 1u);
  EXPECT_EQ(back.damage.degraded_nodes[0].node, "n2");
  EXPECT_DOUBLE_EQ(back.damage.degraded_nodes[0].capacity, 1.5);
  ASSERT_EQ(back.damage.degraded_links.size(), 1u);
  EXPECT_EQ(back.damage.degraded_links[0].b, "n3");
  EXPECT_DOUBLE_EQ(back.migration_penalty, 3.0);
  EXPECT_DOUBLE_EQ(back.reconnect_factor, 0.25);
  EXPECT_DOUBLE_EQ(back.migrate_factor, 0.5);
}

TEST(RenderRequest, PlainPlanRenderingUnchangedUnlessEchoRequested) {
  wire::WireRequest r;
  r.id = "p1";
  r.problem_text = "p";
  // The pre-repair rendering, byte for byte: no echo_plan, no repair keys.
  EXPECT_EQ(wire::render_request(r),
            "{\"op\":\"plan\",\"id\":\"p1\",\"problem\":\"p\",\"deadline_ms\":0.000,"
            "\"mode\":\"leveled\",\"validate\":true,\"preflight\":false,"
            "\"degrade\":true}");
  r.echo_plan = true;
  EXPECT_EQ(wire::render_request(r),
            "{\"op\":\"plan\",\"id\":\"p1\",\"problem\":\"p\",\"deadline_ms\":0.000,"
            "\"mode\":\"leveled\",\"validate\":true,\"preflight\":false,"
            "\"degrade\":true,\"echo_plan\":true}");
}

// Repair responses extend the golden record with the repaired/migrations/
// reconnects/disruption/repair_cost block and the echoed plan; plain
// responses above stay byte-identical.
TEST(RenderResponse, GoldenRepairRecordWithEchoedPlan) {
  PlanResponse r;
  r.id = "drift-1";
  r.outcome = Outcome::Degraded;
  r.ladder = sekitei::service::LadderStep::FullReplan;
  r.plan.emplace();
  r.plan->cost_lb = 12.5;
  r.repair_requested = true;
  r.repaired = false;
  r.migrations = 1;
  r.reconnects = 2;
  r.disruption = 3;
  r.repair_cost = 20.25;
  r.plan_steps = {4, 7};
  r.choices = {0.5};
  const std::string expect =
      "{\"request\":\"drift-1\",\"outcome\":\"degraded\",\"ladder\":\"full_replan\","
      "\"cache_hit\":false,\"fingerprint\":\"0000000000000000\",\"plan_actions\":0,"
      "\"cost_lb\":12.500,\"repaired\":false,\"migrations\":1,\"reconnects\":2,"
      "\"disruption\":3,\"repair_cost\":20.250,\"plan_steps\":[4,7],"
      "\"choices\":[0.500],\"wait_ms\":0.000,\"compile_ms\":0.000,"
      "\"solve_ms\":0.000,\"stats\":" +
      sekitei::core::stats_to_json(r.stats) + "}";
  EXPECT_EQ(sekitei::service::response_to_json(r), expect);
}

TEST(MakeRejected, CarriesIdAndFailure) {
  const PlanResponse r = wire::make_rejected("x", "draining");
  EXPECT_EQ(r.id, "x");
  EXPECT_EQ(r.outcome, Outcome::Rejected);
  EXPECT_EQ(r.failure, "draining");
  EXPECT_FALSE(r.ok());
}
