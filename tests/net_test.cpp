// Tests for the network substrate: model invariants, topology generators
// (the GT-ITM stand-in), path queries, and serialization.
#include <gtest/gtest.h>

#include "net/export.hpp"
#include "net/generator.hpp"
#include "net/network.hpp"
#include "net/paths.hpp"
#include "support/error.hpp"

namespace sekitei::net {
namespace {

Network triangle() {
  Network n;
  NodeId a = n.add_node("a", {{"cpu", 10}});
  NodeId b = n.add_node("b", {{"cpu", 20}});
  NodeId c = n.add_node("c", {{"cpu", 30}});
  n.add_link(a, b, LinkClass::Lan, {{"lbw", 100}, {"delay", 1}});
  n.add_link(b, c, LinkClass::Wan, {{"lbw", 50}, {"delay", 10}});
  n.add_link(a, c, LinkClass::Wan, {{"lbw", 10}, {"delay", 3}});
  return n;
}

TEST(Network, NodeAndLinkAccessors) {
  Network n = triangle();
  EXPECT_EQ(n.node_count(), 3u);
  EXPECT_EQ(n.link_count(), 3u);
  EXPECT_DOUBLE_EQ(n.node(NodeId(1)).resource("cpu"), 20);
  EXPECT_DOUBLE_EQ(n.node(NodeId(1)).resource("unknown"), 0.0);
  EXPECT_EQ(n.find_node("c"), NodeId(2));
  EXPECT_FALSE(n.find_node("zzz").valid());
}

TEST(Network, LinkEndpointHelpers) {
  Network n = triangle();
  const Link& l = n.link(LinkId(0));
  EXPECT_TRUE(l.connects(NodeId(0)));
  EXPECT_EQ(l.other(NodeId(0)), NodeId(1));
  EXPECT_EQ(l.other(NodeId(1)), NodeId(0));
}

TEST(Network, IncidenceLists) {
  Network n = triangle();
  EXPECT_EQ(n.links_at(NodeId(0)).size(), 2u);
  EXPECT_EQ(n.links_at(NodeId(1)).size(), 2u);
  EXPECT_TRUE(n.find_link(NodeId(0), NodeId(2)).valid());
  EXPECT_FALSE(n.find_link(NodeId(0), NodeId(0)).valid());
}

TEST(Network, SelfLoopRejected) {
  Network n;
  NodeId a = n.add_node("a");
  EXPECT_THROW(n.add_link(a, a, LinkClass::Lan), Error);
}

TEST(Network, Connectivity) {
  Network n = triangle();
  EXPECT_TRUE(n.connected());
  n.add_node("island");
  EXPECT_FALSE(n.connected());
}

TEST(Generator, ChainShape) {
  Network n = chain({{LinkClass::Lan, 150, 1}, {LinkClass::Wan, 70, 10}}, 30);
  EXPECT_EQ(n.node_count(), 3u);
  EXPECT_EQ(n.link_count(), 2u);
  EXPECT_EQ(n.link(LinkId(0)).cls, LinkClass::Lan);
  EXPECT_EQ(n.link(LinkId(1)).cls, LinkClass::Wan);
  EXPECT_DOUBLE_EQ(n.link(LinkId(1)).resource("lbw"), 70);
}

TEST(Generator, TransitStubMatchesPaperScale) {
  TransitStubParams p;  // 3 transit + 9 stubs x 10 hosts
  Network n = transit_stub(p, 7);
  EXPECT_EQ(n.node_count(), 93u);  // the paper's Fig. 10 network size
  EXPECT_TRUE(n.connected());
}

TEST(Generator, TransitStubLinkClasses) {
  Network n = transit_stub({}, 7);
  std::size_t lan = 0, wan = 0;
  for (LinkId l : n.link_ids()) {
    if (n.link(l).cls == LinkClass::Lan) ++lan;
    if (n.link(l).cls == LinkClass::Wan) ++wan;
  }
  EXPECT_GT(lan, wan) << "stub LANs dominate";
  // Backbone + one access link per stub at minimum.
  EXPECT_GE(wan, 3u + 9u);
  for (LinkId l : n.link_ids()) {
    const double bw = n.link(l).resource("lbw");
    EXPECT_DOUBLE_EQ(bw, n.link(l).cls == LinkClass::Lan ? 150 : 70);
  }
}

TEST(Generator, TransitStubDeterministicPerSeed) {
  Network a = transit_stub({}, 42);
  Network b = transit_stub({}, 42);
  EXPECT_EQ(a.link_count(), b.link_count());
  Network c = transit_stub({}, 43);
  // Different seed, (almost surely) different wiring.
  bool differs = a.link_count() != c.link_count();
  for (std::size_t i = 0; !differs && i < a.link_count() && i < c.link_count(); ++i) {
    differs = !(a.link(LinkId(i)).a == c.link(LinkId(i)).a &&
                a.link(LinkId(i)).b == c.link(LinkId(i)).b);
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, WaxmanConnectedAcrossSeeds) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    WaxmanParams p;
    p.nodes = 40;
    Network n = waxman(p, seed);
    EXPECT_EQ(n.node_count(), 40u);
    EXPECT_TRUE(n.connected()) << "seed " << seed;
  }
}

TEST(Paths, HopDistances) {
  Network n = chain({{LinkClass::Lan, 100, 1},
                     {LinkClass::Lan, 100, 1},
                     {LinkClass::Lan, 100, 1}},
                    10);
  auto d = hop_distances(n, NodeId(0));
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[3], 3u);
}

TEST(Paths, FewestHopsReturnsOrderedPath) {
  Network n = triangle();
  auto p = fewest_hops(n, NodeId(0), NodeId(2));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes.front(), NodeId(0));
  EXPECT_EQ(p->nodes.back(), NodeId(2));
  EXPECT_EQ(p->links.size(), p->nodes.size() - 1);
  EXPECT_DOUBLE_EQ(p->weight, 1.0);  // direct a-c link
}

TEST(Paths, WeightedShortestPathPrefersLowDelay) {
  Network n = triangle();
  auto p = shortest_path(n, NodeId(0), NodeId(2),
                         [](const Link& l) { return l.resource("delay"); });
  ASSERT_TRUE(p.has_value());
  // direct a-c: delay 3; via b: 1 + 10 = 11.
  EXPECT_DOUBLE_EQ(p->weight, 3.0);
}

TEST(Paths, UnreachableReturnsNullopt) {
  Network n = triangle();
  NodeId island = n.add_node("island");
  EXPECT_FALSE(fewest_hops(n, NodeId(0), island).has_value());
}

TEST(Paths, WidestPathBandwidth) {
  Network n = triangle();
  // a->c direct: 10; a->b->c: min(100, 50) = 50.
  EXPECT_DOUBLE_EQ(widest_path_bandwidth(n, NodeId(0), NodeId(2)), 50.0);
}

TEST(Export, DotContainsAllNodesAndLinks) {
  Network n = triangle();
  const std::string dot = to_dot(n, "tri");
  EXPECT_NE(dot.find("graph tri"), std::string::npos);
  EXPECT_NE(dot.find("\"a\" -- \"b\""), std::string::npos);
  EXPECT_NE(dot.find("style=bold"), std::string::npos);  // WAN styling
}

TEST(Export, JsonRoundTripStructure) {
  Network n = triangle();
  const std::string js = to_json(n);
  EXPECT_NE(js.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(js.find("\"class\":\"WAN\""), std::string::npos);
  EXPECT_NE(js.find("\"lbw\":50"), std::string::npos);
}

}  // namespace
}  // namespace sekitei::net
