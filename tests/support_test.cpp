// Tests for the support substrate: strong ids, string interning, the
// deterministic RNG, and the sorted-vector set operations the planner's
// regression machinery is built on.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/ids.hpp"
#include "support/interner.hpp"
#include "support/retry.hpp"
#include "support/rng.hpp"
#include "support/sorted_vec.hpp"

namespace sekitei {
namespace {

TEST(Ids, DistinctTagTypesDoNotMix) {
  NodeId n(3);
  LinkId l(3);
  EXPECT_EQ(n.index(), l.index());
  // NodeId and LinkId are different types; this is a compile-time property —
  // the following would not compile:  n == l;
  static_assert(!std::is_same_v<NodeId, LinkId>);
}

TEST(Ids, InvalidByDefault) {
  NodeId n;
  EXPECT_FALSE(n.valid());
  EXPECT_TRUE(NodeId(0).valid());
  EXPECT_LT(NodeId(1), NodeId(2));
}

TEST(Ids, HashableInStdContainers) {
  std::set<PropId> s{PropId(3), PropId(1), PropId(3)};
  EXPECT_EQ(s.size(), 2u);
}

TEST(Interner, StableIdsAndRoundTrip) {
  Interner in;
  const NameId a = in.intern("cpu");
  const NameId b = in.intern("lbw");
  const NameId a2 = in.intern("cpu");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(in.str(a), "cpu");
  EXPECT_EQ(in.str(b), "lbw");
  EXPECT_EQ(in.size(), 2u);
}

TEST(Interner, FindDoesNotCreate) {
  Interner in;
  EXPECT_FALSE(in.find("nothing").valid());
  in.intern("something");
  EXPECT_TRUE(in.find("something").valid());
  EXPECT_EQ(in.size(), 1u);
}

TEST(Rng, DeterministicPerSeed) {
  SplitMix64 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  SplitMix64 a2(42), c2(43);
  EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(Rng, UniformRangesRespected) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  SplitMix64 rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(SortedVec, InsertKeepsSortedUnique) {
  std::vector<PropId> v;
  EXPECT_TRUE(sorted_insert(v, PropId(5)));
  EXPECT_TRUE(sorted_insert(v, PropId(1)));
  EXPECT_TRUE(sorted_insert(v, PropId(9)));
  EXPECT_FALSE(sorted_insert(v, PropId(5)));
  ASSERT_EQ(v.size(), 3u);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_TRUE(sorted_contains(v, PropId(9)));
  EXPECT_FALSE(sorted_contains(v, PropId(2)));
}

TEST(SortedVec, SetAlgebra) {
  const std::vector<PropId> a{PropId(1), PropId(3), PropId(5)};
  const std::vector<PropId> b{PropId(3), PropId(4)};
  EXPECT_TRUE(sorted_subset({PropId(1), PropId(5)}, a));
  EXPECT_FALSE(sorted_subset(b, a));
  EXPECT_TRUE(sorted_intersects(a, b));
  EXPECT_FALSE(sorted_intersects(a, {PropId(2), PropId(6)}));
  const auto diff = sorted_difference(a, b);
  EXPECT_EQ(diff, (std::vector<PropId>{PropId(1), PropId(5)}));
  const auto uni = sorted_union(a, b);
  EXPECT_EQ(uni.size(), 4u);
  EXPECT_TRUE(std::is_sorted(uni.begin(), uni.end()));
}

TEST(SortedVec, HashDiscriminates) {
  const std::vector<PropId> a{PropId(1), PropId(2)};
  const std::vector<PropId> b{PropId(1), PropId(3)};
  const std::vector<PropId> a2{PropId(1), PropId(2)};
  EXPECT_EQ(hash_sorted(a), hash_sorted(a2));
  EXPECT_NE(hash_sorted(a), hash_sorted(b));  // near-certain for FNV
}

TEST(SortedVec, EmptyEdgeCases) {
  const std::vector<PropId> e;
  const std::vector<PropId> a{PropId(1)};
  EXPECT_TRUE(sorted_subset(e, a));
  EXPECT_TRUE(sorted_subset(e, e));
  EXPECT_FALSE(sorted_subset(a, e));
  EXPECT_FALSE(sorted_intersects(e, a));
  EXPECT_TRUE(sorted_difference(e, a).empty());
}

TEST(Backoff, DelayWithinJitterBounds) {
  Backoff backoff({.base_ms = 5.0, .jitter = 0.5});
  for (std::uint32_t attempt = 0; attempt < 12; ++attempt) {
    const double base = 5.0 * static_cast<double>(1ULL << attempt);
    const double d = backoff.next_delay_ms(attempt);
    EXPECT_GE(d, base) << "attempt " << attempt;
    EXPECT_LT(d, base * 1.5) << "attempt " << attempt;
  }
}

TEST(Backoff, DeterministicPerSeed) {
  Backoff a({.base_ms = 2.0}, 42);
  Backoff b({.base_ms = 2.0}, 42);
  Backoff c({.base_ms = 2.0}, 43);
  bool any_diff = false;
  for (std::uint32_t k = 0; k < 8; ++k) {
    const double da = a.next_delay_ms(k);
    EXPECT_EQ(da, b.next_delay_ms(k));
    any_diff = any_diff || da != c.next_delay_ms(k);
  }
  EXPECT_TRUE(any_diff);  // different seed, different jitter stream
}

TEST(Backoff, DefaultSeedReproducesServeDriverSchedule) {
  // The batch driver drew base * 2^(k) * SplitMix64(0x5ec17e15).uniform(1, 1.5)
  // before the extraction into support/retry.hpp; the refactor must not have
  // changed a single sleep.
  SplitMix64 legacy(0x5ec17e15ULL);
  Backoff backoff({.base_ms = 5.0});
  for (std::uint32_t attempt = 0; attempt < 6; ++attempt) {
    const double expect = 5.0 * static_cast<double>(1ULL << attempt) *
                          legacy.uniform(1.0, 1.5);
    EXPECT_DOUBLE_EQ(backoff.next_delay_ms(attempt), expect);
  }
}

TEST(Backoff, HugeAttemptDoesNotOverflowTheShift) {
  Backoff backoff({.base_ms = 1.0});
  const double d = backoff.next_delay_ms(200);  // clamped to 2^63
  EXPECT_GT(d, 0.0);
  EXPECT_TRUE(std::isfinite(d));
}

}  // namespace
}  // namespace sekitei
