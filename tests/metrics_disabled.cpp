// Helper translation unit for the determinism guard in metrics_test.cpp.
//
// Compiled with -DSEKITEI_METRICS_DISABLED (see tests/CMakeLists.txt — the
// name deliberately avoids the *_test.cpp glob), so every SEKITEI_METRIC_*
// macro here folds to nothing and its arguments are never evaluated.  The
// planner library itself is still the instrumented build; the guard asserts
// that (a) the macros really compile out, (b) the metrics *classes* stay
// fully usable in a disabled TU (load-bearing uses like the engine's
// admission control never change behavior), and (c) the plan produced from
// this quiet TU is byte-identical to one produced with metrics fully live.
#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"
#include "support/metrics.hpp"

#ifndef SEKITEI_METRICS_DISABLED
#error "metrics_disabled.cpp must be compiled with -DSEKITEI_METRICS_DISABLED"
#endif

namespace sekitei::testing {

std::string plan_tiny_c_metrics_quiet(double* cost_out, int* metric_args_evaluated) {
  int evaluated = 0;
  // With the macros compiled out none of these argument expressions may run.
  SEKITEI_METRIC_INC((++evaluated, "tests.metrics_quiet.inc"));
  SEKITEI_METRIC_ADD("tests.metrics_quiet.add", static_cast<std::uint64_t>(++evaluated));
  SEKITEI_METRIC_GAUGE_SET("tests.metrics_quiet.gauge", ++evaluated);
  SEKITEI_METRIC_OBSERVE("tests.metrics_quiet.hist", static_cast<double>(++evaluated));
  SEKITEI_METRIC(metrics::registry().counter("tests.metrics_quiet.stmt").add(++evaluated));
  if (metric_args_evaluated != nullptr) *metric_args_evaluated = evaluated;

  // Direct class use must still work in a disabled TU: a local registry,
  // not the process-wide one, so this leaves no trace in snapshots.
  metrics::Registry local;
  local.counter("tests.metrics_quiet.direct").add(2);
  if (local.counter("tests.metrics_quiet.direct").value() != 2) return {};

  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  if (!r.ok()) return {};
  if (cost_out != nullptr) *cost_out = r.plan->cost_lb;
  return r.plan->str(cp);
}

}  // namespace sekitei::testing
