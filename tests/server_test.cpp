// Loopback integration tests for the planning daemon (src/server): real TCP
// on an ephemeral port, concurrent pipelined clients, protocol errors,
// quotas, idle timeouts, and the SIGTERM drain path.  The CI TSan job runs
// this suite — session teardown and out-of-order completion are exactly
// where a data race would hide.
#include <gtest/gtest.h>

#include <csignal>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/daemon.hpp"
#include "support/error.hpp"
#include "support/retry.hpp"
#include "support/signal_flag.hpp"

namespace {

using namespace sekitei;
using server::Daemon;
using server::FrameClient;
namespace wire = service::wire;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string data_file(const char* name) {
  return std::string(SEKITEI_TEST_DATA_DIR) + "/" + name;
}

std::string json_field(const std::string& body, const char* key) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t from = at + needle.size();
  const std::size_t end = body.find('"', from);
  return body.substr(from, end - from);
}

/// A daemon on an ephemeral port serving the media domain, with test-speed
/// ticks (drain and idle decisions land within tens of milliseconds).
Daemon::Options test_options() {
  Daemon::Options opt;
  opt.domain_text = slurp(data_file("media.sk"));
  opt.engine.workers = 2;
  opt.session.poll_tick_ms = 10.0;
  opt.accept_tick_ms = 10.0;
  opt.drain_deadline_ms = 2000.0;
  opt.drain_grace_ms = 2000.0;
  return opt;
}

wire::WireRequest plan_request(std::string id, const std::string& problem) {
  wire::WireRequest req;
  req.id = std::move(id);
  req.problem_text = problem;
  return req;
}

TEST(Server, HealthzAndStatsAnswer) {
  Daemon daemon(test_options());
  daemon.start();
  ASSERT_NE(daemon.port(), 0);

  FrameClient client(daemon.port());
  ASSERT_TRUE(client.send(std::string("{\"op\":\"healthz\"}")));
  ASSERT_TRUE(client.send(std::string("{\"op\":\"stats\"}")));
  std::string body;
  ASSERT_EQ(client.recv_frame(body, 5000.0), FrameClient::Recv::Frame);
  EXPECT_NE(body.find("\"healthz\":\"ok\""), std::string::npos);
  EXPECT_NE(body.find("\"sessions\":1"), std::string::npos);
  ASSERT_EQ(client.recv_frame(body, 5000.0), FrameClient::Recv::Frame);
  EXPECT_NE(body.find("\"stats\":1"), std::string::npos);
  EXPECT_NE(body.find("\"metrics\":["), std::string::npos);
  daemon.stop();
}

TEST(Server, PlansOverTheWire) {
  Daemon daemon(test_options());
  daemon.start();
  const std::string tiny = slurp(data_file("tiny.sk"));

  FrameClient client(daemon.port());
  ASSERT_TRUE(client.send(plan_request("t0", tiny)));
  std::string body;
  ASSERT_EQ(client.recv_frame(body, 20000.0), FrameClient::Recv::Frame);
  EXPECT_EQ(json_field(body, "request"), "t0");
  EXPECT_EQ(json_field(body, "outcome"), "solved");
  daemon.stop();
}

// Pipelined requests complete out of order: a slow instance submitted first
// must not block the fast one behind it — the whole point of submit_async.
TEST(Server, PipelinedResponsesArriveOutOfOrder) {
  Daemon daemon(test_options());
  daemon.start();
  const std::string slow = slurp(data_file("small.sk"));
  const std::string fast = slurp(data_file("tiny.sk"));

  FrameClient client(daemon.port());
  ASSERT_TRUE(client.send(plan_request("slow", slow)));
  ASSERT_TRUE(client.send(plan_request("fast", fast)));

  std::string first, second;
  ASSERT_EQ(client.recv_frame(first, 30000.0), FrameClient::Recv::Frame);
  ASSERT_EQ(client.recv_frame(second, 30000.0), FrameClient::Recv::Frame);
  EXPECT_EQ(json_field(first, "request"), "fast");
  EXPECT_EQ(json_field(second, "request"), "slow");
  EXPECT_EQ(json_field(first, "outcome"), "solved");
  EXPECT_EQ(json_field(second, "outcome"), "solved");
  daemon.stop();
}

TEST(Server, ConcurrentClientsEachGetTheirAnswers) {
  Daemon daemon(test_options());
  daemon.start();
  const std::string tiny = slurp(data_file("tiny.sk"));

  constexpr int kClients = 4, kPerClient = 3;
  std::vector<std::thread> threads;
  std::atomic<int> solved{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      FrameClient client(daemon.port());
      for (int i = 0; i < kPerClient; ++i) {
        ASSERT_TRUE(client.send(plan_request(
            "c" + std::to_string(c) + "-" + std::to_string(i), tiny)));
      }
      for (int i = 0; i < kPerClient; ++i) {
        std::string body;
        ASSERT_EQ(client.recv_frame(body, 30000.0), FrameClient::Recv::Frame);
        if (json_field(body, "outcome") == "solved") ++solved;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(solved.load(), kClients * kPerClient);
  // The served counter bumps after the response frame is written, so give
  // the last completion callback a beat to finish its tail.
  const auto expect_served = static_cast<std::uint64_t>(kClients * kPerClient);
  for (int i = 0; i < 1000 && daemon.requests_served() < expect_served; ++i) {
    sleep_ms(1.0);
  }
  EXPECT_EQ(daemon.requests_served(), expect_served);
  daemon.stop();
}

TEST(Server, OversizedFrameIsRejectedAndConnectionCloses) {
  Daemon::Options opt = test_options();
  opt.session.max_frame_bytes = 1024;
  Daemon daemon(std::move(opt));
  daemon.start();

  FrameClient client(daemon.port());
  ASSERT_TRUE(client.send_raw("2048\n"));  // declared size over the cap
  std::string body;
  ASSERT_EQ(client.recv_frame(body, 5000.0), FrameClient::Recv::Frame);
  EXPECT_EQ(json_field(body, "outcome"), "rejected");
  EXPECT_NE(body.find("protocol error"), std::string::npos);
  EXPECT_EQ(client.recv_frame(body, 5000.0), FrameClient::Recv::Closed);
  daemon.stop();
}

TEST(Server, MalformedBodyKeepsSessionAlive) {
  Daemon daemon(test_options());
  daemon.start();

  FrameClient client(daemon.port());
  ASSERT_TRUE(client.send(std::string("this is not json")));
  std::string body;
  ASSERT_EQ(client.recv_frame(body, 5000.0), FrameClient::Recv::Frame);
  EXPECT_EQ(json_field(body, "outcome"), "rejected");
  EXPECT_NE(body.find("bad request"), std::string::npos);
  // The framing survived, so the session did too.
  ASSERT_TRUE(client.send(std::string("{\"op\":\"healthz\"}")));
  ASSERT_EQ(client.recv_frame(body, 5000.0), FrameClient::Recv::Frame);
  EXPECT_NE(body.find("\"healthz\""), std::string::npos);
  daemon.stop();
}

TEST(Server, UnparsableProblemIsRejectedInline) {
  Daemon daemon(test_options());
  daemon.start();

  FrameClient client(daemon.port());
  ASSERT_TRUE(client.send(plan_request("bad", "network { not valid }")));
  std::string body;
  ASSERT_EQ(client.recv_frame(body, 5000.0), FrameClient::Recv::Frame);
  EXPECT_EQ(json_field(body, "request"), "bad");
  EXPECT_EQ(json_field(body, "outcome"), "rejected");
  EXPECT_NE(body.find("bad problem"), std::string::npos);
  daemon.stop();
}

TEST(Server, IdleTimeoutClosesQuietConnections) {
  Daemon::Options opt = test_options();
  opt.session.idle_timeout_ms = 100.0;
  Daemon daemon(std::move(opt));
  daemon.start();

  FrameClient client(daemon.port());
  std::string body;
  // No request sent: the daemon closes the connection once idle elapses.
  EXPECT_EQ(client.recv_frame(body, 10000.0), FrameClient::Recv::Closed);
  daemon.stop();
}

TEST(Server, PerConnectionQuotaRejectsTheExcessRequest) {
  Daemon::Options opt = test_options();
  opt.quota.per_conn_inflight = 1;
  Daemon daemon(std::move(opt));
  daemon.start();
  const std::string slow = slurp(data_file("small.sk"));
  const std::string fast = slurp(data_file("tiny.sk"));

  FrameClient client(daemon.port());
  ASSERT_TRUE(client.send(plan_request("first", slow)));
  ASSERT_TRUE(client.send(plan_request("second", fast)));

  // The second frame is processed while the first still occupies the one
  // in-flight slot, so it bounces with a quota rejection — and the client
  // is told it may retry.
  std::string body;
  ASSERT_EQ(client.recv_frame(body, 5000.0), FrameClient::Recv::Frame);
  EXPECT_EQ(json_field(body, "request"), "second");
  EXPECT_EQ(json_field(body, "outcome"), "rejected");
  EXPECT_NE(body.find("quota exceeded (conn_quota)"), std::string::npos);
  EXPECT_NE(body.find("retry"), std::string::npos);

  ASSERT_EQ(client.recv_frame(body, 30000.0), FrameClient::Recv::Frame);
  EXPECT_EQ(json_field(body, "request"), "first");
  EXPECT_EQ(json_field(body, "outcome"), "solved");
  daemon.stop();
}

TEST(Server, GlobalQuotaFairShareShrinksWithSessions) {
  server::QuotaGate gate({.per_conn_inflight = 16, .global_inflight = 8});
  gate.session_opened();
  EXPECT_EQ(gate.effective_conn_limit(), 8u);
  gate.session_opened();
  EXPECT_EQ(gate.effective_conn_limit(), 4u);
  for (int i = 0; i < 7; ++i) gate.session_opened();
  EXPECT_EQ(gate.effective_conn_limit(), 1u);  // max(1, 8/9)
  for (int i = 0; i < 8; ++i) gate.session_closed();
  EXPECT_EQ(gate.effective_conn_limit(), 8u);

  // Global slots cap admissions across connections regardless of per-conn.
  server::QuotaGate tight({.per_conn_inflight = 0, .global_inflight = 2});
  tight.session_opened();
  EXPECT_EQ(tight.try_acquire(0), server::QuotaGate::Verdict::Admitted);
  EXPECT_EQ(tight.try_acquire(1), server::QuotaGate::Verdict::Admitted);
  EXPECT_EQ(tight.try_acquire(0), server::QuotaGate::Verdict::GlobalQuota);
  tight.release();
  EXPECT_EQ(tight.try_acquire(0), server::QuotaGate::Verdict::Admitted);
}

TEST(Server, DuplicateInFlightIdIsRejected) {
  Daemon daemon(test_options());
  daemon.start();
  const std::string slow = slurp(data_file("small.sk"));

  FrameClient client(daemon.port());
  ASSERT_TRUE(client.send(plan_request("dup", slow)));
  ASSERT_TRUE(client.send(plan_request("dup", slow)));
  std::string body;
  ASSERT_EQ(client.recv_frame(body, 5000.0), FrameClient::Recv::Frame);
  EXPECT_EQ(json_field(body, "outcome"), "rejected");
  EXPECT_NE(body.find("duplicate in-flight"), std::string::npos);
  ASSERT_EQ(client.recv_frame(body, 30000.0), FrameClient::Recv::Frame);
  EXPECT_EQ(json_field(body, "outcome"), "solved");
  daemon.stop();
}

// The SIGTERM drain contract: in-flight requests are answered (finished or
// degraded within the drain budget), new plan frames bounce with "draining",
// sessions close, drain() returns, and not one request goes unanswered.
TEST(Server, SigtermDrainAnswersInFlightAndRejectsNew) {
  signal_flag::reset();
  signal_flag::install({SIGTERM});

  Daemon daemon(test_options());
  daemon.start();
  const std::string slow = slurp(data_file("small.sk"));

  FrameClient client(daemon.port());
  // Four pipelined solves on two workers keep the session in-flight well
  // past the moment the late request lands below.
  constexpr int kInflight = 4;
  for (int i = 0; i < kInflight; ++i) {
    ASSERT_TRUE(client.send(plan_request("inflight" + std::to_string(i), slow)));
  }
  sleep_ms(20.0);  // let them reach the engine

  std::raise(SIGTERM);
  ASSERT_EQ(signal_flag::fired(), SIGTERM);  // the netd main loop's trigger

  // Drain from another thread (as the daemon main loop would) while the
  // client pushes one more request into the draining session.
  std::thread drainer([&] { EXPECT_TRUE(daemon.drain()); });
  sleep_ms(10.0);  // drain() flips the flag synchronously at entry
  EXPECT_TRUE(client.send(plan_request("late", slow)));

  // Collect every response until the drained daemon closes the session.
  std::vector<std::string> frames;
  for (;;) {
    std::string body;
    const auto rc = client.recv_frame(body, 30000.0);
    if (rc != FrameClient::Recv::Frame) {
      EXPECT_EQ(rc, FrameClient::Recv::Closed);
      break;
    }
    frames.push_back(std::move(body));
  }
  drainer.join();

  int inflight_answered = 0;
  bool late_rejected = false;
  for (const std::string& f : frames) {
    const std::string id = json_field(f, "request");
    if (id.rfind("inflight", 0) == 0) {
      ++inflight_answered;
      // Answered, not dropped: solved normally or degraded/stopped by the
      // tightened drain deadline — every outcome is a response on the wire.
      EXPECT_FALSE(json_field(f, "outcome").empty()) << f;
    } else if (id == "late") {
      EXPECT_EQ(json_field(f, "outcome"), "rejected");
      EXPECT_NE(f.find("draining"), std::string::npos);
      late_rejected = true;
    }
  }
  EXPECT_EQ(inflight_answered, kInflight);
  EXPECT_TRUE(late_rejected);
  EXPECT_EQ(daemon.session_count(), 0u);
  signal_flag::reset();
}

TEST(Server, DrainWithNothingInFlightIsImmediate) {
  Daemon daemon(test_options());
  daemon.start();
  FrameClient client(daemon.port());
  // Wait until the accept loop has picked the connection up; draining
  // before that point resets the half-open connection instead of closing
  // an established session.
  while (daemon.session_count() == 0) sleep_ms(1.0);
  EXPECT_TRUE(daemon.drain());
  // Listener is gone: the session was closed and new connects are refused.
  std::string body;
  EXPECT_EQ(client.recv_frame(body, 5000.0), FrameClient::Recv::Closed);
  EXPECT_THROW(FrameClient(daemon.port()), Error);
}

TEST(Server, ProblemCacheServesRepeatsWithoutReparsing) {
  Daemon daemon(test_options());
  daemon.start();
  const std::string tiny = slurp(data_file("tiny.sk"));

  FrameClient client(daemon.port());
  // Sequential, not pipelined: concurrent repeats could both miss the
  // compiled cache while racing through compilation on separate workers.
  int cache_hits = 0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.send(plan_request("r" + std::to_string(i), tiny)));
    std::string body;
    ASSERT_EQ(client.recv_frame(body, 30000.0), FrameClient::Recv::Frame);
    EXPECT_EQ(json_field(body, "outcome"), "solved");
    if (body.find("\"cache_hit\":true") != std::string::npos) ++cache_hits;
  }
  // Same text => same LoadedProblem => same fingerprint: the engine's
  // compiled cache hits on every repeat.
  EXPECT_GE(cache_hits, 2);
  daemon.stop();
}

}  // namespace
