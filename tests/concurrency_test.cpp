// Concurrency substrate of the planning service: stop tokens (cancellation +
// deadlines), the fixed thread pool, and per-thread trace ids.
#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/stop_token.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace sekitei {
namespace {

// ---------------------------------------------------------------------------
// StopToken / StopSource

TEST(StopTokenTest, DefaultTokenNeverStops) {
  StopToken t;
  EXPECT_FALSE(t.stop_possible());
  EXPECT_FALSE(t.stop_requested());
  EXPECT_EQ(t.reason(), StopReason::None);
}

TEST(StopTokenTest, RequestStopIsVisibleToAllTokens) {
  StopSource src;
  StopToken a = src.token();
  StopToken b = src.token();
  EXPECT_TRUE(a.stop_possible());
  EXPECT_FALSE(a.stop_requested());

  src.request_stop();
  EXPECT_TRUE(a.stop_requested());
  EXPECT_TRUE(b.stop_requested());
  EXPECT_EQ(a.reason(), StopReason::Cancelled);
}

TEST(StopTokenTest, ExpiredDeadlineStops) {
  StopSource src = StopSource::with_deadline_ms(-1.0);
  EXPECT_TRUE(src.token().stop_requested());
  EXPECT_EQ(src.token().reason(), StopReason::DeadlineExceeded);
}

TEST(StopTokenTest, FarDeadlineDoesNotStop) {
  StopSource src = StopSource::with_deadline_ms(1e9);
  EXPECT_FALSE(src.token().stop_requested());
  EXPECT_EQ(src.token().reason(), StopReason::None);
}

TEST(StopTokenTest, DeadlineArmableAfterTokenWasHandedOut) {
  // The engine arms the deadline at submit time, after the caller already
  // holds tokens — the armed deadline must reach them.
  StopSource src;
  StopToken t = src.token();
  EXPECT_FALSE(t.stop_requested());
  src.arm_deadline_ms(-1.0);
  EXPECT_TRUE(t.stop_requested());
  EXPECT_EQ(t.reason(), StopReason::DeadlineExceeded);
}

TEST(StopTokenTest, CancellationWinsOverDeadline) {
  StopSource src = StopSource::with_deadline_ms(-1.0);
  src.request_stop();
  EXPECT_EQ(src.token().reason(), StopReason::Cancelled);
}

TEST(StopTokenTest, ReasonNames) {
  EXPECT_STREQ(stop_reason_name(StopReason::None), "none");
  EXPECT_STREQ(stop_reason_name(StopReason::Cancelled), "cancelled");
  EXPECT_STREQ(stop_reason_name(StopReason::DeadlineExceeded), "deadline_exceeded");
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsAllSubmittedJobs) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.worker_count(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains the queue before joining
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
}

TEST(ThreadPoolTest, QueueBuildsUpBehindABlockedWorker) {
  ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::promise<void> started;
  pool.submit([&started, open] {
    started.set_value();
    open.wait();
  });
  started.get_future().wait();  // the lone worker is now parked on the gate

  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(pool.queued(), 5u);
  EXPECT_EQ(ran.load(), 0);

  gate.set_value();
  pool.shutdown(/*drain=*/true);
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(pool.queued(), 0u);
}

TEST(ThreadPoolTest, SubmitAfterShutdownRunsInline) {
  ThreadPool pool(2);
  pool.shutdown();
  std::atomic<bool> ran{false};
  const auto caller = std::this_thread::get_id();
  std::thread::id job_thread;
  pool.submit([&] {
    job_thread = std::this_thread::get_id();
    ran.store(true);
  });
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(job_thread, caller);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();  // must not hang or crash
}

// ---------------------------------------------------------------------------
// Trace thread ids

TEST(TraceThreadIdTest, StablePerThreadAndDistinctAcrossThreads) {
  const std::uint32_t mine = trace::current_thread_id();
  EXPECT_GT(mine, 0u);
  EXPECT_EQ(trace::current_thread_id(), mine);  // stable on repeat calls

  std::uint32_t other = 0;
  std::thread([&other] { other = trace::current_thread_id(); }).join();
  EXPECT_GT(other, 0u);
  EXPECT_NE(other, mine);
}

TEST(TraceThreadIdTest, EventsRecordTheRecordingThread) {
  trace::Collector collector;
  trace::install(&collector);
  trace::instant("from-main");
  std::thread([] { trace::instant("from-worker"); }).join();
  trace::uninstall();

  const std::vector<trace::Event> events = collector.events();
  ASSERT_EQ(events.size(), 2u);
  std::uint32_t main_tid = 0, worker_tid = 0;
  for (const trace::Event& e : events) {
    if (e.name == "from-main") main_tid = e.tid;
    if (e.name == "from-worker") worker_tid = e.tid;
  }
  EXPECT_GT(main_tid, 0u);
  EXPECT_GT(worker_tid, 0u);
  EXPECT_NE(main_tid, worker_tid);

  // The Chrome trace JSON carries both tids, so the viewer shows two tracks.
  const std::string json = collector.to_json();
  EXPECT_NE(json.find("\"tid\":" + std::to_string(main_tid)), std::string::npos);
  EXPECT_NE(json.find("\"tid\":" + std::to_string(worker_tid)), std::string::npos);
}

TEST(TraceThreadIdTest, PoolWorkersGetDistinctTids) {
  trace::Collector collector;
  trace::install(&collector);
  {
    ThreadPool pool(2);
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::atomic<int> parked{0};
    // Park both workers so the two spans are guaranteed to come from two
    // different threads.
    for (int i = 0; i < 2; ++i) {
      pool.submit([&parked, open] {
        trace::instant("pool-span");
        parked.fetch_add(1);
        open.wait();
      });
    }
    while (parked.load() < 2) std::this_thread::yield();
    gate.set_value();
  }
  trace::uninstall();

  std::vector<std::uint32_t> tids;
  for (const trace::Event& e : collector.events()) {
    if (e.name == "pool-span") tids.push_back(e.tid);
  }
  ASSERT_EQ(tids.size(), 2u);
  EXPECT_NE(tids[0], tids[1]);
}

}  // namespace
}  // namespace sekitei
