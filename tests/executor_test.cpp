// Unit tests for the concrete executor (sim/executor): greedy-within-level
// choice resolution, bisection, level containment, degradable clamping, and
// resource accounting.
#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"

namespace sekitei::sim {
namespace {

using domains::media::scenario;

struct Solved {
  std::unique_ptr<domains::media::Instance> inst;
  model::CompiledProblem cp;
  core::Plan plan;
};

Solved solve_tiny(char sc) {
  Solved s;
  s.inst = domains::media::tiny();
  s.cp = model::compile(s.inst->problem, scenario(sc));
  core::Sekitei planner(s.cp);
  Executor exec(s.cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  EXPECT_TRUE(r.ok()) << r.failure;
  if (r.ok()) s.plan = *r.plan;
  return s;
}

TEST(Executor, ChoiceCountMatchesProblem) {
  Solved s = solve_tiny('C');
  Executor exec(s.cp);
  EXPECT_EQ(exec.choice_count(), 1u);  // the server's [0,200] production
}

TEST(Executor, AttemptRespectsChoiceBounds) {
  Solved s = solve_tiny('C');
  Executor exec(s.cp);
  const double too_much[] = {250.0};
  auto rep = exec.attempt(s.plan, too_much);
  EXPECT_FALSE(rep.feasible);
  EXPECT_NE(rep.failure.find("choice"), std::string::npos);
}

TEST(Executor, AttemptBelowLevelFloorFails) {
  // The plan's Splitter runs at level [90,100); producing only 50 units
  // violates the level containment check.
  Solved s = solve_tiny('C');
  Executor exec(s.cp);
  const double x[] = {50.0};
  EXPECT_FALSE(exec.attempt(s.plan, x).feasible);
}

TEST(Executor, AttemptAtLevelMaxSucceeds) {
  Solved s = solve_tiny('C');
  Executor exec(s.cp);
  const double x[] = {99.0};
  auto rep = exec.attempt(s.plan, x);
  ASSERT_TRUE(rep.feasible) << rep.failure;
  // 99 units: Z + I = 0.35*99 + 0.3*99 = 64.35 over the WAN.
  EXPECT_NEAR(rep.max_reserved(net::LinkClass::Wan), 64.35, 1e-6);
}

TEST(Executor, ExecuteMaximizesWithinLevel) {
  Solved s = solve_tiny('C');
  Executor exec(s.cp);
  auto rep = exec.execute(s.plan);
  ASSERT_TRUE(rep.feasible);
  // Greedy-within-level: reservation at the level's supremum (100 units up
  // to the level epsilon), possibly satisfied by degrading a larger choice.
  EXPECT_NEAR(rep.max_reserved(net::LinkClass::Wan), 65.0, 1e-3);
}

TEST(Executor, NodeAccountingMatchesProfile) {
  Solved s = solve_tiny('C');
  Executor exec(s.cp);
  auto rep = exec.execute(s.plan);
  ASSERT_TRUE(rep.feasible);
  // Splitter (M/5 = 20) + Zip (T/10 = 7) on the server; Unzip (Z/5 = 7) +
  // Merger (M/5 = 20) on the client: 27 CPU each at M = 100.
  ASSERT_EQ(rep.node_use.size(), 2u);
  for (const NodeUse& nu : rep.node_use) EXPECT_NEAR(nu.used, 27.0, 1e-3);
}

TEST(Executor, ActualCostIsConsistentAndAboveLowerBound) {
  Solved s = solve_tiny('C');
  Executor exec(s.cp);
  auto rep = exec.execute(s.plan);
  ASSERT_TRUE(rep.feasible);
  EXPECT_GE(rep.actual_cost, s.plan.cost_lb - 1e-9);
  // At M = 100: Sp 11 + Zip 8 + crossZ 4.5 + crossI 4 + Unzip 4.5 + Mr 11
  // + Client 1 = 44.
  EXPECT_NEAR(rep.actual_cost, 44.0, 1e-2);
}

TEST(Executor, RejectsOutOfOrderPlan) {
  // Reversing the plan consumes streams before they are produced.
  Solved s = solve_tiny('C');
  core::Plan reversed = s.plan;
  std::reverse(reversed.steps.begin(), reversed.steps.end());
  Executor exec(s.cp);
  auto rep = exec.execute(reversed);
  EXPECT_FALSE(rep.feasible);
  EXPECT_NE(rep.failure.find("never produced"), std::string::npos);
}

TEST(Executor, RejectsTruncatedPlan) {
  Solved s = solve_tiny('C');
  core::Plan cut = s.plan;
  cut.steps.pop_back();          // drop the client
  cut.steps.erase(cut.steps.begin());  // and the splitter
  Executor exec(s.cp);
  EXPECT_FALSE(exec.execute(cut).feasible);
}

TEST(Executor, FinalVarsExposeDeliveredStream) {
  Solved s = solve_tiny('C');
  Executor exec(s.cp);
  auto rep = exec.execute(s.plan);
  ASSERT_TRUE(rep.feasible);
  bool found = false;
  for (const auto& [var, val] : rep.final_vars) {
    const model::VarKey& k = s.cp.vars.key(var);
    if (k.kind == model::VarKind::IfaceProp && s.cp.iface_names[k.a] == "M" &&
        NodeId(k.b) == s.inst->client) {
      EXPECT_NEAR(val, 100.0, 1e-3);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(std::isnan(rep.final_value(rep.final_vars.front().first)));
}

TEST(Executor, ScenarioBReservesHundredOnLans) {
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, scenario('B'));
  core::Sekitei planner(cp);
  Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  ASSERT_TRUE(r.ok());
  auto rep = exec.execute(*r.plan);
  ASSERT_TRUE(rep.feasible);
  // Every LAN link on the forwarding path carries the full reservation.
  int lan_links_used = 0;
  for (const LinkUse& lu : rep.link_use) {
    if (lu.cls == net::LinkClass::Lan) {
      ++lan_links_used;
      EXPECT_NEAR(lu.used, 100.0, 1e-3);
    }
  }
  EXPECT_EQ(lan_links_used, 3);
  EXPECT_NEAR(rep.total_reserved(net::LinkClass::Lan), 300.0, 1e-2);
}

}  // namespace
}  // namespace sekitei::sim
