// Self-tests of the differential fuzzing harness (src/testing): generator
// determinism and well-formedness, metamorphic transform sanity, a small
// in-process sweep that must come back clean, and the planted-fault drill —
// a deliberately injected cost misreport must be caught by the battery and
// shrunk by the minimizer to a replayable repro.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "model/textio.hpp"
#include "support/fault.hpp"
#include "testing/fuzzer.hpp"
#include "testing/minimize.hpp"
#include "testing/oracles.hpp"
#include "testing/workload.hpp"

namespace sekitei {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Fast deterministic budgets for in-process sweeps: seeds that would search
/// longer than this classify as Unknown, which the oracles skip.
testing::OracleConfig fast_oracles() {
  testing::OracleConfig cfg;
  cfg.max_rg_expansions = 8000;
  cfg.max_slrg_sets = 16000;
  return cfg;
}

TEST(FuzzWorkload, GeneratorIsDeterministic) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const testing::GenInstance a = testing::generate(seed);
    const testing::GenInstance b = testing::generate(seed);
    EXPECT_EQ(a.domain_text(), b.domain_text()) << "seed " << seed;
    EXPECT_EQ(a.problem_text(), b.problem_text()) << "seed " << seed;
  }
  EXPECT_NE(testing::generate(1).domain_text() + testing::generate(1).problem_text(),
            testing::generate(2).domain_text() + testing::generate(2).problem_text());
}

TEST(FuzzWorkload, GeneratedInstancesParse) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const testing::GenInstance inst = testing::generate(seed);
    EXPECT_GT(inst.line_count(), 0u);
    EXPECT_NO_THROW({
      const auto lp = model::load_problem(inst.domain_text(), inst.problem_text());
      EXPECT_GE(lp->domain.component_count(), 2u) << "seed " << seed;  // Src + Snk
    }) << "seed " << seed;
  }
}

TEST(FuzzWorkload, MetamorphicTransformsStayWellFormed) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const testing::GenInstance inst = testing::generate(seed);
    const testing::GenInstance perm = inst.permuted(0xC0FFEEULL);
    EXPECT_NE(perm.problem_text(), inst.problem_text()) << "seed " << seed;
    EXPECT_NO_THROW(model::load_problem(perm.domain_text(), perm.problem_text()));
    const testing::GenInstance wide = inst.widened(1.5);
    EXPECT_NO_THROW(model::load_problem(wide.domain_text(), wide.problem_text()));
    if (const auto fine = inst.refined()) {
      EXPECT_NO_THROW(model::load_problem(fine->domain_text(), fine->problem_text()));
    }
  }
}

TEST(FuzzOracles, ParseOracleSet) {
  testing::OracleConfig cfg;
  EXPECT_TRUE(testing::parse_oracle_set("greedy,validator", cfg));
  EXPECT_TRUE(cfg.greedy);
  EXPECT_TRUE(cfg.validator);
  EXPECT_FALSE(cfg.preflight);
  EXPECT_FALSE(cfg.service);
  EXPECT_TRUE(testing::parse_oracle_set("all", cfg));
  EXPECT_TRUE(cfg.preflight && cfg.permutation && cfg.widening && cfg.refinement);
  std::string error;
  EXPECT_FALSE(testing::parse_oracle_set("greedy,bogus", cfg, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST(FuzzSweep, SmallSweepIsClean) {
  testing::FuzzParams params;
  params.seed = 1;
  params.runs = 10;
  params.oracles = fast_oracles();
  params.minimize_repros = false;
  params.out_dir = ::testing::TempDir() + "sekitei-fuzz-clean";

  const testing::FuzzStats stats = testing::fuzz(params);
  EXPECT_EQ(stats.runs, 10u);
  EXPECT_TRUE(stats.clean()) << stats.failing_runs << " failing runs";
  EXPECT_EQ(stats.disagreements, 0u);
  EXPECT_GT(stats.solved, 0u);
  EXPECT_GT(stats.oracle_checks, 0u);
  EXPECT_TRUE(stats.repro_paths.empty());
}

TEST(FuzzSweep, TimeBudgetStopsCleanly) {
  testing::FuzzParams params;
  params.seed = 1;
  params.runs = 1000;
  params.time_budget_ms = 1;  // exhausted right after the first run
  params.oracles = fast_oracles();

  const testing::FuzzStats stats = testing::fuzz(params);
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_GE(stats.runs, 1u);
  EXPECT_LT(stats.runs, 1000u);
  EXPECT_TRUE(stats.clean());
}

TEST(FuzzFault, PlantedMisreportIsCaughtAndMinimized) {
  fault::arm("fuzz.misreport", 1, fault::Mode::Fail);
  testing::FuzzParams params;
  params.seed = 1;
  params.runs = 1;
  params.oracles = fast_oracles();
  params.out_dir = ::testing::TempDir() + "sekitei-fuzz-fault";

  const testing::FuzzStats stats = testing::fuzz(params);
  fault::disarm_all();

  ASSERT_EQ(stats.runs, 1u);
  EXPECT_EQ(stats.failing_runs, 1u) << "planted misreport escaped the battery";
  ASSERT_EQ(stats.repro_paths.size(), 1u);

  // The minimizer must shrink the repro to a trivially reviewable size.
  const std::string domain_path = stats.repro_paths[0];
  const std::string stem = domain_path.substr(0, domain_path.size() - sizeof(".domain.sk") + 1);
  const std::string domain_text = slurp(domain_path);
  const std::string problem_text = slurp(stem + ".problem.sk");
  const auto count_lines = [](const std::string& s) {
    std::size_t n = 0;
    for (char c : s) n += (c == '\n') ? 1 : 0;
    return n;
  };
  EXPECT_LE(count_lines(domain_text) + count_lines(problem_text), 25u)
      << "repro did not minimize:\n"
      << domain_text << problem_text;

  // The written pair replays: clean without the fault, caught with it.
  const testing::OracleReport clean =
      testing::replay_text(domain_text, problem_text, fast_oracles());
  EXPECT_FALSE(clean.failed()) << clean.disagreements.front().detail;
  fault::arm("fuzz.misreport", 1, fault::Mode::Fail);
  const testing::OracleReport caught =
      testing::replay_text(domain_text, problem_text, fast_oracles());
  fault::disarm_all();
  EXPECT_TRUE(caught.failed());
}

TEST(FuzzMinimize, ReductionsPreserveFailurePredicate) {
  // Minimize against a synthetic predicate ("instance still has >= 2
  // components") to exercise the reduction passes without planner cost.
  const testing::GenInstance inst = testing::generate(5);
  ASSERT_GT(inst.comps.size(), 2u);
  const testing::StillFails predicate = [](const testing::GenInstance& cand) {
    if (cand.comps.size() < 2) return false;
    // Every candidate the minimizer proposes must stay parseable.
    const auto lp = model::load_problem(cand.domain_text(), cand.problem_text());
    return lp != nullptr;
  };
  const testing::MinimizeResult mr = testing::minimize(inst, predicate, 300);
  EXPECT_EQ(mr.instance.comps.size(), 2u);  // shrunk to Src + Snk exactly
  EXPECT_GT(mr.accepted, 0u);
  EXPECT_LT(mr.instance.line_count(), inst.line_count());
  EXPECT_NO_THROW(model::load_problem(mr.instance.domain_text(), mr.instance.problem_text()));
}

}  // namespace
}  // namespace sekitei
