// End-to-end tests of the concurrent planning service: content
// fingerprinting, determinism across worker counts, deadlines and
// cancellation (with partial stats), admission control, and the engine's use
// of the compiled-problem cache.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "model/fingerprint.hpp"
#include "service/engine.hpp"
#include "service/request.hpp"

namespace sekitei::service {
namespace {

namespace media = domains::media;

std::shared_ptr<const model::LoadedProblem> loaded_instance(
    std::unique_ptr<media::Instance> inst, char scenario) {
  return make_loaded(std::move(inst->domain), std::move(inst->net), std::move(inst->problem),
                     media::scenario(scenario));
}

// ---------------------------------------------------------------------------
// Fingerprints

TEST(FingerprintTest, IndependentlyBuiltIdenticalInstancesHashEqually) {
  auto a = media::tiny();
  auto b = media::tiny();
  EXPECT_EQ(model::fingerprint(a->problem, media::scenario('C')),
            model::fingerprint(b->problem, media::scenario('C')));
}

TEST(FingerprintTest, ContentPerturbationsChangeTheHash) {
  const auto base = model::fingerprint(media::tiny()->problem, media::scenario('C'));

  media::Params p;
  p.client_demand += 1.0;
  EXPECT_NE(model::fingerprint(media::tiny(p)->problem, media::scenario('C')), base);

  // Same instance, different level scenario.
  EXPECT_NE(model::fingerprint(media::tiny()->problem, media::scenario('B')), base);

  // Different network shape entirely.
  EXPECT_NE(model::fingerprint(media::small()->problem, media::scenario('C')), base);
}

// ---------------------------------------------------------------------------
// Outcomes

TEST(OutcomeTest, NamesAndExitCodes) {
  EXPECT_STREQ(outcome_name(Outcome::Solved), "solved");
  EXPECT_STREQ(outcome_name(Outcome::Infeasible), "infeasible");
  EXPECT_STREQ(outcome_name(Outcome::DeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(outcome_name(Outcome::Cancelled), "cancelled");
  EXPECT_STREQ(outcome_name(Outcome::Rejected), "rejected");

  EXPECT_EQ(outcome_exit_code(Outcome::Solved), 0);
  EXPECT_EQ(outcome_exit_code(Outcome::Infeasible), 1);
  // 2 is reserved for usage/input errors in the CLI drivers.
  EXPECT_EQ(outcome_exit_code(Outcome::DeadlineExceeded), 3);
  EXPECT_EQ(outcome_exit_code(Outcome::Cancelled), 4);
  EXPECT_EQ(outcome_exit_code(Outcome::Rejected), 5);
}

// ---------------------------------------------------------------------------
// Engine basics

TEST(ServiceTest, SolvesTheTinyInstance) {
  PlanningEngine engine({.workers = 1});
  PlanRequest req;
  req.id = "tiny";
  req.problem = loaded_instance(media::tiny(), 'C');
  const PlanResponse r = engine.plan(std::move(req));

  EXPECT_EQ(r.outcome, Outcome::Solved);
  EXPECT_TRUE(r.ok());
  ASSERT_TRUE(r.plan.has_value());
  EXPECT_FALSE(r.plan_text.empty());
  EXPECT_NE(r.fingerprint, 0u);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_GT(r.stats.rg_expansions, 0u);

  const std::string json = response_to_json(r);
  EXPECT_NE(json.find("\"request\":\"tiny\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"solved\""), std::string::npos);
  EXPECT_NE(json.find("\"stats\":{"), std::string::npos);
}

TEST(ServiceTest, PlansAreIdenticalAcrossWorkerCounts) {
  auto problem = loaded_instance(media::tiny(), 'C');

  PlanningEngine one({.workers = 1});
  PlanRequest ref_req;
  ref_req.id = "ref";
  ref_req.problem = problem;
  const PlanResponse reference = one.plan(std::move(ref_req));
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference.plan_text.empty());

  PlanningEngine eight({.workers = 8});
  std::vector<PlanningEngine::Ticket> tickets;
  for (int i = 0; i < 16; ++i) {
    PlanRequest req;
    req.id = "r" + std::to_string(i);
    req.problem = problem;
    tickets.push_back(eight.submit(std::move(req)));
  }
  for (auto& ticket : tickets) {
    const PlanResponse r = ticket.response.get();
    ASSERT_TRUE(r.ok()) << r.failure;
    // Byte-identical plan renderings: scheduling order must not leak into
    // planning decisions.
    EXPECT_EQ(r.plan_text, reference.plan_text);
    EXPECT_EQ(r.fingerprint, reference.fingerprint);
  }
}

TEST(ServiceTest, SecondIdenticalRequestHitsTheCompiledCache) {
  PlanningEngine engine({.workers = 1});
  auto problem = loaded_instance(media::tiny(), 'C');

  PlanRequest first;
  first.problem = problem;
  EXPECT_FALSE(engine.plan(std::move(first)).cache_hit);

  // Same content through a *different* LoadedProblem object: the cache keys
  // on the fingerprint, not the pointer.
  PlanRequest second;
  second.problem = loaded_instance(media::tiny(), 'C');
  EXPECT_TRUE(engine.plan(std::move(second)).cache_hit);

  const auto stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

// ---------------------------------------------------------------------------
// Deadlines & cancellation

TEST(ServiceTest, ExpiredDeadlineYieldsDeadlineExceededAndNoPlan) {
  PlanningEngine engine({.workers = 1});
  PlanRequest req;
  req.problem = loaded_instance(media::small(), 'C');
  req.deadline_ms = 1e-6;  // expires before the worker can start planning
  const PlanResponse r = engine.plan(std::move(req));

  EXPECT_EQ(r.outcome, Outcome::DeadlineExceeded);
  EXPECT_FALSE(r.plan.has_value());
  EXPECT_FALSE(r.failure.empty());
  EXPECT_EQ(outcome_exit_code(r.outcome), 3);
}

TEST(ServiceTest, EngineDefaultDeadlineApplies) {
  PlanningEngine engine({.workers = 1, .default_deadline_ms = 1e-6});
  PlanRequest req;
  req.problem = loaded_instance(media::tiny(), 'C');
  EXPECT_EQ(engine.plan(std::move(req)).outcome, Outcome::DeadlineExceeded);
}

TEST(ServiceTest, CancelledBeforeSubmitYieldsCancelled) {
  PlanningEngine engine({.workers = 1});
  PlanRequest req;
  req.problem = loaded_instance(media::tiny(), 'C');
  req.stop.request_stop();  // explicit cancel wins even with a deadline armed
  req.deadline_ms = 1e-6;
  const PlanResponse r = engine.plan(std::move(req));

  EXPECT_EQ(r.outcome, Outcome::Cancelled);
  EXPECT_FALSE(r.plan.has_value());
  EXPECT_EQ(outcome_exit_code(r.outcome), 4);
}

TEST(ServiceTest, TicketCancelStopsTheRequest) {
  PlanningEngine engine({.workers = 1});
  PlanRequest req;
  req.problem = loaded_instance(media::tiny(), 'C');
  PlanningEngine::Ticket ticket = engine.submit(std::move(req));
  ticket.cancel();  // may land before, during, or after planning
  const PlanResponse r = ticket.response.get();
  // Depending on when the cancel lands the request either finished or was
  // cancelled — both are valid; what must never happen is a hang or a
  // misclassified deadline.
  EXPECT_TRUE(r.outcome == Outcome::Solved || r.outcome == Outcome::Cancelled);
}

TEST(PlannerStopTest, MidSearchStopReturnsPartialStats) {
  // Deterministic mid-search stop: a progress observer at cadence 1 requests
  // the stop after five RG expansions.
  auto inst = media::small();
  auto cp = model::compile(inst->problem, media::scenario('C'));

  StopSource src;
  core::PlannerOptions opt;
  opt.stop = src.token();
  opt.progress_every = 1;
  int calls = 0;
  opt.progress = [&](const core::PlannerStats&) {
    if (++calls == 5) src.request_stop();
  };

  core::Sekitei planner(cp, opt);
  const core::PlanResult r = planner.plan();

  EXPECT_FALSE(r.plan.has_value());
  EXPECT_TRUE(r.stats.stopped);
  EXPECT_FALSE(r.failure.empty());
  // The partial snapshot carries the work done up to the stop.
  EXPECT_GT(r.stats.plrg_props, 0u);
  EXPECT_GT(r.stats.rg_expansions, 0u);
  EXPECT_LT(r.stats.rg_expansions, 64u);  // stopped early, not at exhaustion
}

// ---------------------------------------------------------------------------
// Admission control

TEST(ServiceTest, NullProblemIsRejected) {
  PlanningEngine engine({.workers = 1});
  PlanRequest req;
  req.id = "empty";
  const PlanResponse r = engine.plan(std::move(req));
  EXPECT_EQ(r.outcome, Outcome::Rejected);
  EXPECT_FALSE(r.failure.empty());
  EXPECT_EQ(outcome_exit_code(r.outcome), 5);
}

TEST(ServiceTest, CompileErrorYieldsRejectedAndWorkerSurvives) {
  PlanningEngine engine({.workers = 1});

  // Parses fine but fails semantic checks in compile(), which runs inside the
  // worker — the resulting sekitei::Error must come back as Rejected, not
  // terminate the process or leave the future unfulfilled.
  auto inst = media::tiny();
  inst->problem.preplaced.emplace_back("NoSuchComponent", 0);
  PlanRequest bad;
  bad.id = "bad";
  bad.problem = loaded_instance(std::move(inst), 'C');
  const PlanResponse r = engine.plan(std::move(bad));
  EXPECT_EQ(r.outcome, Outcome::Rejected);
  EXPECT_NE(r.failure.find("unknown component"), std::string::npos) << r.failure;

  // The pending slot was released and the worker is still alive: a
  // well-formed follow-up request is served normally.
  EXPECT_EQ(engine.pending(), 0u);
  PlanRequest good;
  good.id = "good";
  good.problem = loaded_instance(media::tiny(), 'C');
  EXPECT_EQ(engine.plan(std::move(good)).outcome, Outcome::Solved);
}

// ---------------------------------------------------------------------------
// Pre-flight infeasibility analysis

namespace {

/// The lint corpus's value-capped chain: logically reachable, provably
/// infeasible on producible values — search would exhaust, preflight won't.
constexpr const char* kCappedDomain = R"(
param demand = 90;
param serverCap = 60;
interface M {
  property ibw degradable;
  cross {
    M.ibw' := min(M.ibw, link.lbw);
    link.lbw -= min(M.ibw, link.lbw);
  }
  cost 1;
}
interface A {
  property x degradable;
  cross {
    A.x' := min(A.x, link.lbw);
    link.lbw -= min(A.x, link.lbw);
  }
  cost 1;
}
component Server {
  implements M;
  effects { M.ibw := serverCap; }
  cost 1;
}
component Amp {
  requires M;
  implements A;
  conditions { node.cpu >= 1; }
  effects {
    A.x := M.ibw;
    node.cpu -= 1;
  }
  cost 1;
}
component Client {
  requires A;
  conditions { A.x >= demand; }
  cost 1;
}
)";

constexpr const char* kCappedProblem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 lan { lbw 150; delay 1; }
}
problem {
  goal Client at n1;
}
scenario {
  levels M.ibw { 50 }
  levels A.x { 50 }
}
)";

std::shared_ptr<const model::LoadedProblem> loaded_from_text(const char* domain,
                                                             const char* problem) {
  return std::shared_ptr<const model::LoadedProblem>(model::load_problem(domain, problem));
}

}  // namespace

TEST(PreflightServiceTest, RejectsProvablyInfeasibleWithoutSearching) {
  PlanningEngine engine({.workers = 1});
  PlanRequest req;
  req.id = "capped";
  req.problem = loaded_from_text(kCappedDomain, kCappedProblem);
  req.preflight = true;
  const PlanResponse r = engine.plan(std::move(req));

  EXPECT_EQ(r.outcome, Outcome::Infeasible);
  EXPECT_FALSE(r.plan.has_value());
  EXPECT_TRUE(r.preflight_ran);
  EXPECT_TRUE(r.preflight_rejected);
  EXPECT_GT(r.preflight_sweeps, 0u);
  EXPECT_EQ(r.failure.rfind("SK001", 0), 0u) << r.failure;
  // The verdict came before any search: planner time and stats stay zero.
  EXPECT_EQ(r.solve_ms, 0.0);
  EXPECT_EQ(r.stats.rg_nodes, 0u);
  EXPECT_EQ(r.stats.plrg_props, 0u);
  EXPECT_EQ(engine.preflight_rejections(), 1u);

  const std::string json = response_to_json(r);
  EXPECT_NE(json.find("\"preflight_rejected\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"preflight_ms\""), std::string::npos);
}

TEST(PreflightServiceTest, EngineWideOptionAppliesToEveryRequest) {
  PlanningEngine engine({.workers = 1, .preflight = true});
  PlanRequest req;
  req.id = "capped-engine-wide";
  req.problem = loaded_from_text(kCappedDomain, kCappedProblem);
  const PlanResponse r = engine.plan(std::move(req));
  EXPECT_EQ(r.outcome, Outcome::Infeasible);
  EXPECT_TRUE(r.preflight_rejected);
}

TEST(PreflightServiceTest, FeasibleInstancePassesThroughToTheSolver) {
  PlanningEngine engine({.workers = 1});
  PlanRequest req;
  req.id = "tiny-preflight";
  req.problem = loaded_instance(media::tiny(), 'C');
  req.preflight = true;
  const PlanResponse r = engine.plan(std::move(req));
  EXPECT_EQ(r.outcome, Outcome::Solved);
  EXPECT_TRUE(r.preflight_ran);
  EXPECT_FALSE(r.preflight_rejected);
  EXPECT_EQ(engine.preflight_rejections(), 0u);
}

TEST(PreflightServiceTest, OffByDefaultAndAbsentFromTheJson) {
  PlanningEngine engine({.workers = 1});
  PlanRequest req;
  req.id = "tiny-default";
  req.problem = loaded_instance(media::tiny(), 'C');
  const PlanResponse r = engine.plan(std::move(req));
  EXPECT_EQ(r.outcome, Outcome::Solved);
  EXPECT_FALSE(r.preflight_ran);
  // With preflight off the response JSON is exactly the pre-analyzer shape:
  // no preflight_* keys at all.
  EXPECT_EQ(response_to_json(r).find("preflight"), std::string::npos);
}

TEST(PreflightServiceTest, DisabledPreflightStillAnswersInfeasibleViaSearch) {
  // Same capped instance, preflight off: the search exhausts and reaches the
  // same verdict the slow way — behaviour identical to the pre-analyzer
  // engine, with no preflight fields set.
  PlanningEngine engine({.workers = 1});
  PlanRequest req;
  req.id = "capped-no-preflight";
  req.problem = loaded_from_text(kCappedDomain, kCappedProblem);
  const PlanResponse r = engine.plan(std::move(req));
  EXPECT_EQ(r.outcome, Outcome::Infeasible);
  EXPECT_FALSE(r.preflight_ran);
  EXPECT_GT(r.stats.rg_nodes, 0u) << "the verdict must have come from the search";
}

TEST(ServiceTest, QueueFullRejectsImmediately) {
  PlanningEngine engine({.workers = 1, .max_pending = 1});

  PlanRequest slow;
  slow.id = "slow";
  slow.problem = loaded_instance(media::small(), 'C');  // long enough to occupy
  PlanningEngine::Ticket first = engine.submit(std::move(slow));

  PlanRequest second;
  second.id = "turned-away";
  second.problem = loaded_instance(media::tiny(), 'C');
  const PlanResponse rejected = engine.submit(std::move(second)).response.get();
  EXPECT_EQ(rejected.outcome, Outcome::Rejected);
  EXPECT_NE(rejected.failure.find("queue full"), std::string::npos);

  EXPECT_TRUE(first.response.get().ok());
}

}  // namespace
}  // namespace sekitei::service
