// Tests for the expression language: lexing, parsing, compilation, scalar and
// interval evaluation, profiled tables, and monotonicity analysis.
#include <gtest/gtest.h>

#include <map>

#include "expr/monotonicity.hpp"
#include "expr/parser.hpp"
#include "expr/program.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sekitei::expr {
namespace {

/// Resolves role variables to slots in spelling order of first use.
class TestResolver {
 public:
  std::uint32_t operator()(const RoleRef& ref) {
    const std::string key = ref.str();
    auto it = slots_.find(key);
    if (it != slots_.end()) return it->second;
    const std::uint32_t s = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace(key, s);
    return s;
  }
  [[nodiscard]] std::uint32_t slot(const std::string& key) const { return slots_.at(key); }
  [[nodiscard]] std::size_t count() const { return slots_.size(); }

 private:
  std::map<std::string, std::uint32_t> slots_;
};

Program compile_str(const std::string& src, TestResolver& res,
                    const ParamTable& params = {}) {
  NodePtr ast = parse_expr_string(src, params);
  return Program::compile(*ast, std::ref(res));
}

TEST(Parser, NumbersAndPrecedence) {
  TestResolver res;
  Program p = compile_str("1 + 2 * 3 - 4 / 2", res);
  EXPECT_TRUE(p.is_constant());
  EXPECT_DOUBLE_EQ(p.eval({}), 5.0);
}

TEST(Parser, ParenthesesAndUnaryMinus) {
  TestResolver res;
  Program p = compile_str("-(1 + 2) * -2", res);
  EXPECT_DOUBLE_EQ(p.eval({}), 6.0);
}

TEST(Parser, RoleVariables) {
  TestResolver res;
  Program p = compile_str("(T.ibw + I.ibw) / 5", res);
  const double slots[] = {70.0, 30.0};  // T.ibw, I.ibw in first-use order
  EXPECT_DOUBLE_EQ(p.eval(slots), 20.0);
  EXPECT_EQ(p.slot_count(), 2u);
}

TEST(Parser, PrimedVariablesAreDistinct) {
  TestResolver res;
  Program p = compile_str("M.ibw' - M.ibw", res);
  EXPECT_EQ(res.count(), 2u);
  const double slots[] = {90.0, 100.0};  // M.ibw', M.ibw
  EXPECT_DOUBLE_EQ(p.eval(slots), -10.0);
}

TEST(Parser, MinMaxBuiltins) {
  TestResolver res;
  Program p = compile_str("min(M.ibw, link.lbw) + max(1, 2)", res);
  const double slots[] = {100.0, 70.0};
  EXPECT_DOUBLE_EQ(p.eval(slots), 72.0);
}

TEST(Parser, NamedParameters) {
  TestResolver res;
  Program p = compile_str("lambda * T.ibw", res, {{"lambda", 0.25}});
  const double slots[] = {80.0};
  EXPECT_DOUBLE_EQ(p.eval(slots), 20.0);
}

TEST(Parser, UnknownParameterRaises) {
  EXPECT_THROW(parse_expr_string("bogus * 2"), Error);
}

TEST(Parser, MalformedExpressionRaises) {
  EXPECT_THROW(parse_expr_string("1 + * 2"), Error);
  EXPECT_THROW(parse_expr_string("min(1,)"), Error);
  EXPECT_THROW(parse_expr_string("(1"), Error);
}

TEST(Parser, TrailingTokensRaise) {
  EXPECT_THROW(parse_expr_string("1 + 2 3"), Error);
}

TEST(Parser, Conditions) {
  ConditionAst c = parse_condition_string("node.cpu >= (T.ibw + I.ibw) / 5");
  EXPECT_EQ(c.op, CmpOp::Ge);
  EXPECT_EQ(c.str(), "node.cpu >= ((T.ibw + I.ibw) / 5)");
}

TEST(Parser, EqualityCondition) {
  ConditionAst c = parse_condition_string("T.ibw * 3 == I.ibw * 7");
  EXPECT_EQ(c.op, CmpOp::Eq);
}

TEST(Parser, Effects) {
  Lexer lex("M.ibw' := min(M.ibw, link.lbw)");
  EffectAst e = parse_effect(lex, {});
  EXPECT_EQ(e.target.scope, "M");
  EXPECT_EQ(e.target.prop, "ibw");
  EXPECT_TRUE(e.target.primed);
  EXPECT_EQ(e.op, AssignOp::Set);
}

TEST(Parser, CompoundAssignments) {
  Lexer lex("link.lbw -= min(M.ibw, link.lbw)");
  EffectAst e = parse_effect(lex, {});
  EXPECT_EQ(e.op, AssignOp::Sub);
  EXPECT_FALSE(e.target.primed);
}

TEST(Table, PiecewiseLinearEval) {
  TestResolver res;
  // Profiled CPU usage: flat tail outside breakpoints, linear inside.
  Program p = compile_str("table(M.ibw; 0:0, 100:20, 200:60)", res);
  double slot[1];
  slot[0] = 0;
  EXPECT_DOUBLE_EQ(p.eval(slot), 0.0);
  slot[0] = 50;
  EXPECT_DOUBLE_EQ(p.eval(slot), 10.0);
  slot[0] = 150;
  EXPECT_DOUBLE_EQ(p.eval(slot), 40.0);
  slot[0] = 500;  // clamped
  EXPECT_DOUBLE_EQ(p.eval(slot), 60.0);
}

TEST(Table, NonIncreasingBreakpointsRaise) {
  EXPECT_THROW(parse_expr_string("table(M.ibw; 10:1, 10:2)"), Error);
  EXPECT_THROW(parse_expr_string("table(M.ibw; 10:1, 5:2)"), Error);
}

TEST(IntervalEval, LinearFormula) {
  TestResolver res;
  Program p = compile_str("(T.ibw + I.ibw) / 5", res);
  const Interval slots[] = {{63, 70}, {27, 30}};
  const Interval r = p.eval_interval(slots);
  EXPECT_DOUBLE_EQ(r.lo, 18.0);
  EXPECT_DOUBLE_EQ(r.hi, 20.0);
}

TEST(IntervalEval, CrossEffectFormula) {
  TestResolver res;
  Program p = compile_str("min(M.ibw, link.lbw)", res);
  const Interval slots[] = {{90, 100}, {0, 70}};
  const Interval r = p.eval_interval(slots);
  EXPECT_DOUBLE_EQ(r.lo, 0.0);
  EXPECT_DOUBLE_EQ(r.hi, 70.0);
}

TEST(IntervalEval, TableOverInterval) {
  TestResolver res;
  // Non-monotone profiled table: interior breakpoint is the max.
  Program p = compile_str("table(M.ibw; 0:0, 50:100, 100:20)", res);
  const Interval slots[] = {{10, 90}};
  const Interval r = p.eval_interval(slots);
  EXPECT_DOUBLE_EQ(r.hi, 100.0);  // hit at breakpoint x=50
  EXPECT_DOUBLE_EQ(r.lo, 20.0);   // f(10)=20, f(90)=36 -> min at x=10
}

TEST(IntervalEval, PropertySoundnessRandomized) {
  // For random formulae over random boxes, scalar evaluation at random
  // in-box points stays inside the interval result.
  TestResolver res;
  Program p = compile_str(
      "min(T.ibw, link.lbw) + max(I.ibw / 2, 3) * 2 - I.ibw / 7 + "
      "table(T.ibw; 0:0, 100:50)",
      res);
  SplitMix64 rng(7);
  for (int iter = 0; iter < 2000; ++iter) {
    Interval box[3];
    double pts[3];
    for (int v = 0; v < 3; ++v) {
      const double a = rng.uniform(0, 120), b = rng.uniform(0, 120);
      box[v] = {std::min(a, b), std::max(a, b)};
      pts[v] = rng.uniform(box[v].lo, box[v].hi);
    }
    const Interval r = p.eval_interval(box);
    const double s = p.eval(pts);
    EXPECT_LE(r.lo, s + 1e-9);
    EXPECT_GE(r.hi, s - 1e-9);
  }
}

TEST(Condition, SatisfiableVsCertain) {
  TestResolver res;
  ConditionAst ast = parse_condition_string("node.cpu >= M.ibw / 5");
  CompiledCondition c;
  c.lhs = Program::compile(*ast.lhs, std::ref(res));
  c.op = ast.op;
  c.rhs = Program::compile(*ast.rhs, std::ref(res));

  // cpu in [0,30], M in [90,100]: usage in [18,20]; satisfiable (30 >= 18)
  // but not certain (0 < 20).
  const Interval opt[] = {{0, 30}, {90, 100}};
  EXPECT_TRUE(c.satisfiable(opt));
  EXPECT_FALSE(c.certain(opt));

  // cpu exactly 30: certain.
  const Interval sure[] = {{30, 30}, {90, 100}};
  EXPECT_TRUE(c.certain(sure));

  // cpu in [0,10]: unsatisfiable (10 < 18).
  const Interval no[] = {{0, 10}, {90, 100}};
  EXPECT_FALSE(c.satisfiable(no));
}

TEST(Condition, EqualityOverIntervals) {
  TestResolver res;
  ConditionAst ast = parse_condition_string("T.ibw * 3 == I.ibw * 7");
  CompiledCondition c;
  c.lhs = Program::compile(*ast.lhs, std::ref(res));
  c.op = ast.op;
  c.rhs = Program::compile(*ast.rhs, std::ref(res));

  const Interval ok[] = {{63, 70}, {27, 30}};  // 3T in [189,210], 7I in [189,210]
  EXPECT_TRUE(c.satisfiable(ok));
  const Interval no[] = {{0, 10}, {27, 30}};  // 3T max 30 < 7I min 189
  EXPECT_FALSE(c.satisfiable(no));
}

TEST(Condition, ConcreteHoldsWithTolerance) {
  TestResolver res;
  ConditionAst ast = parse_condition_string("T.ibw * 3 == I.ibw * 7");
  CompiledCondition c;
  c.lhs = Program::compile(*ast.lhs, std::ref(res));
  c.op = ast.op;
  c.rhs = Program::compile(*ast.rhs, std::ref(res));
  const double v[] = {70.0, 30.0};
  EXPECT_TRUE(c.holds(v));
  const double w[] = {70.0, 31.0};
  EXPECT_FALSE(c.holds(w));
}

TEST(Effect, ApplyScalarAndInterval) {
  TestResolver res;
  Lexer lex("link.lbw -= min(M.ibw, link.lbw)");
  EffectAst ast = parse_effect(lex, {});
  CompiledEffect e;
  e.target = res(ast.target);
  e.op = ast.op;
  e.value = Program::compile(*ast.value, std::ref(res));

  double s[] = {150.0, 65.0};  // link.lbw, M.ibw
  e.apply(s);
  EXPECT_DOUBLE_EQ(s[0], 85.0);

  Interval iv[] = {{0, 150}, {60, 65}};
  e.apply_interval(iv);
  EXPECT_DOUBLE_EQ(iv[0].lo, -65.0);  // optimistic: worst-case consumption
  EXPECT_DOUBLE_EQ(iv[0].hi, 150.0);
}

TEST(Monotonicity, LinearCombination) {
  NodePtr ast = parse_expr_string("(T.ibw + I.ibw) / 5");
  auto dirs = analyze(*ast);
  EXPECT_EQ(dirs.at("T.ibw"), Direction::NonDecreasing);
  EXPECT_EQ(dirs.at("I.ibw"), Direction::NonDecreasing);
  EXPECT_TRUE(is_monotone(*ast));
}

TEST(Monotonicity, SubtractionFlips) {
  NodePtr ast = parse_expr_string("node.cpu - M.ibw / 5");
  auto dirs = analyze(*ast);
  EXPECT_EQ(dirs.at("node.cpu"), Direction::NonDecreasing);
  EXPECT_EQ(dirs.at("M.ibw"), Direction::NonIncreasing);
}

TEST(Monotonicity, MinOfVariables) {
  NodePtr ast = parse_expr_string("min(M.ibw, link.lbw)");
  auto dirs = analyze(*ast);
  EXPECT_EQ(dirs.at("M.ibw"), Direction::NonDecreasing);
  EXPECT_EQ(dirs.at("link.lbw"), Direction::NonDecreasing);
}

TEST(Monotonicity, VariableTimesItselfMinusIsUnknown) {
  // x - x is constant-zero mathematically but x*(x-2) genuinely non-monotone
  // over [0,inf); the syntactic analysis must flag it.
  NodePtr ast = parse_expr_string("T.ibw * (T.ibw - 2)");
  auto dirs = analyze(*ast);
  EXPECT_EQ(dirs.at("T.ibw"), Direction::Unknown);
  EXPECT_FALSE(is_monotone(*ast));
}

TEST(Monotonicity, MonotoneTableComposition) {
  NodePtr inc = parse_expr_string("table(M.ibw; 0:0, 100:20)");
  EXPECT_EQ(analyze(*inc).at("M.ibw"), Direction::NonDecreasing);
  NodePtr dec = parse_expr_string("table(M.ibw; 0:20, 100:0)");
  EXPECT_EQ(analyze(*dec).at("M.ibw"), Direction::NonIncreasing);
  NodePtr bump = parse_expr_string("table(M.ibw; 0:0, 50:10, 100:0)");
  EXPECT_EQ(analyze(*bump).at("M.ibw"), Direction::Unknown);
}

TEST(Monotonicity, DivisionByVariable) {
  NodePtr ast = parse_expr_string("T.ibw / I.ibw");
  auto dirs = analyze(*ast);
  EXPECT_EQ(dirs.at("T.ibw"), Direction::NonDecreasing);
  EXPECT_EQ(dirs.at("I.ibw"), Direction::NonIncreasing);
}

TEST(Program, UsedSlotsAndSingleVar) {
  TestResolver res;
  Program p = compile_str("T.ibw", res);
  EXPECT_EQ(p.single_var_slot(), 0u);
  Program q = compile_str("T.ibw + I.ibw", res);
  EXPECT_EQ(q.single_var_slot(), UINT32_MAX);
  EXPECT_EQ(q.used_slots().size(), 2u);
}

TEST(Lexer, CommentsAndLines) {
  Lexer lex("1 # comment\n+ 2 // another\n+ 3");
  NodePtr ast = parse_expr(lex, {});
  TestResolver res;
  Program p = Program::compile(*ast, std::ref(res));
  EXPECT_DOUBLE_EQ(p.eval({}), 6.0);
}

TEST(Lexer, ReportsLineNumbers) {
  try {
    (void)parse_expr_string("1 +\n+ @");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace sekitei::expr
