// Malformed-input corpus: every file under tests/corpus/ must make the
// loader raise sekitei::Error — never crash, hang, or silently load.  Files
// named domain_*.sk are malformed *domain* texts (paired with a valid
// problem); everything else is a malformed *problem* text (paired with a
// valid domain).  The corpus covers truncation, unknown keywords, dangling
// references and non-finite literals (1e999 overflows to inf, `nan` where a
// number is required).
//
// tests/corpus/repros/ holds the *valid* near-miss corpus: hand-minimized
// fuzzing repro pairs (<stem>.domain.sk/.problem.sk) with golden verdicts,
// replayed through the differential oracle battery (src/testing/oracles).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/textio.hpp"
#include "support/error.hpp"
#include "testing/oracles.hpp"

#ifndef SEKITEI_TEST_CORPUS_DIR
#error "SEKITEI_TEST_CORPUS_DIR must point at tests/corpus (set by CMake)"
#endif

namespace sekitei::model {
namespace {

// A minimal well-formed domain/problem pair: the half that is *not* under
// test is always valid, so a raised Error is attributable to the corpus file.
constexpr const char* kValidDomain = R"(
interface M {
  property ibw degradable;
  cross {
    M.ibw' := min(M.ibw, link.lbw);
    link.lbw -= min(M.ibw, link.lbw);
  }
  cost 1 + M.ibw / 10;
}
component Server {
  implements M;
  effects { M.ibw := 100; }
  cost 1;
}
component Client {
  requires M;
  conditions { M.ibw >= 10; }
  cost 1;
}
)";

constexpr const char* kValidProblem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 wan { lbw 70; }
}
problem {
  stream M.ibw at n0 = [0, 100];
  preplaced Server at n0;
  goal Client at n1;
}
scenario {
  levels M.ibw { 10, 100 }
}
)";

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(SEKITEI_TEST_CORPUS_DIR)) {
    if (entry.path().extension() == ".sk") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusTest, TheValidPairLoads) {
  // Guards the corpus harness itself: if this pair did not load, every
  // corpus file would "pass" for the wrong reason.
  EXPECT_NO_THROW(load_problem(kValidDomain, kValidProblem));
}

TEST(CorpusTest, TheCorpusIsNotEmpty) {
  EXPECT_GE(corpus_files().size(), 15u);
}

TEST(CorpusTest, EveryMalformedFileRaisesError) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const std::string text = slurp(path);
    const bool is_domain = path.filename().string().rfind("domain_", 0) == 0;
    if (is_domain) {
      EXPECT_THROW(load_problem(text, kValidProblem), Error);
    } else {
      EXPECT_THROW(load_problem(kValidDomain, text), Error);
    }
  }
}

// ---- repro corpus: golden verdicts for minimized fuzzing instances --------

struct ReproGolden {
  const char* stem;
  testing::Verdict optimal;
  testing::Verdict greedy;
  bool preflight_infeasible;
};

// Every pair must replay with exactly this signature AND zero oracle
// disagreements.  boundary_feasible pins the strict-floor carve-out: a
// concretely feasible plan the leveled abstraction prunes by design.
constexpr ReproGolden kReproGoldens[] = {
    {"boundary_feasible", testing::Verdict::Infeasible, testing::Verdict::Solved, true},
    {"preflight_infeasible", testing::Verdict::Infeasible, testing::Verdict::Infeasible, true},
    {"greedy_gap", testing::Verdict::Solved, testing::Verdict::Solved, false},
    // Boundary-exact optimal route: the cp oracle (run inside replay_text)
    // pins the CP branch-and-bound to the RG's optimum on this pair.
    {"cp_nearmiss", testing::Verdict::Solved, testing::Verdict::Solved, false},
};

TEST(ReproCorpus, GoldenVerdictsHold) {
  const std::filesystem::path dir =
      std::filesystem::path(SEKITEI_TEST_CORPUS_DIR) / "repros";
  for (const ReproGolden& g : kReproGoldens) {
    SCOPED_TRACE(g.stem);
    const std::string domain = slurp(dir / (std::string(g.stem) + ".domain.sk"));
    const std::string problem = slurp(dir / (std::string(g.stem) + ".problem.sk"));
    const sekitei::testing::OracleReport report =
        sekitei::testing::replay_text(domain, problem);
    EXPECT_EQ(report.optimal.verdict, g.optimal)
        << "got " << sekitei::testing::verdict_name(report.optimal.verdict);
    EXPECT_EQ(report.greedy.verdict, g.greedy)
        << "got " << sekitei::testing::verdict_name(report.greedy.verdict);
    EXPECT_EQ(report.preflight_infeasible, g.preflight_infeasible);
    EXPECT_FALSE(report.failed()) << report.disagreements.front().oracle << ": "
                                  << report.disagreements.front().detail;
  }
}

TEST(ReproCorpus, EveryPairIsCoveredByAGolden) {
  // A repro promoted into the corpus without a golden row is dead weight —
  // fail loudly so additions stay asserted.
  const std::filesystem::path dir =
      std::filesystem::path(SEKITEI_TEST_CORPUS_DIR) / "repros";
  std::size_t pairs = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < sizeof(".domain.sk") ||
        name.rfind(".domain.sk") != name.size() - (sizeof(".domain.sk") - 1)) {
      continue;
    }
    ++pairs;
    const std::string stem = name.substr(0, name.size() - (sizeof(".domain.sk") - 1));
    const bool known = std::any_of(std::begin(kReproGoldens), std::end(kReproGoldens),
                                   [&stem](const ReproGolden& g) { return stem == g.stem; });
    EXPECT_TRUE(known) << "repro pair '" << stem << "' has no golden verdict row";
  }
  EXPECT_EQ(pairs, std::size(kReproGoldens));
}

}  // namespace
}  // namespace sekitei::model
