// The metrics registry (support/metrics.hpp): lock-free instrument
// correctness under concurrency, log-bucket quantile accuracy bounds,
// byte-exact Prometheus / NDJSON exposition goldens, the periodic flusher,
// the search flight recorder (unit + engine-level dump), and the
// SEKITEI_METRICS_DISABLED determinism guard (tests/metrics_disabled.cpp,
// the metrics twin of the stats_log_disabled.cpp logging guard).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "service/engine.hpp"
#include "service/flight_recorder.hpp"
#include "service/request.hpp"
#include "sim/executor.hpp"
#include "support/error.hpp"
#include "support/json_reader.hpp"
#include "support/metrics.hpp"

namespace sekitei::testing {
// From metrics_disabled.cpp (compiled with -DSEKITEI_METRICS_DISABLED).
std::string plan_tiny_c_metrics_quiet(double* cost_out, int* metric_args_evaluated);
}  // namespace sekitei::testing

namespace sekitei::metrics {
namespace {

namespace media = domains::media;

// ---------------------------------------------------------------------------
// Instruments

TEST(MetricsTest, CounterIsExactUnderConcurrency) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(MetricsTest, GaugeAddReturnsPostAddValue) {
  Gauge g;
  EXPECT_EQ(g.add(3), 3);   // the reserve-then-check idiom depends on this
  EXPECT_EQ(g.add(-1), 2);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  EXPECT_EQ(g.add(1), -6);
}

TEST(MetricsTest, HistogramCountAndSumAreExactUnderConcurrency) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 25'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.observe(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  // Sums of small integers are exact in double, and the CAS loop must not
  // lose increments.
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kPerThread));
}

TEST(MetricsTest, QuantileWithinLogBucketBound) {
  // With buckets_per_octave = 4 a bucket spans a 2^(1/4) ratio, so the
  // geometric-midpoint estimate is within a factor 2^(1/8) of any value in
  // the bucket; assert the looser full-bucket bound.
  const double kBound = std::exp2(0.25) + 1e-9;
  for (const double v : {0.002, 0.5, 12.7, 340.0, 5000.0}) {
    Histogram h;
    for (int i = 0; i < 1000; ++i) h.observe(v);
    for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
      const double est = h.quantile(q);
      EXPECT_LE(est / v, kBound) << "v=" << v << " q=" << q;
      EXPECT_LE(v / est, kBound) << "v=" << v << " q=" << q;
    }
  }
}

TEST(MetricsTest, QuantilesAreMonotonicAndEdgesClamp) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));  // 1..1000 ms
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  const double bound = std::exp2(0.25) + 1e-9;
  EXPECT_LE(p50 / 500.0, bound);
  EXPECT_LE(500.0 / p50, bound);
  // Below-min values land in bucket 0 and report min; overflow reports max.
  Histogram edges;
  edges.observe(1e-9);
  edges.observe(1e9);
  EXPECT_DOUBLE_EQ(edges.quantile(0.0), edges.options().min);
  EXPECT_DOUBLE_EQ(edges.quantile(1.0), edges.options().max);
}

TEST(MetricsTest, ExactBucketBoundaryBelongsToItsBucket) {
  Histogram h;
  const double min = h.options().min;
  h.observe(min);                     // == bound of bucket 0
  h.observe(min * std::exp2(0.25));   // == upper bound of bucket 1
  EXPECT_EQ(h.bucket_value(0), 1u);
  EXPECT_EQ(h.bucket_value(1), 1u);
  EXPECT_EQ(h.bucket_value(2), 0u);
}

// ---------------------------------------------------------------------------
// Registry

TEST(MetricsTest, RegistryReturnsSameInstrumentAndNormalizesLabelOrder) {
  Registry reg;
  Counter& a = reg.counter("x.hits", {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.counter("x.hits", {{"b", "2"}, {"a", "1"}});  // sorted == same series
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
  Counter& c = reg.counter("x.hits", {{"a", "1"}, {"b", "3"}});  // different value
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsTest, RegistryKindMismatchRaises) {
  Registry reg;
  reg.counter("x.series");
  EXPECT_THROW(reg.gauge("x.series"), Error);
  EXPECT_THROW(reg.histogram("x.series"), Error);
}

Registry& golden_registry(Registry& reg) {
  reg.counter("demo.hits").add(3);
  reg.gauge("demo.depth", {{"engine", "0"}}).set(-2);
  Histogram& h = reg.histogram("demo.ms");
  h.observe(1e-3);     // bucket 0 (v <= min)
  h.observe(70000.0);  // overflow (> max)
  return reg;
}

TEST(MetricsTest, NdjsonGolden) {
  Registry reg;
  const std::string got = golden_registry(reg).to_ndjson(/*ts_ms=*/0);
  EXPECT_EQ(got,
            "{\"metric\":\"demo.depth\",\"type\":\"gauge\",\"labels\":{\"engine\":\"0\"},"
            "\"value\":-2}\n"
            "{\"metric\":\"demo.hits\",\"type\":\"counter\",\"value\":3}\n"
            "{\"metric\":\"demo.ms\",\"type\":\"histogram\",\"count\":2,\"sum\":70000.001,"
            "\"p50\":0.001,\"p90\":65536.000,\"p99\":65536.000,"
            "\"buckets\":[[0.001,1],[\"inf\",1]]}\n");
  // Every line is valid JSON; a nonzero timestamp is stamped on each line.
  const std::string stamped = reg.to_ndjson(/*ts_ms=*/42);
  std::size_t start = 0, lines = 0;
  while (start < stamped.size()) {
    const std::size_t end = stamped.find('\n', start);
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(stamped.substr(start, end - start), v, &err)) << err;
    const json::Value* ts = v.find("ts_ms");
    ASSERT_NE(ts, nullptr);
    EXPECT_EQ(ts->number, 42.0);
    start = end + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 3u);
}

TEST(MetricsTest, PrometheusGolden) {
  Registry reg;
  EXPECT_EQ(golden_registry(reg).to_prometheus(),
            "# TYPE demo_depth gauge\n"
            "demo_depth{engine=\"0\"} -2\n"
            "# TYPE demo_hits counter\n"
            "demo_hits 3\n"
            "# TYPE demo_ms histogram\n"
            "demo_ms_bucket{le=\"0.001\"} 1\n"
            "demo_ms_bucket{le=\"+Inf\"} 2\n"
            "demo_ms_sum 70000.001\n"
            "demo_ms_count 2\n");
}

TEST(MetricsTest, FlusherWritesPeriodicAndFinalSnapshots) {
  Registry reg;
  reg.counter("flush.events").add(5);
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  {
    Flusher flusher(reg, tmp, /*period_ms=*/5.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    flusher.stop();
    flusher.stop();  // idempotent
  }
  std::rewind(tmp);
  char buf[512];
  std::size_t lines = 0;
  while (std::fgets(buf, sizeof buf, tmp) != nullptr) {
    std::string line(buf);
    if (!line.empty() && line.back() == '\n') line.pop_back();
    json::Value v;
    ASSERT_TRUE(json::parse(line, v)) << line;
    EXPECT_NE(v.find("metric"), nullptr);
    EXPECT_NE(v.find("ts_ms"), nullptr);
    ++lines;
  }
  std::fclose(tmp);
  // stop() always writes a final snapshot even if the period never elapsed.
  EXPECT_GE(lines, 1u);
}

// ---------------------------------------------------------------------------
// Macros (compile-out behavior is guarded by metrics_disabled.cpp; here we
// only check the live side, and skip when this TU itself is built disabled).

#ifndef SEKITEI_METRICS_DISABLED
TEST(MetricsTest, MacrosReportIntoTheProcessRegistry) {
  Registry& reg = registry();
  SEKITEI_METRIC_INC("tests.metrics_live.inc");
  SEKITEI_METRIC_INC("tests.metrics_live.inc");
  SEKITEI_METRIC_ADD("tests.metrics_live.add", 5);
  SEKITEI_METRIC_GAUGE_SET("tests.metrics_live.gauge", -3);
  SEKITEI_METRIC_OBSERVE("tests.metrics_live.hist", 12.5);
  EXPECT_EQ(reg.counter("tests.metrics_live.inc").value(), 2u);
  EXPECT_EQ(reg.counter("tests.metrics_live.add").value(), 5u);
  EXPECT_EQ(reg.gauge("tests.metrics_live.gauge").value(), -3);
  EXPECT_EQ(reg.histogram("tests.metrics_live.hist").count(), 1u);
}
#endif

TEST(MetricsTest, DisabledTuEvaluatesNoArgsAndPlansIdentically) {
  int evaluated = -1;
  double quiet_cost = 0.0;
  const std::string quiet = testing::plan_tiny_c_metrics_quiet(&quiet_cost, &evaluated);
  EXPECT_EQ(evaluated, 0) << "SEKITEI_METRIC_* arguments ran in a disabled TU";
  ASSERT_FALSE(quiet.empty());

  auto inst = media::tiny();
  auto cp = model::compile(inst->problem, media::scenario('C'));
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto live = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live.plan->str(cp), quiet);
  EXPECT_DOUBLE_EQ(live.plan->cost_lb, quiet_cost);
}

}  // namespace
}  // namespace sekitei::metrics

// ---------------------------------------------------------------------------
// Flight recorder

namespace sekitei::service {
namespace {

namespace media = domains::media;

std::shared_ptr<const model::LoadedProblem> loaded_instance(
    std::unique_ptr<media::Instance> inst, char scenario) {
  return make_loaded(std::move(inst->domain), std::move(inst->net), std::move(inst->problem),
                     media::scenario(scenario));
}

core::PlannerStats stats_at(std::uint64_t expansions) {
  core::PlannerStats s;
  s.rg_expansions = expansions;
  s.rg_nodes = expansions * 2;
  s.rg_open_left = expansions / 2;
  return s;
}

TEST(FlightRecorderTest, RingKeepsTheLatestSamples) {
  FlightRecorder rec(/*capacity=*/4);
  for (std::uint64_t i = 1; i <= 10; ++i) rec.record(stats_at(i));
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);
  const auto samples = rec.samples();
  ASSERT_EQ(samples.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(samples[i].expansions, 7 + i) << "oldest-first order";
  }
}

TEST(FlightRecorderTest, NdjsonDumpParsesAndCarriesHeaderCounts) {
  FlightRecorder rec(/*capacity=*/8);
  for (std::uint64_t i = 1; i <= 3; ++i) rec.record(stats_at(i));
  const std::string dump = rec.to_ndjson("req with \"quotes\"", "deadline_exceeded");
  std::vector<json::Value> lines;
  std::size_t start = 0;
  while (start < dump.size()) {
    const std::size_t end = dump.find('\n', start);
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(dump.substr(start, end - start), v, &err)) << err;
    lines.push_back(std::move(v));
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 4u);  // header + 3 samples
  EXPECT_EQ(lines[0].find("flight")->str, "req with \"quotes\"");
  EXPECT_EQ(lines[0].find("outcome")->str, "deadline_exceeded");
  EXPECT_EQ(lines[0].find("samples")->number, 3.0);
  EXPECT_EQ(lines[0].find("recorded")->number, 3.0);
  EXPECT_EQ(lines[0].find("capacity")->number, 8.0);
  EXPECT_EQ(lines[2].find("expansions")->number, 2.0);
  EXPECT_NE(lines[1].find("frontier_f"), nullptr);
}

TEST(FlightRecorderTest, EngineDumpsToSinkOnCutShortSearch) {
  std::mutex mu;
  std::vector<std::string> dumps;
  PlanningEngine::Options opts;
  opts.workers = 1;
  opts.flight_sink = [&](const std::string& ndjson) {
    std::lock_guard<std::mutex> lock(mu);
    dumps.push_back(ndjson);
  };
  PlanningEngine engine(opts);

  PlanRequest req;
  req.id = "flight-cancel";
  req.problem = loaded_instance(media::small(), 'C');
  req.progress_every = 1;  // sample (and cancel) on the very first expansion
  StopSource stop = req.stop;
  req.progress = [stop](const core::PlannerStats&) mutable { stop.request_stop(); };
  const PlanResponse r = engine.plan(std::move(req));
  EXPECT_EQ(r.outcome, Outcome::Cancelled);

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(dumps.size(), 1u);
  json::Value header;
  const std::string first = dumps[0].substr(0, dumps[0].find('\n'));
  ASSERT_TRUE(json::parse(first, header));
  EXPECT_EQ(header.find("flight")->str, "flight-cancel");
  EXPECT_EQ(header.find("outcome")->str, "cancelled");
  // The recorder hooks the progress callback, which ran at least once (it is
  // what delivered the cancel), so the ring cannot be empty.
  EXPECT_GE(header.find("samples")->number, 1.0);
}

TEST(FlightRecorderTest, EngineWritesDumpFileAndSolvedStaysQuiet) {
  const std::string dir = ::testing::TempDir();
  PlanningEngine::Options opts;
  opts.workers = 1;
  opts.flight_dir = dir;
  PlanningEngine engine(opts);

  // Expired deadline: answered before planning starts, still dumped (header
  // only) because the outcome is not solved.  The id's '#' and '/' must be
  // sanitized out of the file name.
  PlanRequest dead;
  dead.id = "queue/req#1";
  dead.problem = loaded_instance(media::tiny(), 'C');
  dead.deadline_ms = 1e-6;
  EXPECT_EQ(engine.plan(std::move(dead)).outcome, Outcome::DeadlineExceeded);
  std::ifstream in(dir + "/queue_req_1.flight.ndjson");
  ASSERT_TRUE(in.good());
  std::string header_line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header_line)));
  json::Value header;
  ASSERT_TRUE(json::parse(header_line, header));
  EXPECT_EQ(header.find("outcome")->str, "deadline_exceeded");
  EXPECT_EQ(header.find("samples")->number, 0.0);

  // A solved request must not leave a dump behind.
  PlanRequest good;
  good.id = "solved-req";
  good.problem = loaded_instance(media::tiny(), 'C');
  EXPECT_EQ(engine.plan(std::move(good)).outcome, Outcome::Solved);
  EXPECT_FALSE(std::ifstream(dir + "/solved-req.flight.ndjson").good());
}

}  // namespace
}  // namespace sekitei::service
