// Cross-cutting randomized property tests over generated problem instances.
//
// For random chain/diamond topologies with random demands, capacities and
// level choices, the planner stack must uphold its core contracts:
//   * every returned plan executes concretely (the executor re-proves it);
//   * the realized cost never undercuts the plan's lower bound;
//   * the delivered stream meets the demand;
//   * the leveled planner succeeds whenever the greedy baseline does
//     (levels only ever *add* plans, Section 3's central claim);
//   * per-link reservations never exceed capacity.
#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"
#include "spec/levels.hpp"
#include "support/interval.hpp"
#include "support/rng.hpp"

namespace sekitei {
namespace {

struct RandomCase {
  domains::media::Params params;
  std::uint32_t lan_before = 1;
  std::uint32_t lan_after = 1;
  std::vector<double> cuts;
};

RandomCase draw(SplitMix64& rng) {
  RandomCase c;
  c.params.client_demand = 40.0 + 10.0 * static_cast<double>(rng.next_below(10));  // 40..130
  c.params.server_cap = c.params.client_demand + 20.0 + rng.uniform(0, 100);
  c.params.wan_bw = rng.uniform(30, 160);
  c.params.lan_bw = rng.uniform(80, 200);
  c.params.node_cpu = rng.uniform(10, 60);
  c.lan_before = static_cast<std::uint32_t>(rng.next_below(3));
  c.lan_after = static_cast<std::uint32_t>(rng.next_below(2));
  // Levels bracketing the demand plus one coarser cut.
  c.cuts = {c.params.client_demand, c.params.client_demand + 10.0 + rng.uniform(0, 30)};
  return c;
}

struct Outcome {
  bool planned = false;
  bool executed = false;
  double cost_lb = 0;
  double actual = 0;
  double delivered = 0;
  bool capacity_ok = true;
};

Outcome run(const RandomCase& c, core::PlannerOptions::Mode mode) {
  Outcome out;
  auto inst = domains::media::chain_instance(c.lan_before, c.lan_after, c.params);
  const auto scenario = mode == core::PlannerOptions::Mode::Greedy
                            ? domains::media::scenario('A')
                            : domains::media::scenario_with_cuts(c.cuts);
  auto cp = model::compile(inst->problem, scenario);
  core::PlannerOptions opt;
  opt.mode = mode;
  // Bounded search keeps the randomized sweep fast; instances here are tiny
  // (<= 6 nodes), so the budget is generous relative to the real need.
  opt.max_rg_expansions = 60000;
  opt.max_slrg_sets = 120000;
  core::Sekitei planner(cp, opt);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  out.planned = r.ok();
  if (!r.ok()) return out;
  out.cost_lb = r.plan->cost_lb;

  auto rep = exec.execute(*r.plan);
  out.executed = rep.feasible;
  out.actual = rep.actual_cost;
  for (const auto& [var, val] : rep.final_vars) {
    const model::VarKey& k = cp.vars.key(var);
    if (k.kind == model::VarKind::IfaceProp && cp.iface_names[k.a] == "M" &&
        NodeId(k.b) == inst->client) {
      out.delivered = val;
    }
  }
  for (const auto& lu : rep.link_use) {
    const double cap = inst->net.link(lu.link).resource("lbw");
    if (lu.used > cap + 1e-6) out.capacity_ok = false;
  }
  return out;
}

TEST(RandomInstances, PlansAlwaysExecuteAndMeetDemand) {
  SplitMix64 rng(2024);
  int planned = 0;
  for (int iter = 0; iter < 40; ++iter) {
    RandomCase c = draw(rng);
    Outcome o = run(c, core::PlannerOptions::Mode::Leveled);
    if (!o.planned) continue;  // infeasible instances are fine
    ++planned;
    EXPECT_TRUE(o.executed) << "iter " << iter;
    EXPECT_GE(o.actual + 1e-6, o.cost_lb) << "iter " << iter;
    EXPECT_GE(o.delivered + 1e-6, c.params.client_demand) << "iter " << iter;
    EXPECT_TRUE(o.capacity_ok) << "iter " << iter;
  }
  // The generator parameters make a healthy fraction feasible.
  EXPECT_GE(planned, 10);
}

TEST(RandomInstances, LeveledDominatesGreedy) {
  // "This extension allows the planner to find a solution in some resource
  //  constrained situations where the traditional approach fails" — and
  //  never the other way around.
  SplitMix64 rng(77);
  int greedy_ok = 0, leveled_ok = 0;
  for (int iter = 0; iter < 30; ++iter) {
    RandomCase c = draw(rng);
    Outcome greedy = run(c, core::PlannerOptions::Mode::Greedy);
    Outcome leveled = run(c, core::PlannerOptions::Mode::Leveled);
    greedy_ok += greedy.planned;
    leveled_ok += leveled.planned;
    if (greedy.planned) {
      EXPECT_TRUE(leveled.planned)
          << "iter " << iter << ": greedy found a plan but the leveled planner did not";
    }
  }
  EXPECT_GE(leveled_ok, greedy_ok);
}

TEST(RandomInstances, TighterDemandNeverCheapens) {
  // Raising the client demand (with the same bracketed levels) can only
  // raise — never lower — the optimal cost.
  SplitMix64 rng(5);
  for (int iter = 0; iter < 12; ++iter) {
    RandomCase base = draw(rng);
    RandomCase tight = base;
    tight.params.client_demand += 10.0;
    tight.cuts = {tight.params.client_demand, tight.params.client_demand + 20.0};
    Outcome lo = run(base, core::PlannerOptions::Mode::Leveled);
    Outcome hi = run(tight, core::PlannerOptions::Mode::Leveled);
    if (lo.planned && hi.planned) {
      EXPECT_GE(hi.actual + 1e-6, lo.cost_lb) << "iter " << iter;
    }
    if (!lo.planned) {
      EXPECT_FALSE(hi.planned) << "iter " << iter
                               << ": higher demand cannot be feasible when lower is not";
    }
  }
}

TEST(RandomInstances, DeterministicAcrossRuns) {
  SplitMix64 rng(99);
  const RandomCase c = draw(rng);
  Outcome a = run(c, core::PlannerOptions::Mode::Leveled);
  Outcome b = run(c, core::PlannerOptions::Mode::Leveled);
  EXPECT_EQ(a.planned, b.planned);
  if (a.planned) {
    EXPECT_DOUBLE_EQ(a.cost_lb, b.cost_lb);
    EXPECT_DOUBLE_EQ(a.actual, b.actual);
    EXPECT_DOUBLE_EQ(a.delivered, b.delivered);
  }
}

// ---- interval edge cases ---------------------------------------------------
// The leveling machinery leans on three awkward corners of the interval
// algebra: hulls involving empty intervals (Fig. 8 merges start from an empty
// accumulator), one-sided infinite bounds (unleveled [0, inf) resources), and
// degenerate point intervals sitting exactly on level cutpoints (the
// strict-floor boundary the fuzzing corpus pins from the planner side).

TEST(IntervalEdgeCases, EmptyHullsAreIdentity) {
  const Interval e = Interval::empty();
  const Interval x{3.0, 7.0, /*hi_open=*/true};
  EXPECT_TRUE(e.is_empty());
  EXPECT_EQ(hull(e, x), x);
  EXPECT_EQ(hull(x, e), x);
  EXPECT_TRUE(hull(e, e).is_empty());
  // Every empty representation compares equal, whatever its bounds.
  EXPECT_EQ(e, (Interval{5.0, 5.0, /*hi_open=*/true}));
  // hull() with an empty side must preserve the other side's openness.
  EXPECT_TRUE(hull(e, x).hi_open);

  // Intersections that *produce* empty: disjoint, and touching-but-open.
  EXPECT_TRUE(intersect({0.0, 3.0}, {4.0, 9.0}).is_empty());
  const Interval touch = intersect({0.0, 5.0, /*hi_open=*/true}, {5.0, 10.0});
  EXPECT_TRUE(touch.is_empty());  // [5, 5) — lo == hi with an open top
  // ...and the closed variant keeps exactly the shared point.
  EXPECT_EQ(intersect({0.0, 5.0}, {5.0, 10.0}), Interval::point(5.0));
}

TEST(IntervalEdgeCases, OneSidedInfiniteBounds) {
  const Interval ray = Interval::nonneg();  // [0, inf)
  EXPECT_TRUE(ray.contains(0.0));
  EXPECT_TRUE(ray.contains(1e308));
  EXPECT_EQ(ray.sup_value(), kInf);  // no margin is shaved off an infinite top

  // Arithmetic keeps the infinite side infinite and the finite side exact.
  EXPECT_EQ((ray + Interval::point(5.0)), (Interval{5.0, kInf}));
  EXPECT_EQ((ray - Interval::point(5.0)), (Interval{-5.0, kInf}));
  // 0 * inf arises when scaling an unleveled resource; it must collapse to 0,
  // not poison the range with nan.
  EXPECT_EQ(ray * Interval::point(0.0), Interval::point(0.0));
  // A divisor interval straddling zero widens to the whole line.
  const Interval whole = Interval::point(1.0) / Interval{-1.0, 1.0};
  EXPECT_EQ(whole.lo, -kInf);
  EXPECT_EQ(whole.hi, kInf);
  // Division by the exact point 0 is empty, not infinite.
  EXPECT_TRUE((Interval::point(1.0) / Interval::point(0.0)).is_empty());

  // Meets and joins against the ray reduce to the finite operand's bounds.
  const Interval band{10.0, 20.0, /*hi_open=*/true};
  EXPECT_EQ(intersect(ray, band), band);
  EXPECT_EQ(imin(ray, band).hi, 20.0);
  EXPECT_TRUE(imin(ray, band).hi_open);
  EXPECT_EQ(imax(ray, band).hi, kInf);
}

TEST(IntervalEdgeCases, DegenerateSinglePointCutpointIntervals) {
  const spec::LevelSet levels({70.0, 90.0});  // [0,70) [70,90) [90,inf)
  const Interval mid = levels.interval(1);
  EXPECT_TRUE(mid.hi_open);
  EXPECT_EQ(levels.interval(2).hi, kInf);

  // A value landing exactly on a cutpoint belongs to the level *above* it...
  EXPECT_EQ(levels.level_of(70.0), 1u);
  EXPECT_EQ(levels.level_of(70.0 - 1e-9), 0u);
  const Interval at_cut = Interval::point(70.0);
  EXPECT_TRUE(at_cut.is_point());
  EXPECT_TRUE(mid.contains(70.0));
  EXPECT_TRUE(spec::level_matches(mid, at_cut));
  // ...but under strict-floor output assignment it cannot claim that level:
  // the computed range must reach strictly past the floor (Fig. 7's pruning;
  // tests/corpus/repros/boundary_feasible.* pins the planner-level fallout).
  EXPECT_FALSE(spec::level_matches(mid, at_cut, /*strict_floor=*/true));
  // The floor of the bottom level (0) is exempt from strict-floor pruning.
  EXPECT_TRUE(spec::level_matches(levels.interval(0), Interval::point(0.0),
                                  /*strict_floor=*/true));
  // An open-topped range approaching the cutpoint never reaches the floor at
  // all — [60, 70) stays in the level below.
  const Interval below{60.0, 70.0, /*hi_open=*/true};
  EXPECT_FALSE(spec::level_matches(mid, below));
  EXPECT_TRUE(spec::level_matches(levels.interval(0), below));

  // A point interval's sup is the point itself; an open top shaves a margin.
  EXPECT_EQ(at_cut.sup_value(), 70.0);
  EXPECT_LT(below.sup_value(), 70.0);
  // Adjacent cutpoint intervals are disjoint over the reals: their meet is
  // the degenerate empty [70, 70).
  EXPECT_TRUE(intersect(levels.interval(0), mid).is_empty());
}

}  // namespace
}  // namespace sekitei
