// Tests for the secure service-composition domain: qualitative (security)
// cross-conditions driving auxiliary component injection.
#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "domains/services.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"

namespace sekitei {
namespace {

using domains::services::Params;

struct Solved {
  std::unique_ptr<domains::services::Instance> inst;
  model::CompiledProblem cp;
  core::PlanResult result;
};

Solved solve(const Params& p) {
  Solved s;
  s.inst = domains::services::dmz(p);
  s.cp = model::compile(s.inst->problem, domains::services::scenario(p));
  core::Sekitei planner(s.cp);
  sim::Executor exec(s.cp);
  s.result = planner.plan([&](const core::Plan& pl) { return exec.execute(pl).feasible; });
  return s;
}

int count_place(const model::CompiledProblem& cp, const core::Plan& plan,
                const std::string& comp) {
  int n = 0;
  for (ActionId a : plan.steps) {
    const model::GroundAction& act = cp.actions[a.index()];
    if (act.kind == model::ActionKind::Place &&
        cp.domain->component_at(act.spec_index).name == comp) {
      ++n;
    }
  }
  return n;
}

bool crosses_iface_over(const model::CompiledProblem& cp, const core::Plan& plan,
                        const std::string& iface, net::LinkClass cls) {
  for (ActionId a : plan.steps) {
    const model::GroundAction& act = cp.actions[a.index()];
    if (act.kind == model::ActionKind::Cross && cp.iface_names[act.spec_index] == iface &&
        cp.net->link(act.link).cls == cls) {
      return true;
    }
  }
  return false;
}

TEST(Services, DomainValidates) {
  EXPECT_NO_THROW(domains::services::make_domain());
}

TEST(Services, UntrustedWanForcesEncryption) {
  Solved s = solve({});
  ASSERT_TRUE(s.result.ok()) << s.result.failure;
  // The sensitive R stream must never cross the untrusted WAN; the encrypted
  // E stream carries it instead.
  EXPECT_FALSE(crosses_iface_over(s.cp, *s.result.plan, "R", net::LinkClass::Wan));
  EXPECT_TRUE(crosses_iface_over(s.cp, *s.result.plan, "E", net::LinkClass::Wan));
  EXPECT_EQ(count_place(s.cp, *s.result.plan, "Encryptor"), 1);
  EXPECT_EQ(count_place(s.cp, *s.result.plan, "Decryptor"), 1);
}

TEST(Services, TrustedWanSkipsEncryption) {
  Params p;
  p.trusted_wan = true;
  Solved s = solve(p);
  ASSERT_TRUE(s.result.ok()) << s.result.failure;
  // With sec 1 everywhere, the cheaper direct response wins.
  EXPECT_EQ(count_place(s.cp, *s.result.plan, "Encryptor"), 0);
  EXPECT_EQ(count_place(s.cp, *s.result.plan, "Decryptor"), 0);
  EXPECT_TRUE(crosses_iface_over(s.cp, *s.result.plan, "R", net::LinkClass::Wan));
}

TEST(Services, TrustedPlanIsCheaper) {
  Solved untrusted = solve({});
  Params p;
  p.trusted_wan = true;
  Solved trusted = solve(p);
  ASSERT_TRUE(untrusted.result.ok() && trusted.result.ok());
  EXPECT_LT(trusted.result.plan->cost_lb, untrusted.result.plan->cost_lb)
      << "the cipher pair and bandwidth overhead must cost something";
}

TEST(Services, FrontendReceivesDemandedResponse) {
  Solved s = solve({});
  ASSERT_TRUE(s.result.ok());
  sim::Executor exec(s.cp);
  auto rep = exec.execute(*s.result.plan);
  ASSERT_TRUE(rep.feasible) << rep.failure;
  double r_at_fe = 0;
  for (const auto& [var, val] : rep.final_vars) {
    const model::VarKey& k = s.cp.vars.key(var);
    if (k.kind == model::VarKind::IfaceProp && s.cp.iface_names[k.a] == "R" &&
        NodeId(k.b) == s.inst->frontend &&
        s.cp.names.str(NameId(k.c)) == "ibw") {
      r_at_fe = val;
    }
  }
  EXPECT_GE(r_at_fe, 40.0 - 1e-6);
}

TEST(Services, DemandAboveDataCapacityIsInfeasible) {
  Params p;
  p.response_demand = 70.0;  // needs 140 data > 120 cap
  Solved s = solve(p);
  EXPECT_FALSE(s.result.ok());
}

TEST(Services, EncryptionOverheadAccounted) {
  Solved s = solve({});
  ASSERT_TRUE(s.result.ok());
  sim::Executor exec(s.cp);
  auto rep = exec.execute(*s.result.plan);
  ASSERT_TRUE(rep.feasible);
  // The WAN carries E = R * 1.25; find the WAN reservation and check the
  // ratio against the delivered response.
  double wan_used = rep.max_reserved(net::LinkClass::Wan);
  double r_at_gw2 = 0;
  for (const auto& [var, val] : rep.final_vars) {
    const model::VarKey& k = s.cp.vars.key(var);
    if (k.kind == model::VarKind::IfaceProp && s.cp.iface_names[k.a] == "R" &&
        NodeId(k.b) == s.inst->gateway2 && s.cp.names.str(NameId(k.c)) == "ibw") {
      r_at_gw2 = val;
    }
  }
  ASSERT_GT(r_at_gw2, 0);
  EXPECT_NEAR(wan_used / r_at_gw2, 1.25, 1e-6);
}

}  // namespace
}  // namespace sekitei
