// Tests for the grid workflow domain: task mapping, replica selection, and
// deadline-driven tradeoffs (the paper's Section 1 motivating scenario).
#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "domains/grid.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"

namespace sekitei {
namespace {

using domains::grid::Params;

struct Solved {
  core::PlanResult result;
  double out_lat = -1;
  double out_size = -1;
  bool used_far = false;
  bool used_near = false;
};

Solved solve(const Params& p) {
  Solved s;
  auto inst = domains::grid::two_cluster(p);
  auto cp = model::compile(inst->problem, domains::grid::scenario(p));
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  s.result = planner.plan([&](const core::Plan& pl) { return exec.execute(pl).feasible; });
  if (!s.result.ok()) return s;

  for (ActionId a : s.result.plan->steps) {
    const model::GroundAction& act = cp.actions[a.index()];
    if (act.kind == model::ActionKind::Cross && cp.iface_names[act.spec_index] == "Raw") {
      if (act.node == inst->storage_far) s.used_far = true;
      if (act.node == inst->storage_near) s.used_near = true;
    }
  }
  auto rep = exec.execute(*s.result.plan);
  EXPECT_TRUE(rep.feasible) << rep.failure;
  for (const auto& [var, val] : rep.final_vars) {
    const model::VarKey& k = cp.vars.key(var);
    if (k.kind != model::VarKind::IfaceProp) continue;
    if (cp.iface_names[k.a] != "Out" || NodeId(k.b) != inst->portal) continue;
    const std::string& prop = cp.names.str(NameId(k.c));
    if (prop == "lat") s.out_lat = val;
    if (prop == "size") s.out_size = val;
  }
  return s;
}

TEST(GridWorkflow, DeploysPipelineUnderLooseDeadline) {
  Params p;
  p.deadline = 60;
  Solved s = solve(p);
  ASSERT_TRUE(s.result.ok()) << s.result.failure;
  // The full pipeline must appear: two task placements plus the portal.
  EXPECT_GE(s.result.plan->size(), 5u);
  EXPECT_LE(s.out_lat, p.deadline + 1e-6);
  EXPECT_GE(s.out_size, p.quality - 1e-6);
}

TEST(GridWorkflow, LooseDeadlinePicksNearReplica) {
  Params p;
  p.deadline = 60;
  Solved s = solve(p);
  ASSERT_TRUE(s.result.ok());
  // The near replica needs fewer (cheaper) transfers despite its slow link.
  EXPECT_TRUE(s.used_near);
  EXPECT_FALSE(s.used_far);
}

TEST(GridWorkflow, TightDeadlineSwitchesToFastReplica) {
  Params p;
  p.deadline = 30;
  Solved s = solve(p);
  ASSERT_TRUE(s.result.ok()) << s.result.failure;
  // The slow access link (delay 25) cannot meet a 30-unit deadline once
  // compute time is added; the planner must fetch the far replica instead.
  EXPECT_TRUE(s.used_far);
  EXPECT_FALSE(s.used_near);
  EXPECT_LE(s.out_lat, p.deadline + 1e-6);
}

TEST(GridWorkflow, ImpossibleDeadlineYieldsNoPlan) {
  Params p;
  p.deadline = 8;  // below even the fast replica's transfer + compute time
  Solved s = solve(p);
  EXPECT_FALSE(s.result.ok());
  EXPECT_FALSE(s.result.stats.logically_unreachable)
      << "failure must be resource/QoS-driven, not logical";
}

TEST(GridWorkflow, TighterDeadlineNeverImprovesQuality) {
  Params loose, tight;
  loose.deadline = 80;
  tight.deadline = 30;
  Solved sl = solve(loose), st = solve(tight);
  ASSERT_TRUE(sl.result.ok());
  ASSERT_TRUE(st.result.ok());
  // Less time => the plan can afford at most as much data volume.
  EXPECT_GE(sl.out_size + 1e-9, st.out_size);
}

TEST(GridWorkflow, QualityDemandAboveReplicaCapacityIsInfeasible) {
  Params p;
  p.quality = 20.0;  // Out = Raw/8, Raw <= 100 => Out <= 12.5
  Solved s = solve(p);
  EXPECT_FALSE(s.result.ok());
}

TEST(GridWorkflow, DomainSpecValidates) {
  // The tabled congestion formulae must pass the monotonicity analysis.
  EXPECT_NO_THROW(domains::grid::make_domain());
}

}  // namespace
}  // namespace sekitei
