// Tests for the file-driven problem format (model/textio).
#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "model/textio.hpp"
#include "sim/executor.hpp"
#include "support/error.hpp"

namespace sekitei::model {
namespace {

const char* kTinyProblem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 wan { lbw 70; delay 10; }
}
problem {
  stream M.ibw at n0 = [0, 200];
  preplaced Server at n0;
  forbid Server;
  restrict Client to n1;
  goal Client at n1;
}
scenario {
  levels M.ibw { 90, 100 }
  levels T.ibw { 63, 70 }
  levels I.ibw { 27, 30 }
  levels Z.ibw { 31.5, 35 }
}
)";

std::string media_domain_text() { return domains::media::domain_text(); }

TEST(TextIo, LoadsNetworkProblemAndScenario) {
  auto lp = load_problem(media_domain_text(), kTinyProblem);
  EXPECT_EQ(lp->net.node_count(), 2u);
  EXPECT_EQ(lp->net.link_count(), 1u);
  EXPECT_EQ(lp->net.link(LinkId(0)).cls, net::LinkClass::Wan);
  EXPECT_DOUBLE_EQ(lp->net.link(LinkId(0)).resource("lbw"), 70);
  EXPECT_EQ(lp->problem.initial_streams.size(), 1u);
  EXPECT_EQ(lp->problem.goal_component, "Client");
  EXPECT_FALSE(lp->problem.placeable_at("Server", NodeId(0)));
  EXPECT_TRUE(lp->problem.placeable_at("Client", NodeId(1)));
  EXPECT_FALSE(lp->problem.placeable_at("Client", NodeId(0)));
  ASSERT_NE(lp->scenario.find_iface_levels("M", "ibw"), nullptr);
  EXPECT_EQ(lp->scenario.find_iface_levels("M", "ibw")->count(), 3u);
}

TEST(TextIo, LoadedProblemPlansLikeTheBuiltInTiny) {
  auto lp = load_problem(media_domain_text(), kTinyProblem);
  auto cp = compile(lp->problem, lp->scenario);
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  ASSERT_TRUE(r.ok()) << r.failure;
  EXPECT_EQ(r.plan->size(), 7u);
  EXPECT_NEAR(r.plan->cost_lb, 40.30, 1e-6);
}

TEST(TextIo, FixedReplicaStreamIsPoint) {
  const std::string text = R"(
network { node a { cpu 5; } node b { cpu 5; } link a b lan { lbw 10; } }
problem {
  stream M.ibw at a = 42;
  goal Client at b;
}
)";
  auto lp = load_problem(media_domain_text(), text);
  ASSERT_EQ(lp->problem.initial_streams.size(), 1u);
  EXPECT_TRUE(lp->problem.initial_streams[0].value.is_point());
  EXPECT_DOUBLE_EQ(lp->problem.initial_streams[0].value.lo, 42);
}

TEST(TextIo, LinkAndNodeLevelScenarios) {
  const std::string text = R"(
network { node a; node b; link a b wan { lbw 70; } }
problem { goal Client at b; }
scenario {
  levels link lbw { 31, 62 }
  levels node cpu { 10 }
}
)";
  auto lp = load_problem(media_domain_text(), text);
  ASSERT_TRUE(lp->scenario.link_levels.count("lbw"));
  EXPECT_EQ(lp->scenario.link_levels.at("lbw").count(), 3u);
  ASSERT_TRUE(lp->scenario.node_levels.count("cpu"));
}

TEST(TextIo, ErrorsAreDescriptive) {
  const std::string dom = media_domain_text();
  EXPECT_THROW(load_problem(dom, "problem { goal Client at x; }"), Error);  // no network
  EXPECT_THROW(load_problem(dom, "network { node a; } problem { goal Client at zzz; }"),
               Error);  // unknown node
  EXPECT_THROW(load_problem(dom, "network { node a; } problem { goal Nope at a; }"),
               Error);  // unknown component
  EXPECT_THROW(load_problem(dom, "network { node a; node a; }"), Error);  // duplicate node
  EXPECT_THROW(load_problem(dom, "network { link a b lan; }"), Error);    // undefined nodes
  EXPECT_THROW(load_problem(dom, "network { node a; }"), Error);          // missing goal
  EXPECT_THROW(load_problem(dom,
                            "network { node a; } problem { stream Nope.x at a = 1; "
                            "goal Client at a; }"),
               Error);  // unknown interface
}

TEST(TextIo, NetworkRoundTrip) {
  auto inst = domains::media::small();
  const std::string text = network_to_text(inst->net) + R"(
problem { goal Client at n4; }
)";
  auto lp = load_problem(media_domain_text(), text);
  EXPECT_EQ(lp->net.node_count(), inst->net.node_count());
  EXPECT_EQ(lp->net.link_count(), inst->net.link_count());
  for (LinkId l : inst->net.link_ids()) {
    EXPECT_EQ(lp->net.link(l).cls, inst->net.link(l).cls);
    EXPECT_DOUBLE_EQ(lp->net.link(l).resource("lbw"), inst->net.link(l).resource("lbw"));
  }
}

}  // namespace
}  // namespace sekitei::model
