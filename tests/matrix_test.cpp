// Parameterized sweep over the full evaluation matrix: every network of the
// paper x every Table 1 level scenario, asserting the qualitative Table 2
// facts and the planner's cross-cutting invariants on each cell.
#include <gtest/gtest.h>

#include <tuple>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"

namespace sekitei {
namespace {

enum class Net { Tiny, Small, Diamond, Multicast };

const char* net_name(Net n) {
  switch (n) {
    case Net::Tiny: return "Tiny";
    case Net::Small: return "Small";
    case Net::Diamond: return "Diamond";
    case Net::Multicast: return "Multicast";
  }
  return "?";
}

std::unique_ptr<domains::media::Instance> build(Net n) {
  switch (n) {
    case Net::Tiny: return domains::media::tiny();
    case Net::Small: return domains::media::small();
    case Net::Diamond: return domains::media::diamond();
    case Net::Multicast: return domains::media::multicast();
  }
  return nullptr;
}

using Cell = std::tuple<Net, char>;  // network x scenario

class EvaluationMatrix : public ::testing::TestWithParam<Cell> {};

TEST_P(EvaluationMatrix, QualitativeTable2Facts) {
  const auto [which, sc] = GetParam();
  auto inst = build(which);
  auto cp = model::compile(inst->problem, domains::media::scenario(sc));

  core::PlannerOptions opt;
  if (sc == 'A') opt.mode = core::PlannerOptions::Mode::Greedy;
  core::Sekitei planner(cp, opt);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });

  if (sc == 'A') {
    // The greedy baseline fails on every resource-constrained instance.
    EXPECT_FALSE(r.ok()) << net_name(which);
    EXPECT_FALSE(r.stats.logically_unreachable) << net_name(which);
    return;
  }
  ASSERT_TRUE(r.ok()) << net_name(which) << "/" << sc << ": " << r.failure;

  // Invariant: the executor independently re-proves the plan.
  auto rep = exec.execute(*r.plan);
  ASSERT_TRUE(rep.feasible) << net_name(which) << "/" << sc << ": " << rep.failure;

  // Invariant: realized cost dominates the leveled lower bound.
  EXPECT_GE(rep.actual_cost + 1e-6, r.plan->cost_lb);

  // Invariant: every reservation fits its link.
  for (const auto& lu : rep.link_use) {
    EXPECT_LE(lu.used, inst->net.link(lu.link).resource("lbw") + 1e-6);
  }

  // Invariant: node CPU is never oversubscribed.
  for (const auto& nu : rep.node_use) {
    EXPECT_LE(nu.used, inst->net.node(nu.node).resource("cpu") + 1e-6);
  }

  // Table 2's quality pattern: C, D, E agree on the optimal cost, and B
  // (whose level floors are 0) has cost lower bound == plan length.
  if (sc == 'B') {
    EXPECT_DOUBLE_EQ(r.plan->cost_lb, static_cast<double>(r.plan->size()));
  }
  if (sc == 'D' || sc == 'E') {
    auto cp_c = model::compile(inst->problem, domains::media::scenario('C'));
    core::Sekitei planner_c(cp_c);
    sim::Executor exec_c(cp_c);
    auto rc = planner_c.plan([&](const core::Plan& p) { return exec_c.execute(p).feasible; });
    ASSERT_TRUE(rc.ok());
    EXPECT_NEAR(rc.plan->cost_lb, r.plan->cost_lb, 1e-9)
        << "extra levels must not change the optimum (" << net_name(which) << ")";
  }
}

TEST_P(EvaluationMatrix, ActionCountGrowsWithLevels) {
  const auto [which, sc] = GetParam();
  if (sc == 'A') return;  // trivially smallest
  auto inst = build(which);
  const char prev = static_cast<char>(sc - 1);
  auto cp_prev = model::compile(inst->problem, domains::media::scenario(prev));
  auto cp = model::compile(inst->problem, domains::media::scenario(sc));
  EXPECT_GT(cp.actions.size(), cp_prev.actions.size())
      << net_name(which) << ": " << prev << " -> " << sc;
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, EvaluationMatrix,
    ::testing::Combine(::testing::Values(Net::Tiny, Net::Small, Net::Diamond, Net::Multicast),
                       ::testing::Values('A', 'B', 'C', 'D', 'E')),
    [](const ::testing::TestParamInfo<Cell>& info) {
      return std::string(net_name(std::get<0>(info.param))) + "_" +
             std::get<1>(info.param);
    });

}  // namespace
}  // namespace sekitei
