// Unit tests for the static-analysis battery (analysis/analyzer.hpp): one
// positive (triggering) and one negative (silent) instance per diagnostic
// code, plus the option knobs (--Werror promotion, suppression, the per-code
// cap, stage toggles), the renderers, and the service's preflight() subset.
//
// Instances are inline .sk strings put through the normal load/compile
// pipeline; SK102 and SK107 cannot be expressed in the DSL (the parser
// validates monotonicity and rejects duplicate names), so their positives
// build on the programmatic DomainSpec API the domains/ builders use.
#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "analysis/diagnostic.hpp"
#include "expr/parser.hpp"
#include "model/compile.hpp"
#include "model/textio.hpp"

namespace sekitei::analysis {
namespace {

// ---------------------------------------------------------------------------
// Inline instances (mirroring tests/lint_corpus/, which golden-tests the
// NDJSON rendering of the same shapes; here we assert on the report object).

/// A hygienic, feasible producer/consumer pair: silent on every code.
constexpr const char* kCleanDomain = R"(
interface M {
  property ibw degradable;
  cross {
    M.ibw' := min(M.ibw, link.lbw);
    link.lbw -= min(M.ibw, link.lbw);
  }
  cost 1;
}
component Server {
  implements M;
  effects { M.ibw := 100; }
  cost 1;
}
component Client {
  requires M;
  conditions { M.ibw >= 50; }
  cost 1;
}
)";

constexpr const char* kCleanProblem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 lan { lbw 150; delay 1; }
}
problem {
  goal Client at n1;
}
scenario {
  levels M.ibw { 50 }
}
)";

/// Value-capped chain: every action is viable but no composition of
/// producible values satisfies the client (SK001, plus dead Client actions).
constexpr const char* kCappedDomain = R"(
param demand = 90;
param serverCap = 60;
interface M {
  property ibw degradable;
  cross {
    M.ibw' := min(M.ibw, link.lbw);
    link.lbw -= min(M.ibw, link.lbw);
  }
  cost 1;
}
interface A {
  property x degradable;
  cross {
    A.x' := min(A.x, link.lbw);
    link.lbw -= min(A.x, link.lbw);
  }
  cost 1;
}
component Server {
  implements M;
  effects { M.ibw := serverCap; }
  cost 1;
}
component Amp {
  requires M;
  implements A;
  conditions { node.cpu >= 1; }
  effects {
    A.x := M.ibw;
    node.cpu -= 1;
  }
  cost 1;
}
component Client {
  requires A;
  conditions { A.x >= demand; }
  cost 1;
}
)";

constexpr const char* kCappedProblem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 lan { lbw 150; delay 1; }
}
problem {
  goal Client at n1;
}
scenario {
  levels M.ibw { 50 }
  levels A.x { 50 }
}
)";

struct Compiled {
  std::unique_ptr<model::LoadedProblem> loaded;
  model::CompiledProblem cp;
};

Compiled compile_pair(const std::string& domain, const std::string& problem) {
  Compiled c;
  c.loaded = model::load_problem(domain, problem);
  c.cp = model::compile(c.loaded->problem, c.loaded->scenario);
  return c;
}

AnalysisReport analyze_pair(const std::string& domain, const std::string& problem,
                            const AnalysisOptions& options = {}) {
  const Compiled c = compile_pair(domain, problem);
  return analyze(c.cp, options);
}

std::size_t count_code(const AnalysisReport& r, Code code) {
  std::size_t n = 0;
  for (const Diagnostic& d : r.diagnostics) n += d.code == code;
  return n;
}

bool has_code(const AnalysisReport& r, Code code) { return count_code(r, code) > 0; }

const Diagnostic* find_code(const AnalysisReport& r, Code code) {
  for (const Diagnostic& d : r.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Diagnostic plumbing

TEST(DiagnosticTest, CodeIdAndNameRoundTripThroughParse) {
  for (std::size_t i = 0; i < kCodeCount; ++i) {
    const Code c = static_cast<Code>(i);
    Code parsed{};
    EXPECT_TRUE(parse_code(code_id(c), &parsed)) << code_id(c);
    EXPECT_EQ(parsed, c);
    EXPECT_TRUE(parse_code(code_name(c), &parsed)) << code_name(c);
    EXPECT_EQ(parsed, c);
  }
  Code parsed{};
  EXPECT_FALSE(parse_code("SK999", &parsed));
  EXPECT_FALSE(parse_code("bogus-name", &parsed));
}

TEST(DiagnosticTest, SeverityFamiliesFollowTheNumbering) {
  EXPECT_EQ(default_severity(Code::GoalUnreachable), Severity::Error);
  EXPECT_EQ(default_severity(Code::GoalUnplaceable), Severity::Error);
  EXPECT_EQ(default_severity(Code::TagMismatch), Severity::Warning);
  EXPECT_EQ(default_severity(Code::DeadAction), Severity::Note);
  EXPECT_EQ(default_severity(Code::AnalysisInconclusive), Severity::Note);
}

// ---------------------------------------------------------------------------
// The clean instance is silent everywhere (the negative for most codes).

TEST(AnalyzerTest, CleanInstanceHasNoFindings) {
  const AnalysisReport r = analyze_pair(kCleanDomain, kCleanProblem);
  EXPECT_TRUE(r.diagnostics.empty());
  EXPECT_FALSE(r.provably_infeasible);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.exit_code(), 0);
  EXPECT_GT(r.props_reached, 0u);
  EXPECT_GT(r.actions_fireable, 0u);
  EXPECT_NE(r.render_text().find("clean: no findings"), std::string::npos);
  EXPECT_TRUE(r.render_ndjson().empty());
}

// ---------------------------------------------------------------------------
// SK001 goal-unreachable

TEST(AnalyzerTest, Sk001ValueCappedChainIsProvablyInfeasible) {
  const AnalysisReport r = analyze_pair(kCappedDomain, kCappedProblem);
  EXPECT_TRUE(r.provably_infeasible);
  EXPECT_FALSE(r.infeasible_reason.empty());
  EXPECT_TRUE(has_code(r, Code::GoalUnreachable));
  EXPECT_EQ(r.exit_code(), 1);
  const Diagnostic* d = find_code(r, Code::GoalUnreachable);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_NE(d->subject.find("Client"), std::string::npos);
}

TEST(AnalyzerTest, Sk001SilentWhenDemandIsSatisfiable) {
  const AnalysisReport r = analyze_pair(kCleanDomain, kCleanProblem);
  EXPECT_FALSE(has_code(r, Code::GoalUnreachable));
}

// ---------------------------------------------------------------------------
// SK002 goal-unplaceable

TEST(AnalyzerTest, Sk002PlacementRuleForbidsTheGoalNode) {
  const std::string problem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 lan { lbw 150; delay 1; }
}
problem {
  restrict Client to n0;
  goal Client at n1;
}
scenario {
  levels M.ibw { 50 }
}
)";
  const AnalysisReport r = analyze_pair(kCleanDomain, problem);
  EXPECT_TRUE(r.provably_infeasible);
  EXPECT_TRUE(has_code(r, Code::GoalUnplaceable));
  EXPECT_FALSE(has_code(r, Code::GoalUnreachable));
  const Diagnostic* d = find_code(r, Code::GoalUnplaceable);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("placement rules"), std::string::npos);
}

TEST(AnalyzerTest, Sk002SilentWhenTheRuleAllowsTheGoalNode) {
  const std::string problem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 lan { lbw 150; delay 1; }
}
problem {
  restrict Client to n1;
  goal Client at n1;
}
scenario {
  levels M.ibw { 50 }
}
)";
  const AnalysisReport r = analyze_pair(kCleanDomain, problem);
  EXPECT_FALSE(has_code(r, Code::GoalUnplaceable));
  EXPECT_FALSE(r.provably_infeasible);
}

// ---------------------------------------------------------------------------
// SK101 never-placeable-component

TEST(AnalyzerTest, Sk101ForbiddenComponentThatIsNotPreplaced) {
  const std::string problem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 lan { lbw 150; delay 1; }
}
problem {
  forbid Server;
  goal Client at n1;
}
scenario {
  levels M.ibw { 50 }
}
)";
  const AnalysisReport r = analyze_pair(kCleanDomain, problem);
  const Diagnostic* d = find_code(r, Code::NeverPlaceableComponent);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->subject.find("Server"), std::string::npos);
  EXPECT_NE(d->message.find("forbidden"), std::string::npos);
}

TEST(AnalyzerTest, Sk101SilentWhenTheForbiddenComponentIsPreplaced) {
  const std::string problem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 lan { lbw 150; delay 1; }
}
problem {
  stream M.ibw at n0 = 100;
  preplaced Server at n0;
  forbid Server;
  goal Client at n1;
}
scenario {
  levels M.ibw { 50 }
}
)";
  const AnalysisReport r = analyze_pair(kCleanDomain, problem);
  EXPECT_FALSE(has_code(r, Code::NeverPlaceableComponent));
}

// ---------------------------------------------------------------------------
// SK102 non-monotone-formula (DSL validation rejects these, so the positive
// builds the offending component programmatically — the path a domains/-style
// builder that skips validate() would take).

TEST(AnalyzerTest, Sk102NonMonotoneConditionAddedProgrammatically) {
  auto loaded = model::load_problem(kCleanDomain, kCleanProblem);
  spec::ComponentSpec auditor;
  auditor.name = "Auditor";
  auditor.inputs = {"M"};
  auditor.conditions.push_back(expr::parse_condition_string("M.ibw - M.ibw >= 0"));
  loaded->domain.add_component(std::move(auditor));
  const auto cp = model::compile(loaded->problem, loaded->scenario);
  const AnalysisReport r = analyze(cp);
  const Diagnostic* d = find_code(r, Code::NonMonotoneFormula);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_NE(d->subject.find("Auditor"), std::string::npos);
  EXPECT_FALSE(d->source.empty()) << "the finding should carry the formula text";
}

TEST(AnalyzerTest, Sk102SilentOnMonotoneFormulae) {
  const AnalysisReport r = analyze_pair(kCappedDomain, kCappedProblem);
  EXPECT_FALSE(has_code(r, Code::NonMonotoneFormula));
}

// ---------------------------------------------------------------------------
// SK103 tag-mismatch

TEST(AnalyzerTest, Sk103CeilingConditionContradictsDegradableTag) {
  const std::string domain = R"(
interface M {
  property ibw degradable;
  cross {
    M.ibw' := min(M.ibw, link.lbw);
    link.lbw -= min(M.ibw, link.lbw);
  }
  cost 1;
}
component Server {
  implements M;
  effects { M.ibw := 30; }
  cost 1;
}
component Client {
  requires M;
  conditions { M.ibw <= 40; }
  cost 1;
}
)";
  const std::string problem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 lan { lbw 150; delay 1; }
}
problem {
  goal Client at n1;
}
scenario {
  levels M.ibw { 20 }
}
)";
  const AnalysisReport r = analyze_pair(domain, problem);
  const Diagnostic* d = find_code(r, Code::TagMismatch);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->subject.find("M.ibw"), std::string::npos);
  EXPECT_NE(d->message.find("upgradable"), std::string::npos);
}

TEST(AnalyzerTest, Sk103SilentWhenTheTagMatchesTheConditions) {
  const AnalysisReport r = analyze_pair(kCleanDomain, kCleanProblem);
  EXPECT_FALSE(has_code(r, Code::TagMismatch));
}

TEST(AnalyzerTest, Sk103IgnoresResourceCoupledConditions) {
  // `node.cpu >= M.ibw / 5` expresses deployment cost, not the consumer's
  // tolerance to level shifts: it must not flip the derived direction (the
  // stock media.sk domain relies on this).
  const std::string domain = R"(
interface M {
  property ibw degradable;
  cross {
    M.ibw' := min(M.ibw, link.lbw);
    link.lbw -= min(M.ibw, link.lbw);
  }
  cost 1;
}
component Server {
  implements M;
  effects { M.ibw := 100; }
  cost 1;
}
component Client {
  requires M;
  conditions { node.cpu >= M.ibw / 5; }
  effects { node.cpu -= M.ibw / 5; }
  cost 1;
}
)";
  const AnalysisReport r = analyze_pair(domain, kCleanProblem);
  EXPECT_FALSE(has_code(r, Code::TagMismatch));
}

// ---------------------------------------------------------------------------
// SK104 unused-interface / SK105 unused-property

TEST(AnalyzerTest, Sk104InterfaceNoComponentTouches) {
  const std::string domain = R"(
interface M {
  property ibw degradable;
  cross {
    M.ibw' := min(M.ibw, link.lbw);
    link.lbw -= min(M.ibw, link.lbw);
  }
  cost 1;
}
interface U {
  property q degradable;
  cost 1;
}
component Server {
  implements M;
  effects { M.ibw := 100; }
  cost 1;
}
component Client {
  requires M;
  conditions { M.ibw >= 50; }
  cost 1;
}
)";
  const AnalysisReport r = analyze_pair(domain, kCleanProblem);
  const Diagnostic* d = find_code(r, Code::UnusedInterface);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->subject.find("U"), std::string::npos);
  // The unused interface is the whole story: its (also unreferenced)
  // property must not produce a second finding.
  EXPECT_FALSE(has_code(r, Code::UnusedProperty));
}

TEST(AnalyzerTest, Sk105PropertyNothingReferences) {
  const std::string domain = R"(
interface M {
  property ibw degradable;
  property junk;
  cross {
    M.ibw' := min(M.ibw, link.lbw);
    link.lbw -= min(M.ibw, link.lbw);
  }
  cost 1;
}
component Server {
  implements M;
  effects { M.ibw := 100; }
  cost 1;
}
component Client {
  requires M;
  conditions { M.ibw >= 50; }
  cost 1;
}
)";
  const AnalysisReport r = analyze_pair(domain, kCleanProblem);
  const Diagnostic* d = find_code(r, Code::UnusedProperty);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->subject.find("M.junk"), std::string::npos);
  EXPECT_FALSE(has_code(r, Code::UnusedInterface));
}

TEST(AnalyzerTest, Sk104Sk105SilentWhenEverythingIsReferenced) {
  const AnalysisReport r = analyze_pair(kCleanDomain, kCleanProblem);
  EXPECT_FALSE(has_code(r, Code::UnusedInterface));
  EXPECT_FALSE(has_code(r, Code::UnusedProperty));
}

// ---------------------------------------------------------------------------
// SK106 shadowed-component

TEST(AnalyzerTest, Sk106TwoComponentsWithTheSameSignature) {
  const std::string domain = R"(
interface M {
  property ibw degradable;
  cross {
    M.ibw' := min(M.ibw, link.lbw);
    link.lbw -= min(M.ibw, link.lbw);
  }
  cost 1;
}
component ServerA {
  implements M;
  effects { M.ibw := 100; }
  cost 1;
}
component ServerB {
  implements M;
  effects { M.ibw := 80; }
  cost 5;
}
component Client {
  requires M;
  conditions { M.ibw >= 50; }
  cost 1;
}
)";
  const AnalysisReport r = analyze_pair(domain, kCleanProblem);
  const Diagnostic* d = find_code(r, Code::ShadowedComponent);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->subject.find("ServerB"), std::string::npos);
  EXPECT_NE(d->message.find("ServerA"), std::string::npos);
}

TEST(AnalyzerTest, Sk106SilentWhenSignaturesDiffer) {
  const AnalysisReport r = analyze_pair(kCappedDomain, kCappedProblem);
  EXPECT_FALSE(has_code(r, Code::ShadowedComponent));
}

// ---------------------------------------------------------------------------
// SK107 duplicate-name (add_component rejects duplicates up front, but the
// stored spec stays mutable through the builder reference — renaming after
// insertion is exactly the defensive hole this check covers).

TEST(AnalyzerTest, Sk107DuplicateComponentNameViaBuilderMutation) {
  auto loaded = model::load_problem(kCleanDomain, kCleanProblem);
  spec::ComponentSpec clone;
  clone.name = "Client2";
  clone.inputs = {"M"};
  clone.conditions.push_back(expr::parse_condition_string("M.ibw >= 50"));
  spec::ComponentSpec& stored = loaded->domain.add_component(std::move(clone));
  stored.name = "Client";  // now a duplicate of the parsed Client
  const auto cp = model::compile(loaded->problem, loaded->scenario);
  const AnalysisReport r = analyze(cp);
  const Diagnostic* d = find_code(r, Code::DuplicateName);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->subject.find("Client"), std::string::npos);
  // Same name pairs are SK107's story; the shadow check must skip them.
  EXPECT_FALSE(has_code(r, Code::ShadowedComponent));
}

TEST(AnalyzerTest, Sk107SilentOnUniqueNames) {
  const AnalysisReport r = analyze_pair(kCappedDomain, kCappedProblem);
  EXPECT_FALSE(has_code(r, Code::DuplicateName));
}

// ---------------------------------------------------------------------------
// SK108 goal-preplaced

TEST(AnalyzerTest, Sk108GoalComponentAlreadyAtItsGoalNode) {
  const std::string problem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 lan { lbw 150; delay 1; }
}
problem {
  stream M.ibw at n1 = 100;
  preplaced Client at n1;
  goal Client at n1;
}
scenario {
  levels M.ibw { 50 }
}
)";
  const AnalysisReport r = analyze_pair(kCleanDomain, problem);
  const Diagnostic* d = find_code(r, Code::GoalPreplaced);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->subject.find("Client"), std::string::npos);
  EXPECT_FALSE(r.provably_infeasible) << "a trivially satisfied goal is not infeasible";
}

TEST(AnalyzerTest, Sk108SilentWhenTheGoalNeedsPlanning) {
  const AnalysisReport r = analyze_pair(kCleanDomain, kCleanProblem);
  EXPECT_FALSE(has_code(r, Code::GoalPreplaced));
}

// ---------------------------------------------------------------------------
// SK201 dead-action

TEST(AnalyzerTest, Sk201DeadActionsAreNotesAndDoNotFailTheExit) {
  // The 500 cutpoint is uninhabited, so its Client placements are dead —
  // but the instance is feasible and the exit code must stay 0.
  const std::string problem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 lan { lbw 150; delay 1; }
}
problem {
  goal Client at n1;
}
scenario {
  levels M.ibw { 50, 500 }
}
)";
  const AnalysisReport r = analyze_pair(kCleanDomain, problem);
  const Diagnostic* d = find_code(r, Code::DeadAction);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Note);
  EXPECT_FALSE(r.provably_infeasible);
  EXPECT_EQ(r.exit_code(), 0);
}

TEST(AnalyzerTest, Sk201SilentWhenEveryActionCanFire) {
  const AnalysisReport r = analyze_pair(kCleanDomain, kCleanProblem);
  EXPECT_FALSE(has_code(r, Code::DeadAction));
}

// ---------------------------------------------------------------------------
// SK202 unreachable-interface

TEST(AnalyzerTest, Sk202NothingProducesARequiredInterface) {
  const std::string domain = R"(
interface M {
  property ibw degradable;
  cross {
    M.ibw' := min(M.ibw, link.lbw);
    link.lbw -= min(M.ibw, link.lbw);
  }
  cost 1;
}
component Client {
  requires M;
  conditions { M.ibw >= 50; }
  cost 1;
}
)";
  const AnalysisReport r = analyze_pair(domain, kCleanProblem);
  const Diagnostic* d = find_code(r, Code::UnreachableInterface);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->subject.find("M"), std::string::npos);
  EXPECT_TRUE(r.provably_infeasible) << "the goal depends on the unreachable interface";
}

TEST(AnalyzerTest, Sk202SilentWhenAProducerExists) {
  const AnalysisReport r = analyze_pair(kCleanDomain, kCleanProblem);
  EXPECT_FALSE(has_code(r, Code::UnreachableInterface));
}

// ---------------------------------------------------------------------------
// SK203 interface-cannot-cross

TEST(AnalyzerTest, Sk203CrossConditionsExceedEveryLink) {
  const std::string domain = R"(
interface M {
  property ibw degradable;
  cross {
    link.lbw >= 500;
    M.ibw' := min(M.ibw, link.lbw);
    link.lbw -= min(M.ibw, link.lbw);
  }
  cost 1;
}
component Server {
  implements M;
  effects { M.ibw := 100; }
  cost 1;
}
component Client {
  requires M;
  conditions { M.ibw >= 50; }
  cost 1;
}
)";
  const std::string problem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 lan { lbw 150; delay 1; }
}
problem {
  goal Client at n0;
}
scenario {
  levels M.ibw { 50 }
}
)";
  const AnalysisReport r = analyze_pair(domain, problem);
  const Diagnostic* d = find_code(r, Code::InterfaceCannotCross);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->subject.find("M"), std::string::npos);
  // Producer and consumer can co-locate on n0: flagged, yet feasible.
  EXPECT_FALSE(r.provably_infeasible);
  EXPECT_EQ(r.exit_code(), 0);
}

TEST(AnalyzerTest, Sk203SilentWhenTheLinkAdmitsTheCrossing) {
  const AnalysisReport r = analyze_pair(kCleanDomain, kCleanProblem);
  EXPECT_FALSE(has_code(r, Code::InterfaceCannotCross));
}

// ---------------------------------------------------------------------------
// SK204 uninhabited-level

TEST(AnalyzerTest, Sk204CutpointAboveEveryProducibleValue) {
  const std::string problem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 lan { lbw 150; delay 1; }
}
problem {
  goal Client at n1;
}
scenario {
  levels M.ibw { 50, 500 }
}
)";
  const AnalysisReport r = analyze_pair(kCleanDomain, problem);
  const Diagnostic* d = find_code(r, Code::UninhabitedLevel);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->subject.find("M.ibw"), std::string::npos);
  EXPECT_NE(d->message.find("never inhabited"), std::string::npos);
}

TEST(AnalyzerTest, Sk204SilentWhenEveryLevelIsInhabited) {
  const AnalysisReport r = analyze_pair(kCleanDomain, kCleanProblem);
  EXPECT_FALSE(has_code(r, Code::UninhabitedLevel));
}

// ---------------------------------------------------------------------------
// SK205 analysis-inconclusive

/// A self-amplifying production cycle: P doubles A.x into B.y, Q copies B.y
/// back into A.x.  The producible hulls grow without bound, so the widening
/// cannot converge within a small sweep budget.
constexpr const char* kCycleDomain = R"(
interface A {
  property x degradable;
  cost 1;
}
interface B {
  property y degradable;
  cost 1;
}
component P {
  requires A;
  implements B;
  effects { B.y := A.x * 2; }
  cost 1;
}
component Q {
  requires B;
  implements A;
  effects { A.x := B.y; }
  cost 1;
}
component Client {
  requires B;
  conditions { B.y >= 1000000; }
  cost 1;
}
)";

constexpr const char* kCycleProblem = R"(
network {
  node n0 { cpu 30; }
}
problem {
  stream A.x at n0 = 1;
  goal Client at n0;
}
scenario {
  levels A.x { 1 }
  levels B.y { 1 }
}
)";

TEST(AnalyzerTest, Sk205AmplifyingCycleExhaustsTheSweepBudget) {
  AnalysisOptions options;
  options.max_sweeps = 4;
  const AnalysisReport r = analyze_pair(kCycleDomain, kCycleProblem, options);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(has_code(r, Code::AnalysisInconclusive));
  // No claims are made on non-convergence — even though the client's demand
  // looks unreachable after four sweeps.
  EXPECT_FALSE(r.provably_infeasible);
  EXPECT_FALSE(has_code(r, Code::GoalUnreachable));
  EXPECT_FALSE(has_code(r, Code::DeadAction));
  EXPECT_EQ(r.exit_code(), 0);
}

TEST(AnalyzerTest, Sk205SilentWhenTheFixpointConverges) {
  const AnalysisReport r = analyze_pair(kCleanDomain, kCleanProblem);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(has_code(r, Code::AnalysisInconclusive));
}

// ---------------------------------------------------------------------------
// Option knobs

TEST(AnalyzerOptionsTest, WerrorPromotesWarningsOnly) {
  auto loaded = model::load_problem(kCleanDomain, kCleanProblem);
  spec::ComponentSpec auditor;
  auditor.name = "Auditor";
  auditor.inputs = {"M"};
  auditor.conditions.push_back(expr::parse_condition_string("M.ibw - M.ibw >= 0"));
  loaded->domain.add_component(std::move(auditor));
  const auto cp = model::compile(loaded->problem, loaded->scenario);

  const AnalysisReport plain = analyze(cp);
  ASSERT_NE(find_code(plain, Code::NonMonotoneFormula), nullptr);
  EXPECT_EQ(find_code(plain, Code::NonMonotoneFormula)->severity, Severity::Warning);
  EXPECT_EQ(plain.exit_code(), 0);

  AnalysisOptions options;
  options.werror = true;
  const AnalysisReport strict = analyze(cp, options);
  ASSERT_NE(find_code(strict, Code::NonMonotoneFormula), nullptr);
  EXPECT_EQ(find_code(strict, Code::NonMonotoneFormula)->severity, Severity::Error);
  EXPECT_EQ(strict.exit_code(), 1);
  // Notes stay notes under --Werror.
  for (const Diagnostic& d : strict.diagnostics) {
    if (default_severity(d.code) == Severity::Note) {
      EXPECT_EQ(d.severity, Severity::Note);
    }
  }
}

TEST(AnalyzerOptionsTest, SuppressedCodesAreDroppedAndCounted) {
  AnalysisOptions options;
  options.suppress = {Code::DeadAction};
  const AnalysisReport r = analyze_pair(kCappedDomain, kCappedProblem, options);
  EXPECT_FALSE(has_code(r, Code::DeadAction));
  EXPECT_GT(r.suppressed, 0u);
  EXPECT_NE(r.render_text().find("suppressed"), std::string::npos);
}

TEST(AnalyzerOptionsTest, SuppressingTheGoalErrorKeepsTheVerdict) {
  // Suppression is a rendering/exit-code concern; provable infeasibility is
  // a fact about the instance and survives it.
  AnalysisOptions options;
  options.suppress = {Code::GoalUnreachable};
  const AnalysisReport r = analyze_pair(kCappedDomain, kCappedProblem, options);
  EXPECT_FALSE(has_code(r, Code::GoalUnreachable));
  EXPECT_TRUE(r.provably_infeasible);
  EXPECT_EQ(r.exit_code(), 0) << "exit code follows surviving diagnostics only";
}

TEST(AnalyzerOptionsTest, PerCodeCapEmitsOneOverflowNote) {
  AnalysisOptions options;
  options.max_per_code = 1;
  const AnalysisReport r = analyze_pair(kCappedDomain, kCappedProblem, options);
  // The capped instance yields two dead Client placements: one survives the
  // cap, the second becomes the overflow note.
  std::size_t real = 0, overflow = 0;
  for (const Diagnostic& d : r.diagnostics) {
    if (d.code != Code::DeadAction) continue;
    if (d.subject == "analysis") {
      ++overflow;
      EXPECT_NE(d.message.find("omitted"), std::string::npos);
      EXPECT_EQ(d.severity, Severity::Note);
    } else {
      ++real;
    }
  }
  EXPECT_EQ(real, 1u);
  EXPECT_EQ(overflow, 1u);
}

TEST(AnalyzerOptionsTest, StageTogglesDisableTheirFindings) {
  AnalysisOptions no_reach;
  no_reach.reachability = false;
  const AnalysisReport r1 = analyze_pair(kCappedDomain, kCappedProblem, no_reach);
  EXPECT_FALSE(has_code(r1, Code::GoalUnreachable));
  EXPECT_FALSE(has_code(r1, Code::DeadAction));
  EXPECT_FALSE(r1.provably_infeasible);

  AnalysisOptions no_hygiene;
  no_hygiene.hygiene = false;
  const AnalysisReport r2 = analyze_pair(kCleanDomain, kCleanProblem, no_hygiene);
  EXPECT_TRUE(r2.diagnostics.empty());

  AnalysisOptions no_intervals;
  no_intervals.intervals = false;
  const std::string leveled_problem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 lan { lbw 150; delay 1; }
}
problem {
  goal Client at n1;
}
scenario {
  levels M.ibw { 50, 500 }
}
)";
  const AnalysisReport r3 = analyze_pair(kCleanDomain, leveled_problem, no_intervals);
  EXPECT_FALSE(has_code(r3, Code::UninhabitedLevel));
}

// ---------------------------------------------------------------------------
// Renderers

TEST(AnalyzerRenderTest, TextFormCarriesSeverityCodeAndSummary) {
  const AnalysisReport r = analyze_pair(kCappedDomain, kCappedProblem);
  const std::string text = r.render_text();
  EXPECT_NE(text.find("error[SK001] goal-unreachable"), std::string::npos);
  EXPECT_NE(text.find("1 error(s)"), std::string::npos);
}

TEST(AnalyzerRenderTest, NdjsonIsOneObjectPerDiagnostic) {
  const AnalysisReport r = analyze_pair(kCappedDomain, kCappedProblem);
  const std::string nd = r.render_ndjson();
  std::size_t lines = 0;
  for (char c : nd) lines += c == '\n';
  EXPECT_EQ(lines, r.diagnostics.size());
  EXPECT_EQ(nd.rfind("{\"code\":\"SK001\"", 0), 0u) << "battery order: goal verdict first";
}

// ---------------------------------------------------------------------------
// preflight() — the service's stage-1 subset

TEST(PreflightTest, RejectsTheValueCappedChain) {
  const Compiled c = compile_pair(kCappedDomain, kCappedProblem);
  const PreflightVerdict v = preflight(c.cp);
  EXPECT_TRUE(v.infeasible);
  EXPECT_STREQ(v.code, "SK001");
  EXPECT_FALSE(v.reason.empty());
  EXPECT_GT(v.sweeps, 0u);
}

TEST(PreflightTest, ReportsThePlacementRuleAsUnplaceable) {
  const std::string problem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 lan { lbw 150; delay 1; }
}
problem {
  restrict Client to n0;
  goal Client at n1;
}
scenario {
  levels M.ibw { 50 }
}
)";
  const Compiled c = compile_pair(kCleanDomain, problem);
  const PreflightVerdict v = preflight(c.cp);
  EXPECT_TRUE(v.infeasible);
  EXPECT_STREQ(v.code, "SK002");
}

TEST(PreflightTest, PassesAFeasibleInstance) {
  const Compiled c = compile_pair(kCleanDomain, kCleanProblem);
  const PreflightVerdict v = preflight(c.cp);
  EXPECT_FALSE(v.infeasible);
  EXPECT_STREQ(v.code, "");
}

TEST(PreflightTest, NonConvergenceIsInconclusiveNotInfeasible) {
  const Compiled c = compile_pair(kCycleDomain, kCycleProblem);
  const PreflightVerdict v = preflight(c.cp, /*max_sweeps=*/4);
  EXPECT_FALSE(v.infeasible) << "an unconverged fixpoint must defer to the planner";
}

}  // namespace
}  // namespace sekitei::analysis
