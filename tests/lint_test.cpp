// Golden tests for the analyzer corpus: every instance pair under
// tests/lint_corpus/ (<name>.domain.sk + <name>.problem.sk) must render
// exactly its <name>.golden.ndjson under default analysis options — the
// NDJSON form is the machine-readable contract of sekitei_lint, so any
// change to codes, subjects or messages shows up here as a diff.
//
// The malformed corpus (tests/corpus/) is also replayed through the
// analyzer's entry path: a loader/compile error must surface as
// sekitei::Error, never be swallowed into a lint report.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "model/compile.hpp"
#include "model/textio.hpp"
#include "support/error.hpp"

#ifndef SEKITEI_TEST_LINT_CORPUS_DIR
#error "SEKITEI_TEST_LINT_CORPUS_DIR must point at tests/lint_corpus (set by CMake)"
#endif
#ifndef SEKITEI_TEST_CORPUS_DIR
#error "SEKITEI_TEST_CORPUS_DIR must point at tests/corpus (set by CMake)"
#endif

namespace sekitei::analysis {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// The corpus cases, identified by the stem of their <stem>.domain.sk file.
std::vector<std::string> corpus_cases() {
  std::vector<std::string> stems;
  const std::string suffix = ".domain.sk";
  for (const auto& entry : fs::directory_iterator(SEKITEI_TEST_LINT_CORPUS_DIR)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      stems.push_back(name.substr(0, name.size() - suffix.size()));
    }
  }
  std::sort(stems.begin(), stems.end());
  return stems;
}

TEST(LintCorpusTest, TheCorpusIsNotEmpty) {
  EXPECT_GE(corpus_cases().size(), 9u);
}

TEST(LintCorpusTest, EveryCaseHasAllThreeFiles) {
  const fs::path dir(SEKITEI_TEST_LINT_CORPUS_DIR);
  for (const std::string& stem : corpus_cases()) {
    SCOPED_TRACE(stem);
    EXPECT_TRUE(fs::exists(dir / (stem + ".problem.sk")));
    EXPECT_TRUE(fs::exists(dir / (stem + ".golden.ndjson")));
  }
}

TEST(LintCorpusTest, NdjsonMatchesTheGoldenFiles) {
  const fs::path dir(SEKITEI_TEST_LINT_CORPUS_DIR);
  for (const std::string& stem : corpus_cases()) {
    SCOPED_TRACE(stem);
    const std::string domain = slurp(dir / (stem + ".domain.sk"));
    const std::string problem = slurp(dir / (stem + ".problem.sk"));
    const std::string golden = slurp(dir / (stem + ".golden.ndjson"));

    const auto loaded = model::load_problem(domain, problem);
    const auto cp = model::compile(loaded->problem, loaded->scenario);
    const AnalysisReport report = analyze(cp);
    EXPECT_EQ(report.render_ndjson(), golden)
        << "regenerate with: sekitei_lint --format ndjson " << stem << ".domain.sk "
        << stem << ".problem.sk > " << stem << ".golden.ndjson";
  }
}

TEST(LintCorpusTest, TheCleanCaseIsActuallyClean) {
  // Guards the golden harness itself: an empty golden must mean "no
  // findings", not "the comparison never ran".
  const fs::path dir(SEKITEI_TEST_LINT_CORPUS_DIR);
  const auto loaded = model::load_problem(slurp(dir / "clean.domain.sk"),
                                          slurp(dir / "clean.problem.sk"));
  const auto cp = model::compile(loaded->problem, loaded->scenario);
  const AnalysisReport report = analyze(cp);
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_EQ(report.exit_code(), 0);
}

// ---------------------------------------------------------------------------
// Malformed inputs stay loader errors on the analyzer path.

// Mirrors tests/corpus_test.cpp: the half not under test is always valid.
constexpr const char* kValidDomain = R"(
interface M {
  property ibw degradable;
  cross {
    M.ibw' := min(M.ibw, link.lbw);
    link.lbw -= min(M.ibw, link.lbw);
  }
  cost 1 + M.ibw / 10;
}
component Server {
  implements M;
  effects { M.ibw := 100; }
  cost 1;
}
component Client {
  requires M;
  conditions { M.ibw >= 10; }
  cost 1;
}
)";

constexpr const char* kValidProblem = R"(
network {
  node n0 { cpu 30; }
  node n1 { cpu 30; }
  link n0 n1 wan { lbw 70; }
}
problem {
  stream M.ibw at n0 = [0, 100];
  preplaced Server at n0;
  goal Client at n1;
}
scenario {
  levels M.ibw { 10, 100 }
}
)";

/// What sekitei_lint does per instance: load, compile, analyze.
AnalysisReport lint_path(const std::string& domain, const std::string& problem) {
  const auto loaded = model::load_problem(domain, problem);
  const auto cp = model::compile(loaded->problem, loaded->scenario);
  return analyze(cp);
}

TEST(LintCorpusTest, MalformedInputsRaiseBeforeAnyReportExists) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(SEKITEI_TEST_CORPUS_DIR)) {
    if (entry.path().extension() == ".sk") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 15u);
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    const std::string text = slurp(path);
    const bool is_domain = path.filename().string().rfind("domain_", 0) == 0;
    if (is_domain) {
      EXPECT_THROW(lint_path(text, kValidProblem), Error);
    } else {
      EXPECT_THROW(lint_path(kValidDomain, text), Error);
    }
  }
}

TEST(LintCorpusTest, TheValidPairLintsClean) {
  const AnalysisReport report = lint_path(kValidDomain, kValidProblem);
  EXPECT_EQ(report.exit_code(), 0);
  EXPECT_FALSE(report.provably_infeasible);
}

}  // namespace
}  // namespace sekitei::analysis
