// Unit and property tests for interval arithmetic (support/interval.hpp).
//
// The property suites verify the fundamental soundness contract the planner
// leans on: for any concrete values inside the operand intervals, the result
// of a scalar operation lies inside the interval result.
#include <gtest/gtest.h>

#include "support/interval.hpp"
#include "support/rng.hpp"

namespace sekitei {
namespace {

TEST(Interval, PointAndEmptyBasics) {
  const Interval p = Interval::point(5.0);
  EXPECT_TRUE(p.is_point());
  EXPECT_FALSE(p.is_empty());
  EXPECT_TRUE(p.contains(5.0));
  EXPECT_FALSE(p.contains(5.0001));

  const Interval e = Interval::empty();
  EXPECT_TRUE(e.is_empty());
  EXPECT_FALSE(e.contains(0.0));

  const Interval r = Interval::nonneg();
  EXPECT_TRUE(r.contains(0.0));
  EXPECT_TRUE(r.contains(1e18));
}

TEST(Interval, IntersectOverlapping) {
  const Interval a{0, 100};
  const Interval b{90, 150};
  const Interval c = intersect(a, b);
  EXPECT_DOUBLE_EQ(c.lo, 90);
  EXPECT_DOUBLE_EQ(c.hi, 100);
}

TEST(Interval, IntersectDisjointIsEmpty) {
  EXPECT_TRUE(intersect(Interval{0, 30}, Interval{70, 90}).is_empty());
}

TEST(Interval, IntersectTouchingAtCutpointIsPoint) {
  // Closed-interval semantics: levels touching at a cutpoint intersect in a
  // point.  Documented in interval.hpp; the planner relies on reserving the
  // supremum of half-open paper levels.
  const Interval c = intersect(Interval{0, 90}, Interval{90, 100});
  EXPECT_FALSE(c.is_empty());
  EXPECT_TRUE(c.is_point());
}

TEST(Interval, HullCoversBoth) {
  const Interval h = hull(Interval{0, 10}, Interval{20, 30});
  EXPECT_DOUBLE_EQ(h.lo, 0);
  EXPECT_DOUBLE_EQ(h.hi, 30);
  EXPECT_EQ(hull(Interval::empty(), Interval{1, 2}), (Interval{1, 2}));
}

TEST(Interval, AddSub) {
  const Interval a{1, 2}, b{10, 20};
  EXPECT_EQ(a + b, (Interval{11, 22}));
  EXPECT_EQ(b - a, (Interval{8, 19}));
  EXPECT_EQ(-a, (Interval{-2, -1}));
}

TEST(Interval, MulWithNegatives) {
  const Interval a{-2, 3}, b{-5, 4};
  // extrema: -2*-5=10, -2*4=-8, 3*-5=-15, 3*4=12
  EXPECT_EQ(a * b, (Interval{-15, 12}));
}

TEST(Interval, MulWithInfinityUpperBound) {
  // [0,inf) * [0.3, 0.3]: the 0*inf corner must not poison the result.
  const Interval a{0, kInf};
  const Interval b = Interval::point(0.3);
  const Interval r = a * b;
  EXPECT_DOUBLE_EQ(r.lo, 0);
  EXPECT_EQ(r.hi, kInf);
}

TEST(Interval, DivByPositive) {
  EXPECT_EQ((Interval{10, 20} / Interval::point(5.0)), (Interval{2, 4}));
}

TEST(Interval, DivByIntervalStraddlingZeroIsWholeLine) {
  const Interval r = Interval{1, 2} / Interval{-1, 1};
  EXPECT_EQ(r.lo, -kInf);
  EXPECT_EQ(r.hi, kInf);
}

TEST(Interval, DivByZeroPointIsEmpty) {
  EXPECT_TRUE((Interval{1, 2} / Interval::point(0.0)).is_empty());
}

TEST(Interval, MinMax) {
  const Interval a{10, 100}, b{70, 70};
  EXPECT_EQ(imin(a, b), (Interval{10, 70}));
  EXPECT_EQ(imax(a, b), (Interval{70, 100}));
}

TEST(Interval, CrossEffectShape) {
  // The canonical Fig. 6 cross effect: M.ibw' = min(M.ibw, Link.lbw) for an
  // M level [90, 100] over a 70-unit link gives [70, 70]; intersecting with
  // the [90, 100] output level must be empty -> the leveling prunes the
  // action (Fig. 7 caption).
  const Interval m{90, 100};
  const Interval lbw{0, 70};
  const Interval out = imin(m, lbw);
  EXPECT_TRUE(intersect(out, Interval{90, 100}).is_empty());
}

TEST(Interval, StrFormatting) {
  EXPECT_EQ((Interval{0, 30}).str(), "[0, 30]");
  EXPECT_EQ(Interval::nonneg().str(), "[0, inf)");
  EXPECT_EQ(Interval::empty().str(), "(empty)");
}

// ---- property tests --------------------------------------------------------

struct BinCase {
  const char* name;
  Interval (*iop)(Interval, Interval);
  double (*sop)(double, double);
};

class IntervalSoundness : public ::testing::TestWithParam<BinCase> {};

TEST_P(IntervalSoundness, ScalarResultInsideIntervalResult) {
  const BinCase& bc = GetParam();
  SplitMix64 rng(0xC0FFEE ^ std::hash<std::string>{}(bc.name));
  for (int iter = 0; iter < 2000; ++iter) {
    double a1 = rng.uniform(-50, 150), a2 = rng.uniform(-50, 150);
    double b1 = rng.uniform(-50, 150), b2 = rng.uniform(-50, 150);
    Interval A{std::min(a1, a2), std::max(a1, a2)};
    Interval B{std::min(b1, b2), std::max(b1, b2)};
    if (bc.sop(1.0, 0.0) == 1.0 / 0.0) continue;  // unreachable; silence lints
    const double x = rng.uniform(A.lo, A.hi);
    const double y = rng.uniform(B.lo, B.hi);
    // Skip division cases where the divisor interval straddles zero: the
    // interval op answers "whole line", trivially sound.
    const Interval R = bc.iop(A, B);
    const double r = bc.sop(x, y);
    if (std::isfinite(r)) {
      EXPECT_LE(R.lo, r + 1e-9) << bc.name << " A=" << A.str() << " B=" << B.str();
      EXPECT_GE(R.hi, r - 1e-9) << bc.name << " A=" << A.str() << " B=" << B.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, IntervalSoundness,
    ::testing::Values(
        BinCase{"add", [](Interval a, Interval b) { return a + b; },
                [](double x, double y) { return x + y; }},
        BinCase{"sub", [](Interval a, Interval b) { return a - b; },
                [](double x, double y) { return x - y; }},
        BinCase{"mul", [](Interval a, Interval b) { return a * b; },
                [](double x, double y) { return x * y; }},
        BinCase{"div", [](Interval a, Interval b) { return a / b; },
                [](double x, double y) { return x / y; }},
        BinCase{"min", [](Interval a, Interval b) { return imin(a, b); },
                [](double x, double y) { return std::min(x, y); }},
        BinCase{"max", [](Interval a, Interval b) { return imax(a, b); },
                [](double x, double y) { return std::max(x, y); }}),
    [](const ::testing::TestParamInfo<BinCase>& info) { return info.param.name; });

TEST(IntervalProperty, IntersectIsTightest) {
  SplitMix64 rng(42);
  for (int iter = 0; iter < 2000; ++iter) {
    double a1 = rng.uniform(0, 100), a2 = rng.uniform(0, 100);
    double b1 = rng.uniform(0, 100), b2 = rng.uniform(0, 100);
    Interval A{std::min(a1, a2), std::max(a1, a2)};
    Interval B{std::min(b1, b2), std::max(b1, b2)};
    const Interval I = intersect(A, B);
    const double x = rng.uniform(0, 100);
    EXPECT_EQ(I.contains(x), A.contains(x) && B.contains(x));
  }
}

}  // namespace
}  // namespace sekitei
