// The graceful-degradation ladder end to end: anytime incumbents returned on
// a mid-search stop, the greedy retry on the reserved budget, and the master
// switch that restores strict pre-ladder behavior.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "service/engine.hpp"
#include "service/request.hpp"

namespace sekitei::service {
namespace {

namespace media = domains::media;

std::shared_ptr<const model::LoadedProblem> loaded(std::unique_ptr<media::Instance> inst,
                                                   char scenario) {
  return make_loaded(std::move(inst->domain), std::move(inst->net), std::move(inst->problem),
                     media::scenario(scenario));
}

TEST(DegradeTest, DegradedNamesExitCodeAndOk) {
  EXPECT_STREQ(outcome_name(Outcome::Degraded), "degraded");
  EXPECT_EQ(outcome_exit_code(Outcome::Degraded), 6);
  EXPECT_STREQ(ladder_step_name(LadderStep::Primary), "primary");
  EXPECT_STREQ(ladder_step_name(LadderStep::AnytimeIncumbent), "anytime_incumbent");
  EXPECT_STREQ(ladder_step_name(LadderStep::GreedyFallback), "greedy_fallback");

  PlanResponse r;
  r.outcome = Outcome::Degraded;
  EXPECT_TRUE(r.ok());
}

TEST(DegradeTest, MidSearchStopReturnsTheAnytimeIncumbent) {
  PlanningEngine engine({.workers = 1});

  PlanRequest req;
  req.id = "anytime";
  req.problem = loaded(media::small(), 'C');
  req.progress_every = 1;
  // Deterministic stop: the moment the search records its first incumbent
  // (a goal-satisfying child awaiting its optimality proof), cut it short.
  StopSource stop = req.stop;
  req.progress = [stop](const core::PlannerStats& s) mutable {
    if (s.rg_incumbents > 0) stop.request_stop();
  };

  const PlanResponse r = engine.plan(std::move(req));
  EXPECT_EQ(r.outcome, Outcome::Degraded) << r.failure;
  EXPECT_EQ(r.ladder, LadderStep::AnytimeIncumbent);
  EXPECT_TRUE(r.ok());
  ASSERT_TRUE(r.plan.has_value());
  EXPECT_FALSE(r.plan_text.empty());
  EXPECT_TRUE(r.stats.stopped);
  EXPECT_TRUE(r.stats.suboptimal_on_stop);
  EXPECT_GE(r.stats.rg_incumbents, 1u);
  // The incumbent's cost can exceed the admissible bound still open, never
  // undercut it — the reported optimality gap is cost - open_cost_lb >= 0.
  EXPECT_GT(r.stats.incumbent_cost, 0.0);
  EXPECT_LE(r.stats.open_cost_lb, r.stats.incumbent_cost + 1e-9);
  EXPECT_FALSE(r.failure.empty());

  const std::string json = response_to_json(r);
  EXPECT_NE(json.find("\"outcome\":\"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"ladder\":\"anytime_incumbent\""), std::string::npos);
  EXPECT_NE(json.find("\"suboptimal_on_stop\":true"), std::string::npos);
}

TEST(DegradeTest, ExhaustedPrimaryBudgetFallsBackToGreedy) {
  PlanningEngine engine({.workers = 1});

  // A fat WAN link makes the worst-case (greedy) plan feasible: the stream
  // is forwarded whole, no splitting needed.
  media::Params p;
  p.wan_bw = 200.0;

  PlanRequest req;
  req.id = "fallback";
  req.problem = loaded(media::tiny(p), 'C');
  req.deadline_ms = 10000.0;  // generous total budget...
  req.degrade.primary_fraction = 1e-9;  // ...but a hopeless primary slice
  req.progress_every = 1;

  const PlanResponse r = engine.plan(std::move(req));
  EXPECT_EQ(r.outcome, Outcome::Degraded) << r.failure;
  EXPECT_EQ(r.ladder, LadderStep::GreedyFallback);
  ASSERT_TRUE(r.plan.has_value());
  EXPECT_FALSE(r.plan_text.empty());
  EXPECT_GT(r.fallback_ms, 0.0);
  EXPECT_FALSE(r.failure.empty());

  const std::string json = response_to_json(r);
  EXPECT_NE(json.find("\"ladder\":\"greedy_fallback\""), std::string::npos);
  EXPECT_NE(json.find("\"fallback_ms\":"), std::string::npos);
}

TEST(DegradeTest, LadderDisabledRestoresStrictDeadlineBehavior) {
  PlanningEngine engine({.workers = 1});

  PlanRequest req;
  req.problem = loaded(media::small(), 'C');
  req.deadline_ms = 1e-6;  // expires before planning starts
  req.degrade.enabled = false;

  const PlanResponse r = engine.plan(std::move(req));
  EXPECT_EQ(r.outcome, Outcome::DeadlineExceeded);
  EXPECT_FALSE(r.plan.has_value());
  EXPECT_EQ(r.ladder, LadderStep::Primary);
}

TEST(DegradeTest, LadderPolicyDoesNotChangeUnstoppedPlans) {
  // Acceptance criterion: with no deadline pressure the ladder is inert —
  // plans are byte-identical whether the policy is on or off.
  PlanningEngine engine({.workers = 1});

  PlanRequest on;
  on.problem = loaded(media::tiny(), 'C');
  const PlanResponse with_ladder = engine.plan(std::move(on));
  ASSERT_EQ(with_ladder.outcome, Outcome::Solved);

  PlanRequest off;
  off.problem = loaded(media::tiny(), 'C');
  off.degrade.enabled = false;
  const PlanResponse without_ladder = engine.plan(std::move(off));
  ASSERT_EQ(without_ladder.outcome, Outcome::Solved);

  EXPECT_EQ(with_ladder.plan_text, without_ladder.plan_text);
  EXPECT_EQ(with_ladder.ladder, LadderStep::Primary);
  EXPECT_EQ(without_ladder.ladder, LadderStep::Primary);
}

TEST(DegradeTest, NoIncumbentExpiredBudgetWithoutFallbackIsDeadlineExceeded) {
  PlanningEngine engine({.workers = 1});

  PlanRequest req;
  req.problem = loaded(media::small(), 'C');
  req.deadline_ms = 1e-6;
  req.degrade.greedy_fallback = false;  // rung 3 switched off

  const PlanResponse r = engine.plan(std::move(req));
  EXPECT_EQ(r.outcome, Outcome::DeadlineExceeded);
  EXPECT_FALSE(r.plan.has_value());
  EXPECT_EQ(outcome_exit_code(r.outcome), 3);
}

}  // namespace
}  // namespace sekitei::service
