// Tests for the CPP compiler (model/compile): grounding, leveling, static
// pruning (Fig. 7), optimistic maps, cost bounds, initial state and the
// degradable achiever closure.
#include <gtest/gtest.h>

#include "domains/media.hpp"
#include "model/compile.hpp"
#include "support/error.hpp"

namespace sekitei::model {
namespace {

using domains::media::scenario;

struct Counts {
  int place = 0;
  int cross = 0;
};

Counts count_kind(const CompiledProblem& cp, const std::string& name) {
  Counts c;
  for (const GroundAction& a : cp.actions) {
    if (a.kind == ActionKind::Place) {
      if (cp.domain->component_at(a.spec_index).name == name) ++c.place;
    } else {
      if (cp.iface_names[a.spec_index] == name) ++c.cross;
    }
  }
  return c;
}

TEST(Leveling, ScenarioAHasTrivialLevels) {
  auto inst = domains::media::tiny();
  auto cp = compile(inst->problem, scenario('A'));
  for (const auto& info : cp.iface_levels) EXPECT_EQ(info.levels.count(), 1u);
  // One action per (component, node) / (iface, direction): no level blowup.
  EXPECT_EQ(count_kind(cp, "Splitter").place, 2);
  EXPECT_EQ(count_kind(cp, "M").cross, 2);  // both directions of one link
}

TEST(Leveling, ActionCountGrowsWithLevels) {
  auto inst = domains::media::tiny();
  const std::size_t a = compile(inst->problem, scenario('A')).actions.size();
  const std::size_t b = compile(inst->problem, scenario('B')).actions.size();
  const std::size_t c = compile(inst->problem, scenario('C')).actions.size();
  const std::size_t d = compile(inst->problem, scenario('D')).actions.size();
  const std::size_t e = compile(inst->problem, scenario('E')).actions.size();
  // Table 2, column 5: 32 < 46 < 76 < 174 in the paper; exact counts differ
  // but the strict growth must hold.
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  EXPECT_LT(d, e);
}

TEST(Leveling, Fig7PruningOfHighLevelsOverThinLink) {
  // "Actions for crossing the link with the M stream with levels above 1 are
  // pruned during the leveling because of limited link bandwidth."
  auto inst = domains::media::tiny();  // single 70-unit WAN link
  auto cp = compile(inst->problem, scenario('D'));  // M cuts {30,70,90,100}
  for (const GroundAction& a : cp.actions) {
    if (a.kind != ActionKind::Cross || cp.iface_names[a.spec_index] != "M") continue;
    // Output levels 2..4 start at 70/90/100 — impossible over a 70 link.
    EXPECT_LE(a.out_levels[0], 1u) << cp.describe(ActionId(
        static_cast<std::uint32_t>(&a - cp.actions.data())));
  }
  EXPECT_GT(cp.combos_pruned, 0u);
}

TEST(Leveling, MergerRatioPrunesMismatchedLevelPairs) {
  // T*3 == I*7 restricts input-level combinations to proportional pairs
  // ("additional (in)equalities ... limit possible combinations").
  auto inst = domains::media::tiny();
  auto cp = compile(inst->problem, scenario('D'));
  int merger_actions = 0;
  for (const GroundAction& a : cp.actions) {
    if (a.kind == ActionKind::Place &&
        cp.domain->component_at(a.spec_index).name == "Merger") {
      ++merger_actions;
      // Proportional T/I level sets make compatible pairs share the index
      // except at interval boundaries.
      EXPECT_LE(static_cast<int>(a.in_levels[0]) - static_cast<int>(a.in_levels[1]), 1);
      EXPECT_LE(static_cast<int>(a.in_levels[1]) - static_cast<int>(a.in_levels[0]), 1);
    }
  }
  // Without the equality there would be 5*5*5 = 125 combos per node.
  EXPECT_GT(merger_actions, 0);
  EXPECT_LT(merger_actions, 50);
}

TEST(Leveling, PlacementRulesRespected) {
  auto inst = domains::media::small();
  auto cp = compile(inst->problem, scenario('C'));
  EXPECT_EQ(count_kind(cp, "Server").place, 0) << "Server is never re-placed";
  for (const GroundAction& a : cp.actions) {
    if (a.kind == ActionKind::Place &&
        cp.domain->component_at(a.spec_index).name == "Client") {
      EXPECT_EQ(a.node, inst->client);
    }
  }
}

TEST(Leveling, CostBoundsReflectLevelFloors) {
  auto inst = domains::media::tiny();
  auto cp = compile(inst->problem, scenario('C'));
  for (const GroundAction& a : cp.actions) {
    EXPECT_GT(a.cost_lb, 0.0);
    EXPECT_GE(a.cost_ub, a.cost_lb);
    if (a.kind == ActionKind::Place &&
        cp.domain->component_at(a.spec_index).name == "Splitter" && a.in_levels[0] == 1) {
      // Splitter at M level [90,100): cost = 1 + 90/10 = 10 at the floor.
      EXPECT_NEAR(a.cost_lb, 10.0, 1e-6);
      EXPECT_NEAR(a.cost_ub, 11.0, 1e-3);
    }
  }
}

TEST(Leveling, ScenarioEAddsLinkLevelParameters) {
  auto inst = domains::media::tiny();
  auto cpD = compile(inst->problem, scenario('D'));
  auto cpE = compile(inst->problem, scenario('E'));
  // E instantiates cross actions per link-bandwidth level as well.
  EXPECT_GT(cpE.combos_considered, cpD.combos_considered);
  EXPECT_GT(count_kind(cpE, "M").cross, count_kind(cpD, "M").cross);
}

TEST(InitialState, ServerStreamAvailableAtEveryReachableLevel) {
  auto inst = domains::media::tiny();
  auto cp = compile(inst->problem, scenario('D'));
  std::uint32_t m_index = UINT32_MAX;
  for (std::uint32_t i = 0; i < cp.iface_names.size(); ++i) {
    if (cp.iface_names[i] == "M") m_index = i;
  }
  ASSERT_NE(m_index, UINT32_MAX);
  // [0,200] production choice covers all five levels.
  int avail_levels = 0;
  for (PropId p : cp.init_props) {
    const PropKey& k = cp.props.key(p);
    if (k.kind == PropKind::Avail && k.entity == m_index && NodeId(k.node) == inst->server) {
      ++avail_levels;
    }
  }
  EXPECT_EQ(avail_levels, 5);
}

TEST(InitialState, CapacitiesEnterMapAsPoints) {
  auto inst = domains::media::tiny();
  auto cp = compile(inst->problem, scenario('C'));
  int points = 0, choices = 0;
  for (const InitMapEntry& e : cp.init_map) {
    if (e.value.is_point()) {
      ++points;
    } else {
      ++choices;
    }
  }
  EXPECT_EQ(choices, 1);  // only the server's [0,200] production
  EXPECT_GE(points, 3);   // 2x cpu + lbw + delay + stream defaults
}

TEST(InitialState, GoalIsClientPlacement) {
  auto inst = domains::media::tiny();
  auto cp = compile(inst->problem, scenario('C'));
  const PropKey& k = cp.props.key(cp.goal_prop);
  EXPECT_EQ(k.kind, PropKind::Placed);
  EXPECT_EQ(cp.domain->component_at(k.entity).name, "Client");
  EXPECT_EQ(NodeId(k.node), inst->client);
}

TEST(Achievers, DegradableClosureSupportsLowerLevels) {
  auto inst = domains::media::tiny();
  auto cp = compile(inst->problem, scenario('D'));
  // Find a Merger action producing M at some level k > 0; it must be
  // registered as an achiever of every avail(M, node, j<k).
  for (std::uint32_t ai = 0; ai < cp.actions.size(); ++ai) {
    const GroundAction& a = cp.actions[ai];
    if (a.kind != ActionKind::Place ||
        cp.domain->component_at(a.spec_index).name != "Merger" || a.out_levels[0] == 0) {
      continue;
    }
    std::uint32_t m_index = 0;
    for (std::uint32_t i = 0; i < cp.iface_names.size(); ++i) {
      if (cp.iface_names[i] == "M") m_index = i;
    }
    for (std::uint32_t j = 0; j < a.out_levels[0]; ++j) {
      const PropId p = cp.props.find_avail(InterfaceId(m_index), a.node, j);
      ASSERT_TRUE(p.valid());
      const auto& ach = cp.achievers_of(p);
      EXPECT_TRUE(std::binary_search(ach.begin(), ach.end(), ActionId(ai)))
          << "level " << j << " not supported by producer at level " << a.out_levels[0];
    }
    return;  // one producer suffices
  }
  FAIL() << "no leveled Merger producer found";
}

TEST(Compile, DescribeRendersHumanReadably) {
  auto inst = domains::media::tiny();
  auto cp = compile(inst->problem, scenario('C'));
  bool saw_place = false, saw_cross = false;
  for (std::uint32_t ai = 0; ai < cp.actions.size(); ++ai) {
    const std::string s = cp.describe(ActionId(ai));
    if (s.rfind("place ", 0) == 0) saw_place = true;
    if (s.rfind("cross ", 0) == 0) saw_cross = true;
  }
  EXPECT_TRUE(saw_place);
  EXPECT_TRUE(saw_cross);
  EXPECT_NE(cp.describe(cp.goal_prop).find("placed(Client"), std::string::npos);
}

TEST(Compile, RejectsTwoLeveledPropertiesOnOneInterface) {
  auto dom = spec::parse_domain(R"(
    interface X { property a; property b; }
    component C { requires X; }
  )");
  net::Network net;
  NodeId n = net.add_node("n", {{"cpu", 10}});
  CppProblem prob;
  prob.network = &net;
  prob.domain = &dom;
  prob.goal_component = "C";
  prob.goal_node = n;
  spec::LevelScenario sc;
  sc.iface_levels[{"X", "a"}] = spec::LevelSet({1});
  sc.iface_levels[{"X", "b"}] = spec::LevelSet({1});
  EXPECT_THROW(compile(prob, sc), Error);
}

TEST(Compile, UnknownGoalComponentRaises) {
  auto inst = domains::media::tiny();
  CppProblem prob = inst->problem;
  prob.goal_component = "Nope";
  EXPECT_THROW(compile(prob, scenario('C')), Error);
}

}  // namespace
}  // namespace sekitei::model
